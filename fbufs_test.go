package fbufs_test

import (
	"bytes"
	"testing"

	"fbufs"
)

func TestQuickstartFlow(t *testing.T) {
	sys := fbufs.New(1024)
	src := sys.NewDomain("producer")
	dst := sys.NewDomain("consumer")
	path, err := sys.NewPath("video", fbufs.CachedVolatile(), 4, src, dst)
	if err != nil {
		t.Fatal(err)
	}

	frame := make([]byte, 3*fbufs.PageSize)
	for i := range frame {
		frame[i] = byte(i)
	}
	buf, err := path.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := buf.Write(src, 0, frame); err != nil {
		t.Fatal(err)
	}
	if err := sys.Fbufs.Transfer(buf, src, dst); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(frame))
	if err := buf.Read(dst, 0, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, frame) {
		t.Fatal("consumer read different bytes")
	}
	if err := sys.Fbufs.Free(buf, dst); err != nil {
		t.Fatal(err)
	}
	if err := sys.Fbufs.Free(buf, src); err != nil {
		t.Fatal(err)
	}
	if path.FreeListLen() != 1 {
		t.Fatalf("fbuf not recycled: free list %d", path.FreeListLen())
	}
	if sys.Now() <= 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestFacadeMessages(t *testing.T) {
	sys := fbufs.New(4096)
	src := sys.NewDomain("src")
	dst := sys.NewDomain("dst")
	path, err := sys.NewPath("p", fbufs.CachedVolatile(), 4, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	path.SetQuota(32)
	ctx, err := sys.NewCtx(path)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 50000)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	m, err := ctx.NewData(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Transfer(src, dst); err != nil {
		t.Fatal(err)
	}
	rm, err := sys.OpenMsg(dst, m.RootVA())
	if err != nil {
		t.Fatal(err)
	}
	got, err := rm.ReadAll(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("message corrupted in transfer")
	}
	if err := rm.Free(dst); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(src); err != nil {
		t.Fatal(err)
	}
	if err := sys.Fbufs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMbps(t *testing.T) {
	if got := fbufs.Mbps(4096, 3000); got < 10900 || got > 10950 {
		t.Fatalf("Mbps(page, 3us) = %v", got)
	}
}
