package main

import (
	"io"
	"testing"

	"fbufs"
	"fbufs/internal/xfer"
)

// TestImagePipeline runs the cropping pipeline and asserts the exit
// state: after context teardown and notice delivery, every fbuf has
// recycled (zero leaks) and the invariants hold.
func TestImagePipeline(t *testing.T) {
	sys, err := RunFbufs(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Fbufs.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated after run: %v", err)
	}
	if err := sys.Fbufs.CheckConverged(); err != nil {
		t.Fatalf("pipeline leaked fbufs: %v", err)
	}
}

// TestImagePipelineBaselines smoke-runs both classic facilities.
func TestImagePipelineBaselines(t *testing.T) {
	err := RunBaseline(io.Discard, "copy", func(sys *fbufs.System, a, b *fbufs.Domain) (xfer.Facility, error) {
		return xfer.NewCopier(sys.VM, a, b, imageBytes)
	})
	if err != nil {
		t.Fatal(err)
	}
	err = RunBaseline(io.Discard, "mach COW", func(sys *fbufs.System, a, b *fbufs.Domain) (xfer.Facility, error) {
		return xfer.NewCOW(sys.VM, a, b, imageBytes)
	})
	if err != nil {
		t.Fatal(err)
	}
}
