// Imagepipeline: the digital-image-retrieval workload from the paper's
// introduction. A storage server hands 4 MB scans to a filter domain which
// crops them — without copying, using the aggregate object's split/clip
// editing — and forwards the result to a viewer. The same pipeline is run
// over the classic baselines (copy-through-kernel and Mach COW) for
// contrast.
//
//	go run ./examples/imagepipeline
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"fbufs"
	"fbufs/internal/aggregate"
	"fbufs/internal/xfer"
)

const (
	imageBytes = 4 << 20 // one uncompressed scan
	images     = 8
)

// RunFbufs moves images storage -> filter -> viewer with fbufs, cropping
// 25% off each end in the filter without touching a byte, then tears the
// pipeline down (contexts closed, deallocation notices delivered). The
// returned system lets tests verify the teardown left nothing behind.
func RunFbufs(w io.Writer) (*fbufs.System, error) {
	sys := fbufs.New(1 << 15)
	storage := sys.NewDomain("storage")
	filter := sys.NewDomain("filter")
	viewer := sys.NewDomain("viewer")

	path, err := sys.NewPath("scans", fbufs.CachedVolatile(), 64, storage, filter, viewer)
	if err != nil {
		return sys, err
	}
	path.SetQuota(-1) // unlimited for this trusted path
	srcCtx, err := sys.NewCtx(path)
	if err != nil {
		return sys, err
	}
	// The filter edits messages in its own domain: it needs its own
	// allocation context for new DAG nodes.
	filterPath, err := sys.NewPath("filter-edits", fbufs.CachedVolatile(), 1, filter, viewer)
	if err != nil {
		return sys, err
	}
	filterPath.SetQuota(32)
	filterCtx, err := aggregate.NewCtx(sys.Fbufs, filterPath, true)
	if err != nil {
		return sys, err
	}

	img := make([]byte, imageBytes)
	for i := range img {
		img[i] = byte(i * 13)
	}

	start := sys.Now()
	var delivered int64
	for n := 0; n < images; n++ {
		m, err := srcCtx.NewData(img)
		if err != nil {
			return sys, err
		}
		if err := m.Transfer(storage, filter); err != nil {
			return sys, err
		}
		fm, err := m.ViewFor(filter)
		if err != nil {
			return sys, err
		}
		if err := m.Free(storage); err != nil {
			return sys, err
		}
		// Crop: drop a quarter from each end. No bytes move — the new
		// message references the middle of the original buffers.
		cropped, err := filterCtx.ClipHead(fm, imageBytes/4)
		if err != nil {
			return sys, err
		}
		cropped, err = filterCtx.ClipTail(cropped, imageBytes/4)
		if err != nil {
			return sys, err
		}
		if err := cropped.Transfer(filter, viewer); err != nil {
			return sys, err
		}
		vm, err := cropped.ViewFor(viewer)
		if err != nil {
			return sys, err
		}
		if err := cropped.Free(filter); err != nil {
			return sys, err
		}
		if err := vm.Touch(viewer); err != nil {
			return sys, err
		}
		delivered += int64(vm.Len())
		if err := vm.Free(viewer); err != nil {
			return sys, err
		}
	}
	elapsed := sys.Now() - start

	// Teardown: release the contexts' arenas and deliver the deallocation
	// notices the receivers' frees queued, so every buffer recycles.
	if err := srcCtx.Close(); err != nil {
		return sys, err
	}
	if err := filterCtx.Close(); err != nil {
		return sys, err
	}
	doms := []*fbufs.Domain{storage, filter, viewer}
	for _, h := range doms {
		for _, o := range doms {
			sys.Fbufs.DeliverNotices(h, o)
		}
	}

	fmt.Fprintf(w, "%-18s %6.1f ms for %d images  (%5.0f Mb/s delivered, crop copied 0 bytes)\n",
		"fbufs (cropping)", elapsed.Microseconds()/1000, images,
		fbufs.Mbps(delivered, elapsed))
	return sys, nil
}

// RunBaseline runs storage -> viewer with a classic transfer facility (no
// cropping: the baselines move whole buffers).
func RunBaseline(w io.Writer, name string, mk func(sys *fbufs.System, a, b *fbufs.Domain) (xfer.Facility, error)) error {
	sys := fbufs.New(1 << 15)
	a := sys.NewDomain("storage")
	b := sys.NewDomain("viewer")
	f, err := mk(sys, a, b)
	if err != nil {
		return err
	}
	start := sys.Now()
	for n := 0; n < images; n++ {
		if err := f.Hop(); err != nil {
			return err
		}
	}
	elapsed := sys.Now() - start
	fmt.Fprintf(w, "%-18s %6.1f ms for %d images  (%5.0f Mb/s)\n",
		name, elapsed.Microseconds()/1000, images,
		fbufs.Mbps(int64(imageBytes)*images, elapsed))
	return nil
}

func main() {
	fmt.Printf("image retrieval: %d scans of %d MB, storage -> filter -> viewer\n\n",
		images, imageBytes>>20)
	if _, err := RunFbufs(os.Stdout); err != nil {
		log.Fatal(err)
	}
	err := RunBaseline(os.Stdout, "copy", func(sys *fbufs.System, a, b *fbufs.Domain) (xfer.Facility, error) {
		return xfer.NewCopier(sys.VM, a, b, imageBytes)
	})
	if err != nil {
		log.Fatal(err)
	}
	err = RunBaseline(os.Stdout, "mach COW", func(sys *fbufs.System, a, b *fbufs.Domain) (xfer.Facility, error) {
		return xfer.NewCOW(sys.VM, a, b, imageBytes)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe fbuf pipeline crosses TWO boundaries and still beats the one-hop")
	fmt.Println("baselines: immutable buffers plus aggregate editing eliminate every copy.")
}
