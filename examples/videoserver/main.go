// Videoserver: the continuous-media workload the paper's introduction
// motivates ("such applications include real-time video"). A capture
// driver in the kernel produces 30 frames per second of uncompressed
// 300 KB video; each frame crosses a decoder domain and a display domain.
// The example contrasts fbuf optimization levels by the simulated CPU time
// each frame costs and the headroom left at 30 fps.
//
//	go run ./examples/videoserver
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"fbufs"
	"fbufs/internal/aggregate"
	"fbufs/internal/core"
)

const (
	frameBytes = 300 * 1024 // one uncompressed frame
	frames     = 30         // one second of video
	fbufPages  = 16         // 64 KB capture buffers
)

// Run pushes one second of video through kernel -> decoder -> display
// with the given fbuf variant, printing the cost line to w, and returns
// the simulated system for inspection.
func Run(w io.Writer, name string, opts fbufs.Options) (*fbufs.System, error) {
	sys := fbufs.New(1 << 14)
	capture := sys.Kernel() // the capture driver is trusted
	decoder := sys.NewDomain("decoder")
	display := sys.NewDomain("display")

	path, err := sys.NewPath("camera0", opts, fbufPages, capture, decoder, display)
	if err != nil {
		return sys, err
	}
	path.SetQuota(32)
	ctx, err := aggregate.NewCtx(sys.Fbufs, path, opts.Integrated)
	if err != nil {
		return sys, err
	}

	frame := make([]byte, frameBytes)
	for i := range frame {
		frame[i] = byte(i * 7)
	}

	start := sys.Now()
	for f := 0; f < frames; f++ {
		// Capture: the driver assembles a frame (in a real system the
		// hardware DMAs it; writing charges the memory touches).
		m, err := ctx.NewData(frame)
		if err != nil {
			return sys, err
		}
		// Decoder reads the whole frame (headers + inspection), then
		// annotates it by *prepending* metadata — buffers are immutable,
		// so editing means logical concatenation, never modification.
		if err := m.Transfer(capture, decoder); err != nil {
			return sys, err
		}
		if err := m.Touch(decoder); err != nil {
			return sys, err
		}
		// Display consumes and frees.
		if err := m.Transfer(decoder, display); err != nil {
			return sys, err
		}
		if err := m.Touch(display); err != nil {
			return sys, err
		}
		// Each holder releases its references.
		view, err := m.ViewFor(display)
		if err != nil {
			return sys, err
		}
		if err := view.Free(display); err != nil {
			return sys, err
		}
		view2, err := m.ViewFor(decoder)
		if err != nil {
			return sys, err
		}
		if err := view2.Free(decoder); err != nil {
			return sys, err
		}
		if err := m.Free(capture); err != nil {
			return sys, err
		}
	}
	elapsed := sys.Now() - start
	if err := ctx.Close(); err != nil {
		return sys, err
	}
	perFrame := elapsed / frames
	budget := fbufs.Duration(1_000_000_000 / 30) // 33.3 ms per frame at 30 fps
	fmt.Fprintf(w, "%-22s %8.2f ms/frame  CPU budget used at 30fps: %5.1f%%  throughput %6.0f Mb/s\n",
		name, perFrame.Microseconds()/1000, 100*float64(perFrame)/float64(budget),
		fbufs.Mbps(int64(frameBytes)*frames, elapsed))
	return sys, nil
}

func main() {
	fmt.Printf("video pipeline: %d frames of %d KB through kernel -> decoder -> display\n\n",
		frames, frameBytes/1024)
	// All variants run the integrated system; only caching/volatility vary.
	integrated := func(o fbufs.Options) fbufs.Options { o.Integrated = true; return o }
	variants := []struct {
		name string
		opts fbufs.Options
	}{
		{"cached/volatile", fbufs.CachedVolatile()},
		{"cached only", integrated(fbufs.CachedNonVolatile())},
		{"uncached", integrated(core.Uncached())},
		{"plain (no opts)", integrated(core.UncachedNonVolatile())},
	}
	for _, v := range variants {
		if _, err := Run(os.Stdout, v.name, v.opts); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nCaching turns per-frame VM work into free-list reuse. The volatile and")
	fmt.Println("non-volatile variants tie here because the capture driver is the kernel:")
	fmt.Println("immutability enforcement for a trusted originator is a no-op (paper, 2.1.3).")
}
