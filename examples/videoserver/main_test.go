package main

import (
	"io"
	"testing"

	"fbufs"
	"fbufs/internal/core"
)

// TestVideoserverVariants runs every fbuf variant of the pipeline and
// asserts the exit state: invariants hold and no fbuf outlives the run
// (the capture driver is the originator, so the final kernel Free must
// recycle everything).
func TestVideoserverVariants(t *testing.T) {
	integrated := func(o fbufs.Options) fbufs.Options { o.Integrated = true; return o }
	variants := []struct {
		name string
		opts fbufs.Options
	}{
		{"cached-volatile", fbufs.CachedVolatile()},
		{"cached", integrated(fbufs.CachedNonVolatile())},
		{"uncached", integrated(core.Uncached())},
		{"plain", integrated(core.UncachedNonVolatile())},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			sys, err := Run(io.Discard, v.name, v.opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Fbufs.CheckInvariants(); err != nil {
				t.Fatalf("invariants violated after run: %v", err)
			}
			if err := sys.Fbufs.CheckConverged(); err != nil {
				t.Fatalf("example leaked fbufs: %v", err)
			}
			if st := sys.Fbufs.Snapshot(); st.Allocs == 0 {
				t.Error("pipeline allocated nothing")
			}
		})
	}
}
