// Quickstart: allocate a fast buffer on an I/O data path, fill it in a
// producer domain, transfer it with copy semantics (zero copies, zero
// mapping work in the steady state) to a consumer domain, and watch the
// buffer recycle onto the path's LIFO free list.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fbufs"
)

func main() {
	sys := fbufs.New(1024) // one simulated host with 4 MB of page frames

	producer := sys.NewDomain("producer")
	consumer := sys.NewDomain("consumer")

	// An I/O data path declares, at allocation time, the sequence of
	// protection domains buffers will traverse — the locality the fbuf
	// cache exploits.
	path, err := sys.NewPath("sensor-feed", fbufs.CachedVolatile(), 4, producer, consumer)
	if err != nil {
		log.Fatal(err)
	}

	payload := make([]byte, 3*fbufs.PageSize)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	out := make([]byte, len(payload))

	for round := 1; round <= 3; round++ {
		start := sys.Now()
		buf, err := path.Alloc()
		if err != nil {
			log.Fatal(err)
		}
		if err := buf.Write(producer, 0, payload); err != nil {
			log.Fatal(err)
		}
		if err := sys.Fbufs.Transfer(buf, producer, consumer); err != nil {
			log.Fatal(err)
		}
		// The volatile contract: the producer keeps write permission, so
		// a consumer that must trust the contents calls Secure first.
		// These two domains cooperate, so we acknowledge the volatility
		// and skip the Secure remap cost.
		if !buf.Secured() {
			// An untrusting consumer would sys.Fbufs.Secure(buf, consumer) here.
		}
		if err := buf.Read(consumer, 0, out); err != nil {
			log.Fatal(err)
		}
		if err := sys.Fbufs.Free(buf, consumer); err != nil {
			log.Fatal(err)
		}
		if err := sys.Fbufs.Free(buf, producer); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d: %5d bytes across the domain boundary in %v simulated\n",
			round, len(payload), sys.Now()-start)
	}

	st := sys.Fbufs.Snapshot()
	fmt.Printf("\nallocator: %d allocs, %d cache hits, %d mapping ops during transfer\n",
		st.Allocs, st.CacheHits, st.MappingsBuilt)
	fmt.Printf("free list depth: %d (the fbuf recycled, mappings intact)\n", path.FreeListLen())
	fmt.Println("\nRound 1 pays for frames, clearing, and mappings. Later rounds reuse")
	fmt.Println("the cached fbuf with zero mapping work; with a working set this small")
	fmt.Println("even the TLB entries stay warm, so the transfer is literally free.")
	fmt.Println("(At large working sets the steady state costs two TLB misses per page,")
	fmt.Println("the paper's 3 us/page — run cmd/fbufbench -exp table1 to see it.)")
}
