// Quickstart: allocate a fast buffer on an I/O data path, fill it in a
// producer domain, transfer it with copy semantics (zero copies, zero
// mapping work in the steady state) to a consumer domain, and watch the
// buffer recycle onto the path's LIFO free list.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"fbufs"
)

// Run executes the quickstart scenario, printing to w, and returns the
// simulated system for inspection (tests check invariants and leak
// state on it).
func Run(w io.Writer) (*fbufs.System, error) {
	sys := fbufs.New(1024) // one simulated host with 4 MB of page frames

	producer := sys.NewDomain("producer")
	consumer := sys.NewDomain("consumer")

	// An I/O data path declares, at allocation time, the sequence of
	// protection domains buffers will traverse — the locality the fbuf
	// cache exploits.
	path, err := sys.NewPath("sensor-feed", fbufs.CachedVolatile(), 4, producer, consumer)
	if err != nil {
		return sys, err
	}

	payload := make([]byte, 3*fbufs.PageSize)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	out := make([]byte, len(payload))

	for round := 1; round <= 3; round++ {
		start := sys.Now()
		buf, err := path.Alloc()
		if err != nil {
			return sys, err
		}
		if err := buf.Write(producer, 0, payload); err != nil {
			return sys, err
		}
		if err := sys.Fbufs.Transfer(buf, producer, consumer); err != nil {
			return sys, err
		}
		// The volatile contract: the producer keeps write permission, so
		// a consumer that must trust the contents calls Secure first.
		// These two domains cooperate, so we acknowledge the volatility
		// and skip the Secure remap cost.
		if !buf.Secured() {
			// An untrusting consumer would sys.Fbufs.Secure(buf, consumer) here.
		}
		if err := buf.Read(consumer, 0, out); err != nil {
			return sys, err
		}
		if err := sys.Fbufs.Free(buf, consumer); err != nil {
			return sys, err
		}
		if err := sys.Fbufs.Free(buf, producer); err != nil {
			return sys, err
		}
		fmt.Fprintf(w, "round %d: %5d bytes across the domain boundary in %v simulated\n",
			round, len(payload), sys.Now()-start)
	}

	st := sys.Fbufs.Snapshot()
	fmt.Fprintf(w, "\nallocator: %d allocs, %d cache hits, %d mapping ops during transfer\n",
		st.Allocs, st.CacheHits, st.MappingsBuilt)
	fmt.Fprintf(w, "free list depth: %d (the fbuf recycled, mappings intact)\n", path.FreeListLen())
	fmt.Fprintln(w, "\nRound 1 pays for frames, clearing, and mappings. Later rounds reuse")
	fmt.Fprintln(w, "the cached fbuf with zero mapping work; with a working set this small")
	fmt.Fprintln(w, "even the TLB entries stay warm, so the transfer is literally free.")
	fmt.Fprintln(w, "(At large working sets the steady state costs two TLB misses per page,")
	fmt.Fprintln(w, "the paper's 3 us/page — run cmd/fbufbench -exp table1 to see it.)")
	return sys, nil
}

func main() {
	if _, err := Run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
