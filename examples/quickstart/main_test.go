package main

import (
	"io"
	"testing"
)

// TestQuickstart runs the example end to end and asserts the exit state:
// invariants hold, nothing leaked (every fbuf recycled to the free
// list), and the steady-state rounds hit the allocator cache.
func TestQuickstart(t *testing.T) {
	sys, err := Run(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Fbufs.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated after run: %v", err)
	}
	if err := sys.Fbufs.CheckConverged(); err != nil {
		t.Fatalf("example leaked fbufs: %v", err)
	}
	st := sys.Fbufs.Snapshot()
	if st.Allocs != 3 {
		t.Errorf("allocs = %d, want 3", st.Allocs)
	}
	if st.CacheHits != 2 {
		t.Errorf("cache hits = %d, want 2 (rounds 2 and 3 must reuse the fbuf)", st.CacheHits)
	}
}
