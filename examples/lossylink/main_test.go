package main

import (
	"io"
	"testing"
)

// TestLossylink runs the reliable transfer lossless and under loss,
// asserting exit state: full delivery, invariants on both hosts, and
// that loss actually forced retransmissions.
func TestLossylink(t *testing.T) {
	for _, drop := range []int{0, 9, 5} {
		e, res, err := Run(io.Discard, drop)
		if err != nil {
			t.Fatalf("dropEvery=%d: %v", drop, err)
		}
		if res.Delivered != 16 {
			t.Fatalf("dropEvery=%d: delivered %d of 16", drop, res.Delivered)
		}
		if err := e.A.Mgr.CheckInvariants(); err != nil {
			t.Fatalf("dropEvery=%d host A invariants: %v", drop, err)
		}
		if err := e.B.Mgr.CheckInvariants(); err != nil {
			t.Fatalf("dropEvery=%d host B invariants: %v", drop, err)
		}
		if drop > 0 && e.A.SWP.Retransmits == 0 {
			t.Errorf("dropEvery=%d: loss produced zero retransmits", drop)
		}
		if drop == 0 && e.A.SWP.Retransmits != 0 {
			t.Errorf("lossless run retransmitted %d PDUs", e.A.SWP.Retransmits)
		}
	}
}
