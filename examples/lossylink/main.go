// Lossylink: reliable bulk transfer over a corrupting network. Two
// simulated DecStations run the full stack — sliding-window transport
// (SWP) over UDP/IP over the Osiris ATM adapters — while the null modem
// corrupts every Nth PDU. Retransmission clones (the paper's stated reason
// immutable fbufs need copy semantics: "the passing layer ... may need to
// retransmit it sometime in the future") carry the transfer to completion.
//
//	go run ./examples/lossylink
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"fbufs"
	"fbufs/internal/netsim"
)

// Run performs the reliable transfer with a 1-in-dropEvery PDU loss rate
// (0 = lossless), printing the summary line to w, and returns the
// two-host rig for inspection.
func Run(w io.Writer, dropEvery int) (*netsim.E2E, netsim.Result, error) {
	cfg := netsim.Config{
		Placement: netsim.UserUser,
		Opts:      fbufs.CachedVolatile(),
		PDUBytes:  16 * 1024,
		MsgBytes:  64 * 1024,
		Count:     16,
		UseSWP:    true,
		DropEvery: dropEvery,
	}
	e, err := netsim.NewE2E(cfg)
	if err != nil {
		return nil, netsim.Result{}, err
	}
	res, err := e.Run()
	if err != nil {
		return e, res, err
	}
	if res.Delivered != cfg.Count {
		return e, res, fmt.Errorf("delivered %d of %d messages", res.Delivered, cfg.Count)
	}
	loss := "lossless"
	if dropEvery > 0 {
		loss = fmt.Sprintf("1-in-%d PDU loss", dropEvery)
	}
	fmt.Fprintf(w, "%-18s delivered %2d/%d msgs  %6.0f Mb/s  retransmits=%-3d acks=%d\n",
		loss, res.Delivered, cfg.Count, res.ThroughputMbps,
		e.A.SWP.Retransmits, e.A.SWP.AcksReceived)
	return e, res, nil
}

func main() {
	fmt.Println("reliable 1MB transfer (16 x 64KB messages) over the simulated ATM link")
	fmt.Println("SWP sliding-window transport: sequence numbers, cumulative acks,")
	fmt.Println("timer-driven retransmission from immutable fbuf clones")
	fmt.Println()
	for _, drop := range []int{0, 19, 9, 5} {
		if _, _, err := Run(os.Stdout, drop); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nEvery message arrives intact regardless of loss rate; the price is")
	fmt.Println("retransmitted PDUs and timeout stalls, never corrupted data.")
}
