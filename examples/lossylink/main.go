// Lossylink: reliable bulk transfer over a corrupting network. Two
// simulated DecStations run the full stack — sliding-window transport
// (SWP) over UDP/IP over the Osiris ATM adapters — while the null modem
// corrupts every Nth PDU. Retransmission clones (the paper's stated reason
// immutable fbufs need copy semantics: "the passing layer ... may need to
// retransmit it sometime in the future") carry the transfer to completion.
//
//	go run ./examples/lossylink
package main

import (
	"fmt"
	"log"

	"fbufs"
	"fbufs/internal/netsim"
)

func run(dropEvery int) {
	cfg := netsim.Config{
		Placement: netsim.UserUser,
		Opts:      fbufs.CachedVolatile(),
		PDUBytes:  16 * 1024,
		MsgBytes:  64 * 1024,
		Count:     16,
		UseSWP:    true,
		DropEvery: dropEvery,
	}
	e, err := netsim.NewE2E(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	loss := "lossless"
	if dropEvery > 0 {
		loss = fmt.Sprintf("1-in-%d PDU loss", dropEvery)
	}
	fmt.Printf("%-18s delivered %2d/%d msgs  %6.0f Mb/s  retransmits=%-3d acks=%d\n",
		loss, res.Delivered, cfg.Count, res.ThroughputMbps,
		e.A.SWP.Retransmits, e.A.SWP.AcksReceived)
}

func main() {
	fmt.Println("reliable 1MB transfer (16 x 64KB messages) over the simulated ATM link")
	fmt.Println("SWP sliding-window transport: sequence numbers, cumulative acks,")
	fmt.Println("timer-driven retransmission from immutable fbuf clones")
	fmt.Println()
	for _, drop := range []int{0, 19, 9, 5} {
		run(drop)
	}
	fmt.Println("\nEvery message arrives intact regardless of loss rate; the price is")
	fmt.Println("retransmitted PDUs and timeout stalls, never corrupted data.")
}
