// Netserver: the microkernel scenario at the heart of the paper — a UDP/IP
// protocol stack in a user-level network server, with application and
// receiver in their own protection domains (the Figure 4 topology, with a
// loopback below IP simulating an infinitely fast network). The example
// sweeps message sizes and prints the single-domain vs three-domain
// throughput, showing that cached/volatile fbufs make the extra domain
// crossings nearly free for large messages.
//
//	go run ./examples/netserver
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"fbufs"
	"fbufs/internal/core"
	"fbufs/internal/protocols"
)

// Measure runs the verified loopback workload in a fresh system — one
// domain when single is true, the app|netserver|receiver split otherwise
// — and returns the steady-state throughput plus the system itself for
// inspection.
func Measure(single bool, opts fbufs.Options, msgBytes int) (float64, *fbufs.System, error) {
	sys := fbufs.New(1 << 14)
	var src, net, sink *fbufs.Domain
	if single {
		d := sys.NewDomain("monolith")
		src, net, sink = d, d, d
	} else {
		src = sys.NewDomain("app")
		net = sys.NewDomain("netserver")
		sink = sys.NewDomain("receiver")
	}
	stack, err := protocols.NewLoopbackStack(sys.Env, protocols.StackConfig{
		Src: src, Net: net, Sink: sink,
		Opts:     opts,
		PDUBytes: 4096 + protocols.UDPHeaderBytes,
	})
	if err != nil {
		return 0, sys, err
	}
	stack.Sink.Verify = true
	if err := stack.SendVerified(0, msgBytes); err != nil { // warm up
		return 0, sys, err
	}
	const iters = 4
	start := sys.Now()
	for i := 1; i <= iters; i++ {
		if err := stack.SendVerified(uint64(i), msgBytes); err != nil {
			return 0, sys, err
		}
	}
	if stack.Sink.VerifyFailures > 0 {
		return 0, sys, fmt.Errorf("%d messages corrupted in flight", stack.Sink.VerifyFailures)
	}
	return fbufs.Mbps(int64(msgBytes)*iters, sys.Now()-start), sys, nil
}

// Run prints the size sweep to w.
func Run(w io.Writer, sizes []int) error {
	fmt.Fprintln(w, "UDP/IP over loopback: app | netserver (UDP/IP) | receiver")
	fmt.Fprintln(w, "every message content-verified end to end")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%10s  %14s  %16s  %18s  %9s\n",
		"msg bytes", "single domain", "3 dom (cached)", "3 dom (uncached)", "3dom/1dom")
	uncached := core.Uncached()
	uncached.Integrated = true
	for _, size := range sizes {
		s, _, err := Measure(true, fbufs.CachedVolatile(), size)
		if err != nil {
			return err
		}
		c, _, err := Measure(false, fbufs.CachedVolatile(), size)
		if err != nil {
			return err
		}
		u, _, err := Measure(false, uncached, size)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%10d  %11.0f Mb/s  %13.0f Mb/s  %15.0f Mb/s  %8.0f%%\n",
			size, s, c, u, 100*c/s)
	}
	fmt.Fprintln(w, "\nWith cached/volatile fbufs, splitting the OS into three protection")
	fmt.Fprintln(w, "domains costs almost nothing once messages are large — the paper's case")
	fmt.Fprintln(w, "for microkernel structure without copy-through-the-kernel penalties.")
	return nil
}

func main() {
	if err := Run(os.Stdout, []int{4096, 16384, 65536, 262144, 1048576}); err != nil {
		log.Fatal(err)
	}
}
