package main

import (
	"io"
	"testing"

	"fbufs"
)

// TestNetserverMeasure runs both topologies at one size and asserts
// exit state: positive verified throughput and manager invariants (the
// stack keeps reusable buffers alive, so convergence is not expected —
// no leak *violations* are).
func TestNetserverMeasure(t *testing.T) {
	single, sysS, err := Measure(true, fbufs.CachedVolatile(), 65536)
	if err != nil {
		t.Fatal(err)
	}
	split, sysC, err := Measure(false, fbufs.CachedVolatile(), 65536)
	if err != nil {
		t.Fatal(err)
	}
	if single <= 0 || split <= 0 {
		t.Fatalf("non-positive throughput: single=%f split=%f", single, split)
	}
	for _, sys := range []*fbufs.System{sysS, sysC} {
		if err := sys.Fbufs.CheckInvariants(); err != nil {
			t.Fatalf("invariants violated after run: %v", err)
		}
	}
	if split > single {
		t.Errorf("three domains (%.0f Mb/s) beat one domain (%.0f Mb/s); domain crossings cannot be free", split, single)
	}
}

// TestNetserverSweep smoke-runs the printed sweep at small sizes.
func TestNetserverSweep(t *testing.T) {
	if err := Run(io.Discard, []int{4096, 16384}); err != nil {
		t.Fatal(err)
	}
}
