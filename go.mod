module fbufs

go 1.22
