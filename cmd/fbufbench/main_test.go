package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "table1"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "fbufs, cached/volatile", "Mach COW"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig3"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Error("figure output missing title")
	}
}

func TestRunUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
