package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "table1", 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "fbufs, cached/volatile", "Mach COW"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig3", 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Error("figure output missing title")
	}
}

// TestRunUnknown is the flag-error table: every unknown -exp spelling
// must return an error naming the valid experiment list.
func TestRunUnknown(t *testing.T) {
	for _, exp := range []string{"fig99", "", "Table1", "chaos,smp"} {
		t.Run("exp="+exp, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(&buf, exp, 0)
			if err == nil {
				t.Fatal("unknown experiment accepted")
			}
			for _, want := range []string{"valid:", "table1", "chaos", "all"} {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
		})
	}
}
