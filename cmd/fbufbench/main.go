// Command fbufbench regenerates the tables and figures of the fbufs paper
// (Druschel & Peterson, SOSP 1993) on the simulated DecStation testbed.
//
// Usage:
//
//	fbufbench [-exp table1|fig3|fig4|fig5|fig6|cpuload|ablations|all]
//
// Output is plain text: one aligned table per paper table, one
// column-per-series table per paper figure. EXPERIMENTS.md records the
// paper-vs-measured comparison for every entry.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fbufs/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig3, fig4, fig5, fig6, cpuload, ablations, all")
	flag.Parse()

	if err := run(os.Stdout, *exp); err != nil {
		fmt.Fprintln(os.Stderr, "fbufbench:", err)
		os.Exit(1)
	}
}

type writerTo interface {
	WriteTo(io.Writer) (int64, error)
}

func run(w io.Writer, exp string) error {
	show := func(r writerTo, err error) error {
		if err != nil {
			return err
		}
		if _, err := r.WriteTo(w); err != nil {
			return err
		}
		_, err = fmt.Fprintln(w)
		return err
	}
	all := exp == "all"
	ran := false
	if all || exp == "table1" {
		ran = true
		if err := show(bench.Table1()); err != nil {
			return err
		}
	}
	if all || exp == "fig3" {
		ran = true
		if err := show(bench.Figure3()); err != nil {
			return err
		}
	}
	if all || exp == "fig4" {
		ran = true
		if err := show(bench.Figure4()); err != nil {
			return err
		}
	}
	if all || exp == "fig5" {
		ran = true
		if err := show(bench.Figure5()); err != nil {
			return err
		}
	}
	if all || exp == "fig6" {
		ran = true
		if err := show(bench.Figure6()); err != nil {
			return err
		}
	}
	if all || exp == "cpuload" {
		ran = true
		if err := show(bench.CPULoad()); err != nil {
			return err
		}
	}
	if all || exp == "ablations" {
		ran = true
		tables, err := bench.Ablations()
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := show(t, nil); err != nil {
				return err
			}
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
