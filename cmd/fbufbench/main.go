// Command fbufbench regenerates the tables and figures of the fbufs paper
// (Druschel & Peterson, SOSP 1993) on the simulated DecStation testbed.
//
// Usage:
//
//	fbufbench [-exp table1|fig3|fig4|fig5|fig6|cpuload|smp|ablations|all]
//	          [-parallel N]
//	          [-json] [-json-out BENCH_report.json]
//	          [-trace out.json] [-metrics out.json]
//
// Output is plain text: one aligned table per paper table, one
// column-per-series table per paper figure. EXPERIMENTS.md records the
// paper-vs-measured comparison for every entry. -json additionally writes
// the machine-readable BENCH_report.json (headline simulated metrics per
// experiment, for tracking the perf trajectory across PRs); -trace and
// -metrics export the observability layer's Chrome trace-event JSON and
// metrics snapshot for the benchmark run. -exp smp prints the deterministic
// simulated-SMP scaling table; -parallel N additionally runs the wall-clock
// driver with N real goroutines (opt-in: the default run stays
// single-threaded and deterministic, and wall-clock numbers never enter the
// JSON report).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fbufs/internal/bench"
	"fbufs/internal/obs"
)

// validExperiments lists the -exp spellings ("chaos" runs only when named
// explicitly; "all" covers the rest).
var validExperiments = []string{
	"table1", "fig3", "fig4", "fig5", "fig6", "cpuload", "smp", "ablations", "chaos", "all",
}

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig3, fig4, fig5, fig6, cpuload, smp, ablations, chaos, all (chaos not in all)")
	parallel := flag.Int("parallel", 0, "also run the wall-clock parallel driver with N real goroutines (0 = off; numbers not written to the JSON report)")
	jsonOut := flag.Bool("json", false, "write the machine-readable benchmark report")
	jsonPath := flag.String("json-out", "BENCH_report.json", "path for the -json report")
	tracePath := flag.String("trace", "", "write Chrome trace-event JSON (Perfetto) to this file")
	metricsPath := flag.String("metrics", "", "write a JSON metrics snapshot to this file")
	flag.Parse()

	var o *obs.Observer
	if *tracePath != "" || *metricsPath != "" {
		o = obs.New(1 << 18)
		bench.SetObserver(o)
	}
	if err := run(os.Stdout, *exp); err != nil {
		fmt.Fprintln(os.Stderr, "fbufbench:", err)
		os.Exit(1)
	}
	if *parallel > 0 {
		if err := runWallClock(os.Stdout, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, "fbufbench:", err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		if err := writeReport(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "fbufbench:", err)
			os.Exit(1)
		}
	}
	if o != nil {
		if err := exportObserved(o, *tracePath, *metricsPath); err != nil {
			fmt.Fprintln(os.Stderr, "fbufbench:", err)
			os.Exit(1)
		}
	}
}

// writeReport builds the machine-readable report and writes it.
func writeReport(path string) error {
	rep, err := bench.BuildReport()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s\n", path, rep.Summary())
	return nil
}

// exportObserved writes the observer's trace and metrics files.
func exportObserved(o *obs.Observer, tracePath, metricsPath string) error {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := o.Tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		bench.PublishObserved()
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := o.Metrics.Snapshot().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

type writerTo interface {
	WriteTo(io.Writer) (int64, error)
}

func run(w io.Writer, exp string) error {
	show := func(r writerTo, err error) error {
		if err != nil {
			return err
		}
		if _, err := r.WriteTo(w); err != nil {
			return err
		}
		_, err = fmt.Fprintln(w)
		return err
	}
	all := exp == "all"
	ran := false
	if all || exp == "table1" {
		ran = true
		if err := show(bench.Table1()); err != nil {
			return err
		}
	}
	if all || exp == "fig3" {
		ran = true
		if err := show(bench.Figure3()); err != nil {
			return err
		}
	}
	if all || exp == "fig4" {
		ran = true
		if err := show(bench.Figure4()); err != nil {
			return err
		}
	}
	if all || exp == "fig5" {
		ran = true
		if err := show(bench.Figure5()); err != nil {
			return err
		}
	}
	if all || exp == "fig6" {
		ran = true
		if err := show(bench.Figure6()); err != nil {
			return err
		}
	}
	if all || exp == "cpuload" {
		ran = true
		if err := show(bench.CPULoad()); err != nil {
			return err
		}
	}
	if all || exp == "smp" {
		ran = true
		if err := show(bench.SMPScaling()); err != nil {
			return err
		}
	}
	if exp == "chaos" { // not part of "all": paper artifacts stay fault-free
		ran = true
		if err := show(bench.Chaos()); err != nil {
			return err
		}
	}
	if all || exp == "ablations" {
		ran = true
		tables, err := bench.Ablations()
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := show(t, nil); err != nil {
				return err
			}
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (valid: %s)", exp, strings.Join(validExperiments, ", "))
	}
	return nil
}

// runWallClock runs the opt-in real-goroutine driver (-parallel N).
func runWallClock(w io.Writer, workers int) error {
	t, err := bench.ParallelWallClock(workers, 20000)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w)
	return err
}
