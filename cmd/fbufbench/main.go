// Command fbufbench regenerates the tables and figures of the fbufs paper
// (Druschel & Peterson, SOSP 1993) on the simulated DecStation testbed.
//
// Usage:
//
//	fbufbench [-exp table1|fig3|fig4|fig5|fig6|cpuload|smp|audit|ablations|chaos|overload|all]
//	          [-parallel N] [-seed N]
//	          [-json] [-json-out BENCH_report.json]
//	          [-baseline BENCH_audit_baseline.json] [-audit-trace out.json]
//	          [-trace out.json] [-metrics out.json]
//
// Output is plain text: one aligned table per paper table, one
// column-per-series table per paper figure. EXPERIMENTS.md records the
// paper-vs-measured comparison for every entry. -json additionally writes
// the machine-readable BENCH_report.json (headline simulated metrics per
// experiment, for tracking the perf trajectory across PRs); with -exp audit
// the JSON holds only the latency-attribution experiment. -trace and
// -metrics export the observability layer's Chrome trace-event JSON and
// metrics snapshot for the benchmark run. -exp audit profiles the fig5
// cached path per transfer stage; -audit-trace writes the audit flight
// recorder's Perfetto dump, and -baseline compares the audit p99s against a
// checked-in report, exiting nonzero on a >10% regression (the CI gate).
// -exp overload runs the production-shaped multi-tenant saturation
// scenario (per-class latency, path-cache eviction sweep, admission
// rejections, copy-fallback duty cycle); -seed N narrows it to one seed
// for CI matrix fan-out, and -json/-baseline write and gate an
// overload-only report the same way the audit pair does.
// -exp smp prints the deterministic simulated-SMP scaling tables — the
// cycle sweep, the 8/16/64-worker burst sweep (global lock vs magazine vs
// depot), and the per-shard depot contention heatmap; -seed N perturbs
// the burst harness's shard placement for the determinism matrix, and
// -json/-baseline write and gate an smp-only report (heatmap p99s)
// against BENCH_smp_baseline.json like the other gates. -parallel N
// additionally runs the wall-clock driver with N real goroutines (opt-in:
// the default run stays single-threaded and deterministic, and wall-clock
// numbers never enter the JSON report).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fbufs/internal/bench"
	"fbufs/internal/obs"
)

// validExperiments lists the -exp spellings ("chaos" runs only when named
// explicitly; "all" covers the rest).
var validExperiments = []string{
	"table1", "fig3", "fig4", "fig5", "fig6", "cpuload", "smp", "audit", "ablations", "chaos", "overload", "rings", "all",
}

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig3, fig4, fig5, fig6, cpuload, smp, audit, ablations, chaos, overload, rings, all (chaos, overload, and rings not in all)")
	seed := flag.Int64("seed", 0, "run -exp overload or -exp rings with this single seed (0 = overload matrix / pinned rings seed; the JSON experiments always use the pinned report seed)")
	parallel := flag.Int("parallel", 0, "also run the wall-clock parallel driver with N real goroutines (0 = off; numbers not written to the JSON report)")
	jsonOut := flag.Bool("json", false, "write the machine-readable benchmark report")
	jsonPath := flag.String("json-out", "BENCH_report.json", "path for the -json report")
	baseline := flag.String("baseline", "", "compare the audit experiment against this baseline report; exit 1 on a >10% p99 regression")
	auditTrace := flag.String("audit-trace", "", "write the audit flight recorder's Perfetto dump to this file")
	tracePath := flag.String("trace", "", "write Chrome trace-event JSON (Perfetto) to this file")
	metricsPath := flag.String("metrics", "", "write a JSON metrics snapshot to this file")
	flag.Parse()

	var o *obs.Observer
	if *tracePath != "" || *metricsPath != "" {
		o = obs.New(1 << 18)
		bench.SetObserver(o)
	}
	if err := run(os.Stdout, *exp, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "fbufbench:", err)
		os.Exit(1)
	}
	if *parallel > 0 {
		if err := runWallClock(os.Stdout, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, "fbufbench:", err)
			os.Exit(1)
		}
	}

	// The audit artifacts (audit-only JSON, Perfetto dump, baseline gate)
	// share one run; -exp overload routes the JSON and the gate to the
	// overload experiment instead.
	var auditRep *bench.Report
	var auditRes *bench.AuditResult
	if (*baseline != "" && *exp != "overload" && *exp != "rings" && *exp != "smp") || *auditTrace != "" || (*jsonOut && *exp == "audit") {
		var err error
		auditRep, auditRes, err = bench.AuditReport()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fbufbench:", err)
			os.Exit(1)
		}
		auditRep.Flags = flagSet()
	}
	var overloadRep *bench.Report
	if *exp == "overload" && (*jsonOut || *baseline != "") {
		var err error
		overloadRep, err = bench.OverloadReport()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fbufbench:", err)
			os.Exit(1)
		}
		overloadRep.Flags = flagSet()
	}
	var ringsRep *bench.Report
	if *exp == "rings" && (*jsonOut || *baseline != "") {
		var err error
		ringsRep, err = bench.RingsReport()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fbufbench:", err)
			os.Exit(1)
		}
		ringsRep.Flags = flagSet()
	}
	var smpRep *bench.Report
	if *exp == "smp" && (*jsonOut || *baseline != "") {
		var err error
		smpRep, err = bench.SMPReport()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fbufbench:", err)
			os.Exit(1)
		}
		smpRep.Flags = flagSet()
	}
	if *jsonOut {
		var err error
		switch *exp {
		case "audit":
			err = writeAuditReport(*jsonPath, auditRep)
		case "overload":
			err = writeNamedReport(*jsonPath, overloadRep,
				fmt.Sprintf("overload quick-class p99 %.0f ns", overloadRep.Experiments["overload"].Headline))
		case "rings":
			err = writeNamedReport(*jsonPath, ringsRep,
				fmt.Sprintf("rings 64B e2e p99 %.0f ns", ringsRep.Experiments["rings"].Headline))
		case "smp":
			err = writeNamedReport(*jsonPath, smpRep,
				fmt.Sprintf("smp burst depot 8w speedup %.2fx", smpRep.Experiments["smp_scaling"].Headline))
		default:
			err = writeReport(*jsonPath, flagSet())
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fbufbench:", err)
			os.Exit(1)
		}
	}
	if *auditTrace != "" {
		if err := writeAuditTrace(*auditTrace, auditRes); err != nil {
			fmt.Fprintln(os.Stderr, "fbufbench:", err)
			os.Exit(1)
		}
	}
	if *baseline != "" {
		gate, rep, compare := "audit", auditRep, bench.CompareAudit
		if *exp == "overload" {
			gate, rep, compare = "overload", overloadRep, bench.CompareOverload
		}
		if *exp == "rings" {
			gate, rep, compare = "rings", ringsRep, bench.CompareRings
		}
		if *exp == "smp" {
			gate, rep, compare = "smp_scaling", smpRep, bench.CompareSMP
		}
		if err := gateReport(*baseline, rep, compare); err != nil {
			fmt.Fprintln(os.Stderr, "fbufbench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s gate: no p99 regression vs %s\n", gate, *baseline)
	}
	if o != nil {
		if err := exportObserved(o, *tracePath, *metricsPath); err != nil {
			fmt.Fprintln(os.Stderr, "fbufbench:", err)
			os.Exit(1)
		}
	}
}

// flagSet records the explicitly set flags for the report stamp.
func flagSet() []string {
	var set []string
	flag.Visit(func(f *flag.Flag) {
		set = append(set, f.Name+"="+f.Value.String())
	})
	return set
}

// writeAuditReport writes the audit-only report.
func writeAuditReport(path string, rep *bench.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: audit p99 %.0f ns\n", path, rep.Experiments["audit_latency_attribution"].Headline)
	return nil
}

// writeAuditTrace writes the audit run's flight-recorder Perfetto dump.
func writeAuditTrace(path string, res *bench.AuditResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.Recorder.WriteDump(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// gateReport compares the current report against the baseline file with
// the given experiment comparator.
func gateReport(path string, cur *bench.Report, compare func(base, cur *bench.Report) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	base, err := bench.LoadReport(f)
	if err != nil {
		return err
	}
	return compare(base, cur)
}

// writeNamedReport writes a single-experiment report with a summary line.
func writeNamedReport(path string, rep *bench.Report, summary string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s\n", path, summary)
	return nil
}

// writeReport builds the machine-readable report and writes it.
func writeReport(path string, flags []string) error {
	rep, err := bench.BuildReport()
	if err != nil {
		return err
	}
	rep.Flags = flags
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s\n", path, rep.Summary())
	return nil
}

// exportObserved writes the observer's trace and metrics files.
func exportObserved(o *obs.Observer, tracePath, metricsPath string) error {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := o.Tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		bench.PublishObserved()
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := o.Metrics.Snapshot().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

type writerTo interface {
	WriteTo(io.Writer) (int64, error)
}

func run(w io.Writer, exp string, seed int64) error {
	show := func(r writerTo, err error) error {
		if err != nil {
			return err
		}
		if _, err := r.WriteTo(w); err != nil {
			return err
		}
		_, err = fmt.Fprintln(w)
		return err
	}
	all := exp == "all"
	ran := false
	if all || exp == "table1" {
		ran = true
		if err := show(bench.Table1()); err != nil {
			return err
		}
	}
	if all || exp == "fig3" {
		ran = true
		if err := show(bench.Figure3()); err != nil {
			return err
		}
	}
	if all || exp == "fig4" {
		ran = true
		if err := show(bench.Figure4()); err != nil {
			return err
		}
	}
	if all || exp == "fig5" {
		ran = true
		if err := show(bench.Figure5()); err != nil {
			return err
		}
	}
	if all || exp == "fig6" {
		ran = true
		if err := show(bench.Figure6()); err != nil {
			return err
		}
	}
	if all || exp == "cpuload" {
		ran = true
		if err := show(bench.CPULoad()); err != nil {
			return err
		}
	}
	if all || exp == "smp" {
		ran = true
		s := seed
		if s == 0 {
			s = bench.SMPSeed
		}
		tables, err := bench.SMPScaling(s)
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := show(t, nil); err != nil {
				return err
			}
		}
	}
	if all || exp == "audit" {
		ran = true
		if err := show(bench.Audit()); err != nil {
			return err
		}
	}
	if exp == "chaos" { // not part of "all": paper artifacts stay fault-free
		ran = true
		if err := show(bench.Chaos()); err != nil {
			return err
		}
	}
	if exp == "overload" { // not part of "all", like chaos: a robustness scenario
		ran = true
		var seeds []int64
		if seed != 0 {
			seeds = []int64{seed}
		}
		if err := show(bench.Overload(seeds...)); err != nil {
			return err
		}
	}
	if exp == "rings" { // not part of "all": the paper artifacts stay on the legacy plane
		ran = true
		if err := show(bench.Rings(seed)); err != nil {
			return err
		}
	}
	if all || exp == "ablations" {
		ran = true
		tables, err := bench.Ablations()
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := show(t, nil); err != nil {
				return err
			}
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (valid: %s)", exp, strings.Join(validExperiments, ", "))
	}
	return nil
}

// runWallClock runs the opt-in real-goroutine driver (-parallel N).
func runWallClock(w io.Writer, workers int) error {
	t, err := bench.ParallelWallClock(workers, 20000)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w)
	return err
}
