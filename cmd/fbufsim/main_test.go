package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// traceEvent mirrors the Chrome trace-event fields the tests care about.
type traceEvent struct {
	Ph   string  `json:"ph"`
	Name string  `json:"name"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Ts   float64 `json:"ts"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

func runWithTrace(t *testing.T, cfg config) (string, *traceFile) {
	t.Helper()
	cfg.tracePath = filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	if err := run(&out, cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cfg.tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return out.String(), &tf
}

// instants returns the instant events ("ph":"i") in file order, skipping
// the "M" metadata records.
func instants(tf *traceFile) []traceEvent {
	var evs []traceEvent
	for _, e := range tf.TraceEvents {
		if e.Ph == "i" {
			evs = append(evs, e)
		}
	}
	return evs
}

// TestCachedVolatileHop2NoMappings is the acceptance check from the issue:
// with cached/volatile fbufs, the second message through a warm path must
// build zero mappings (steady state reuses the first hop's mappings) and
// hit the per-path allocator cache.
func TestCachedVolatileHop2NoMappings(t *testing.T) {
	_, tf := runWithTrace(t, config{
		mode: "cached-volatile", pages: 4, hops: 3, ndomains: 2,
	})
	evs := instants(tf)
	if len(evs) == 0 {
		t.Fatal("trace has no instant events")
	}

	// Hop boundaries are the Alloc events: hop N runs from the Nth Alloc
	// up to (excluding) the N+1th.
	var allocIdx []int
	for i, e := range evs {
		if e.Name == "Alloc" {
			allocIdx = append(allocIdx, i)
		}
	}
	if len(allocIdx) < 3 {
		t.Fatalf("want >=3 Alloc events (one per hop), got %d", len(allocIdx))
	}

	count := func(lo, hi int, name string) int {
		n := 0
		for _, e := range evs[lo:hi] {
			if e.Name == name {
				n++
			}
		}
		return n
	}
	if n := count(allocIdx[0], allocIdx[1], "MappingBuilt"); n == 0 {
		t.Error("hop 1 built no mappings; expected lazy mapping construction")
	}
	if n := count(allocIdx[1], allocIdx[2], "MappingBuilt"); n != 0 {
		t.Errorf("hop 2 built %d mappings; cached/volatile steady state must build none", n)
	}
	if n := count(allocIdx[1], allocIdx[2], "CacheHit"); n == 0 {
		t.Error("hop 2 had no CacheHit; second alloc must come from the per-path cache")
	}
}

// TestPlainHop2StillMaps is the control: without caching, every hop pays
// for its mappings again.
func TestPlainHop2StillMaps(t *testing.T) {
	_, tf := runWithTrace(t, config{
		mode: "plain", pages: 4, hops: 2, ndomains: 2,
	})
	evs := instants(tf)
	var allocIdx []int
	for i, e := range evs {
		if e.Name == "Alloc" {
			allocIdx = append(allocIdx, i)
		}
	}
	if len(allocIdx) < 2 {
		t.Fatalf("want >=2 Alloc events, got %d", len(allocIdx))
	}
	n := 0
	for _, e := range evs[allocIdx[1]:] {
		if e.Name == "MappingBuilt" {
			n++
		}
	}
	if n == 0 {
		t.Error("plain mode hop 2 built no mappings; uncached transfers must map every time")
	}
}

// TestTraceDeterminism re-runs the same configuration and requires
// byte-identical trace files: everything is stamped with simulated time,
// so there is no run-to-run variation to export.
func TestTraceDeterminism(t *testing.T) {
	dir := t.TempDir()
	paths := []string{filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")}
	for _, p := range paths {
		cfg := config{mode: "cached-volatile", pages: 4, hops: 3, ndomains: 3, tracePath: p}
		var out bytes.Buffer
		if err := run(&out, cfg); err != nil {
			t.Fatal(err)
		}
	}
	a, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("identical runs produced different trace files")
	}
}

// TestMetricsExport checks the -metrics snapshot is valid JSON and carries
// the core counters.
func TestMetricsExport(t *testing.T) {
	cfg := config{
		mode: "cached-volatile", pages: 4, hops: 3, ndomains: 2,
		metricsPath: filepath.Join(t.TempDir(), "metrics.json"),
	}
	var out bytes.Buffer
	if err := run(&out, cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cfg.metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v", err)
	}
	if snap.Counters["core.allocs"] != 3 {
		t.Errorf("core.allocs = %d, want 3", snap.Counters["core.allocs"])
	}
	if snap.Counters["core.cache_hits"] != 2 {
		t.Errorf("core.cache_hits = %d, want 2", snap.Counters["core.cache_hits"])
	}
}

// TestStackModeTrace exercises -stack with trace export.
func TestStackModeTrace(t *testing.T) {
	cfg := config{
		mode: "cached-volatile", stack: true, msgBytes: 16384,
		tracePath: filepath.Join(t.TempDir(), "stack.json"),
	}
	var out bytes.Buffer
	if err := run(&out, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Mb/s") {
		t.Error("stack mode output missing throughput line")
	}
	data, err := os.ReadFile(cfg.tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("stack trace is not valid JSON: %v", err)
	}
	// The stack pushes packets through UDP: PktSend events must be present.
	found := false
	for _, e := range tf.TraceEvents {
		if e.Name == "PktSend" {
			found = true
			break
		}
	}
	if !found {
		t.Error("stack trace has no PktSend events")
	}
}

// TestCLIErrors is the flag-error table: every bad invocation must
// return an error (non-zero exit from main) whose text names the valid
// choices, including when -chaos/-conform would otherwise never look at
// the flag.
func TestCLIErrors(t *testing.T) {
	cases := []struct {
		name    string
		cfg     config
		wantErr string
	}{
		{"unknown mode", config{mode: "bogus", ndomains: 2}, "valid: cached-volatile, volatile, cached, plain"},
		{"unknown mode under -chaos", config{mode: "bogus", chaos: true, seed: 1}, "valid: cached-volatile"},
		{"unknown mode under -conform", config{mode: "bogus", conform: true, seed: 1}, "valid: cached-volatile"},
		{"empty mode", config{mode: "", ndomains: 2}, "valid: cached-volatile"},
		{"too few domains", config{mode: "plain", ndomains: 1}, "at least 2 domains"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(&out, tc.cfg)
			if err == nil {
				t.Fatal("bad invocation accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestConformMode replays a conformance seed through the CLI entry point.
func TestConformMode(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, config{mode: "cached-volatile", conform: true, seed: 3}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ok:") {
		t.Errorf("conform replay did not report success:\n%s", out.String())
	}
}
