package main

import (
	"fmt"
	"io"

	"fbufs/internal/conformance"
)

// runConform replays the model-based conformance differential for one
// seed: the seeded command sequence run in lockstep against the
// executable reference model, plus a round of schedule exploration with
// per-worker virtual clocks. A divergence prints the shrunk
// counterexample and returns an error (non-zero exit) — this is the
// replay entry point a failing CI seed names.
func runConform(w io.Writer, seed int64) error {
	const ncmds = 250
	fmt.Fprintf(w, "fbufsim -conform: differential replay, seed %d (%d commands)\n", seed, ncmds)
	if ce := conformance.RunSeed(seed, ncmds, conformance.Config{}); ce != nil {
		fmt.Fprintln(w, ce)
		return fmt.Errorf("conformance divergence at seed %d", seed)
	}
	ec := conformance.ExploreConfig{Workers: 2, PerWorker: 8, Schedules: 6}
	er, err := conformance.Explore(seed, ec)
	if err != nil {
		return err
	}
	if er != nil {
		fmt.Fprintln(w, er)
		return fmt.Errorf("conformance schedule divergence at seed %d", seed)
	}
	if err := conformance.RunAggregate(seed, 150); err != nil {
		fmt.Fprintln(w, err)
		return fmt.Errorf("aggregate conformance divergence at seed %d", seed)
	}
	fmt.Fprintf(w, "ok: sequential differential, %d explored schedules, and the aggregate byte-model matched\n",
		ec.Schedules+1)
	return nil
}
