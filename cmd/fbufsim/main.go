// Command fbufsim runs one configurable cross-domain transfer and prints
// an annotated trace of every costed step — a teaching tool for seeing
// exactly where the fbuf optimizations remove work.
//
// Usage:
//
//	fbufsim [-mode cached-volatile|volatile|cached|plain] [-pages N] [-hops N] [-domains N]
//
// Example output (cached-volatile, second hop): every line shows the
// simulated time consumed by that step; the steady-state hop costs only
// the TLB misses of actually touching the data.
package main

import (
	"flag"
	"fmt"
	"os"

	"fbufs"
	"fbufs/internal/core"
	"fbufs/internal/protocols"
	"fbufs/internal/xkernel"
)

func optsFor(mode string) (fbufs.Options, bool) {
	switch mode {
	case "cached-volatile":
		return core.CachedVolatile(), true
	case "volatile":
		return core.Uncached(), true
	case "cached":
		return core.CachedNonVolatile(), true
	case "plain":
		return core.UncachedNonVolatile(), true
	}
	return fbufs.Options{}, false
}

func main() {
	mode := flag.String("mode", "cached-volatile", "fbuf variant: cached-volatile, volatile, cached, plain")
	pages := flag.Int("pages", 4, "fbuf size in pages")
	hops := flag.Int("hops", 3, "number of messages to trace")
	ndomains := flag.Int("domains", 2, "receiver chain length (>=2 including originator)")
	stack := flag.Bool("stack", false, "trace a 3-domain UDP/IP loopback stack instead (per-layer breakdown)")
	msgBytes := flag.Int("bytes", 65536, "message size for -stack mode")
	flag.Parse()

	opts, ok := optsFor(*mode)
	if !ok {
		fmt.Fprintf(os.Stderr, "fbufsim: unknown mode %q\n", *mode)
		os.Exit(1)
	}
	if *stack {
		if err := traceStack(opts, *mode, *msgBytes); err != nil {
			fmt.Fprintln(os.Stderr, "fbufsim:", err)
			os.Exit(1)
		}
		return
	}
	if *ndomains < 2 {
		fmt.Fprintln(os.Stderr, "fbufsim: need at least 2 domains")
		os.Exit(1)
	}

	sys := fbufs.New(4096)
	doms := []*fbufs.Domain{sys.NewDomain("origin")}
	for i := 1; i < *ndomains; i++ {
		doms = append(doms, sys.NewDomain(fmt.Sprintf("recv%d", i)))
	}
	path, err := sys.NewPath("trace", opts, *pages, doms...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbufsim:", err)
		os.Exit(1)
	}

	step := func(what string, fn func() error) {
		before := sys.Now()
		if err := fn(); err != nil {
			fmt.Printf("    %-42s -> ERROR: %v\n", what, err)
			return
		}
		fmt.Printf("    %-42s %10v\n", what, sys.Now()-before)
	}

	fmt.Printf("fbufsim: %s fbufs, %d pages, %s -> %d receiver(s)\n\n",
		*mode, *pages, doms[0].Name, *ndomains-1)
	word := []byte{0xfb, 0x0f, 0x00, 0x0d}
	for hop := 1; hop <= *hops; hop++ {
		fmt.Printf("message %d:\n", hop)
		var f *fbufs.Fbuf
		step("allocate from path allocator", func() error {
			var err error
			f, err = path.Alloc()
			return err
		})
		step("originator writes one word per page", func() error {
			for p := 0; p < *pages; p++ {
				if err := f.Write(doms[0], p*fbufs.PageSize, word); err != nil {
					return err
				}
			}
			return nil
		})
		for i := 1; i < len(doms); i++ {
			step(fmt.Sprintf("transfer %s -> %s", doms[i-1].Name, doms[i].Name), func() error {
				return sys.Fbufs.Transfer(f, doms[i-1], doms[i])
			})
		}
		last := doms[len(doms)-1]
		step(last.Name+" reads one word per page", func() error {
			buf := make([]byte, 4)
			for p := 0; p < *pages; p++ {
				if err := f.Read(last, p*fbufs.PageSize, buf); err != nil {
					return err
				}
			}
			return nil
		})
		for i := len(doms) - 1; i >= 0; i-- {
			step("free by "+doms[i].Name, func() error {
				return sys.Fbufs.Free(f, doms[i])
			})
		}
		fmt.Println()
	}

	st := sys.Fbufs.Stats
	fmt.Printf("totals: %v simulated; %d allocs (%d cache hits), %d transfers, "+
		"%d mapping ops, %d secures, %d recycles\n",
		sys.Now(), st.Allocs, st.CacheHits, st.Transfers, st.MappingsBuilt,
		st.Secures, st.Recycles)
}

// traceStack runs the paper's 3-domain UDP/IP loopback configuration with
// every layer instrumented, and prints the per-layer cost breakdown for a
// steady-state message (warm-up traffic excluded).
func traceStack(opts fbufs.Options, mode string, msgBytes int) error {
	sys := fbufs.New(1 << 14)
	src := sys.NewDomain("app")
	net := sys.NewDomain("netserver")
	sink := sys.NewDomain("receiver")
	probes := xkernel.NewProbeSet(func() fbufs.Time { return sys.Now() })
	s, err := protocols.NewLoopbackStack(sys.Env, protocols.StackConfig{
		Src: src, Net: net, Sink: sink,
		Opts:     opts,
		PDUBytes: 4096 + protocols.UDPHeaderBytes,
		Wrap:     func(l xkernel.Layer) xkernel.Layer { return probes.Wrap(l) },
	})
	if err != nil {
		return err
	}
	// Warm up allocator caches and mappings, then measure one message.
	if err := s.Send(msgBytes); err != nil {
		return err
	}
	probes.Reset()
	start := sys.Now()
	if err := s.Send(msgBytes); err != nil {
		return err
	}
	total := sys.Now() - start

	fmt.Printf("fbufsim -stack: %s fbufs, %d-byte message, app | netserver (UDP/IP) | receiver\n", mode, msgBytes)
	fmt.Printf("exclusive simulated time per layer (steady state; proxies/IPC are\naccounted to the layer that invoked them):\n\n")
	if err := probes.Report(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\ntotal: %v for %d bytes = %.0f Mb/s\n",
		total, msgBytes, fbufs.Mbps(int64(msgBytes), total))
	return nil
}
