// Command fbufsim runs one configurable cross-domain transfer and prints
// an annotated trace of every costed step — a teaching tool for seeing
// exactly where the fbuf optimizations remove work.
//
// Usage:
//
//	fbufsim [-mode cached-volatile|volatile|cached|plain] [-pages N] [-hops N] [-domains N]
//	        [-profile] [-flightrec dump.json]
//	        [-trace out.json] [-metrics out.json] [-events=false]
//
// Example output (cached-volatile, second hop): every line shows the
// simulated time consumed by that step, with the tracer's structured
// events indented beneath it; the steady-state hop costs only the TLB
// misses of actually touching the data. -trace writes the full event
// stream as Chrome trace-event JSON (open at ui.perfetto.dev), -metrics a
// JSON snapshot of every counter, gauge, and latency histogram. -profile
// attaches the span layer and prints the per-stage latency attribution of
// the run's transfers; -flightrec keeps a bounded flight recorder attached
// and writes a Perfetto dump to the given path if an anomaly (allocation
// failure, copy fallback, fault verdict) trips it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fbufs"
	"fbufs/internal/core"
	"fbufs/internal/obs"
	"fbufs/internal/obs/profile"
	"fbufs/internal/obs/span"
	"fbufs/internal/protocols"
	"fbufs/internal/xkernel"
)

// validModes lists the -mode spellings, in the order help text shows them.
var validModes = []string{"cached-volatile", "volatile", "cached", "plain"}

func optsFor(mode string) (fbufs.Options, bool) {
	switch mode {
	case "cached-volatile":
		return core.CachedVolatile(), true
	case "volatile":
		return core.Uncached(), true
	case "cached":
		return core.CachedNonVolatile(), true
	case "plain":
		return core.UncachedNonVolatile(), true
	}
	return fbufs.Options{}, false
}

// config is the full run configuration (flag values, testable directly).
type config struct {
	mode     string
	pages    int
	hops     int
	ndomains int
	stack    bool
	msgBytes int

	tracePath   string // Chrome trace-event JSON output, "" = off
	metricsPath string // metrics snapshot JSON output, "" = off
	events      bool   // print tracer events under each step
	fbsan       bool   // enable the runtime sanitizer for the run
	profile     bool   // attach the span layer, print latency attribution
	flightPath  string // flight-recorder Perfetto dump on anomaly, "" = off

	chaos   bool  // run the seeded fault-injection schedules instead
	conform bool  // replay the model-based conformance differential instead
	seed    int64 // schedule / differential seed
}

func main() {
	var cfg config
	flag.StringVar(&cfg.mode, "mode", "cached-volatile", "fbuf variant: cached-volatile, volatile, cached, plain")
	flag.IntVar(&cfg.pages, "pages", 4, "fbuf size in pages")
	flag.IntVar(&cfg.hops, "hops", 3, "number of messages to trace")
	flag.IntVar(&cfg.ndomains, "domains", 2, "receiver chain length (>=2 including originator)")
	flag.BoolVar(&cfg.stack, "stack", false, "trace a 3-domain UDP/IP loopback stack instead (per-layer breakdown)")
	flag.IntVar(&cfg.msgBytes, "bytes", 65536, "message size for -stack mode")
	flag.StringVar(&cfg.tracePath, "trace", "", "write Chrome trace-event JSON (Perfetto) to this file")
	flag.StringVar(&cfg.metricsPath, "metrics", "", "write a JSON metrics snapshot to this file")
	flag.BoolVar(&cfg.events, "events", true, "print structured tracer events beneath each step")
	flag.BoolVar(&cfg.fbsan, "fbsan", false, "enable the fbsan runtime sanitizer (canaries, DMA checks, shadow audits)")
	flag.BoolVar(&cfg.profile, "profile", false, "attach per-transfer spans and print the latency attribution")
	flag.StringVar(&cfg.flightPath, "flightrec", "", "attach the flight recorder; write a Perfetto dump here if an anomaly trips it")
	flag.BoolVar(&cfg.chaos, "chaos", false, "run the seeded fault-injection schedules (local + network) and verify convergence")
	flag.BoolVar(&cfg.conform, "conform", false, "replay the model-based conformance differential for -seed")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for -chaos and -conform")
	flag.Parse()

	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "fbufsim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, cfg config) error {
	// Validate the mode before any dispatch: a typo must exit non-zero
	// even when -chaos or -conform would otherwise ignore the flag.
	opts, ok := optsFor(cfg.mode)
	if !ok {
		return fmt.Errorf("unknown mode %q (valid: %s)", cfg.mode, strings.Join(validModes, ", "))
	}
	if cfg.conform {
		return runConform(w, cfg.seed)
	}
	if cfg.chaos {
		return runChaos(w, cfg.seed)
	}
	if cfg.stack {
		return traceStack(w, opts, cfg)
	}
	if cfg.ndomains < 2 {
		return fmt.Errorf("need at least 2 domains")
	}

	sys := fbufs.New(4096)
	if cfg.fbsan {
		sys.Fbufs.EnableSanitizer()
	}
	o := sys.Observe(1 << 16)
	prof, fr := attachProfile(o, cfg)
	doms := []*fbufs.Domain{sys.NewDomain("origin")}
	for i := 1; i < cfg.ndomains; i++ {
		doms = append(doms, sys.NewDomain(fmt.Sprintf("recv%d", i)))
	}
	path, err := sys.NewPath("trace", opts, cfg.pages, doms...)
	if err != nil {
		return err
	}

	step := func(what string, fn func() error) {
		before := sys.Now()
		mark := o.Tracer.Total()
		if err := fn(); err != nil {
			fmt.Fprintf(w, "    %-42s -> ERROR: %v\n", what, err)
			return
		}
		fmt.Fprintf(w, "    %-42s %10v\n", what, sys.Now()-before)
		if cfg.events {
			for _, e := range o.Tracer.Since(mark) {
				fmt.Fprintf(w, "        · %s\n", o.Tracer.Format(e))
			}
		}
	}

	fmt.Fprintf(w, "fbufsim: %s fbufs, %d pages, %s -> %d receiver(s)\n\n",
		cfg.mode, cfg.pages, doms[0].Name, cfg.ndomains-1)
	word := []byte{0xfb, 0x0f, 0x00, 0x0d}
	for hop := 1; hop <= cfg.hops; hop++ {
		fmt.Fprintf(w, "message %d:\n", hop)
		tid := o.BeginTrace("hop", int64(cfg.pages)*fbufs.PageSize)
		var f *fbufs.Fbuf
		step("allocate from path allocator", func() error {
			var err error
			f, err = path.Alloc()
			return err
		})
		step("originator writes one word per page", func() error {
			for p := 0; p < cfg.pages; p++ {
				if err := f.Write(doms[0], p*fbufs.PageSize, word); err != nil {
					return err
				}
			}
			return nil
		})
		for i := 1; i < len(doms); i++ {
			step(fmt.Sprintf("transfer %s -> %s", doms[i-1].Name, doms[i].Name), func() error {
				return sys.Fbufs.Transfer(f, doms[i-1], doms[i])
			})
		}
		last := doms[len(doms)-1]
		step(last.Name+" reads one word per page", func() error {
			buf := make([]byte, 4)
			for p := 0; p < cfg.pages; p++ {
				if err := f.Read(last, p*fbufs.PageSize, buf); err != nil {
					return err
				}
			}
			return nil
		})
		for i := len(doms) - 1; i >= 0; i-- {
			step("free by "+doms[i].Name, func() error {
				return sys.Fbufs.Free(f, doms[i])
			})
		}
		o.EndTrace(tid)
		fmt.Fprintln(w)
	}

	st := sys.Fbufs.Snapshot()
	fmt.Fprintf(w, "totals: %v simulated; %d allocs (%d cache hits), %d transfers, "+
		"%d mapping ops, %d secures, %d recycles\n",
		sys.Now(), st.Allocs, st.CacheHits, st.Transfers, st.MappingsBuilt,
		st.Secures, st.Recycles)
	if cfg.fbsan {
		ss := sys.Fbufs.Sanitizer().Stats()
		fmt.Fprintf(w, "fbsan: %d pages poisoned, %d verified, %d DMA checks, %d shadow audits, %d violations\n",
			ss.PoisonedPages, ss.VerifiedPages, ss.DMAChecks, ss.ShadowAudits, ss.Violations)
	}
	if err := reportProfile(w, prof, fr, cfg); err != nil {
		return err
	}
	return export(sys, o, cfg)
}

// attachProfile wires the span layer, profiler, and flight recorder onto
// the run's observer as the -profile / -flightrec flags request.
func attachProfile(o *obs.Observer, cfg config) (*profile.Profiler, *profile.FlightRecorder) {
	if !cfg.profile && cfg.flightPath == "" {
		return nil, nil
	}
	o.Spans = span.NewRecorder(64)
	var p *profile.Profiler
	if cfg.profile {
		p = profile.NewProfiler()
	}
	var fr *profile.FlightRecorder
	if cfg.flightPath != "" {
		fr = profile.NewFlightRecorder(o, 16)
	}
	profile.Attach(o, p, fr)
	return p, fr
}

// reportProfile prints the attribution table and, when the flight recorder
// tripped, writes its Perfetto dump.
func reportProfile(w io.Writer, p *profile.Profiler, fr *profile.FlightRecorder, cfg config) error {
	if p != nil {
		fmt.Fprintf(w, "\nlatency attribution:\n")
		if err := p.Report().WriteText(w); err != nil {
			return err
		}
	}
	if fr != nil {
		fr.ScanEvents()
		dumped, err := fr.DumpIfTripped(cfg.flightPath)
		if err != nil {
			return err
		}
		if dumped {
			_, an := fr.Tripped()
			fmt.Fprintf(w, "\nflight recorder: anomaly %q at %s — dump written to %s\n",
				an.Kind, an.At, cfg.flightPath)
		} else {
			fmt.Fprintf(w, "\nflight recorder: no anomaly; no dump written\n")
		}
	}
	return nil
}

// export writes the trace and metrics files requested by the flags.
func export(sys *fbufs.System, o *obs.Observer, cfg config) error {
	if cfg.tracePath != "" {
		f, err := os.Create(cfg.tracePath)
		if err != nil {
			return err
		}
		if err := o.Tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if cfg.metricsPath != "" {
		sys.PublishMetrics(o)
		f, err := os.Create(cfg.metricsPath)
		if err != nil {
			return err
		}
		if err := o.Metrics.Snapshot().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// traceStack runs the paper's 3-domain UDP/IP loopback configuration with
// every layer instrumented, and prints the per-layer cost breakdown for a
// steady-state message (warm-up traffic excluded).
func traceStack(w io.Writer, opts fbufs.Options, cfg config) error {
	sys := fbufs.New(1 << 14)
	if cfg.fbsan {
		sys.Fbufs.EnableSanitizer()
	}
	o := sys.Observe(1 << 16)
	prof, fr := attachProfile(o, cfg)
	src := sys.NewDomain("app")
	net := sys.NewDomain("netserver")
	sink := sys.NewDomain("receiver")
	probes := xkernel.NewProbeSet(func() fbufs.Time { return sys.Now() })
	s, err := protocols.NewLoopbackStack(sys.Env, protocols.StackConfig{
		Src: src, Net: net, Sink: sink,
		Opts:     opts,
		PDUBytes: 4096 + protocols.UDPHeaderBytes,
		Wrap:     func(l xkernel.Layer) xkernel.Layer { return probes.Wrap(l) },
	})
	if err != nil {
		return err
	}
	// Warm up allocator caches and mappings, then measure one message.
	if err := s.Send(cfg.msgBytes); err != nil {
		return err
	}
	probes.Reset()
	start := sys.Now()
	if err := s.Send(cfg.msgBytes); err != nil {
		return err
	}
	total := sys.Now() - start

	fmt.Fprintf(w, "fbufsim -stack: %s fbufs, %d-byte message, app | netserver (UDP/IP) | receiver\n", cfg.mode, cfg.msgBytes)
	fmt.Fprintf(w, "exclusive simulated time per layer (steady state; proxies/IPC are\naccounted to the layer that invoked them):\n\n")
	if err := probes.Report(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\ntotal: %v for %d bytes = %.0f Mb/s\n",
		total, cfg.msgBytes, fbufs.Mbps(int64(cfg.msgBytes), total))
	if err := reportProfile(w, prof, fr, cfg); err != nil {
		return err
	}
	return export(sys, o, cfg)
}
