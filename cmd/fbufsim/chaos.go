package main

import (
	"fmt"
	"io"

	"fbufs/internal/chaos"
)

// runChaos executes both seeded fault schedules — the single-host
// allocation/crash schedule and the two-host lossy-link schedule — and
// prints their deterministic reports. Any robustness violation (corrupted
// payload, leaked frame, stranded fbuf, failed convergence) is returned as
// an error, so the process exits non-zero and CI fails loudly.
func runChaos(w io.Writer, seed int64) error {
	local, lerr := chaos.RunLocal(seed)
	fmt.Fprint(w, local.Report)
	net, nerr := chaos.RunNet(seed)
	fmt.Fprint(w, net.Report)
	if lerr != nil {
		return lerr
	}
	return nerr
}
