// Command fbufvet is the fbuf protocol invariant checker. It runs two
// ways:
//
//	go vet -vettool=$(pwd)/fbufvet ./...   # as a vettool (preferred)
//	fbufvet ./...                          # standalone, from the module
//
// It bundles five analyzers — fbufcheck, errflow, detlint, obshook,
// lockorder — each individually switchable (e.g. `go vet -vettool=...
// -detlint=false`).
// See internal/analysis for what each checks and why.
package main

import "fbufs/internal/analysis"

func main() {
	analysis.VetMain()
}
