// Command fbufvet is the fbuf protocol invariant checker. It runs two
// ways:
//
//	go vet -vettool=$(pwd)/fbufvet ./...   # as a vettool (preferred)
//	fbufvet ./...                          # standalone, from the module
//
// It bundles six analyzers — fbufcheck, fbuflife, errflow, detlint,
// obshook, lockorder — each individually switchable (e.g. `go vet
// -vettool=... -detlint=false`). The -json flag emits machine-readable
// diagnostics; -sarif writes a SARIF 2.1.0 document to stdout (one
// combined document in standalone mode, for CI artifact upload).
// See internal/analysis for what each checks and why.
package main

import "fbufs/internal/analysis"

func main() {
	analysis.VetMain()
}
