// Package fbufs is a faithful reimplementation-as-simulation of fast
// buffers (fbufs), the high-bandwidth cross-domain transfer facility of
// Druschel & Peterson (SOSP 1993), together with every substrate the
// paper's evaluation depends on: a byte-accurate simulated virtual memory
// system with protection domains and a software-refilled TLB, Mach-style
// IPC with proxy objects, an x-kernel protocol graph (UDP/IP, loopback,
// sliding-window test protocols), the Bellcore Osiris ATM adapter with its
// TurboChannel DMA model, and the baseline transfer mechanisms the paper
// compares against (copy, Mach copy-on-write, DASH page remapping).
//
// This package is the public facade: a System bundles one simulated host,
// and the type aliases re-export the core vocabulary. The quickstart:
//
//	sys := fbufs.New(4096)
//	src := sys.NewDomain("producer")
//	dst := sys.NewDomain("consumer")
//	path, _ := sys.NewPath("video", fbufs.CachedVolatile(), 4, src, dst)
//	buf, _ := path.Alloc()
//	buf.Write(src, 0, frame)
//	sys.Fbufs.Transfer(buf, src, dst)   // zero copies, zero mapping work
//	buf.Read(dst, 0, out)
//	sys.Fbufs.Free(buf, dst)
//	sys.Fbufs.Free(buf, src)            // recycled onto the path's free list
//
// All costs are charged in simulated time calibrated to the paper's
// DecStation 5000/200 measurements; sys.Now() reads the clock, and
// package fbufs/internal/bench regenerates the paper's tables and figures.
package fbufs

import (
	"fbufs/internal/aggregate"
	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/obs"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
	"fbufs/internal/xkernel"
)

// Re-exported vocabulary types. These are aliases, so values flow freely
// between the facade and the underlying packages.
type (
	// Domain is a simulated protection domain.
	Domain = domain.Domain
	// DataPath is a per-I/O-data-path fbuf allocator.
	DataPath = core.DataPath
	// Fbuf is a fast buffer.
	Fbuf = core.Fbuf
	// Options selects an fbuf optimization level.
	Options = core.Options
	// Msg is an immutable aggregate message (x-kernel style DAG).
	Msg = aggregate.Msg
	// Ctx is an allocation context for building and editing messages.
	Ctx = aggregate.Ctx
	// Time is simulated time in nanoseconds.
	Time = simtime.Time
	// Duration is a span of simulated time.
	Duration = simtime.Duration
	// Observer is the unified tracing + metrics handle (package obs).
	Observer = obs.Observer
	// Stats is the fbuf facility's counter snapshot.
	Stats = core.Stats
)

// Option-set constructors, named as in the paper's Table 1.
var (
	// CachedVolatile is the full-optimization configuration.
	CachedVolatile = core.CachedVolatile
	// Uncached is the volatile, uncached configuration.
	Uncached = core.Uncached
	// CachedNonVolatile caches but eagerly enforces immutability.
	CachedNonVolatile = core.CachedNonVolatile
	// UncachedNonVolatile is the plain-fbufs baseline.
	UncachedNonVolatile = core.UncachedNonVolatile
)

// PageSize is the simulated machine's page size (4 KB).
const PageSize = machine.PageSize

// System is one simulated shared-memory host: clock, VM, domains, the
// fbuf facility, and the protocol-stack environment.
type System struct {
	Clock   *simtime.Clock
	VM      *vm.System
	Domains *domain.Registry
	Fbufs   *core.Manager
	Env     *xkernel.Env
}

// New creates a host with the given number of physical page frames,
// using the calibrated DecStation 5000/200 cost profile.
func New(frames int) *System {
	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), frames, vm.ClockSink{Clock: clk})
	reg := domain.NewRegistry(sys)
	mgr := core.NewManager(sys, reg)
	mgr.EmptyLeafInit = aggregate.EmptyLeafImage
	env := xkernel.NewEnv(sys, mgr, reg)
	return &System{Clock: clk, VM: sys, Domains: reg, Fbufs: mgr, Env: env}
}

// Now returns the current simulated time.
func (s *System) Now() Time { return s.Clock.Now() }

// Observe attaches a fresh observer (event ring of eventCap entries plus a
// metrics registry) to the host and returns it. Existing domains and paths
// are labelled in the trace; layers emit through it from then on.
func (s *System) Observe(eventCap int) *Observer {
	o := obs.New(eventCap)
	o.SetNow(s.Clock.Now)
	s.VM.Obs = o
	s.Fbufs.RegisterTraceNames("")
	return o
}

// PublishMetrics writes the host's counters (fbuf facility, VM, TLB) into
// the observer's registry, ready for a JSON snapshot export. The observer's
// own ring statistics ride along, so an export that silently lost events to
// wraparound says so in its metrics.
func (s *System) PublishMetrics(o *Observer) {
	if o == nil {
		return
	}
	s.Fbufs.PublishMetrics(o.Metrics)
	s.VM.PublishMetrics(o.Metrics)
	o.PublishSelfMetrics()
}

// Kernel returns the trusted kernel domain.
func (s *System) Kernel() *Domain { return s.Domains.Kernel() }

// NewDomain creates a user-level protection domain attached to the fbuf
// region.
func (s *System) NewDomain(name string) *Domain {
	d := s.Domains.New(name)
	s.Fbufs.AttachDomain(d)
	return d
}

// NewPath creates an I/O data path with its own fbuf allocator. The first
// domain is the originator.
func (s *System) NewPath(name string, opts Options, fbufPages int, domains ...*Domain) (*DataPath, error) {
	return s.Fbufs.NewPath(name, opts, fbufPages, domains...)
}

// NewCtx creates a message-building context over a data path.
func (s *System) NewCtx(path *DataPath) (*Ctx, error) {
	return aggregate.NewCtx(s.Fbufs, path, path.Options().Integrated)
}

// OpenMsg reconstructs (with full validation) a message view from an
// integrated-transfer DAG root in the given domain.
func (s *System) OpenMsg(d *Domain, root vm.VA) (*Msg, error) {
	return aggregate.Open(s.Fbufs, d, root)
}

// Mbps converts a byte count over a simulated duration into megabits per
// second — the unit the paper reports.
func Mbps(bytes int64, elapsed Duration) float64 { return simtime.Mbps(bytes, elapsed) }
