// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment and reports
// the headline *simulated* metric (sim-us/page or sim-Mb/s) alongside Go's
// wall-clock ns/op; the simulated metrics are the reproduction results and
// are independent of the machine running the tests.
//
//	go test -bench=. -benchmem
//
// The same experiments print in full via cmd/fbufbench.
package fbufs_test

import (
	"strconv"
	"testing"

	"fbufs"
	"fbufs/internal/bench"
	"fbufs/internal/core"
	"fbufs/internal/netsim"
	"fbufs/internal/protocols"
)

// BenchmarkTable1 regenerates Table 1 and reports the cached/volatile
// per-page cost (the paper's 3 us headline).
func BenchmarkTable1(b *testing.B) {
	var table *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		table, err = bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	if v, err := strconv.ParseFloat(table.Rows[0][1], 64); err == nil {
		b.ReportMetric(v, "sim-us/page")
	}
}

// BenchmarkFigure3 regenerates Figure 3 and reports cached/volatile
// throughput at 256 KB.
func BenchmarkFigure3(b *testing.B) {
	var fig *bench.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = bench.Figure3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bench.ReportMetric(fig, "fbufs, cached/volatile"), "sim-Mb/s")
}

// BenchmarkFigure4 regenerates the loopback experiment and reports the
// 3-domain cached throughput at 1 MB.
func BenchmarkFigure4(b *testing.B) {
	var fig *bench.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = bench.Figure4()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bench.ReportMetric(fig, "3 domains, cached fbufs"), "sim-Mb/s")
}

// BenchmarkFigure5 regenerates the cached/volatile end-to-end experiment
// and reports user-user throughput at 1 MB (the paper's 285 Mb/s ceiling).
func BenchmarkFigure5(b *testing.B) {
	var fig *bench.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = bench.Figure5()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bench.ReportMetric(fig, "user-user"), "sim-Mb/s")
}

// BenchmarkFigure6 regenerates the uncached/non-volatile end-to-end
// experiment and reports user-user throughput at 1 MB.
func BenchmarkFigure6(b *testing.B) {
	var fig *bench.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = bench.Figure6()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bench.ReportMetric(fig, "user-user"), "sim-Mb/s")
}

// BenchmarkCPULoadTable regenerates the section 4 CPU-load table.
func BenchmarkCPULoadTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.CPULoad(); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benchmarks, one per design choice DESIGN.md calls out.

func BenchmarkAblationOptimizations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationOptimizations(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationClearing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationClearing(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationIntegrated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationIntegrated(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFreeListDiscipline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationFreeListDiscipline(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSharedLibraries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationSharedLibraries(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBusContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationBusContention(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPDUSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationPDUSize(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationWindow(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Real-implementation micro-benchmarks ---
//
// Beyond the simulated metrics, these measure the actual Go implementation
// overhead of the hot paths (wall-clock ns/op), useful when evolving the
// library itself.

// BenchmarkRealCachedVolatileHop measures one alloc/write/transfer/read/
// free cycle through the real mechanism code.
func BenchmarkRealCachedVolatileHop(b *testing.B) {
	sys := fbufs.New(1024)
	src := sys.NewDomain("src")
	dst := sys.NewDomain("dst")
	path, err := sys.NewPath("bench", fbufs.CachedVolatile(), 4, src, dst)
	if err != nil {
		b.Fatal(err)
	}
	word := []byte{1, 2, 3, 4}
	buf := make([]byte, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := path.Alloc()
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Write(src, 0, word); err != nil {
			b.Fatal(err)
		}
		if err := sys.Fbufs.Transfer(f, src, dst); err != nil {
			b.Fatal(err)
		}
		if err := f.Read(dst, 0, buf); err != nil {
			b.Fatal(err)
		}
		if err := sys.Fbufs.Free(f, dst); err != nil {
			b.Fatal(err)
		}
		if err := sys.Fbufs.Free(f, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealAggregateOps measures DAG editing throughput.
func BenchmarkRealAggregateOps(b *testing.B) {
	sys := fbufs.New(4096)
	src := sys.NewDomain("src")
	path, err := sys.NewPath("bench", fbufs.CachedVolatile(), 4, src)
	if err != nil {
		b.Fatal(err)
	}
	path.SetQuota(64)
	ctx, err := sys.NewCtx(path)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := ctx.NewData(data)
		if err != nil {
			b.Fatal(err)
		}
		h, err := ctx.Push(m, []byte{1, 2, 3, 4, 5, 6, 7, 8})
		if err != nil {
			b.Fatal(err)
		}
		a, rest, err := ctx.Split(h, 5000)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Free(src); err != nil {
			b.Fatal(err)
		}
		if err := rest.Free(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealLoopbackStack measures a full 3-domain UDP/IP loopback
// message through the real protocol code.
func BenchmarkRealLoopbackStack(b *testing.B) {
	sys := fbufs.New(1 << 14)
	src := sys.NewDomain("app")
	net := sys.NewDomain("netserver")
	sink := sys.NewDomain("receiver")
	s, err := protocols.NewLoopbackStack(sys.Env, protocols.StackConfig{
		Src: src, Net: net, Sink: sink,
		Opts:     core.CachedVolatile(),
		PDUBytes: 4096 + protocols.UDPHeaderBytes,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Send(65536); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.Sink.ReceivedBytes)/float64(b.N), "bytes/msg")
}

// BenchmarkRealEndToEnd measures a full two-host simulated transfer.
func BenchmarkRealEndToEnd(b *testing.B) {
	var res netsim.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = netsim.Run(netsim.Config{
			Placement: netsim.UserUser,
			Opts:      core.CachedVolatile(),
			PDUBytes:  16 * 1024,
			MsgBytes:  256 * 1024,
			Count:     5,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ThroughputMbps, "sim-Mb/s")
}

// --- Parallel micro-benchmarks (wall-clock, machine-dependent) ---
//
// These exercise the data-plane hot paths with real goroutines: every
// goroutine hammers ONE shared path. Run with -race in CI's smp job. The
// committed SMP numbers come from the deterministic harness behind
// `fbufbench -exp smp` instead.

// BenchmarkParallelMagazineAllocFree measures alloc/free cycles where each
// goroutine owns a private magazine — steady state touches no shared lock.
func BenchmarkParallelMagazineAllocFree(b *testing.B) {
	sys := fbufs.New(1 << 14)
	src := sys.NewDomain("src")
	dst := sys.NewDomain("dst")
	path, err := sys.NewPath("bench", fbufs.CachedVolatile(), 1, src, dst)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		mag := path.NewMagazine(0)
		defer mag.Drain()
		for pb.Next() {
			f, err := mag.Alloc()
			if err != nil {
				b.Error(err)
				return
			}
			if err := mag.Free(f, src); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkParallelGlobalAllocFree is the shared-lock baseline: the same
// cycle through the path free list, every op serialized on the path lock.
func BenchmarkParallelGlobalAllocFree(b *testing.B) {
	sys := fbufs.New(1 << 14)
	src := sys.NewDomain("src")
	dst := sys.NewDomain("dst")
	path, err := sys.NewPath("bench", fbufs.CachedVolatile(), 1, src, dst)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			f, err := path.Alloc()
			if err != nil {
				b.Error(err)
				return
			}
			if err := sys.Fbufs.Free(f, src); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkParallelTransfer measures the transfer/dup/free reference flow
// under goroutine concurrency — the atomic Fbuf state machine's hot path.
func BenchmarkParallelTransfer(b *testing.B) {
	sys := fbufs.New(1 << 14)
	src := sys.NewDomain("src")
	dst := sys.NewDomain("dst")
	path, err := sys.NewPath("bench", fbufs.CachedVolatile(), 1, src, dst)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			f, err := path.Alloc()
			if err != nil {
				b.Error(err)
				return
			}
			if err := sys.Fbufs.Transfer(f, src, dst); err != nil {
				b.Error(err)
				return
			}
			if err := sys.Fbufs.Free(f, dst); err != nil {
				b.Error(err)
				return
			}
			if err := sys.Fbufs.Free(f, src); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// --- Aggregate allocation benchmarks ---
//
// BenchmarkAggregateSteadyState{Unpooled,Pooled} pin the satellite claim
// that Msg-DAG pooling cuts steady-state Go allocations: run both with
// -benchmem and compare allocs/op.

func benchAggregateSteadyState(b *testing.B, pooling bool) {
	sys := fbufs.New(4096)
	src := sys.NewDomain("src")
	path, err := sys.NewPath("bench", fbufs.CachedVolatile(), 4, src)
	if err != nil {
		b.Fatal(err)
	}
	path.SetQuota(64)
	ctx, err := sys.NewCtx(path)
	if err != nil {
		b.Fatal(err)
	}
	ctx.SetPooling(pooling)
	data := make([]byte, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := ctx.NewData(data)
		if err != nil {
			b.Fatal(err)
		}
		h, err := ctx.Push(m, []byte{1, 2, 3, 4, 5, 6, 7, 8})
		if err != nil {
			b.Fatal(err)
		}
		a, rest, err := ctx.Split(h, 5000)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Free(src); err != nil {
			b.Fatal(err)
		}
		if err := rest.Free(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateSteadyStateUnpooled(b *testing.B) {
	benchAggregateSteadyState(b, false)
}

func BenchmarkAggregateSteadyStatePooled(b *testing.B) {
	benchAggregateSteadyState(b, true)
}

func BenchmarkAblationVCILocality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationVCILocality(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCPUMemoryGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationCPUMemoryGap(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationReliableTransport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationReliableTransport(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationChecksum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationChecksum(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDomainChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationDomainChain(); err != nil {
			b.Fatal(err)
		}
	}
}
