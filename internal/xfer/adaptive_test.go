package xfer

import (
	"bytes"
	"testing"

	"fbufs/internal/core"
	"fbufs/internal/faults"
	"fbufs/internal/machine"
	"fbufs/internal/obs"
)

func pattern(n int, seed byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i)*7 + seed
	}
	return p
}

// TestAdaptiveFallsBackAndRecovers drives an injected allocation drought
// through the adaptive facility: payloads must keep arriving intact on the
// copy path, and once the fault lifts a probe must return it to the fast
// path.
func TestAdaptiveFallsBackAndRecovers(t *testing.T) {
	r := newRig(t)
	bytesPerMsg := 2 * machine.PageSize
	a, err := NewAdaptive(r.mgr, r.src, r.dst, core.CachedVolatile(), bytesPerMsg)
	if err != nil {
		t.Fatal(err)
	}
	a.RetryEvery = 2

	// Healthy: fast path.
	for i := 0; i < 3; i++ {
		out, err := a.Send(pattern(bytesPerMsg, byte(i)))
		if err != nil {
			t.Fatalf("healthy hop %d: %v", i, err)
		}
		if !bytes.Equal(out, pattern(bytesPerMsg, byte(i))) {
			t.Fatalf("healthy hop %d: payload corrupted", i)
		}
	}
	if a.Stats.FastHops != 3 || a.Stats.CopyHops != 0 {
		t.Fatalf("healthy stats: %+v", a.Stats)
	}

	// Drought: every path allocation fails.
	plane := faults.NewPlane(7)
	plane.SetRate(faults.PathAlloc, 1_000_000)
	r.sys.FaultPlane = plane

	for i := 0; i < 5; i++ {
		out, err := a.Send(pattern(bytesPerMsg, 0x40+byte(i)))
		if err != nil {
			t.Fatalf("degraded hop %d: %v", i, err)
		}
		if !bytes.Equal(out, pattern(bytesPerMsg, 0x40+byte(i))) {
			t.Fatalf("degraded hop %d: payload corrupted", i)
		}
	}
	if a.Stats.Episodes != 1 {
		t.Fatalf("want 1 episode, stats %+v", a.Stats)
	}
	if a.Stats.CopyHops != 5 {
		t.Fatalf("want 5 copy hops, stats %+v", a.Stats)
	}
	if !a.Degraded() {
		t.Fatal("should still be degraded while the fault holds")
	}

	// Fault lifts: the next probe (every RetryEvery hops) recovers.
	plane.SetRate(faults.PathAlloc, 0)
	recovered := false
	for i := 0; i < 2*a.RetryEvery; i++ {
		out, err := a.Send(pattern(bytesPerMsg, 0x80+byte(i)))
		if err != nil {
			t.Fatalf("recovery hop %d: %v", i, err)
		}
		if !bytes.Equal(out, pattern(bytesPerMsg, 0x80+byte(i))) {
			t.Fatalf("recovery hop %d: payload corrupted", i)
		}
		if !a.Degraded() {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("never recovered after fault lifted, stats %+v", a.Stats)
	}
	if a.Stats.Recoveries != 1 {
		t.Fatalf("want 1 recovery, stats %+v", a.Stats)
	}

	// Back on the fast path for good.
	fast := a.Stats.FastHops
	if err := a.Hop(); err != nil {
		t.Fatal(err)
	}
	if a.Stats.FastHops != fast+1 {
		t.Fatalf("post-recovery hop not fast, stats %+v", a.Stats)
	}
}

// TestAdaptiveEmitsEvents checks the fallback/recover trace events and
// that the manager counted the allocation failures.
func TestAdaptiveEmitsEvents(t *testing.T) {
	r := newRig(t)
	o := obs.New(256)
	r.sys.Obs = o

	a, err := NewAdaptive(r.mgr, r.src, r.dst, core.CachedVolatile(), machine.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	a.RetryEvery = 1

	plane := faults.NewPlane(1)
	plane.SetRate(faults.PathAlloc, 1_000_000)
	r.sys.FaultPlane = plane
	if err := a.Hop(); err != nil {
		t.Fatal(err)
	}
	plane.SetRate(faults.PathAlloc, 0)
	if err := a.Hop(); err != nil {
		t.Fatal(err)
	}

	var sawFall, sawRecover bool
	for _, e := range o.Tracer.Events() {
		switch e.Kind {
		case obs.EvCopyFallback:
			sawFall = true
		case obs.EvCopyRecover:
			sawRecover = true
		}
	}
	if !sawFall || !sawRecover {
		t.Fatalf("missing events: fallback=%v recover=%v", sawFall, sawRecover)
	}
	if st := r.mgr.Snapshot(); st.AllocFailures == 0 {
		t.Fatalf("manager did not count the alloc failure: %+v", st)
	}
}

// TestAdaptivePropagatesNonAllocErrors: lifecycle errors must not be
// papered over by the copy path.
func TestAdaptivePropagatesNonAllocErrors(t *testing.T) {
	r := newRig(t)
	a, err := NewAdaptive(r.mgr, r.src, r.dst, core.CachedVolatile(), machine.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	r.reg.Terminate(r.dst)
	if err := a.Hop(); err == nil {
		t.Fatal("hop to a dead domain must fail loudly")
	}
	if a.Degraded() {
		t.Fatal("a dead domain is not an allocation drought")
	}
}
