package xfer

import (
	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/obs"
)

// AdaptiveStats counts the facility's path decisions. FastHops and
// CopyHops partition successful hops; Episodes counts fast→copy
// transitions (fbuf allocation failed) and Recoveries counts copy→fast
// transitions (a probe allocation succeeded after reclaim).
// ProbeFailures counts degraded-mode probes whose allocation failed
// again — each one doubles the backoff interval.
type AdaptiveStats struct {
	FastHops      uint64
	CopyHops      uint64
	Episodes      uint64
	Recoveries    uint64
	ProbeFailures uint64
}

// Adaptive is the graceful-degradation facility: it rides the fbuf fast
// path until an allocation-exhaustion error (core.IsAllocFailure — path
// quota, fbuf region, or physical frame pool), then transparently falls
// back to the classic copy path, which needs no new frames because the
// Copier's buffers were pinned at setup. While degraded, every RetryEvery
// copy hops it nudges the cache with Manager.ReclaimIdle and re-probes the
// fbuf path; the first successful probe returns it to the fast path. Data
// keeps flowing through every episode — callers only see the stats and the
// EvCopyFallback/EvCopyRecover trace events.
//
// Non-allocation errors (dead domains, closed paths, protection faults)
// are not survivable by copying and propagate unchanged.
type Adaptive struct {
	fb  *FbufFacility
	cp  *Copier
	mgr *core.Manager

	// RetryEvery is the number of degraded hops between fast-path probes
	// (default 4). ReclaimPerProbe bounds chunks torn down before each
	// probe (default 1). BackoffCap bounds the exponential probe backoff:
	// each failed probe doubles the interval, up to RetryEvery*BackoffCap
	// hops; entering degradation (and every recovery) resets the interval
	// to RetryEvery. Default 8; 1 disables backoff. A saturated manager
	// is thus probed ever more rarely instead of paying a reclaim plus a
	// doomed allocation every RetryEvery hops for the whole episode.
	RetryEvery      int
	ReclaimPerProbe int
	BackoffCap      int

	Stats AdaptiveStats

	degraded      bool
	sinceProbe    int
	probeInterval int // current backed-off interval (degraded mode only)
}

// NewAdaptive builds the facility. The copy path's buffers are allocated
// here, at setup — the degraded path must not itself need memory at the
// moment the system is out of it.
func NewAdaptive(mgr *core.Manager, src, dst *domain.Domain, opts core.Options, bytes int) (*Adaptive, error) {
	fb, err := NewFbuf(mgr, src, dst, opts, bytes)
	if err != nil {
		return nil, err
	}
	cp, err := NewCopier(mgr.Sys, src, dst, bytes)
	if err != nil {
		return nil, err
	}
	return &Adaptive{fb: fb, cp: cp, mgr: mgr, RetryEvery: 4, ReclaimPerProbe: 1, BackoffCap: 8}, nil
}

func (a *Adaptive) Name() string  { return "adaptive-" + a.fb.label }
func (a *Adaptive) MsgBytes() int { return a.fb.bytes }

// Degraded reports whether the facility is currently on the copy path.
func (a *Adaptive) Degraded() bool { return a.degraded }

// Path exposes the fast path's data path (nil for uncached options) so
// callers can attach tenant/quota/pinning policy to the connection.
func (a *Adaptive) Path() *core.DataPath { return a.fb.Path() }

// Hop performs one transfer on whichever path is currently live.
func (a *Adaptive) Hop() error {
	_, err := a.hop(nil)
	return err
}

// Send is Hop carrying a real payload; the returned bytes come from the
// receiver's side of whichever path ran, so callers can verify integrity
// across fallback episodes.
func (a *Adaptive) Send(payload []byte) ([]byte, error) {
	return a.hop(payload)
}

// hop runs the state machine. payload == nil means a word-touch hop.
func (a *Adaptive) hop(payload []byte) ([]byte, error) {
	if !a.degraded {
		out, err := a.fbufOnce(payload)
		if err == nil {
			a.Stats.FastHops++
			return out, nil
		}
		if !core.IsAllocFailure(err) {
			return nil, err
		}
		a.degraded = true
		a.sinceProbe = 0
		a.probeInterval = a.RetryEvery
		a.Stats.Episodes++
		a.emit(obs.EvCopyFallback)
	} else {
		a.sinceProbe++
		if a.sinceProbe >= a.probeInterval {
			a.sinceProbe = 0
			a.mgr.ReclaimIdle(a.ReclaimPerProbe)
			out, err := a.fbufOnce(payload)
			if err == nil {
				a.degraded = false
				a.probeInterval = a.RetryEvery
				a.Stats.Recoveries++
				a.Stats.FastHops++
				a.emit(obs.EvCopyRecover)
				return out, nil
			}
			if !core.IsAllocFailure(err) {
				return nil, err
			}
			// Failed probe: back off exponentially so a saturated
			// manager is not hammered for the whole episode.
			a.Stats.ProbeFailures++
			a.probeInterval *= 2
			cap := a.RetryEvery * a.BackoffCap
			if cap < a.RetryEvery {
				cap = a.RetryEvery // BackoffCap < 1: backoff disabled
			}
			if a.probeInterval > cap {
				a.probeInterval = cap
			}
		}
	}
	a.Stats.CopyHops++
	if payload == nil {
		return nil, a.cp.Hop()
	}
	return a.cp.Send(payload)
}

// Close tears down both underlying paths: the fbuf data path and the
// copier's kernel bounce buffer.
func (a *Adaptive) Close() {
	a.fb.Close()
	a.cp.Close()
}

func (a *Adaptive) fbufOnce(payload []byte) ([]byte, error) {
	if payload == nil {
		return nil, a.fb.Hop()
	}
	return a.fb.Send(payload)
}

func (a *Adaptive) emit(kind obs.EventKind) {
	if o := a.mgr.Sys.Obs; o != nil {
		o.Emit(kind, int(a.fb.src.ID), obs.NoTrack, 0, int64(a.fb.bytes))
	}
}
