package xfer

import (
	"testing"

	"fbufs/internal/core"
	"fbufs/internal/faults"
	"fbufs/internal/machine"
)

// TestAdaptiveProbeBackoff pins the degraded-mode probe schedule: the
// interval starts at RetryEvery, doubles on every failed probe, and caps
// at RetryEvery*BackoffCap. With RetryEvery=2, BackoffCap=4 the probes in
// a long drought land on degraded hops 2, 6, 14, 22, 30 — five failures
// where an unbacked-off facility would have burned fifteen.
func TestAdaptiveProbeBackoff(t *testing.T) {
	r := newRig(t)
	a, err := NewAdaptive(r.mgr, r.src, r.dst, core.CachedVolatile(), machine.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	a.RetryEvery = 2
	a.BackoffCap = 4

	plane := faults.NewPlane(11)
	plane.SetRate(faults.PathAlloc, 1_000_000)
	r.sys.FaultPlane = plane

	// Hop 1 degrades; 30 more ride the copy path through the drought.
	for i := 0; i < 31; i++ {
		if err := a.Hop(); err != nil {
			t.Fatalf("drought hop %d: %v", i, err)
		}
	}
	if !a.Degraded() {
		t.Fatal("still droughted, should be degraded")
	}
	if a.Stats.ProbeFailures != 5 {
		t.Fatalf("ProbeFailures = %d after 30 degraded hops, want 5 (backed off)", a.Stats.ProbeFailures)
	}
	if a.Stats.Episodes != 1 {
		t.Fatalf("Episodes = %d, want 1", a.Stats.Episodes)
	}

	// The fault lifts; the next probe is at most a capped interval away.
	plane.SetRate(faults.PathAlloc, 0)
	recovered := false
	for i := 0; i < a.RetryEvery*a.BackoffCap; i++ {
		if err := a.Hop(); err != nil {
			t.Fatalf("recovery hop %d: %v", i, err)
		}
		if !a.Degraded() {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("no recovery within one capped interval, stats %+v", a.Stats)
	}

	// Recovery resets the interval: a fresh episode probes at RetryEvery
	// again, not at the capped interval the last drought reached.
	plane.SetRate(faults.PathAlloc, 1_000_000)
	pf := a.Stats.ProbeFailures
	for i := 0; i < 3; i++ { // degrade + two copy hops = first probe
		if err := a.Hop(); err != nil {
			t.Fatalf("second drought hop %d: %v", i, err)
		}
	}
	if a.Stats.ProbeFailures != pf+1 {
		t.Fatalf("ProbeFailures = %d after fresh episode's RetryEvery hops, want %d (interval not reset)",
			a.Stats.ProbeFailures, pf+1)
	}
	if a.Stats.Episodes != 2 {
		t.Fatalf("Episodes = %d, want 2", a.Stats.Episodes)
	}
}

// TestAdaptiveBackoffDisabled: BackoffCap<=1 keeps the legacy fixed
// cadence.
func TestAdaptiveBackoffDisabled(t *testing.T) {
	r := newRig(t)
	a, err := NewAdaptive(r.mgr, r.src, r.dst, core.CachedVolatile(), machine.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	a.RetryEvery = 2
	a.BackoffCap = 1

	plane := faults.NewPlane(11)
	plane.SetRate(faults.PathAlloc, 1_000_000)
	r.sys.FaultPlane = plane

	for i := 0; i < 21; i++ {
		if err := a.Hop(); err != nil {
			t.Fatalf("drought hop %d: %v", i, err)
		}
	}
	// 20 degraded hops at a fixed interval of 2: probes at 2,4,...,20.
	if a.Stats.ProbeFailures != 10 {
		t.Fatalf("ProbeFailures = %d with backoff disabled, want 10", a.Stats.ProbeFailures)
	}
}
