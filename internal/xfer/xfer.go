// Package xfer implements the cross-domain data-transfer facilities the
// paper compares fbufs against, behind one interface:
//
//   - Copy: software copying through the kernel (copyin + copyout), the
//     Unix read/write baseline;
//   - COW: Mach-style copy-on-write with lazy physical-map updates — each
//     transfer later costs two page faults (receiver touch fault, sender
//     write fault on buffer reuse), as the paper observes of Mach's
//     "relatively high per-page overhead";
//   - Remap: DASH / Tzou-Anderson page remapping with move semantics,
//     including the allocate/clear/deallocate costs their ping-pong
//     benchmark omitted (paper section 2.2.1);
//   - MachNative: Mach's hybrid policy, copying messages under 2 KB and
//     using COW above;
//   - Fbuf: adapters running the fbuf facility (any Options) through the
//     same one-hop experiment shape.
//
// Every facility performs the paper's first-experiment loop body per Hop:
// allocate/reuse a buffer, write one word per page in the sender, transfer,
// read one word per page in the receiver, free. Data genuinely moves (or is
// genuinely shared); integrity tests can verify delivered bytes.
package xfer

import (
	"fmt"

	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/mem"
	"fbufs/internal/obs/span"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

// Facility is one transfer mechanism configured for a fixed message size
// between a fixed sender and receiver.
type Facility interface {
	// Name identifies the mechanism in reports.
	Name() string
	// MsgBytes is the configured message size.
	MsgBytes() int
	// Hop performs one sender-to-receiver message transfer, charging all
	// costs to the VM system's sink.
	Hop() error
}

func pagesFor(bytes int) int {
	if bytes <= 0 {
		return 1
	}
	return (bytes + machine.PageSize - 1) / machine.PageSize
}

// --- Copy ---

// Copier models the classic copying path: sender and receiver each own a
// persistent private buffer; the kernel copies the data in (to a kernel
// buffer) and out (to the receiver). Copy cost is prorated by bytes; no
// mapping operations occur after setup.
type Copier struct {
	sys      *vm.System
	src, dst *domain.Domain
	bytes    int
	pages    int
	srcVA    vm.VA
	dstVA    vm.VA
	kbuf     []mem.FrameNum
	closed   bool
}

// NewCopier builds the copy facility for the given message size.
func NewCopier(sys *vm.System, src, dst *domain.Domain, bytes int) (*Copier, error) {
	c := &Copier{sys: sys, src: src, dst: dst, bytes: bytes, pages: pagesFor(bytes)}
	var err error
	if c.srcVA, err = mapFreshBuffer(src.AS, c.pages); err != nil {
		return nil, err
	}
	if c.dstVA, err = mapFreshBuffer(dst.AS, c.pages); err != nil {
		return nil, err
	}
	for i := 0; i < c.pages; i++ {
		fn, err := sys.Mem.Alloc()
		if err != nil {
			return nil, err
		}
		c.kbuf = append(c.kbuf, fn)
	}
	return c, nil
}

func mapFreshBuffer(as *vm.AddrSpace, pages int) (vm.VA, error) {
	va, err := as.AllocVA(pages)
	if err != nil {
		return 0, err
	}
	for i := 0; i < pages; i++ {
		fn, err := as.Sys.Mem.Alloc()
		if err != nil {
			return 0, err
		}
		as.MapOwned(va+vm.VA(i*machine.PageSize), fn, vm.ReadWrite)
	}
	return va, nil
}

func (c *Copier) Name() string  { return "copy" }
func (c *Copier) MsgBytes() int { return c.bytes }

// copyCost prorates one page-copy over n bytes.
func copyCost(cost *machine.CostTable, n int) simtime.Duration {
	return simtime.Duration(int64(cost.PageCopy) * int64(n) / machine.PageSize)
}

// Hop writes, copies in, copies out, reads. Each hop is its own
// "hop"-labeled trace so the copy baseline profiles alongside fbufs.
func (c *Copier) Hop() error {
	o := c.sys.Obs
	tid := o.BeginTrace("hop", int64(c.bytes))
	err := c.hop()
	if err != nil {
		o.AbortTrace(tid)
		return err
	}
	o.EndTrace(tid)
	return nil
}

func (c *Copier) hop() error {
	if o := c.sys.Obs; o != nil {
		o.SpanBegin(span.StageCopy, "xfer", int(c.src.ID)+c.sys.TraceBase, int64(c.bytes))
		defer o.SpanEnd()
	}
	if err := touchWritePages(c.src.AS, c.srcVA, c.bytes); err != nil {
		return err
	}
	// copyin: sender buffer -> kernel buffer; copyout: -> receiver.
	c.sys.Sink().Charge(2 * copyCost(c.sys.Cost, c.bytes))
	remaining := c.bytes
	for i := 0; i < c.pages; i++ {
		n := remaining
		if n > machine.PageSize {
			n = machine.PageSize
		}
		sfn, err := c.src.AS.Translate(c.srcVA+vm.VA(i*machine.PageSize), false)
		if err != nil {
			return err
		}
		c.sys.Mem.Copy(c.kbuf[i], sfn)
		dfn, err := c.dst.AS.Translate(c.dstVA+vm.VA(i*machine.PageSize), true)
		if err != nil {
			return err
		}
		c.sys.Mem.Copy(dfn, c.kbuf[i])
		remaining -= n
	}
	return touchReadPages(c.dst.AS, c.dstVA, c.bytes)
}

// Send is Hop carrying a real payload: the bytes are written into the
// sender's buffer, copied through the kernel buffer page by page, and read
// back out of the receiver's buffer. len(payload) must not exceed the
// configured message size. Integrity tests (and the chaos harness's
// degraded path) verify the returned bytes against the input.
func (c *Copier) Send(payload []byte) ([]byte, error) {
	// No trace of its own: the copy-fallback path runs Send inside the
	// caller's transfer trace, and the span charges there.
	if o := c.sys.Obs; o != nil {
		o.SpanBegin(span.StageCopy, "xfer", int(c.src.ID)+c.sys.TraceBase, int64(len(payload)))
		defer o.SpanEnd()
	}
	if len(payload) > c.pages*machine.PageSize {
		return nil, fmt.Errorf("xfer: payload %d exceeds copier capacity %d", len(payload), c.pages*machine.PageSize)
	}
	if err := c.src.AS.Write(c.srcVA, payload); err != nil {
		return nil, err
	}
	c.sys.Sink().Charge(2 * copyCost(c.sys.Cost, len(payload)))
	for i := 0; i*machine.PageSize < len(payload); i++ {
		sfn, err := c.src.AS.Translate(c.srcVA+vm.VA(i*machine.PageSize), false)
		if err != nil {
			return nil, err
		}
		c.sys.Mem.Copy(c.kbuf[i], sfn)
		dfn, err := c.dst.AS.Translate(c.dstVA+vm.VA(i*machine.PageSize), true)
		if err != nil {
			return nil, err
		}
		c.sys.Mem.Copy(dfn, c.kbuf[i])
	}
	out := make([]byte, len(payload))
	if err := c.dst.AS.Read(c.dstVA, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Close releases the copier's kernel bounce buffer. The sender's and
// receiver's private buffers are torn down with their address spaces.
// Close releases the kernel bounce buffer and both domains' copy buffers.
// Long-lived domains churn through many connections, so the per-domain
// buffers cannot wait for domain termination to be unmapped — that is a
// frame leak proportional to churn. A dead domain's address space already
// released its owned frames through the termination hook.
func (c *Copier) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, fn := range c.kbuf {
		c.sys.Mem.DecRef(fn)
	}
	c.kbuf = nil
	for _, side := range []struct {
		d  *domain.Domain
		va vm.VA
	}{{c.src, c.srcVA}, {c.dst, c.dstVA}} {
		if side.d.Dead() {
			continue
		}
		for i := 0; i < c.pages; i++ {
			side.d.AS.Unmap(side.va + vm.VA(i*machine.PageSize))
		}
		side.d.AS.FreeVA(side.va, c.pages)
	}
}

// touchWritePages writes one word in each page covering bytes.
func touchWritePages(as *vm.AddrSpace, va vm.VA, bytes int) error {
	for o := 0; o < bytes || o == 0; o += machine.PageSize {
		if err := as.TouchWrite(va+vm.VA(o), uint32(o)); err != nil {
			return err
		}
		if bytes == 0 {
			break
		}
	}
	return nil
}

// touchReadPages reads one word in each page covering bytes.
func touchReadPages(as *vm.AddrSpace, va vm.VA, bytes int) error {
	for o := 0; o < bytes || o == 0; o += machine.PageSize {
		if _, err := as.TouchRead(va + vm.VA(o)); err != nil {
			return err
		}
		if bytes == 0 {
			break
		}
	}
	return nil
}

// --- Mach copy-on-write ---

// COW models Mach's transfer facility for out-of-line data: the sender's
// pages are marked copy-on-write in the high-level map only (cheap), the
// receiver's mappings are created lazily by page faults, and the sender
// takes a write fault per page when it next fills its buffer. The two
// faults per page per transfer are what the paper attributes Mach's high
// per-page overhead to.
type COW struct {
	sys      *vm.System
	src, dst *domain.Domain
	bytes    int
	pages    int
	srcVA    vm.VA
	dstVA    vm.VA
	region   *vm.Region
	frames   []mem.FrameNum // sender's current frame per page
}

// NewCOW builds the Mach-COW facility.
func NewCOW(sys *vm.System, src, dst *domain.Domain, bytes int) (*COW, error) {
	c := &COW{sys: sys, src: src, dst: dst, bytes: bytes, pages: pagesFor(bytes)}
	var err error
	if c.srcVA, err = mapFreshBuffer(src.AS, c.pages); err != nil {
		return nil, err
	}
	c.frames = make([]mem.FrameNum, c.pages)
	if c.dstVA, err = dst.AS.AllocVA(c.pages); err != nil {
		return nil, err
	}
	// Receiver-side lazy mapping: a fault maps the sender's frame for
	// that page read-only (sharing it), after the trap cost.
	c.region = &vm.Region{
		Start: c.dstVA,
		Pages: c.pages,
		Name:  "cow-recv",
		Handler: func(as *vm.AddrSpace, va vm.VA, write bool) error {
			if write {
				return fmt.Errorf("receiver buffer is read-only")
			}
			page := int(va-c.dstVA) / machine.PageSize
			fn := c.frames[page]
			if fn == mem.NoFrame {
				return fmt.Errorf("no pending COW page")
			}
			as.Map(va.PageBase(), fn, vm.ProtRead)
			return nil
		},
	}
	if err := dst.AS.AddRegion(c.region); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *COW) Name() string  { return "mach-cow" }
func (c *COW) MsgBytes() int { return c.bytes }

// Hop performs one COW transfer.
func (c *COW) Hop() error {
	// Sender fills its buffer; pages still COW-protected from the last
	// hop fault here (the second of Mach's two faults).
	if err := touchWritePages(c.src.AS, c.srcVA, c.bytes); err != nil {
		return err
	}
	// Transfer: mark sender pages COW (lazy, cheap), record frames for
	// the receiver's lazy faults.
	for i := 0; i < c.pages; i++ {
		va := c.srcVA + vm.VA(i*machine.PageSize)
		pte, ok := c.src.AS.Lookup(va)
		if !ok {
			return fmt.Errorf("xfer: sender page %d unmapped", i)
		}
		c.frames[i] = pte.Frame
		c.src.AS.SetCOW(va)
	}
	// Receiver consumption: each page faults in lazily (first fault).
	if err := touchReadPages(c.dst.AS, c.dstVA, c.bytes); err != nil {
		return err
	}
	// Receiver frees: unmap its pages.
	for i := 0; i < c.pages; i++ {
		c.dst.AS.Unmap(c.dstVA + vm.VA(i*machine.PageSize))
		c.frames[i] = mem.NoFrame
	}
	return nil
}

// --- DASH-style page remapping ---

// Remap models the DASH remap facility with move semantics: pages are
// unmapped from the sender (with immediate TLB/cache consistency) and
// mapped into the receiver; in a realistic one-directional flow the sender
// must also allocate fresh pages per message and the receiver deallocate
// them — the costs the Tzou/Anderson ping-pong measurement omitted.
// Clearing newly allocated pages is optional, as the paper quotes the
// 42-99 us/page range depending on what fraction must be cleared.
type Remap struct {
	sys      *vm.System
	src, dst *domain.Domain
	bytes    int
	pages    int
	// Clear controls zero-filling of freshly allocated pages.
	Clear bool

	// ping-pong state, established on first use.
	pingSrcVA, pingDstVA vm.VA
	pingReady            bool
}

// NewRemap builds the remap facility.
func NewRemap(sys *vm.System, src, dst *domain.Domain, bytes int) *Remap {
	return &Remap{sys: sys, src: src, dst: dst, bytes: bytes, pages: pagesFor(bytes)}
}

func (r *Remap) Name() string  { return "remap" }
func (r *Remap) MsgBytes() int { return r.bytes }

// Hop allocates, fills, remaps, consumes, and frees one message.
func (r *Remap) Hop() error {
	cost := r.sys.Cost
	srcVA, err := r.src.AS.AllocVA(r.pages)
	if err != nil {
		return err
	}
	dstVA, err := r.dst.AS.AllocVA(r.pages)
	if err != nil {
		return err
	}
	for i := 0; i < r.pages; i++ {
		fn, err := r.sys.Mem.Alloc()
		if err != nil {
			return err
		}
		r.sys.Sink().Charge(cost.FrameAlloc + cost.RemapBookkeep)
		if r.Clear {
			r.sys.Sink().Charge(cost.PageClear)
			r.sys.Mem.Zero(fn)
		}
		r.src.AS.MapOwned(srcVA+vm.VA(i*machine.PageSize), fn, vm.ReadWrite)
	}
	if err := touchWritePages(r.src.AS, srcVA, r.bytes); err != nil {
		return err
	}
	// The remap proper: map into receiver, unmap from sender with
	// immediate consistency, plus two-level-map bookkeeping on each side.
	for i := 0; i < r.pages; i++ {
		sva := srcVA + vm.VA(i*machine.PageSize)
		dva := dstVA + vm.VA(i*machine.PageSize)
		pte, ok := r.src.AS.Lookup(sva)
		if !ok {
			return fmt.Errorf("xfer: remap source page %d unmapped", i)
		}
		r.sys.Sink().Charge(2 * cost.RemapBookkeep)
		r.dst.AS.Map(dva, pte.Frame, vm.ReadWrite)
		r.src.AS.UnmapSync(sva)
	}
	if err := touchReadPages(r.dst.AS, dstVA, r.bytes); err != nil {
		return err
	}
	for i := 0; i < r.pages; i++ {
		r.sys.Sink().Charge(cost.RemapBookkeep)
		if freed := r.dst.AS.Unmap(dstVA + vm.VA(i*machine.PageSize)); freed {
			r.sys.Sink().Charge(cost.FrameFree)
		}
	}
	r.src.AS.FreeVA(srcVA, r.pages)
	r.dst.AS.FreeVA(dstVA, r.pages)
	return nil
}

// PingPong bounces a single already-mapped page between the domains and
// back, reproducing the Tzou/Anderson measurement shape (no allocation,
// no clearing, no deallocation). It returns the per-remap cost in
// simulated time via the sink; callers measure around it.
func (r *Remap) PingPong() error {
	cost := r.sys.Cost
	if !r.pingReady {
		var err error
		if r.pingSrcVA, err = r.src.AS.AllocVA(1); err != nil {
			return err
		}
		if r.pingDstVA, err = r.dst.AS.AllocVA(1); err != nil {
			return err
		}
		fn, err := r.sys.Mem.Alloc()
		if err != nil {
			return err
		}
		r.src.AS.MapOwned(r.pingSrcVA, fn, vm.ReadWrite)
		r.pingReady = true
	}
	srcVA, dstVA := r.pingSrcVA, r.pingDstVA
	move := func(fromAS *vm.AddrSpace, fromVA vm.VA, toAS *vm.AddrSpace, toVA vm.VA) error {
		pte, ok := fromAS.Lookup(fromVA)
		if !ok {
			return fmt.Errorf("xfer: ping-pong page lost")
		}
		r.sys.Sink().Charge(2 * cost.RemapBookkeep)
		toAS.Map(toVA, pte.Frame, vm.ReadWrite)
		fromAS.UnmapSync(fromVA)
		return toAS.TouchWrite(toVA, 1)
	}
	if err := move(r.src.AS, srcVA, r.dst.AS, dstVA); err != nil {
		return err
	}
	return move(r.dst.AS, dstVA, r.src.AS, srcVA)
}

// --- Mach native (hybrid) ---

// MachNativeThreshold is the message size below which Mach copies rather
// than using COW ("it uses data copying for message sizes of less than
// 2 KBytes, and COW otherwise").
const MachNativeThreshold = 2048

// NewMachNative returns Mach's native transfer facility for the size:
// a Copier under the threshold, COW at or above it.
func NewMachNative(sys *vm.System, src, dst *domain.Domain, bytes int) (Facility, error) {
	if bytes < MachNativeThreshold {
		c, err := NewCopier(sys, src, dst, bytes)
		if err != nil {
			return nil, err
		}
		return named{c, "mach-native"}, nil
	}
	c, err := NewCOW(sys, src, dst, bytes)
	if err != nil {
		return nil, err
	}
	return named{c, "mach-native"}, nil
}

type named struct {
	Facility
	name string
}

func (n named) Name() string { return n.name }

// --- Fbuf adapters ---

// FbufFacility runs the fbuf mechanism, at any optimization level, through
// the same one-hop experiment shape.
type FbufFacility struct {
	mgr      *core.Manager
	src, dst *domain.Domain
	opts     core.Options
	bytes    int
	pages    int
	path     *core.DataPath // nil for uncached options
	label    string
}

// NewFbuf builds an fbuf facility. Cached options get a dedicated data
// path; uncached options use the default allocator. NoClear is applied to
// match the paper's Table 1 conditions (clearing reported separately).
func NewFbuf(mgr *core.Manager, src, dst *domain.Domain, opts core.Options, bytes int) (*FbufFacility, error) {
	f := &FbufFacility{
		mgr: mgr, src: src, dst: dst, opts: opts,
		bytes: bytes, pages: pagesFor(bytes),
		label: FbufLabel(opts),
	}
	mgr.AttachDomain(src)
	mgr.AttachDomain(dst)
	if opts.Cached {
		p, err := mgr.NewPath("xfer-"+f.label, opts, f.pages, src, dst)
		if err != nil {
			return nil, err
		}
		f.path = p
	}
	return f, nil
}

// FbufLabel names an option set the way the paper's Table 1 does.
func FbufLabel(opts core.Options) string {
	switch {
	case opts.Cached && opts.Volatile:
		return "fbufs-cached-volatile"
	case opts.Volatile:
		return "fbufs-volatile"
	case opts.Cached:
		return "fbufs-cached"
	default:
		return "fbufs"
	}
}

func (f *FbufFacility) Name() string  { return f.label }
func (f *FbufFacility) MsgBytes() int { return f.bytes }

// Path exposes the facility's dedicated data path (nil for uncached
// options) so callers can attach policy — tenant class, quota, cache
// pinning — to the connection it models.
func (f *FbufFacility) Path() *core.DataPath { return f.path }

// Hop performs the alloc/write/transfer/read/free cycle. Each hop is its
// own "hop"-labeled trace; the stage spans come from the core layer.
func (f *FbufFacility) Hop() error {
	o := f.mgr.Sys.Obs
	tid := o.BeginTrace("hop", int64(f.bytes))
	err := f.hop()
	if err != nil {
		o.AbortTrace(tid)
		return err
	}
	o.EndTrace(tid)
	return nil
}

func (f *FbufFacility) hop() error {
	var fb *core.Fbuf
	var err error
	if f.path != nil {
		fb, err = f.path.Alloc()
	} else {
		fb, err = f.mgr.AllocUncached(f.src, f.pages, f.opts)
	}
	if err != nil {
		return err
	}
	if err := touchWriteFbuf(fb, f.src, f.bytes); err != nil {
		return err
	}
	if err := f.mgr.Transfer(fb, f.src, f.dst); err != nil {
		return err
	}
	if err := touchReadFbuf(fb, f.dst, f.bytes); err != nil {
		return err
	}
	if err := f.mgr.Free(fb, f.dst); err != nil {
		return err
	}
	if err := f.mgr.Free(fb, f.src); err != nil {
		return err
	}
	return nil
}

// Send is Hop carrying a real payload through the fbuf path: allocate,
// write the bytes in the sender, transfer, read them back in the receiver,
// free both references. Allocation failures propagate (ErrQuota,
// ErrRegionFull, mem.ErrOutOfMemory) so an adaptive caller can degrade.
func (f *FbufFacility) Send(payload []byte) ([]byte, error) {
	o := f.mgr.Sys.Obs
	tid := o.BeginTrace("hop", int64(len(payload)))
	out, err := f.send(payload)
	if err != nil {
		o.AbortTrace(tid)
		return nil, err
	}
	o.EndTrace(tid)
	return out, nil
}

func (f *FbufFacility) send(payload []byte) ([]byte, error) {
	var fb *core.Fbuf
	var err error
	if f.path != nil {
		fb, err = f.path.Alloc()
	} else {
		fb, err = f.mgr.AllocUncached(f.src, f.pages, f.opts)
	}
	if err != nil {
		return nil, err
	}
	// Under fault injection a transfer can die mid-flight (e.g. a lazy
	// refill hitting an exhausted frame pool); the buffer must not stay
	// live or it would be reported as leaked by convergence checking.
	abandon := func(cause error) ([]byte, error) {
		for _, d := range []*domain.Domain{f.dst, f.src} {
			if !d.Dead() && fb.HeldBy(d) {
				if ferr := f.mgr.Free(fb, d); ferr != nil {
					return nil, ferr
				}
			}
		}
		return nil, cause
	}
	if err := fb.Write(f.src, 0, payload); err != nil {
		return abandon(err)
	}
	if err := f.mgr.Transfer(fb, f.src, f.dst); err != nil {
		return abandon(err)
	}
	out := make([]byte, len(payload))
	if err := fb.Read(f.dst, 0, out); err != nil {
		return abandon(err)
	}
	if err := f.mgr.Free(fb, f.dst); err != nil {
		return nil, err
	}
	if err := f.mgr.Free(fb, f.src); err != nil {
		return nil, err
	}
	return out, nil
}

// Close tears the facility's data path down; live fbufs drain through the
// normal notice flow.
func (f *FbufFacility) Close() {
	if f.path != nil {
		f.mgr.ClosePath(f.path)
		f.path = nil
	}
}

func touchWriteFbuf(fb *core.Fbuf, d *domain.Domain, bytes int) error {
	for o := 0; o < bytes || o == 0; o += machine.PageSize {
		if err := fb.Write(d, o, []byte{1, 2, 3, 4}); err != nil {
			return err
		}
		if bytes == 0 {
			break
		}
	}
	return nil
}

func touchReadFbuf(fb *core.Fbuf, d *domain.Domain, bytes int) error {
	var w [4]byte
	for o := 0; o < bytes || o == 0; o += machine.PageSize {
		if err := fb.Read(d, o, w[:]); err != nil {
			return err
		}
		if bytes == 0 {
			break
		}
	}
	return nil
}
