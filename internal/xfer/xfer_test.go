package xfer

import (
	"testing"

	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

type rig struct {
	clk *simtime.Clock
	sys *vm.System
	reg *domain.Registry
	mgr *core.Manager
	src *domain.Domain
	dst *domain.Domain
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), 8192, vm.ClockSink{Clock: clk})
	reg := domain.NewRegistry(sys)
	mgr := core.NewManager(sys, reg)
	r := &rig{clk: clk, sys: sys, reg: reg, mgr: mgr}
	r.src = reg.New("src")
	r.dst = reg.New("dst")
	return r
}

// perPage measures the steady-state per-page cost of a facility by running
// warm-up hops then averaging, exactly as the incremental measurements in
// the paper's Table 1.
func perPage(t *testing.T, r *rig, f Facility, pages int) float64 {
	t.Helper()
	for i := 0; i < 2; i++ {
		if err := f.Hop(); err != nil {
			t.Fatalf("%s warmup: %v", f.Name(), err)
		}
	}
	start := r.clk.Now()
	const iters = 4
	for i := 0; i < iters; i++ {
		if err := f.Hop(); err != nil {
			t.Fatalf("%s hop: %v", f.Name(), err)
		}
	}
	return (r.clk.Now() - start).Microseconds() / float64(iters*pages)
}

func TestTable1Ordering(t *testing.T) {
	// The full Table 1, measured end to end through the real mechanisms.
	// 64 pages so the TLB (64 entries) cannot hide touches across hops.
	const pages = 64
	const bytes = pages * machine.PageSize

	r := newRig(t)
	results := map[string]float64{}

	cv, err := NewFbuf(r.mgr, r.src, r.dst, core.CachedVolatile(), bytes)
	if err != nil {
		t.Fatal(err)
	}
	results["cached-volatile"] = perPage(t, r, cv, pages)

	vOpts := core.Uncached()
	vOpts.NoClear = true
	vo, err := NewFbuf(r.mgr, r.src, r.dst, vOpts, bytes)
	if err != nil {
		t.Fatal(err)
	}
	results["volatile"] = perPage(t, r, vo, pages)

	ca, err := NewFbuf(r.mgr, r.src, r.dst, core.CachedNonVolatile(), bytes)
	if err != nil {
		t.Fatal(err)
	}
	results["cached"] = perPage(t, r, ca, pages)

	plainOpts := core.UncachedNonVolatile()
	plainOpts.NoClear = true
	pl, err := NewFbuf(r.mgr, r.src, r.dst, plainOpts, bytes)
	if err != nil {
		t.Fatal(err)
	}
	results["plain"] = perPage(t, r, pl, pages)

	cow, err := NewCOW(r.sys, r.src, r.dst, bytes)
	if err != nil {
		t.Fatal(err)
	}
	results["cow"] = perPage(t, r, cow, pages)

	cp, err := NewCopier(r.sys, r.src, r.dst, bytes)
	if err != nil {
		t.Fatal(err)
	}
	results["copy"] = perPage(t, r, cp, pages)

	rm := NewRemap(r.sys, r.src, r.dst, bytes)
	results["remap"] = perPage(t, r, rm, pages)

	// Paper-anchored absolute values (Table 1; remap from section 2.2.1).
	anchors := map[string][2]float64{
		"cached-volatile": {2.5, 3.5}, // 3 us
		"volatile":        {19, 23},   // 21 us
		"cached":          {27, 31},   // 29 us
		"plain":           {31, 37},   // 34 us (see DESIGN.md)
		"remap":           {36, 46},   // 42 us reported, no clearing
		"cow":             {55, 80},   // "relatively high" - two faults/page
		"copy":            {135, 150}, // 2 copies + touches
	}
	for name, bounds := range anchors {
		got := results[name]
		if got < bounds[0] || got > bounds[1] {
			t.Errorf("%s: %.1f us/page, want within [%v, %v]", name, got, bounds[0], bounds[1])
		}
	}
	// The order-of-magnitude claim: cached/volatile is >= 6x better than
	// every non-fbuf mechanism and the uncached fbuf variants.
	for _, name := range []string{"volatile", "cached", "plain", "remap", "cow", "copy"} {
		if results[name] < 6*results["cached-volatile"] {
			t.Errorf("cached-volatile not an order of magnitude better than %s (%.1f vs %.1f)",
				name, results["cached-volatile"], results[name])
		}
	}
}

func TestRemapPingPongAnchor(t *testing.T) {
	r := newRig(t)
	rm := NewRemap(r.sys, r.src, r.dst, machine.PageSize)
	// Warm up VA allocations.
	if err := rm.PingPong(); err != nil {
		t.Fatal(err)
	}
	start := r.clk.Now()
	const iters = 8
	for i := 0; i < iters; i++ {
		if err := rm.PingPong(); err != nil {
			t.Fatal(err)
		}
	}
	perRemap := (r.clk.Now() - start).Microseconds() / float64(iters*2)
	// Paper: ~22 us/page on the DecStation for the ping-pong test
	// (down from 208 us on the Sun 3/50 DASH measurement).
	if perRemap < 19 || perRemap > 26 {
		t.Errorf("ping-pong remap %.1f us/page, want ~22", perRemap)
	}
	// VA allocations accumulate per call in PingPong; tolerated in test.
}

func TestRemapClearingDominates(t *testing.T) {
	r := newRig(t)
	const pages = 16
	rm := NewRemap(r.sys, r.src, r.dst, pages*machine.PageSize)
	noclear := perPage(t, r, rm, pages)
	rm.Clear = true
	withclear := perPage(t, r, rm, pages)
	d := withclear - noclear
	if d < 56 || d > 58 {
		t.Errorf("clearing adds %.1f us/page, want 57", d)
	}
	// The paper's quoted ceiling: ~99 us/page with full clearing.
	if withclear < 90 || withclear > 105 {
		t.Errorf("remap with clear %.1f us/page, want ~96-99", withclear)
	}
}

func TestCopyDeliversData(t *testing.T) {
	r := newRig(t)
	c, err := NewCopier(r.sys, r.src, r.dst, 3*machine.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Hop(); err != nil {
		t.Fatal(err)
	}
	// The touch pattern wrote word o at page offset o; verify page 1's
	// word arrived in the receiver's buffer.
	w, err := r.dst.AS.TouchRead(c.dstVA + vm.VA(machine.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	if w != uint32(machine.PageSize) {
		t.Fatalf("receiver word %#x", w)
	}
}

func TestCOWIsolation(t *testing.T) {
	// After a COW transfer, sender writes must not disturb data the
	// receiver is still holding.
	r := newRig(t)
	c, err := NewCOW(r.sys, r.src, r.dst, machine.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.src.AS.Write(c.srcVA, []byte("generation-1")); err != nil {
		t.Fatal(err)
	}
	// Transfer (manually, to keep the receiver's reference alive).
	pte, _ := r.src.AS.Lookup(c.srcVA)
	c.frames[0] = pte.Frame
	r.src.AS.SetCOW(c.srcVA)
	buf := make([]byte, 12)
	if err := r.dst.AS.Read(c.dstVA, buf); err != nil { // faults in lazily
		t.Fatal(err)
	}
	if string(buf) != "generation-1" {
		t.Fatalf("receiver read %q", buf)
	}
	// Sender writes again: COW fault copies because the frame is shared.
	if err := r.src.AS.Write(c.srcVA, []byte("generation-2")); err != nil {
		t.Fatal(err)
	}
	if err := r.dst.AS.Read(c.dstVA, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "generation-1" {
		t.Fatalf("COW leaked: receiver sees %q", buf)
	}
}

func TestMachNativePolicySwitch(t *testing.T) {
	r := newRig(t)
	small, err := NewMachNative(r.sys, r.src, r.dst, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if small.Name() != "mach-native" {
		t.Fatalf("name %q", small.Name())
	}
	if _, ok := small.(named).Facility.(*Copier); !ok {
		t.Fatalf("1KB should copy, got %T", small.(named).Facility)
	}
	big, err := NewMachNative(r.sys, r.src, r.dst, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := big.(named).Facility.(*COW); !ok {
		t.Fatalf("4KB should COW, got %T", big.(named).Facility)
	}
}

func TestMachNativeCrossover(t *testing.T) {
	// Under 2KB, Mach native (copy) beats uncached fbufs per hop — the
	// Figure 3 observation that motivates "no special-casing is
	// necessary" only for cached/volatile fbufs.
	r := newRig(t)
	const small = 1024
	mach, err := NewMachNative(r.sys, r.src, r.dst, small)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.UncachedNonVolatile()
	opts.NoClear = true
	fb, err := NewFbuf(r.mgr, r.src, r.dst, opts, small)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(f Facility) simtime.Duration {
		for i := 0; i < 2; i++ {
			if err := f.Hop(); err != nil {
				t.Fatal(err)
			}
		}
		start := r.clk.Now()
		for i := 0; i < 4; i++ {
			if err := f.Hop(); err != nil {
				t.Fatal(err)
			}
		}
		return (r.clk.Now() - start) / 4
	}
	machCost := measure(mach)
	fbCost := measure(fb)
	if machCost >= fbCost {
		t.Errorf("1KB: mach-native %v should beat plain fbufs %v", machCost, fbCost)
	}
	// And cached/volatile fbufs beat Mach even at small sizes.
	cv, err := NewFbuf(r.mgr, r.src, r.dst, core.CachedVolatile(), small)
	if err != nil {
		t.Fatal(err)
	}
	cvCost := measure(cv)
	if cvCost >= machCost {
		t.Errorf("1KB: cached/volatile %v should beat mach-native %v", cvCost, machCost)
	}
}

func TestFbufFacilityNames(t *testing.T) {
	want := map[string]core.Options{
		"fbufs-cached-volatile": core.CachedVolatile(),
		"fbufs-volatile":        core.Uncached(),
		"fbufs-cached":          core.CachedNonVolatile(),
		"fbufs":                 core.UncachedNonVolatile(),
	}
	for name, opts := range want {
		if got := FbufLabel(opts); got != name {
			t.Errorf("label for %+v = %q, want %q", opts, got, name)
		}
	}
}

func TestZeroByteHop(t *testing.T) {
	r := newRig(t)
	for _, mk := range []func() (Facility, error){
		func() (Facility, error) { return NewCopier(r.sys, r.src, r.dst, 0) },
		func() (Facility, error) { return NewFbuf(r.mgr, r.src, r.dst, core.CachedVolatile(), 0) },
	} {
		f, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Hop(); err != nil {
			t.Fatalf("%s zero-byte hop: %v", f.Name(), err)
		}
	}
}

func TestFacilityMetadata(t *testing.T) {
	r := newRig(t)
	cp, _ := NewCopier(r.sys, r.src, r.dst, 1000)
	cow, _ := NewCOW(r.sys, r.src, r.dst, 5000)
	rm := NewRemap(r.sys, r.src, r.dst, 3000)
	fb, _ := NewFbuf(r.mgr, r.src, r.dst, core.CachedVolatile(), 2000)
	for _, tc := range []struct {
		f     Facility
		name  string
		bytes int
	}{
		{cp, "copy", 1000},
		{cow, "mach-cow", 5000},
		{rm, "remap", 3000},
		{fb, "fbufs-cached-volatile", 2000},
	} {
		if tc.f.Name() != tc.name {
			t.Errorf("name %q, want %q", tc.f.Name(), tc.name)
		}
		if tc.f.MsgBytes() != tc.bytes {
			t.Errorf("%s bytes %d", tc.name, tc.f.MsgBytes())
		}
	}
	mn, _ := NewMachNative(r.sys, r.src, r.dst, 100)
	if mn.MsgBytes() != 100 {
		t.Errorf("mach-native bytes %d", mn.MsgBytes())
	}
}
