package rings

import (
	"testing"

	"fbufs/internal/machine"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

// newFuzzPair mirrors newTestPair without a *testing.T so FuzzRing's seed
// registration can share it with the fuzz body (same split as FuzzMagazine).
func newFuzzPair(capacity int) (*Pair, *simtime.Clock, error) {
	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), 64, vm.ClockSink{Clock: clk})
	pr, err := NewPair(sys, "fuzz", capacity, clk.Now, 0, 1)
	if err != nil {
		return nil, nil, err
	}
	pr.DoorbellCost = sys.Cost.IPCLatency
	return pr, clk, nil
}

// FuzzRing drives byte-decoded op sequences over the raw index arithmetic
// and a live Pair in lockstep with reference FIFO models. The first byte
// picks the (power-of-two) capacity and whether the free-running indexes
// start just below the uint32 overflow boundary; the rest interleave
// pushes, pops, submits, drains, completions, completion drains, and
// virtual-clock advances. The contract under test: slot arithmetic under
// wrap-around, full/empty disambiguation with no wasted slot, strict FIFO
// order through both rings, and counter consistency — for any interleaving.
func FuzzRing(f *testing.F) {
	f.Add([]byte("0123456"))
	f.Add([]byte{0x02, 0x00, 0x00, 0x02, 0x01, 0x01, 0x03})       // fill, drain, refill
	f.Add([]byte{0x41, 0x00, 0x00, 0x00, 0x00, 0x02})             // wrap start, overflow push
	f.Add([]byte{0x05, 0x04, 0x04, 0x05, 0x04, 0x03, 0x03, 0x05}) // completion traffic
	f.Add([]byte{0x01, 0x00, 0x06, 0x02, 0x00, 0x06, 0x02, 0x00, 0x06, 0x02})

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) == 0 {
			return
		}
		if len(ops) > 600 {
			ops = ops[:600]
		}
		capacity := 1 << (ops[0] % 6) // 1..32 slots
		ix, err := newIndexes(capacity)
		if err != nil {
			t.Fatal(err)
		}
		if ops[0]&0x40 != 0 {
			// Start the free-running indexes just below overflow so pushes
			// cross the uint32 boundary mid-sequence.
			start := ^uint32(0) - uint32(ops[0]%7)
			ix.head, ix.tail = start, start
		}
		pr, clk, err := newFuzzPair(capacity)
		if err != nil {
			t.Fatal(err)
		}

		slots := make([]int, capacity) // what we wrote into each raw slot
		var ixModel []int              // reference FIFO for the raw indexes
		var sqModel, cqModel []int     // reference FIFOs for the pair
		id := 0

		for i := 1; i < len(ops); i++ {
			op := ops[i]
			switch op % 7 {
			case 0: // raw push
				slot, ok := ix.push()
				if wantOK := len(ixModel) < capacity; ok != wantOK {
					t.Fatalf("op %d: push ok=%v, model ok=%v (occ %d/%d)", i, ok, wantOK, len(ixModel), capacity)
				}
				if ok {
					id++
					slots[slot] = id
					ixModel = append(ixModel, id)
				}
			case 1: // raw pop
				slot, ok := ix.pop()
				if wantOK := len(ixModel) > 0; ok != wantOK {
					t.Fatalf("op %d: pop ok=%v, model ok=%v", i, ok, wantOK)
				}
				if ok {
					if got, want := slots[slot], ixModel[0]; got != want {
						t.Fatalf("op %d: popped %d, model head %d (FIFO broken)", i, got, want)
					}
					ixModel = ixModel[1:]
				}
			case 2: // pair submit
				id++
				err := pr.Submit(Entry{Descriptors: id})
				if wantErr := len(sqModel) == capacity; (err == ErrFull) != wantErr {
					t.Fatalf("op %d: submit err=%v, model full=%v", i, err, wantErr)
				}
				if err == nil {
					sqModel = append(sqModel, id)
				}
			case 3: // pair drain (all, in order)
				want := sqModel
				sqModel = nil
				j := 0
				n, err := pr.Drain(func(e Entry) error {
					if j >= len(want) || e.Descriptors != want[j] {
						t.Fatalf("op %d: drain entry %d = %d, model %v", i, j, e.Descriptors, want)
					}
					j++
					return nil
				})
				if err != nil || n != len(want) {
					t.Fatalf("op %d: drain n=%d err=%v, model %d", i, n, err, len(want))
				}
			case 4: // pair complete
				id++
				err := pr.Complete(Completion{Notices: id})
				if wantErr := len(cqModel) == capacity; (err == ErrFull) != wantErr {
					t.Fatalf("op %d: complete err=%v, model full=%v", i, err, wantErr)
				}
				if err == nil {
					cqModel = append(cqModel, id)
				}
			case 5: // pair drain completions (all, in order)
				want := cqModel
				cqModel = nil
				j := 0
				n := pr.DrainCompletions(func(c Completion) {
					if j >= len(want) || c.Notices != want[j] {
						t.Fatalf("op %d: completion %d = %d, model %v", i, j, c.Notices, want)
					}
					j++
				})
				if n != len(want) {
					t.Fatalf("op %d: drained %d completions, model %d", i, n, len(want))
				}
			case 6: // advance the virtual clock (exercises spin vs doorbell)
				clk.Advance(simtime.US(int64(op) * 7))
			}

			// Occupancy, empty, and full must track the models exactly.
			if int(ix.occupancy()) != len(ixModel) || ix.empty() != (len(ixModel) == 0) || ix.full() != (len(ixModel) == capacity) {
				t.Fatalf("op %d: occ=%d empty=%v full=%v, model len %d/%d",
					i, ix.occupancy(), ix.empty(), ix.full(), len(ixModel), capacity)
			}
			sq, cq := pr.Depths()
			if sq != len(sqModel) || cq != len(cqModel) {
				t.Fatalf("op %d: pair depths %d/%d, model %d/%d", i, sq, cq, len(sqModel), len(cqModel))
			}
		}

		// Counter consistency at the end of any sequence.
		st := pr.Stats()
		sq, cq := pr.Depths()
		if st.Submits != st.Drained+uint64(sq) {
			t.Fatalf("Submits=%d != Drained=%d + depth %d", st.Submits, st.Drained, sq)
		}
		if st.Completions != st.CompletionsDrained+uint64(cq) {
			t.Fatalf("Completions=%d != drained completions + depth %d", st.Completions, cq)
		}
		if st.Doorbells+st.SpinHits > st.Submits+st.Completions {
			t.Fatalf("more transitions (%d+%d) than enqueues (%d+%d)",
				st.Doorbells, st.SpinHits, st.Submits, st.Completions)
		}
	})
}
