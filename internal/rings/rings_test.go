package rings

import (
	"testing"

	"fbufs/internal/machine"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

// newTestPair builds a pair over a clock-advancing cost sink so doorbell
// charges are visible as simulated time.
func newTestPair(t *testing.T, capacity int) (*Pair, *simtime.Clock) {
	t.Helper()
	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), 64, vm.ClockSink{Clock: clk})
	pr, err := NewPair(sys, "test", capacity, clk.Now, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	pr.DoorbellCost = sys.Cost.IPCLatency
	return pr, clk
}

func TestCapacityValidation(t *testing.T) {
	for _, bad := range []int{-1, 3, 5, 6, 7, 100, 1 << 31} {
		if _, err := newIndexes(bad); err == nil {
			t.Errorf("newIndexes(%d) accepted a non-power-of-two", bad)
		}
	}
	for _, good := range []int{1, 2, 4, 64, 1 << 20} {
		if _, err := newIndexes(good); err != nil {
			t.Errorf("newIndexes(%d): %v", good, err)
		}
	}
}

// TestFullEmptyDisambiguation checks that the free-running indexes tell a
// full ring from an empty one without wasting a slot.
func TestFullEmptyDisambiguation(t *testing.T) {
	ix, err := newIndexes(4)
	if err != nil {
		t.Fatal(err)
	}
	if !ix.empty() || ix.full() {
		t.Fatalf("fresh ring: empty=%v full=%v", ix.empty(), ix.full())
	}
	for i := 0; i < 4; i++ {
		if _, ok := ix.push(); !ok {
			t.Fatalf("push %d refused below capacity", i)
		}
	}
	if !ix.full() || ix.empty() {
		t.Fatalf("after 4 pushes: empty=%v full=%v", ix.empty(), ix.full())
	}
	if _, ok := ix.push(); ok {
		t.Fatal("push accepted on a full ring")
	}
	for i := 0; i < 4; i++ {
		if _, ok := ix.pop(); !ok {
			t.Fatalf("pop %d refused while occupied", i)
		}
	}
	if !ix.empty() {
		t.Fatal("ring not empty after draining all entries")
	}
	if _, ok := ix.pop(); ok {
		t.Fatal("pop succeeded on an empty ring")
	}
}

// TestIndexWrapAround starts the free-running indexes just below the uint32
// limit and pushes across the overflow boundary.
func TestIndexWrapAround(t *testing.T) {
	ix, err := newIndexes(8)
	if err != nil {
		t.Fatal(err)
	}
	start := ^uint32(0) - 3 // overflow mid-sequence
	ix.head, ix.tail = start, start
	for i := 0; i < 100; i++ {
		slot, ok := ix.push()
		if !ok {
			t.Fatalf("push %d refused", i)
		}
		if want := (start + uint32(i)) & ix.mask; slot != want {
			t.Fatalf("push %d: slot %d, want %d", i, slot, want)
		}
		if ix.occupancy() != 1 {
			t.Fatalf("push %d: occupancy %d, want 1", i, ix.occupancy())
		}
		pslot, ok := ix.pop()
		if !ok || pslot != slot {
			t.Fatalf("pop %d: slot %d ok=%v, want %d", i, pslot, ok, slot)
		}
	}
	if !ix.empty() {
		t.Fatal("not empty after balanced push/pop across wrap")
	}
}

// TestDoorbellOnEmptyTransitionOnly: the first submission into an empty
// ring with a blocked consumer rings (and charges) the doorbell; further
// submissions into a non-empty ring are free, and submissions landing
// inside the consumer's post-drain spin window are free too.
func TestDoorbellOnEmptyTransitionOnly(t *testing.T) {
	pr, clk := newTestPair(t, 8)
	cost := pr.DoorbellCost

	if err := pr.Submit(Entry{Op: "a"}); err != nil {
		t.Fatal(err)
	}
	if got := clk.Now(); got != cost {
		t.Fatalf("first submit charged %v, want doorbell cost %v", got, cost)
	}
	if err := pr.Submit(Entry{Op: "b"}); err != nil {
		t.Fatal(err)
	}
	if got := clk.Now(); got != cost {
		t.Fatalf("second submit into non-empty ring charged %v extra", got-cost)
	}
	n, err := pr.Drain(func(Entry) error { return nil })
	if err != nil || n != 2 {
		t.Fatalf("drain: n=%d err=%v", n, err)
	}
	// Within the consumer's spin window the next empty→non-empty
	// transition is a spin hit: nothing charged.
	before := clk.Now()
	if err := pr.Submit(Entry{Op: "c"}); err != nil {
		t.Fatal(err)
	}
	if got := clk.Now(); got != before {
		t.Fatalf("spin-window submit charged %v", got-before)
	}
	st := pr.Stats()
	if st.Doorbells != 1 || st.SpinHits != 1 || st.Submits != 3 {
		t.Fatalf("stats = %+v, want 1 doorbell, 1 spin hit, 3 submits", st)
	}
	// Let the spin window lapse: the transition after the next drain
	// rings the doorbell again.
	pr.Drain(func(Entry) error { return nil })
	_, consBudget := pr.SpinBudgets()
	clk.Advance(consBudget + 1)
	before = clk.Now()
	if err := pr.Submit(Entry{Op: "d"}); err != nil {
		t.Fatal(err)
	}
	if got := clk.Now(); got != before+cost {
		t.Fatalf("post-lapse submit charged %v, want %v", got-before, cost)
	}
}

// TestAdaptiveSpinBudget: doorbells double the budget (the consumer blocked
// too early) up to the cap; spin hits decay it by an eighth down to the
// floor, so the budget converges just above the inter-arrival time.
func TestAdaptiveSpinBudget(t *testing.T) {
	pr, clk := newTestPair(t, 4)
	_, b0 := pr.SpinBudgets()
	if b0 != spinInit {
		t.Fatalf("initial budget %v, want %v", b0, spinInit)
	}
	// First submit: doorbell (consumer never drained) → double.
	pr.Submit(Entry{})
	if _, b := pr.SpinBudgets(); b != spinInit*2 {
		t.Fatalf("budget after doorbell %v, want %v", b, spinInit*2)
	}
	// Repeated doorbells double up to the cap.
	for i := 0; i < 16; i++ {
		pr.Drain(func(Entry) error { return nil })
		clk.Advance(spinMax + 1)
		pr.Submit(Entry{})
	}
	if _, b := pr.SpinBudgets(); b != spinMax {
		t.Fatalf("budget after sustained doorbells %v, want cap %v", b, spinMax)
	}
	// Repeated spin hits decay down to the floor.
	for i := 0; i < 64; i++ {
		pr.Drain(func(Entry) error { return nil })
		pr.Submit(Entry{})
	}
	if _, b := pr.SpinBudgets(); b != spinMin {
		t.Fatalf("budget after sustained spin hits %v, want floor %v", b, spinMin)
	}
	// Steady inter-arrival traffic settles into mostly-elided arrivals: the
	// budget oscillates just above the gap, ringing only probing doorbells.
	before := pr.Stats()
	const gap = 300 * 1000 // 300 us, between spinMin and spinMax
	for i := 0; i < 100; i++ {
		pr.Drain(func(Entry) error { return nil })
		clk.Advance(gap)
		pr.Submit(Entry{})
	}
	d := pr.Stats().Doorbells - before.Doorbells
	if d >= 50 {
		t.Fatalf("steady traffic rang %d/100 doorbells, want minority", d)
	}
}

// TestSubmitFallback: a full submission ring refuses the entry (the caller
// falls back to legacy IPC) without charging or losing anything.
func TestSubmitFallback(t *testing.T) {
	pr, clk := newTestPair(t, 2)
	if err := pr.Submit(Entry{Op: "a"}); err != nil {
		t.Fatal(err)
	}
	charged := clk.Now()
	if err := pr.Submit(Entry{Op: "b"}); err != nil {
		t.Fatal(err)
	}
	if !pr.SubmissionsFull() {
		t.Fatal("SubmissionsFull false at capacity")
	}
	if err := pr.Submit(Entry{Op: "c"}); err != ErrFull {
		t.Fatalf("overflow submit: %v, want ErrFull", err)
	}
	if clk.Now() != charged {
		t.Fatal("refused submit charged something")
	}
	var ops []string
	pr.Drain(func(e Entry) error { ops = append(ops, e.Op); return nil })
	if len(ops) != 2 || ops[0] != "a" || ops[1] != "b" {
		t.Fatalf("drained %v, want [a b]", ops)
	}
	if st := pr.Stats(); st.SubmitFallbacks != 1 {
		t.Fatalf("SubmitFallbacks = %d, want 1", st.SubmitFallbacks)
	}
}

// TestCompletionCoalescing: completion entries carry whole notice batches
// and the attending producer reaps them without a doorbell.
func TestCompletionCoalescing(t *testing.T) {
	pr, clk := newTestPair(t, 8)
	pr.Submit(Entry{Op: "call"})
	afterSubmit := clk.Now()
	pr.Drain(func(Entry) error { return nil })
	if err := pr.Complete(Completion{Op: "call", Notices: 5, Payload: "batch"}); err != nil {
		t.Fatal(err)
	}
	if clk.Now() != afterSubmit {
		t.Fatal("completion to an attending producer charged a doorbell")
	}
	var got []Completion
	if n := pr.DrainCompletions(func(c Completion) { got = append(got, c) }); n != 1 {
		t.Fatalf("drained %d completions, want 1", n)
	}
	if got[0].Notices != 5 || got[0].Payload != "batch" {
		t.Fatalf("completion %+v lost its coalesced batch", got[0])
	}
	st := pr.Stats()
	if st.NoticesCoalesced != 5 || st.Completions != 1 {
		t.Fatalf("stats = %+v, want 5 coalesced notices in 1 completion", st)
	}
}

// TestCompletionFallback: a full completion ring refuses the entry so the
// caller can deliver the batch directly.
func TestCompletionFallback(t *testing.T) {
	pr, _ := newTestPair(t, 2)
	pr.Complete(Completion{Notices: 1})
	pr.Complete(Completion{Notices: 1})
	if !pr.CompletionsFull() {
		t.Fatal("CompletionsFull false at capacity")
	}
	if err := pr.Complete(Completion{Notices: 1}); err != ErrFull {
		t.Fatalf("overflow complete: %v, want ErrFull", err)
	}
	if st := pr.Stats(); st.CompleteFallback != 1 || st.NoticesCoalesced != 2 {
		t.Fatalf("stats = %+v, want 1 fallback, 2 coalesced", st)
	}
}

// TestDrainStopsOnError: a failing handler leaves later entries queued.
func TestDrainStopsOnError(t *testing.T) {
	pr, _ := newTestPair(t, 8)
	pr.Submit(Entry{Op: "a"})
	pr.Submit(Entry{Op: "b"})
	pr.Submit(Entry{Op: "c"})
	wantErr := ErrFull // any sentinel
	n, err := pr.Drain(func(e Entry) error {
		if e.Op == "b" {
			return wantErr
		}
		return nil
	})
	if n != 2 || err != wantErr {
		t.Fatalf("drain: n=%d err=%v, want 2, %v", n, err, wantErr)
	}
	if sq, _ := pr.Depths(); sq != 1 {
		t.Fatalf("sq depth %d after failed drain, want 1", sq)
	}
	n, err = pr.Drain(func(Entry) error { return nil })
	if n != 1 || err != nil {
		t.Fatalf("resumed drain: n=%d err=%v", n, err)
	}
}

// TestRingCycles pushes many full fill/drain cycles through a small ring so
// the free-running indexes lap their capacity many times over.
func TestRingCycles(t *testing.T) {
	pr, _ := newTestPair(t, 4)
	next, drained := 0, 0
	for cycle := 0; cycle < 1000; cycle++ {
		for i := 0; i < 4; i++ {
			if err := pr.Submit(Entry{Descriptors: next}); err != nil {
				t.Fatal(err)
			}
			next++
		}
		if err := pr.Submit(Entry{}); err != ErrFull {
			t.Fatalf("cycle %d: overflow submit err=%v", cycle, err)
		}
		pr.Drain(func(e Entry) error {
			if e.Descriptors != drained {
				t.Fatalf("cycle %d: drained %d, want %d", cycle, e.Descriptors, drained)
			}
			drained++
			return nil
		})
	}
	if drained != next {
		t.Fatalf("drained %d of %d", drained, next)
	}
	st := pr.Stats()
	if st.Submits != uint64(next) || st.Drained != uint64(drained) {
		t.Fatalf("stats %+v, want %d submits and drains", st, next)
	}
}
