// Package rings implements the syscall-free data plane: an io_uring-style
// pair of shared-memory rings mapped into both domains of a path. The
// submission ring carries fbuf descriptors from producer to consumer, and
// the completion ring carries acknowledgements plus coalesced deallocation
// notices back, so the steady-state hot path crosses no protection boundary
// at all. Only the doorbell — rung when the submission ring transitions
// empty→non-empty while the consumer is blocked — is a real control
// transfer, charged at the full IPC crossing cost. A consumer that recently
// drained spins on the virtual clock for an adaptive budget before
// blocking; submissions that land inside the spin window are free.
//
// Because ring slots live in memory already mapped into both domains,
// descriptors need no marshalling: the per-descriptor IPCPerFbuf charge of
// the legacy ipc.Router path does not apply here. Deallocation notices are
// likewise batched into a single completion entry per drain instead of
// riding individual replies.
//
// The package imports only vm (for cost charging and span attribution),
// span, and simtime, so ipc, core, and the conformance harness can all
// build on it without cycles.
package rings

import (
	"errors"
	"fmt"
	"sync"

	"fbufs/internal/obs/span"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

// ErrFull is returned when a ring has no free slot; the caller falls back
// to the legacy per-transfer IPC path (which is always available).
var ErrFull = errors.New("rings: ring full")

// DefaultDepth is the slot count used for rings created without an explicit
// capacity. Must be a power of two.
const DefaultDepth = 64

// Adaptive spin-then-block policy bounds: a consumer's budget doubles every
// time a doorbell has to be rung (it blocked too early, so it should have
// lingered longer) and decays by an eighth every time an arrival lands
// inside the spin window (spinning paid off, so probe whether a shorter
// linger still would), clamped to [spinMin, spinMax]. The budget converges
// to just above the inter-arrival time: steady traffic is elided with an
// occasional probing doorbell, while genuinely idle consumers block.
const (
	spinInit = simtime.Time(200 * 1000)      // 200 us
	spinMin  = simtime.Time(50 * 1000)       // 50 us
	spinMax  = simtime.Time(2 * 1000 * 1000) // 2 ms
)

// attending marks a waiter that is actively polling its ring (a synchronous
// submitter watching for its completion): arrivals never ring its doorbell.
const attending = simtime.Time(1) << 62

// Entry is one submission-queue element: a descriptor the producer hands
// the consumer through shared memory, unmarshalled.
type Entry struct {
	Op          string
	Descriptors int
	Body        interface{}
}

// Completion is one completion-queue element: the consumer's acknowledgement
// for a drained submission, carrying that drain's coalesced deallocation
// notices (Notices counts them; Payload is the opaque batch the notice sink
// retires).
type Completion struct {
	Op      string
	Notices int
	Payload interface{}
}

// Stats counts ring activity. Doorbells is the only charged crossing; the
// legacy path's equivalent is one charged call per transfer.
type Stats struct {
	Submits          uint64 // entries accepted into the submission ring
	SubmitFallbacks  uint64 // submissions refused: ring full, caller uses IPC
	Doorbells        uint64 // empty→non-empty with the waiter blocked (charged)
	SpinHits         uint64 // empty→non-empty inside the waiter's spin window (free)
	Drains           uint64 // submission-ring drain passes
	Drained          uint64 // entries consumed by drains
	Completions      uint64 // entries accepted into the completion ring
	CompleteFallback uint64 // completions refused: ring full, notices delivered directly
	CompletionDrains   uint64 // completion-ring drain passes
	CompletionsDrained uint64 // entries consumed by completion drains
	NoticesCoalesced   uint64 // deallocation notices carried by completion entries
}

// indexes is the ring's index pair: free-running uint32 head (consume side)
// and tail (fill side) over a power-of-two slot array. Occupancy is
// tail-head under wraparound arithmetic, which disambiguates full from
// empty without sacrificing a slot: empty is tail==head, full is
// tail-head==capacity.
type indexes struct {
	mask uint32 // capacity - 1
	head uint32 // next slot to consume (free-running)
	tail uint32 // next slot to fill (free-running)
}

func newIndexes(capacity int) (indexes, error) {
	if capacity <= 0 || capacity > 1<<30 || capacity&(capacity-1) != 0 {
		return indexes{}, fmt.Errorf("rings: capacity %d is not a power of two in [1, 2^30]", capacity)
	}
	return indexes{mask: uint32(capacity - 1)}, nil
}

func (ix *indexes) capacity() uint32  { return ix.mask + 1 }
func (ix *indexes) occupancy() uint32 { return ix.tail - ix.head }
func (ix *indexes) empty() bool       { return ix.tail == ix.head }
func (ix *indexes) full() bool        { return ix.tail-ix.head == ix.mask+1 }

// push reserves the next fill slot, returning its array index.
func (ix *indexes) push() (uint32, bool) {
	if ix.full() {
		return 0, false
	}
	s := ix.tail & ix.mask
	ix.tail++
	return s, true
}

// pop releases the next consume slot, returning its array index.
func (ix *indexes) pop() (uint32, bool) {
	if ix.empty() {
		return 0, false
	}
	s := ix.head & ix.mask
	ix.head++
	return s, true
}

// waiter is one side's spin-then-block state: the instant until which it
// keeps spinning after its last drain, and the adaptive budget that
// interval is computed from.
type waiter struct {
	idleUntil simtime.Time
	budget    simtime.Time
}

func clampSpin(d simtime.Time) simtime.Time {
	if d < spinMin {
		return spinMin
	}
	if d > spinMax {
		return spinMax
	}
	return d
}

// Pair is one direction's ring pair between two domains: submissions flow
// producer→consumer, completions flow back. All methods are safe for
// concurrent use.
type Pair struct {
	name                 string
	sys                  *vm.System
	now                  func() simtime.Time
	prodActor, consActor int

	// DoorbellCost is the control-transfer charge for ringing one
	// doorbell: a real IPC crossing (IPCLatency plus any surcharge).
	// Set once at creation time, before traffic.
	DoorbellCost simtime.Duration

	// mu guards the index pairs, slot arrays, waiter state, and stats. It
	// is a leaf lock (rank 70 in internal/analysis/lockorder.go): pops are
	// taken under it and entries are processed, charged, and recycled only
	// after it is released.
	mu      sync.Mutex
	sq, cq  indexes
	sqSlots []Entry
	cqSlots []Completion
	prod    waiter // waits on the completion ring
	cons    waiter // waits on the submission ring
	stats   Stats
}

// NewPair creates a ring pair of the given capacity (a power of two;
// DefaultDepth when 0). now supplies the virtual clock the spin-then-block
// policy runs on; prodActor and consActor label the two sides' spans
// (domain ID plus trace base, as elsewhere).
func NewPair(sys *vm.System, name string, capacity int, now func() simtime.Time, prodActor, consActor int) (*Pair, error) {
	if capacity == 0 {
		capacity = DefaultDepth
	}
	sq, err := newIndexes(capacity)
	if err != nil {
		return nil, err
	}
	cq, err := newIndexes(capacity)
	if err != nil {
		return nil, err
	}
	return &Pair{
		name: name, sys: sys, now: now,
		prodActor: prodActor, consActor: consActor,
		sq: sq, cq: cq,
		sqSlots: make([]Entry, capacity),
		cqSlots: make([]Completion, capacity),
		prod:    waiter{budget: spinInit},
		cons:    waiter{budget: spinInit},
	}, nil
}

// Name returns the pair's diagnostic name.
func (p *Pair) Name() string { return p.name }

// arrival resolves an empty→non-empty transition against the waiter's spin
// window: inside it the arrival is free (and the budget decays an eighth,
// probing for a shorter linger); outside it the doorbell must be rung (the
// waiter blocked too early, so the budget doubles). Called with mu held;
// returns whether to charge a doorbell.
func (p *Pair) arrival(w *waiter, now simtime.Time) bool {
	if now < w.idleUntil {
		p.stats.SpinHits++
		w.budget = clampSpin(w.budget - w.budget/8)
		return false
	}
	p.stats.Doorbells++
	w.budget = clampSpin(w.budget * 2)
	return true
}

// Submit places one entry on the submission ring. On an empty→non-empty
// transition the consumer's doorbell is rung (charged) unless it is still
// inside its spin window. ErrFull means the caller must fall back to the
// legacy IPC path; nothing was charged.
func (p *Pair) Submit(e Entry) error {
	now := p.now()
	p.mu.Lock()
	wasEmpty := p.sq.empty()
	slot, ok := p.sq.push()
	if !ok {
		p.stats.SubmitFallbacks++
		p.mu.Unlock()
		return ErrFull
	}
	p.sqSlots[slot] = e
	p.stats.Submits++
	doorbell := false
	if wasEmpty {
		doorbell = p.arrival(&p.cons, now)
	}
	// Having submitted, the producer attends its completion ring (a
	// synchronous caller polls for the acknowledgement), so the matching
	// completion never needs a doorbell of its own.
	p.prod.idleUntil = attending
	p.mu.Unlock()
	if doorbell {
		p.ringDoorbell(p.consActor, int64(e.Descriptors))
	} else if wasEmpty {
		p.noteSpinHit(p.consActor)
	}
	return nil
}

// Drain consumes every pending submission entry in order, invoking fn on
// each outside the ring lock, and re-arms the consumer's spin window. It
// stops at the first fn error, leaving later entries queued. Returns the
// number of entries consumed.
func (p *Pair) Drain(fn func(Entry) error) (int, error) {
	n := 0
	var err error
	for {
		p.mu.Lock()
		if n == 0 {
			p.stats.Drains++
		}
		slot, ok := p.sq.pop()
		if !ok {
			p.mu.Unlock()
			break
		}
		e := p.sqSlots[slot]
		p.sqSlots[slot] = Entry{}
		p.stats.Drained++
		p.mu.Unlock()
		n++
		if err = fn(e); err != nil {
			break
		}
	}
	if n > 0 {
		p.noteDrain(p.consActor, int64(n))
	}
	now := p.now()
	p.mu.Lock()
	p.cons.idleUntil = now + p.cons.budget
	p.mu.Unlock()
	return n, err
}

// Complete places one entry on the completion ring, ringing the producer's
// doorbell on an empty→non-empty transition unless the producer is
// attending or spinning. ErrFull means the caller must deliver the payload
// directly; nothing was charged.
func (p *Pair) Complete(c Completion) error {
	now := p.now()
	p.mu.Lock()
	wasEmpty := p.cq.empty()
	slot, ok := p.cq.push()
	if !ok {
		p.stats.CompleteFallback++
		p.mu.Unlock()
		return ErrFull
	}
	p.cqSlots[slot] = c
	p.stats.Completions++
	p.stats.NoticesCoalesced += uint64(c.Notices)
	doorbell := false
	if wasEmpty {
		doorbell = p.arrival(&p.prod, now)
	}
	p.mu.Unlock()
	if doorbell {
		p.ringDoorbell(p.prodActor, int64(c.Notices))
	} else if wasEmpty {
		p.noteSpinHit(p.prodActor)
	}
	return nil
}

// DrainCompletions consumes every pending completion entry in order,
// invoking fn on each outside the ring lock, and re-arms the producer's
// spin window. Returns the number of entries consumed.
func (p *Pair) DrainCompletions(fn func(Completion)) int {
	n := 0
	for {
		p.mu.Lock()
		if n == 0 {
			p.stats.CompletionDrains++
		}
		slot, ok := p.cq.pop()
		if !ok {
			p.mu.Unlock()
			break
		}
		c := p.cqSlots[slot]
		p.cqSlots[slot] = Completion{}
		p.stats.CompletionsDrained++
		p.mu.Unlock()
		n++
		fn(c)
	}
	if n > 0 {
		p.noteDrain(p.prodActor, int64(n))
	}
	now := p.now()
	p.mu.Lock()
	p.prod.idleUntil = now + p.prod.budget
	p.mu.Unlock()
	return n
}

// ringDoorbell charges the real control-transfer crossing and attributes it
// to the current trace as a ring-doorbell span.
func (p *Pair) ringDoorbell(actor int, arg int64) {
	if o := p.sys.Obs; o != nil {
		o.SpanBegin(span.StageRing, "ring-doorbell", actor, arg)
		defer o.SpanEnd()
	}
	p.sys.Sink().Charge(p.DoorbellCost)
}

// noteSpinHit records a zero-cost span marking an arrival the spinning
// waiter caught: the audit attribution shows how many crossings the spin
// window elided (the span's duration is zero because nothing is charged).
func (p *Pair) noteSpinHit(actor int) {
	if o := p.sys.Obs; o != nil {
		o.SpanBegin(span.StageRing, "ring-spin", actor, 0)
		defer o.SpanEnd()
	}
}

// noteDrain records a zero-cost span marking a non-empty drain pass (arg is
// the entry count): shared-memory consumption charges nothing, but the
// audit attribution still shows how much traffic each ring moved.
func (p *Pair) noteDrain(actor int, arg int64) {
	if o := p.sys.Obs; o != nil {
		o.SpanBegin(span.StageRing, "ring-drain", actor, arg)
		defer o.SpanEnd()
	}
}

// SubmissionsFull reports whether the next Submit would return ErrFull.
func (p *Pair) SubmissionsFull() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sq.full()
}

// CompletionsFull reports whether the next Complete would return ErrFull.
func (p *Pair) CompletionsFull() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cq.full()
}

// Depths returns the current submission and completion ring occupancies.
func (p *Pair) Depths() (sq, cq int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.sq.occupancy()), int(p.cq.occupancy())
}

// SpinBudgets returns both sides' current adaptive spin budgets
// (producer side first) — observability for tests and the bench report.
func (p *Pair) SpinBudgets() (prod, cons simtime.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.prod.budget, p.cons.budget
}

// Stats returns a snapshot of the pair's counters.
func (p *Pair) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Add accumulates o into s (aggregation across a router's pairs).
func (s *Stats) Add(o Stats) {
	s.Submits += o.Submits
	s.SubmitFallbacks += o.SubmitFallbacks
	s.Doorbells += o.Doorbells
	s.SpinHits += o.SpinHits
	s.Drains += o.Drains
	s.Drained += o.Drained
	s.Completions += o.Completions
	s.CompleteFallback += o.CompleteFallback
	s.CompletionDrains += o.CompletionDrains
	s.CompletionsDrained += o.CompletionsDrained
	s.NoticesCoalesced += o.NoticesCoalesced
}
