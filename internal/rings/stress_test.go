package rings_test

import (
	"sync"
	"testing"

	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/rings"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

// TestRingStressRace hammers one ring pair from concurrent producers while
// a collector coalesces the deallocation notices their frees queue into
// completion entries and retires them — the CI `-race` (and FBSAN=1)
// stress target. Contract: no ring entry is lost or duplicated, every
// queued notice is retired exactly once (ring-coalesced or delivered
// directly on ring-full), and the facility converges with clean counters.
func TestRingStressRace(t *testing.T) {
	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), 8192, vm.ClockSink{Clock: clk})
	reg := domain.NewRegistry(sys)
	mgr := core.NewManager(sys, reg)
	san := mgr.EnableSanitizer()
	san.OnViolation = func(msg string) { t.Errorf("fbsan: %s", msg) }

	src := reg.New("src")
	dst := reg.New("dst")
	mgr.AttachDomain(src)
	mgr.AttachDomain(dst)

	p, err := mgr.NewPath("ring-stress", core.CachedVolatile(), 1, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	p.SetQuota(256)
	// Keep explicit-overflow recycling out of the way so the ring carries
	// (nearly) all notices.
	mgr.NoticeLimit = 1 << 20

	pr, err := rings.NewPair(sys, "stress", 16, clk.Now, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	pr.DoorbellCost = sys.Cost.IPCLatency

	const workers = 8
	const iters = 300
	var wg sync.WaitGroup
	stop := make(chan struct{})

	retire := func(c rings.Completion) {
		if fs, ok := c.Payload.([]*core.Fbuf); ok {
			mgr.RetireNotices(fs)
		}
	}
	// Collector: coalesce pending notices into one completion entry per
	// pass, retiring directly when the completion ring is full.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			batch := mgr.CollectNotices(dst, src)
			if len(batch) > 0 {
				if err := pr.Complete(rings.Completion{Notices: len(batch), Payload: batch}); err != nil {
					mgr.RetireNotices(batch)
				}
			}
			pr.DrainCompletions(retire)
			select {
			case <-stop:
				if len(batch) == 0 {
					return
				}
			default:
			}
		}
	}()

	// Producers: allocate, transfer src→dst, free at src then dst so the
	// last free queues a deallocation notice at the holder.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fb, err := p.Alloc()
				if err != nil {
					continue // transient quota pressure from queued notices
				}
				if err := mgr.Transfer(fb, src, dst); err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
				if err := mgr.Free(fb, src); err != nil {
					t.Errorf("free src: %v", err)
					return
				}
				if err := mgr.Free(fb, dst); err != nil {
					t.Errorf("free dst: %v", err)
					return
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	// Producers finish first; then the collector drains dry and exits.
	close(stop)
	<-done

	// Quiesce: anything still queued retires through one last collect.
	if batch := mgr.CollectNotices(dst, src); len(batch) > 0 {
		mgr.RetireNotices(batch)
	}
	pr.DrainCompletions(retire)

	st := mgr.Snapshot()
	if err := st.Check(); err != nil {
		t.Errorf("stats invariants: %v", err)
	}
	if st.NoticesRing == 0 {
		t.Error("no notices traveled the ring")
	}
	rs := pr.Stats()
	if rs.Completions != rs.CompletionsDrained {
		t.Errorf("completions %d != drained %d", rs.Completions, rs.CompletionsDrained)
	}
	if err := mgr.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := mgr.CheckConverged(); err != nil {
		t.Errorf("leaked after quiescence: %v", err)
	}
}
