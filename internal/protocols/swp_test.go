package protocols

import (
	"bytes"
	"sort"
	"testing"

	"fbufs/internal/aggregate"
	"fbufs/internal/core"
	"fbufs/internal/simtime"
	"fbufs/internal/xkernel"
)

// pattern builds a deterministic payload.
func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + 7)
	}
	return b
}

// manualTimers is a crank-driven TimerSource for synchronous tests.
type manualTimers struct {
	clk    *simtime.Clock
	queue  []manualTimer
	nextID int
}

type manualTimer struct {
	at simtime.Time
	id int
	fn func()
}

func (m *manualTimers) After(d simtime.Duration, fn func()) {
	m.nextID++
	m.queue = append(m.queue, manualTimer{at: m.clk.Now() + d, id: m.nextID, fn: fn})
}

// crank fires every timer due at or before now+horizon, advancing the
// clock to each.
func (m *manualTimers) crank(horizon simtime.Duration) {
	deadline := m.clk.Now() + horizon
	for {
		due := -1
		for i := range m.queue {
			if m.queue[i].at <= deadline && (due < 0 || less(m.queue[i], m.queue[due])) {
				due = i
			}
		}
		if due < 0 {
			return
		}
		t := m.queue[due]
		m.queue = append(m.queue[:due], m.queue[due+1:]...)
		m.clk.AdvanceTo(t.at)
		t.fn()
	}
}

func less(a, b manualTimer) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.id < b.id
}

// pipe is a configurable bottom layer pair: what one side pushes, the
// other side's SWP receives, subject to loss and reordering.
type pipe struct {
	xkernel.Base
	peer *SWP

	dropEvery int // drop the Nth push (1-based counting), 0 = lossless
	count     int
	reorder   bool
	held      *aggregate.Msg

	Dropped int
}

func (p *pipe) Push(m *aggregate.Msg) error {
	p.count++
	if p.dropEvery > 0 && p.count%p.dropEvery == 0 {
		p.Dropped++
		return m.Free(p.Dom())
	}
	if p.reorder {
		if p.held == nil {
			p.held = m
			return nil
		}
		held := p.held
		p.held = nil
		if err := p.peer.Deliver(m); err != nil {
			return err
		}
		return p.peer.Deliver(held)
	}
	return p.peer.Deliver(m)
}

func (p *pipe) Deliver(m *aggregate.Msg) error { return m.Free(p.Dom()) }

// flush releases a reorder-held message.
func (p *pipe) flush() error {
	if p.held == nil {
		return nil
	}
	m := p.held
	p.held = nil
	return p.peer.Deliver(m)
}

// swpRig wires two SWP endpoints through pipes in one domain.
type swpRig struct {
	r          *rig
	timers     *manualTimers
	a, b       *SWP
	pa, pb     *pipe
	sinkA      *TestProto
	sinkB      *TestProto
	sentBodies [][]byte
}

func newSWPRig(t *testing.T, dropEvery int, reorder bool) *swpRig {
	t.Helper()
	r := newRig(t)
	d := r.reg.New("host")
	r.mgr.AttachDomain(d)
	path, err := r.mgr.NewPath("swp", core.CachedVolatile(), 2, d)
	if err != nil {
		t.Fatal(err)
	}
	path.SetQuota(-1)
	ctxA, err := aggregate.NewCtx(r.mgr, path, true)
	if err != nil {
		t.Fatal(err)
	}
	path2, err := r.mgr.NewPath("swp2", core.CachedVolatile(), 2, d)
	if err != nil {
		t.Fatal(err)
	}
	path2.SetQuota(-1)
	ctxB, err := aggregate.NewCtx(r.mgr, path2, true)
	if err != nil {
		t.Fatal(err)
	}
	timers := &manualTimers{clk: r.clk}
	s := &swpRig{r: r, timers: timers}
	s.a = NewSWP(r.env, ctxA, timers)
	s.b = NewSWP(r.env, ctxB, timers)
	s.pa = &pipe{Base: xkernel.NewBase("pipeA", d), peer: s.b, dropEvery: dropEvery, reorder: reorder}
	s.pb = &pipe{Base: xkernel.NewBase("pipeB", d), peer: s.a}
	s.a.SetBelow(s.pa)
	s.b.SetBelow(s.pb)
	s.sinkA = NewTestProto(r.env, ctxA)
	s.sinkB = NewTestProto(r.env, ctxB)
	s.a.SetAbove(s.sinkA)
	s.b.SetAbove(s.sinkB)
	return s
}

func (s *swpRig) send(t *testing.T, ctx *aggregate.Ctx, payload []byte) {
	t.Helper()
	m, err := ctx.NewData(payload)
	if err != nil {
		t.Fatal(err)
	}
	s.sentBodies = append(s.sentBodies, payload)
	if err := s.a.Push(m); err != nil {
		t.Fatal(err)
	}
}

func TestSWPLosslessInOrder(t *testing.T) {
	s := newSWPRig(t, 0, false)
	var got [][]byte
	s.b.SetAbove(captureLayer(s.r, func(b []byte) { got = append(got, b) }))
	ctx := s.a.ctx
	for i := 0; i < 10; i++ {
		s.send(t, ctx, pattern(1000+i*37))
	}
	if s.a.Retransmits != 0 {
		t.Fatalf("retransmits on lossless pipe: %d", s.a.Retransmits)
	}
	if len(got) != 10 {
		t.Fatalf("delivered %d", len(got))
	}
	for i, b := range got {
		if !bytes.Equal(b, s.sentBodies[i]) {
			t.Fatalf("message %d corrupted or misordered", i)
		}
	}
	if s.a.InflightCount() != 0 {
		t.Fatalf("%d unacked after acks", s.a.InflightCount())
	}
	if err := s.r.mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// captureLayer adapts a func into a delivery sink.
func captureLayer(r *rig, fn func([]byte)) xkernel.Layer {
	d := r.reg.Get(1)
	if d == nil {
		d = r.reg.Kernel()
	}
	return &funcSink{Base: xkernel.NewBase("capture", d), r: r, fn: fn}
}

type funcSink struct {
	xkernel.Base
	r  *rig
	fn func([]byte)
}

func (f *funcSink) Push(m *aggregate.Msg) error { return m.Free(f.Dom()) }
func (f *funcSink) Deliver(m *aggregate.Msg) error {
	b, err := m.ReadAll(f.Dom())
	if err != nil {
		return err
	}
	f.fn(b)
	return m.Free(f.Dom())
}

func TestSWPRecoversFromLoss(t *testing.T) {
	s := newSWPRig(t, 3, false) // drop every 3rd PDU (data and acks alike)
	var got [][]byte
	s.b.SetAbove(captureLayer(s.r, func(b []byte) { got = append(got, b) }))
	ctx := s.a.ctx
	const msgs = 12
	for i := 0; i < msgs; i++ {
		s.send(t, ctx, pattern(500+i*11))
	}
	// Crank retransmission timers until everything lands (bounded). The
	// horizon covers the exponential backoff: a backed-off timer can sit
	// many RTOs out, and crank only advances the clock when a timer fires.
	for round := 0; round < 200 && len(got) < msgs; round++ {
		s.timers.crank(s.a.RTO * 64)
		if s.a.Err != nil {
			t.Fatal(s.a.Err)
		}
	}
	if len(got) != msgs {
		t.Fatalf("delivered %d of %d (drops=%d retransmits=%d)",
			len(got), msgs, s.pa.Dropped, s.a.Retransmits)
	}
	for i, b := range got {
		if !bytes.Equal(b, s.sentBodies[i]) {
			t.Fatalf("message %d corrupted or misordered", i)
		}
	}
	if s.a.Retransmits == 0 {
		t.Fatal("loss recovery without retransmissions?")
	}
	// Keep cranking so straggler acks land and clones free.
	for round := 0; round < 200 && s.a.InflightCount() > 0; round++ {
		s.timers.crank(s.a.RTO * 64)
	}
	if s.a.InflightCount() != 0 {
		t.Fatalf("%d clones never freed", s.a.InflightCount())
	}
	if err := s.r.mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSWPReordering(t *testing.T) {
	s := newSWPRig(t, 0, true) // swap successive PDUs
	var got [][]byte
	s.b.SetAbove(captureLayer(s.r, func(b []byte) { got = append(got, b) }))
	ctx := s.a.ctx
	const msgs = 8
	for i := 0; i < msgs; i++ {
		s.send(t, ctx, pattern(300+i*7))
	}
	if err := s.pa.flush(); err != nil {
		t.Fatal(err)
	}
	s.timers.crank(s.a.RTO * 4)
	if len(got) != msgs {
		t.Fatalf("delivered %d of %d", len(got), msgs)
	}
	// In-order despite the swaps.
	for i, b := range got {
		if !bytes.Equal(b, s.sentBodies[i]) {
			t.Fatalf("message %d out of order", i)
		}
	}
}

func TestSWPWindowBackpressure(t *testing.T) {
	s := newSWPRig(t, 0, false)
	s.a.Window = 4
	// Break the ack path so the window cannot open.
	s.pa.dropEvery = 1 // drop everything A sends
	ctx := s.a.ctx
	for i := 0; i < 10; i++ {
		s.send(t, ctx, pattern(100))
	}
	if s.a.InflightCount() != 4 {
		t.Fatalf("inflight %d, want window 4", s.a.InflightCount())
	}
	if s.a.PendingCount() != 6 {
		t.Fatalf("pending %d", s.a.PendingCount())
	}
	// Restore the pipe; timers retransmit and the window drains.
	s.pa.dropEvery = 0
	var got int
	s.b.SetAbove(captureLayer(s.r, func([]byte) { got++ }))
	for round := 0; round < 100 && got < 10; round++ {
		s.timers.crank(s.a.RTO * 64)
		if s.a.Err != nil {
			t.Fatal(s.a.Err)
		}
	}
	if got != 10 {
		t.Fatalf("drained %d of 10", got)
	}
}

func TestSWPRetryExhaustion(t *testing.T) {
	s := newSWPRig(t, 1, false) // total loss
	s.a.MaxRetries = 3
	ctx := s.a.ctx
	s.send(t, ctx, pattern(64))
	for round := 0; round < 20 && s.a.Err == nil; round++ {
		s.timers.crank(s.a.RTO * 64)
	}
	if s.a.Err == nil {
		t.Fatal("no error after exhausting retries on a dead link")
	}
	// Facility state remains consistent for the rest of the host.
	if err := s.r.mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSWPDuplicateSuppression(t *testing.T) {
	// Acks dropped -> sender retransmits data the receiver already has;
	// receiver must drop duplicates and re-ack, never double-deliver.
	s := newSWPRig(t, 0, false)
	var got int
	s.b.SetAbove(captureLayer(s.r, func([]byte) { got++ }))
	s.pb.dropEvery = 1 // kill the ack path only (B -> A)
	ctx := s.a.ctx
	s.send(t, ctx, pattern(256))
	s.timers.crank(s.a.RTO * 2) // retransmit at least once
	s.pb.dropEvery = 0
	s.timers.crank(s.a.RTO * 4)
	if got != 1 {
		t.Fatalf("delivered %d times", got)
	}
	if s.b.DupsDropped == 0 {
		t.Fatal("no duplicates recorded")
	}
}

func TestManualTimerOrdering(t *testing.T) {
	clk := &simtime.Clock{}
	m := &manualTimers{clk: clk}
	var order []int
	m.After(30, func() { order = append(order, 3) })
	m.After(10, func() { order = append(order, 1) })
	m.After(20, func() { order = append(order, 2) })
	m.crank(100)
	if !sort.IntsAreSorted(order) || len(order) != 3 {
		t.Fatalf("fired %v", order)
	}
	if clk.Now() != 30 {
		t.Fatalf("clock %v", clk.Now())
	}
}

func TestSWPNoRetransmitsLossless(t *testing.T) {
	// A lossless link must never fire a retransmission timer, so the
	// backoff machinery stays completely cold: no retransmits, no
	// backoffs, and no per-message RTO ever grows.
	s := newSWPRig(t, 0, false)
	var got int
	s.b.SetAbove(captureLayer(s.r, func([]byte) { got++ }))
	ctx := s.a.ctx
	const msgs = 16
	for i := 0; i < msgs; i++ {
		s.send(t, ctx, pattern(200+i*13))
	}
	s.timers.crank(s.a.RTO / 2) // nothing should be due
	if got != msgs {
		t.Fatalf("delivered %d of %d", got, msgs)
	}
	if s.a.Retransmits != 0 {
		t.Fatalf("retransmits on lossless link: %d", s.a.Retransmits)
	}
	if s.a.Backoffs != 0 {
		t.Fatalf("backoffs on lossless link: %d", s.a.Backoffs)
	}
}

func TestSWPBackoffGrowsAndCaps(t *testing.T) {
	// On a dead link each timeout doubles the message's RTO (plus jitter
	// < rto/8) up to RTOMax; the gaps between successive retransmissions
	// must be strictly increasing until the cap, then stop growing.
	s := newSWPRig(t, 1, false) // total loss
	s.a.MaxRetries = 10
	s.a.RTOMax = s.a.RTO * 8
	var fireTimes []simtime.Time
	base := &pipe{Base: s.pa.Base, peer: s.b, dropEvery: 1}
	s.a.SetBelow(recordingPipe{base, s.r.clk, &fireTimes})
	ctx := s.a.ctx
	s.send(t, ctx, pattern(64))
	for round := 0; round < 40 && s.a.Err == nil; round++ {
		s.timers.crank(s.a.RTO * 64)
	}
	if s.a.Err == nil {
		t.Fatal("dead link never exhausted retries")
	}
	if s.a.Backoffs == 0 {
		t.Fatal("no backoffs recorded")
	}
	// fireTimes[0] is the original send (time 0 on the manual clock); the
	// rest are retransmissions.
	if len(fireTimes) < 5 {
		t.Fatalf("only %d transmissions", len(fireTimes))
	}
	var gaps []simtime.Duration
	for i := 1; i < len(fireTimes); i++ {
		gaps = append(gaps, simtime.Duration(fireTimes[i]-fireTimes[i-1]))
	}
	capGap := s.a.RTOMax + s.a.RTOMax/8
	for i, g := range gaps {
		if g > capGap {
			t.Fatalf("gap %d = %v exceeds cap+jitter %v", i, g, capGap)
		}
		if i > 0 && i < 3 && g <= gaps[i-1] {
			t.Fatalf("gap %d = %v did not grow over %v", i, g, gaps[i-1])
		}
	}
	// The last gaps sit at the cap (within jitter).
	last := gaps[len(gaps)-1]
	if last < s.a.RTOMax {
		t.Fatalf("final gap %v below RTOMax %v", last, s.a.RTOMax)
	}
}

func TestSWPBackoffDeterministic(t *testing.T) {
	run := func() []simtime.Time {
		s := newSWPRig(t, 1, false)
		s.a.MaxRetries = 6
		s.a.SeedJitter(99)
		var fireTimes []simtime.Time
		base := &pipe{Base: s.pa.Base, peer: s.b, dropEvery: 1}
		s.a.SetBelow(recordingPipe{base, s.r.clk, &fireTimes})
		ctx := s.a.ctx
		s.send(t, ctx, pattern(64))
		for round := 0; round < 40 && s.a.Err == nil; round++ {
			s.timers.crank(s.a.RTO * 64)
		}
		return fireTimes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs transmitted %d vs %d times", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transmission %d at %v vs %v", i, a[i], b[i])
		}
	}
}

// recordingPipe wraps a pipe, stamping each push with the simulated time.
type recordingPipe struct {
	*pipe
	clk   *simtime.Clock
	times *[]simtime.Time
}

func (r recordingPipe) Push(m *aggregate.Msg) error {
	*r.times = append(*r.times, r.clk.Now())
	return r.pipe.Push(m)
}
