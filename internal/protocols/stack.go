package protocols

import (
	"fbufs/internal/aggregate"
	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/xkernel"
)

// StackConfig describes a UDP/IP protocol stack instance and how it is
// distributed over protection domains.
type StackConfig struct {
	// Src, Net, Sink are the domains for the sending test protocol, the
	// network server (UDP/IP/driver), and the receiving dummy protocol.
	// In the paper's "single domain" configuration all three are equal.
	Src, Net, Sink *domain.Domain

	// Opts selects the fbuf optimization level for every allocator in
	// the stack; Integrated additionally selects integrated buffer
	// management in the aggregate layer.
	Opts core.Options

	// PDUBytes is IP's fragmentation threshold (4 KB in the loopback
	// experiment, 16 or 32 KB end-to-end).
	PDUBytes int

	// DataFbufPages sizes the source's data fbufs (large messages span
	// several).
	DataFbufPages int

	// Checksum enables UDP checksumming.
	Checksum bool

	// Wrap, when set, wraps every layer before wiring (instrumentation:
	// pass an xkernel.ProbeSet's Wrap).
	Wrap func(xkernel.Layer) xkernel.Layer
}

// LoopbackStack is the paper's third-experiment configuration: a UDP/IP
// stack with a local loopback protocol below IP.
type LoopbackStack struct {
	Env    *xkernel.Env
	Source *TestProto
	Sink   *TestProto
	UDP    *UDP
	IP     *IP
	Loop   *Loopback

	SrcCtx, NetCtx *aggregate.Ctx
}

const testPort = 7777

// NewLoopbackStack builds and wires the loopback stack.
func NewLoopbackStack(env *xkernel.Env, cfg StackConfig) (*LoopbackStack, error) {
	if cfg.DataFbufPages == 0 {
		cfg.DataFbufPages = 16
	}
	srcPath, err := env.Mgr.NewPath("app-out", cfg.Opts, cfg.DataFbufPages, cfg.Src, cfg.Net, cfg.Sink)
	if err != nil {
		return nil, err
	}
	srcPath.SetQuota(64)
	srcCtx, err := aggregate.NewCtx(env.Mgr, srcPath, cfg.Opts.Integrated)
	if err != nil {
		return nil, err
	}
	hdrPath, err := env.Mgr.NewPath("net-hdrs", cfg.Opts, 1, cfg.Net, cfg.Sink)
	if err != nil {
		return nil, err
	}
	hdrPath.SetQuota(64)
	netCtx, err := aggregate.NewCtx(env.Mgr, hdrPath, cfg.Opts.Integrated)
	if err != nil {
		return nil, err
	}

	s := &LoopbackStack{Env: env, SrcCtx: srcCtx, NetCtx: netCtx}
	s.Source = NewTestProto(env, srcCtx)
	sinkCtx := aggregate.NewUncachedCtx(env.Mgr, cfg.Sink, cfg.Opts, 1, cfg.Opts.Integrated)
	s.Sink = NewTestProto(env, sinkCtx)
	s.UDP = NewUDP(env, netCtx, testPort, testPort)
	s.UDP.Checksum = cfg.Checksum
	s.IP = NewIP(env, netCtx, cfg.PDUBytes)
	s.Loop = NewLoopback(env, netCtx)

	wrap := cfg.Wrap
	if wrap == nil {
		wrap = func(l xkernel.Layer) xkernel.Layer { return l }
	}
	source, udp, ip, loop, sink :=
		wrap(s.Source), wrap(s.UDP), wrap(s.IP), wrap(s.Loop), wrap(s.Sink)
	xkernel.Connect(env, source, udp)
	xkernel.Connect(env, udp, ip)
	xkernel.Connect(env, ip, loop)
	s.UDP.Bind(testPort, xkernel.Attach(env, sink, cfg.Net))
	return s, nil
}

// Send pushes one n-byte message from the source; with the loopback
// below IP it arrives at the sink within the same call.
func (s *LoopbackStack) Send(n int) error { return s.Source.SendUntouched(n) }

// SendVerified pushes a patterned message for integrity checking.
func (s *LoopbackStack) SendVerified(seq uint64, n int) error { return s.Source.Send(seq, n) }
