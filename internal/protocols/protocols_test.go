package protocols

import (
	"testing"

	"fbufs/internal/aggregate"

	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
	"fbufs/internal/xkernel"
)

type rig struct {
	clk *simtime.Clock
	sys *vm.System
	reg *domain.Registry
	mgr *core.Manager
	env *xkernel.Env
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), 16384, vm.ClockSink{Clock: clk})
	reg := domain.NewRegistry(sys)
	mgr := core.NewManager(sys, reg)
	mgr.EmptyLeafInit = nil
	env := xkernel.NewEnv(sys, mgr, reg)
	return &rig{clk: clk, sys: sys, reg: reg, mgr: mgr, env: env}
}

func (r *rig) threeDomains() (src, net, sink *domain.Domain) {
	src = r.reg.New("app")
	net = r.reg.New("netserver")
	sink = r.reg.New("receiver")
	return
}

func (r *rig) singleDomain() (src, net, sink *domain.Domain) {
	d := r.reg.New("monolith")
	return d, d, d
}

func (r *rig) cfgSingle() StackConfig {
	src, net, sink := r.singleDomain()
	return stackCfg(src, net, sink, core.CachedVolatile())
}

func stackCfg(src, net, sink *domain.Domain, opts core.Options) StackConfig {
	return StackConfig{
		Src: src, Net: net, Sink: sink,
		Opts:     opts,
		PDUBytes: 4096,
	}
}

func TestLoopbackIntegritySingleDomain(t *testing.T) {
	r := newRig(t)
	src, net, sink := r.singleDomain()
	s, err := NewLoopbackStack(r.env, stackCfg(src, net, sink, core.CachedVolatile()))
	if err != nil {
		t.Fatal(err)
	}
	s.Sink.Verify = true
	for seq := uint64(0); seq < 3; seq++ {
		if err := s.SendVerified(seq, 20000); err != nil {
			t.Fatal(err)
		}
	}
	if s.Sink.ReceivedMsgs != 3 || s.Sink.ReceivedBytes != 60000 {
		t.Fatalf("sink got %d msgs / %d bytes", s.Sink.ReceivedMsgs, s.Sink.ReceivedBytes)
	}
	if s.Sink.VerifyFailures != 0 {
		t.Fatalf("%d verify failures", s.Sink.VerifyFailures)
	}
	// 20000 bytes over 4096-byte PDUs = 5 fragments per message.
	if s.IP.SentPDUs != 15 || s.IP.Reassembled != 3 {
		t.Fatalf("IP stats: %d PDUs, %d reassembled", s.IP.SentPDUs, s.IP.Reassembled)
	}
	if err := r.mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLoopbackIntegrityThreeDomains(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts core.Options
	}{
		{"cached-volatile-integrated", core.CachedVolatile()},
		{"cached-volatile-private", func() core.Options { o := core.CachedVolatile(); o.Integrated = false; return o }()},
		{"uncached", func() core.Options { o := core.Uncached(); o.NoClear = true; return o }()},
		{"cached-nonvolatile", core.CachedNonVolatile()},
	} {
		t.Run(mode.name, func(t *testing.T) {
			r := newRig(t)
			src, net, sink := r.threeDomains()
			s, err := NewLoopbackStack(r.env, stackCfg(src, net, sink, mode.opts))
			if err != nil {
				t.Fatal(err)
			}
			s.Sink.Verify = true
			for seq := uint64(0); seq < 3; seq++ {
				if err := s.SendVerified(seq, 33000); err != nil {
					t.Fatal(err)
				}
			}
			if s.Sink.ReceivedMsgs != 3 {
				t.Fatalf("sink got %d msgs", s.Sink.ReceivedMsgs)
			}
			if s.Sink.VerifyFailures != 0 {
				t.Fatalf("%d verify failures", s.Sink.VerifyFailures)
			}
			// Two crossings per message: app->netserver, netserver->receiver.
			if got := r.env.Router.Calls; got != 6 {
				t.Fatalf("IPC calls %d, want 6", got)
			}
			if err := r.mgr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLoopbackSmallMessageNoFragmentation(t *testing.T) {
	r := newRig(t)
	s, err := NewLoopbackStack(r.env, r.cfgSingle())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(1000); err != nil {
		t.Fatal(err)
	}
	if s.IP.SentPDUs != 1 {
		t.Fatalf("sent %d PDUs for sub-PDU message", s.IP.SentPDUs)
	}
}

func TestFragSetupChargedOnlyWhenFragmenting(t *testing.T) {
	r := newRig(t)
	s, err := NewLoopbackStack(r.env, r.cfgSingle())
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache.
	if err := s.Send(4096 - UDPHeaderBytes); err != nil {
		t.Fatal(err)
	}
	if err := s.Send(8192); err != nil {
		t.Fatal(err)
	}

	start := r.clk.Now()
	if err := s.Send(4096 - UDPHeaderBytes); err != nil { // fits one PDU
		t.Fatal(err)
	}
	small := r.clk.Now() - start

	start = r.clk.Now()
	if err := s.Send(8192); err != nil { // must fragment
		t.Fatal(err)
	}
	big := r.clk.Now() - start

	// The fragmented message must carry at least the fixed frag-setup
	// cost beyond twice the small message's per-PDU work — the source of
	// the Figure 4 anomaly.
	if big < small+r.sys.Cost.IPFragSetup {
		t.Errorf("4KB msg %v, 8KB msg %v: fragmentation overhead missing", small, big)
	}
}

func TestUDPChecksum(t *testing.T) {
	r := newRig(t)
	cfg := r.cfgSingle()
	cfg.Checksum = true
	s, err := NewLoopbackStack(r.env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Sink.Verify = true
	if err := s.SendVerified(0, 10000); err != nil {
		t.Fatal(err)
	}
	if s.Sink.ReceivedMsgs != 1 || s.Sink.VerifyFailures != 0 {
		t.Fatalf("checksummed delivery failed: %d msgs, %d failures",
			s.Sink.ReceivedMsgs, s.Sink.VerifyFailures)
	}
	if s.UDP.Dropped != 0 {
		t.Fatalf("dropped %d", s.UDP.Dropped)
	}
}

func TestUDPDemuxDropsUnknownPort(t *testing.T) {
	r := newRig(t)
	s, err := NewLoopbackStack(r.env, r.cfgSingle())
	if err != nil {
		t.Fatal(err)
	}
	s.UDP.RemotePort = 9999 // nobody bound
	if err := s.Send(100); err != nil {
		t.Fatal(err)
	}
	if s.UDP.Dropped != 1 || s.Sink.ReceivedMsgs != 0 {
		t.Fatalf("dropped=%d received=%d", s.UDP.Dropped, s.Sink.ReceivedMsgs)
	}
	// The dropped message's buffers must have been freed.
	if err := r.mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestIPOutOfOrderReassembly(t *testing.T) {
	// Drive IP.Deliver directly with out-of-order fragments.
	r := newRig(t)
	d := r.reg.New("net")
	p, err := r.mgr.NewPath("p", core.CachedVolatile(), 2, d)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := aggregate.NewCtx(r.mgr, p, true)
	if err != nil {
		t.Fatal(err)
	}
	ip := NewIP(r.env, ctx, 4096)
	sink := NewTestProto(r.env, ctx)
	sink.Verify = false
	ip.SetAbove(sink)

	payload := make([]byte, 10000)
	for i := range payload {
		payload[i] = byte(i)
	}
	mk := func(off, n int, more bool) error {
		frag, err := ctx.NewData(payload[off : off+n])
		if err != nil {
			return err
		}
		hdr := ip.header(42, off, n, len(payload), more)
		m, err := ctx.Push(frag, hdr)
		if err != nil {
			return err
		}
		return ip.Deliver(m)
	}
	// Send middle, last, first.
	if err := mk(4096, 4096, true); err != nil {
		t.Fatal(err)
	}
	if err := mk(8192, 10000-8192, false); err != nil {
		t.Fatal(err)
	}
	if sink.ReceivedMsgs != 0 {
		t.Fatal("delivered with a hole")
	}
	if err := mk(0, 4096, true); err != nil {
		t.Fatal(err)
	}
	if sink.ReceivedMsgs != 1 || sink.ReceivedBytes != 10000 {
		t.Fatalf("reassembly: %d msgs %d bytes", sink.ReceivedMsgs, sink.ReceivedBytes)
	}
}

func TestIPDuplicateFragmentTolerated(t *testing.T) {
	r := newRig(t)
	d := r.reg.New("net")
	p, err := r.mgr.NewPath("p", core.CachedVolatile(), 2, d)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := aggregate.NewCtx(r.mgr, p, true)
	if err != nil {
		t.Fatal(err)
	}
	ip := NewIP(r.env, ctx, 4096)
	sink := NewTestProto(r.env, ctx)
	ip.SetAbove(sink)

	payload := make([]byte, 6000)
	mk := func(off, n int, more bool) error {
		frag, _ := ctx.NewData(payload[off : off+n])
		m, err := ctx.Push(frag, ip.header(7, off, n, len(payload), more))
		if err != nil {
			return err
		}
		return ip.Deliver(m)
	}
	if err := mk(0, 4096, true); err != nil {
		t.Fatal(err)
	}
	if err := mk(0, 4096, true); err != nil { // duplicate
		t.Fatal(err)
	}
	if err := mk(4096, 6000-4096, false); err != nil {
		t.Fatal(err)
	}
	if sink.ReceivedMsgs != 1 || sink.ReceivedBytes != 6000 {
		t.Fatalf("dup handling: %d msgs %d bytes", sink.ReceivedMsgs, sink.ReceivedBytes)
	}
	if err := r.mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCachedStackReusesFbufs(t *testing.T) {
	r := newRig(t)
	src, net, sink := r.threeDomains()
	s, err := NewLoopbackStack(r.env, stackCfg(src, net, sink, core.CachedVolatile()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Send(20000); err != nil {
			t.Fatal(err)
		}
	}
	st := r.mgr.Snapshot()
	if st.CacheHits == 0 {
		t.Fatal("no allocator cache hits across repeated sends")
	}
	// In the steady state, transfers build no new mappings.
	before := st.MappingsBuilt
	if err := s.Send(20000); err != nil {
		t.Fatal(err)
	}
	if r.mgr.Snapshot().MappingsBuilt != before {
		t.Fatalf("steady-state send built %d mappings",
			r.mgr.Snapshot().MappingsBuilt-before)
	}
}

func TestCachedFasterThanUncachedLoopback(t *testing.T) {
	// The headline Figure 4 claim: cached fbufs more than double
	// throughput over uncached fbufs in the 3-domain loopback test.
	measure := func(opts core.Options) float64 {
		r := newRig(t)
		src, net, sink := r.threeDomains()
		s, err := NewLoopbackStack(r.env, stackCfg(src, net, sink, opts))
		if err != nil {
			t.Fatal(err)
		}
		const n = 64 * 1024
		s.Send(n) // warm up
		start := r.clk.Now()
		const iters = 5
		for i := 0; i < iters; i++ {
			if err := s.Send(n); err != nil {
				t.Fatal(err)
			}
		}
		return simtime.Mbps(int64(n*iters), r.clk.Now()-start)
	}
	// The uncached configuration still runs the integrated system (as the
	// paper's x-kernel did) and pays full clearing costs.
	uncached := core.Uncached()
	uncached.Integrated = true
	cachedRate := measure(core.CachedVolatile())
	uncachedRate := measure(uncached)
	if cachedRate < 2*uncachedRate {
		t.Errorf("64KB loopback: cached %.0f Mb/s not 2x uncached %.0f Mb/s",
			cachedRate, uncachedRate)
	}
}
