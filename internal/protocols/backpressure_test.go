package protocols

import (
	"bytes"
	"testing"
)

// TestSWPBackpressureHalvesWindow: while the Backpressure source reports
// pressure, the effective window is half the configured one; sends the
// full window would have admitted park in pending and are counted as
// PressureStalls. Pressure lifting restores the full window, and every
// parked message still arrives intact and in order — backpressure sheds
// concurrency, never data.
func TestSWPBackpressureHalvesWindow(t *testing.T) {
	s := newSWPRig(t, 0, false)
	s.a.Window = 4
	pressured := true
	s.a.Backpressure = func() bool { return pressured }
	// Break the ack path so admitted messages stay inflight.
	s.pa.dropEvery = 1
	ctx := s.a.ctx
	for i := 0; i < 6; i++ {
		s.send(t, ctx, pattern(100+i*13))
	}
	if got := s.a.InflightCount(); got != 2 {
		t.Fatalf("inflight %d under pressure, want halved window 2", got)
	}
	if got := s.a.PendingCount(); got != 4 {
		t.Fatalf("pending %d, want 4", got)
	}
	if s.a.PressureStalls != 4 {
		// All four parked sends found the full window (4) open but the
		// halved one (2) shut — each is a stall charged to backpressure.
		t.Fatalf("PressureStalls = %d, want 4", s.a.PressureStalls)
	}

	// Pressure lifts and the pipe heals: the window reopens to 4 and the
	// backlog drains completely.
	pressured = false
	s.pa.dropEvery = 0
	var got [][]byte
	s.b.SetAbove(captureLayer(s.r, func(b []byte) { got = append(got, b) }))
	for round := 0; round < 100 && len(got) < 6; round++ {
		s.timers.crank(s.a.RTO * 64)
		if s.a.Err != nil {
			t.Fatal(s.a.Err)
		}
	}
	if len(got) != 6 {
		t.Fatalf("drained %d of 6", len(got))
	}
	for i, b := range got {
		if !bytes.Equal(b, s.sentBodies[i]) {
			t.Fatalf("message %d corrupted or misordered", i)
		}
	}
	if err := s.r.mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSWPBackpressureFloor: even with a window of 1 the pressured
// effective window never reaches zero, so the protocol cannot livelock —
// one message stays in flight to carry acks back.
func TestSWPBackpressureFloor(t *testing.T) {
	s := newSWPRig(t, 0, false)
	s.a.Window = 1
	s.a.Backpressure = func() bool { return true }
	var got int
	s.b.SetAbove(captureLayer(s.r, func([]byte) { got++ }))
	ctx := s.a.ctx
	for i := 0; i < 5; i++ {
		s.send(t, ctx, pattern(64))
	}
	for round := 0; round < 100 && got < 5; round++ {
		s.timers.crank(s.a.RTO * 64)
		if s.a.Err != nil {
			t.Fatal(s.a.Err)
		}
	}
	if got != 5 {
		t.Fatalf("delivered %d of 5 under permanent pressure", got)
	}
}
