package protocols

import (
	"fmt"

	"fbufs/internal/aggregate"
	"fbufs/internal/obs/span"
	"fbufs/internal/xkernel"
)

// Loopback is the pseudo-driver configured below IP in the paper's third
// experiment: "it turns PDUs around and sends them back up the protocol
// stack. The use of a loopback protocol rather than a real device driver
// simulates an infinitely fast network" — isolating software costs from
// I/O-bus and link limits.
type Loopback struct {
	xkernel.Base
	env *xkernel.Env

	// PDUs counts turned-around PDUs.
	PDUs uint64
}

// NewLoopback creates the loopback layer in the same domain as the layer
// above it (IP).
func NewLoopback(env *xkernel.Env, ctx *aggregate.Ctx) *Loopback {
	return &Loopback{Base: xkernel.NewBase("loopback", ctx.Dom), env: env}
}

// Push charges driver processing and immediately delivers the PDU back up.
func (l *Loopback) Push(m *aggregate.Msg) error {
	if o := l.env.Sys.Obs; o != nil {
		o.SpanBegin(span.StageDMA, "loopback", int(l.Dom().ID)+l.env.Sys.TraceBase, int64(m.Len()))
		defer o.SpanEnd()
	}
	l.env.Sys.Sink().Charge(l.env.Sys.Cost.DriverPerPDU)
	l.PDUs++
	return l.DeliverAbove(m)
}

// Deliver never happens: nothing is below a loopback.
func (l *Loopback) Deliver(m *aggregate.Msg) error {
	return fmt.Errorf("protocols: loopback has no layer below")
}
