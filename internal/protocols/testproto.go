package protocols

import (
	"fmt"

	"fbufs/internal/aggregate"
	"fbufs/internal/xkernel"
)

// TestProto is the paper's test protocol: at the sending end it creates
// messages and pushes them down; at the receiving end it plays the "dummy
// protocol" that touches one word in each page of the received message,
// deallocates it, and returns.
type TestProto struct {
	xkernel.Base
	env *xkernel.Env
	ctx *aggregate.Ctx

	// Verify makes the sink check payload contents against the pattern
	// the source wrote (integrity testing; more expensive than a touch).
	Verify bool
	// Rings opts this endpoint's cross-domain links into the shared-memory
	// ring data plane (xkernel.RingCapable).
	Rings bool
	// Label overrides the transfer-class label stamped on this endpoint's
	// traces (defaults to "data"). The e2e harness sets "ack" on the
	// reverse-path endpoint so each direction profiles separately.
	Label string
	// OnDeliver, if set, runs after a message is consumed — the
	// end-to-end harness hooks window acknowledgements here.
	OnDeliver func(n int)

	// Stats
	SentMsgs, SentBytes         uint64
	ReceivedMsgs, ReceivedBytes uint64
	VerifyFailures              uint64
}

// NewTestProto creates a test endpoint allocating from ctx.
func NewTestProto(env *xkernel.Env, ctx *aggregate.Ctx) *TestProto {
	return &TestProto{Base: xkernel.NewBase("test", ctx.Dom), env: env, ctx: ctx}
}

// RingEligible implements xkernel.RingCapable.
func (t *TestProto) RingEligible() bool { return t.Rings }

// Pattern returns the deterministic payload byte for position i of a
// message with the given sequence number.
func Pattern(seq uint64, i int) byte { return byte(uint64(i)*167 + seq*13 + 5) }

// TraceLabel names the transfer class the endpoint's traces are filed
// under in the profiler ("data" by default; the end-to-end harness labels
// its ack endpoints "ack" so acknowledgement latency does not pollute the
// data path's distribution).
func (t *TestProto) traceLabel() string {
	if t.Label != "" {
		return t.Label
	}
	return "data"
}

// Send builds an n-byte message and pushes it down the stack.
func (t *TestProto) Send(seq uint64, n int) error {
	data := make([]byte, n)
	for i := range data {
		data[i] = Pattern(seq, i)
	}
	o := t.env.Sys.Obs
	tid := o.BeginTrace(t.traceLabel(), int64(n))
	m, err := t.ctx.NewData(data)
	if err != nil {
		o.AbortTrace(tid)
		return err
	}
	t.SentMsgs++
	t.SentBytes += uint64(n)
	if err := t.PushBelow(m); err != nil {
		o.AbortTrace(tid)
		return err
	}
	return nil
}

// SendUntouched builds an n-byte message by touching one word per page
// rather than filling it — the paper's throughput-test access pattern
// ("writes one word in each VM page").
func (t *TestProto) SendUntouched(n int) error {
	o := t.env.Sys.Obs
	tid := o.BeginTrace(t.traceLabel(), int64(n))
	m, err := t.ctx.NewTouched(n)
	if err != nil {
		o.AbortTrace(tid)
		return err
	}
	t.SentMsgs++
	t.SentBytes += uint64(n)
	if err := t.PushBelow(m); err != nil {
		o.AbortTrace(tid)
		return err
	}
	return nil
}

// Deliver consumes a received message: touch (or verify) and free. This is
// where the transfer logically completes, so the current trace is ended
// here — before OnDeliver, whose acknowledgements begin traces of their
// own.
func (t *TestProto) Deliver(m *aggregate.Msg) error {
	o := t.env.Sys.Obs
	tid := o.CurrentTrace()
	n := m.Len()
	if t.Verify {
		data, err := m.ReadAll(t.Dom())
		if err != nil {
			return err
		}
		for i, b := range data {
			if b != Pattern(uint64(t.ReceivedMsgs), i) {
				t.VerifyFailures++
				break
			}
		}
	} else {
		if err := m.Touch(t.Dom()); err != nil {
			return err
		}
	}
	if err := m.Free(t.Dom()); err != nil {
		return err
	}
	t.ReceivedMsgs++
	t.ReceivedBytes += uint64(n)
	o.EndTrace(tid)
	if t.OnDeliver != nil {
		t.OnDeliver(n)
	}
	return nil
}

// Push is invalid on a test endpoint (nothing sits above it).
func (t *TestProto) Push(m *aggregate.Msg) error {
	return fmt.Errorf("protocols: test protocol is a top-level endpoint")
}
