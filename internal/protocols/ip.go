package protocols

import (
	"encoding/binary"
	"fmt"
	"sort"

	"fbufs/internal/aggregate"
	"fbufs/internal/obs/span"
	"fbufs/internal/xkernel"
)

// IPHeaderBytes is the (simplified) IP header size carried on every PDU.
const IPHeaderBytes = 20

// IP is the internetwork layer: it fragments large datagrams into PDUs of
// at most PDUBytes payload and reassembles them on delivery.
// Fragmentation never copies data: each fragment is an offset/length view
// into the original buffers, exactly as section 2.1.1 prescribes.
type IP struct {
	xkernel.Base
	env *xkernel.Env
	ctx *aggregate.Ctx

	// PDUBytes is the maximum payload per PDU (4 KB in the loopback
	// experiment, 16 KB — or 32 KB in the ablation — end-to-end).
	PDUBytes int

	// Rings opts this layer's cross-domain links into the shared-memory
	// ring data plane (xkernel.RingCapable).
	Rings bool

	nextID  uint32
	partial map[uint32]*reassembly

	// Stats
	SentPDUs, ReceivedPDUs, Reassembled, Dropped uint64
}

type reassembly struct {
	total    int // -1 until the final fragment arrives
	got      int
	segments map[int]*aggregate.Msg // offset -> fragment body
}

// NewIP creates the IP layer with header buffers drawn from ctx.
func NewIP(env *xkernel.Env, ctx *aggregate.Ctx, pduBytes int) *IP {
	return &IP{
		Base:     xkernel.NewBase("ip", ctx.Dom),
		env:      env,
		ctx:      ctx,
		PDUBytes: pduBytes,
		partial:  make(map[uint32]*reassembly),
	}
}

// RingEligible implements xkernel.RingCapable.
func (ip *IP) RingEligible() bool { return ip.Rings }

func (ip *IP) header(id uint32, off, n, total int, more bool) []byte {
	hdr := make([]byte, IPHeaderBytes)
	hdr[0] = 0x45
	binary.BigEndian.PutUint32(hdr[4:], id)
	binary.BigEndian.PutUint32(hdr[8:], uint32(off))
	binary.BigEndian.PutUint32(hdr[12:], uint32(n))
	if more {
		hdr[1] = 1
	} else {
		binary.BigEndian.PutUint32(hdr[16:], uint32(total))
	}
	return hdr
}

// Push fragments (if needed) and sends each PDU down. Entering the
// fragmentation path has a fixed setup cost — the source of the paper's
// Figure 4 "anomaly" just above the 4 KB PDU size.
func (ip *IP) Push(m *aggregate.Msg) error {
	if o := ip.env.Sys.Obs; o != nil {
		o.SpanBegin(span.StageProto, "ip", int(ip.Dom().ID)+ip.env.Sys.TraceBase, int64(m.Len()))
		defer o.SpanEnd()
	}
	id := ip.nextID
	ip.nextID++
	total := m.Len()
	if total <= ip.PDUBytes {
		ip.env.Sys.Sink().Charge(ip.env.Sys.Cost.IPPerPDU)
		out, err := ip.ctx.Push(m, ip.header(id, 0, total, total, false))
		if err != nil {
			return err
		}
		ip.SentPDUs++
		return ip.PushBelow(out)
	}
	ip.env.Sys.Sink().Charge(ip.env.Sys.Cost.IPFragSetup)
	off := 0
	rest := m
	for off < total {
		n := total - off
		more := n > ip.PDUBytes
		if more {
			n = ip.PDUBytes
		}
		var frag *aggregate.Msg
		var err error
		if more {
			frag, rest, err = ip.ctx.Split(rest, n)
			if err != nil {
				return err
			}
		} else {
			frag, rest = rest, nil
		}
		ip.env.Sys.Sink().Charge(ip.env.Sys.Cost.IPPerPDU)
		out, err := ip.ctx.Push(frag, ip.header(id, off, n, total, more))
		if err != nil {
			return err
		}
		ip.SentPDUs++
		if err := ip.PushBelow(out); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// Deliver reassembles fragments; a complete datagram goes up as a single
// message joined in offset order.
func (ip *IP) Deliver(m *aggregate.Msg) error {
	if o := ip.env.Sys.Obs; o != nil {
		o.SpanBegin(span.StageProto, "ip", int(ip.Dom().ID)+ip.env.Sys.TraceBase, int64(m.Len()))
		defer o.SpanEnd()
	}
	ip.env.Sys.Sink().Charge(ip.env.Sys.Cost.IPReassPerPDU)
	ip.ReceivedPDUs++
	if m.Len() < IPHeaderBytes {
		ip.Dropped++
		return m.Free(ip.Dom())
	}
	hdr, body, err := ip.ctx.Pop(m, IPHeaderBytes)
	if err != nil {
		return err
	}
	id := binary.BigEndian.Uint32(hdr[4:])
	off := int(binary.BigEndian.Uint32(hdr[8:]))
	n := int(binary.BigEndian.Uint32(hdr[12:]))
	more := hdr[1] == 1
	if body.Len() != n {
		ip.Dropped++
		return body.Free(ip.Dom())
	}
	// Unfragmented fast path.
	if off == 0 && !more {
		if _, pending := ip.partial[id]; !pending {
			ip.Reassembled++
			return ip.DeliverAbove(body)
		}
	}
	r := ip.partial[id]
	if r == nil {
		r = &reassembly{total: -1, segments: make(map[int]*aggregate.Msg)}
		ip.partial[id] = r
	}
	if dup, ok := r.segments[off]; ok {
		// Duplicate fragment: drop the older copy.
		r.got -= dup.Len()
		if err := dup.Free(ip.Dom()); err != nil {
			return err
		}
	}
	r.segments[off] = body
	r.got += n
	if !more {
		r.total = int(binary.BigEndian.Uint32(hdr[16:]))
	}
	if r.total < 0 || r.got < r.total {
		return nil
	}
	// Join fragments in offset order.
	whole, err := ip.joinInOrder(r)
	if err != nil {
		return err
	}
	delete(ip.partial, id)
	if whole.Len() != r.total {
		ip.Dropped++
		return whole.Free(ip.Dom())
	}
	ip.Reassembled++
	return ip.DeliverAbove(whole)
}

// FlushPartial discards every incomplete reassembly — the stale state left
// behind when a fragment's siblings were lost on the link and the transport
// retransmitted the whole datagram under a fresh IP id — freeing the held
// fragment buffers. Real stacks bound this state with a reassembly timer;
// the simulation flushes at teardown and counts the discards in Dropped.
// It returns the number of datagrams discarded.
func (ip *IP) FlushPartial() (int, error) {
	ids := make([]uint32, 0, len(ip.partial))
	for id := range ip.partial {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := ip.partial[id]
		offs := make([]int, 0, len(r.segments))
		for off := range r.segments {
			offs = append(offs, off)
		}
		sort.Ints(offs)
		for _, off := range offs {
			if err := r.segments[off].Free(ip.Dom()); err != nil {
				return 0, err
			}
		}
		delete(ip.partial, id)
		ip.Dropped++
	}
	return len(ids), nil
}

func (ip *IP) joinInOrder(r *reassembly) (*aggregate.Msg, error) {
	var whole *aggregate.Msg
	off := 0
	for off < r.total {
		seg, ok := r.segments[off]
		if !ok {
			return nil, fmt.Errorf("ip: reassembly hole at %d of %d", off, r.total)
		}
		delete(r.segments, off)
		next := off + seg.Len()
		if whole == nil {
			whole = seg
		} else {
			var err error
			whole, err = ip.ctx.Join(whole, seg)
			if err != nil {
				return nil, err
			}
		}
		off = next
	}
	return whole, nil
}
