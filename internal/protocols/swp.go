package protocols

import (
	"encoding/binary"
	"fmt"

	"fbufs/internal/aggregate"
	"fbufs/internal/obs/span"
	"fbufs/internal/simtime"
	"fbufs/internal/xkernel"
)

// SWPHeaderBytes is the sliding-window protocol header size.
const SWPHeaderBytes = 12

// swp header kinds.
const (
	swpData = 1
	swpAck  = 2
)

// TimerSource arms one-shot timers for the retransmission machinery. The
// event-driven harness backs it with the scheduler; synchronous tests use
// a manual crank.
type TimerSource interface {
	After(d simtime.Duration, fn func())
}

// SWP is a sliding-window transport: sequence numbers, cumulative
// acknowledgements, go-back-N-style retransmission on timeout, and
// in-order delivery with bounded out-of-order buffering. The paper's
// end-to-end test protocol "uses a sliding window to facilitate flow
// control"; SWP is that protocol as a first-class layer, usable over
// lossy links.
//
// Retransmission retains access to sent data after pushing it down —
// exactly the case the paper gives for copy semantics ("the passing layer
// needs to retain access to the buffer, for example, because it may need
// to retransmit it sometime in the future"). SWP holds a Clone of each
// unacknowledged message; immutability makes the clone free.
type SWP struct {
	xkernel.Base
	env    *xkernel.Env
	ctx    *aggregate.Ctx
	timers TimerSource

	// Window is the maximum number of unacknowledged messages.
	Window int
	// Rings opts this layer's cross-domain links into the shared-memory
	// ring data plane (xkernel.RingCapable).
	Rings bool
	// RTO is the initial retransmission timeout. Each unacknowledged
	// retransmission of a message doubles its timeout (plus deterministic
	// seeded jitter) up to RTOMax; an acknowledgement resets the next
	// message to RTO.
	RTO simtime.Duration
	// RTOMax caps the per-message backoff; 0 means 64×RTO.
	RTOMax simtime.Duration
	// MaxRetries bounds retransmissions per message before the
	// connection errors out.
	MaxRetries int

	// Backpressure, when set, is polled before admitting a message into
	// the window. While it reports true the effective window shrinks to
	// half (minimum 1), so an overloaded allocator sees its senders slow
	// down instead of thrash — the admission controller's Pressured
	// method is the intended source (core.Admission). Messages beyond
	// the shrunken window queue in pending exactly like window-full ones.
	Backpressure func() bool

	// Transmit state.
	nextSeq  uint64
	sendBase uint64
	inflight map[uint64]*inflightEntry
	pending  []*aggregate.Msg

	// Receive state.
	expected uint64
	ooBuf    map[uint64]*aggregate.Msg
	// OOLimit bounds the out-of-order buffer.
	OOLimit int

	// jitter is the private splitmix64 state for backoff jitter; seeded
	// by NewSWP (SeedJitter overrides) so runs are deterministic.
	jitter uint64

	// Stats. Backoffs counts timeout events that grew a message's RTO
	// (i.e. every retransmission armed with a longer timer).
	// PressureStalls counts sends parked in pending that a full window
	// alone would have admitted — the cost of honoring Backpressure.
	Sent, Delivered, Retransmits, DupsDropped, AcksSent, AcksReceived, Backoffs uint64
	PressureStalls                                                              uint64

	// Err records a terminal failure (retry exhaustion).
	Err error
}

type inflightEntry struct {
	msg     *aggregate.Msg // retransmission clone
	retries int
	gen     uint64           // invalidates stale timers after ack/retransmit
	rto     simtime.Duration // current timeout, doubled on each retransmit
}

// NewSWP builds the layer; ctx supplies header buffers and retransmission
// clones live in ctx's domain.
func NewSWP(env *xkernel.Env, ctx *aggregate.Ctx, timers TimerSource) *SWP {
	return &SWP{
		Base:       xkernel.NewBase("swp", ctx.Dom),
		env:        env,
		ctx:        ctx,
		timers:     timers,
		Window:     8,
		RTO:        simtime.MS(5),
		MaxRetries: 16,
		inflight:   make(map[uint64]*inflightEntry),
		ooBuf:      make(map[uint64]*aggregate.Msg),
		OOLimit:    64,
		jitter:     0x5bd1e995,
	}
}

// RingEligible implements xkernel.RingCapable.
func (s *SWP) RingEligible() bool { return s.Rings }

// SeedJitter reseeds the deterministic backoff-jitter stream (two SWPs with
// the same seed and event sequence produce identical timers).
func (s *SWP) SeedJitter(seed uint64) { s.jitter = seed ^ 0x9e3779b97f4a7c15 }

// effectiveRTOMax resolves the backoff cap.
func (s *SWP) effectiveRTOMax() simtime.Duration {
	if s.RTOMax > 0 {
		return s.RTOMax
	}
	return 64 * s.RTO
}

// nextJitter draws a deterministic jitter in [0, max) from the private
// splitmix64 stream; max <= 0 yields 0.
func (s *SWP) nextJitter(max simtime.Duration) simtime.Duration {
	if max <= 0 {
		return 0
	}
	s.jitter += 0x9e3779b97f4a7c15
	z := s.jitter
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return simtime.Duration(z % uint64(max))
}

func (s *SWP) header(kind byte, seq uint64) []byte {
	hdr := make([]byte, SWPHeaderBytes)
	hdr[0] = kind
	binary.BigEndian.PutUint64(hdr[4:], seq)
	return hdr
}

// Push accepts one message for reliable, in-order delivery to the peer.
func (s *SWP) Push(m *aggregate.Msg) error {
	if o := s.env.Sys.Obs; o != nil {
		o.SpanBegin(span.StageProto, "swp", int(s.Dom().ID)+s.env.Sys.TraceBase, int64(m.Len()))
		defer o.SpanEnd()
	}
	if s.Err != nil {
		return s.Err
	}
	if len(s.inflight) >= s.effWindow() {
		if len(s.inflight) < s.Window {
			s.PressureStalls++ // parked by backpressure, not window
		}
		s.pending = append(s.pending, m)
		return nil
	}
	return s.sendData(m)
}

// effWindow is the window currently in force: the configured Window,
// halved (minimum 1) while the Backpressure source reports pressure.
func (s *SWP) effWindow() int {
	if s.Backpressure != nil && s.Backpressure() {
		if w := (s.Window + 1) / 2; w >= 1 {
			return w
		}
		return 1
	}
	return s.Window
}

func (s *SWP) sendData(m *aggregate.Msg) error {
	seq := s.nextSeq
	s.nextSeq++
	clone, err := m.Clone(s.Dom())
	if err != nil {
		return err
	}
	e := &inflightEntry{msg: clone, rto: s.RTO}
	s.inflight[seq] = e
	s.Sent++
	out, err := s.ctx.Push(m, s.header(swpData, seq))
	if err != nil {
		return err
	}
	if err := s.PushBelow(out); err != nil {
		return err
	}
	s.armTimer(seq, e, false)
	return nil
}

// armTimer arms the entry's current per-message timeout, adding up to
// rto/8 of deterministic seeded jitter on retransmission arms. The timer
// closes over the generation so an ack or a later retransmission
// invalidates it.
func (s *SWP) armTimer(seq uint64, e *inflightEntry, jittered bool) {
	if s.timers == nil {
		return
	}
	d := e.rto
	if jittered {
		d += s.nextJitter(e.rto / 8)
	}
	gen := e.gen
	s.timers.After(d, func() { s.timeout(seq, gen) })
}

// timeout retransmits an unacknowledged message with exponential backoff:
// the message's timeout doubles (capped at RTOMax) plus up to rto/8 of
// deterministic seeded jitter, so repeated losses — or a timed partition —
// spread retransmissions out instead of hammering a congested or dead link.
func (s *SWP) timeout(seq uint64, gen uint64) {
	e, ok := s.inflight[seq]
	if !ok || e.gen != gen || s.Err != nil {
		return // acknowledged meanwhile, or superseded
	}
	e.retries++
	if e.retries > s.MaxRetries {
		s.Err = fmt.Errorf("swp: seq %d exceeded %d retries", seq, s.MaxRetries)
		return
	}
	e.gen++
	s.Retransmits++
	if max := s.effectiveRTOMax(); e.rto < max {
		e.rto *= 2
		if e.rto > max {
			e.rto = max
		}
		s.Backoffs++
	}
	resend, err := e.msg.Clone(s.Dom())
	if err != nil {
		s.Err = err
		return
	}
	out, err := s.ctx.Push(resend, s.header(swpData, seq))
	if err != nil {
		s.Err = err
		return
	}
	if err := s.PushBelow(out); err != nil {
		s.Err = err
		return
	}
	s.armTimer(seq, e, true)
}

// Deliver handles an arriving PDU from the peer: data (buffer, order,
// acknowledge) or a cumulative ack (open the window).
func (s *SWP) Deliver(m *aggregate.Msg) error {
	if o := s.env.Sys.Obs; o != nil {
		o.SpanBegin(span.StageProto, "swp", int(s.Dom().ID)+s.env.Sys.TraceBase, int64(m.Len()))
		defer o.SpanEnd()
	}
	if m.Len() < SWPHeaderBytes {
		return m.Free(s.Dom())
	}
	hdr, body, err := s.ctx.Pop(m, SWPHeaderBytes)
	if err != nil {
		return err
	}
	kind := hdr[0]
	seq := binary.BigEndian.Uint64(hdr[4:])
	switch kind {
	case swpAck:
		s.AcksReceived++
		if err := body.Free(s.Dom()); err != nil {
			return err
		}
		return s.handleAck(seq)
	case swpData:
		return s.handleData(seq, body)
	default:
		return body.Free(s.Dom())
	}
}

// handleAck processes a cumulative acknowledgement of everything < seq.
func (s *SWP) handleAck(ackThrough uint64) error {
	for seq := s.sendBase; seq < ackThrough; seq++ {
		if e, ok := s.inflight[seq]; ok {
			e.gen++ // kill pending timer
			if err := e.msg.Free(s.Dom()); err != nil {
				return err
			}
			delete(s.inflight, seq)
		}
	}
	if ackThrough > s.sendBase {
		s.sendBase = ackThrough
	}
	// Window opened: drain pending sends (respecting backpressure).
	for len(s.pending) > 0 && len(s.inflight) < s.effWindow() {
		m := s.pending[0]
		s.pending = s.pending[1:]
		if err := s.sendData(m); err != nil {
			return err
		}
	}
	return nil
}

// handleData orders arriving data and acknowledges cumulatively.
func (s *SWP) handleData(seq uint64, body *aggregate.Msg) error {
	switch {
	case seq == s.expected:
		s.expected++
		s.Delivered++
		if err := s.DeliverAbove(body); err != nil {
			return err
		}
		// Drain any buffered successors.
		for {
			next, ok := s.ooBuf[s.expected]
			if !ok {
				break
			}
			delete(s.ooBuf, s.expected)
			s.expected++
			s.Delivered++
			if err := s.DeliverAbove(next); err != nil {
				return err
			}
		}
	case seq > s.expected && len(s.ooBuf) < s.OOLimit:
		if _, dup := s.ooBuf[seq]; dup {
			s.DupsDropped++
			if err := body.Free(s.Dom()); err != nil {
				return err
			}
		} else {
			s.ooBuf[seq] = body
		}
	default: // duplicate of already-delivered data, or buffer full
		s.DupsDropped++
		if err := body.Free(s.Dom()); err != nil {
			return err
		}
	}
	return s.sendAck()
}

// sendAck emits a cumulative acknowledgement for everything below
// s.expected.
func (s *SWP) sendAck() error {
	s.AcksSent++
	ack, err := s.ctx.NewData(s.header(swpAck, s.expected))
	if err != nil {
		return err
	}
	return s.PushBelow(ack)
}

// InflightCount reports outstanding unacknowledged messages.
func (s *SWP) InflightCount() int { return len(s.inflight) }

// PendingCount reports messages waiting for window credit.
func (s *SWP) PendingCount() int { return len(s.pending) }
