// Package protocols implements the protocol suite of the paper's
// evaluation: UDP and IP (with fragmentation and reassembly over a
// configurable PDU size), a local loopback pseudo-protocol that "turns
// PDUs around and sends them back up the protocol stack" to simulate an
// infinitely fast network, and the test/dummy protocols that source and
// sink messages. All protocols operate on immutable aggregate messages:
// headers are pushed by allocating new buffers and logically concatenating
// them — original data is never modified.
package protocols

import (
	"encoding/binary"

	"fbufs/internal/aggregate"
	"fbufs/internal/machine"
	"fbufs/internal/obs"
	"fbufs/internal/obs/span"
	"fbufs/internal/simtime"
	"fbufs/internal/xkernel"
)

// UDPHeaderBytes is the UDP header size.
const UDPHeaderBytes = 8

// UDP is the user datagram protocol layer. Demultiplexing is by
// destination port; each open port routes to one upper layer.
type UDP struct {
	xkernel.Base
	env *xkernel.Env
	ctx *aggregate.Ctx

	// Checksum enables full-payload checksumming (off in the paper's
	// throughput tests; the cost is dominated by the data reads).
	Checksum bool
	// Rings opts this layer's cross-domain links into the shared-memory
	// ring data plane (xkernel.RingCapable).
	Rings bool

	ports map[uint16]xkernel.Layer
	// LocalPort and RemotePort configure the single flow the test
	// protocols use.
	LocalPort, RemotePort uint16

	// Stats
	Sent, Received, Dropped uint64
}

// NewUDP creates the UDP layer with header buffers drawn from ctx.
func NewUDP(env *xkernel.Env, ctx *aggregate.Ctx, local, remote uint16) *UDP {
	return &UDP{
		Base:       xkernel.NewBase("udp", ctx.Dom),
		env:        env,
		ctx:        ctx,
		ports:      make(map[uint16]xkernel.Layer),
		LocalPort:  local,
		RemotePort: remote,
	}
}

// RingEligible implements xkernel.RingCapable.
func (u *UDP) RingEligible() bool { return u.Rings }

// Bind routes datagrams for a destination port to the given upper layer.
func (u *UDP) Bind(port uint16, above xkernel.Layer) { u.ports[port] = above }

// Session is one UDP flow: a Layer whose Push stamps the session's ports.
// It lives in UDP's domain; connect upper layers to the session (x-kernel
// sessions work the same way).
type Session struct {
	xkernel.Base
	u             *UDP
	local, remote uint16
}

// OpenSession creates a flow with the given ports.
func (u *UDP) OpenSession(local, remote uint16) *Session {
	return &Session{Base: xkernel.NewBase("udp-session", u.Dom()), u: u, local: local, remote: remote}
}

// Push sends the message down the session's flow.
func (s *Session) Push(m *aggregate.Msg) error { return s.u.push(m, s.local, s.remote) }

// Deliver is invalid on a session: incoming traffic demuxes via Bind.
func (s *Session) Deliver(m *aggregate.Msg) error {
	return m.Free(s.Dom())
}

// Push prepends the UDP header with the default flow's ports.
func (u *UDP) Push(m *aggregate.Msg) error { return u.push(m, u.LocalPort, u.RemotePort) }

func (u *UDP) push(m *aggregate.Msg, local, remote uint16) error {
	if o := u.env.Sys.Obs; o != nil {
		o.SpanBegin(span.StageProto, "udp", int(u.Dom().ID)+u.env.Sys.TraceBase, int64(m.Len()))
		defer o.SpanEnd()
	}
	u.env.Sys.Sink().Charge(u.env.Sys.Cost.UDPPerMsg)
	u.emitPkt(obs.EvPktSend, m.Len())
	var hdr [UDPHeaderBytes]byte
	binary.BigEndian.PutUint16(hdr[0:], local)
	binary.BigEndian.PutUint16(hdr[2:], remote)
	// The paper's UDP/IP were "slightly modified to support messages
	// larger than 64 KBytes": the 16-bit length field holds the length
	// modulo 2^16 and reassembly trusts IP's total, so we mirror that.
	binary.BigEndian.PutUint16(hdr[4:], uint16((m.Len()+UDPHeaderBytes)&0xFFFF))
	if u.Checksum {
		sum, err := u.checksumMsg(m)
		if err != nil {
			return err
		}
		binary.BigEndian.PutUint16(hdr[6:], sum)
	}
	u.Sent++
	out, err := u.ctx.Push(m, hdr[:])
	if err != nil {
		return err
	}
	return u.PushBelow(out)
}

// emitPkt traces a UDP packet event attributed to the protocol's domain.
func (u *UDP) emitPkt(kind obs.EventKind, bytes int) {
	if o := u.env.Sys.Obs; o != nil {
		o.Emit(kind, int(u.Dom().ID)+u.env.Sys.TraceBase, obs.NoTrack, 0, int64(bytes))
	}
}

// Deliver strips the header and demultiplexes on the destination port.
func (u *UDP) Deliver(m *aggregate.Msg) error {
	if o := u.env.Sys.Obs; o != nil {
		o.SpanBegin(span.StageProto, "udp", int(u.Dom().ID)+u.env.Sys.TraceBase, int64(m.Len()))
		defer o.SpanEnd()
	}
	u.env.Sys.Sink().Charge(u.env.Sys.Cost.UDPPerMsg)
	u.emitPkt(obs.EvPktRecv, m.Len())
	if m.Len() < UDPHeaderBytes {
		u.Dropped++
		return m.Free(u.Dom())
	}
	hdr, body, err := u.ctx.Pop(m, UDPHeaderBytes)
	if err != nil {
		return err
	}
	dst := binary.BigEndian.Uint16(hdr[2:])
	if u.Checksum {
		want := binary.BigEndian.Uint16(hdr[6:])
		got, err := u.checksumMsg(body)
		if err != nil {
			return err
		}
		if want != got {
			u.Dropped++
			return body.Free(u.Dom())
		}
	}
	above, ok := u.ports[dst]
	if !ok {
		u.Dropped++
		return body.Free(u.Dom())
	}
	u.Received++
	return above.Deliver(body)
}

// checksumMsg computes the 16-bit ones'-complement internet checksum of the
// message body. Beyond the page-touch costs of reading through the address
// space, the per-byte summing work is charged at ChecksumPerPage — one of
// the few data manipulations "applied to the entire data" (section 5.2).
func (u *UDP) checksumMsg(m *aggregate.Msg) (uint16, error) {
	d := u.Dom()
	cost := u.env.Sys.Cost
	pages := (m.Len() + machine.PageSize - 1) / machine.PageSize
	u.env.Sys.Sink().Charge(simtime.Duration(pages) * cost.ChecksumPerPage)
	data, err := m.ReadAll(d)
	if err != nil {
		return 0, err
	}
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum), nil
}
