package vm

import (
	"errors"
	"strings"
	"testing"

	"fbufs/internal/machine"
	"fbufs/internal/mem"
	"fbufs/internal/simtime"
)

func newSys() (*System, *simtime.Clock) {
	clk := &simtime.Clock{}
	sys := NewSystem(machine.DecStation5000(), 64, ClockSink{clk})
	return sys, clk
}

func TestMapReadWriteRoundTrip(t *testing.T) {
	sys, _ := newSys()
	as := sys.NewAddrSpace("a")
	fn, _ := sys.Mem.Alloc()
	va := VA(0x10000)
	as.MapOwned(va, fn, ReadWrite)
	msg := []byte("hello fbufs")
	if err := as.Write(va+5, msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if err := as.Read(va+5, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(msg) {
		t.Fatalf("read back %q", buf)
	}
}

func TestCrossPageAccess(t *testing.T) {
	sys, _ := newSys()
	as := sys.NewAddrSpace("a")
	va := VA(0x10000)
	for i := 0; i < 3; i++ {
		fn, _ := sys.Mem.Alloc()
		as.MapOwned(va+VA(i*machine.PageSize), fn, ReadWrite)
	}
	data := make([]byte, 2*machine.PageSize+100)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := as.Write(va+50, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := as.Read(va+50, buf); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if buf[i] != data[i] {
			t.Fatalf("byte %d: %d != %d", i, buf[i], data[i])
		}
	}
}

func TestSharedFrameIsSameStorage(t *testing.T) {
	// Two address spaces mapping one frame see each other's writes:
	// zero-copy is real.
	sys, _ := newSys()
	a := sys.NewAddrSpace("a")
	b := sys.NewAddrSpace("b")
	fn, _ := sys.Mem.Alloc()
	a.MapOwned(0x1000, fn, ReadWrite)
	b.Map(0x2000, fn, ProtRead) // different VA is fine at the vm layer
	if err := a.Write(0x1000, []byte("shared")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if err := b.Read(0x2000, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "shared" {
		t.Fatalf("b read %q", buf)
	}
}

func TestProtectionEnforced(t *testing.T) {
	sys, _ := newSys()
	as := sys.NewAddrSpace("a")
	fn, _ := sys.Mem.Alloc()
	as.MapOwned(0x1000, fn, ProtRead)
	err := as.Write(0x1000, []byte{1})
	var ae *AccessError
	if !errors.As(err, &ae) {
		t.Fatalf("write to read-only page: %v", err)
	}
	if !ae.Write {
		t.Fatal("AccessError should record a write")
	}
	if sys.Violations != 1 {
		t.Fatalf("violations %d", sys.Violations)
	}
	// Reads still work.
	if err := as.Read(0x1000, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestNoMappingFaults(t *testing.T) {
	sys, _ := newSys()
	as := sys.NewAddrSpace("a")
	err := as.Read(0x5000, make([]byte, 1))
	var ae *AccessError
	if !errors.As(err, &ae) {
		t.Fatalf("unmapped read: %v", err)
	}
	if !strings.Contains(ae.Error(), "no mapping") {
		t.Fatalf("cause: %v", ae)
	}
}

func TestSetProtRevokesAndRestores(t *testing.T) {
	sys, _ := newSys()
	as := sys.NewAddrSpace("a")
	fn, _ := sys.Mem.Alloc()
	as.MapOwned(0x1000, fn, ReadWrite)
	if !as.SetProt(0x1000, ProtRead) {
		t.Fatal("SetProt on mapped page failed")
	}
	if err := as.Write(0x1000, []byte{1}); err == nil {
		t.Fatal("write after downgrade succeeded")
	}
	as.SetProt(0x1000, ReadWrite)
	if err := as.Write(0x1000, []byte{1}); err != nil {
		t.Fatalf("write after restore: %v", err)
	}
	if as.SetProt(0xFF000, ProtRead) {
		t.Fatal("SetProt on unmapped page claimed success")
	}
}

func TestUnmapFreesFrame(t *testing.T) {
	sys, _ := newSys()
	as := sys.NewAddrSpace("a")
	fn, _ := sys.Mem.Alloc()
	as.MapOwned(0x1000, fn, ReadWrite)
	if !as.Unmap(0x1000) {
		t.Fatal("last unmap should free the frame")
	}
	if sys.Mem.Allocated() != 0 {
		t.Fatalf("%d frames leaked", sys.Mem.Allocated())
	}
	if as.Unmap(0x1000) {
		t.Fatal("double unmap claimed success")
	}
}

func TestCostAccounting(t *testing.T) {
	sys, clk := newSys()
	c := sys.Cost
	as := sys.NewAddrSpace("a")
	fn, _ := sys.Mem.Alloc()

	start := clk.Now()
	as.MapOwned(0x1000, fn, ReadWrite)
	if d := clk.Now() - start; d != c.PTEMap {
		t.Errorf("map charged %v, want %v", d, c.PTEMap)
	}

	start = clk.Now()
	if err := as.TouchWrite(0x1000, 1); err != nil {
		t.Fatal(err)
	}
	if d := clk.Now() - start; d != c.TLBMiss {
		t.Errorf("first touch charged %v, want one TLB miss %v", d, c.TLBMiss)
	}

	start = clk.Now()
	if err := as.TouchWrite(0x1000, 2); err != nil {
		t.Fatal(err)
	}
	if d := clk.Now() - start; d != 0 {
		t.Errorf("warm touch charged %v, want 0", d)
	}

	start = clk.Now()
	as.SetProt(0x1000, ProtRead)
	if d := clk.Now() - start; d != c.ProtChange {
		t.Errorf("prot change charged %v, want %v", d, c.ProtChange)
	}

	// Protection change invalidates the TLB entry: next touch misses.
	start = clk.Now()
	if _, err := as.TouchRead(0x1000); err != nil {
		t.Fatal(err)
	}
	if d := clk.Now() - start; d != c.TLBMiss {
		t.Errorf("post-shootdown touch charged %v, want %v", d, c.TLBMiss)
	}

	start = clk.Now()
	as.Unmap(0x1000)
	if d := clk.Now() - start; d != c.PTEUnmap {
		t.Errorf("unmap charged %v, want %v", d, c.PTEUnmap)
	}
}

func TestCOWSharedFrameCopiesOnWrite(t *testing.T) {
	sys, clk := newSys()
	a := sys.NewAddrSpace("a")
	b := sys.NewAddrSpace("b")
	fn, _ := sys.Mem.Alloc()
	a.MapOwned(0x1000, fn, ReadWrite)
	if err := a.Write(0x1000, []byte("original")); err != nil {
		t.Fatal(err)
	}
	b.Map(0x1000, fn, ProtRead)
	a.SetCOW(0x1000)
	b.SetCOW(0x1000)

	start := clk.Now()
	if err := a.Write(0x1000, []byte("modified")); err != nil {
		t.Fatalf("COW write: %v", err)
	}
	d := clk.Now() - start
	min := sys.Cost.FaultTrap + sys.Cost.PageCopy
	if d < min {
		t.Errorf("COW write charged %v, want at least %v", d, min)
	}

	// b must still see the original.
	buf := make([]byte, 8)
	if err := b.Read(0x1000, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "original" {
		t.Fatalf("COW leaked write to sharer: %q", buf)
	}
	if sys.Mem.Allocated() != 2 {
		t.Fatalf("expected a private copy, %d frames allocated", sys.Mem.Allocated())
	}
}

func TestCOWSoleOwnerSkipsCopy(t *testing.T) {
	sys, _ := newSys()
	a := sys.NewAddrSpace("a")
	fn, _ := sys.Mem.Alloc()
	a.MapOwned(0x1000, fn, ReadWrite)
	a.SetCOW(0x1000)
	if err := a.Write(0x1000, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if sys.Mem.Allocated() != 1 {
		t.Fatalf("sole-owner COW write allocated a copy: %d frames", sys.Mem.Allocated())
	}
}

func TestRegionFaultHandler(t *testing.T) {
	sys, _ := newSys()
	as := sys.NewAddrSpace("a")
	faults := 0
	r := &Region{
		Start: 0x100000,
		Pages: 4,
		Name:  "lazy",
		Handler: func(as *AddrSpace, va VA, write bool) error {
			faults++
			fn, err := sys.Mem.Alloc()
			if err != nil {
				return err
			}
			as.MapOwned(va.PageBase(), fn, ReadWrite)
			return nil
		},
	}
	if err := as.AddRegion(r); err != nil {
		t.Fatal(err)
	}
	if err := as.Write(0x100000+100, []byte("lazily")); err != nil {
		t.Fatal(err)
	}
	if faults != 1 {
		t.Fatalf("faults %d", faults)
	}
	// Second access: no fault.
	if err := as.Write(0x100000+200, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	if faults != 1 {
		t.Fatalf("warm access faulted: %d", faults)
	}
}

func TestRegionHandlerDeniesWrite(t *testing.T) {
	sys, _ := newSys()
	as := sys.NewAddrSpace("a")
	r := &Region{
		Start: 0x100000,
		Pages: 1,
		Name:  "deny",
		Handler: func(as *AddrSpace, va VA, write bool) error {
			return errors.New("denied by policy")
		},
	}
	as.AddRegion(r)
	err := as.Write(0x100000, []byte{1})
	var ae *AccessError
	if !errors.As(err, &ae) || !strings.Contains(ae.Cause.Error(), "denied by policy") {
		t.Fatalf("got %v", err)
	}
}

func TestRegionOverlapRejected(t *testing.T) {
	sys, _ := newSys()
	as := sys.NewAddrSpace("a")
	if err := as.AddRegion(&Region{Start: 0x1000, Pages: 4, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := as.AddRegion(&Region{Start: 0x3000, Pages: 4, Name: "b"}); err == nil {
		t.Fatal("overlap accepted")
	}
	if err := as.AddRegion(&Region{Start: 0x5000, Pages: 1, Name: "c"}); err != nil {
		t.Fatalf("adjacent region rejected: %v", err)
	}
	if r := as.FindRegion(0x3000); r == nil || r.Name != "a" {
		t.Fatalf("FindRegion(0x3000) = %v", r)
	}
	if r := as.FindRegion(0x9000); r != nil {
		t.Fatalf("FindRegion outside = %v", r)
	}
}

func TestAllocVAReuse(t *testing.T) {
	sys, _ := newSys()
	as := sys.NewAddrSpace("a")
	va1, err := as.AllocVA(4)
	if err != nil {
		t.Fatal(err)
	}
	va2, _ := as.AllocVA(4)
	if va1 == va2 {
		t.Fatal("overlapping VA allocations")
	}
	as.FreeVA(va1, 4)
	va3, _ := as.AllocVA(4)
	if va3 != va1 {
		t.Fatalf("freed range not reused: %#x vs %#x", uint64(va3), uint64(va1))
	}
}

func TestDestroyReleasesEverything(t *testing.T) {
	sys, _ := newSys()
	as := sys.NewAddrSpace("a")
	for i := 0; i < 5; i++ {
		fn, _ := sys.Mem.Alloc()
		as.MapOwned(VA(0x1000+i*machine.PageSize), fn, ReadWrite)
	}
	as.Destroy()
	if sys.Mem.Allocated() != 0 {
		t.Fatalf("%d frames leaked after Destroy", sys.Mem.Allocated())
	}
	if as.MappedPages() != 0 {
		t.Fatalf("%d PTEs survive Destroy", as.MappedPages())
	}
}

func TestMapReplacementReleasesOldFrame(t *testing.T) {
	sys, _ := newSys()
	as := sys.NewAddrSpace("a")
	f1, _ := sys.Mem.Alloc()
	f2, _ := sys.Mem.Alloc()
	as.MapOwned(0x1000, f1, ReadWrite)
	as.MapOwned(0x1000, f2, ReadWrite)
	if sys.Mem.Allocated() != 1 {
		t.Fatalf("old frame leaked: %d allocated", sys.Mem.Allocated())
	}
	if pte, _ := as.Lookup(0x1000); pte.Frame != f2 {
		t.Fatalf("mapping points at %d", pte.Frame)
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	m.Charge(100)
	m.Charge(50)
	if m.Total != 150 {
		t.Fatalf("meter %v", m.Total)
	}
	if m.Take() != 150 || m.Total != 0 {
		t.Fatal("Take did not drain")
	}
}

func TestFrameExhaustionSurfacesInCOW(t *testing.T) {
	sys, _ := newSys()
	// Use up all frames.
	var last mem.FrameNum
	for {
		fn, err := sys.Mem.Alloc()
		if err != nil {
			break
		}
		last = fn
	}
	a := sys.NewAddrSpace("a")
	b := sys.NewAddrSpace("b")
	a.MapOwned(0x1000, last, ReadWrite)
	b.Map(0x1000, last, ProtRead)
	a.SetCOW(0x1000)
	if err := a.Write(0x1000, []byte{1}); err == nil {
		t.Fatal("COW with no free frames should fail")
	}
}

func TestUnmapSync(t *testing.T) {
	sys, clk := newSys()
	as := sys.NewAddrSpace("a")
	fn, _ := sys.Mem.Alloc()
	as.MapOwned(0x1000, fn, ReadWrite)
	if _, err := as.TouchRead(0x1000); err != nil {
		t.Fatal(err)
	}
	start := clk.Now()
	if !as.UnmapSync(0x1000) {
		t.Fatal("UnmapSync should free the sole frame")
	}
	// Charged the full consistency cost, not the lazy unmap cost.
	if d := clk.Now() - start; d != sys.Cost.ProtChange {
		t.Fatalf("UnmapSync charged %v, want %v", d, sys.Cost.ProtChange)
	}
	if as.UnmapSync(0x1000) {
		t.Fatal("double UnmapSync claimed success")
	}
	if _, err := as.TouchRead(0x1000); err == nil {
		t.Fatal("read after UnmapSync succeeded")
	}
	if sys.Mem.Allocated() != 0 {
		t.Fatal("frame leaked")
	}
}

func TestAllocVAExhaustion(t *testing.T) {
	sys, _ := newSys()
	as := sys.NewAddrSpace("a")
	// Request a range bigger than the entire private area.
	pages := int((PrivateLimit-PrivateBase)/machine.PageSize) + 1
	if _, err := as.AllocVA(pages); err == nil {
		t.Fatal("oversized VA allocation accepted")
	}
}

func TestRemoveRegion(t *testing.T) {
	sys, _ := newSys()
	as := sys.NewAddrSpace("a")
	r := &Region{Start: 0x1000, Pages: 2, Name: "r"}
	if err := as.AddRegion(r); err != nil {
		t.Fatal(err)
	}
	if len(as.Regions()) != 1 {
		t.Fatal("region not added")
	}
	as.RemoveRegion(r)
	if as.FindRegion(0x1000) != nil {
		t.Fatal("region survived removal")
	}
	as.RemoveRegion(r) // idempotent
}

func TestProtString(t *testing.T) {
	cases := map[Prot]string{
		ProtNone:  "---",
		ProtRead:  "r--",
		ProtWrite: "-w-",
		ReadWrite: "rw-",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d -> %q, want %q", p, p.String(), want)
		}
	}
	if Prot(9).String() == "" {
		t.Error("unknown prot string empty")
	}
}
