// Package vm implements the simulated two-level virtual memory system that
// the fbuf mechanism is built on: per-address-space page tables beneath a
// machine-independent region map, protection bits enforced on every
// simulated access, an ASID-tagged software-refilled TLB, and page-fault
// handling with pluggable per-region handlers (used for copy-on-write, lazy
// fbuf frame fill, and the volatile-fbuf read-to-empty-leaf rule).
//
// Every mapping, protection, and TLB operation charges its calibrated cost
// (machine.CostTable) to the system's cost sink, mirroring the accounting
// the paper does on the DecStation: "the time it takes to switch to
// supervisor mode, acquire necessary locks to VM data structures, change VM
// mappings perhaps at several levels for each page, perform TLB/cache
// consistency actions..." (section 2.2.1).
package vm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"fbufs/internal/faults"
	"fbufs/internal/machine"
	"fbufs/internal/mem"
	"fbufs/internal/obs"
	"fbufs/internal/obs/span"
	"fbufs/internal/simtime"
)

// VA is a virtual address.
type VA uint64

// VPN returns the virtual page number of the address.
func (a VA) VPN() uint64 { return uint64(a) >> machine.PageShift }

// PageOffset returns the offset of the address within its page.
func (a VA) PageOffset() int { return int(uint64(a) & (machine.PageSize - 1)) }

// PageBase returns the address of the start of the page containing a.
func (a VA) PageBase() VA { return a &^ VA(machine.PageSize-1) }

// Prot is a page protection.
type Prot uint8

// Protection bits. Write does not imply Read; use ReadWrite for both.
const (
	ProtNone  Prot = 0
	ProtRead  Prot = 1 << 0
	ProtWrite Prot = 1 << 1

	ReadWrite = ProtRead | ProtWrite
)

func (p Prot) String() string {
	switch p {
	case ProtNone:
		return "---"
	case ProtRead:
		return "r--"
	case ProtWrite:
		return "-w-"
	case ReadWrite:
		return "rw-"
	}
	return fmt.Sprintf("Prot(%d)", uint8(p))
}

// CostSink receives simulated-time charges. *simtime.Clock satisfies it via
// the adapter in package netsim; single-host experiments use ClockSink.
type CostSink interface {
	Charge(d simtime.Duration)
}

// ClockSink adapts a simtime.Clock to CostSink.
type ClockSink struct{ Clock *simtime.Clock }

// Charge advances the underlying clock.
func (s ClockSink) Charge(d simtime.Duration) { s.Clock.Advance(d) }

// Meter is a CostSink that accumulates charges; the event-driven experiments
// meter a logical task and then occupy the host CPU for the accumulated
// duration. A Meter belongs to one logical task at a time and is not safe
// for concurrent use — the event-driven harness is single-threaded by
// design (concurrent workers use ClockSink over the atomic Clock instead).
type Meter struct{ Total simtime.Duration }

// Charge accumulates d.
func (m *Meter) Charge(d simtime.Duration) { m.Total += d }

// Take returns the accumulated total and resets the meter.
func (m *Meter) Take() simtime.Duration {
	t := m.Total
	m.Total = 0
	return t
}

// AccessError reports a memory access violation in a simulated domain: a
// protection fault with no handler willing to resolve it. It models the
// "memory access violation exception" the paper specifies for illegal
// writes to fbufs.
type AccessError struct {
	ASID  int
	VA    VA
	Write bool
	Cause error
}

func (e *AccessError) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("vm: access violation: %s of %#x in asid %d: %s", op, uint64(e.VA), e.ASID, e.Cause)
}

// Unwrap exposes the fault's underlying cause so callers can classify it
// with errors.Is — in particular an exhausted frame pool during lazy
// refill surfaces as mem.ErrOutOfMemory and adaptive callers degrade to
// the copy path instead of treating it as a protection violation.
func (e *AccessError) Unwrap() error { return e.Cause }

// ErrNoMapping is wrapped into AccessError causes.
var ErrNoMapping = errors.New("no mapping")

// FaultHandler is invoked on a page fault within its region, after the
// FaultTrap cost has been charged. It should resolve the fault (typically by
// establishing or upgrading a mapping) and return nil, after which the
// access retries once; returning an error converts the fault into an
// AccessError delivered to the simulated program.
type FaultHandler func(as *AddrSpace, va VA, write bool) error

// Region is a machine-independent map entry: a contiguous VA range with a
// name and an optional fault handler.
type Region struct {
	Start   VA
	Pages   int
	Name    string
	Handler FaultHandler
}

// End returns the first address past the region.
func (r *Region) End() VA { return r.Start + VA(r.Pages*machine.PageSize) }

// Contains reports whether va lies inside the region.
func (r *Region) Contains(va VA) bool { return va >= r.Start && va < r.End() }

// PTE is a machine-dependent page table entry.
type PTE struct {
	Frame mem.FrameNum
	Prot  Prot
	// COW marks the page copy-on-write: a write fault should copy the
	// frame if it is shared rather than fail.
	COW bool
}

// System bundles the simulated memory hardware shared by all address spaces
// on one host: the frame pool, the TLB, the cost table, and the cost sink.
type System struct {
	Cost *machine.CostTable
	Mem  *mem.PhysMem
	TLB  *machine.TLB

	// Obs, when non-nil, receives trace events and metrics from every
	// layer on this host. nil (the default) disables observability with a
	// single pointer check per hook.
	Obs *obs.Observer
	// TraceBase is added to domain and path IDs in trace events so
	// multi-host simulations sharing one observer get disjoint trace
	// actors (netsim gives host B base 100).
	TraceBase int

	// FaultPlane, when non-nil, injects synthetic resource failures
	// (frame-pool exhaustion via AllocFrame, transient mapping-build
	// retries in Map/MapOwned). nil disables injection with a single
	// pointer check per hook, same discipline as Obs.
	FaultPlane *faults.Plane

	sink     CostSink
	nextASID int

	// Stats. Updated with atomic adds so concurrent workers can share one
	// System; read them directly only at quiescence (between operations),
	// as the rest of the repo's counters.
	Faults     uint64
	Violations uint64
	// MapRetries counts injected transient mapping-build failures that
	// were resolved by retrying the PTE install (extra PTEMap charged).
	MapRetries uint64
}

// NewSystem creates a VM system with the given frame pool size.
func NewSystem(cost *machine.CostTable, frames int, sink CostSink) *System {
	return &System{
		Cost: cost,
		Mem:  mem.New(frames),
		TLB:  machine.NewTLB(0),
		sink: sink,
	}
}

// PublishMetrics writes the VM and TLB counters into the registry. The
// struct fields remain the source of truth; Set overwrites so repeated
// publishing never double-counts.
func (s *System) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("vm.faults").Set(s.Faults)
	reg.Counter("vm.violations").Set(s.Violations)
	reg.Counter("vm.map_retries").Set(s.MapRetries)
	hits, misses := s.TLB.Stats()
	reg.Counter("tlb.hits").Set(hits)
	reg.Counter("tlb.misses").Set(misses)
}

// SetSink replaces the cost sink (the event-driven harness swaps in a Meter
// around each logical task).
func (s *System) SetSink(sink CostSink) { s.sink = sink }

// Sink returns the current cost sink.
func (s *System) Sink() CostSink { return s.sink }

func (s *System) charge(d simtime.Duration) {
	if s.sink != nil {
		s.sink.Charge(d)
	}
}

// AllocFrame allocates a physical frame, consulting the fault plane first:
// an injected faults.FrameAlloc failure returns mem.ErrOutOfMemory without
// touching the pool, simulating exhaustion the caller must degrade around.
// All allocation paths that a simulated program can drive (lazy fbuf
// refill, fbuf populate, COW resolution) go through here; setup-time
// allocations that model pre-established state call Mem.Alloc directly.
func (s *System) AllocFrame() (mem.FrameNum, error) {
	if s.FaultPlane.Should(faults.FrameAlloc) {
		return mem.NoFrame, mem.ErrOutOfMemory
	}
	return s.Mem.Alloc()
}

// AddrSpace is one protection domain's address space: a region list over a
// page table.
//
// The page table, VA allocator, and region list are guarded by mu so
// concurrent workers can map, unmap, and translate through one space.
// Translate releases mu before invoking a region fault handler (handlers
// re-enter Map), which is also what pins the documented lock order: any
// facility-level lock (core's path/chunk/fbuf locks) is acquired *before*
// mu, never inside it.
type AddrSpace struct {
	Sys  *System
	ASID int
	Name string
	// Owner is the owning domain's ID for trace attribution, or -1 when
	// the space belongs to no domain (package domain sets it).
	Owner int

	mu      sync.Mutex
	regions []*Region // sorted by Start
	pt      map[uint64]PTE

	// Private-VA bump allocator with exact-size free lists.
	nextVA  VA
	freeVAs map[int][]VA // pages -> reusable starts
	vaLimit VA
}

// Private address-space layout: per-domain private allocations live in
// [PrivateBase, PrivateLimit). The globally shared fbuf region is above
// this; its layout is owned by package core.
const (
	PrivateBase  VA = 0x0000_0010_0000
	PrivateLimit VA = 0x0000_4000_0000
)

// NewAddrSpace creates an address space in the system.
func (s *System) NewAddrSpace(name string) *AddrSpace {
	s.nextASID++
	return &AddrSpace{
		Sys:     s,
		ASID:    s.nextASID,
		Name:    name,
		Owner:   -1,
		pt:      make(map[uint64]PTE),
		nextVA:  PrivateBase,
		freeVAs: make(map[int][]VA),
		vaLimit: PrivateLimit,
	}
}

// --- Region (machine-independent map) management ---

// AddRegion inserts a region. Regions may not overlap.
func (as *AddrSpace) AddRegion(r *Region) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	i := sort.Search(len(as.regions), func(i int) bool { return as.regions[i].Start >= r.Start })
	if i > 0 && as.regions[i-1].End() > r.Start {
		return fmt.Errorf("vm: region %q overlaps %q", r.Name, as.regions[i-1].Name)
	}
	if i < len(as.regions) && r.End() > as.regions[i].Start {
		return fmt.Errorf("vm: region %q overlaps %q", r.Name, as.regions[i].Name)
	}
	as.regions = append(as.regions, nil)
	copy(as.regions[i+1:], as.regions[i:])
	as.regions[i] = r
	return nil
}

// RemoveRegion removes a region previously added.
func (as *AddrSpace) RemoveRegion(r *Region) {
	as.mu.Lock()
	defer as.mu.Unlock()
	for i, e := range as.regions {
		if e == r {
			as.regions = append(as.regions[:i], as.regions[i+1:]...)
			return
		}
	}
}

// FindRegion locates the region containing va, or nil.
func (as *AddrSpace) FindRegion(va VA) *Region {
	as.mu.Lock()
	defer as.mu.Unlock()
	i := sort.Search(len(as.regions), func(i int) bool { return as.regions[i].End() > va })
	if i < len(as.regions) && as.regions[i].Contains(va) {
		return as.regions[i]
	}
	return nil
}

// Regions returns a copy of the region list (read-only use).
func (as *AddrSpace) Regions() []*Region {
	as.mu.Lock()
	defer as.mu.Unlock()
	out := make([]*Region, len(as.regions))
	copy(out, as.regions)
	return out
}

// --- VA allocation (private ranges) ---

// AllocVA reserves a private virtual address range of npages pages,
// charging the per-fbuf VA allocation cost.
func (as *AddrSpace) AllocVA(npages int) (VA, error) {
	as.Sys.charge(as.Sys.Cost.VAAlloc)
	as.mu.Lock()
	defer as.mu.Unlock()
	if lst := as.freeVAs[npages]; len(lst) > 0 {
		va := lst[len(lst)-1]
		as.freeVAs[npages] = lst[:len(lst)-1]
		return va, nil
	}
	need := VA(npages * machine.PageSize)
	if as.nextVA+need > as.vaLimit {
		return 0, fmt.Errorf("vm: %s: private VA space exhausted", as.Name)
	}
	va := as.nextVA
	as.nextVA += need
	return va, nil
}

// FreeVA releases a range obtained from AllocVA.
func (as *AddrSpace) FreeVA(va VA, npages int) {
	as.Sys.charge(as.Sys.Cost.VAFree)
	as.mu.Lock()
	as.freeVAs[npages] = append(as.freeVAs[npages], va)
	as.mu.Unlock()
}

// --- Page table operations (each charges its calibrated cost) ---

// Map establishes a mapping from the page containing va to frame with the
// given protection, taking a reference on the frame. Adding a mapping needs
// no TLB shootdown.
func (as *AddrSpace) Map(va VA, frame mem.FrameNum, prot Prot) {
	as.Sys.charge(as.Sys.Cost.PTEMap)
	as.mapRetry()
	as.mu.Lock()
	defer as.mu.Unlock()
	vpn := va.VPN()
	if old, ok := as.pt[vpn]; ok {
		// Replacing a mapping: release the old frame.
		as.Sys.Mem.DecRef(old.Frame)
		as.Sys.TLB.Invalidate(as.ASID, vpn)
	}
	as.Sys.Mem.AddRef(frame)
	as.pt[vpn] = PTE{Frame: frame, Prot: prot}
}

// MapOwned is Map for a frame the caller just allocated (which already
// carries its initial reference); no additional reference is taken.
func (as *AddrSpace) MapOwned(va VA, frame mem.FrameNum, prot Prot) {
	as.Sys.charge(as.Sys.Cost.PTEMap)
	as.mapRetry()
	as.mu.Lock()
	defer as.mu.Unlock()
	vpn := va.VPN()
	if old, ok := as.pt[vpn]; ok {
		as.Sys.Mem.DecRef(old.Frame)
		as.Sys.TLB.Invalidate(as.ASID, vpn)
	}
	as.pt[vpn] = PTE{Frame: frame, Prot: prot}
}

// mapRetry consults the fault plane for a transient mapping-construction
// failure: the kernel loses a race on its VM locks and reinstalls the PTE,
// so the only observable effect is one extra PTEMap charge and a counter.
// Mapping faults are always recoverable by retry — they never surface as
// errors — which is what makes Map's void signature safe to keep.
func (as *AddrSpace) mapRetry() {
	if as.Sys.FaultPlane.Should(faults.MapBuild) {
		atomic.AddUint64(&as.Sys.MapRetries, 1)
		as.Sys.charge(as.Sys.Cost.PTEMap)
	}
}

// Unmap removes the mapping for the page containing va, dropping the frame
// reference. Invalidation uses the lazy ASID-flush discipline (cheaper than
// a protection downgrade). It reports whether the frame was freed.
func (as *AddrSpace) Unmap(va VA) bool {
	as.mu.Lock()
	defer as.mu.Unlock()
	vpn := va.VPN()
	pte, ok := as.pt[vpn]
	if !ok {
		return false
	}
	as.Sys.charge(as.Sys.Cost.PTEUnmap)
	delete(as.pt, vpn)
	as.Sys.TLB.Invalidate(as.ASID, vpn)
	return as.Sys.Mem.DecRef(pte.Frame)
}

// UnmapSync removes the mapping for the page containing va with immediate
// TLB/cache consistency (the semantics a move-style remap facility needs:
// the sender must lose access before the receiver proceeds). It charges the
// full protection-change cost rather than the lazy unmap cost. It reports
// whether the frame was freed.
func (as *AddrSpace) UnmapSync(va VA) bool {
	as.mu.Lock()
	defer as.mu.Unlock()
	vpn := va.VPN()
	pte, ok := as.pt[vpn]
	if !ok {
		return false
	}
	as.Sys.charge(as.Sys.Cost.ProtChange)
	delete(as.pt, vpn)
	as.Sys.TLB.Invalidate(as.ASID, vpn)
	return as.Sys.Mem.DecRef(pte.Frame)
}

// SetProt changes the protection on a mapped page, with full TLB/cache
// consistency (the expensive operation at the center of the volatile-fbuf
// tradeoff). It reports whether the page was mapped.
func (as *AddrSpace) SetProt(va VA, prot Prot) bool {
	as.mu.Lock()
	defer as.mu.Unlock()
	vpn := va.VPN()
	pte, ok := as.pt[vpn]
	if !ok {
		return false
	}
	as.Sys.charge(as.Sys.Cost.ProtChange)
	pte.Prot = prot
	as.pt[vpn] = pte
	as.Sys.TLB.Invalidate(as.ASID, vpn)
	return true
}

// SetCOW marks a mapped page copy-on-write with at most read permission.
// This is the cheap high-level-map-only marking of Mach's lazy COW; the
// cost charged is COWMark, and the page's physical protection change is
// deferred to fault time.
func (as *AddrSpace) SetCOW(va VA) bool {
	as.mu.Lock()
	defer as.mu.Unlock()
	vpn := va.VPN()
	pte, ok := as.pt[vpn]
	if !ok {
		return false
	}
	as.Sys.charge(as.Sys.Cost.COWMark)
	pte.COW = true
	pte.Prot &^= ProtWrite
	as.pt[vpn] = pte
	// Lazy: no TLB shootdown here; the stale-TLB window is modelled by
	// the write fault that Mach takes on next write (see Translate).
	return true
}

// traceActor maps the address space to its trace actor id (owning domain
// plus the host trace base), or obs.NoActor for ownerless spaces.
func (as *AddrSpace) traceActor() int {
	if as.Owner < 0 {
		return obs.NoActor
	}
	return as.Owner + as.Sys.TraceBase
}

// Lookup returns the PTE for the page containing va.
func (as *AddrSpace) Lookup(va VA) (PTE, bool) {
	as.mu.Lock()
	defer as.mu.Unlock()
	pte, ok := as.pt[va.VPN()]
	return pte, ok
}

// MappedPages returns the number of valid PTEs (tests, leak checks).
func (as *AddrSpace) MappedPages() int {
	as.mu.Lock()
	defer as.mu.Unlock()
	return len(as.pt)
}

// --- Simulated access path ---

// Translate resolves va for an access of the given kind, charging TLB-miss
// and fault costs, invoking fault handlers as needed. On success it returns
// the frame.
func (as *AddrSpace) Translate(va VA, write bool) (mem.FrameNum, error) {
	sys := as.Sys
	if sys.TLB.Touch(as.ASID, va.VPN()) {
		sys.charge(sys.Cost.TLBMiss)
		if sys.Obs != nil {
			sys.Obs.Emit(obs.EvTLBMiss, as.traceActor(), obs.NoTrack, 0, int64(va.VPN()))
		}
	}
	for attempt := 0; ; attempt++ {
		// Read the PTE under mu, but release it before fault handling:
		// region handlers (the fbuf lazy-refill path) re-enter Map, and
		// facility locks rank above mu in the documented lock order.
		as.mu.Lock()
		pte, ok := as.pt[va.VPN()]
		as.mu.Unlock()
		need := ProtRead
		if write {
			need = ProtWrite
		}
		if ok && pte.Prot&need != 0 {
			return pte.Frame, nil
		}
		// Fault path; on a nil return the translation is retried.
		if err := as.fault(va, write, pte, ok, attempt); err != nil {
			return mem.NoFrame, err
		}
	}
}

// fault handles one failed translation attempt: trap charge, COW
// resolution, region handlers. A nil return means the fault was handled
// and the translation should be retried.
func (as *AddrSpace) fault(va VA, write bool, pte PTE, ok bool, attempt int) error {
	sys := as.Sys
	atomic.AddUint64(&sys.Faults, 1)
	if sys.Obs != nil {
		sys.Obs.SpanBegin(span.StageFault, "vm", as.traceActor(), int64(va.VPN()))
		defer sys.Obs.SpanEnd()
	}
	sys.charge(sys.Cost.FaultTrap)
	if sys.Obs != nil {
		sys.Obs.Emit(obs.EvPageFault, as.traceActor(), obs.NoTrack, 0, int64(va.VPN()))
	}
	if ok && pte.COW && write {
		return as.resolveCOW(va, pte)
	}
	if attempt == 0 {
		if r := as.FindRegion(va); r != nil && r.Handler != nil {
			if err := r.Handler(as, va, write); err == nil {
				return nil
			} else {
				atomic.AddUint64(&sys.Violations, 1)
				return &AccessError{ASID: as.ASID, VA: va, Write: write, Cause: err}
			}
		}
	}
	atomic.AddUint64(&sys.Violations, 1)
	cause := ErrNoMapping
	if ok {
		cause = fmt.Errorf("protection %v denies access", pte.Prot)
	}
	return &AccessError{ASID: as.ASID, VA: va, Write: write, Cause: cause}
}

// resolveCOW handles a write fault on a COW page: if the frame is shared,
// allocate a private copy (charging frame-alloc and page-copy costs);
// either way restore write permission and clear COW.
func (as *AddrSpace) resolveCOW(va VA, pte PTE) error {
	sys := as.Sys
	if sys.Mem.RefCount(pte.Frame) > 1 {
		nfn, err := sys.AllocFrame()
		if err != nil {
			return err
		}
		sys.charge(sys.Cost.FrameAlloc + sys.Cost.PageCopy)
		sys.Mem.Copy(nfn, pte.Frame)
		sys.Mem.DecRef(pte.Frame)
		pte.Frame = nfn
	}
	sys.charge(sys.Cost.PTEMap) // PTE fix-up
	pte.COW = false
	pte.Prot |= ProtWrite | ProtRead
	as.mu.Lock()
	as.pt[va.VPN()] = pte
	as.mu.Unlock()
	sys.TLB.Invalidate(as.ASID, va.VPN())
	return nil
}

// Write stores data at va, splitting at page boundaries, enforcing
// protections, and charging access costs.
func (as *AddrSpace) Write(va VA, data []byte) error {
	for len(data) > 0 {
		fn, err := as.Translate(va, true)
		if err != nil {
			return err
		}
		off := va.PageOffset()
		n := machine.PageSize - off
		if n > len(data) {
			n = len(data)
		}
		as.Sys.Mem.Write(fn, off, data[:n])
		data = data[n:]
		va += VA(n)
	}
	return nil
}

// Read loads len(buf) bytes from va into buf, splitting at page boundaries.
func (as *AddrSpace) Read(va VA, buf []byte) error {
	for len(buf) > 0 {
		fn, err := as.Translate(va, false)
		if err != nil {
			return err
		}
		off := va.PageOffset()
		n := machine.PageSize - off
		if n > len(buf) {
			n = len(buf)
		}
		as.Sys.Mem.Read(fn, off, buf[:n])
		buf = buf[n:]
		va += VA(n)
	}
	return nil
}

// TouchWrite writes one word at va (the test-protocol access pattern:
// "writes one word in each VM page").
func (as *AddrSpace) TouchWrite(va VA, word uint32) error {
	var b [4]byte
	b[0] = byte(word)
	b[1] = byte(word >> 8)
	b[2] = byte(word >> 16)
	b[3] = byte(word >> 24)
	return as.Write(va, b[:])
}

// TouchRead reads one word at va.
func (as *AddrSpace) TouchRead(va VA) (uint32, error) {
	var b [4]byte
	if err := as.Read(va, b[:]); err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// Destroy tears down the address space: all mappings are removed (frames
// released) and the TLB purged of its ASID. Used for domain termination.
func (as *AddrSpace) Destroy() {
	as.mu.Lock()
	for vpn, pte := range as.pt {
		as.Sys.charge(as.Sys.Cost.PTEUnmap)
		as.Sys.Mem.DecRef(pte.Frame)
		delete(as.pt, vpn)
	}
	as.regions = nil
	as.mu.Unlock()
	as.Sys.TLB.InvalidateASID(as.ASID)
}
