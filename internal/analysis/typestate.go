package analysis

// The fbuf lifecycle as a typestate automaton. The states and transitions
// mirror the executable reference model in internal/conformance — the
// cross-check test there (crosscheck_test.go) asserts every lifecycle
// rule of the model either appears in this table's Rule column or carries
// a documented exclusion, so the static and dynamic oracles cannot drift
// apart silently.
//
// The automaton is deliberately small: states are what the *holder of a
// reference* may assume about an fbuf, not the buffer's global MMU state.
// Transfer uses copy semantics (paper §2.1.3): the sender keeps its
// reference and must still Free it, so Transferred is a live state from
// which Free and further Transfers (multicast) are legal — only writes
// are revoked (§2.1.2 immutability).

// LifeState is one typestate of a tracked fbuf value. States are bits so
// the may-analysis can hold a set per value and the tables below can
// name several source states at once.
type LifeState uint8

const (
	LSAllocated   LifeState = 1 << iota // allocated, not yet written
	LSWritten                           // originator data written
	LSTransferred                       // sent to another domain; immutable
	LSSecured                           // protection raised by a receiver
	LSFreed                             // reference dropped
)

func (s LifeState) String() string {
	switch s {
	case LSAllocated:
		return "allocated"
	case LSWritten:
		return "written"
	case LSTransferred:
		return "transferred"
	case LSSecured:
		return "secured"
	case LSFreed:
		return "freed"
	}
	return "?"
}

// LifeEvent is an operation applied to a tracked value.
type LifeEvent uint8

const (
	EvAlloc LifeEvent = iota
	EvWrite
	EvRead
	EvTransfer
	EvSecure
	EvFree
	EvHandoff // value passed into a go statement
)

func (e LifeEvent) String() string {
	switch e {
	case EvAlloc:
		return "Alloc"
	case EvWrite:
		return "Write"
	case EvRead:
		return "Read"
	case EvTransfer:
		return "Transfer"
	case EvSecure:
		return "Secure"
	case EvFree:
		return "Free"
	case EvHandoff:
		return "goroutine handoff"
	}
	return "?"
}

// LifeTransition is one legal edge of the automaton.
type LifeTransition struct {
	From  LifeState // bitmask of admissible source states
	Event LifeEvent
	To    LifeState
	// Rule names the conformance-model lifecycle rule this edge encodes
	// (see conformance.LifecycleRules), Paper the section it comes from.
	Rule  string
	Paper string
}

// LifeViolation is one forbidden (state, event) pair the analyzer reports.
type LifeViolation struct {
	From  LifeState // bitmask of states in which Event is an error
	Event LifeEvent
	// Name is the diagnostic category suffix; Rule/Paper as above.
	Name  string
	Rule  string
	Paper string
}

// LifecycleTransitions is the legal-edge table.
var LifecycleTransitions = []LifeTransition{
	{LSFreed, EvAlloc, LSAllocated, "alloc-live", "3.2.1"},
	{LSAllocated | LSWritten, EvWrite, LSWritten, "write-originator-only", "2.1"},
	{LSAllocated | LSWritten, EvTransfer, LSTransferred, "eager-secure-on-transfer", "2.1.3"},
	// Copy semantics: the sender's reference stays live, so multicast
	// re-transfer and transfer of a secured buffer are both legal.
	{LSTransferred | LSSecured, EvTransfer, LSTransferred, "transfer-requires-live", "2.1.3"},
	{LSAllocated | LSWritten | LSTransferred | LSSecured, EvSecure, LSSecured, "secure-raises-protection", "3.2.4"},
	{LSAllocated | LSWritten | LSTransferred | LSSecured, EvFree, LSFreed, "free-requires-live", "3.2.1"},
	// Reads never change state; they are legal from every live state and,
	// deliberately, from Freed too: cached mappings persist after Free
	// (that's the point of caching), so a read-after-free is a data
	// staleness hazard the dynamic sanitizer owns, not a protection fault
	// the static checker can call a bug.
	{^LifeState(0), EvRead, 0, "", ""},
}

// LifecycleViolations is the forbidden-edge table; any (state, event)
// pair in neither table is unknown and the analyzer keeps the state
// unchanged without reporting (may-analysis: stay silent when unsure).
var LifecycleViolations = []LifeViolation{
	{LSTransferred, EvWrite, "use-after-transfer", "immutable-after-transfer", "2.1.2"},
	{LSSecured, EvWrite, "write-after-secure", "secure-raises-protection", "3.2.4"},
	{LSFreed, EvWrite, "use-after-free", "free-requires-live", "3.2.1"},
	{LSFreed, EvTransfer, "use-after-free", "transfer-requires-live", "2.1.3"},
	{LSFreed, EvSecure, "use-after-free", "secure-raises-protection", "3.2.4"},
	{LSFreed, EvFree, "double-free", "no-double-free", "3.2.1"},
	// Handing an fbuf the current domain still owns straight into a
	// goroutine is an undocumented ownership handoff: the receiver has no
	// transfer point to synchronize on (§2.1.3's explicit transfer
	// requirement). Transferred/Secured/Freed values may cross freely.
	{LSAllocated | LSWritten, EvHandoff, "goroutine-handoff", "transfer-requires-holder", "2.1.3"},
}

// lifeNext returns the post-state set for applying ev to state set in,
// plus the violation matched (nil when none). Unknown combinations pass
// through unchanged.
func lifeNext(in LifeState, ev LifeEvent) (LifeState, *LifeViolation) {
	var out LifeState
	var viol *LifeViolation
	for i := range LifecycleViolations {
		v := &LifecycleViolations[i]
		if v.Event == ev && in&v.From != 0 {
			viol = v
			break
		}
	}
	for i := range LifecycleTransitions {
		tr := &LifecycleTransitions[i]
		if tr.Event != ev {
			continue
		}
		if src := in & tr.From; src != 0 {
			if tr.To == 0 {
				out |= src // read: state-preserving
			} else {
				out |= tr.To
			}
			in &^= src
		}
	}
	// States with no edge for ev (including violating ones) stay put: a
	// may-analysis must not lose track of a value just because one path
	// misused it.
	out |= in
	return out, viol
}

// StaticLifecycleRules returns the set of conformance rule names the
// typestate tables encode, for the cross-check test.
func StaticLifecycleRules() map[string]bool {
	rules := map[string]bool{}
	for _, tr := range LifecycleTransitions {
		if tr.Rule != "" {
			rules[tr.Rule] = true
		}
	}
	for _, v := range LifecycleViolations {
		rules[v.Rule] = true
	}
	return rules
}
