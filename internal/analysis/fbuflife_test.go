package analysis

import (
	"go/token"
	"testing"
)

func TestFbufLife(t *testing.T) {
	RunTest(t, "testdata/src", FbufLife, "fbuflife")
}

// TestFbufLifeBeyondFbufcheck is the separating witness the interprocedural
// analysis exists for: the fbuflife corpus is full of lifecycle bugs
// (leaks, use-after-transfer, double frees, goroutine handoffs — all
// routed through helper functions), yet the function-local fbufcheck
// reports nothing on it. Every `// want` in that corpus is therefore a
// bug only fbuflife can see.
func TestFbufLifeBeyondFbufcheck(t *testing.T) {
	loader, err := NewLoader("", "testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	p, err := loader.Load("fbuflife")
	if err != nil {
		t.Fatal(err)
	}
	check, err := RunAnalyzers(loader.Fset, p.Files, p.Pkg, p.Info, []*Analyzer{FbufCheck})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range check {
		t.Errorf("fbufcheck unexpectedly fired on the fbuflife corpus: %s: %s",
			loader.Fset.Position(d.Pos), d.Message)
	}
	life, err := RunAnalyzers(loader.Fset, p.Files, p.Pkg, p.Info, []*Analyzer{FbufLife})
	if err != nil {
		t.Fatal(err)
	}
	if len(life) == 0 {
		t.Fatal("fbuflife found nothing on its own corpus — the separating test is vacuous")
	}
}

// TestDiagnosticDedupe pins the RunAnalyzers output contract the vettool
// and SARIF writers rely on: diagnostics arrive position-sorted, the order
// is independent of analyzer registration order, and two analyzers
// convicting the same position with the same words collapse to one line.
func TestDiagnosticDedupe(t *testing.T) {
	mkReporter := func(name string, pos token.Pos, msg string) *Analyzer {
		a := &Analyzer{Name: name, Doc: "test double"}
		a.Run = func(p *Pass) error {
			p.Reportf(pos, "%s", msg)
			return nil
		}
		return a
	}
	// Two analyzers agree at pos 10; a third reports earlier at pos 5.
	dup1 := mkReporter("aaa", 10, "same finding")
	dup2 := mkReporter("zzz", 10, "same finding")
	early := mkReporter("mmm", 5, "earlier finding")

	run := func(order []*Analyzer) []Diagnostic {
		diags, err := RunAnalyzers(token.NewFileSet(), nil, nil, nil, order)
		if err != nil {
			t.Fatal(err)
		}
		return diags
	}
	forward := run([]*Analyzer{dup1, dup2, early})
	backward := run([]*Analyzer{early, dup2, dup1})

	for name, got := range map[string][]Diagnostic{"forward": forward, "backward": backward} {
		if len(got) != 2 {
			t.Fatalf("%s order: got %d diagnostics, want 2 (dedupe): %v", name, len(got), got)
		}
		if got[0].Pos != 5 || got[1].Pos != 10 {
			t.Errorf("%s order: positions %d,%d, want 5,10 (sorted)", name, got[0].Pos, got[1].Pos)
		}
	}
	// Identical results regardless of registration order.
	for i := range forward {
		if forward[i] != backward[i] {
			t.Errorf("registration order changed output[%d]: %+v vs %+v",
				i, forward[i], backward[i])
		}
	}
}
