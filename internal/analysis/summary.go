package analysis

import (
	"go/ast"
	"go/types"
)

// Function summaries for the fbuflife interprocedural analysis. A summary
// records, per parameter slot, the lifecycle events a call applies to its
// fbuf-typed arguments, plus which results return freshly-allocated
// (caller-owned) handles. Two sources feed the table:
//
//   - builtin summaries for the facility API itself (Manager, DataPath,
//     Magazine, Fbuf, Msg methods), matched by package name + receiver
//     type so the testdata stubs exercise the same code paths as the
//     real fbufs/internal packages;
//   - computed summaries for same-package helpers, extracted bottom-up
//     by running the dataflow engine over each function in summary mode
//     and iterating to a fixpoint (so helpers-calling-helpers resolve).
//
// Cross-package non-facility calls have no summary; the engine treats
// their fbuf arguments as escaping (discharged, state preserved) — the
// conservative choice for a may-analysis that must stay quiet when
// unsure.

// valKind classifies a tracked value.
type valKind uint8

const (
	vkNone   valKind = iota
	vkSingle         // *core.Fbuf
	vkBatch          // []*core.Fbuf
	vkElem           // one element view of a batch
	vkMsg            // *aggregate.Msg
)

// effLevel says at which granularity a summary effect applies to a
// batch-typed slot.
type effLevel uint8

const (
	levSingle effLevel = iota // the value itself
	levElem                   // per-element (helper frees fs[i] / range)
	levBatch                  // whole batch at once (FreeBatch)
)

// sumEffect is one lifecycle event a callee applies to a caller value.
// Slot -1 is the method receiver; 0..n-1 are argument positions.
type sumEffect struct {
	slot    int
	ev      LifeEvent
	level   effLevel
	domSlot int  // arg slot supplying the acting domain; -1 unknown
	escape  bool // value escapes (stored, sent, captured, unknown call)
	dup     bool // DupRef: grants one extra Free in domSlot's domain
	rebind  bool // out-param repopulated with fresh handles (AllocBatch)
}

// freshKind says what a call result hands the caller.
type freshKind uint8

const (
	fkNone  freshKind = iota
	fkOwned           // freshly allocated, caller must discharge
	fkAlias           // fbuf-typed but aliasing existing storage: track
	// without an ownership obligation
)

// funcSummary is the interprocedural contract of one function.
type funcSummary struct {
	effects []sumEffect
	fresh   []freshKind // per result index
}

func (s *funcSummary) equal(o *funcSummary) bool {
	if o == nil || len(s.effects) != len(o.effects) || len(s.fresh) != len(o.fresh) {
		return false
	}
	for i := range s.effects {
		if s.effects[i] != o.effects[i] {
			return false
		}
	}
	for i := range s.fresh {
		if s.fresh[i] != o.fresh[i] {
			return false
		}
	}
	return true
}

// fbufKindOf classifies a type as a tracked fbuf handle kind.
func fbufKindOf(t types.Type) valKind {
	if t == nil {
		return vkNone
	}
	if sl, ok := t.Underlying().(*types.Slice); ok {
		if isNamedPtr(sl.Elem(), "core", "Fbuf") {
			return vkBatch
		}
		return vkNone
	}
	if isNamedPtr(t, "core", "Fbuf") {
		return vkSingle
	}
	if isNamedPtr(t, "aggregate", "Msg") {
		return vkMsg
	}
	return vkNone
}

// isNamedPtr reports whether t is *pkg.Name or pkg.Name (pkg matched by
// package name, not import path — the testdata-stub convention).
func isNamedPtr(t types.Type, pkgName, typeName string) bool {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Name() == pkgName && named.Obj().Name() == typeName
}

// builtinSummary returns the hand-written contract of a facility API
// call, or nil when fn is not part of the facility surface.
func builtinSummary(fn *types.Func) *funcSummary {
	name := fn.Name()
	switch {
	case recvTypeIs(fn, "core", "Manager"):
		switch name {
		case "Transfer":
			return &funcSummary{effects: []sumEffect{{slot: 0, ev: EvTransfer, domSlot: -1}}}
		case "Free":
			return &funcSummary{effects: []sumEffect{{slot: 0, ev: EvFree, domSlot: 1}}}
		case "FreeBatch":
			return &funcSummary{effects: []sumEffect{{slot: 0, ev: EvFree, level: levBatch, domSlot: 1}}}
		case "Secure":
			return &funcSummary{effects: []sumEffect{{slot: 0, ev: EvSecure, domSlot: -1}}}
		case "DupRef":
			return &funcSummary{effects: []sumEffect{{slot: 0, dup: true, domSlot: 1}}}
		case "AllocUncached", "AllocUncachedFill":
			return &funcSummary{fresh: []freshKind{fkOwned, fkNone}}
		}
	case recvTypeIs(fn, "core", "DataPath"):
		switch name {
		case "Alloc":
			return &funcSummary{fresh: []freshKind{fkOwned, fkNone}}
		case "AllocBatch":
			return &funcSummary{effects: []sumEffect{{slot: 0, rebind: true, domSlot: -1}}}
		}
	case recvTypeIs(fn, "core", "Magazine"):
		switch name {
		case "Alloc":
			return &funcSummary{fresh: []freshKind{fkOwned, fkNone}}
		case "Free":
			return &funcSummary{effects: []sumEffect{{slot: 0, ev: EvFree, domSlot: 1}}}
		}
	case recvTypeIs(fn, "core", "Fbuf"):
		switch name {
		case "Write", "TouchWrite", "DMAWrite":
			return &funcSummary{effects: []sumEffect{{slot: -1, ev: EvWrite, domSlot: -1}}}
		case "Read", "TouchRead", "DMARead", "Secured":
			return &funcSummary{effects: []sumEffect{{slot: -1, ev: EvRead, domSlot: -1}}}
		}
	case recvTypeIs(fn, "aggregate", "Msg"):
		switch name {
		case "Transfer":
			return &funcSummary{effects: []sumEffect{{slot: -1, ev: EvTransfer, domSlot: -1}}}
		case "Free":
			return &funcSummary{effects: []sumEffect{{slot: -1, ev: EvFree, domSlot: 0}}}
		case "Secure":
			return &funcSummary{effects: []sumEffect{{slot: -1, ev: EvSecure, domSlot: -1}}}
		case "Read", "ReadAll", "Touch":
			return &funcSummary{effects: []sumEffect{{slot: -1, ev: EvRead, domSlot: -1}}}
		}
	}
	return nil
}

// computeSummaries extracts contracts for every function declared in the
// package, iterating so that helpers calling helpers converge. Three
// rounds bound the fixpoint: effects flow one call level per round and
// helper chains deeper than that fall back to the conservative default.
func computeSummaries(pass *Pass) map[*types.Func]*funcSummary {
	type declFn struct {
		decl *ast.FuncDecl
		fn   *types.Func
	}
	var decls []declFn
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, declFn{fd, fn})
		}
	}
	sums := map[*types.Func]*funcSummary{}
	for round := 0; round < 3; round++ {
		changed := false
		for _, d := range decls {
			s := summarizeFunc(pass, d.decl, sums)
			if prev := sums[d.fn]; prev == nil || !prev.equal(s) {
				sums[d.fn] = s
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return sums
}
