package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// FbufLife is the interprocedural lifecycle analyzer: a forward
// may-analysis over the CFG (cfg.go) that tracks fbuf-typed values —
// *core.Fbuf, []*core.Fbuf batches, *aggregate.Msg handles — through a
// typestate automaton (typestate.go), using function summaries
// (summary.go) to see through same-package helpers and the facility API.
// It reports what the function-local, syntactic fbufcheck cannot:
// interprocedural leaks (an fbuf that escapes a function with neither
// Free/Transfer nor a stored reference), use-after-transfer and
// double-free through helpers, element-wise batch ownership, and
// ownership handoff into goroutines with no transfer point.
var FbufLife = &Analyzer{
	Name: "fbuflife",
	Doc:  "interprocedural fbuf lifecycle typestate check: leaks, use after transfer/free through helpers, batch element ownership, goroutine handoff",
	Run:  runFbufLife,
}

func runFbufLife(pass *Pass) error {
	sums := computeSummaries(pass)
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			e := newLifeEngine(pass, sums, true)
			e.analyze(fd.Type, fd.Body)
		}
	}
	return nil
}

// summarizeFunc runs the engine in summary-extraction mode: no
// diagnostics, but every event applied to a parameter-rooted value is
// recorded as a sumEffect and owned returned values become fresh-result
// marks.
func summarizeFunc(pass *Pass, fd *ast.FuncDecl, sums map[*types.Func]*funcSummary) *funcSummary {
	e := newLifeEngine(pass, sums, false)
	e.sum = &funcSummary{}
	e.analyze(fd.Type, fd.Body)
	return e.sum
}

// valInfo is the per-value identity record, shared by all program points
// (flow state lives in lifeFact). Values are keyed by their origin site,
// so re-executing an allocation in a loop reuses one identity with a
// strong state reset.
type valInfo struct {
	id         int
	kind       valKind
	pos        token.Pos // origin: alloc site, param, or binding
	owned      bool      // carries a free/transfer obligation
	parent     int       // for vkElem: the batch value's id (-1 otherwise)
	discharged bool      // Free/Transfer/escape seen anywhere (global)
	paramSlot  int       // summary mode: slot this value entered as (-2 none)
}

// freeRec tracks Free sites for one (value, domain-key) pair.
type freeRec struct {
	sites      map[token.Pos]bool // single/element-level Free sites
	batchSites map[token.Pos]bool // whole-batch FreeBatch sites
	credits    int                // DupRef grants
}

func (r *freeRec) clone() *freeRec {
	n := &freeRec{credits: r.credits}
	if len(r.sites) > 0 {
		n.sites = make(map[token.Pos]bool, len(r.sites))
		for k := range r.sites {
			n.sites[k] = true
		}
	}
	if len(r.batchSites) > 0 {
		n.batchSites = make(map[token.Pos]bool, len(r.batchSites))
		for k := range r.batchSites {
			n.batchSites[k] = true
		}
	}
	return n
}

// lifeVal is one value's flow state at a program point.
type lifeVal struct {
	mask  LifeState
	freed map[string]*freeRec // domain key -> record ("" = unknown domain)
}

func (v *lifeVal) clone() *lifeVal {
	n := &lifeVal{mask: v.mask}
	if len(v.freed) > 0 {
		n.freed = make(map[string]*freeRec, len(v.freed))
		for k, r := range v.freed {
			n.freed[k] = r.clone()
		}
	}
	return n
}

// lifeFact is the dataflow fact: which values each variable may name,
// and each value's typestate.
type lifeFact struct {
	env map[types.Object][]int
	val map[int]*lifeVal
}

func newFact() *lifeFact {
	return &lifeFact{env: map[types.Object][]int{}, val: map[int]*lifeVal{}}
}

func (f *lifeFact) clone() *lifeFact {
	n := newFact()
	for o, ids := range f.env {
		n.env[o] = append([]int(nil), ids...)
	}
	for id, v := range f.val {
		n.val[id] = v.clone()
	}
	return n
}

// merge unions o into f, reporting whether f changed.
func (f *lifeFact) merge(o *lifeFact) bool {
	changed := false
	for obj, ids := range o.env {
		have := f.env[obj]
		for _, id := range ids {
			if !containsInt(have, id) {
				have = append(have, id)
				changed = true
			}
		}
		f.env[obj] = have
	}
	for id, ov := range o.val {
		fv := f.val[id]
		if fv == nil {
			f.val[id] = ov.clone()
			changed = true
			continue
		}
		if fv.mask|ov.mask != fv.mask {
			fv.mask |= ov.mask
			changed = true
		}
		for dom, rec := range ov.freed {
			fr := fv.freed[dom]
			if fr == nil {
				if fv.freed == nil {
					fv.freed = map[string]*freeRec{}
				}
				fv.freed[dom] = rec.clone()
				changed = true
				continue
			}
			for p := range rec.sites {
				if !fr.sites[p] {
					if fr.sites == nil {
						fr.sites = map[token.Pos]bool{}
					}
					fr.sites[p] = true
					changed = true
				}
			}
			for p := range rec.batchSites {
				if !fr.batchSites[p] {
					if fr.batchSites == nil {
						fr.batchSites = map[token.Pos]bool{}
					}
					fr.batchSites[p] = true
					changed = true
				}
			}
			// Credits merge optimistically (max): a DupRef on either
			// path licenses the extra Free without a false positive.
			if rec.credits > fr.credits {
				fr.credits = rec.credits
				changed = true
			}
		}
	}
	return changed
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// lifeEngine analyzes one function body.
type lifeEngine struct {
	pass   *Pass
	sums   map[*types.Func]*funcSummary
	report bool

	vals     []*valInfo
	siteVals map[token.Pos]int // origin site -> value id
	elemVals map[string]int    // parentID "/" elemKey -> value id
	funcEnv  map[types.Object]*types.Func

	sum        *funcSummary // non-nil in summary mode
	record     bool         // true only during the final reporting pass
	reported   map[string]bool
	funcLits   []*ast.FuncLit
	goLits     map[*ast.FuncLit]bool // funclits consumed by a go statement
	paramSlots map[types.Object]int  // every param (fbuf or not) -> slot
	body       *ast.BlockStmt        // the body under analysis (site ordering)
}

func newLifeEngine(pass *Pass, sums map[*types.Func]*funcSummary, report bool) *lifeEngine {
	return &lifeEngine{
		pass:       pass,
		sums:       sums,
		report:     report,
		siteVals:   map[token.Pos]int{},
		elemVals:   map[string]int{},
		funcEnv:    map[types.Object]*types.Func{},
		reported:   map[string]bool{},
		goLits:     map[*ast.FuncLit]bool{},
		paramSlots: map[types.Object]int{},
	}
}

func (e *lifeEngine) info() *types.Info { return e.pass.TypesInfo }

// newVal allocates (or reuses, by origin site) a value identity.
func (e *lifeEngine) newVal(kind valKind, pos token.Pos, owned bool) *valInfo {
	if id, ok := e.siteVals[pos]; ok {
		return e.vals[id]
	}
	v := &valInfo{id: len(e.vals), kind: kind, pos: pos, owned: owned, parent: -1, paramSlot: -2}
	e.vals = append(e.vals, v)
	e.siteVals[pos] = v.id
	return v
}

// elemVal returns the element-view value of batch b under elemKey.
func (e *lifeEngine) elemVal(b *valInfo, elemKey string) *valInfo {
	key := fmt.Sprintf("%d/%s", b.id, elemKey)
	if id, ok := e.elemVals[key]; ok {
		return e.vals[id]
	}
	v := &valInfo{id: len(e.vals), kind: vkElem, pos: b.pos, parent: b.id, paramSlot: -2}
	e.vals = append(e.vals, v)
	e.elemVals[key] = v.id
	return v
}

// state returns (creating if needed) the flow state of value id in fact.
func state(fact *lifeFact, id int) *lifeVal {
	v := fact.val[id]
	if v == nil {
		v = &lifeVal{mask: LSAllocated | LSWritten}
		fact.val[id] = v
	}
	return v
}

// analyze runs the fixpoint then a single recording pass, then the
// defer/exit/leak stage.
func (e *lifeEngine) analyze(ftype *ast.FuncType, body *ast.BlockStmt) {
	e.body = body
	g := buildCFG(body)
	blocks := g.reachableBlocks()

	entry := newFact()
	e.bindParams(ftype, entry)

	in := make(map[*CFGBlock]*lifeFact, len(blocks))
	in[g.Entry] = entry
	// Fixpoint: silent transfer passes until block inputs stabilize.
	for pass := 0; pass < 64; pass++ {
		changed := false
		for _, blk := range blocks {
			inf := in[blk]
			if inf == nil {
				continue
			}
			out := e.transfer(inf.clone(), blk)
			for _, succ := range blk.Succs {
				if in[succ] == nil {
					in[succ] = out.clone()
					changed = true
				} else if in[succ].merge(out) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	// Recording pass: re-run each block once on its converged input with
	// diagnostics/summary recording enabled.
	e.record = true
	for _, blk := range blocks {
		if inf := in[blk]; inf != nil {
			e.transfer(inf.clone(), blk)
		}
	}
	e.record = false

	// Defers: a may-approximation — every defer is assumed to run at
	// Exit, in reverse source order, with the exit environment.
	exitFact := in[g.Exit]
	if exitFact == nil {
		exitFact = newFact()
	}
	for i := len(g.Defers) - 1; i >= 0; i-- {
		e.applyDefer(exitFact, g.Defers[i])
	}

	// Leak scan: an owned value no path discharged.
	if e.report {
		for _, v := range e.vals {
			if v.owned && !v.discharged {
				e.reportAt(v.pos, "leak",
					"fbuf allocated here escapes the function with no Free, Transfer, or stored reference (leak; paper §3.2.1)")
			}
		}
	}

	// Nested function literals are separate scopes: analyze each
	// standalone (captured outer fbuf variables are untracked there, so
	// the literal is checked for its own allocations and API misuse).
	lits := e.funcLits
	for _, lit := range lits {
		sub := newLifeEngine(e.pass, e.sums, e.report)
		sub.analyze(lit.Type, lit.Body)
	}
}

// bindParams seeds entry values for fbuf-typed parameters (and the
// receiver in summary mode they are slot-tagged for effect recording).
func (e *lifeEngine) bindParams(ftype *ast.FuncType, fact *lifeFact) {
	slot := 0
	bind := func(names []*ast.Ident, t types.Type) {
		kind := fbufKindOf(t)
		for _, name := range names {
			if obj := e.info().Defs[name]; obj != nil && name.Name != "_" {
				e.paramSlots[obj] = slot
				if kind != vkNone {
					v := e.newVal(kind, name.Pos(), false)
					v.paramSlot = slot
					fact.env[obj] = []int{v.id}
					st := state(fact, v.id)
					st.mask = LSAllocated | LSWritten
				}
			}
			slot++
		}
		if len(names) == 0 {
			slot++
		}
	}
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			bind(field.Names, e.info().TypeOf(field.Type))
		}
	}
}

// transfer applies one block's nodes to fact, returning the out-fact.
func (e *lifeEngine) transfer(fact *lifeFact, blk *CFGBlock) *lifeFact {
	for _, n := range blk.Nodes {
		e.applyNode(fact, n)
	}
	return fact
}

func (e *lifeEngine) applyNode(fact *lifeFact, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		e.applyAssign(fact, n)
	case *ast.ExprStmt:
		e.eval(fact, n.X)
	case *ast.SendStmt:
		e.eval(fact, n.Chan)
		e.escapeRecorded(fact, e.eval(fact, n.Value))
	case *ast.IncDecStmt:
		e.eval(fact, n.X)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				e.bindList(fact, identsToExprs(vs.Names), vs.Values)
			}
		}
	case *ast.ReturnStmt:
		e.applyReturn(fact, n)
	case *ast.GoStmt:
		e.applyGo(fact, n)
	case *ast.DeferStmt:
		// Effects applied at Exit (see applyDefer); just note funclits.
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			e.noteFuncLit(lit)
		}
	case *ast.RangeStmt:
		e.applyRange(fact, n)
	case ast.Expr:
		e.eval(fact, n)
	case ast.Stmt:
		// Conservative default: evaluate any contained expressions.
		ast.Inspect(n, func(c ast.Node) bool {
			if ex, ok := c.(ast.Expr); ok {
				e.eval(fact, ex)
				return false
			}
			return true
		})
	}
}

func identsToExprs(ids []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}

func (e *lifeEngine) applyAssign(fact *lifeFact, as *ast.AssignStmt) {
	e.bindList(fact, as.Lhs, as.Rhs)
}

// bindList implements assignment/definition: evaluate the RHS, then for
// each ident LHS strongly rebind the variable; non-ident LHS targets are
// stores, which discharge (escape) the assigned values.
func (e *lifeEngine) bindList(fact *lifeFact, lhs, rhs []ast.Expr) {
	var rhsVals [][]int
	if len(rhs) == 1 && len(lhs) > 1 {
		// Multi-value: f, err := p.Alloc()
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			rhsVals = e.evalCallMulti(fact, call)
		} else {
			e.eval(fact, rhs[0])
			rhsVals = make([][]int, len(lhs))
		}
		for len(rhsVals) < len(lhs) {
			rhsVals = append(rhsVals, nil)
		}
	} else {
		rhsVals = make([][]int, len(lhs))
		for i := range rhs {
			if i < len(lhs) {
				rhsVals[i] = e.eval(fact, rhs[i])
			} else {
				e.eval(fact, rhs[i])
			}
		}
	}
	for i, l := range lhs {
		l = ast.Unparen(l)
		if id, ok := l.(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			obj := e.info().ObjectOf(id)
			if obj == nil {
				continue
			}
			// Method-value binding: h := mgr.Free
			if i < len(rhs) {
				if sel, ok := ast.Unparen(rhs[i]).(*ast.SelectorExpr); ok {
					if fn, ok := e.info().Uses[sel.Sel].(*types.Func); ok && builtinSummary(fn) != nil {
						e.funcEnv[obj] = fn
					}
				}
			}
			if fbufKindOf(obj.Type()) != vkNone {
				// A variable declared outside the body under analysis — a
				// package-level var, or a captured outer variable when this
				// engine runs on a function literal — parks the reference
				// beyond this frame: the store discharges the obligation.
				if _, isParam := e.paramSlots[obj]; !isParam && e.body != nil &&
					(obj.Pos() < e.body.Pos() || obj.Pos() > e.body.End()) {
					e.escapeRecorded(fact, rhsVals[i])
					continue
				}
				// Strong rebind: the variable now names the RHS values
				// (possibly none, making it untracked).
				if len(rhsVals[i]) > 0 {
					fact.env[obj] = append([]int(nil), rhsVals[i]...)
				} else {
					delete(fact.env, obj)
				}
			}
			continue
		}
		// Store through a field, index, deref, or map: the value now has
		// a live reference outside the local frame.
		e.escapeRecorded(fact, rhsVals[i])
	}
}

func (e *lifeEngine) applyReturn(fact *lifeFact, ret *ast.ReturnStmt) {
	for i, r := range ret.Results {
		vals := e.eval(fact, r)
		if e.sum != nil && e.record {
			e.recordFresh(i, len(ret.Results), vals)
		}
		// Returning transfers the obligation to the caller.
		e.discharge(vals)
	}
}

// recordFresh marks result slot i fresh when every returned value is an
// owned allocation of this function (the helper is an allocator).
func (e *lifeEngine) recordFresh(i, n int, vals []int) {
	if len(vals) == 0 {
		return
	}
	kind := fkOwned
	for _, id := range vals {
		v := e.vals[id]
		if v.paramSlot != -2 || v.kind == vkElem {
			return // returns a param or view: aliasing, not fresh
		}
		if !v.owned {
			kind = fkAlias
		}
	}
	for len(e.sum.fresh) < n {
		e.sum.fresh = append(e.sum.fresh, fkNone)
	}
	if e.sum.fresh[i] == fkNone {
		e.sum.fresh[i] = kind
	}
}

// applyGo handles `go f(args)` / `go func(){...}()`: any still-owned
// live fbuf crossing into the goroutine without a Transfer is an
// undocumented ownership handoff.
func (e *lifeEngine) applyGo(fact *lifeFact, g *ast.GoStmt) {
	var crossing []int
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		e.noteFuncLit(lit)
		e.goLits[lit] = true
		// Captured fbuf variables cross the goroutine boundary.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := e.info().Uses[id]; obj != nil {
					if ids, ok := fact.env[obj]; ok {
						crossing = append(crossing, ids...)
					}
				}
			}
			return true
		})
	}
	for _, arg := range g.Call.Args {
		crossing = append(crossing, e.eval(fact, arg)...)
	}
	for _, id := range crossing {
		st := state(fact, id)
		if _, viol := lifeNext(st.mask, EvHandoff); viol != nil && e.record {
			e.reportAt(g.Pos(), viol.Name, fmt.Sprintf(
				"fbuf handed to goroutine while this domain still owns it: no Transfer before the handoff (rule %s, paper §%s)",
				viol.Rule, viol.Paper))
		}
		if e.sum != nil && e.record {
			e.recordEffect(sumEffect{slot: e.slotOf(id), escape: true, domSlot: -1})
		}
	}
	e.discharge(crossing)
}

// applyRange binds the per-iteration element view for `range` over a
// tracked batch, with a strong per-iteration state reset (each iteration
// names a different element, so state must not leak across iterations).
func (e *lifeEngine) applyRange(fact *lifeFact, r *ast.RangeStmt) {
	base := e.eval(fact, r.X)
	var batches []int
	for _, id := range base {
		if e.vals[id].kind == vkBatch {
			batches = append(batches, id)
		}
	}
	bindElem := func(ex ast.Expr, keyPrefix string) {
		if ex == nil || len(batches) == 0 {
			return
		}
		id, ok := ast.Unparen(ex).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := e.info().ObjectOf(id)
		if obj == nil {
			return
		}
		var ids []int
		for _, b := range batches {
			ev := e.elemVal(e.vals[b], keyPrefix+posString(r.Pos()))
			// Fresh iteration: element state restarts from the batch's.
			bst := state(fact, b)
			fact.val[ev.id] = &lifeVal{mask: bst.mask}
			ids = append(ids, ev.id)
		}
		if fbufKindOf(obj.Type()) == vkSingle {
			fact.env[obj] = ids
		}
	}
	bindElem(r.Value, "range:")
	// Index-variable element views (bufs[i] in the body) also restart.
	if r.Key != nil && len(batches) > 0 {
		if id, ok := ast.Unparen(r.Key).(*ast.Ident); ok && id.Name != "_" {
			if obj := e.info().ObjectOf(id); obj != nil {
				for _, b := range batches {
					ev := e.elemVal(e.vals[b], "idx:"+objKey(obj))
					bst := state(fact, b)
					fact.val[ev.id] = &lifeVal{mask: bst.mask}
				}
			}
		}
	}
}

func (e *lifeEngine) noteFuncLit(lit *ast.FuncLit) {
	for _, l := range e.funcLits {
		if l == lit {
			return
		}
	}
	e.funcLits = append(e.funcLits, lit)
}

// eval evaluates an expression for its tracked values, applying call
// effects along the way.
func (e *lifeEngine) eval(fact *lifeFact, expr ast.Expr) []int {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := e.info().ObjectOf(x); obj != nil {
			return fact.env[obj]
		}
		return nil
	case *ast.CallExpr:
		res := e.evalCallMulti(fact, x)
		if len(res) > 0 {
			return res[0]
		}
		return nil
	case *ast.IndexExpr:
		base := e.eval(fact, x.X)
		e.eval(fact, x.Index)
		key := indexKey(e.info(), x.Index)
		var out []int
		for _, id := range base {
			if e.vals[id].kind == vkBatch {
				out = append(out, e.elemVal(e.vals[id], key).id)
			}
		}
		return out
	case *ast.SliceExpr:
		// bufs[:n] aliases the same batch.
		if x.Low != nil {
			e.eval(fact, x.Low)
		}
		if x.High != nil {
			e.eval(fact, x.High)
		}
		return e.eval(fact, x.X)
	case *ast.SelectorExpr:
		e.eval(fact, x.X)
		return nil // field access: untracked storage
	case *ast.UnaryExpr:
		e.eval(fact, x.X)
		return nil
	case *ast.StarExpr:
		e.eval(fact, x.X)
		return nil
	case *ast.BinaryExpr:
		e.eval(fact, x.X)
		e.eval(fact, x.Y)
		return nil
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			e.escapeRecorded(fact, e.eval(fact, el))
		}
		return nil
	case *ast.FuncLit:
		e.noteFuncLit(x)
		if !e.goLits[x] {
			// A literal that outlives this statement may hold captured
			// fbufs indefinitely: discharge them.
			var captured []int
			ast.Inspect(x.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := e.info().Uses[id]; obj != nil {
						if ids, ok := fact.env[obj]; ok {
							captured = append(captured, ids...)
						}
					}
				}
				return true
			})
			e.escapeRecorded(fact, captured)
		}
		return nil
	case *ast.TypeAssertExpr:
		e.eval(fact, x.X)
		return nil
	}
	return nil
}

// indexKey canonicalizes an index expression for element-view identity:
// constant indices and loop variables get stable keys; anything else is
// keyed by site (distinct sites stay distinct, never merged).
func indexKey(info *types.Info, idx ast.Expr) string {
	idx = ast.Unparen(idx)
	if lit, ok := idx.(*ast.BasicLit); ok {
		return "lit:" + lit.Value
	}
	if id, ok := idx.(*ast.Ident); ok {
		if obj := info.ObjectOf(id); obj != nil {
			return "idx:" + objKey(obj)
		}
	}
	return "site:" + posString(idx.Pos())
}

// evalCallMulti evaluates a call, applies its summary effects, and
// returns per-result tracked-value sets.
func (e *lifeEngine) evalCallMulti(fact *lifeFact, call *ast.CallExpr) [][]int {
	// Builtins like append/len/cap: evaluate args; append escapes fbuf
	// elements into the destination slice (untracked aggregation).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := e.info().Uses[id].(*types.Builtin); isBuiltin {
			for _, a := range call.Args {
				e.escapeRecorded(fact, e.eval(fact, a))
			}
			return nil
		}
	}

	fn := calleeFunc(e.info(), call)
	if fn == nil {
		// Indirect call through a function value: method values bound to
		// facility API carry their builtin summary.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj := e.info().ObjectOf(id); obj != nil {
				fn = e.funcEnv[obj]
			}
		}
	}
	// Conversions (core.Fbuf(x) style) have no *types.Func; treat like
	// unknown calls below.

	var recvVals []int
	if recv := receiverOf(call); recv != nil && fn != nil && fn.Type().(*types.Signature).Recv() != nil {
		recvVals = e.eval(fact, recv)
	} else if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		e.eval(fact, sel.X)
	}
	argVals := make([][]int, len(call.Args))
	for i, a := range call.Args {
		argVals[i] = e.eval(fact, a)
	}

	slotVals := func(slot int) []int {
		if slot == -1 {
			return recvVals
		}
		if slot >= 0 && slot < len(argVals) {
			return argVals[slot]
		}
		return nil
	}

	var sum *funcSummary
	if fn != nil {
		sum = builtinSummary(fn)
		if sum == nil {
			sum = e.sums[fn]
		}
	}
	if sum == nil {
		// Unknown callee. Methods on Fbuf/Msg we have no summary for are
		// accessors (reads); everything else may retain its fbuf
		// arguments, so they escape.
		if fn != nil && (recvTypeIs(fn, "core", "Fbuf") || recvTypeIs(fn, "aggregate", "Msg")) {
			e.applyEvent(fact, recvVals, EvRead, "", nil, call.Pos(), levSingle)
		} else {
			for _, vs := range argVals {
				e.escapeRecorded(fact, vs)
			}
			e.escapeRecorded(fact, recvVals)
		}
		return e.callResults(fact, call, fn, nil)
	}

	for _, eff := range sum.effects {
		vals := slotVals(eff.slot)
		if len(vals) == 0 && !eff.rebind {
			continue
		}
		var domExpr ast.Expr
		if eff.domSlot >= 0 && eff.domSlot < len(call.Args) {
			domExpr = call.Args[eff.domSlot]
		}
		domKey := ""
		if domExpr != nil {
			domKey = exprKey(e.info(), domExpr)
		}
		switch {
		case eff.rebind:
			e.applyRebind(fact, call, eff.slot)
		case eff.dup:
			for _, id := range vals {
				st := state(fact, id)
				if st.freed == nil {
					st.freed = map[string]*freeRec{}
				}
				rec := st.freed[domKey]
				if rec == nil {
					rec = &freeRec{}
					st.freed[domKey] = rec
				}
				rec.credits++
			}
			e.recordParamEffects(vals, sumEffect{ev: EvFree, dup: true, domSlot: -1}, domExpr)
		case eff.escape:
			e.escapeRecorded(fact, vals)
		default:
			e.applyEvent(fact, vals, eff.ev, domKey, domExpr, call.Pos(), eff.level)
		}
	}
	return e.callResults(fact, call, fn, sum)
}

// applyRebind implements AllocBatch(out): when the out-argument is a
// plain variable, it now names a freshly filled batch the caller owns.
func (e *lifeEngine) applyRebind(fact *lifeFact, call *ast.CallExpr, slot int) {
	if slot < 0 || slot >= len(call.Args) {
		return
	}
	id, ok := ast.Unparen(call.Args[slot]).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := e.info().ObjectOf(id)
	if obj == nil {
		return
	}
	v := e.newVal(vkBatch, call.Pos(), true)
	fact.env[obj] = []int{v.id}
	fact.val[v.id] = &lifeVal{mask: LSAllocated}
	// Element views of a re-filled batch restart too.
	for _, eid := range e.elemVals {
		if e.vals[eid].parent == v.id {
			fact.val[eid] = &lifeVal{mask: LSAllocated}
		}
	}
}

// callResults builds per-result value sets: fresh allocations for
// summary-marked results, foreign (obligation-free) values for other
// fbuf-typed results so later misuse is still checked.
func (e *lifeEngine) callResults(fact *lifeFact, call *ast.CallExpr, fn *types.Func, sum *funcSummary) [][]int {
	tv, ok := e.info().Types[call]
	if !ok {
		return nil
	}
	var resTypes []types.Type
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			resTypes = append(resTypes, tuple.At(i).Type())
		}
	} else {
		resTypes = []types.Type{tv.Type}
	}
	out := make([][]int, len(resTypes))
	for i, rt := range resTypes {
		kind := fbufKindOf(rt)
		if kind == vkNone {
			continue
		}
		fk := fkAlias
		if sum != nil && i < len(sum.fresh) {
			fk = sum.fresh[i]
			if fk == fkNone {
				continue // summary says this result aliases a param: skip
			}
		}
		// Key the value by call site + result index so loops reuse one
		// identity with a strong reset.
		sitePos := call.Pos() + token.Pos(i)
		v := e.newVal(kind, sitePos, fk == fkOwned)
		v.pos = call.Pos()
		fact.val[v.id] = &lifeVal{mask: LSAllocated}
		out[i] = []int{v.id}
	}
	return out
}

// applyEvent runs one lifecycle event over a value set, reporting
// violations and recording summary effects.
func (e *lifeEngine) applyEvent(fact *lifeFact, vals []int, ev LifeEvent,
	domKey string, domExpr ast.Expr, site token.Pos, level effLevel) {
	if len(vals) == 0 {
		return
	}
	// Batch-level events on a batch target expand nothing; element-level
	// helper effects on a batch expand to a per-call-site element view.
	if level == levElem {
		var expanded []int
		for _, id := range vals {
			v := e.vals[id]
			if v.kind == vkBatch {
				expanded = append(expanded, e.elemVal(v, "helper:"+posString(site)).id)
			} else {
				expanded = append(expanded, id)
			}
		}
		vals = expanded
		level = levSingle
	}

	type verdict struct {
		viol *LifeViolation
		prev token.Pos
	}
	verdicts := make([]verdict, 0, len(vals))
	for _, id := range vals {
		v := e.vals[id]
		st := state(fact, id)
		next, viol := lifeNext(st.mask, ev)
		if ev == EvFree && st.mask&LSTransferred != 0 {
			// After a Transfer this domain's Free drops only its own
			// reference — the receiver still holds the buffer live (copy
			// semantics, paper §2.1.2) — so the value never becomes
			// globally Freed and later Transfers down the chain stay legal.
			next = st.mask
		}
		vd := verdict{}
		if ev == EvFree {
			// Double-free detection is site-based, not mask-based, so a
			// loop re-executing one Free never convicts itself.
			vd.viol, vd.prev = e.applyFree(fact, st, v, domKey, site, level)
		} else if viol != nil {
			vd.viol = viol
		}
		st.mask = next
		verdicts = append(verdicts, vd)

		if ev == EvFree || ev == EvTransfer {
			e.discharge([]int{id})
		}
	}

	// Report only when every value the variable may name agrees on the
	// violation: path-insensitive env joins (f may be a or b) must not
	// convict a use that is clean for one of the candidates.
	if e.record && e.report {
		counts := map[string]int{}
		var firstViol *LifeViolation
		var prevSite token.Pos
		for _, vd := range verdicts {
			if vd.viol != nil {
				counts[vd.viol.Name]++
				if firstViol == nil {
					firstViol = vd.viol
					prevSite = vd.prev
				}
			}
		}
		if firstViol != nil && counts[firstViol.Name] == len(verdicts) {
			e.reportViolation(site, firstViol, ev, prevSite)
		}
	}
	e.recordParamEffects(vals, sumEffect{ev: ev, level: level, domSlot: -1}, domExpr)
}

// applyFree applies Free bookkeeping to one value, returning a
// double-free verdict (nil when clean) and the prior site.
func (e *lifeEngine) applyFree(fact *lifeFact, st *lifeVal, v *valInfo,
	domKey string, site token.Pos, level effLevel) (*LifeViolation, token.Pos) {
	if st.freed == nil {
		st.freed = map[string]*freeRec{}
	}
	rec := st.freed[domKey]
	if rec == nil {
		rec = &freeRec{}
		st.freed[domKey] = rec
	}

	var viol *LifeViolation
	var prev token.Pos
	check := func(r *freeRec) {
		if viol != nil || r == nil || domKey == "" {
			return
		}
		for p := range r.sites {
			if p != site && e.sitePrecedes(p, site) {
				viol, prev = doubleFreeViolation(), p
				return
			}
		}
		for p := range r.batchSites {
			if p != site && e.sitePrecedes(p, site) {
				viol, prev = doubleFreeViolation(), p
				return
			}
		}
	}
	check(rec)

	// Element/batch interplay: freeing an element consults the parent
	// batch's whole-batch frees; freeing the batch consults element-level
	// frees recorded on it.
	var parentSt *lifeVal
	var parentRec *freeRec
	if v.kind == vkElem && v.parent >= 0 {
		parentSt = state(fact, v.parent)
		if parentSt.freed == nil {
			parentSt.freed = map[string]*freeRec{}
		}
		parentRec = parentSt.freed[domKey]
		if parentRec == nil {
			parentRec = &freeRec{}
			parentSt.freed[domKey] = parentRec
		}
		check(parentRec)
	}

	if viol != nil && rec.credits > 0 {
		rec.credits--
		viol, prev = nil, token.NoPos
	}

	// Record the site.
	target := rec
	if level == levBatch {
		if target.batchSites == nil {
			target.batchSites = map[token.Pos]bool{}
		}
		target.batchSites[site] = true
	} else {
		if target.sites == nil {
			target.sites = map[token.Pos]bool{}
		}
		target.sites[site] = true
	}
	if parentRec != nil {
		// Element frees surface on the parent so a later FreeBatch (or a
		// second element pass) sees them.
		if parentRec.sites == nil {
			parentRec.sites = map[token.Pos]bool{}
		}
		parentRec.sites[site] = true
		e.discharge([]int{v.parent})
		parentSt.mask |= LSFreed
	}
	return viol, prev
}

// sitePrecedes reports whether free site a may come before site b in
// program order (util.go's syntactic may-precede). Sites in sibling arms
// of one if/switch never precede each other, so one conceptual free
// compiled into two exclusive arms — and rejoined by the dataflow merge
// around a loop back edge — is not convicted as a double free.
func (e *lifeEngine) sitePrecedes(a, b token.Pos) bool {
	if e.body == nil {
		return true
	}
	return mayPrecede(pathTo(e.body, a), pathTo(e.body, b))
}

func doubleFreeViolation() *LifeViolation {
	for i := range LifecycleViolations {
		if LifecycleViolations[i].Name == "double-free" {
			return &LifecycleViolations[i]
		}
	}
	return nil
}

func (e *lifeEngine) reportViolation(site token.Pos, viol *LifeViolation, ev LifeEvent, prev token.Pos) {
	var msg string
	switch viol.Name {
	case "double-free":
		where := ""
		if prev.IsValid() {
			p := e.pass.Fset.Position(prev)
			where = fmt.Sprintf("; already freed at %s:%d", p.Filename, p.Line)
		}
		msg = fmt.Sprintf("fbuf freed twice in the same domain (rule %s, paper §%s)%s", viol.Rule, viol.Paper, where)
	case "use-after-transfer":
		msg = fmt.Sprintf("write to fbuf after Transfer: transferred fbufs are immutable (rule %s, paper §%s)", viol.Rule, viol.Paper)
	case "write-after-secure":
		msg = fmt.Sprintf("write to fbuf after Secure: protection was raised (rule %s, paper §%s)", viol.Rule, viol.Paper)
	case "use-after-free":
		msg = fmt.Sprintf("use of fbuf after Free (%s; rule %s, paper §%s)", ev, viol.Rule, viol.Paper)
	default:
		msg = fmt.Sprintf("fbuf lifecycle violation: %s on %s state (rule %s, paper §%s)", ev, viol.Name, viol.Rule, viol.Paper)
	}
	e.reportAt(site, viol.Name, msg)
}

func (e *lifeEngine) reportAt(pos token.Pos, name, msg string) {
	if !e.report {
		return
	}
	key := posString(pos) + "|" + name
	if e.reported[key] {
		return
	}
	e.reported[key] = true
	e.pass.Reportf(pos, "%s", msg)
}

// discharge marks values (and element views' parents) as having met
// their obligation somewhere in the function.
func (e *lifeEngine) discharge(vals []int) {
	for _, id := range vals {
		v := e.vals[id]
		v.discharged = true
		if v.kind == vkElem && v.parent >= 0 {
			e.vals[v.parent].discharged = true
		}
	}
}

// escape discharges values whose reference outlives the local frame.
func (e *lifeEngine) escape(fact *lifeFact, vals []int) {
	e.discharge(vals)
}

// escapeRecorded is escape plus summary-effect recording (param escapes
// matter to callers; plain local escapes do not).
func (e *lifeEngine) escapeRecorded(fact *lifeFact, vals []int) {
	e.escape(fact, vals)
	e.recordParamEffects(vals, sumEffect{escape: true, domSlot: -1}, nil)
}

// recordParamEffects records eff for every parameter-rooted value in
// vals (summary mode, recording pass only).
func (e *lifeEngine) recordParamEffects(vals []int, eff sumEffect, domExpr ast.Expr) {
	if e.sum == nil || !e.record {
		return
	}
	domSlot := -1
	if domExpr != nil {
		if obj := identObj(e.info(), domExpr); obj != nil {
			domSlot = e.paramSlotOfObj(obj)
		}
	}
	for _, id := range vals {
		slot := e.slotOf(id)
		if slot == -2 {
			continue
		}
		rec := eff
		rec.slot = slot
		rec.domSlot = domSlot
		v := e.vals[id]
		if v.kind == vkElem && v.parent >= 0 && e.vals[v.parent].paramSlot != -2 {
			rec.slot = e.vals[v.parent].paramSlot
			if rec.level == levSingle {
				rec.level = levElem
			}
		}
		e.recordEffect(rec)
	}
}

func (e *lifeEngine) recordEffect(eff sumEffect) {
	if eff.slot == -2 {
		return
	}
	for _, have := range e.sum.effects {
		if have == eff {
			return
		}
	}
	e.sum.effects = append(e.sum.effects, eff)
}

// slotOf maps a value to the parameter slot it entered through (-2 when
// it is not parameter-rooted).
func (e *lifeEngine) slotOf(id int) int {
	v := e.vals[id]
	if v.paramSlot != -2 {
		return v.paramSlot
	}
	if v.kind == vkElem && v.parent >= 0 {
		return e.vals[v.parent].paramSlot
	}
	return -2
}

// paramSlotOfObj resolves an object to its parameter slot (-1 when it is
// not a parameter of the function under analysis).
func (e *lifeEngine) paramSlotOfObj(obj types.Object) int {
	if slot, ok := e.paramSlots[obj]; ok {
		return slot
	}
	return -1
}

// applyDefer applies a deferred call's effects with the exit-time
// environment: direct facility/helper calls run with full checking;
// deferred literals are scanned for discharging calls on captured
// variables so `defer func(){ mgr.Free(f, d) }()` meets f's obligation.
func (e *lifeEngine) applyDefer(fact *lifeFact, d *ast.DeferStmt) {
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(e.info(), call)
			if fn == nil {
				return true
			}
			sum := builtinSummary(fn)
			if sum == nil {
				sum = e.sums[fn]
			}
			if sum == nil {
				return true
			}
			for _, eff := range sum.effects {
				if eff.ev != EvFree && eff.ev != EvTransfer && !eff.escape {
					continue
				}
				var target ast.Expr
				if eff.slot == -1 {
					target = receiverOf(call)
				} else if eff.slot >= 0 && eff.slot < len(call.Args) {
					target = call.Args[eff.slot]
				}
				if target == nil {
					continue
				}
				if obj := identObj(e.info(), target); obj != nil {
					e.discharge(fact.env[obj])
				}
			}
			return true
		})
		return
	}
	// Direct deferred call: apply with checking (the recording flag is
	// on so double-free against earlier eager frees still reports).
	e.record = true
	e.evalCallMulti(fact, d.Call)
	e.record = false
}
