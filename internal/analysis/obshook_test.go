package analysis

import (
	"testing"
)

func TestObsHook(t *testing.T) {
	RunTest(t, "testdata/src", ObsHook, "obshook")
}

// TestSuiteRegistry pins the analyzer set and name lookup: the CI vettool
// and the docs both enumerate these six.
func TestSuiteRegistry(t *testing.T) {
	want := []string{"fbufcheck", "fbuflife", "errflow", "detlint", "obshook", "lockorder"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() = %d analyzers, want %d", len(all), len(want))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("All()[%d] = %q, want %q", i, all[i].Name, name)
		}
		if ByName(name) != all[i] {
			t.Errorf("ByName(%q) did not return the registered analyzer", name)
		}
	}
	if ByName("nosuch") != nil {
		t.Error("ByName(nosuch) != nil")
	}
}

// TestModuleClean runs the full suite over the real module source — the
// analyzer-clean property the tree must keep (same check CI's fbufvet
// job enforces through go vet).
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module from source")
	}
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("suspiciously few packages: %v", pkgs)
	}
	for _, importPath := range pkgs {
		p, err := loader.Load(importPath)
		if err != nil {
			t.Fatalf("load %s: %v", importPath, err)
		}
		diags, err := RunAnalyzers(loader.Fset, p.Files, p.Pkg, p.Info, All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s: %s", loader.Fset.Position(d.Pos), d.Category, d.Message)
		}
	}
}
