// Package a, continued: this file carries the parallel pragma, the
// opt-out for code that deliberately measures real concurrency and so
// sits outside the deterministic-trace contract. Nothing here is
// reported.
//
//detlint:parallel
package a

import (
	"math/rand"
	"time"
)

func wallClockBench(work func()) time.Duration {
	start := time.Now() // pragma file: wall-clock reads allowed
	done := make(chan struct{})
	go func() { // pragma file: goroutines allowed
		work()
		close(done)
	}()
	<-done
	return time.Since(start)
}

func jitter() int {
	return rand.Int() // pragma file: global source allowed
}
