// Package a is the detlint corpus: the simulator's determinism contract.
package a

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	t := time.Now() // want "use the virtual clock"
	return t.Unix()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "use the virtual clock"
}

func globalRand() int {
	return rand.Int() // want "global math/rand source"
}

func spawn(work func()) {
	go work() // want "go statement in simulator code"
}

func printMapOrder(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "map iteration order is randomized"
	}
}

// --- Negative cases ------------------------------------------------------

func seededRand() int {
	r := rand.New(rand.NewSource(1)) // explicit seed: reproducible
	return r.Int()
}

func printSortedMap(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collecting keys is fine; no output here
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k]) // slice range: deterministic order
	}
}

func durationsAreFine(d time.Duration) time.Duration {
	return d * 2 // only wall-clock *reads* are banned
}
