// Package aggregate stubs fbufs/internal/aggregate for the errflow corpus.
package aggregate

type Msg struct{}

type Ctx struct{}

type Reader struct{}

func (c *Ctx) Join(a, b *Msg) (*Msg, error)          { return a, nil }
func (c *Ctx) Push(m *Msg, hdr []byte) (*Msg, error) { return m, nil }
func (r *Reader) Next(n int) ([]byte, error)         { return nil, nil }
