// Package a is the errflow corpus.
package a

import (
	"fmt"

	"aggregate"
	"core"
	"vm"
	"xfer"
)

func implicitDiscards(mgr *core.Manager, p *core.DataPath, f *core.Fbuf, a, b *core.Domain) {
	p.Alloc()              // want "error from DataPath.Alloc is implicitly discarded"
	mgr.Transfer(f, a, b)  // want "error from Manager.Transfer is implicitly discarded"
	f.Write(a, 0, nil)     // want "error from Fbuf.Write is implicitly discarded"
	mgr.Secure(f, b)       // want "error from Manager.Secure is implicitly discarded"
}

func lostInDeferAndGo(mgr *core.Manager, f *core.Fbuf, d *core.Domain) {
	defer mgr.Free(f, d) // want "error from Manager.Free is lost in a defer statement"
	go f.TouchRead(d)    // want "error from Fbuf.TouchRead is lost in a go statement"
}

func aggregateAndVM(ctx *aggregate.Ctx, m *aggregate.Msg, as *vm.AddrSpace) {
	ctx.Join(m, m)       // want "error from Ctx.Join is implicitly discarded"
	as.Write(0, nil)     // want "error from AddrSpace.Write is implicitly discarded"
}

func degradedPath(ad *xfer.Adaptive) {
	// Hop degrades to the copy path on allocation failure internally; the
	// error it *returns* is a real fault (dead domain, closed path) and
	// ignoring it hides broken transfers.
	ad.Hop(nil) // want "error from Adaptive.Hop is implicitly discarded"
}

func handledProperly(mgr *core.Manager, p *core.DataPath, f *core.Fbuf, a, b *core.Domain) {
	if err := mgr.Transfer(f, a, b); err != nil {
		fmt.Println("transfer:", err)
	}
	buf, err := p.Alloc()
	if err != nil {
		fmt.Println("alloc:", err)
	}
	_ = buf
}

func explicitDiscard(mgr *core.Manager, f *core.Fbuf, d *core.Domain) {
	// Visible, reviewable intent: allowed.
	_ = mgr.Free(f, d)
	_, _ = f.Secured(), mgr.Secure(f, d)
}

func unrelatedCalls(d *core.Domain) {
	fmt.Println(d.Name) // non-protocol APIs are out of scope
}
