// Package a is the lockorder corpus: types named like the facility's
// lock owners (matching is by type and field name), exercised in the
// documented order and against it.
package a

import "sync"

type DataPath struct{ mu sync.Mutex }

func (p *DataPath) lock()   { p.mu.Lock() }
func (p *DataPath) unlock() { p.mu.Unlock() }

type Manager struct {
	regionMu sync.Mutex
	noticeMu sync.Mutex
}

type chunk struct{ mu sync.Mutex }

type Fbuf struct{ mu sync.Mutex }

type Sanitizer struct{ mu sync.Mutex }

type AddrSpace struct{ mu sync.Mutex }

// --- The documented order is clean ---------------------------------------

func goodNesting(p *DataPath, m *Manager, c *chunk, f *Fbuf) {
	p.mu.Lock()
	m.regionMu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	m.regionMu.Unlock()
	f.mu.Lock()
	f.mu.Unlock()
	p.mu.Unlock()
}

func wrapperCountsAsPathLock(p *DataPath, m *Manager) {
	p.lock()
	m.regionMu.Lock()
	m.regionMu.Unlock()
	p.unlock()
}

func sequentialNotNested(m *Manager, f *Fbuf) {
	f.mu.Lock()
	f.mu.Unlock()
	m.regionMu.Lock() // the fbuf lock was released: no nesting
	m.regionMu.Unlock()
}

func leafAboveEverything(m *Manager, f *Fbuf, a *AddrSpace) {
	f.mu.Lock()
	a.mu.Lock()
	m.noticeMu.Lock()
	m.noticeMu.Unlock()
	a.mu.Unlock()
	f.mu.Unlock()
}

func armsAreExclusive(p *DataPath, cond bool) {
	if cond {
		p.lock()
		p.unlock()
	} else {
		p.lock()
		p.unlock()
	}
}

func unrankedIgnored(mu *sync.Mutex, p *DataPath) {
	mu.Lock() // not in the rank table: invisible
	p.lock()
	p.unlock()
	mu.Unlock()
}

func tryLockCannotBlock(p *DataPath, m *Manager) {
	m.regionMu.Lock()
	if p.mu.TryLock() { // a failed try returns; no deadlock cycle
		p.mu.Unlock()
	}
	m.regionMu.Unlock()
}

// --- Inversions ----------------------------------------------------------

func regionThenPath(m *Manager, p *DataPath) {
	m.regionMu.Lock()
	p.mu.Lock() // want "lock order violation: acquiring DataPath.mu while holding Manager.regionMu"
	p.mu.Unlock()
	m.regionMu.Unlock()
}

func fbufThenPathWrapper(f *Fbuf, p *DataPath) {
	f.mu.Lock()
	defer f.mu.Unlock() // deferred: held to function end
	p.lock()            // want "lock order violation: acquiring DataPath.mu while holding Fbuf.mu"
	p.unlock()
}

func sanitizerThenFbuf(s *Sanitizer, f *Fbuf) {
	s.mu.Lock()
	f.mu.Lock() // want "lock order violation: acquiring Fbuf.mu while holding Sanitizer.mu"
	f.mu.Unlock()
	s.mu.Unlock()
}

func noticeThenChunk(m *Manager, c *chunk) {
	m.noticeMu.Lock()
	c.mu.Lock() // want "lock order violation: acquiring chunk.mu while holding Manager.noticeMu"
	c.mu.Unlock()
	m.noticeMu.Unlock()
}

func selfRelock(f *Fbuf) {
	f.mu.Lock()
	f.mu.Lock() // want "already holds this mutex"
	f.mu.Unlock()
	f.mu.Unlock()
}

func twoFbufsAllowed(a, b *Fbuf) {
	a.mu.Lock()
	b.mu.Lock() // distinct instances at one rank: caller orders them
	b.mu.Unlock()
	a.mu.Unlock()
}

// --- Ring pair (PR 9): a leaf with pop-under-lock discipline -------------

type Pair struct{ mu sync.Mutex }

func ringPopUnderLock(f *Fbuf, r *Pair) {
	f.mu.Lock()
	r.mu.Lock() // leaf under Fbuf.mu: fine
	r.mu.Unlock()
	f.mu.Unlock()
}

func ringProcessOutsideLock(r *Pair, p *DataPath) {
	r.mu.Lock()
	r.mu.Unlock()
	p.mu.Lock() // ring lock released before processing: no nesting
	p.mu.Unlock()
}

func ringThenPath(r *Pair, p *DataPath) {
	r.mu.Lock()
	p.mu.Lock() // want "lock order violation: acquiring DataPath.mu while holding Pair.mu"
	p.mu.Unlock()
	r.mu.Unlock()
}

func ringThenAddrSpace(r *Pair, a *AddrSpace) {
	r.mu.Lock()
	a.mu.Lock() // want "lock order violation: acquiring AddrSpace.mu while holding Pair.mu"
	a.mu.Unlock()
	r.mu.Unlock()
}

func ringSelfRelock(r *Pair) {
	r.mu.Lock()
	r.mu.Lock() // want "already holds this mutex"
	r.mu.Unlock()
	r.mu.Unlock()
}

// --- Depot layer (PR 10): depot above the shard/epoch leaves -------------

type Depot struct{ mu sync.Mutex }

type depotShard struct{ mu sync.Mutex }

type epochState struct{ mu sync.Mutex }

func depotTakesShard(d *Depot, s *depotShard) {
	d.mu.Lock()
	s.mu.Lock() // assembly: shard leaf under Depot.mu is the designed order
	s.mu.Unlock()
	d.mu.Unlock()
}

func pathThenDepot(p *DataPath, d *Depot) {
	p.lock()
	d.mu.Lock() // DepotCharge: path lock strictly before depot locks
	d.mu.Unlock()
	p.unlock()
}

func twoShardsAllowed(a, b *depotShard) {
	a.mu.Lock()
	b.mu.Lock() // distinct shard instances at one rank: spill order rules
	b.mu.Unlock()
	a.mu.Unlock()
}

func shardThenDepot(s *depotShard, d *Depot) {
	s.mu.Lock()
	d.mu.Lock() // want "lock order violation: acquiring Depot.mu while holding depotShard.mu"
	d.mu.Unlock()
	s.mu.Unlock()
}

func epochThenPath(e *epochState, p *DataPath) {
	e.mu.Lock()
	p.mu.Lock() // want "lock order violation: acquiring DataPath.mu while holding epochState.mu"
	p.mu.Unlock()
	e.mu.Unlock()
}

func depotThenFbuf(d *Depot, f *Fbuf) {
	d.mu.Lock()
	f.mu.Lock() // want "lock order violation: acquiring Fbuf.mu while holding Depot.mu"
	f.mu.Unlock()
	d.mu.Unlock()
}

func depotSelfRelock(d *Depot) {
	d.mu.Lock()
	d.mu.Lock() // want "already holds this mutex"
	d.mu.Unlock()
	d.mu.Unlock()
}
