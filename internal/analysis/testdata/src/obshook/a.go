// Package a is the obshook corpus: the hot-path nil-check discipline.
package a

import (
	"obs"
	"vm"
)

type engine struct {
	obs   *obs.Observer
	meter *vm.Meter
}

// --- Positive cases ------------------------------------------------------

func (e *engine) unguardedEmit() {
	e.obs.Emit("transfer") // want "unguarded obs.Observer.Emit"
}

func unguardedNow(o *obs.Observer) int64 {
	return o.Now() // want "unguarded obs.Observer.Now"
}

func (e *engine) unguardedObserve(v float64) {
	e.obs.Observe("latency", v) // want "unguarded obs.Observer.Observe"
}

func observerFactory() *obs.Observer { return nil }

func nonAddressableReceiver() {
	observerFactory().Emit("x") // want "non-addressable receiver"
}

func (e *engine) chargeInsideGuard() {
	if e.obs != nil {
		e.obs.Emit("transfer")
		e.meter.Charge(5) // want "Clock.Charge inside an observer guard"
	}
}

// --- Negative cases ------------------------------------------------------

func (e *engine) guardedEmit() {
	if e.obs != nil {
		e.obs.Emit("transfer")
	}
}

func guardedEarlyExit(o *obs.Observer) {
	if o == nil {
		return
	}
	o.Emit("transfer")
	o.Observe("latency", 1)
}

func (e *engine) guardedConjunction(hot bool) {
	if e.obs != nil && hot {
		e.obs.Emit("transfer")
	}
}

func freshObserver() {
	o := obs.New(64) // obs.New never returns nil: whitelisted
	o.Emit("boot")
	o.SetNow(func() int64 { return 0 }) // setup-time method: not hot-path
}

func (e *engine) chargeOutsideGuard() {
	e.meter.Charge(5) // charging simulated time is the norm outside guards
	if e.obs != nil {
		e.obs.Emit("transfer")
	}
}

// --- Span pairing: positive cases ----------------------------------------

func (e *engine) spanLeak() {
	if e.obs != nil {
		e.obs.SpanBegin("alloc", "core", 1, 4) // want "SpanBegin without a deferred SpanEnd"
	}
}

func (e *engine) spanEndInline() {
	if e.obs != nil {
		e.obs.SpanBegin("map", "core", 1, 4) // want "SpanBegin without a deferred SpanEnd"
		e.obs.SpanEnd()                      // want "SpanEnd outside a defer"
	}
}

func spanMismatchedReceivers(a, b *obs.Observer) {
	if a == nil {
		return
	}
	if b == nil {
		return
	}
	a.SpanBegin("proto", "udp", 1, 4) // want "SpanBegin without a deferred SpanEnd"
	defer b.SpanEnd()
}

func spanUnguarded(o *obs.Observer) {
	o.SpanBegin("dma", "osiris", 1, 4) // want "unguarded obs.Observer.SpanBegin"
	defer o.SpanEnd()                  // want "unguarded obs.Observer.SpanEnd"
}

func spanFreshObserverStillPairs() {
	o := obs.New(64)                    // obs.New whitelists the guard check...
	o.SpanBegin("secure", "core", 1, 4) // want "SpanBegin without a deferred SpanEnd"
	_ = o                               // ...but not the pairing check
}

// --- Span pairing: negative cases ----------------------------------------

func (e *engine) spanBracketed() {
	if e.obs != nil {
		e.obs.SpanBegin("alloc", "core", 1, 4)
		defer e.obs.SpanEnd()
	}
}

func spanBracketedLocal(o *obs.Observer) {
	if o == nil {
		return
	}
	o.SpanBegin("fault", "vm", 1, 4)
	defer o.SpanEnd()
}

func spanLiteralScopes(o *obs.Observer) func() {
	// A nested function literal is its own scope: its bracketed span does
	// not leak a diagnostic into the enclosing function.
	return func() {
		if o != nil {
			o.SpanBegin("free", "core", 1, 4)
			defer o.SpanEnd()
		}
	}
}
