// Package vm stubs fbufs/internal/vm for the errflow and obshook corpora.
package vm

type AddrSpace struct{}

func (as *AddrSpace) Write(va int, data []byte) error { return nil }
func (as *AddrSpace) Read(va int, buf []byte) error   { return nil }
func (as *AddrSpace) TouchWrite(va int) error         { return nil }
func (as *AddrSpace) TouchRead(va int) error          { return nil }

// Meter matches the simulated-time sink obshook polices.
type Meter struct{ Total int64 }

func (m *Meter) Charge(d int64) { m.Total += d }
