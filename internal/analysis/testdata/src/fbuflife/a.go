// Package a is the fbuflife corpus: every violation here crosses a
// function boundary (or a goroutine), so the function-local fbufcheck
// stays silent on this entire package — TestFbufLifeBeyondFbufcheck
// asserts exactly that, making each want below a machine-checked example
// of a bug only the interprocedural analysis can see.
package a

import "core"

// --- helpers the cases route ownership through ---------------------------

// fill writes originator data; it neither frees nor transfers.
func fill(f *core.Fbuf, d *core.Domain) {
	_ = f.Write(d, 0, nil)
}

// send hands the fbuf to another domain (immutable afterwards).
func send(mgr *core.Manager, f *core.Fbuf, from, to *core.Domain) {
	_ = mgr.Transfer(f, from, to)
}

// retire drops one domain's reference.
func retire(mgr *core.Manager, f *core.Fbuf, d *core.Domain) {
	_ = mgr.Free(f, d)
}

// guard raises protection on behalf of a receiver.
func guard(mgr *core.Manager, f *core.Fbuf, d *core.Domain) {
	_ = mgr.Secure(f, d)
}

// retireBatch frees every element of a batch.
func retireBatch(mgr *core.Manager, fs []*core.Fbuf, d *core.Domain) {
	for _, f := range fs {
		_ = mgr.Free(f, d)
	}
}

// makeBatch is an allocator helper: its result is caller-owned.
func makeBatch(p *core.DataPath, n int) []*core.Fbuf {
	bufs := make([]*core.Fbuf, n)
	_, _ = p.AllocBatch(bufs)
	return bufs
}

type stash struct{ f *core.Fbuf }

// --- interprocedural leaks ----------------------------------------------

func leakThroughHelper(p *core.DataPath, d *core.Domain) {
	f, _ := p.Alloc() // want "escapes the function with no Free, Transfer, or stored reference"
	fill(f, d)
}

func batchLeak(p *core.DataPath) {
	bufs := make([]*core.Fbuf, 4)
	_, _ = p.AllocBatch(bufs) // want "escapes the function with no Free, Transfer, or stored reference"
	_ = bufs
}

func leakFromFreshHelper(p *core.DataPath) {
	bufs := makeBatch(p, 4) // want "escapes the function with no Free, Transfer, or stored reference"
	_ = bufs
}

func cleanFree(mgr *core.Manager, p *core.DataPath, d *core.Domain) {
	f, _ := p.Alloc()
	fill(f, d)
	retire(mgr, f, d)
}

func cleanTransfer(mgr *core.Manager, p *core.DataPath, from, to *core.Domain) {
	f, _ := p.Alloc()
	fill(f, from)
	send(mgr, f, from, to)
}

func cleanStash(p *core.DataPath, s *stash) {
	f, _ := p.Alloc()
	s.f = f // ownership parked in the struct: not a leak
}

func cleanSend(p *core.DataPath, ch chan *core.Fbuf) {
	f, _ := p.Alloc()
	ch <- f // consumer now owns it
}

func cleanReturn(p *core.DataPath) (*core.Fbuf, error) {
	return p.Alloc() // caller owns the result
}

func cleanDeferFree(mgr *core.Manager, p *core.DataPath, d *core.Domain) {
	f, _ := p.Alloc()
	defer func() { _ = mgr.Free(f, d) }()
	fill(f, d)
}

func cleanDeferHelper(mgr *core.Manager, p *core.DataPath, d *core.Domain) {
	f, _ := p.Alloc()
	defer retire(mgr, f, d)
	fill(f, d)
}

func cleanBatchElements(mgr *core.Manager, p *core.DataPath, d *core.Domain) {
	bufs := make([]*core.Fbuf, 4)
	_, _ = p.AllocBatch(bufs)
	for _, f := range bufs {
		_ = mgr.Free(f, d) // one free per element, one element per iteration
	}
}

func loopAllocFree(mgr *core.Manager, p *core.DataPath, d *core.Domain) {
	for i := 0; i < 8; i++ {
		f, err := p.Alloc()
		if err != nil {
			return
		}
		fill(f, d)
		retire(mgr, f, d)
	}
}

// --- use-after-transfer / use-after-free through helpers -----------------

func writeAfterHelperTransfer(mgr *core.Manager, p *core.DataPath, from, to *core.Domain) {
	f, _ := p.Alloc()
	send(mgr, f, from, to)
	_ = f.Write(from, 0, nil) // want "write to fbuf after Transfer"
}

func writeAfterHelperSecure(mgr *core.Manager, p *core.DataPath, d *core.Domain) {
	f, _ := p.Alloc()
	guard(mgr, f, d)
	_ = f.Write(d, 0, nil) // want "write to fbuf after Secure"
	retire(mgr, f, d)
}

func writeAfterHelperFree(mgr *core.Manager, p *core.DataPath, d *core.Domain) {
	f, _ := p.Alloc()
	retire(mgr, f, d)
	_ = f.Write(d, 0, nil) // want "use of fbuf after Free"
}

func writeThenTransferHelper(mgr *core.Manager, p *core.DataPath, from, to *core.Domain) {
	f, _ := p.Alloc()
	_ = f.Write(from, 0, nil) // fill first: the protocol's happy path
	send(mgr, f, from, to)
}

// --- double-free through helpers -----------------------------------------

func doubleFreeThroughHelper(mgr *core.Manager, p *core.DataPath, d *core.Domain) {
	f, _ := p.Alloc()
	retire(mgr, f, d)
	retire(mgr, f, d) // want "fbuf freed twice in the same domain"
}

func freeByEachDomainHelper(mgr *core.Manager, p *core.DataPath, a, b *core.Domain) {
	f, _ := p.Alloc()
	retire(mgr, f, a)
	retire(mgr, f, b) // each domain drops its own reference: fine
}

func freeInExclusiveArms(mgr *core.Manager, p *core.DataPath, d *core.Domain, early bool) {
	f, _ := p.Alloc()
	if early {
		retire(mgr, f, d)
	} else {
		retire(mgr, f, d) // exclusive arms: only one free executes
	}
}

func dupRefSecondFree(mgr *core.Manager, p *core.DataPath, a *core.Domain) {
	f, _ := p.Alloc()
	_ = mgr.DupRef(f, a)
	retire(mgr, f, a)
	retire(mgr, f, a) // the DupRef credit licenses the second drop
}

// --- batch-slice element ownership ---------------------------------------

func batchElementDoubleFree(mgr *core.Manager, p *core.DataPath, d *core.Domain) {
	bufs := make([]*core.Fbuf, 4)
	_, _ = p.AllocBatch(bufs)
	retireBatch(mgr, bufs, d)
	_ = mgr.Free(bufs[0], d) // want "fbuf freed twice in the same domain"
}

func freeBatchThenElements(mgr *core.Manager, p *core.DataPath, d *core.Domain) {
	bufs := make([]*core.Fbuf, 2)
	_, _ = p.AllocBatch(bufs)
	_ = mgr.FreeBatch(bufs, d)
	for _, f := range bufs {
		_ = mgr.Free(f, d) // want "fbuf freed twice in the same domain"
	}
}

func elementsThenFreeBatch(mgr *core.Manager, p *core.DataPath, d *core.Domain) {
	bufs := make([]*core.Fbuf, 2)
	_, _ = p.AllocBatch(bufs)
	for _, f := range bufs {
		_ = mgr.Free(f, d)
	}
	_ = mgr.FreeBatch(bufs, d) // want "fbuf freed twice in the same domain"
}

// --- goroutine handoff ----------------------------------------------------

func handoffWithoutTransfer(p *core.DataPath, d *core.Domain) {
	f, _ := p.Alloc()
	go fill(f, d) // want "fbuf handed to goroutine while this domain still owns it"
}

func handoffAfterTransfer(mgr *core.Manager, p *core.DataPath, from, to *core.Domain) {
	f, _ := p.Alloc()
	send(mgr, f, from, to)
	go fill(f, to) // transferred first: the handoff has a documented transfer point
}
