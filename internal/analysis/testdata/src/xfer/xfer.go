// Package xfer stubs fbufs/internal/xfer for the errflow corpus.
package xfer

// Adaptive matches the degradation-capable transfer facility: Hop returns
// an error that signals real (non-alloc) failures and must not be dropped.
type Adaptive struct{}

func (a *Adaptive) Hop(payload []byte) error { return nil }
