// Package core is a shape-faithful stub of fbufs/internal/core for the
// analyzer corpus: the analyzers match API by package *name* plus
// receiver type and method signature, so this stub exercises them
// exactly as the real package does without importing the simulator.
package core

// Domain stands in for *domain.Domain.
type Domain struct{ Name string }

// Options mirrors core.Options.
type Options struct {
	Volatile bool
	Cached   bool
}

func CachedVolatile() Options      { return Options{Volatile: true, Cached: true} }
func CachedNonVolatile() Options   { return Options{Cached: true} }
func Uncached() Options            { return Options{Volatile: true} }
func UncachedNonVolatile() Options { return Options{} }

type Manager struct{}

type DataPath struct{}

type Fbuf struct{}

func (m *Manager) NewPath(name string, opts Options, fbufPages int, domains ...*Domain) (*DataPath, error) {
	return &DataPath{}, nil
}

func (m *Manager) AllocUncached(orig *Domain, pages int, opts Options) (*Fbuf, error) {
	return &Fbuf{}, nil
}

func (m *Manager) AllocUncachedFill(orig *Domain, pages int, opts Options, fill int) (*Fbuf, error) {
	return &Fbuf{}, nil
}

func (m *Manager) Transfer(f *Fbuf, from, to *Domain) error { return nil }
func (m *Manager) Secure(f *Fbuf, requester *Domain) error  { return nil }
func (m *Manager) Free(f *Fbuf, d *Domain) error            { return nil }
func (m *Manager) FreeBatch(fs []*Fbuf, d *Domain) error    { return nil }
func (m *Manager) DupRef(f *Fbuf, d *Domain) error          { return nil }

func (p *DataPath) Alloc() (*Fbuf, error) { return &Fbuf{}, nil }

func (p *DataPath) AllocBatch(out []*Fbuf) (int, error) {
	for i := range out {
		out[i] = &Fbuf{}
	}
	return len(out), nil
}

// Magazine mirrors core.Magazine (per-CPU alloc/free caching).
type Magazine struct{}

func (p *DataPath) NewMagazine(capacity int) *Magazine { return &Magazine{} }
func (g *Magazine) Alloc() (*Fbuf, error)              { return &Fbuf{}, nil }
func (g *Magazine) Free(f *Fbuf, d *Domain) error      { return nil }
func (g *Magazine) Drain()                             {}

func (f *Fbuf) Write(d *Domain, off int, p []byte) error { return nil }
func (f *Fbuf) Read(d *Domain, off int, p []byte) error  { return nil }
func (f *Fbuf) TouchWrite(d *Domain) error               { return nil }
func (f *Fbuf) TouchRead(d *Domain) error                { return nil }
func (f *Fbuf) DMAWrite(off int, p []byte) error         { return nil }
func (f *Fbuf) DMARead(off int, p []byte) error          { return nil }
func (f *Fbuf) Secured() bool                            { return false }
