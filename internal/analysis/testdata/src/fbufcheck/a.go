// Package a is the fbufcheck corpus: positive cases carry a `// want`
// on the offending line; lines without one assert silence.
package a

import "core"

// --- Rule 1: write after Transfer ---------------------------------------

func writeAfterTransfer(mgr *core.Manager, f *core.Fbuf, from, to *core.Domain) {
	_ = mgr.Transfer(f, from, to)
	_ = f.Write(from, 0, nil) // want "write to fbuf after Transfer"
}

func touchWriteAfterTransfer(mgr *core.Manager, f *core.Fbuf, from, to *core.Domain) {
	_ = mgr.Transfer(f, from, to)
	_ = f.TouchWrite(from) // want "write to fbuf after Transfer"
}

func writeBeforeTransfer(mgr *core.Manager, f *core.Fbuf, from, to *core.Domain) {
	_ = f.Write(from, 0, nil) // fill, then hand off: the protocol's happy path
	_ = mgr.Transfer(f, from, to)
}

func writeAfterRealloc(mgr *core.Manager, p *core.DataPath, f *core.Fbuf, from, to *core.Domain) {
	_ = mgr.Transfer(f, from, to)
	f, _ = p.Alloc()          // a fresh buffer: the old one is out of scope
	_ = f.Write(from, 0, nil) // no finding: f was reassigned
}

func writeInOtherBranch(mgr *core.Manager, f *core.Fbuf, from, to *core.Domain, send bool) {
	if send {
		_ = mgr.Transfer(f, from, to)
	} else {
		_ = f.Write(from, 0, nil) // exclusive arms are never ordered
	}
}

// knownFalsePositive documents the analyzer's deliberate imprecision:
// the may-precede order treats an event inside a conditional as
// preceding everything after it, so a transfer that dynamically may not
// have happened still poisons a later write. Restructure such code (move
// the write into the else arm, or reallocate) rather than suppressing.
func knownFalsePositive(mgr *core.Manager, f *core.Fbuf, from, to *core.Domain, send bool) {
	if send {
		_ = mgr.Transfer(f, from, to)
		return // dynamically the write below never follows the transfer...
	}
	_ = f.Write(from, 0, nil) // want "write to fbuf after Transfer"
}

// --- Rule 2: volatile read without Secure --------------------------------

func volatileReadUnsecured(mgr *core.Manager, prod, cons *core.Domain, buf []byte) {
	path, _ := mgr.NewPath("p", core.CachedVolatile(), 4, prod, cons)
	f, _ := path.Alloc()
	_ = mgr.Transfer(f, prod, cons)
	_ = f.Read(cons, 0, buf) // want "read of volatile fbuf by receiver without Secure"
}

func volatileReadSecured(mgr *core.Manager, prod, cons *core.Domain, buf []byte) {
	path, _ := mgr.NewPath("p", core.CachedVolatile(), 4, prod, cons)
	f, _ := path.Alloc()
	_ = mgr.Transfer(f, prod, cons)
	_ = mgr.Secure(f, cons)
	_ = f.Read(cons, 0, buf) // secured first: no finding
}

func volatileReadAcknowledged(mgr *core.Manager, prod, cons *core.Domain, buf []byte) {
	path, _ := mgr.NewPath("p", core.CachedVolatile(), 4, prod, cons)
	f, _ := path.Alloc()
	_ = mgr.Transfer(f, prod, cons)
	if f.Secured() {
		_ = f.Read(cons, 0, buf) // explicit Secured() branch acknowledges volatility
	}
}

func nonVolatileRead(mgr *core.Manager, prod, cons *core.Domain, buf []byte) {
	path, _ := mgr.NewPath("p", core.CachedNonVolatile(), 4, prod, cons)
	f, _ := path.Alloc()
	_ = mgr.Transfer(f, prod, cons)
	_ = f.Read(cons, 0, buf) // non-volatile: transfer already revoked the writer
}

func originatorRead(mgr *core.Manager, prod, cons *core.Domain, buf []byte) {
	path, _ := mgr.NewPath("p", core.CachedVolatile(), 4, prod, cons)
	f, _ := path.Alloc()
	_ = mgr.Transfer(f, prod, cons)
	_ = f.Read(prod, 0, buf) // the originator trusts its own writes
}

func volatileViaOptionsVar(mgr *core.Manager, prod, cons *core.Domain, buf []byte) {
	opts := core.Options{Volatile: true, Cached: true}
	path, _ := mgr.NewPath("p", opts, 4, prod, cons)
	f, _ := path.Alloc()
	_ = mgr.Transfer(f, prod, cons)
	_ = f.Read(cons, 0, buf) // want "read of volatile fbuf by receiver without Secure"
}

// --- Rule 3: double Free -------------------------------------------------

func doubleFree(mgr *core.Manager, f *core.Fbuf, d *core.Domain) {
	_ = mgr.Free(f, d)
	_ = mgr.Free(f, d) // want "double Free of fbuf by the same domain"
}

func freeByEachDomain(mgr *core.Manager, f *core.Fbuf, a, b *core.Domain) {
	_ = mgr.Free(f, a)
	_ = mgr.Free(f, b) // each holder drops its own reference: fine
}

func freeReallocFree(mgr *core.Manager, p *core.DataPath, d *core.Domain) {
	f, _ := p.Alloc()
	_ = mgr.Free(f, d)
	f, _ = p.Alloc() // a different buffer under the same name
	_ = mgr.Free(f, d)
}

func freeInBranches(mgr *core.Manager, f *core.Fbuf, d *core.Domain, early bool) {
	if early {
		_ = mgr.Free(f, d)
	} else {
		_ = mgr.Free(f, d) // exclusive arms: only one free executes
	}
}
