// Batch-API corpus for fbufcheck (PR 4's AllocBatch/FreeBatch surface):
// FreeBatch covers every element of its slice, AllocBatch resets them,
// and concrete distinct elements never alias each other.
package a

import "core"

func doubleFreeBatch(mgr *core.Manager, p *core.DataPath, d *core.Domain) {
	bufs := make([]*core.Fbuf, 2)
	_, _ = p.AllocBatch(bufs)
	_ = mgr.FreeBatch(bufs, d)
	_ = mgr.FreeBatch(bufs, d) // want "double Free of fbuf by the same domain"
}

func freeBatchThenElement(mgr *core.Manager, p *core.DataPath, d *core.Domain) {
	bufs := make([]*core.Fbuf, 2)
	_, _ = p.AllocBatch(bufs)
	_ = mgr.FreeBatch(bufs, d)
	_ = mgr.Free(bufs[0], d) // want "double Free of fbuf by the same domain"
}

func elementThenFreeBatch(mgr *core.Manager, p *core.DataPath, d *core.Domain) {
	bufs := make([]*core.Fbuf, 2)
	_, _ = p.AllocBatch(bufs)
	_ = mgr.Free(bufs[1], d)
	_ = mgr.FreeBatch(bufs, d) // want "double Free of fbuf by the same domain"
}

func writeAfterTransferElement(mgr *core.Manager, p *core.DataPath, from, to *core.Domain) {
	bufs := make([]*core.Fbuf, 2)
	_, _ = p.AllocBatch(bufs)
	_ = mgr.Transfer(bufs[1], from, to)
	_ = bufs[1].Write(from, 0, nil) // want "write to fbuf after Transfer"
}

func writeOtherElementAfterTransfer(mgr *core.Manager, p *core.DataPath, from, to *core.Domain) {
	bufs := make([]*core.Fbuf, 2)
	_, _ = p.AllocBatch(bufs)
	_ = mgr.Transfer(bufs[1], from, to)
	_ = bufs[0].Write(from, 0, nil) // a different element: still the originator's
}

func distinctElementsFree(mgr *core.Manager, p *core.DataPath, d *core.Domain) {
	bufs := make([]*core.Fbuf, 2)
	_, _ = p.AllocBatch(bufs)
	_ = mgr.Free(bufs[0], d)
	_ = mgr.Free(bufs[1], d) // distinct concrete elements: two buffers, two frees
}

func sameIndexedElementFree(mgr *core.Manager, p *core.DataPath, d *core.Domain, i int) {
	bufs := make([]*core.Fbuf, 2)
	_, _ = p.AllocBatch(bufs)
	_ = mgr.Free(bufs[i], d)
	_ = mgr.Free(bufs[i], d) // want "double Free of fbuf by the same domain"
}

func allocBatchResets(mgr *core.Manager, p *core.DataPath, d *core.Domain) {
	bufs := make([]*core.Fbuf, 2)
	_, _ = p.AllocBatch(bufs)
	_ = mgr.FreeBatch(bufs, d)
	_, _ = p.AllocBatch(bufs) // refilled: these are fresh buffers
	_ = mgr.FreeBatch(bufs, d)
}

func freeBatchByEachDomain(mgr *core.Manager, p *core.DataPath, a, b *core.Domain) {
	bufs := make([]*core.Fbuf, 2)
	_, _ = p.AllocBatch(bufs)
	_ = mgr.FreeBatch(bufs, a)
	_ = mgr.FreeBatch(bufs, b) // each domain drops its own references
}
