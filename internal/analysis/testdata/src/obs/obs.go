// Package obs stubs fbufs/internal/obs for the obshook corpus.
package obs

type Observer struct{}

// New never returns nil — obshook whitelists receivers provably
// assigned from it.
func New(eventCap int) *Observer { return &Observer{} }

func (o *Observer) Emit(kind string)               {}
func (o *Observer) Observe(name string, v float64) {}
func (o *Observer) Now() int64                     { return 0 }
func (o *Observer) SetNow(now func() int64)        {}

func (o *Observer) SpanBegin(stage, layer string, actor int, arg int64) {}
func (o *Observer) SpanEnd()                                            {}
