package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as a file and returns the body of its first function.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fd.Body
		}
	}
	t.Fatal("no function body")
	return nil
}

// reaches reports whether to is reachable from from by successor edges.
func reaches(from, to *CFGBlock) bool {
	seen := map[*CFGBlock]bool{}
	var walk func(b *CFGBlock) bool
	walk = func(b *CFGBlock) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestCFGStraightLine(t *testing.T) {
	g := buildCFG(parseBody(t, `package p
func f() { x := 1; _ = x }`))
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("Entry does not reach Exit")
	}
	if len(g.Entry.Nodes) != 2 {
		t.Errorf("entry block has %d nodes, want 2", len(g.Entry.Nodes))
	}
}

func TestCFGIfElse(t *testing.T) {
	g := buildCFG(parseBody(t, `package p
func f(c bool) { if c { println(1) } else { println(2) }; println(3) }`))
	// Find the branching block: Cond set, exactly two successors.
	var cond *CFGBlock
	for _, b := range g.Blocks {
		if b.Cond != nil {
			cond = b
		}
	}
	if cond == nil {
		t.Fatal("no block with Cond set")
	}
	if len(cond.Succs) != 2 {
		t.Fatalf("cond block has %d successors, want 2 (true/false)", len(cond.Succs))
	}
	if cond.Succs[0] == cond.Succs[1] {
		t.Error("then and else arms share a block")
	}
	// Both arms rejoin before Exit.
	for i, arm := range cond.Succs {
		if !reaches(arm, g.Exit) {
			t.Errorf("arm %d does not reach Exit", i)
		}
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	g := buildCFG(parseBody(t, `package p
func f() { for i := 0; i < 3; i++ { println(i) } }`))
	// The loop head (Cond set) must be reachable from its own body: a back
	// edge is what lets the dataflow fixpoint see second-iteration facts.
	var head *CFGBlock
	for _, b := range g.Blocks {
		if b.Cond != nil {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no loop head with Cond")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("loop head has %d successors, want 2", len(head.Succs))
	}
	body := head.Succs[0]
	if !reaches(body, head) {
		t.Error("no back edge: loop body does not reach the head")
	}
	if !reaches(g.Entry, g.Exit) {
		t.Error("loop exit path missing")
	}
}

func TestCFGRangeHead(t *testing.T) {
	g := buildCFG(parseBody(t, `package p
func f(xs []int) { for _, x := range xs { println(x) } }`))
	var head *CFGBlock
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				head = b
			}
		}
	}
	if head == nil {
		t.Fatal("no block carries the RangeStmt binding node")
	}
	if head.Cond != nil {
		t.Error("range head must not claim a boolean Cond")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("range head has %d successors, want 2 (body, after)", len(head.Succs))
	}
	if !reaches(head.Succs[0], head) {
		t.Error("range body has no back edge to the head")
	}
}

func TestCFGReturnBreakGoto(t *testing.T) {
	g := buildCFG(parseBody(t, `package p
func f(c bool) {
	if c {
		return
	}
loop:
	for {
		if c {
			break loop
		}
		goto done
	}
done:
	println(0)
}`))
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("Entry does not reach Exit")
	}
	// The infinite for{} must not strand the exit: break and goto both
	// leave it. Verify via reachableBlocks that Exit is in the order.
	order := g.reachableBlocks()
	if len(order) == 0 || order[0] != g.Entry {
		t.Fatal("reverse postorder must start at Entry")
	}
	foundExit := false
	for _, b := range order {
		if b == g.Exit {
			foundExit = true
		}
	}
	if !foundExit {
		t.Error("Exit unreachable despite break/goto escape paths")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := buildCFG(parseBody(t, `package p
func f(x int) {
	switch x {
	case 1:
		println(1)
		fallthrough
	case 2:
		println(2)
	default:
		println(3)
	}
}`))
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("Entry does not reach Exit")
	}
	// With a default present, the dispatch block must not edge straight to
	// the after block: some case always runs. The dispatch block is the one
	// holding the tag expression x with >= 3 successors.
	var dispatch *CFGBlock
	for _, b := range g.Blocks {
		if len(b.Succs) >= 3 {
			dispatch = b
		}
	}
	if dispatch == nil {
		t.Fatal("no dispatch block with one successor per case")
	}
	if len(dispatch.Succs) != 3 {
		t.Errorf("dispatch has %d successors, want 3 (two cases + default)", len(dispatch.Succs))
	}
}

func TestCFGDefersCollected(t *testing.T) {
	g := buildCFG(parseBody(t, `package p
func f(c bool) {
	defer println(1)
	if c {
		defer println(2)
	}
}`))
	if len(g.Defers) != 2 {
		t.Fatalf("collected %d defers, want 2 (including the conditional one)", len(g.Defers))
	}
	if !reaches(g.Entry, g.Exit) {
		t.Error("Entry does not reach Exit")
	}
}

func TestCFGReversePostorder(t *testing.T) {
	g := buildCFG(parseBody(t, `package p
func f(c bool) {
	if c {
		println(1)
	}
	println(2)
}`))
	order := g.reachableBlocks()
	pos := map[*CFGBlock]int{}
	for i, b := range order {
		pos[b] = i
	}
	if order[0] != g.Entry {
		t.Fatal("RPO must begin at Entry")
	}
	// In RPO every forward edge goes left to right (back edges exempt; this
	// graph has none).
	for _, b := range order {
		for _, s := range b.Succs {
			if ps, ok := pos[s]; ok && ps < pos[b] {
				t.Errorf("forward edge %d->%d violates reverse postorder", b.Index, s.Index)
			}
		}
	}
}
