package analysis

import "testing"

func TestFbufCheck(t *testing.T) {
	RunTest(t, "testdata/src", FbufCheck, "fbufcheck")
}
