package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ObsHook enforces the observability discipline PR 1 established for hot
// paths: every obs.Observer hot-path call (Emit, Observe, Now) must sit
// behind the single nil-check pattern —
//
//	if m.obs != nil { m.obs.Emit(...) }        // enclosing guard
//	if o == nil { return }; o.Emit(...)        // early-exit guard
//
// — so that observation is free when disabled, and observer-guarded
// blocks must charge zero simulated time (no Clock.Charge inside a guard:
// tracing must not perturb the simulation it observes).
//
// Receivers that provably come from the obs.New constructor in the same
// function are whitelisted: obs.New never returns nil.
var ObsHook = &Analyzer{
	Name: "obshook",
	Doc:  "require the nil-check pattern around hot-path obs.Observer calls and forbid simulated-time charges inside observer guards",
	Run:  runObsHook,
}

// obsHotMethods are the Observer methods that appear on per-operation hot
// paths. Setup-time methods (SetNow, constructors) are exempt.
var obsHotMethods = map[string]bool{
	"Emit": true, "Observe": true, "Now": true,
}

func runObsHook(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for body := range functionBodies(file) {
			checkObsBody(pass, body)
		}
	}
	return nil
}

func checkObsBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		switch {
		case recvTypeIs(fn, "obs", "Observer") && obsHotMethods[fn.Name()]:
			checkObserverCall(pass, body, call, fn)
		case fn.Name() == "Charge" &&
			(recvTypeIs(fn, "vm", "Sink") || recvTypeIs(fn, "vm", "ClockSink") || recvTypeIs(fn, "vm", "Meter")):
			checkChargeInGuard(pass, body, call)
		}
		return true
	})
}

func checkObserverCall(pass *Pass, body *ast.BlockStmt, call *ast.CallExpr, fn *types.Func) {
	info := pass.TypesInfo
	recv := receiverOf(call)
	key := exprKey(info, recv)
	if key == "" {
		// Receiver is a call result or indexing — not the standard
		// pattern; require restructuring into a guarded local.
		pass.Reportf(call.Pos(),
			"obs.Observer.%s on a non-addressable receiver: bind the observer to a local and guard it with the nil-check pattern", fn.Name())
		return
	}
	// Whitelist: receivers provably from obs.New are never nil.
	if obj := identObj(info, recv); obj != nil {
		fromNew := assignedFromCall(info, body, obj, func(f *types.Func) bool {
			return pkgFuncIs(f, "obs", "New")
		})
		if fromNew {
			return
		}
	}
	if dominatedByGuard(info, body, pathTo(body, call.Pos()), key) {
		return
	}
	pass.Reportf(call.Pos(),
		"unguarded obs.Observer.%s on a hot path: wrap in `if %s != nil { ... }` (or early-return on nil) so disabled observation costs nothing",
		fn.Name(), renderExpr(recv))
}

// checkChargeInGuard flags Clock.Charge calls that occur inside a block
// guarded by an observer nil-check: observation must not charge simulated
// time, or enabling tracing changes the measured system.
func checkChargeInGuard(pass *Pass, body *ast.BlockStmt, call *ast.CallExpr) {
	info := pass.TypesInfo
	nodePath := pathTo(body, call.Pos())
	for i, s := range nodePath {
		ifs, ok := s.(*ast.IfStmt)
		if !ok {
			continue
		}
		inThen := i+1 < len(nodePath) && nodePath[i+1] == ast.Stmt(ifs.Body)
		if !inThen {
			continue
		}
		guardsObserver := condMentions(ifs.Cond, func(e ast.Expr) bool {
			x, ok := isNilCompare(e, token.NEQ)
			if !ok {
				return false
			}
			t := info.TypeOf(x)
			named := namedOf(t)
			return named != nil && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Name() == "obs" && named.Obj().Name() == "Observer"
		})
		if guardsObserver {
			pass.Reportf(call.Pos(),
				"Clock.Charge inside an observer guard: observation must cost zero simulated time, or tracing perturbs the run it measures")
			return
		}
	}
}

// renderExpr prints a selector chain for a diagnostic message.
func renderExpr(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return renderExpr(e.X) + "." + e.Sel.Name
	}
	return "obs"
}
