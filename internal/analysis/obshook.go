package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ObsHook enforces the observability discipline PR 1 established for hot
// paths: every obs.Observer hot-path call (Emit, Observe, Now) must sit
// behind the single nil-check pattern —
//
//	if m.obs != nil { m.obs.Emit(...) }        // enclosing guard
//	if o == nil { return }; o.Emit(...)        // early-exit guard
//
// — so that observation is free when disabled, and observer-guarded
// blocks must charge zero simulated time (no Clock.Charge inside a guard:
// tracing must not perturb the simulation it observes).
//
// Receivers that provably come from the obs.New constructor in the same
// function are whitelisted: obs.New never returns nil.
//
// It also enforces the span bracketing discipline: a SpanBegin in a
// function must be paired with a deferred SpanEnd on the same receiver
// (`defer o.SpanEnd()`), so every return path — including error returns
// added later — closes the span; an inline (non-deferred) SpanEnd is
// flagged for the same reason.
var ObsHook = &Analyzer{
	Name: "obshook",
	Doc:  "require the nil-check pattern around hot-path obs.Observer calls, forbid simulated-time charges inside observer guards, and require SpanBegin to pair with a deferred SpanEnd",
	Run:  runObsHook,
}

// obsHotMethods are the Observer methods that appear on per-operation hot
// paths. Setup-time methods (SetNow, constructors) are exempt; the
// nil-safe trace-lifecycle wrappers (BeginTrace, EndTrace, ResumeTrace,
// SpanRecord, …) are deliberately callable unguarded.
var obsHotMethods = map[string]bool{
	"Emit": true, "Observe": true, "Now": true,
	"SpanBegin": true, "SpanEnd": true,
}

func runObsHook(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for body := range functionBodies(file) {
			checkObsBody(pass, body)
			checkSpanPairing(pass, body)
		}
	}
	return nil
}

func checkObsBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		switch {
		case recvTypeIs(fn, "obs", "Observer") && obsHotMethods[fn.Name()]:
			checkObserverCall(pass, body, call, fn)
		case fn.Name() == "Charge" &&
			(recvTypeIs(fn, "vm", "Sink") || recvTypeIs(fn, "vm", "ClockSink") || recvTypeIs(fn, "vm", "Meter")):
			checkChargeInGuard(pass, body, call)
		}
		return true
	})
}

func checkObserverCall(pass *Pass, body *ast.BlockStmt, call *ast.CallExpr, fn *types.Func) {
	info := pass.TypesInfo
	recv := receiverOf(call)
	key := exprKey(info, recv)
	if key == "" {
		// Receiver is a call result or indexing — not the standard
		// pattern; require restructuring into a guarded local.
		pass.Reportf(call.Pos(),
			"obs.Observer.%s on a non-addressable receiver: bind the observer to a local and guard it with the nil-check pattern", fn.Name())
		return
	}
	// Whitelist: receivers provably from obs.New are never nil.
	if obj := identObj(info, recv); obj != nil {
		fromNew := assignedFromCall(info, body, obj, func(f *types.Func) bool {
			return pkgFuncIs(f, "obs", "New")
		})
		if fromNew {
			return
		}
	}
	if dominatedByGuard(info, body, pathTo(body, call.Pos()), key) {
		return
	}
	pass.Reportf(call.Pos(),
		"unguarded obs.Observer.%s on a hot path: wrap in `if %s != nil { ... }` (or early-return on nil) so disabled observation costs nothing",
		fn.Name(), renderExpr(recv))
}

// checkChargeInGuard flags Clock.Charge calls that occur inside a block
// guarded by an observer nil-check: observation must not charge simulated
// time, or enabling tracing changes the measured system.
func checkChargeInGuard(pass *Pass, body *ast.BlockStmt, call *ast.CallExpr) {
	info := pass.TypesInfo
	nodePath := pathTo(body, call.Pos())
	for i, s := range nodePath {
		ifs, ok := s.(*ast.IfStmt)
		if !ok {
			continue
		}
		inThen := i+1 < len(nodePath) && nodePath[i+1] == ast.Stmt(ifs.Body)
		if !inThen {
			continue
		}
		guardsObserver := condMentions(ifs.Cond, func(e ast.Expr) bool {
			x, ok := isNilCompare(e, token.NEQ)
			if !ok {
				return false
			}
			t := info.TypeOf(x)
			named := namedOf(t)
			return named != nil && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Name() == "obs" && named.Obj().Name() == "Observer"
		})
		if guardsObserver {
			pass.Reportf(call.Pos(),
				"Clock.Charge inside an observer guard: observation must cost zero simulated time, or tracing perturbs the run it measures")
			return
		}
	}
}

// checkSpanPairing enforces the span bracketing discipline within one
// function body: every obs.Observer.SpanBegin must have a deferred
// SpanEnd on the same receiver (so all return paths close the span), and
// SpanEnd may only appear under a defer. Nested function literals are
// separate scopes (inspectShallow skips them; functionBodies yields each
// one on its own).
func checkSpanPairing(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	type beginSite struct {
		call *ast.CallExpr
		key  string
	}
	var begins []beginSite
	var inlineEnds []*ast.CallExpr
	deferredEnds := make(map[string]bool)
	deferredCalls := make(map[*ast.CallExpr]bool)

	spanMethod := func(call *ast.CallExpr) string {
		fn := calleeFunc(info, call)
		if fn == nil || !recvTypeIs(fn, "obs", "Observer") {
			return ""
		}
		return fn.Name()
	}

	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// Pre-order: mark the deferred call before ast.Inspect
			// descends into it, so the CallExpr case below skips it.
			if n.Call != nil && spanMethod(n.Call) == "SpanEnd" {
				deferredCalls[n.Call] = true
				deferredEnds[exprKey(info, receiverOf(n.Call))] = true
			}
		case *ast.CallExpr:
			switch spanMethod(n) {
			case "SpanBegin":
				begins = append(begins, beginSite{n, exprKey(info, receiverOf(n))})
			case "SpanEnd":
				if !deferredCalls[n] {
					inlineEnds = append(inlineEnds, n)
				}
			}
		}
		return true
	})

	for _, b := range begins {
		if !deferredEnds[b.key] {
			pass.Reportf(b.call.Pos(),
				"SpanBegin without a deferred SpanEnd on %s in this function: add `defer %s.SpanEnd()` so every return path closes the span",
				renderExpr(receiverOf(b.call)), renderExpr(receiverOf(b.call)))
		}
	}
	for _, c := range inlineEnds {
		pass.Reportf(c.Pos(),
			"SpanEnd outside a defer: use `defer %s.SpanEnd()` so early returns still close the span",
			renderExpr(receiverOf(c)))
	}
}

// renderExpr prints a selector chain for a diagnostic message.
func renderExpr(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return renderExpr(e.X) + "." + e.Sel.Name
	}
	return "obs"
}
