package analysis

import (
	"encoding/json"
	"go/token"
	"io"
	"sort"
)

// SARIF 2.1.0 output — the minimal profile CI archives as a build
// artifact and code-scanning UIs ingest. One run, one driver (fbufvet),
// one reportingDescriptor per analyzer, one result per diagnostic.
// Everything is emitted in deterministic order (rules sorted by id,
// results already position-sorted by RunAnalyzers) so the document is
// byte-stable for a given tree — which is what lets the golden test
// diff it exactly.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	Version        string      `json:"version"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF encodes diags as one SARIF 2.1.0 document. The rule table
// always lists the full registered suite (sorted by name), so a clean
// run still documents what was checked.
func WriteSARIF(w io.Writer, fset *token.FileSet, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(All()))
	index := map[string]int{}
	for _, a := range All() {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: firstLine(a.Doc)},
		})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	for i, r := range rules {
		index[r.ID] = i
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		idx := -1
		if i, ok := index[d.Category]; ok {
			idx = i
		}
		results = append(results, sarifResult{
			RuleID:    d.Category,
			RuleIndex: idx,
			Level:     "warning",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: pos.Filename},
					Region:           sarifRegion{StartLine: pos.Line, StartColumn: pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:    "fbufvet",
				Version: "1.0.0",
				Rules:   rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(log)
}
