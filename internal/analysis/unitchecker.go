package analysis

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"
)

// This file implements the `go vet -vettool` protocol (the same contract
// golang.org/x/tools/go/analysis/unitchecker satisfies) on the standard
// library alone. cmd/go drives a vettool in three ways:
//
//	tool -V=full          → print a version line for the build cache
//	tool -flags           → print supported flags as JSON
//	tool <flags> foo.cfg  → analyze one package described by the cfg
//
// The cfg is JSON with the fields of cmd/go/internal/work.vetConfig;
// dependency type information comes from the compiled export data listed
// in PackageFile, read through the gc importer's lookup hook.

// vetConfig mirrors the JSON written by cmd/go for each vet action. Only
// the fields fbufvet consumes are listed; unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
	GoVersion                 string
}

// vetFlag is one entry of the -flags JSON handshake.
type vetFlag struct {
	Name  string
	Bool  bool
	Usage string
}

// VetMain is the entry point for cmd/fbufvet. It never returns.
func VetMain() {
	progName := "fbufvet"
	args := os.Args[1:]

	// Handshake 1: version for the build cache. cmd/go requires
	// `<name> version <ver>` (three fields; a "devel" version must end
	// in buildID=...). The tool name check is waived for vettools.
	for _, a := range args {
		if a == "-V=full" || a == "-V" {
			fmt.Printf("%s version 1.0.0\n", progName)
			os.Exit(0)
		}
	}

	fs := flag.NewFlagSet(progName, flag.ExitOnError)
	enabled := map[string]*bool{}
	for _, a := range All() {
		enabled[a.Name] = fs.Bool(a.Name, true, firstLine(a.Doc))
	}
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	sarifOut := fs.Bool("sarif", false, "emit diagnostics as SARIF 2.1.0 on stdout")

	// Handshake 2: advertise flags so `go vet -fbufcheck=false` works.
	for _, a := range args {
		if a == "-flags" {
			var out []vetFlag
			for _, an := range All() {
				out = append(out, vetFlag{Name: an.Name, Bool: true, Usage: firstLine(an.Doc)})
			}
			out = append(out, vetFlag{Name: "json", Bool: true, Usage: "emit diagnostics as JSON"})
			out = append(out, vetFlag{Name: "sarif", Bool: true, Usage: "emit diagnostics as SARIF 2.1.0 on stdout"})
			sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
			if err := json.NewEncoder(os.Stdout).Encode(out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			os.Exit(0)
		}
	}

	if err := fs.Parse(args); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var run []*Analyzer
	for _, a := range All() {
		if *enabled[a.Name] {
			run = append(run, a)
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		os.Exit(runUnitChecker(rest[0], run, *jsonOut, *sarifOut))
	}
	// Standalone mode: fbufvet [patterns] run from inside the module.
	os.Exit(runStandalone(rest, run, *jsonOut, *sarifOut))
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// runUnitChecker analyzes the single package described by cfgPath,
// printing findings in file:line:col form. Exit 0 on clean, 2 on
// findings, 1 on internal error — the codes cmd/go expects.
func runUnitChecker(cfgPath string, analyzers []*Analyzer, jsonOut, sarifOut bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", cfgPath, err)
		return 1
	}

	// cmd/go treats the vetx facts file as the action's output and
	// requires it to exist even when we have no facts to share.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("fbufvet-no-facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: facts only, no diagnostics wanted
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := NewTypesInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(compiler, build.Default.GOARCH),
	}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "%s: typecheck: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := RunAnalyzers(fset, files, pkg, info, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if sarifOut {
		if err := WriteSARIF(os.Stdout, fset, diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if len(diags) == 0 {
			return 0
		}
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	printDiagnostics(os.Stderr, fset, diags, jsonOut, cfg.ImportPath)
	return 2
}

// runStandalone analyzes module packages from the working directory —
// the direct `fbufvet ./...` mode used outside go vet. Findings across
// all packages are combined into one report, so -sarif (and -json)
// yield a single document suitable for archiving as a CI artifact.
func runStandalone(patterns []string, analyzers []*Analyzer, jsonOut, sarifOut bool) int {
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	loader, err := NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	paths, err := resolvePatterns(loader, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	exit := 0
	var all []Diagnostic
	for _, importPath := range paths {
		p, err := loader.Load(importPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		diags, err := RunAnalyzers(loader.Fset, p.Files, p.Pkg, p.Info, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		all = append(all, diags...)
		if len(diags) > 0 {
			if !sarifOut && !jsonOut {
				printDiagnostics(os.Stderr, loader.Fset, diags, false, importPath)
			}
			exit = 2
		}
	}
	if sarifOut {
		if err := WriteSARIF(os.Stdout, loader.Fset, all); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	} else if jsonOut {
		printDiagnostics(os.Stderr, loader.Fset, all, true, loader.ModulePath)
	}
	return exit
}

func resolvePatterns(loader *Loader, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	all, err := loader.ModulePackages()
	if err != nil {
		return nil, err
	}
	var out []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "all" || pat == loader.ModulePath+"/...":
			for _, p := range all {
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
		default:
			p := strings.TrimPrefix(pat, "./")
			if !strings.HasPrefix(p, loader.ModulePath) {
				p = loader.ModulePath + "/" + p
			}
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out, nil
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(dir + "/go.mod"); err == nil {
			return dir, nil
		}
		parent := dir[:strings.LastIndexByte(dir, '/')+1]
		parent = strings.TrimSuffix(parent, "/")
		if parent == dir || parent == "" {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// jsonDiagnostic is the -json output shape, close enough to x/tools'
// for editor integrations.
type jsonDiagnostic struct {
	Category string `json:"category"`
	Posn     string `json:"posn"`
	Message  string `json:"message"`
}

func printDiagnostics(w io.Writer, fset *token.FileSet, diags []Diagnostic, jsonOut bool, importPath string) {
	if jsonOut {
		byCat := map[string][]jsonDiagnostic{}
		for _, d := range diags {
			byCat[d.Category] = append(byCat[d.Category], jsonDiagnostic{
				Category: d.Category,
				Posn:     fset.Position(d.Pos).String(),
				Message:  d.Message,
			})
		}
		out := map[string]map[string][]jsonDiagnostic{importPath: byCat}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "\t")
		enc.Encode(out)
		return
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s: %s\n", fset.Position(d.Pos), d.Category, d.Message)
	}
}
