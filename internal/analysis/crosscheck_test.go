package analysis

import (
	"testing"

	"fbufs/internal/conformance"
)

// TestLifecycleCrossCheck locks the static and dynamic lifecycle oracles
// together: every lifecycle rule the conformance reference model
// enforces must either appear in the fbuflife typestate tables (by rule
// name) or carry a documented exclusion saying which mechanism owns it
// instead — and every rule the typestate tables cite must exist in the
// model's catalogue. Adding a rule to one side without the other fails
// here, which is the whole point.
func TestLifecycleCrossCheck(t *testing.T) {
	static := StaticLifecycleRules()
	catalogue := conformance.LifecycleRules()

	seen := map[string]bool{}
	for _, r := range catalogue {
		if r.Name == "" || r.Paper == "" || r.Desc == "" {
			t.Errorf("rule %+v: Name, Paper, and Desc are all required", r)
		}
		if seen[r.Name] {
			t.Errorf("rule %q listed twice in conformance.LifecycleRules", r.Name)
		}
		seen[r.Name] = true

		covered := static[r.Name]
		switch {
		case covered && r.StaticExclusion != "":
			t.Errorf("rule %q is in the fbuflife typestate tables AND carries a static exclusion (%q): drop one",
				r.Name, r.StaticExclusion)
		case !covered && r.StaticExclusion == "":
			t.Errorf("rule %q is enforced by the conformance model but neither encoded in the fbuflife typestate tables nor excluded with a reason",
				r.Name)
		}
	}

	// The reverse direction: a typestate edge citing a rule the model
	// does not document is a phantom rule.
	for name := range static {
		if !seen[name] {
			t.Errorf("typestate tables cite rule %q, which conformance.LifecycleRules does not document", name)
		}
	}
}
