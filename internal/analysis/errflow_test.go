package analysis

import "testing"

func TestErrFlow(t *testing.T) {
	RunTest(t, "testdata/src", ErrFlow, "errflow")
}
