// Package analysis is fbufvet's compile-time invariant analyzer suite: a
// self-contained static-analysis framework (modelled on the
// golang.org/x/tools/go/analysis API, but built entirely on the standard
// library so the repo stays dependency-free) plus the six analyzers that
// machine-check the fbuf protocol discipline the paper's safety argument
// rests on:
//
//   - fbufcheck: immutability after Transfer, Secure-before-trust on
//     volatile paths, and double-Free detection (sections 2.1.3, 3.2.4),
//     function-local and batch-aware (FreeBatch/AllocBatch).
//   - fbuflife: the interprocedural lifecycle typestate analysis — a
//     per-function CFG dataflow engine plus bottom-up call-graph
//     summaries (DESIGN.md §13) — catching leaks, use-after-transfer,
//     and double frees that cross helper-function boundaries, batch
//     element ownership, and goroutine handoffs without a transfer
//     point.
//   - errflow: errors from the core/aggregate/vm APIs encode protection
//     faults and must never be silently discarded.
//   - detlint: the simulator's determinism contract — no wall-clock time,
//     no unseeded randomness, no goroutines, no map-iteration-ordered
//     output in simulator code.
//   - obshook: every hot-path obs.Observer call sits behind the single
//     nil-check pattern, and observer-guarded blocks charge zero
//     simulated time.
//   - lockorder: the concurrency layer's documented lock ranking — no
//     function acquires a ranked mutex while directly holding a
//     higher-ranked one (DESIGN.md §10).
//
// The suite runs three ways: as a `go vet -vettool` (package unitchecker
// protocol, cmd/fbufvet), as a standalone checker over the module source
// (Loader), and under analysistest-style unit tests with `// want`
// expectations (RunTest).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is the one-paragraph description shown by -flags help.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked source to an
// analyzer, along with the diagnostic sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name
	Message  string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Category: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full fbufvet suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{FbufCheck, FbufLife, ErrFlow, DetLint, ObsHook, LockOrder}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzers applies the analyzers to one type-checked package and
// returns the combined diagnostics sorted by position.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		out = append(out, pass.diags...)
	}
	return dedupeDiagnostics(out), nil
}

// dedupeDiagnostics sorts findings into a stable (position, category,
// message) order — independent of analyzer registration order — and
// drops exact duplicates at one position (several analyzers convicting
// the same line with the same words should read as one finding).
func dedupeDiagnostics(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		if a.Category != b.Category {
			return a.Category < b.Category
		}
		return a.Message < b.Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d.Pos == out[len(out)-1].Pos && d.Message == out[len(out)-1].Message {
			continue
		}
		out = append(out, d)
	}
	return out
}

// NewTypesInfo allocates a types.Info with every map analyzers consume.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
