package analysis

import (
	"bytes"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// TestSARIFGolden locks the SARIF document byte for byte: rule table
// from the registered suite sorted by id, results in position order,
// stable indentation. Regenerate with:
//
//	WRITE_GOLDEN=1 go test ./internal/analysis -run TestSARIFGolden
func TestSARIFGolden(t *testing.T) {
	fset := token.NewFileSet()
	const src = `package p

func a() {}
func b() {}
`
	f, err := parser.ParseFile(fset, "example/p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	decls := f.Decls
	if len(decls) < 2 {
		t.Fatal("test source must have two decls")
	}
	diags := []Diagnostic{
		{Pos: decls[0].Pos(), Category: "fbufcheck", Message: "write to fbuf after Transfer"},
		{Pos: decls[1].Pos(), Category: "fbuflife", Message: "fbuf allocated here escapes the function with no Free, Transfer, or stored reference (leak; paper §3.2.1)"},
	}

	var buf bytes.Buffer
	if err := WriteSARIF(&buf, fset, diags); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "sarif_golden.json")
	if os.Getenv("WRITE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with WRITE_GOLDEN=1)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SARIF output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s\n(regenerate with WRITE_GOLDEN=1 if the change is intended)",
			buf.Bytes(), want)
	}
}

// TestSARIFEmpty: a clean run still produces a well-formed document with
// the full rule table and an empty (not null) results array.
func TestSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, token.NewFileSet(), nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, a := range All() {
		if !bytes.Contains(buf.Bytes(), []byte(`"id": "`+a.Name+`"`)) {
			t.Errorf("rule table missing analyzer %q:\n%s", a.Name, out)
		}
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"results": []`)) {
		t.Errorf("empty run must emit an empty results array:\n%s", out)
	}
}
