package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// isTestFile reports whether the file containing pos is a _test.go file.
// The protocol analyzers skip tests: tests deliberately violate the fbuf
// discipline to probe the simulated MMU, and determinism rules apply only
// to simulator code proper.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// calleeFunc resolves the called function or method of call, or nil for
// indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// recvTypeIs reports whether fn is a method whose receiver's named type
// lives in a package *named* pkgName and is called typeName. Matching by
// package name (not full import path) lets the analyzers work identically
// against the real fbufs/internal packages and the testdata stubs.
func recvTypeIs(fn *types.Func, pkgName, typeName string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Name() == pkgName && named.Obj().Name() == typeName
}

// pkgFuncIs reports whether fn is the package-level function pkgName.name.
func pkgFuncIs(fn *types.Func, pkgName, name string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Name() == pkgName && fn.Name() == name
}

// returnsError reports whether fn's final result is the error type, and
// that result's index.
func returnsError(fn *types.Func) (int, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return 0, false
	}
	last := sig.Results().Len() - 1
	if types.Identical(sig.Results().At(last).Type(), types.Universe.Lookup("error").Type()) {
		return last, true
	}
	return 0, false
}

// receiverOf returns the receiver expression of a method call
// (x in x.M(...)), or nil.
func receiverOf(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// identObj resolves e to the object of a plain identifier, or nil.
func identObj(info *types.Info, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return info.ObjectOf(id)
	}
	return nil
}

// exprKey canonicalizes a pure selector/index chain (a, a.b, a.b.c,
// a[0], a[i]) for textual matching of guard conditions against call
// receivers; chains rooted at calls return "" (not matchable). Index
// keys use constant text or the index variable's identity, so bufs[0]
// and bufs[1] stay distinct while two mentions of bufs[i] match.
func exprKey(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		// Key on the object so shadowing never aliases two variables.
		if obj := info.ObjectOf(e); obj != nil {
			return objKey(obj)
		}
		return ""
	case *ast.SelectorExpr:
		base := exprKey(info, e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.IndexExpr:
		base := exprKey(info, e.X)
		if base == "" {
			return ""
		}
		switch idx := ast.Unparen(e.Index).(type) {
		case *ast.BasicLit:
			return base + "[" + idx.Value + "]"
		case *ast.Ident:
			if obj := info.ObjectOf(idx); obj != nil {
				return base + "[" + objKey(obj) + "]"
			}
		}
		return ""
	}
	return ""
}

// batchAll marks a key as covering every element of a batch (FreeBatch,
// AllocBatch): base key plus this suffix.
const batchAll = "[*]"

// keyBase strips an index suffix: "bufs[0]" -> "bufs".
func keyBase(k string) string {
	if i := strings.IndexByte(k, '['); i >= 0 {
		return k[:i]
	}
	return k
}

// keysOverlap reports whether two fbuf keys may name the same buffer:
// identical keys always do; keys over one batch variable do unless both
// name distinct concrete elements (bufs[0] vs bufs[1] are different
// buffers, but bufs[*] — or the bare slice variable — covers them all).
func keysOverlap(a, b string) bool {
	if a == b {
		return a != ""
	}
	if a == "" || b == "" || keyBase(a) != keyBase(b) {
		return false
	}
	aIdx := strings.IndexByte(a, '[') >= 0 && !strings.HasSuffix(a, batchAll)
	bIdx := strings.IndexByte(b, '[') >= 0 && !strings.HasSuffix(b, batchAll)
	// Same base: overlap unless both are concrete, distinct elements.
	return !(aIdx && bIdx)
}

func objKey(obj types.Object) string {
	// Declaration position is a stable identity even for objects with no
	// parent scope (struct fields reached through embedding).
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Name()
	}
	return obj.Name() + "@" + pkg + ":" + posString(obj.Pos())
}

func posString(p token.Pos) string {
	if !p.IsValid() {
		return "-"
	}
	// token.Pos is process-stable within one FileSet; its integer value is
	// identity enough for map keys.
	var b [20]byte
	i := len(b)
	v := int(p)
	for {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return string(b[i:])
}

// --- Sequential-order reasoning -------------------------------------------
//
// The protocol analyzers are function-local and syntactic: event A "may
// precede" event B when A's enclosing statement, in the deepest block that
// contains both, comes strictly before B's. Events in sibling arms of the
// same if/switch share that top-level statement and are treated as
// mutually exclusive (never ordered), which removes the classic
// if/else-arm false positive.

// stmtPath records, outermost first, the statement chain enclosing a node.
type stmtPath []ast.Stmt

// pathTo computes the enclosing-statement chain of pos within fn's body.
func pathTo(body *ast.BlockStmt, pos token.Pos) stmtPath {
	var path stmtPath
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > pos || n.End() <= pos {
			return false
		}
		if s, ok := n.(ast.Stmt); ok {
			path = append(path, s)
		}
		return true
	}
	ast.Inspect(body, walk)
	return path
}

// mayPrecede reports whether an event with path a sequentially precedes
// one with path b: at the first level where the chains diverge, a's
// statement ends before b's begins — unless the divergence happens across
// mutually-exclusive branches of one if/switch/select, which are never
// ordered (this removes the classic else-arm false positive). The
// analysis is a may-analysis: an event inside a conditional still
// precedes everything after the conditional.
func mayPrecede(a, b stmtPath) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			continue
		}
		if i > 0 {
			switch a[i-1].(type) {
			case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				// Different arms of the same branch statement.
				return false
			}
		}
		return a[i].End() <= b[i].Pos()
	}
	return false
}
