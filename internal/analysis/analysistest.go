package analysis

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunTest is the analysistest-style harness: it loads importPath from the
// GOPATH-style srcRoot, runs analyzer over it, and compares diagnostics
// against `// want "regexp"` comments in the source. Every want must be
// matched by a diagnostic on its line, and every diagnostic must be
// claimed by a want — so the corpus doubles as both positive and negative
// cases (a line without a want asserts the analyzer stays silent there).
func RunTest(t *testing.T, srcRoot string, analyzer *Analyzer, importPaths ...string) {
	t.Helper()
	loader, err := NewLoader("", srcRoot)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	for _, importPath := range importPaths {
		p, err := loader.Load(importPath)
		if err != nil {
			t.Fatalf("load %s: %v", importPath, err)
		}
		diags, err := RunAnalyzers(loader.Fset, p.Files, p.Pkg, p.Info, []*Analyzer{analyzer})
		if err != nil {
			t.Fatalf("run %s on %s: %v", analyzer.Name, importPath, err)
		}
		checkWants(t, loader.Fset, p, diags)
	}
}

// wantExpectation is one `// want "re"` annotation.
type wantExpectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts want annotations from every comment in the package.
func parseWants(fset *token.FileSet, p *LoadedPackage) ([]*wantExpectation, error) {
	var wants []*wantExpectation
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %s: %v", pos, q, err)
					}
					wants = append(wants, &wantExpectation{
						file: pos.Filename, line: pos.Line, re: re, raw: pat,
					})
				}
			}
		}
	}
	return wants, nil
}

// splitQuoted splits `"a" "b c"` into its quoted string tokens.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if !strings.HasPrefix(s, `"`) {
			return out
		}
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			return out
		}
		out = append(out, s[:end+1])
		s = s[end+1:]
	}
}

func checkWants(t *testing.T, fset *token.FileSet, p *LoadedPackage, diags []Diagnostic) {
	t.Helper()
	wants, err := parseWants(fset, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}
