package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FbufCheck enforces the fbuf protocol discipline inside each function:
//
//  1. No Write/TouchWrite/DMAWrite to an fbuf after it has been passed to
//     Transfer — fbufs carry copy semantics over immutable buffers
//     (paper section 2.1.2); a write after transfer is the originator
//     mutating pages a receiver can already see.
//  2. No Read/TouchRead by a receiver of a statically-volatile fbuf
//     without a dominating Secure call or an explicit Secured()
//     acknowledgment — volatile fbufs leave write permission with the
//     originator, so a receiver that trusts the contents must secure
//     them first (section 3.2.4).
//  3. No double Free of the same fbuf by the same domain — the second
//     free corrupts the reference count of a buffer that may already be
//     recycled.
//
// The rules are batch-aware: FreeBatch(bufs, d) counts as a Free of
// every element (so a later Free of bufs[i] by the same domain is a
// double free, and vice versa), AllocBatch(bufs) resets the whole
// batch, and two concrete distinct indices (bufs[0] vs bufs[1]) never
// alias each other.
//
// The analysis is function-local and syntactic over a may-precede order:
// an event inside a conditional is still considered to precede later
// statements (a deliberate, documented source of conservative false
// positives), while events in mutually-exclusive branches of one
// if/switch are never ordered. _test.go files are skipped: tests
// deliberately violate the protocol to probe the simulated MMU.
var FbufCheck = &Analyzer{
	Name: "fbufcheck",
	Doc:  "check fbuf protocol discipline: immutability after Transfer, Secure before volatile reads, no double Free",
	Run:  runFbufCheck,
}

// fbufEvent is one protocol-relevant operation found in a function body.
type fbufEvent struct {
	kind string // "transfer", "write", "read", "free", "secure", "reset", "alloc"
	f    string // exprKey of the fbuf operand ("" when unmatchable)
	dom  string // exprKey of the acting/receiving domain, when relevant
	pos  token.Pos
	path stmtPath
	call *ast.CallExpr
}

// volatility records what a function body statically knows about an
// options value or a path/fbuf variable.
type volatility struct {
	known    bool
	volatile bool
	// originator is the exprKey of the path's first domain, "" if unknown.
	originator string
}

func runFbufCheck(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for body := range functionBodies(file) {
			checkFbufBody(pass, body)
		}
	}
	return nil
}

// functionBodies yields every function body in the file — declarations and
// literals — each analyzed as its own scope.
func functionBodies(file *ast.File) map[*ast.BlockStmt]bool {
	out := map[*ast.BlockStmt]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out[fn.Body] = true
			}
		case *ast.FuncLit:
			if fn.Body != nil {
				out[fn.Body] = true
			}
		}
		return true
	})
	return out
}

// inspectShallow walks body without descending into nested function
// literals (they are separate scopes).
func inspectShallow(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		return fn(n)
	})
}

func checkFbufBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var events []fbufEvent
	optsVol := map[string]volatility{} // options-variable key -> volatility
	pathVol := map[string]volatility{} // path-variable key -> volatility
	fbufVol := map[string]volatility{} // fbuf-variable key -> volatility

	add := func(kind, f, dom string, n ast.Node, call *ast.CallExpr) {
		events = append(events, fbufEvent{
			kind: kind, f: f, dom: dom, pos: n.Pos(),
			path: pathTo(body, n.Pos()), call: call,
		})
	}

	// Pass 1: volatility of options expressions and assignments, path
	// creations, fbuf allocations, resets. Source order matters only
	// through mayPrecede later, so a single walk suffices.
	inspectShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			key := exprKey(info, lhs)
			if key == "" {
				continue
			}
			var rhs ast.Expr
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0] // multi-value: f, err := path.Alloc()
			}
			if rhs == nil {
				continue
			}
			if v, ok := staticVolatility(info, rhs, optsVol); ok {
				optsVol[key] = v
			}
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				recordCreation(info, call, key, optsVol, pathVol, fbufVol)
			}
			// Any assignment to a tracked fbuf variable is a reset: the
			// variable now names a different buffer.
			add("reset", key, "", as, nil)
		}
		return true
	})

	// Pass 2: protocol operations.
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		switch {
		case recvTypeIs(fn, "core", "Manager") && fn.Name() == "Transfer" && len(call.Args) == 3:
			add("transfer", exprKey(info, call.Args[0]), exprKey(info, call.Args[2]), call, call)
		case recvTypeIs(fn, "core", "Fbuf") &&
			(fn.Name() == "Write" || fn.Name() == "TouchWrite" || fn.Name() == "DMAWrite"):
			add("write", exprKey(info, receiverOf(call)), "", call, call)
		case recvTypeIs(fn, "core", "Fbuf") &&
			(fn.Name() == "Read" || fn.Name() == "TouchRead") && len(call.Args) >= 1:
			add("read", exprKey(info, receiverOf(call)), exprKey(info, call.Args[0]), call, call)
		case recvTypeIs(fn, "core", "Manager") && fn.Name() == "Free" && len(call.Args) == 2:
			add("free", exprKey(info, call.Args[0]), exprKey(info, call.Args[1]), call, call)
		case recvTypeIs(fn, "core", "Manager") && fn.Name() == "FreeBatch" && len(call.Args) == 2:
			// A whole-batch free covers every element of the slice.
			if key := exprKey(info, call.Args[0]); key != "" {
				add("free", key+batchAll, exprKey(info, call.Args[1]), call, call)
			}
		case recvTypeIs(fn, "core", "DataPath") && fn.Name() == "AllocBatch" && len(call.Args) == 1:
			// Refilling a batch resets every element it covers.
			if key := exprKey(info, call.Args[0]); key != "" {
				add("reset", key+batchAll, "", call, call)
			}
		case recvTypeIs(fn, "core", "Manager") && fn.Name() == "Secure" && len(call.Args) == 2:
			add("secure", exprKey(info, call.Args[0]), exprKey(info, call.Args[1]), call, call)
		}
		return true
	})

	reset := func(f string, a, b *fbufEvent) bool {
		for i := range events {
			r := &events[i]
			if r.kind == "reset" && keysOverlap(r.f, f) &&
				mayPrecede(a.path, r.path) && mayPrecede(r.path, b.path) {
				return true
			}
		}
		return false
	}

	// Rule 1: write after transfer.
	for i := range events {
		w := &events[i]
		if w.kind != "write" || w.f == "" {
			continue
		}
		for j := range events {
			t := &events[j]
			if t.kind != "transfer" || !keysOverlap(t.f, w.f) || !mayPrecede(t.path, w.path) {
				continue
			}
			if reset(w.f, t, w) {
				continue
			}
			pass.Reportf(w.pos,
				"write to fbuf after Transfer: fbufs are immutable once transferred (copy semantics); allocate a fresh fbuf instead")
			break
		}
	}

	// Rule 2: receiver read of a statically-volatile fbuf without Secure.
	for i := range events {
		r := &events[i]
		if r.kind != "read" || r.f == "" || r.dom == "" {
			continue
		}
		vol, ok := fbufVol[r.f]
		if !ok || !vol.known || !vol.volatile || vol.originator == "" || vol.originator == r.dom {
			continue
		}
		// Only interesting once the reader actually received the buffer.
		received := false
		for j := range events {
			t := &events[j]
			if t.kind == "transfer" && t.f == r.f && t.dom == r.dom &&
				mayPrecede(t.path, r.path) && !reset(r.f, t, r) {
				received = true
				break
			}
		}
		if !received {
			continue
		}
		secured := false
		for j := range events {
			s := &events[j]
			if s.kind == "secure" && s.f == r.f && mayPrecede(s.path, r.path) && !reset(r.f, s, r) {
				secured = true
				break
			}
		}
		if !secured && !securedAcknowledged(info, body, r) {
			pass.Reportf(r.pos,
				"read of volatile fbuf by receiver without Secure: originator still holds write permission; call Secure or branch on Secured() before trusting the contents")
		}
	}

	// Rule 3: double free by the same domain.
	for i := range events {
		a := &events[i]
		if a.kind != "free" || a.f == "" {
			continue
		}
		for j := range events {
			b := &events[j]
			if b == a || b.kind != "free" || !keysOverlap(b.f, a.f) || b.dom != a.dom {
				continue
			}
			if !mayPrecede(a.path, b.path) || reset(a.f, a, b) {
				continue
			}
			pass.Reportf(b.pos,
				"double Free of fbuf by the same domain: the reference was already dropped; the buffer may be recycled")
			break
		}
	}
}

// staticVolatility resolves an options expression to a known volatility:
// a call to a CachedVolatile/Uncached-style constructor, an Options
// composite literal, or a previously-resolved options variable.
func staticVolatility(info *types.Info, e ast.Expr, optsVol map[string]volatility) (volatility, bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.CallExpr:
		name := calleeName(info, x)
		switch name {
		case "CachedVolatile", "Uncached":
			return volatility{known: true, volatile: true}, true
		case "CachedNonVolatile", "UncachedNonVolatile":
			return volatility{known: true, volatile: false}, true
		}
	case *ast.CompositeLit:
		named := namedOf(info.TypeOf(x))
		if named != nil && named.Obj().Name() == "Options" {
			v := volatility{known: true}
			for _, el := range x.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					return volatility{}, false // positional: don't guess
				}
				if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Volatile" {
					if lit, ok := ast.Unparen(kv.Value).(*ast.Ident); ok {
						v.volatile = lit.Name == "true"
						return v, true
					}
					return volatility{}, false
				}
			}
			return v, true // Volatile omitted: zero value, non-volatile
		}
	case *ast.Ident:
		if v, ok := optsVol[exprKey(info, x)]; ok {
			return v, true
		}
	}
	return volatility{}, false
}

// calleeName returns the bare called name for idents, selectors, and
// package-level function variables (the fbufs facade re-exports the
// options constructors as vars).
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// recordCreation tracks path and fbuf provenance through NewPath and
// Alloc so the read rule knows, within one function, which fbufs are
// volatile and who originated them.
func recordCreation(info *types.Info, call *ast.CallExpr, lhsKey string,
	optsVol, pathVol, fbufVol map[string]volatility) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	switch {
	case fn.Name() == "NewPath" && len(call.Args) >= 4 &&
		(recvTypeIs(fn, "core", "Manager") || recvTypeIs(fn, "fbufs", "System")):
		if v, ok := staticVolatility(info, call.Args[1], optsVol); ok {
			v.originator = exprKey(info, call.Args[3])
			pathVol[lhsKey] = v
		}
	case fn.Name() == "Alloc" && recvTypeIs(fn, "core", "DataPath"):
		if recv := receiverOf(call); recv != nil {
			if v, ok := pathVol[exprKey(info, recv)]; ok {
				fbufVol[lhsKey] = v
			}
		}
	case fn.Name() == "AllocUncached" && recvTypeIs(fn, "core", "Manager") && len(call.Args) == 3:
		if v, ok := staticVolatility(info, call.Args[2], optsVol); ok {
			v.originator = exprKey(info, call.Args[0])
			fbufVol[lhsKey] = v
		}
	}
}

// securedAcknowledged reports whether the read event sits under or after
// an if-condition that consults <fbuf>.Secured() — the explicit
// "I know this buffer is volatile" acknowledgment that satisfies the
// read rule without forcing a Secure.
func securedAcknowledged(info *types.Info, body *ast.BlockStmt, r *fbufEvent) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		mentions := condMentions(ifs.Cond, func(e ast.Expr) bool {
			call, ok := ast.Unparen(e).(*ast.CallExpr)
			if !ok {
				return false
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Name() != "Secured" || !recvTypeIs(fn, "core", "Fbuf") {
				return false
			}
			return exprKey(info, receiverOf(call)) == r.f
		})
		if !mentions {
			return true
		}
		// Acknowledged if the read is inside the if (either branch) or
		// after it.
		if ifs.Pos() <= r.pos && r.pos < ifs.End() {
			found = true
			return false
		}
		if mayPrecede(pathTo(body, ifs.Pos()), r.path) {
			found = true
			return false
		}
		return true
	})
	return found
}
