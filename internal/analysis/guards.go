package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// guardSearch answers "is this node dominated by a guard on expression
// key?" for the two guard idioms the codebase standardizes on:
//
//	if x != nil { ... use x ... }            // enclosing guard
//	if x == nil { return }; ... use x ...    // early-exit guard
//
// The condition may bury the nil test in a conjunction (x != nil && y)
// or, for the early exit, a disjunction (x == nil || x.M == nil).
// fbufcheck reuses the machinery with an arbitrary condition predicate
// (for Secured() acknowledgment checks).

// condMentions walks the &&/||/! structure of cond and reports whether
// any leaf satisfies pred.
func condMentions(cond ast.Expr, pred func(ast.Expr) bool) bool {
	cond = ast.Unparen(cond)
	switch e := cond.(type) {
	case *ast.BinaryExpr:
		if e.Op == token.LAND || e.Op == token.LOR {
			return condMentions(e.X, pred) || condMentions(e.Y, pred)
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return condMentions(e.X, pred)
		}
	}
	return pred(cond)
}

// isNilCompare reports whether e is `x <op> nil` or `nil <op> x`,
// returning x.
func isNilCompare(e ast.Expr, op token.Token) (ast.Expr, bool) {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || be.Op != op {
		return nil, false
	}
	if isNilIdent(be.Y) {
		return be.X, true
	}
	if isNilIdent(be.X) {
		return be.Y, true
	}
	return nil, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether a block always transfers control away:
// its last statement is a return, a branch (break/continue/goto), or a
// call to panic.
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch s := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// dominatedByGuard reports whether the node at nodePath is protected by a
// guard on key within body: either an enclosing `if` whose condition has
// a conjunct satisfying posPred(key), or a preceding terminating
// `if` whose condition has a disjunct satisfying negPred(key).
func dominatedByGuard(info *types.Info, body *ast.BlockStmt, nodePath stmtPath,
	key string) bool {
	nonNil := func(e ast.Expr) bool {
		x, ok := isNilCompare(e, token.NEQ)
		return ok && exprKey(info, x) == key
	}
	isNil := func(e ast.Expr) bool {
		x, ok := isNilCompare(e, token.EQL)
		return ok && exprKey(info, x) == key
	}

	// Enclosing `if key != nil` with the node in the then-branch.
	for i, s := range nodePath {
		ifs, ok := s.(*ast.IfStmt)
		if !ok || !condMentions(ifs.Cond, nonNil) {
			continue
		}
		if i+1 < len(nodePath) && nodePath[i+1] == ast.Stmt(ifs.Body) {
			return true
		}
	}

	// Preceding `if key == nil { return/...; }`.
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if !condMentions(ifs.Cond, isNil) || !terminates(ifs.Body) {
			return true
		}
		if mayPrecede(pathTo(body, ifs.Pos()), nodePath) {
			found = true
			return false
		}
		return true
	})
	return found
}

// assignedFromCall reports whether obj (a local variable) is defined or
// assigned somewhere in body from a direct call satisfying pred — used to
// whitelist receivers that provably come from a non-nil constructor such
// as obs.New.
func assignedFromCall(info *types.Info, body *ast.BlockStmt, obj types.Object,
	pred func(*types.Func) bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || info.ObjectOf(id) != obj {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok {
				continue
			}
			if fn := calleeFunc(info, call); fn != nil && pred(fn) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
