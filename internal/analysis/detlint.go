package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetLint enforces the simulator's determinism contract on non-test code:
// trace and benchmark outputs must be byte-identical across runs, which
// today holds only by convention. Four sources of nondeterminism are
// banned in simulator packages (internal/..., plus anything importing
// them that declares itself simulator code):
//
//   - time.Now / time.Since / time.Until — simulated time comes from the
//     virtual clock, never the wall clock.
//   - the global math/rand source (rand.Int, rand.Float64, ...) — any
//     randomness must flow from an explicitly seeded *rand.Rand.
//   - go statements — the simulator is single-threaded by design; its
//     event order is its determinism.
//   - fmt printing driven directly by a map range — map iteration order
//     is randomized by the runtime, so output keyed on it differs per
//     run. Sorting the keys first is the accepted pattern.
//
// _test.go files are exempt (tests may race goroutines on purpose), and a
// file can opt out wholesale with a `//detlint:parallel` comment — the
// escape hatch for code that deliberately measures real concurrency (the
// wall-clock parallel benchmark driver) and therefore sits outside the
// deterministic-trace contract. The pragma is file-scoped and visible in
// review; simulator packages proper must never carry it.
var DetLint = &Analyzer{
	Name: "detlint",
	Doc:  "forbid wall-clock time, unseeded math/rand, goroutines, and map-order-dependent output in simulator code",
	Run:  runDetLint,
}

// detlintWallClock lists banned time package functions.
var detlintWallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

func runDetLint(pass *Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) || hasParallelPragma(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(s.Pos(),
					"go statement in simulator code: the simulator is single-threaded; concurrency breaks deterministic event order")
			case *ast.CallExpr:
				fn := calleeFunc(info, s)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if detlintWallClock[fn.Name()] {
						pass.Reportf(s.Pos(),
							"time.%s in simulator code: use the virtual clock; wall-clock reads make runs unreproducible", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if isGlobalRandFunc(fn) {
						pass.Reportf(s.Pos(),
							"global math/rand source in simulator code: use an explicitly seeded *rand.Rand so runs are reproducible")
					}
				}
			case *ast.RangeStmt:
				checkMapRangeOutput(pass, s)
			}
			return true
		})
	}
	return nil
}

// hasParallelPragma reports whether the file opts out of the determinism
// contract with a `//detlint:parallel` comment (any line of any comment
// group; conventionally placed right above the package clause).
func hasParallelPragma(file *ast.File) bool {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.TrimSpace(c.Text) == "//detlint:parallel" {
				return true
			}
		}
	}
	return false
}

// isGlobalRandFunc reports whether fn draws from the process-global
// math/rand source. Methods on *rand.Rand are fine — constructing one
// forces choosing a seed — and so are the constructors themselves
// (rand.New, rand.NewSource, rand.NewZipf), which are the approved path.
func isGlobalRandFunc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return !strings.HasPrefix(fn.Name(), "New")
}

// checkMapRangeOutput flags fmt printing (or writes through an
// io.Writer-style Write method) directly inside `for k := range m` where m
// is a map: the emitted order is the map's randomized iteration order.
func checkMapRangeOutput(pass *Pass, r *ast.RangeStmt) {
	info := pass.TypesInfo
	t := info.TypeOf(r.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(r.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.RangeStmt); ok && n != r {
			return false // a nested range is its own site
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		isPrint := fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
			(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint"))
		if isPrint {
			pass.Reportf(call.Pos(),
				"output inside a map range: map iteration order is randomized; collect and sort the keys first")
			return false
		}
		return true
	})
}
