package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader type-checks packages from source with no toolchain help: the
// module's own packages resolve against ModuleRoot, GOPATH-style extra
// roots serve the analysistest stub corpus, and the standard library is
// loaded through the source importer (which needs only GOROOT/src). This
// is what lets the suite run standalone (`fbufvet ./...`) and under
// `go test` without golang.org/x/tools.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string // directory containing go.mod ("" to disable)
	ModulePath string // module path from go.mod
	ExtraRoots []string

	std     types.Importer
	loaded  map[string]*LoadedPackage
	loading map[string]bool
}

// LoadedPackage is one parsed and type-checked package.
type LoadedPackage struct {
	ImportPath string
	Dir        string
	Pkg        *types.Package
	Files      []*ast.File
	Info       *types.Info
}

// NewLoader builds a loader rooted at moduleRoot (may be "" for
// stub-corpus-only loading with extraRoots).
func NewLoader(moduleRoot string, extraRoots ...string) (*Loader, error) {
	l := &Loader{
		Fset:       token.NewFileSet(),
		ModuleRoot: moduleRoot,
		ExtraRoots: extraRoots,
		loaded:     map[string]*LoadedPackage{},
		loading:    map[string]bool{},
	}
	l.std = importer.ForCompiler(l.Fset, "source", nil)
	if moduleRoot != "" {
		path, err := modulePath(filepath.Join(moduleRoot, "go.mod"))
		if err != nil {
			return nil, err
		}
		l.ModulePath = path
	}
	return l, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module line", gomod)
}

// dirFor maps an import path to a source directory, or "" when the path
// must come from the standard library.
func (l *Loader) dirFor(importPath string) string {
	if l.ModulePath != "" {
		if importPath == l.ModulePath {
			return l.ModuleRoot
		}
		if rest, ok := strings.CutPrefix(importPath, l.ModulePath+"/"); ok {
			return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest))
		}
	}
	for _, root := range l.ExtraRoots {
		dir := filepath.Join(root, filepath.FromSlash(importPath))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir
		}
	}
	return ""
}

// Load parses and type-checks the package at importPath.
func (l *Loader) Load(importPath string) (*LoadedPackage, error) {
	if p, ok := l.loaded[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %q", importPath)
	}
	dir := l.dirFor(importPath)
	if dir == "" {
		return nil, fmt.Errorf("cannot resolve import %q (not in module or extra roots)", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", dir, err)
	}
	var files []*ast.File
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files", dir)
	}

	info := NewTypesInfo()
	conf := types.Config{Importer: (*loaderImporter)(l)}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	p := &LoadedPackage{ImportPath: importPath, Dir: dir, Pkg: pkg, Files: files, Info: info}
	l.loaded[importPath] = p
	return p, nil
}

// loaderImporter adapts Loader to types.Importer, falling back to the
// standard-library source importer for unresolvable paths.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if l.dirFor(path) != "" {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// ModulePackages lists the import paths of every package under the
// module root, skipping testdata, vendor, hidden dirs, and dirs with no
// Go files. Deterministic order.
func (l *Loader) ModulePackages() ([]string, error) {
	if l.ModuleRoot == "" {
		return nil, fmt.Errorf("loader has no module root")
	}
	var out []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot &&
			(name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if bp, err := build.ImportDir(path, 0); err == nil && len(bp.GoFiles) > 0 {
			rel, err := filepath.Rel(l.ModuleRoot, path)
			if err != nil {
				return err
			}
			if rel == "." {
				out = append(out, l.ModulePath)
			} else {
				out = append(out, l.ModulePath+"/"+filepath.ToSlash(rel))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
