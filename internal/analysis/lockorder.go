package analysis

import (
	"go/ast"
	"go/types"
)

// LockOrder machine-checks the documented lock ranking of the concurrent
// fbuf facility (DESIGN.md §10). Every mutex that matters has a rank:
//
//	DataPath.mu → Manager.regionMu → chunk.mu → Fbuf.mu → Sanitizer.mu
//	→ AddrSpace.mu → Depot.mu → leaf locks (TLB.mu, PhysMem.mu, Plane.mu,
//	Manager.noticeMu, Manager.cacheMu, Tracer.mu, Registry.mu,
//	depotShard.mu, epochState.mu)
//
// Depot.mu ranks just below the leaves because a depot assembling or
// spilling a unit takes shard locks while holding it; the shards and the
// epoch state are true leaves.
//
// and a function that acquires a lock while directly holding one of
// strictly higher rank is reported — that inversion is the shape of every
// ABBA deadlock. The analysis is function-local and syntactic over the
// textual statement order, like the rest of the suite:
//
//   - Direct sync.Mutex/RWMutex Lock/RLock calls on a ranked owner-type
//     field are acquisitions; Unlock/RUnlock releases the matching hold.
//     The DataPath lock/unlock wrapper methods count as DataPath.mu.
//   - Deferred unlocks are ignored: the lock is treated as held to the end
//     of the function, which is exactly the ordering obligation a
//     defer creates.
//   - TryLock is exempt — a failed try returns instead of blocking, so it
//     cannot participate in a deadlock cycle.
//   - Re-locking the same mutex expression while it is held is reported as
//     a self-deadlock.
//   - Locks acquired inside callees are invisible (the callee is analyzed
//     on its own), and mutexes outside the rank table are ignored — the
//     checker is deliberately under-approximate; what it does flag is a
//     real ordering bug.
//
// _test.go files are skipped.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "enforce the documented fbuf lock ranking: no lock may be acquired while directly holding a higher-ranked one",
	Run:  runLockOrder,
}

// lockOrderDoc is the ranking recited in diagnostics.
const lockOrderDoc = "DataPath.mu → Manager.regionMu → chunk.mu → Fbuf.mu → Sanitizer.mu → AddrSpace.mu → Depot.mu → leaf locks"

// lockRank maps OwnerType.field to its position in the documented order.
// Matching is by type and field name (unique across the module), so the
// analyzer works identically on the real packages and the test corpus.
var lockRank = map[string]int{
	"DataPath.mu":      10,
	"Manager.regionMu": 20,
	"chunk.mu":         30,
	"Fbuf.mu":          40,
	"Sanitizer.mu":     50,
	"AddrSpace.mu":     60,
	// Depot.mu (PR 10) sits below the leaves: unit assembly and spill take
	// shard locks while holding it.
	"Depot.mu": 65,
	// Leaf locks: rank-equal, never nested within each other.
	"TLB.mu":           70,
	"PhysMem.mu":       70,
	"Plane.mu":         70,
	"Manager.noticeMu": 70,
	"Manager.cacheMu":  70,
	"Tracer.mu":        70,
	"Registry.mu":      70,
	// rings.Pair.mu guards only the ring indexes and slot arrays; entries
	// are popped under it and processed outside it, so nothing is ever
	// acquired while it is held.
	"Pair.mu": 70,
	// PR 10 leaves: a depot shard's loose-inventory list and the epoch
	// machinery's parked-frame list. AdvanceEpoch retires frames outside
	// epochState.mu precisely so it stays a leaf.
	"depotShard.mu": 70,
	"epochState.mu": 70,
}

// heldLock is one live acquisition during the body walk.
type heldLock struct {
	key  string // OwnerType.field rank key
	inst string // exprKey instance identity ("" when unmatchable)
	rank int
}

func runLockOrder(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for body := range functionBodies(file) {
			checkLockOrderBody(pass, body)
		}
	}
	return nil
}

func checkLockOrderBody(pass *Pass, body *ast.BlockStmt) {
	var held []heldLock
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeferStmt:
			// A deferred unlock keeps the lock held (for ordering
			// purposes) until the function returns: skip it entirely.
			return false
		case *ast.FuncLit:
			// A nested closure runs at some other time; analyze it as
			// its own body (functionBodies yields it separately).
			return false
		case *ast.CallExpr:
			op, key, inst := lockOp(pass, s)
			switch op {
			case "acquire":
				rank := lockRank[key]
				for i := len(held) - 1; i >= 0; i-- {
					h := held[i]
					if h.inst != "" && h.inst == inst {
						pass.Reportf(s.Pos(),
							"lock order violation: %s already holds this mutex (self-deadlock)", key)
						break
					}
					if h.rank > rank {
						pass.Reportf(s.Pos(),
							"lock order violation: acquiring %s while holding %s; the documented order is %s",
							key, h.key, lockOrderDoc)
						break
					}
				}
				held = append(held, heldLock{key: key, inst: inst, rank: rank})
			case "release":
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].key == key && (inst == "" || held[i].inst == inst) {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
		}
		return true
	})
}

// lockOp classifies a call as a ranked-mutex acquisition or release,
// returning the rank key and an instance identity. Anything else — an
// unranked mutex, a TryLock, an indirect call — returns op "".
func lockOp(pass *Pass, call *ast.CallExpr) (op, key, inst string) {
	info := pass.TypesInfo
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", "", ""
	}
	if recvTypeIs(fn, "sync", "Mutex") || recvTypeIs(fn, "sync", "RWMutex") {
		recv := receiverOf(call)
		sel, ok := ast.Unparen(recv).(*ast.SelectorExpr)
		if !ok {
			return "", "", "" // local or package-level mutex: unranked
		}
		named := namedOf(info.TypeOf(sel.X))
		if named == nil {
			return "", "", ""
		}
		key = named.Obj().Name() + "." + sel.Sel.Name
		if _, ranked := lockRank[key]; !ranked {
			return "", "", ""
		}
		inst = exprKey(info, recv)
		switch fn.Name() {
		case "Lock", "RLock":
			return "acquire", key, inst
		case "Unlock", "RUnlock":
			return "release", key, inst
		}
		return "", "", "" // TryLock/TryRLock: cannot block
	}
	// The DataPath lock/unlock wrappers are the facility's contended-
	// acquisition counters around DataPath.mu.
	if named := recvNamedType(fn); named != nil && named.Obj().Name() == "DataPath" {
		recv := receiverOf(call)
		inst = exprKey(info, recv)
		if inst != "" {
			inst += ".mu"
		}
		switch fn.Name() {
		case "lock":
			return "acquire", "DataPath.mu", inst
		case "unlock":
			return "release", "DataPath.mu", inst
		}
	}
	return "", "", ""
}

// recvNamedType returns the named type of fn's receiver, or nil.
func recvNamedType(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}
