package analysis

import "testing"

func TestDetLint(t *testing.T) {
	RunTest(t, "testdata/src", DetLint, "detlint")
}
