package analysis

import (
	"go/ast"
)

// This file builds per-function control-flow graphs from the AST — the
// substrate the fbuflife dataflow engine (fbuflife.go) runs on. The
// granularity is the basic block: a maximal run of straight-line
// statements. Compound statements are decomposed — an `if` contributes
// its init statement and condition to the current block and branches to
// then/else blocks; loops get head/body/post blocks with back edges —
// so a forward dataflow analysis sees exactly the orderings that can
// happen at run time, including early returns, break/continue/goto, and
// loop re-entry. This is what replaces fbufcheck's syntactic
// "may-precede" order (util.go) for the interprocedural analyzer.

// CFGBlock is one basic block.
type CFGBlock struct {
	Index int
	// Nodes are executed in order: simple statements appended whole,
	// plus bare condition/tag expressions of enclosing control
	// statements. RangeStmt nodes stand for the per-iteration variable
	// binding only (their Body is in successor blocks).
	Nodes []ast.Node
	// Cond, when non-nil, is a boolean expression the block branches on:
	// Succs[0] is the true edge and Succs[1] the false edge. When Cond is
	// nil every successor is possible (join points, range heads, select).
	Cond  ast.Expr
	Succs []*CFGBlock
}

// CFG is one function body's control-flow graph.
type CFG struct {
	Entry  *CFGBlock
	Exit   *CFGBlock
	Blocks []*CFGBlock
	// Defers collects every defer statement in source order. The
	// analysis treats all of them as (possibly) running at Exit, in
	// reverse order — a may-approximation of conditional defers.
	Defers []*ast.DeferStmt
}

// ctlFrame is one enclosing breakable/continuable construct.
type ctlFrame struct {
	label string
	brk   *CFGBlock
	cont  *CFGBlock // nil for switch/select frames
}

type cfgBuilder struct {
	g          *CFG
	cur        *CFGBlock
	frames     []ctlFrame
	labels     map[string]*CFGBlock // goto/label targets, by name
	fallTarget *CFGBlock            // next case body for fallthrough
}

// buildCFG constructs the control-flow graph of one function body.
func buildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.edge(b.g.Exit) // fall off the end
	return b.g
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge adds a successor edge from the current block.
func (b *cfgBuilder) edge(to *CFGBlock) {
	b.cur.Succs = append(b.cur.Succs, to)
}

// jump ends the current block with an unconditional edge and continues
// into a fresh (unreachable unless targeted) block.
func (b *cfgBuilder) jump(to *CFGBlock) {
	b.edge(to)
	b.cur = b.newBlock()
}

func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) labelBlock(name string) *CFGBlock {
	if b.labels == nil {
		b.labels = map[string]*CFGBlock{}
	}
	blk := b.labels[name]
	if blk == nil {
		blk = b.newBlock()
		b.labels[name] = blk
	}
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt lowers one statement; label is the enclosing label name, bound to
// the construct's break/continue targets when the statement is a loop or
// switch.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		target := b.labelBlock(s.Label.Name)
		b.edge(target)
		b.cur = target
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		cond.Cond = s.Cond
		thenB := b.newBlock()
		joinB := b.newBlock()
		cond.Succs = append(cond.Succs, thenB) // true edge
		b.cur = thenB
		b.stmtList(s.Body.List)
		b.edge(joinB)
		if s.Else != nil {
			elseB := b.newBlock()
			cond.Succs = append(cond.Succs, elseB) // false edge
			b.cur = elseB
			b.stmt(s.Else, "")
			b.edge(joinB)
		} else {
			cond.Succs = append(cond.Succs, joinB) // false edge
		}
		b.cur = joinB

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.edge(head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			head.Cond = s.Cond
			head.Succs = append(head.Succs, body, after)
		} else {
			head.Succs = append(head.Succs, body)
		}
		b.frames = append(b.frames, ctlFrame{label: label, brk: after, cont: post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(post)
		if s.Post != nil {
			b.cur = post
			b.add(s.Post)
			b.edge(head)
		}
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head)
		head.Nodes = append(head.Nodes, s) // binds key/value each iteration
		head.Succs = append(head.Succs, body, after)
		b.frames = append(b.frames, ctlFrame{label: label, brk: after, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(head)
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body.List, label, func(cc *ast.CaseClause, blk *CFGBlock) {
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, e)
			}
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s.Body.List, label, nil)

	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.frames = append(b.frames, ctlFrame{label: label, brk: after})
		any := false
		for _, cs := range s.Body.List {
			cc := cs.(*ast.CommClause)
			blk := b.newBlock()
			head.Succs = append(head.Succs, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(after)
			any = true
		}
		b.frames = b.frames[:len(b.frames)-1]
		if !any {
			head.Succs = append(head.Succs, after)
		}
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, Decl, Expr, Go, IncDec, Send: straight-line.
		b.add(s)
	}
}

// caseClauses lowers switch/type-switch bodies: the dispatch block
// branches to every case (and past the switch when there is no default);
// fallthrough jumps into the next case's body.
func (b *cfgBuilder) caseClauses(list []ast.Stmt, label string,
	guards func(*ast.CaseClause, *CFGBlock)) {
	head := b.cur
	after := b.newBlock()
	b.frames = append(b.frames, ctlFrame{label: label, brk: after})
	blocks := make([]*CFGBlock, len(list))
	hasDefault := false
	for i, cs := range list {
		blocks[i] = b.newBlock()
		head.Succs = append(head.Succs, blocks[i])
		if cc, ok := cs.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		head.Succs = append(head.Succs, after)
	}
	for i, cs := range list {
		cc := cs.(*ast.CaseClause)
		if guards != nil {
			guards(cc, blocks[i])
		}
		savedFall := b.fallTarget
		if i+1 < len(list) {
			b.fallTarget = blocks[i+1]
		} else {
			b.fallTarget = after
		}
		b.cur = blocks[i]
		b.stmtList(cc.Body)
		b.edge(after)
		b.fallTarget = savedFall
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		for i := len(b.frames) - 1; i >= 0; i-- {
			fr := b.frames[i]
			if name == "" || fr.label == name {
				b.jump(fr.brk)
				return
			}
		}
	case "continue":
		for i := len(b.frames) - 1; i >= 0; i-- {
			fr := b.frames[i]
			if fr.cont != nil && (name == "" || fr.label == name) {
				b.jump(fr.cont)
				return
			}
		}
	case "goto":
		if name != "" {
			b.jump(b.labelBlock(name))
			return
		}
	case "fallthrough":
		if b.fallTarget != nil {
			b.jump(b.fallTarget)
			return
		}
	}
	// Malformed (shouldn't typecheck): treat as an exit.
	b.jump(b.g.Exit)
}

// reachableBlocks returns the blocks reachable from Entry in reverse
// postorder — the iteration order the dataflow engine uses.
func (g *CFG) reachableBlocks() []*CFGBlock {
	seen := make([]bool, len(g.Blocks))
	var order []*CFGBlock
	var visit func(*CFGBlock)
	visit = func(blk *CFGBlock) {
		if seen[blk.Index] {
			return
		}
		seen[blk.Index] = true
		for _, s := range blk.Succs {
			visit(s)
		}
		order = append(order, blk)
	}
	visit(g.Entry)
	// Reverse postorder.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}
