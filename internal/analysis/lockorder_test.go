package analysis

import "testing"

func TestLockOrder(t *testing.T) {
	RunTest(t, "testdata/src", LockOrder, "lockorder")
}
