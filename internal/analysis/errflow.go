package analysis

import (
	"go/ast"
	"go/types"
)

// ErrFlow is a domain-specific errcheck: errors returned by the fbuf
// protocol APIs encode simulated protection faults (bad transfer target,
// write to an immutable or unmapped buffer, quota exhaustion, draining
// path), and silently discarding one hides exactly the class of bug the
// simulator exists to surface.
//
// A call is flagged when its result — whose final value is an error — is
// used as an expression statement or spawned via go/defer with no
// receiver. Explicitly discarding with `_ =` (or `_, _ =`) is allowed:
// that is a visible, reviewable statement of intent.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc:  "flag discarded errors from fbuf protocol APIs (Alloc, Transfer, Secure, Free, Write, Read, DMA ops)",
	Run:  runErrFlow,
}

// errflowMethods lists the checked (package name, receiver type, method)
// triples. Matching is by package *name* so testdata stubs qualify.
var errflowMethods = []struct {
	pkg, typ, method string
}{
	{"core", "DataPath", "Alloc"},
	{"core", "Manager", "AllocUncached"},
	{"core", "Manager", "Transfer"},
	{"core", "Manager", "Secure"},
	{"core", "Manager", "Free"},
	{"core", "Fbuf", "Write"},
	{"core", "Fbuf", "Read"},
	{"core", "Fbuf", "TouchWrite"},
	{"core", "Fbuf", "TouchRead"},
	{"core", "Fbuf", "DMAWrite"},
	{"core", "Fbuf", "DMARead"},
	{"aggregate", "Ctx", "Join"},
	{"aggregate", "Ctx", "Split"},
	{"aggregate", "Ctx", "ClipHead"},
	{"aggregate", "Ctx", "ClipTail"},
	{"aggregate", "Ctx", "Push"},
	{"aggregate", "Ctx", "Pop"},
	{"aggregate", "Msg", "Transfer"},
	{"aggregate", "Msg", "Secure"},
	{"aggregate", "Reader", "Next"},
	{"xfer", "Adaptive", "Hop"},
	{"vm", "AddrSpace", "AddRegion"},
	{"vm", "AddrSpace", "Write"},
	{"vm", "AddrSpace", "Read"},
	{"vm", "AddrSpace", "TouchWrite"},
	{"vm", "AddrSpace", "TouchRead"},
}

func isErrflowTarget(fn *types.Func) bool {
	if _, ok := returnsError(fn); !ok {
		return false
	}
	for _, m := range errflowMethods {
		if fn.Name() == m.method && recvTypeIs(fn, m.pkg, m.typ) {
			return true
		}
	}
	return false
}

func runErrFlow(pass *Pass) error {
	info := pass.TypesInfo
	report := func(call *ast.CallExpr, how string) {
		fn := calleeFunc(info, call)
		pass.Reportf(call.Pos(),
			"error from %s.%s %s: protocol errors encode protection faults; handle it or discard explicitly with _ =",
			recvTypeName(fn), fn.Name(), how)
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if fn := calleeFunc(info, call); fn != nil && isErrflowTarget(fn) {
						report(call, "is implicitly discarded")
					}
				}
			case *ast.GoStmt:
				if fn := calleeFunc(info, s.Call); fn != nil && isErrflowTarget(fn) {
					report(s.Call, "is lost in a go statement")
				}
			case *ast.DeferStmt:
				if fn := calleeFunc(info, s.Call); fn != nil && isErrflowTarget(fn) {
					report(s.Call, "is lost in a defer statement")
				}
			}
			return true
		})
	}
	return nil
}

// recvTypeName names fn's receiver type for diagnostics ("?" if none).
func recvTypeName(fn *types.Func) string {
	if fn == nil {
		return "?"
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			return named.Obj().Name()
		}
	}
	return "?"
}
