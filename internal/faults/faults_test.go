package faults

import (
	"testing"

	"fbufs/internal/simtime"
)

func TestNilPlaneIsDisabled(t *testing.T) {
	var p *Plane
	if p.Should(FrameAlloc) {
		t.Fatal("nil plane fired")
	}
	if got := p.LinkVerdict(0, 0); got != Deliver {
		t.Fatalf("nil plane verdict = %v, want Deliver", got)
	}
	if p.Consulted(FrameAlloc) != 0 || p.Injected(FrameAlloc) != 0 {
		t.Fatal("nil plane has counters")
	}
	if p.LinkSnapshot() != nil {
		t.Fatal("nil plane has link stats")
	}
	if p.Report() != "faults: disabled\n" {
		t.Fatalf("nil plane report: %q", p.Report())
	}
}

func TestZeroRateNeverFiresAndDrawsNothing(t *testing.T) {
	// Two planes with the same seed: one consults a disabled point a
	// thousand times first, the other doesn't. Their subsequent decisions
	// on an enabled point must be identical — disabled consultations must
	// not advance the random stream.
	a, b := NewPlane(7), NewPlane(7)
	for i := 0; i < 1000; i++ {
		if a.Should(MapBuild) {
			t.Fatal("zero-rate point fired")
		}
	}
	a.SetRate(FrameAlloc, 500_000)
	b.SetRate(FrameAlloc, 500_000)
	for i := 0; i < 200; i++ {
		if a.Should(FrameAlloc) != b.Should(FrameAlloc) {
			t.Fatalf("decision %d diverged after disabled consultations", i)
		}
	}
}

func TestRateIsRespected(t *testing.T) {
	p := NewPlane(42)
	p.SetRate(PathAlloc, 250_000) // 25%
	const n = 100_000
	fired := 0
	for i := 0; i < n; i++ {
		if p.Should(PathAlloc) {
			fired++
		}
	}
	frac := float64(fired) / n
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("25%% rate fired %.3f of the time", frac)
	}
	if p.Consulted(PathAlloc) != n || p.Injected(PathAlloc) != uint64(fired) {
		t.Fatal("counters disagree with observed behavior")
	}
}

func TestRateClampAndAlways(t *testing.T) {
	p := NewPlane(1)
	p.SetRate(ChunkGrant, 2_000_000)
	if p.Rate(ChunkGrant) != 1_000_000 {
		t.Fatalf("rate not clamped: %d", p.Rate(ChunkGrant))
	}
	for i := 0; i < 100; i++ {
		if !p.Should(ChunkGrant) {
			t.Fatal("rate 1e6 did not fire")
		}
	}
}

func TestSameSeedSameSchedule(t *testing.T) {
	run := func() []bool {
		p := NewPlane(12345)
		p.SetRate(FrameAlloc, 100_000)
		p.SetRate(DomainCrash, 5_000)
		var out []bool
		for i := 0; i < 500; i++ {
			out = append(out, p.Should(FrameAlloc), p.Should(DomainCrash))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := NewPlane(1), NewPlane(2)
	a.SetRate(FrameAlloc, 500_000)
	b.SetRate(FrameAlloc, 500_000)
	same := true
	for i := 0; i < 64; i++ {
		if a.Should(FrameAlloc) != b.Should(FrameAlloc) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 64-decision schedules")
	}
}

func TestLinkVerdictPartitionDominates(t *testing.T) {
	p := NewPlane(9)
	lf := p.Link(0)
	lf.DropPerMillion = 10_000
	lf.AddPartition(simtime.MS(10), simtime.MS(20))

	// Inside the window everything drops without drawing randomness.
	for i := 0; i < 50; i++ {
		if got := p.LinkVerdict(0, simtime.MS(10)+simtime.Time(i)); got != Drop {
			t.Fatalf("in partition: verdict %v", got)
		}
	}
	// Boundary: Until is exclusive.
	if got := p.LinkVerdict(0, simtime.MS(20)); got == Drop && lf.partitionDrops > 50 {
		t.Fatal("partition Until should be exclusive")
	}
	st := p.LinkSnapshot()
	if len(st) != 1 || st[0].PartitionDrops != 50 {
		t.Fatalf("partition drops = %+v", st)
	}
}

func TestLinkVerdictRatesPartitionSpace(t *testing.T) {
	p := NewPlane(77)
	lf := p.Link(3)
	lf.DropPerMillion = 100_000
	lf.CorruptPerMillion = 100_000
	lf.DupPerMillion = 100_000
	lf.ReorderPerMillion = 100_000
	counts := map[LinkAction]int{}
	const n = 50_000
	for i := 0; i < n; i++ {
		counts[p.LinkVerdict(3, simtime.Time(i))]++
	}
	for _, a := range []LinkAction{Drop, Corrupt, Duplicate, Reorder} {
		frac := float64(counts[a]) / n
		if frac < 0.08 || frac > 0.12 {
			t.Fatalf("%v rate %.3f, want ~0.10", a, frac)
		}
	}
	if frac := float64(counts[Deliver]) / n; frac < 0.55 || frac > 0.65 {
		t.Fatalf("deliver rate %.3f, want ~0.60", frac)
	}
	st := p.LinkSnapshot()
	if st[0].PDUs != n {
		t.Fatalf("pdus = %d", st[0].PDUs)
	}
	var sum uint64
	for a := LinkAction(0); a < numLinkActions; a++ {
		sum += st[0].Actions[a]
	}
	if sum != n {
		t.Fatalf("action counts sum %d != %d", sum, n)
	}
}

func TestQuietLinkDrawsNothing(t *testing.T) {
	// Verdicts on a link with all-zero rates must not shift point faults.
	a, b := NewPlane(5), NewPlane(5)
	a.Link(0) // configured but all rates zero
	for i := 0; i < 1000; i++ {
		if a.LinkVerdict(0, simtime.Time(i)) != Deliver {
			t.Fatal("quiet link did not deliver")
		}
	}
	a.SetRate(FrameAlloc, 500_000)
	b.SetRate(FrameAlloc, 500_000)
	for i := 0; i < 100; i++ {
		if a.Should(FrameAlloc) != b.Should(FrameAlloc) {
			t.Fatalf("quiet-link verdicts perturbed the point stream at %d", i)
		}
	}
}

func TestReportDeterministic(t *testing.T) {
	mk := func() *Plane {
		p := NewPlane(3)
		p.SetRate(FrameAlloc, 10_000)
		p.Link(1).DropPerMillion = 50_000
		p.Link(0).ReorderPerMillion = 20_000
		for i := 0; i < 300; i++ {
			p.Should(FrameAlloc)
			p.LinkVerdict(0, simtime.Time(i))
			p.LinkVerdict(1, simtime.Time(i))
		}
		return p
	}
	if a, b := mk().Report(), mk().Report(); a != b {
		t.Fatalf("reports differ:\n%s\n---\n%s", a, b)
	}
}

func TestPointAndActionNames(t *testing.T) {
	for pt := Point(0); pt < numPoints; pt++ {
		if pt.String() == "" {
			t.Fatalf("point %d unnamed", pt)
		}
	}
	for a := LinkAction(0); a < numLinkActions; a++ {
		if a.String() == "" {
			t.Fatalf("action %d unnamed", a)
		}
	}
	if Point(99).String() != "point(99)" || LinkAction(99).String() != "action(99)" {
		t.Fatal("out-of-range String")
	}
}
