// Package faults is the deterministic fault-injection plane. A single
// *Plane, seeded once, is consulted by every layer through cheap
// nil-guarded hooks (the same pattern as internal/obs): a nil plane — or a
// point whose rate is zero — costs one pointer comparison and draws nothing
// from the random stream, so enabling one fault point never perturbs the
// schedule of another.
//
// Two kinds of faults are modeled:
//
//   - Point faults (Should): synthetic resource failures injected at named
//     points in the allocation machinery — frame-pool exhaustion, mapping
//     build retries, chunk-grant failure, per-path quota, and domain
//     crash-at-point. Each point has an independent per-million rate.
//
//   - Link faults (LinkVerdict): per-link loss, corruption, duplication,
//     and reordering rates, plus timed partition windows, evaluated at
//     simulated transmit time. These drive the netsim lossy-link layer.
//
// All randomness comes from the plane's own splitmix64 generator so a run
// is a pure function of the seed and the consultation sequence; no global
// rand, no wall clock. Counters record every consultation and injection per
// point and per link action, and Report renders them in a fixed order so
// chaos-harness output is byte-identical across runs with the same seed.
package faults

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"fbufs/internal/simtime"
)

// Point names a fault-injection site in the facility.
type Point uint8

// Fault-injection points, one per recovery mechanism under test.
const (
	// FrameAlloc simulates physical frame-pool exhaustion: vm.System
	// returns mem.ErrOutOfMemory from AllocFrame without touching the pool.
	FrameAlloc Point = iota
	// MapBuild simulates a transient mapping-construction failure: the VM
	// layer retries the PTE install, charging the extra cost.
	MapBuild
	// ChunkGrant simulates global fbuf region exhaustion: core.Manager
	// returns ErrRegionFull from grantChunk.
	ChunkGrant
	// PathAlloc simulates per-path chunk quota exhaustion: core.DataPath
	// returns ErrQuota from carve.
	PathAlloc
	// DomainCrash terminates a domain at an operation boundary, exercising
	// the paper's §3.3 originator-termination cleanup.
	DomainCrash

	numPoints
)

var pointNames = [numPoints]string{
	FrameAlloc:  "frame-alloc",
	MapBuild:    "map-build",
	ChunkGrant:  "chunk-grant",
	PathAlloc:   "path-alloc",
	DomainCrash: "domain-crash",
}

// String returns the point's stable name.
func (p Point) String() string {
	if p < numPoints {
		return pointNames[p]
	}
	return fmt.Sprintf("point(%d)", uint8(p))
}

// NumPoints is the number of defined fault points.
const NumPoints = int(numPoints)

// LinkAction is the verdict for one PDU crossing a simulated link.
type LinkAction uint8

// Link verdicts, in increasing order of mischief.
const (
	// Deliver passes the PDU through untouched.
	Deliver LinkAction = iota
	// Drop discards the PDU (loss, or a partition window).
	Drop
	// Corrupt delivers the PDU with flipped payload bytes; the receiving
	// driver's CRC check must discard it.
	Corrupt
	// Duplicate delivers the PDU twice; the transport's duplicate
	// suppression must absorb the extra copy.
	Duplicate
	// Reorder delays the PDU so later PDUs overtake it.
	Reorder

	numLinkActions
)

var linkActionNames = [numLinkActions]string{
	Deliver:   "deliver",
	Drop:      "drop",
	Corrupt:   "corrupt",
	Duplicate: "duplicate",
	Reorder:   "reorder",
}

// String returns the action's stable name.
func (a LinkAction) String() string {
	if a < numLinkActions {
		return linkActionNames[a]
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// partition is a closed-open window [From, Until) of simulated time during
// which every PDU on the link is dropped.
type partition struct {
	From, Until simtime.Time
}

// LinkFaults holds one directed link's fault configuration and counters.
// Rates are per-million and evaluated in the order drop, corrupt,
// duplicate, reorder from a single draw, so the four rates partition the
// probability space (their sum must stay ≤ 1_000_000).
type LinkFaults struct {
	DropPerMillion    uint32
	CorruptPerMillion uint32
	DupPerMillion     uint32
	ReorderPerMillion uint32

	partitions []partition

	pdus           uint64
	actions        [numLinkActions]uint64
	partitionDrops uint64
}

// AddPartition schedules a partition window [from, until) on the link.
func (lf *LinkFaults) AddPartition(from, until simtime.Time) {
	lf.partitions = append(lf.partitions, partition{From: from, Until: until})
}

// Plane is the fault-injection plane. The zero value and nil are both
// fully disabled; construct an active plane with NewPlane.
//
// Consultations mutate the random stream and counters, so they are
// mutex-guarded: concurrent workers may share one plane, but then the
// consultation order — and hence the fault schedule — depends on the
// goroutine schedule. Deterministic fault injection requires the
// single-threaded default mode. Configuration (SetRate, Link, AddPartition)
// is control-plane setup, done before concurrent operation starts.
type Plane struct {
	mu  sync.Mutex
	rng uint64 // splitmix64 state

	rates     [numPoints]uint32 // per-million injection probability
	consulted [numPoints]uint64
	injected  [numPoints]uint64

	links map[int]*LinkFaults
}

// NewPlane creates a fault plane with all rates zero, seeded for the
// deterministic random stream. Two planes with the same seed and the same
// consultation sequence make identical decisions.
func NewPlane(seed int64) *Plane {
	return &Plane{rng: uint64(seed) ^ 0x9e3779b97f4a7c15}
}

// next draws the next value from the plane's splitmix64 stream.
func (p *Plane) next() uint64 {
	p.rng += 0x9e3779b97f4a7c15
	z := p.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SetRate sets the injection probability for a point, in parts per million.
// Rate 0 disables the point and stops it drawing from the random stream.
func (p *Plane) SetRate(pt Point, perMillion uint32) {
	if perMillion > 1_000_000 {
		perMillion = 1_000_000
	}
	p.rates[pt] = perMillion
}

// Rate returns the point's current per-million rate.
func (p *Plane) Rate(pt Point) uint32 { return p.rates[pt] }

// Should reports whether the fault at pt fires now. Safe on a nil plane
// (never fires). A disabled point (rate 0) is counted as consulted but
// does not draw from the random stream, so enabling one point does not
// shift another point's schedule.
func (p *Plane) Should(pt Point) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.consulted[pt]++
	r := p.rates[pt]
	if r == 0 {
		return false
	}
	if p.next()%1_000_000 >= uint64(r) {
		return false
	}
	p.injected[pt]++
	return true
}

// Consulted returns how many times pt was consulted.
func (p *Plane) Consulted(pt Point) uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.consulted[pt]
}

// Injected returns how many times pt fired.
func (p *Plane) Injected(pt Point) uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected[pt]
}

// Link returns the fault configuration for the directed link id, creating
// it on first use. Callers configure rates and partitions on the result.
// Must not be called on a nil plane.
func (p *Plane) Link(id int) *LinkFaults {
	if p.links == nil {
		p.links = make(map[int]*LinkFaults)
	}
	lf := p.links[id]
	if lf == nil {
		lf = &LinkFaults{}
		p.links[id] = lf
	}
	return lf
}

// LinkVerdict decides the fate of one PDU crossing the directed link id at
// simulated time now. Safe on a nil plane (always Deliver). Partition
// windows dominate: inside one, every PDU drops without drawing from the
// random stream, so the loss schedule after the partition is unchanged.
// A link with all rates zero also does not draw.
func (p *Plane) LinkVerdict(id int, now simtime.Time) LinkAction {
	if p == nil {
		return Deliver
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	lf := p.links[id]
	if lf == nil {
		return Deliver
	}
	lf.pdus++
	for _, w := range lf.partitions {
		if now >= w.From && now < w.Until {
			lf.partitionDrops++
			lf.actions[Drop]++
			return Drop
		}
	}
	total := uint64(lf.DropPerMillion) + uint64(lf.CorruptPerMillion) +
		uint64(lf.DupPerMillion) + uint64(lf.ReorderPerMillion)
	if total == 0 {
		lf.actions[Deliver]++
		return Deliver
	}
	draw := p.next() % 1_000_000
	a := Deliver
	switch {
	case draw < uint64(lf.DropPerMillion):
		a = Drop
	case draw < uint64(lf.DropPerMillion)+uint64(lf.CorruptPerMillion):
		a = Corrupt
	case draw < uint64(lf.DropPerMillion)+uint64(lf.CorruptPerMillion)+uint64(lf.DupPerMillion):
		a = Duplicate
	case draw < total:
		a = Reorder
	}
	lf.actions[a]++
	return a
}

// LinkStats is a read-only snapshot of one link's counters.
type LinkStats struct {
	Link           int
	PDUs           uint64
	Actions        [numLinkActions]uint64
	PartitionDrops uint64
}

// Action returns the count for one verdict.
func (s LinkStats) Action(a LinkAction) uint64 { return s.Actions[a] }

// LinkSnapshot returns per-link counters sorted by link id (deterministic
// despite the map). Safe on a nil plane.
func (p *Plane) LinkSnapshot() []LinkStats {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := make([]int, 0, len(p.links))
	for id := range p.links {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]LinkStats, 0, len(ids))
	for _, id := range ids {
		lf := p.links[id]
		out = append(out, LinkStats{
			Link:           id,
			PDUs:           lf.pdus,
			Actions:        lf.actions,
			PartitionDrops: lf.partitionDrops,
		})
	}
	return out
}

// Report renders every point and link counter in a fixed order. The output
// is byte-identical for identical seeds and schedules; the chaos harness
// embeds it in its transcript.
func (p *Plane) Report() string {
	var b strings.Builder
	if p == nil {
		b.WriteString("faults: disabled\n")
		return b.String()
	}
	b.WriteString("faults:\n")
	p.mu.Lock()
	for pt := Point(0); pt < numPoints; pt++ {
		fmt.Fprintf(&b, "  point %-12s rate=%-7d consulted=%-8d injected=%d\n",
			pt, p.rates[pt], p.consulted[pt], p.injected[pt])
	}
	p.mu.Unlock()
	for _, ls := range p.LinkSnapshot() {
		fmt.Fprintf(&b, "  link %d: pdus=%d", ls.Link, ls.PDUs)
		for a := LinkAction(0); a < numLinkActions; a++ {
			fmt.Fprintf(&b, " %s=%d", a, ls.Actions[a])
		}
		fmt.Fprintf(&b, " partition-drops=%d\n", ls.PartitionDrops)
	}
	return b.String()
}
