package bench

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestAuditAttribution(t *testing.T) {
	a, err := Audit()
	if err != nil {
		t.Fatal(err)
	}
	pr := a.Profile.Path("data")
	if pr == nil {
		t.Fatal("audit run produced no data-path attribution")
	}
	if pr.Traces != auditCount {
		t.Errorf("data path traces = %d, want %d", pr.Traces, auditCount)
	}
	// Acceptance: the per-stage attribution must sum to the end-to-end
	// time within 5% (the timeline fold makes it exact).
	if pr.E2ETotalNs == 0 {
		t.Fatal("e2e total is zero")
	}
	gap := math.Abs(float64(pr.AttributedNs)-float64(pr.E2ETotalNs)) / float64(pr.E2ETotalNs)
	if gap > 0.05 {
		t.Errorf("attribution %d vs e2e %d: off by %.1f%%", pr.AttributedNs, pr.E2ETotalNs, 100*gap)
	}
	// The cached path's cost structure: control transfer must appear —
	// the audit config runs with rings on, so it shows up as charged
	// ring-doorbell time rather than legacy ipc — and wire time must be
	// attributed.
	var sawDoorbell, sawLink bool
	for _, row := range pr.Stages {
		if row.Layer == "ring-doorbell" && row.Stage == "ring" {
			sawDoorbell = true
		}
		if row.Layer == "net" && row.Stage == "link" {
			sawLink = true
		}
	}
	if !sawDoorbell {
		t.Error("no ring-doorbell stage in data-path attribution")
	}
	if !sawLink {
		t.Error("no net/link stage in data-path attribution")
	}
	// Acks trace separately.
	if a.Profile.Path("ack") == nil {
		t.Error("no ack path in profile")
	}
	// Clean run: the flight recorder must not have tripped.
	if tripped, an := a.Recorder.Tripped(); tripped {
		t.Errorf("flight recorder tripped on clean run: %s %s", an.Kind, an.Detail)
	}
	// Contention heatmap covers both hosts' paths; single-threaded run
	// never contends.
	var aPaths, bPaths int
	for _, c := range a.Contention {
		if strings.HasPrefix(c.Name, "A.") {
			aPaths++
		}
		if strings.HasPrefix(c.Name, "B.") {
			bPaths++
		}
		if c.Contended != 0 {
			t.Errorf("path %s contended in single-threaded run", c.Name)
		}
	}
	if aPaths == 0 || bPaths == 0 {
		t.Errorf("contention cells missing a host: A=%d B=%d", aPaths, bPaths)
	}
}

func TestAuditReportAndCompare(t *testing.T) {
	rep, a, err := AuditReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema {
		t.Errorf("audit report schema = %d, want %d", rep.Schema, ReportSchema)
	}
	exp := rep.Experiments["audit_latency_attribution"]
	if exp.Headline <= 0 {
		t.Fatal("audit headline p99 is zero")
	}
	if exp.Values["e2e p99_ns"] != exp.Headline {
		t.Error("headline is not the e2e p99")
	}

	// Round-trip through the loader.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Identical run vs itself: no regression.
	if err := CompareAudit(loaded, rep); err != nil {
		t.Errorf("self-comparison regressed: %v", err)
	}
	// A 20% slower current report must fail the gate.
	worse := NewReport()
	wv := make(map[string]float64, len(exp.Values))
	for k, v := range exp.Values {
		wv[k] = v * 1.2
	}
	worse.Experiments["audit_latency_attribution"] = Experiment{Unit: "ns", Headline: exp.Headline * 1.2, Values: wv}
	if err := CompareAudit(loaded, worse); err == nil {
		t.Error("20% regression passed the gate")
	}

	// The flight recorder's dump must be loadable Perfetto JSON even
	// untripped (CI uploads it as an artifact).
	var dump bytes.Buffer
	if err := a.Recorder.WriteDump(&dump); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(dump.Bytes(), &parsed); err != nil {
		t.Fatalf("audit dump is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Error("audit dump has no trace events")
	}
}

func TestLoadReportRejectsUnknownSchema(t *testing.T) {
	for _, body := range []string{
		`{"experiments":{}}`,             // pre-versioning report: schema 0
		`{"schema":99,"experiments":{}}`, // future version
		`{"schema":-1,"experiments":{}}`, // nonsense
	} {
		if _, err := LoadReport(strings.NewReader(body)); err == nil {
			t.Errorf("LoadReport accepted %s", body)
		}
	}
	if _, err := LoadReport(strings.NewReader(`{"schema":2,"seed":1,"experiments":{}}`)); err != nil {
		t.Errorf("LoadReport rejected current schema: %v", err)
	}
}
