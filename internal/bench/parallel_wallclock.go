// Wall-clock parallel driver: the only bench file that runs real
// goroutines against one shared manager. It exists to demonstrate (and, in
// CI under -race, to check) that the facility's data-plane hot paths are
// safe under true concurrency; its throughput numbers depend on the host
// machine and are never written into BENCH_report.json — the committed
// smp_scaling figures come from the deterministic harness in parallel.go.
//
//detlint:parallel
package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

// ParallelWallClock runs `workers` goroutines of alloc/free cycles over one
// shared cached/volatile path, once through per-worker magazines and once
// through the shared-lock path, and reports measured wall-clock throughput
// plus the facility's real contention counters (fbufbench -parallel N).
func ParallelWallClock(workers, opsPerWorker int) (*Table, error) {
	if workers < 1 {
		workers = 1
	}
	if opsPerWorker < 1 {
		opsPerWorker = 1
	}
	t := &Table{
		Title:  fmt.Sprintf("Wall-clock parallel alloc/free: %d goroutines x %d ops (GOMAXPROCS=%d)", workers, opsPerWorker, runtime.GOMAXPROCS(0)),
		Header: []string{"config", "kops/s", "lock acquires", "lock contended", "mag hits", "mag misses"},
		Note:   "machine-dependent; not part of BENCH_report.json (see the simulated smp_scaling experiment)",
	}
	for _, cfg := range smpConfigs {
		run, err := wallClockRun(workers, opsPerWorker, cfg.magazines)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			cfg.name,
			fmt.Sprintf("%.0f", run.opsPerSec/1e3),
			fmt.Sprintf("%d", run.cont.LockAcquires),
			fmt.Sprintf("%d", run.cont.LockContended),
			fmt.Sprintf("%d", run.cont.MagazineHits),
			fmt.Sprintf("%d", run.cont.MagazineMisses),
		})
	}
	return t, nil
}

// wallClockRun measures one configuration with real goroutines. All system
// costs charge a single shared atomic clock; only the wall time and the
// contention counters are reported.
func wallClockRun(workers, opsPerWorker int, magazines bool) (*smpRun, error) {
	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), 1<<15, vm.ClockSink{Clock: clk})
	reg := domain.NewRegistry(sys)
	mgr := core.NewManagerGeometry(sys, reg, 256, 64)
	mgr.WallNow = func() int64 { return time.Now().UnixNano() }
	src := reg.New("src")
	dst := reg.New("dst")
	path, err := mgr.NewPath("smp-wall", core.CachedVolatile(), 1, src, dst)
	if err != nil {
		return nil, err
	}

	errs := make([]error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			var mag *core.Magazine
			if magazines {
				mag = path.NewMagazine(0)
				defer mag.Drain()
			}
			for op := 0; op < opsPerWorker; op++ {
				var f *core.Fbuf
				var err error
				if mag != nil {
					f, err = mag.Alloc()
				} else {
					f, err = path.Alloc()
				}
				if err != nil {
					errs[slot] = err
					return
				}
				if mag != nil {
					err = mag.Free(f, src)
				} else {
					err = mgr.Free(f, src)
				}
				if err != nil {
					errs[slot] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return &smpRun{
		opsPerSec: float64(workers*opsPerWorker) / elapsed.Seconds(),
		cont:      mgr.ContentionSnapshot(),
	}, nil
}
