package bench

import (
	"fmt"
	"reflect"
	"testing"
)

// TestSMPCycleScaling pins the original cycle harness's shape: magazines
// near-linear to 4 workers, global lock saturating well below.
func TestSMPCycleScaling(t *testing.T) {
	vals, _, err := smpScalingValues()
	if err != nil {
		t.Fatal(err)
	}
	if s := vals["speedup magazine 4w"]; s < 3.5 {
		t.Errorf("magazine 4w cycle speedup = %.2f, want >= 3.5", s)
	}
	if s := vals["speedup global-lock 4w"]; s > 2.5 {
		t.Errorf("global-lock 4w cycle speedup = %.2f, want <= 2.5", s)
	}
}

// TestSMPBurstScaling is the PR's acceptance gate: on the burst workload
// the depot path reaches >=6x at 8 workers and stays near-linear to 16,
// while magazine-only refill/flush traffic caps below 3x and the global
// lock stays flat.
func TestSMPBurstScaling(t *testing.T) {
	vals := make(map[string]float64)
	if _, err := smpBurstValues(SMPSeed, vals); err != nil {
		t.Fatal(err)
	}
	if s := vals["speedup burst depot 8w"]; s < 6 {
		t.Errorf("depot 8w burst speedup = %.2f, want >= 6", s)
	}
	if s := vals["speedup burst depot 16w"]; s < 12 {
		t.Errorf("depot 16w burst speedup = %.2f, want >= 12 (near-linear)", s)
	}
	if s := vals["speedup burst depot 64w"]; s < 32 {
		t.Errorf("depot 64w burst speedup = %.2f, want >= 32", s)
	}
	if s := vals["speedup burst magazine 8w"]; s > 3 {
		t.Errorf("magazine 8w burst speedup = %.2f, want <= 3", s)
	}
	if s := vals["speedup burst global-lock 64w"]; s > 2 {
		t.Errorf("global-lock 64w burst speedup = %.2f, want <= 2", s)
	}
	// The depot runs must actually exchange whole units, and at 64 workers
	// the stack alone cannot hold the inventory, so spills and assemblies
	// (the sharded free lists) must both fire.
	if n := vals["burst depot 64w exchanges"]; n == 0 {
		t.Error("depot 64w run recorded no whole-unit exchanges")
	}
	if n := vals["burst depot 64w spills"]; n == 0 {
		t.Error("depot 64w run never spilled to the sharded free lists")
	}
	if n := vals["burst depot 64w assemblies"]; n == 0 {
		t.Error("depot 64w run never assembled a unit from the shards")
	}
	// Heatmap completeness: every shard has a p99 key (the baseline gate
	// errors on missing keys, so absence here would poison the baseline).
	for _, w := range smpBurstWorkerCounts {
		for s := 0; s < smpDepotShards; s++ {
			k := fmt.Sprintf("burst depot %dw shard %d wait p99_ns", w, s)
			if _, ok := vals[k]; !ok {
				t.Errorf("missing heatmap key %q", k)
			}
		}
	}
	// At 64 workers the shards must see real (modelled) queueing.
	var contended bool
	for s := 0; s < smpDepotShards; s++ {
		if vals[fmt.Sprintf("burst depot 64w shard %d wait p99_ns", s)] > 0 {
			contended = true
		}
	}
	if !contended {
		t.Error("depot 64w heatmap shows zero wait on every shard")
	}
}

// TestSMPBurstDeterministic re-runs one sweep cell per seed and requires
// bit-identical values — the property the CI seed matrix checks end to end.
func TestSMPBurstDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		a := make(map[string]float64)
		if _, err := smpBurstValues(seed, a); err != nil {
			t.Fatal(err)
		}
		b := make(map[string]float64)
		if _, err := smpBurstValues(seed, b); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("seed %d: burst sweep not deterministic across runs", seed)
		}
	}
}

// TestSMPReportAndCompare exercises the smp gate pair the way CI does:
// a report gates cleanly against itself, a regressed heatmap p99 fails,
// and a missing key fails.
func TestSMPReportAndCompare(t *testing.T) {
	rep, err := SMPReport()
	if err != nil {
		t.Fatal(err)
	}
	exp := rep.Experiments["smp_scaling"]
	if exp.Headline < 6 {
		t.Errorf("smp report headline (depot 8w burst speedup) = %.2f, want >= 6", exp.Headline)
	}
	if err := CompareSMP(rep, rep); err != nil {
		t.Errorf("report does not gate against itself: %v", err)
	}
	// Regress one heatmap value by 2x in a copy of the current report.
	worse, err := SMPReport()
	if err != nil {
		t.Fatal(err)
	}
	var key string
	for k, v := range worse.Experiments["smp_scaling"].Values {
		if v > 0 && len(k) > 6 && k[len(k)-6:] == "p99_ns" {
			worse.Experiments["smp_scaling"].Values[k] = 2 * v
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no nonzero p99_ns key to regress")
	}
	if err := CompareSMP(rep, worse); err == nil {
		t.Errorf("2x regression of %q passed the gate", key)
	}
	delete(worse.Experiments["smp_scaling"].Values, key)
	if err := CompareSMP(rep, worse); err == nil {
		t.Errorf("missing key %q passed the gate", key)
	}
}
