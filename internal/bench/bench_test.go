package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func rowValue(t *testing.T, tbl *Table, mech string, col int) float64 {
	t.Helper()
	for _, row := range tbl.Rows {
		if row[0] == mech {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				t.Fatalf("%s col %d: %v", mech, col, err)
			}
			return v
		}
	}
	t.Fatalf("no row %q", mech)
	return 0
}

func TestTable1MatchesPaper(t *testing.T) {
	tbl, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	// Paper-anchored values: per-page costs of 3/21/29 us and their
	// asymptotic throughputs 10922/1560/1130 Mb/s.
	checks := []struct {
		mech           string
		lo, hi         float64
		mbpsLo, mbpsHi float64
	}{
		{"fbufs, cached/volatile", 2.5, 3.5, 9000, 11500},
		{"fbufs, volatile", 19, 23, 1400, 1700},
		{"fbufs, cached", 27, 31, 1050, 1250},
		{"fbufs", 31, 37, 880, 1060},
		{"Remap (ping-pong)", 19, 26, 0, 1e9},
		{"Remap (one-way, no clear)", 36, 46, 0, 1e9},
	}
	for _, c := range checks {
		us := rowValue(t, tbl, c.mech, 1)
		if us < c.lo || us > c.hi {
			t.Errorf("%s: %.1f us/page outside [%v,%v]", c.mech, us, c.lo, c.hi)
		}
		mbps := rowValue(t, tbl, c.mech, 2)
		if mbps < c.mbpsLo || mbps > c.mbpsHi {
			t.Errorf("%s: %.0f Mb/s outside [%v,%v]", c.mech, mbps, c.mbpsLo, c.mbpsHi)
		}
	}
	// Order-of-magnitude claim and mechanism ordering.
	cv := rowValue(t, tbl, "fbufs, cached/volatile", 1)
	cow := rowValue(t, tbl, "Mach COW", 1)
	cp := rowValue(t, tbl, "Copy", 1)
	if cow < 6*cv || cp < cow {
		t.Errorf("ordering: cv=%.1f cow=%.1f copy=%.1f", cv, cow, cp)
	}
}

func TestFigure3Shape(t *testing.T) {
	fig, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	// Cached/volatile beats Mach native at every size (no special-casing
	// needed for small messages).
	mach := fig.Get("Mach native")
	cv := fig.Get("fbufs, cached/volatile")
	for i := range fig.X {
		if cv.Y[i] <= mach.Y[i] {
			t.Errorf("at %d bytes cached/volatile %.1f <= mach %.1f", fig.X[i], cv.Y[i], mach.Y[i])
		}
	}
	// Under 2KB Mach native beats uncached/non-volatile fbufs.
	plain := fig.Get("fbufs")
	for i, x := range fig.X {
		if x < 2048 && mach.Y[i] <= plain.Y[i] {
			t.Errorf("at %d bytes mach %.1f <= plain fbufs %.1f", x, mach.Y[i], plain.Y[i])
		}
	}
	// At 256KB cached/volatile approaches the paper's ~7000 Mb/s point.
	if v, ok := fig.At("fbufs, cached/volatile", 262144); !ok || v < 6000 || v > 8000 {
		t.Errorf("cached/volatile at 256KB = %.0f, paper plots ~7000", v)
	}
}

func TestFigure4Shape(t *testing.T) {
	fig, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	single := fig.Get("single domain")
	cached := fig.Get("3 domains, cached fbufs")
	uncached := fig.Get("3 domains, uncached fbufs")
	for i, x := range fig.X {
		// Cached roughly doubles uncached across the range (the paper
		// says "more than twofold"; at mid sizes the fragmentation-setup
		// cost, paid by both configurations, dilutes our ratio to ~1.6x —
		// see EXPERIMENTS.md).
		want := 1.9
		if x > 4096 && x < 65536 {
			want = 1.5
		}
		if cached.Y[i] < want*uncached.Y[i] {
			t.Errorf("at %d bytes cached %.1f not %.1fx uncached %.1f", x, cached.Y[i], want, uncached.Y[i])
		}
		// >= 90%% of single-domain throughput at 64KB and beyond.
		if x >= 65536 && cached.Y[i] < 0.9*single.Y[i] {
			t.Errorf("at %d bytes cached %.1f < 90%% of single-domain %.1f", x, cached.Y[i], single.Y[i])
		}
	}
	// The fragmentation anomaly: single-domain throughput peaks at 4KB.
	v4, _ := fig.At("single domain", 4096)
	v8, _ := fig.At("single domain", 8192)
	if v4 <= v8 {
		t.Errorf("no 4KB anomaly: %.1f at 4KB vs %.1f at 8KB", v4, v8)
	}
}

func TestFigure5Shape(t *testing.T) {
	fig, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		last := s.Y[len(s.Y)-1]
		if last < 265 || last > 290 {
			t.Errorf("%s at 1MB: %.0f Mb/s, want ~285 (I/O bound)", s.Name, last)
		}
	}
	// Medium sizes order by number of crossings; at 8KB the per-message
	// IPC latency is the binding constraint on every placement.
	kk, _ := fig.At("kernel-kernel", 8192)
	uu, _ := fig.At("user-user", 8192)
	unu, _ := fig.At("user-netserver-user", 8192)
	if !(kk > uu && uu > unu) {
		t.Errorf("8KB ordering: kk=%.0f uu=%.0f unu=%.0f", kk, uu, unu)
	}
}

func TestFigure6Shape(t *testing.T) {
	fig, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	uu, _ := fig.At("user-user", 1048576)
	// Paper: 252 Mb/s max user-user, a ~12% degradation from 285.
	if uu < 215 || uu > 265 {
		t.Errorf("uncached user-user at 1MB = %.0f, paper reports 252", uu)
	}
	unu, _ := fig.At("user-netserver-user", 1048576)
	if unu < 0.9*uu {
		t.Errorf("netserver case %.0f more than marginally below user-user %.0f", unu, uu)
	}
	kk, _ := fig.At("kernel-kernel", 1048576)
	if kk <= uu {
		t.Errorf("kernel-kernel %.0f should exceed user-user %.0f when CPU-bound", kk, uu)
	}
}

func TestCPULoadContrast(t *testing.T) {
	tbl, err := CPULoad()
	if err != nil {
		t.Fatal(err)
	}
	// Rows: cached16, uncached16, cached32, uncached32.
	rx := func(i int) float64 {
		v, err := strconv.ParseFloat(tbl.Rows[i][3], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if rx(1) < 85 {
		t.Errorf("uncached 16KB rx load %.0f%%, want ~saturated", rx(1))
	}
	if rx(0) > 0.7*rx(1) {
		t.Errorf("cached 16KB rx load %.0f%% not clearly below uncached %.0f%%", rx(0), rx(1))
	}
	if rx(2) >= rx(0) {
		t.Errorf("32KB PDU should cut cached rx load: %.0f%% vs %.0f%%", rx(2), rx(0))
	}
}

func TestAblationsRun(t *testing.T) {
	tables, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 13 {
		t.Fatalf("%d ablation tables", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty", tbl.Title)
		}
	}
}

func TestRenderers(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "b"}, Rows: [][]string{{"x", "1"}}, Note: "n"}
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T", "a", "x", "1", "n"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	fig := &Figure{Title: "F", XLabel: "x", YLabel: "y", X: []int{1, 2},
		Series: []Series{{Name: "s", Y: []float64{3.5, 4.5}}}}
	buf.Reset()
	if _, err := fig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, want := range []string{"F", "s", "3.5", "4.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
	if _, ok := fig.At("s", 2); !ok {
		t.Error("Figure.At failed")
	}
	if fig.Get("nope") != nil {
		t.Error("Get of unknown series")
	}
}
