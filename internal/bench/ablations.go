package bench

import (
	"fmt"

	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/netsim"
	"fbufs/internal/simtime"
)

// Ablations runs one experiment per design choice DESIGN.md calls out,
// reporting the with/without contrast.
func Ablations() ([]*Table, error) {
	var out []*Table
	for _, fn := range []func() (*Table, error){
		AblationOptimizations,
		AblationClearing,
		AblationIntegrated,
		AblationFreeListDiscipline,
		AblationSharedLibraries,
		AblationBusContention,
		AblationPDUSize,
		AblationWindow,
		AblationVCILocality,
		AblationCPUMemoryGap,
		AblationReliableTransport,
		AblationChecksum,
		AblationDomainChain,
	} {
		t, err := fn()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// AblationOptimizations isolates each fbuf optimization in the 3-domain
// loopback test: caching and volatility toggled independently.
func AblationOptimizations() (*Table, error) {
	t := &Table{
		Title:  "Ablation: fbuf optimization levels (3-domain loopback, 64KB messages)",
		Header: []string{"configuration", "throughput Mb/s"},
	}
	mk := func(cached, vol bool) core.Options {
		return core.Options{Cached: cached, Volatile: vol, Integrated: true, Populate: true}
	}
	for _, cfg := range []struct {
		name string
		opts core.Options
	}{
		{"cached + volatile", mk(true, true)},
		{"cached only", mk(true, false)},
		{"volatile only (uncached)", mk(false, true)},
		{"neither (plain fbufs)", mk(false, false)},
	} {
		v, err := figure4Run(false, cfg.opts, 64*1024)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{cfg.name, fmt.Sprintf("%.0f", v)})
	}
	return t, nil
}

// AblationClearing quantifies the security page-clearing cost the caching
// optimization eliminates (paper: 57us/page on the DecStation).
func AblationClearing() (*Table, error) {
	t := &Table{
		Title:  "Ablation: page clearing (uncached 3-domain loopback, 64KB messages)",
		Header: []string{"configuration", "throughput Mb/s"},
	}
	for _, cfg := range []struct {
		name    string
		noClear bool
	}{
		{"uncached, clearing (default)", false},
		{"uncached, clearing skipped", true},
	} {
		opts := core.Uncached()
		opts.Integrated = true
		opts.NoClear = cfg.noClear
		v, err := figure4Run(false, opts, 64*1024)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{cfg.name, fmt.Sprintf("%.0f", v)})
	}
	return t, nil
}

// AblationIntegrated contrasts integrated buffer management (a single DAG
// root reference crosses the boundary) against per-fbuf descriptor
// marshalling, using many-fragment messages so the descriptor count bites.
func AblationIntegrated() (*Table, error) {
	t := &Table{
		Title:  "Ablation: integrated buffer management (3-domain loopback, 256KB messages)",
		Header: []string{"configuration", "throughput Mb/s"},
		Note:   "non-integrated transfers marshal one descriptor per fbuf (steps 2a/3c)",
	}
	for _, cfg := range []struct {
		name       string
		integrated bool
	}{
		{"integrated (DAG in fbufs)", true},
		{"per-fbuf descriptor lists", false},
	} {
		opts := core.CachedVolatile()
		opts.Integrated = cfg.integrated
		// Page-sized data fbufs make messages highly fragmented, so the
		// per-fbuf marshalling and eager-mapping work of non-integrated
		// transfers is visible (a 256KB message spans 64 data fbufs).
		v, err := figure4RunFbufPages(opts, 256*1024, 1)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{cfg.name, fmt.Sprintf("%.0f", v)})
	}
	return t, nil
}

// AblationFreeListDiscipline contrasts the paper's LIFO free list with
// FIFO under memory pressure: a reclaimer strips frames from idle fbufs
// between messages, and LIFO's warm-buffer reuse avoids refills.
func AblationFreeListDiscipline() (*Table, error) {
	t := &Table{
		Title:  "Ablation: free-list discipline under memory pressure (single crossing)",
		Header: []string{"discipline", "lazy refills", "per-hop us"},
		Note:   "LIFO reuses the most recently freed (still resident) fbuf first",
	}
	for _, fifo := range []bool{false, true} {
		r := newRig()
		opts := core.CachedVolatile()
		opts.FIFO = fifo
		p, err := r.mgr.NewPath("p", opts, 4, r.src, r.dst)
		if err != nil {
			return nil, err
		}
		p.SetQuota(16)
		// Populate a deep free list.
		var warm []*core.Fbuf
		for i := 0; i < 8; i++ {
			f, err := p.Alloc()
			if err != nil {
				return nil, err
			}
			warm = append(warm, f)
		}
		for _, f := range warm {
			if err := r.mgr.Free(f, r.src); err != nil {
				return nil, err
			}
		}
		hop := func() error {
			f, err := p.Alloc()
			if err != nil {
				return err
			}
			if err := f.TouchWrite(r.src, 1); err != nil {
				return err
			}
			if err := r.mgr.Transfer(f, r.src, r.dst); err != nil {
				return err
			}
			if err := f.TouchRead(r.dst); err != nil {
				return err
			}
			if err := r.mgr.Free(f, r.dst); err != nil {
				return err
			}
			return r.mgr.Free(f, r.src)
		}
		// Steady state with background reclamation of the coldest frames.
		start := r.clk.Now()
		const iters = 16
		for i := 0; i < iters; i++ {
			if err := hop(); err != nil {
				return nil, err
			}
			r.mgr.DeliverNotices(r.dst, r.src)
			r.mgr.ReclaimIdle(4) // pressure: strip one idle fbuf's frames
		}
		per := (r.clk.Now() - start).Microseconds() / iters
		name := "LIFO"
		if fifo {
			name = "FIFO"
		}
		t.Rows = append(t.Rows, []string{name,
			fmt.Sprintf("%d", r.mgr.Snapshot().LazyRefills), fmt.Sprintf("%.0f", per)})
	}
	return t, nil
}

// AblationSharedLibraries removes the duplicated-text penalty from the
// three-domain end-to-end case ("the use of shared libraries should help
// mitigate this effect").
func AblationSharedLibraries() (*Table, error) {
	t := &Table{
		Title:  "Ablation: shared libraries (user-netserver-user, 8KB messages, window 1)",
		Header: []string{"configuration", "throughput Mb/s"},
	}
	for _, cfg := range []struct {
		name string
		off  bool
	}{
		{"duplicated text (no shared libraries)", false},
		{"shared libraries", true},
	} {
		res, err := netsim.Run(netsim.Config{
			Placement: netsim.UserNetserverUser,
			Opts:      core.CachedVolatile(),
			PDUBytes:  16 * 1024, MsgBytes: 8 * 1024, Count: 8, Window: 1,
			NoTextPenalty: cfg.off,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{cfg.name, fmt.Sprintf("%.0f", res.ThroughputMbps)})
	}
	return t, nil
}

// AblationBusContention removes CPU/memory contention from the bus model,
// exposing the 367 Mb/s DMA-startup ceiling the paper derives for Osiris.
func AblationBusContention() (*Table, error) {
	t := &Table{
		Title:  "Ablation: TurboChannel memory contention (kernel-kernel, 1MB messages)",
		Header: []string{"configuration", "throughput Mb/s"},
		Note:   "paper: per-cell DMA startup caps Osiris at 367 Mb/s; contention yields 285",
	}
	for _, cfg := range []struct {
		name string
		zero bool
	}{
		{"with memory contention", false},
		{"idle-memory bus", true},
	} {
		res, err := netsim.Run(netsim.Config{
			Placement: netsim.KernelKernel,
			Opts:      core.CachedVolatile(),
			PDUBytes:  16 * 1024, MsgBytes: 1 << 20, Count: 5,
			ZeroContention: cfg.zero,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{cfg.name, fmt.Sprintf("%.0f", res.ThroughputMbps)})
	}
	return t, nil
}

// AblationPDUSize reruns the uncached end-to-end case at 32 KB PDUs
// (paper section 4: halving protocol overhead makes even uncached fbufs
// I/O bound, shifting the caching benefit entirely into CPU load).
func AblationPDUSize() (*Table, error) {
	t := &Table{
		Title:  "Ablation: IP PDU size (user-user, 1MB messages)",
		Header: []string{"configuration", "PDU KB", "throughput Mb/s", "rx CPU %"},
	}
	uncached := core.UncachedNonVolatile()
	uncached.Integrated = true
	for _, cfg := range []struct {
		name string
		opts core.Options
		pdu  int
	}{
		{"cached", core.CachedVolatile(), 16},
		{"uncached", uncached, 16},
		{"cached", core.CachedVolatile(), 32},
		{"uncached", uncached, 32},
	} {
		res, err := netsim.Run(netsim.Config{
			Placement: netsim.UserUser, Opts: cfg.opts,
			PDUBytes: cfg.pdu * 1024, MsgBytes: 1 << 20, Count: 5,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{cfg.name, fmt.Sprintf("%d", cfg.pdu),
			fmt.Sprintf("%.0f", res.ThroughputMbps), fmt.Sprintf("%.0f", res.RxCPU*100)})
	}
	return t, nil
}

// AblationWindow sweeps the sliding-window depth of the test protocol.
func AblationWindow() (*Table, error) {
	t := &Table{
		Title:  "Ablation: sliding-window depth (user-user, 64KB messages)",
		Header: []string{"window", "throughput Mb/s"},
	}
	for _, w := range []int{1, 2, 4, 8} {
		res, err := netsim.Run(netsim.Config{
			Placement: netsim.UserUser, Opts: core.CachedVolatile(),
			PDUBytes: 16 * 1024, MsgBytes: 64 * 1024, Count: 12, Window: w,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", w), fmt.Sprintf("%.0f", res.ThroughputMbps)})
	}
	return t, nil
}

// ReportMetric returns the headline simulated number for a figure: the
// named series' value at the largest message size (used by the testing.B
// harness via b.ReportMetric).
func ReportMetric(fig *Figure, series string) float64 {
	s := fig.Get(series)
	if s == nil || len(s.Y) == 0 {
		return 0
	}
	return s.Y[len(s.Y)-1]
}

// AblationCPUMemoryGap tests the paper's section 2.2.1 prediction that
// page remapping and copying become memory bound as CPUs outpace memory:
// on a hypothetical machine with a 10x faster CPU but unchanged memory,
// the copy and remap mechanisms improve far less than 10x, while the
// cached/volatile fbuf path keeps pace with the CPU.
func AblationCPUMemoryGap() (*Table, error) {
	t := &Table{
		Title:  "Ablation: CPU/memory speed gap (per-page cost, 10x CPU, same memory)",
		Header: []string{"mechanism", "DecStation us/page", "10x-CPU us/page", "speedup"},
		Note:   "paper 2.2.1: remapping 'is likely to become more memory bound as the gap widens'",
	}
	base := machine.DecStation5000()
	fast := machine.FutureCPU(10)
	for _, mech := range []string{"fbufs, cached/volatile", "Remap", "Copy"} {
		slow, err := measurePerPageOn(newRigCost(base), mech, 64)
		if err != nil {
			return nil, err
		}
		quick, err := measurePerPageOn(newRigCost(fast), mech, 64)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{mech,
			fmt.Sprintf("%.1f", slow), fmt.Sprintf("%.1f", quick),
			fmt.Sprintf("%.1fx", slow/quick)})
	}
	return t, nil
}

// AblationReliableTransport swaps the harness's implicit acknowledgements
// for the real sliding-window protocol (protocols.SWP) and injects link
// loss, showing the cost of reliability machinery and of retransmission —
// the retain-for-retransmit case is the paper's stated argument for copy
// semantics over immutable buffers.
func AblationReliableTransport() (*Table, error) {
	t := &Table{
		Title:  "Ablation: reliable transport (user-user, 64KB messages)",
		Header: []string{"configuration", "throughput Mb/s", "delivered"},
		Note:   "SWP: sequence numbers, cumulative acks, timer retransmission over the ATM link",
	}
	for _, cfg := range []struct {
		name string
		swp  bool
		drop int
	}{
		{"harness acks, clean link", false, 0},
		{"SWP transport, clean link", true, 0},
		{"SWP transport, 1-in-9 PDU loss", true, 9},
	} {
		res, err := netsim.Run(netsim.Config{
			Placement: netsim.UserUser,
			Opts:      core.CachedVolatile(),
			PDUBytes:  16 * 1024, MsgBytes: 64 * 1024, Count: 10,
			UseSWP: cfg.swp, DropEvery: cfg.drop,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{cfg.name,
			fmt.Sprintf("%.0f", res.ThroughputMbps), fmt.Sprintf("%d", res.Delivered)})
	}
	return t, nil
}

// AblationChecksum turns on UDP checksumming in the loopback stack: the
// per-byte data handling the paper's section 5.2 notes is one of the few
// manipulations "applied to the entire data", and it dwarfs buffer-editing
// costs.
func AblationChecksum() (*Table, error) {
	t := &Table{
		Title:  "Ablation: UDP checksumming (3-domain loopback, 64KB messages)",
		Header: []string{"configuration", "throughput Mb/s"},
	}
	for _, cfg := range []struct {
		name     string
		checksum bool
	}{
		{"checksum off (x-kernel default)", false},
		{"checksum on (reads every byte, twice)", true},
	} {
		v, err := figure4RunChecksum(core.CachedVolatile(), 64*1024, cfg.checksum)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{cfg.name, fmt.Sprintf("%.0f", v)})
	}
	return t, nil
}

// AblationDomainChain answers the paper's section 5.1 question — "how many
// domains might a data path intersect in practice?" — with a measurement:
// a message relayed through a chain of N protection domains. With
// cached/volatile fbufs each extra domain costs only the IPC invocation
// plus the receiver's TLB touches; with uncached fbufs every extra domain
// adds per-page mapping work, so the per-crossing penalty grows with the
// chain.
func AblationDomainChain() (*Table, error) {
	t := &Table{
		Title:  "Ablation: chain length (64KB message relayed through N domains)",
		Header: []string{"domains", "cached/volatile Mb/s", "uncached Mb/s"},
		Note: "each added domain costs ~110us of control transfer in BOTH configurations " +
			"(intermediaries never touch the body, so no mappings are built for them); " +
			"uncached merely starts from a worse base — the paper's 5.1 point",
	}
	const bytes = 64 * 1024
	const pages = bytes / machine.PageSize
	measure := func(n int, opts core.Options) (float64, error) {
		r := newRigCost(machine.DecStation5000())
		doms := []*domain.Domain{r.src}
		for i := 1; i < n; i++ {
			doms = append(doms, r.reg.New(fmt.Sprintf("hop%d", i)))
		}
		p, err := r.mgr.NewPath("chain", opts, pages, doms...)
		if err != nil {
			return 0, err
		}
		p.SetQuota(16)
		hop := func() error {
			f, err := p.Alloc()
			if err != nil {
				return err
			}
			if err := f.TouchWrite(doms[0], 1); err != nil {
				return err
			}
			for i := 1; i < n; i++ {
				// Each relay is a cross-domain invocation carrying the buffer.
				r.sys.Sink().Charge(r.sys.Cost.IPCLatency)
				if err := r.mgr.Transfer(f, doms[i-1], doms[i]); err != nil {
					return err
				}
				if err := r.mgr.Free(f, doms[i-1]); err != nil {
					return err
				}
			}
			last := doms[n-1]
			if err := f.TouchRead(last); err != nil {
				return err
			}
			if err := r.mgr.Free(f, last); err != nil {
				return err
			}
			// Deallocation notice rides the next RPC reply to the owner.
			r.mgr.DeliverNotices(last, doms[0])
			return nil
		}
		for i := 0; i < 2; i++ { // warm up
			if err := hop(); err != nil {
				return 0, err
			}
		}
		const iters = 4
		start := r.clk.Now()
		for i := 0; i < iters; i++ {
			if err := hop(); err != nil {
				return 0, err
			}
		}
		return simtime.Mbps(int64(bytes)*iters, r.clk.Now()-start), nil
	}
	uncached := core.Uncached()
	uncached.Integrated = true
	for _, n := range []int{2, 3, 4, 5, 6} {
		cv, err := measure(n, core.CachedVolatile())
		if err != nil {
			return nil, err
		}
		uc, err := measure(n, uncached)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", cv), fmt.Sprintf("%.0f", uc)})
	}
	return t, nil
}
