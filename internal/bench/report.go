// Package bench regenerates every table and figure of the paper's
// evaluation (section 4): Table 1's incremental per-page transfer costs,
// Figure 3's single-crossing throughput curves, Figure 4's UDP/IP local
// loopback experiment, Figures 5 and 6's end-to-end throughput over the
// simulated Osiris/null-modem testbed, the CPU-load observations, and the
// ablations the paper discusses in prose (PDU size, shared libraries,
// memory contention, free-list discipline, volatile and integrated
// optimizations).
//
// Each experiment builds fresh simulated hosts, runs the workload, and
// returns a Table or Figure that formats the same rows/series the paper
// reports. The cmd/fbufbench binary prints them; bench_test.go wraps each
// in a testing.B benchmark that also reports the headline simulated metric.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a formatted result table (one per paper table).
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// WriteTo renders the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	sb.WriteString(t.Title + "\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i == 0 {
				sb.WriteString(fmt.Sprintf("  %-*s", widths[i], c))
			} else {
				sb.WriteString(fmt.Sprintf("  %*s", widths[i], c))
			}
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		sb.WriteString("  " + t.Note + "\n")
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// Series is one line of a figure.
type Series struct {
	Name string
	Y    []float64 // indexed like the figure's X values
}

// Figure is a formatted result figure (one per paper figure): a family of
// curves over a shared X axis.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	X      []int
	Series []Series
	Note   string
}

// WriteTo renders the figure as a column-per-series text table.
func (f *Figure) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	sb.WriteString(f.Title + "\n")
	sb.WriteString(fmt.Sprintf("  %s vs %s\n", f.YLabel, f.XLabel))
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	rows := make([][]string, len(f.X))
	for xi, x := range f.X {
		row := []string{fmt.Sprintf("%d", x)}
		for _, s := range f.Series {
			v := "-"
			if xi < len(s.Y) {
				v = fmt.Sprintf("%.1f", s.Y[xi])
			}
			row = append(row, v)
		}
		rows[xi] = row
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			sb.WriteString(fmt.Sprintf("  %*s", widths[i], c))
		}
		sb.WriteString("\n")
	}
	line(header)
	for _, row := range rows {
		line(row)
	}
	if f.Note != "" {
		sb.WriteString("  " + f.Note + "\n")
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// Get returns the named series, or nil.
func (f *Figure) Get(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// At returns series value at the given X, or (0, false).
func (f *Figure) At(name string, x int) (float64, bool) {
	s := f.Get(name)
	if s == nil {
		return 0, false
	}
	for i, xv := range f.X {
		if xv == x && i < len(s.Y) {
			return s.Y[i], true
		}
	}
	return 0, false
}
