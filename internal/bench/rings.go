package bench

import (
	"fmt"
	"io"
	"strings"

	"fbufs/internal/core"
	"fbufs/internal/machine"
	"fbufs/internal/netsim"
	"fbufs/internal/obs"
	"fbufs/internal/obs/profile"
	"fbufs/internal/obs/span"
	"fbufs/internal/protocols"
	"fbufs/internal/rings"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

// Rings experiment parameters: the fig5 cached path (user-user placement,
// cached/volatile fbufs, 16 KB PDUs) swept over message size with the
// legacy per-transfer IPC plane and the shared-memory ring plane side by
// side, window 1 so every transfer's latency is measured unpipelined.
const (
	// RingsSeed pins the synthetic doorbell-schedule seed the JSON report
	// always uses (the text run honors -seed for the CI matrix).
	RingsSeed     = int64(1)
	ringsCount    = 64
	ringsPDU      = 16 * 1024
	synthSubmits  = 4096
	synthBurstMax = 8
)

// ringsSizes is the swept message-size axis (bytes).
var ringsSizes = []int{64, 256, 1024, 4096, 16384, 65536}

// ringsRow is one (size, plane) measurement.
type ringsRow struct {
	Size         int
	Mbps         float64
	CrossPerMsg  float64 // charged control-transfer crossings per message
	P99Ns        int64   // end-to-end data-transfer p99
	Doorbells    uint64
	SpinHits     uint64
	LegacyCalls  uint64
	RingFallback uint64
}

// synthStats summarizes the seeded synthetic doorbell/spin schedule.
type synthStats struct {
	Seed        int64
	Submits     uint64
	Doorbells   uint64
	SpinHits    uint64
	ElisionPct  float64
	FinalBudget simtime.Duration
}

// RingsResult holds the sweep (both planes per size) and the synthetic
// schedule summary.
type RingsResult struct {
	IPC, Ring []ringsRow
	Synth     synthStats
}

// ringsRun measures one (size, plane) point on the fig5 cached path.
func ringsRun(size int, useRings bool) (ringsRow, error) {
	o := obs.New(1 << 16)
	o.Spans = span.NewRecorder(ringsCount + 8)
	prof := profile.NewProfiler()
	profile.Attach(o, prof, nil)

	e, err := netsim.NewE2E(netsim.Config{
		Placement: netsim.UserUser,
		Opts:      core.CachedVolatile(),
		PDUBytes:  ringsPDU + protocols.UDPHeaderBytes,
		MsgBytes:  size,
		Count:     ringsCount,
		Window:    1,
		UseRings:  useRings,
		Obs:       o,
	})
	if err != nil {
		return ringsRow{}, err
	}
	res, err := e.Run()
	if err != nil {
		return ringsRow{}, err
	}
	row := ringsRow{Size: size, Mbps: res.ThroughputMbps}
	for _, h := range []*netsim.Host{e.A, e.B} {
		rs := h.Env.Router.RingStats()
		row.LegacyCalls += h.Env.Router.Calls
		row.Doorbells += rs.Doorbells
		row.SpinHits += rs.SpinHits
		row.RingFallback += rs.SubmitFallbacks
	}
	row.CrossPerMsg = float64(row.LegacyCalls+row.Doorbells) / float64(res.Delivered)
	if pr := prof.Report().Path("data"); pr != nil {
		row.P99Ns = pr.E2E.P99Ns
	}
	return row, nil
}

// splitmix64 is the deterministic PRNG behind the synthetic schedule.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d4da2b741879e5
	return z ^ (z >> 31)
}

// ringsSynthetic drives a standalone pair through a seeded submit/drain
// schedule mixing tight bursts (inside the spin window) with long idle
// gaps (past it), reporting how many crossings the adaptive policy elided.
// Deterministic per seed: the CI matrix reruns it per seed and diffs.
func ringsSynthetic(seed int64) (synthStats, error) {
	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), 64, vm.ClockSink{Clock: clk})
	pr, err := rings.NewPair(sys, "synthetic", 64, clk.Now, 0, 1)
	if err != nil {
		return synthStats{}, err
	}
	pr.DoorbellCost = sys.Cost.IPCLatency

	state := uint64(seed) ^ 0x5bd1e995
	for i := 0; i < synthSubmits; {
		r := splitmix64(&state)
		burst := int(r%synthBurstMax) + 1
		if r&(1<<40) != 0 {
			// Long idle: past any spin budget, forcing a doorbell.
			clk.Advance(simtime.MS(3 + int64(r%5)))
		} else {
			// Short gap: inside a healthy spin window.
			clk.Advance(simtime.US(10 + int64(r%80)))
		}
		for j := 0; j < burst && i < synthSubmits; j++ {
			if err := pr.Submit(rings.Entry{Descriptors: 1}); err != nil {
				break
			}
			i++
		}
		if _, err := pr.Drain(func(rings.Entry) error { return nil }); err != nil {
			return synthStats{}, err
		}
	}
	st := pr.Stats()
	_, consBudget := pr.SpinBudgets()
	elision := 0.0
	if t := st.Doorbells + st.SpinHits; t > 0 {
		elision = 100 * float64(st.SpinHits) / float64(t)
	}
	return synthStats{
		Seed:        seed,
		Submits:     st.Submits,
		Doorbells:   st.Doorbells,
		SpinHits:    st.SpinHits,
		ElisionPct:  elision,
		FinalBudget: consBudget,
	}, nil
}

// Rings runs the full experiment: the size sweep under both planes plus
// the seeded synthetic schedule (seed 0 means RingsSeed).
func Rings(seed int64) (*RingsResult, error) {
	if seed == 0 {
		seed = RingsSeed
	}
	r := &RingsResult{}
	for _, size := range ringsSizes {
		ipc, err := ringsRun(size, false)
		if err != nil {
			return nil, err
		}
		ring, err := ringsRun(size, true)
		if err != nil {
			return nil, err
		}
		r.IPC = append(r.IPC, ipc)
		r.Ring = append(r.Ring, ring)
	}
	synth, err := ringsSynthetic(seed)
	if err != nil {
		return nil, err
	}
	r.Synth = synth
	return r, nil
}

// Crossover returns the smallest swept size at which the legacy plane's
// throughput is within 5% of the ring plane's — where the bottleneck has
// shifted from IPC control transfer to the single-crossing data ceiling.
// Returns 0 if the planes never converge inside the sweep.
func (r *RingsResult) Crossover() int {
	for i := range r.IPC {
		if r.Ring[i].Mbps <= 0 {
			continue
		}
		if r.IPC[i].Mbps >= 0.95*r.Ring[i].Mbps {
			return r.IPC[i].Size
		}
	}
	return 0
}

// WriteTo renders the sweep and the synthetic schedule as text tables.
func (r *RingsResult) WriteTo(w io.Writer) (int64, error) {
	t := &Table{
		Title:  "Syscall-free data plane: per-transfer IPC vs submission/completion rings (fig5 cached path, window 1)",
		Header: []string{"size", "ipc Mb/s", "ring Mb/s", "ipc xing/msg", "ring xing/msg", "xing reduction", "ipc p99 us", "ring p99 us"},
	}
	for i := range r.IPC {
		a, b := r.IPC[i], r.Ring[i]
		red := "-"
		if b.CrossPerMsg > 0 {
			red = fmt.Sprintf("%.1fx", a.CrossPerMsg/b.CrossPerMsg)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", a.Size),
			fmt.Sprintf("%.1f", a.Mbps),
			fmt.Sprintf("%.1f", b.Mbps),
			fmt.Sprintf("%.2f", a.CrossPerMsg),
			fmt.Sprintf("%.2f", b.CrossPerMsg),
			red,
			fmt.Sprintf("%.1f", float64(a.P99Ns)/1e3),
			fmt.Sprintf("%.1f", float64(b.P99Ns)/1e3),
		})
	}
	if x := r.Crossover(); x > 0 {
		t.Note = fmt.Sprintf("crossover at %d B: below it the legacy plane is IPC-latency-bound; above it both planes ride the single-crossing ceiling", x)
	} else {
		t.Note = "no crossover inside the sweep: the ring plane leads at every size"
	}
	var sb strings.Builder
	if _, err := t.WriteTo(&sb); err != nil {
		return 0, err
	}
	s := &Table{
		Title:  fmt.Sprintf("Adaptive spin-then-block schedule (synthetic, seed %d)", r.Synth.Seed),
		Header: []string{"submits", "doorbells", "spin hits", "elision %", "final budget us"},
		Rows: [][]string{{
			fmt.Sprintf("%d", r.Synth.Submits),
			fmt.Sprintf("%d", r.Synth.Doorbells),
			fmt.Sprintf("%d", r.Synth.SpinHits),
			fmt.Sprintf("%.1f", r.Synth.ElisionPct),
			fmt.Sprintf("%.0f", float64(r.Synth.FinalBudget)/1e3),
		}},
		Note: "doorbells are the only charged crossings; spin hits are arrivals the consumer caught for free",
	}
	if _, err := s.WriteTo(&sb); err != nil {
		return 0, err
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// RingsExperiment flattens the result into a report Experiment: headline
// is the ring plane's 64 B end-to-end p99; values carry both planes'
// p99s (gated by compareP99), throughputs, and crossing rates.
func (r *RingsResult) RingsExperiment() Experiment {
	vals := map[string]float64{
		"synthetic doorbells":   float64(r.Synth.Doorbells),
		"synthetic spin_hits":   float64(r.Synth.SpinHits),
		"synthetic elision_pct": r.Synth.ElisionPct,
		"crossover_bytes":       float64(r.Crossover()),
	}
	var headline float64
	for i := range r.IPC {
		for _, m := range []struct {
			plane string
			row   ringsRow
		}{{"ipc", r.IPC[i]}, {"rings", r.Ring[i]}} {
			k := fmt.Sprintf("%s %dB", m.plane, m.row.Size)
			vals[k+" e2e p99_ns"] = float64(m.row.P99Ns)
			vals[k+" mbps"] = m.row.Mbps
			vals[k+" crossings_per_msg"] = m.row.CrossPerMsg
		}
		if r.Ring[i].Size == 64 {
			headline = float64(r.Ring[i].P99Ns)
		}
	}
	return Experiment{Unit: "ns", Headline: headline, Values: vals}
}

// RingsReport builds a report holding only the rings experiment — what
// `fbufbench -exp rings -json` writes and the CI rings job gates on. It
// always uses the pinned RingsSeed so baselines compare across machines.
func RingsReport() (*Report, error) {
	r, err := Rings(RingsSeed)
	if err != nil {
		return nil, err
	}
	rep := NewReport()
	rep.Experiments["rings"] = r.RingsExperiment()
	return rep, nil
}

// CompareRings gates the rings experiment's p99 latencies the same way the
// audit and overload gates do (`fbufbench -exp rings -baseline ...`).
func CompareRings(baseline, current *Report) error {
	return compareP99(baseline, current, "rings")
}
