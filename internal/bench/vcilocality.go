package bench

import (
	"fmt"

	"fbufs/internal/aggregate"
	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/osiris"
	"fbufs/internal/xkernel"
)

// vciSink consumes PDUs delivered by the driver: touch and free, like the
// paper's dummy protocol.
type vciSink struct {
	xkernel.Base
	dom *domain.Domain
}

func (s *vciSink) Deliver(m *aggregate.Msg) error {
	if err := m.Touch(s.dom); err != nil {
		return err
	}
	return m.Free(s.dom)
}

func (s *vciSink) Push(m *aggregate.Msg) error {
	return fmt.Errorf("bench: vci sink is a top layer")
}

// AblationVCILocality demonstrates the locality assumption behind the
// driver's per-path preallocation (paper section 5.2): cached reassembly
// buffers exist for the 16 most recently used VCIs only. Round-robin
// traffic over up to 16 circuits stays entirely on cached fbufs; beyond
// 16 the LRU table thrashes and every PDU falls back to the uncached
// queue, paying allocation, mapping, and clearing per PDU.
func AblationVCILocality() (*Table, error) {
	t := &Table{
		Title:  "Ablation: VCI locality (receive side, 8KB PDUs, round-robin circuits)",
		Header: []string{"active VCIs", "uncached PDU %", "us/PDU"},
		Note:   "the driver preallocates cached fbufs for the 16 most recently used data paths",
	}
	for _, conns := range []int{1, 8, 16, 24, 48} {
		r := newRig()
		kernel := r.reg.Kernel()
		drv := osiris.NewDriver(r.env, core.CachedVolatile(),
			[]*domain.Domain{kernel, r.dst}, 3)
		sink := &vciSink{Base: xkernel.NewBase("sink", kernel), dom: kernel}
		drv.SetAbove(sink)

		pdu := make([]byte, 8192)
		deliver := func(rounds int) error {
			for i := 0; i < rounds; i++ {
				for v := 0; v < conns; v++ {
					if err := drv.Receive(osiris.VCI(v), pdu); err != nil {
						return err
					}
				}
			}
			return nil
		}
		// Warm the table (every circuit seen at least once).
		if err := deliver(2); err != nil {
			return nil, err
		}
		uncachedBefore := drv.RxUncachedAllocs
		pdusBefore := drv.RxPDUs
		start := r.clk.Now()
		const rounds = 8
		if err := deliver(rounds); err != nil {
			return nil, err
		}
		elapsed := r.clk.Now() - start
		pdus := drv.RxPDUs - pdusBefore
		uncached := drv.RxUncachedAllocs - uncachedBefore
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", conns),
			fmt.Sprintf("%.0f", 100*float64(uncached)/float64(pdus)),
			fmt.Sprintf("%.0f", elapsed.Microseconds()/float64(pdus)),
		})
	}
	return t, nil
}
