package bench

import (
	"fmt"

	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

// SMP scaling experiment.
//
// The facility's determinism contract keeps simulator code single-threaded,
// and every number in BENCH_report.json is a simulated-time result, so the
// SMP experiment models W cores as W logical workers over ONE shared fbuf
// manager, driven by a single goroutine. Each worker owns a private virtual
// clock; the scheduler always steps the worker whose clock is furthest
// behind (ties break by worker index), swapping the system's cost sink to
// that worker's clock for the duration of its alloc/touch/free cycle, so
// real facility costs land on the core that incurred them. Cross-core
// serialization is modelled explicitly: the shared path free-list lock is a
// resource with a release time, and a worker that needs it first advances
// its clock to that release time (the modelled lock wait) before occupying
// it for the operation's hold time.
//
// Two configurations bracket the claim:
//
//   - "global-lock": every alloc and every free occupies the shared path
//     lock — the facility before per-worker magazines. The serialized
//     section bounds total throughput regardless of worker count.
//   - "magazine": each worker allocates through its private magazine.
//     Steady-state cycles hit the stash and touch no shared state at all;
//     only refills and flushes pay a (longer, batched) lock hold.
//
// The schedule, the clocks, and every counter are identical on every run.
// Wall-clock goroutine benchmarks exist too (fbufbench -parallel N and the
// root Benchmark*Parallel functions) but their numbers are machine-dependent
// and deliberately stay out of the committed report.

const (
	// smpOpsPerWorker is each logical worker's alloc/touch/free cycle count.
	smpOpsPerWorker = 2000
	// smpTouchCost models the per-cycle application work on the fbuf's
	// page (3 us) — the parallel section of a cycle.
	smpTouchCost = simtime.Duration(3000)
	// smpLockHold models the shared-lock occupancy of one locked alloc or
	// free (1.5 us) — the serialized section of a global-lock cycle.
	smpLockHold = simtime.Duration(1500)
	// smpBatchHold models the occupancy of a magazine refill or flush,
	// which moves up to half a stash under one acquisition (3 us).
	smpBatchHold = simtime.Duration(3000)
)

// smpWorkerCounts is the worker-count sweep for both configurations.
var smpWorkerCounts = []int{1, 2, 4}

// smpRun is one configuration x worker-count measurement.
type smpRun struct {
	opsPerSec  float64
	lockWaitUS float64 // modelled time workers spent waiting on the shared lock
	lockOps    uint64  // modelled shared-lock occupations
	cont       core.Contention
}

// runSMP executes the harness: W logical workers over one cached/volatile
// path, with or without per-worker magazines.
func runSMP(workers int, magazines bool) (*smpRun, error) {
	buildClk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), 1<<15, vm.ClockSink{Clock: buildClk})
	reg := domain.NewRegistry(sys)
	mgr := core.NewManagerGeometry(sys, reg, 256, 64)
	src := reg.New("src")
	dst := reg.New("dst")
	path, err := mgr.NewPath("smp", core.CachedVolatile(), 1, src, dst)
	if err != nil {
		return nil, err
	}

	// A cycle runs as three separately scheduled phases (alloc, touch,
	// free) so one worker's touch overlaps other workers' lock sections —
	// the overlap that gives the global-lock configuration its partial
	// scaling instead of full serialization.
	type worker struct {
		clk   *simtime.Clock
		mag   *core.Magazine
		f     *core.Fbuf
		phase int
		ops   int
	}
	ws := make([]*worker, workers)
	for i := range ws {
		w := &worker{clk: &simtime.Clock{}}
		if magazines {
			w.mag = path.NewMagazine(0)
		}
		ws[i] = w
	}

	var (
		lockFreeAt simtime.Time     // when the modelled shared lock frees up
		lockWait   simtime.Duration // summed modelled waiting
		lockOps    uint64
	)
	serialize := func(w *worker, hold simtime.Duration) {
		if now := w.clk.Now(); now < lockFreeAt {
			lockWait += lockFreeAt - now
			w.clk.AdvanceTo(lockFreeAt)
		}
		w.clk.Advance(hold)
		lockFreeAt = w.clk.Now()
		lockOps++
	}

	total := workers * smpOpsPerWorker
	for finished := 0; finished < workers; {
		// Step the unfinished worker furthest behind in virtual time.
		var w *worker
		for _, cand := range ws {
			if cand.ops >= smpOpsPerWorker {
				continue
			}
			if w == nil || cand.clk.Now() < w.clk.Now() {
				w = cand
			}
		}
		sys.SetSink(vm.ClockSink{Clock: w.clk})
		switch w.phase {
		case 0: // allocate
			if magazines {
				hadStash := w.mag.Depth() > 0
				f, err := w.mag.Alloc()
				if err != nil {
					return nil, err
				}
				w.f = f
				if !hadStash {
					// The miss refilled (or carved) under the shared lock.
					serialize(w, smpBatchHold)
				}
			} else {
				f, err := path.Alloc()
				if err != nil {
					return nil, err
				}
				w.f = f
				serialize(w, smpLockHold)
			}
			w.phase = 1
		case 1: // touch
			w.clk.Advance(smpTouchCost)
			w.phase = 2
		case 2: // free
			if magazines {
				depth := w.mag.Depth()
				if err := w.mag.Free(w.f, src); err != nil {
					return nil, err
				}
				if w.mag.Depth() <= depth {
					// The push overflowed the stash: half flushed under the lock.
					serialize(w, smpBatchHold)
				}
			} else {
				if err := mgr.Free(w.f, src); err != nil {
					return nil, err
				}
				serialize(w, smpLockHold)
			}
			w.f = nil
			w.phase = 0
			w.ops++
			if w.ops >= smpOpsPerWorker {
				finished++
			}
		}
	}

	// Teardown charges go back to the build clock; the measurement is the
	// makespan — the furthest-ahead worker clock when the last op retires.
	sys.SetSink(vm.ClockSink{Clock: buildClk})
	var makespan simtime.Time
	for _, w := range ws {
		if w.clk.Now() > makespan {
			makespan = w.clk.Now()
		}
		if w.mag != nil {
			w.mag.Drain()
		}
	}
	if makespan <= 0 {
		return nil, fmt.Errorf("bench: smp run makespan = %d", makespan)
	}
	return &smpRun{
		opsPerSec:  float64(total) / (float64(makespan) / 1e9),
		lockWaitUS: lockWait.Microseconds(),
		lockOps:    lockOps,
		cont:       mgr.ContentionSnapshot(),
	}, nil
}

// smpConfigs orders the two configurations for tables and reports.
var smpConfigs = []struct {
	name      string
	magazines bool
}{
	{"global-lock", false},
	{"magazine", true},
}

// smpScalingValues runs the full sweep and returns the report values plus
// the rendered table. Headline value: "speedup magazine 4w".
func smpScalingValues() (map[string]float64, *Table, error) {
	vals := make(map[string]float64)
	t := &Table{
		Title:  "SMP scaling: parallel alloc/free over one shared path (simulated cores)",
		Header: []string{"config", "workers", "kops/s", "speedup", "lock waits us", "lock ops", "mag hit%"},
		Note: fmt.Sprintf("deterministic simulated-SMP harness: %d ops/worker, %.1fus touch, %.1fus lock hold, %.1fus batched refill/flush",
			smpOpsPerWorker, smpTouchCost.Microseconds(), smpLockHold.Microseconds(), smpBatchHold.Microseconds()),
	}
	for _, cfg := range smpConfigs {
		var base float64
		for _, w := range smpWorkerCounts {
			r, err := runSMP(w, cfg.magazines)
			if err != nil {
				return nil, nil, err
			}
			if w == smpWorkerCounts[0] {
				base = r.opsPerSec
			}
			speedup := r.opsPerSec / base
			vals[fmt.Sprintf("%s %dw ops/s", cfg.name, w)] = r.opsPerSec
			vals[fmt.Sprintf("speedup %s %dw", cfg.name, w)] = speedup
			hitPct := 0.0
			if h, m := r.cont.MagazineHits, r.cont.MagazineMisses; h+m > 0 {
				hitPct = 100 * float64(h) / float64(h+m)
			}
			t.Rows = append(t.Rows, []string{
				cfg.name,
				fmt.Sprintf("%d", w),
				fmt.Sprintf("%.0f", r.opsPerSec/1e3),
				fmt.Sprintf("%.2f", speedup),
				fmt.Sprintf("%.1f", r.lockWaitUS),
				fmt.Sprintf("%d", r.lockOps),
				fmt.Sprintf("%.1f", hitPct),
			})
			if w == 4 {
				vals[fmt.Sprintf("%s 4w lock_wait_us", cfg.name)] = r.lockWaitUS
				vals[fmt.Sprintf("%s 4w lock_acquires", cfg.name)] = float64(r.cont.LockAcquires)
				vals[fmt.Sprintf("%s 4w lock_contended", cfg.name)] = float64(r.cont.LockContended)
				if cfg.magazines {
					vals["magazine 4w magazine_hits"] = float64(r.cont.MagazineHits)
					vals["magazine 4w magazine_misses"] = float64(r.cont.MagazineMisses)
					vals["magazine 4w magazine_refills"] = float64(r.cont.MagazineRefills)
					vals["magazine 4w magazine_flushes"] = float64(r.cont.MagazineFlushes)
				}
			}
		}
	}
	return vals, t, nil
}

// SMPScaling renders the smp_scaling experiment as a text table
// (fbufbench -exp smp).
func SMPScaling() (*Table, error) {
	_, t, err := smpScalingValues()
	return t, err
}
