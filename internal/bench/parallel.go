package bench

import (
	"fmt"
	"sort"

	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

// SMP scaling experiment.
//
// The facility's determinism contract keeps simulator code single-threaded,
// and every number in BENCH_report.json is a simulated-time result, so the
// SMP experiment models W cores as W logical workers over ONE shared fbuf
// manager, driven by a single goroutine. Each worker owns a private virtual
// clock; the scheduler always steps the worker whose clock is furthest
// behind (ties break by worker index), swapping the system's cost sink to
// that worker's clock for the duration of its alloc/touch/free cycle, so
// real facility costs land on the core that incurred them. Cross-core
// serialization is modelled explicitly: the shared path free-list lock is a
// resource with a release time, and a worker that needs it first advances
// its clock to that release time (the modelled lock wait) before occupying
// it for the operation's hold time.
//
// Two configurations bracket the claim:
//
//   - "global-lock": every alloc and every free occupies the shared path
//     lock — the facility before per-worker magazines. The serialized
//     section bounds total throughput regardless of worker count.
//   - "magazine": each worker allocates through its private magazine.
//     Steady-state cycles hit the stash and touch no shared state at all;
//     only refills and flushes pay a (longer, batched) lock hold.
//
// The schedule, the clocks, and every counter are identical on every run.
// Wall-clock goroutine benchmarks exist too (fbufbench -parallel N and the
// root Benchmark*Parallel functions) but their numbers are machine-dependent
// and deliberately stay out of the committed report.

const (
	// smpOpsPerWorker is each logical worker's alloc/touch/free cycle count.
	smpOpsPerWorker = 2000
	// smpTouchCost models the per-cycle application work on the fbuf's
	// page (3 us) — the parallel section of a cycle.
	smpTouchCost = simtime.Duration(3000)
	// smpLockHold models the shared-lock occupancy of one locked alloc or
	// free (1.5 us) — the serialized section of a global-lock cycle.
	smpLockHold = simtime.Duration(1500)
	// smpBatchHold models the occupancy of a magazine refill or flush,
	// which moves up to half a stash under one acquisition (3 us).
	smpBatchHold = simtime.Duration(3000)
)

// smpWorkerCounts is the worker-count sweep for both configurations.
var smpWorkerCounts = []int{1, 2, 4}

// smpRun is one configuration x worker-count measurement.
type smpRun struct {
	opsPerSec  float64
	lockWaitUS float64 // modelled time workers spent waiting on the shared lock
	lockOps    uint64  // modelled shared-lock occupations
	cont       core.Contention
}

// runSMP executes the harness: W logical workers over one cached/volatile
// path, with or without per-worker magazines.
func runSMP(workers int, magazines bool) (*smpRun, error) {
	buildClk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), 1<<15, vm.ClockSink{Clock: buildClk})
	reg := domain.NewRegistry(sys)
	mgr := core.NewManagerGeometry(sys, reg, 256, 64)
	src := reg.New("src")
	dst := reg.New("dst")
	path, err := mgr.NewPath("smp", core.CachedVolatile(), 1, src, dst)
	if err != nil {
		return nil, err
	}

	// A cycle runs as three separately scheduled phases (alloc, touch,
	// free) so one worker's touch overlaps other workers' lock sections —
	// the overlap that gives the global-lock configuration its partial
	// scaling instead of full serialization.
	type worker struct {
		clk   *simtime.Clock
		mag   *core.Magazine
		f     *core.Fbuf
		phase int
		ops   int
	}
	ws := make([]*worker, workers)
	for i := range ws {
		w := &worker{clk: &simtime.Clock{}}
		if magazines {
			w.mag = path.NewMagazine(0)
		}
		ws[i] = w
	}

	var (
		lockFreeAt simtime.Time     // when the modelled shared lock frees up
		lockWait   simtime.Duration // summed modelled waiting
		lockOps    uint64
	)
	serialize := func(w *worker, hold simtime.Duration) {
		if now := w.clk.Now(); now < lockFreeAt {
			lockWait += lockFreeAt - now
			w.clk.AdvanceTo(lockFreeAt)
		}
		w.clk.Advance(hold)
		lockFreeAt = w.clk.Now()
		lockOps++
	}

	total := workers * smpOpsPerWorker
	for finished := 0; finished < workers; {
		// Step the unfinished worker furthest behind in virtual time.
		var w *worker
		for _, cand := range ws {
			if cand.ops >= smpOpsPerWorker {
				continue
			}
			if w == nil || cand.clk.Now() < w.clk.Now() {
				w = cand
			}
		}
		sys.SetSink(vm.ClockSink{Clock: w.clk})
		switch w.phase {
		case 0: // allocate
			if magazines {
				hadStash := w.mag.Depth() > 0
				f, err := w.mag.Alloc()
				if err != nil {
					return nil, err
				}
				w.f = f
				if !hadStash {
					// The miss refilled (or carved) under the shared lock.
					serialize(w, smpBatchHold)
				}
			} else {
				f, err := path.Alloc()
				if err != nil {
					return nil, err
				}
				w.f = f
				serialize(w, smpLockHold)
			}
			w.phase = 1
		case 1: // touch
			w.clk.Advance(smpTouchCost)
			w.phase = 2
		case 2: // free
			if magazines {
				depth := w.mag.Depth()
				if err := w.mag.Free(w.f, src); err != nil {
					return nil, err
				}
				if w.mag.Depth() <= depth {
					// The push overflowed the stash: half flushed under the lock.
					serialize(w, smpBatchHold)
				}
			} else {
				if err := mgr.Free(w.f, src); err != nil {
					return nil, err
				}
				serialize(w, smpLockHold)
			}
			w.f = nil
			w.phase = 0
			w.ops++
			if w.ops >= smpOpsPerWorker {
				finished++
			}
		}
	}

	// Teardown charges go back to the build clock; the measurement is the
	// makespan — the furthest-ahead worker clock when the last op retires.
	sys.SetSink(vm.ClockSink{Clock: buildClk})
	var makespan simtime.Time
	for _, w := range ws {
		if w.clk.Now() > makespan {
			makespan = w.clk.Now()
		}
		if w.mag != nil {
			w.mag.Drain()
		}
	}
	if makespan <= 0 {
		return nil, fmt.Errorf("bench: smp run makespan = %d", makespan)
	}
	return &smpRun{
		opsPerSec:  float64(total) / (float64(makespan) / 1e9),
		lockWaitUS: lockWait.Microseconds(),
		lockOps:    lockOps,
		cont:       mgr.ContentionSnapshot(),
	}, nil
}

// smpConfigs orders the two configurations for tables and reports.
var smpConfigs = []struct {
	name      string
	magazines bool
}{
	{"global-lock", false},
	{"magazine", true},
}

// smpScalingValues runs the full sweep and returns the report values plus
// the rendered table. Headline value: "speedup magazine 4w".
func smpScalingValues() (map[string]float64, *Table, error) {
	vals := make(map[string]float64)
	t := &Table{
		Title:  "SMP scaling: parallel alloc/free over one shared path (simulated cores)",
		Header: []string{"config", "workers", "kops/s", "speedup", "lock waits us", "lock ops", "mag hit%"},
		Note: fmt.Sprintf("deterministic simulated-SMP harness: %d ops/worker, %.1fus touch, %.1fus lock hold, %.1fus batched refill/flush",
			smpOpsPerWorker, smpTouchCost.Microseconds(), smpLockHold.Microseconds(), smpBatchHold.Microseconds()),
	}
	for _, cfg := range smpConfigs {
		var base float64
		for _, w := range smpWorkerCounts {
			r, err := runSMP(w, cfg.magazines)
			if err != nil {
				return nil, nil, err
			}
			if w == smpWorkerCounts[0] {
				base = r.opsPerSec
			}
			speedup := r.opsPerSec / base
			vals[fmt.Sprintf("%s %dw ops/s", cfg.name, w)] = r.opsPerSec
			vals[fmt.Sprintf("speedup %s %dw", cfg.name, w)] = speedup
			hitPct := 0.0
			if h, m := r.cont.MagazineHits, r.cont.MagazineMisses; h+m > 0 {
				hitPct = 100 * float64(h) / float64(h+m)
			}
			t.Rows = append(t.Rows, []string{
				cfg.name,
				fmt.Sprintf("%d", w),
				fmt.Sprintf("%.0f", r.opsPerSec/1e3),
				fmt.Sprintf("%.2f", speedup),
				fmt.Sprintf("%.1f", r.lockWaitUS),
				fmt.Sprintf("%d", r.lockOps),
				fmt.Sprintf("%.1f", hitPct),
			})
			if w == 4 {
				vals[fmt.Sprintf("%s 4w lock_wait_us", cfg.name)] = r.lockWaitUS
				vals[fmt.Sprintf("%s 4w lock_acquires", cfg.name)] = float64(r.cont.LockAcquires)
				vals[fmt.Sprintf("%s 4w lock_contended", cfg.name)] = float64(r.cont.LockContended)
				if cfg.magazines {
					vals["magazine 4w magazine_hits"] = float64(r.cont.MagazineHits)
					vals["magazine 4w magazine_misses"] = float64(r.cont.MagazineMisses)
					vals["magazine 4w magazine_refills"] = float64(r.cont.MagazineRefills)
					vals["magazine 4w magazine_flushes"] = float64(r.cont.MagazineFlushes)
				}
			}
		}
	}
	return vals, t, nil
}

// --- Burst sweep: depot vs magazine-only at 8/16/64 workers (PR 10) ------
//
// The cycle workload above holds one buffer at a time, which a private
// magazine absorbs almost entirely; it cannot show where magazine-only
// allocation stops scaling. The burst workload allocates a batch, works on
// it, then frees the batch — the shape of a NIC receive ring refill or a
// pipeline stage draining its input — so every worker crosses its
// magazine's capacity twice per round and the refill/flush traffic lands
// on shared state. Three configurations bracket the depot claim:
//
//   - "global-lock": every op under the shared path lock (flat line).
//   - "magazine": per-worker magazines over the shared free list. Each
//     refill/flush moves items one at a time under the path lock, so the
//     serialized section grows with the burst and caps speedup near 2-3x
//     regardless of worker count.
//   - "depot": magazines exchange whole units with the central depot —
//     one constant-time swap under the depot's leaf lock — and the
//     loose-inventory shards behind it spread assembly/spill traffic, so
//     the serialized section per round is a few hundred ns and the sweep
//     stays near-linear through 16 workers.
//
// Like the cycle harness, cross-core serialization is modelled on virtual
// clocks: each shared resource (path lock, depot lock, each depot shard)
// has a release time, and a worker arriving early advances to it. The
// waits recorded against each shard become the per-shard contention
// heatmap published into BENCH_report.json and gated (p99, 10%) against
// BENCH_smp_baseline.json.

const (
	// smpBurst is the batch size per half-round: 48 allocs, then 48 frees,
	// three magazine units — every round crosses the unit boundary.
	smpBurst = 48
	// smpBurstRounds is the measured rounds per worker.
	smpBurstRounds = 20
	// smpUnitCap is the magazine capacity and depot unit size.
	smpUnitCap = 16
	// smpBurstTouch is the per-buffer application work (1 us) — the
	// parallel section of an alloc op.
	smpBurstTouch = simtime.Duration(1000)
	// smpItemHold is the shared-lock occupancy per item a magazine
	// refill/flush moves (600 ns): item-at-a-time transfer is what the
	// depot's whole-unit exchange eliminates.
	smpItemHold = simtime.Duration(600)
	// smpDepotHold is the depot-lock occupancy of one whole-unit exchange
	// (200 ns): a constant-time stack swap.
	smpDepotHold = simtime.Duration(200)
	// smpShardHold is the occupancy of the one loose-inventory shard an
	// exchange touches when the unit stack spills or assembles (400 ns).
	smpShardHold = simtime.Duration(400)
	// smpDepotShards is the sharded free-list fan-out behind the depot.
	smpDepotShards = 8
	// SMPSeed is the pinned seed the JSON report and baseline gate use;
	// -exp smp -seed N perturbs shard placement for the determinism matrix.
	SMPSeed = 1
)

// smpBurstWorkerCounts is the ISSUE-mandated sweep: past the 4-worker knee
// of the cycle harness into the many-core regime.
var smpBurstWorkerCounts = []int{1, 8, 16, 64}

// smpBurstConfigs orders the three burst configurations.
var smpBurstConfigs = []string{"global-lock", "magazine", "depot"}

// smpBurstRun is one burst configuration x worker-count measurement.
type smpBurstRun struct {
	opsPerSec   float64 // alloc/free pairs per simulated second
	lockWaitUS  float64 // modelled wait on the shared path lock
	depotWaitUS float64 // modelled wait on the depot lock
	shardWaits  [][]simtime.Duration // per-shard wait samples (depot only)
	shardVisits []uint64
	exchanges   uint64 // whole-unit depot exchanges across all workers
	cont        core.Contention
	shardStats  []core.DepotShardStat
}

// runSMPBurst executes the burst harness for one configuration. The
// pre-warm phase (on the build clock, unmeasured) carves every buffer the
// sweep will ever use and parks it in the configuration's own reservoir —
// the shared free list, or the depot stack and shards — so the measured
// rounds exercise steady-state reuse, not first-touch carving.
func runSMPBurst(workers int, config string, seed int64) (*smpBurstRun, error) {
	buildClk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), 1<<15, vm.ClockSink{Clock: buildClk})
	reg := domain.NewRegistry(sys)
	mgr := core.NewManagerGeometry(sys, reg, 256, 64)
	src := reg.New("src")
	dst := reg.New("dst")
	path, err := mgr.NewPath("smp-burst", core.CachedVolatile(), 1, src, dst)
	if err != nil {
		return nil, err
	}
	path.SetQuota(-1) // 64 workers x 48 live pages exceed the default quota
	var depot *core.Depot
	if config == "depot" {
		depot = path.EnableDepot(smpUnitCap, smpDepotShards)
	}

	// Pre-warm: carve the working set and park it.
	warm := make([]*core.Fbuf, 0, workers*smpBurst)
	for i := 0; i < workers*smpBurst; i++ {
		f, err := path.Alloc()
		if err != nil {
			return nil, err
		}
		warm = append(warm, f)
	}
	if depot != nil {
		// Deposit through a scratch magazine so the inventory lands in the
		// depot (stack first, spilling to the shards), not the free list.
		scratch := path.NewMagazine(smpUnitCap)
		for _, f := range warm {
			if err := scratch.Free(f, src); err != nil {
				return nil, err
			}
		}
		scratch.Drain()
	} else {
		for _, f := range warm {
			if err := mgr.Free(f, src); err != nil {
				return nil, err
			}
		}
	}

	type worker struct {
		clk  *simtime.Clock
		mag  *core.Magazine
		held []*core.Fbuf
		idx  int // op index within the round: [0,smpBurst) alloc, then frees
		rnd  int
	}
	ws := make([]*worker, workers)
	for i := range ws {
		w := &worker{clk: &simtime.Clock{}, held: make([]*core.Fbuf, 0, smpBurst)}
		if config != "global-lock" {
			w.mag = path.NewMagazine(smpUnitCap)
		}
		ws[i] = w
	}

	r := &smpBurstRun{
		shardWaits:  make([][]simtime.Duration, smpDepotShards),
		shardVisits: make([]uint64, smpDepotShards),
	}
	var (
		lockFreeAt  simtime.Time
		depotFreeAt simtime.Time
		shardFreeAt [smpDepotShards]simtime.Time
		lockWait    simtime.Duration
		depotWait   simtime.Duration
	)
	serializeLock := func(w *worker, hold simtime.Duration) {
		if now := w.clk.Now(); now < lockFreeAt {
			lockWait += lockFreeAt - now
			w.clk.AdvanceTo(lockFreeAt)
		}
		w.clk.Advance(hold)
		lockFreeAt = w.clk.Now()
	}
	// One whole-unit exchange: a constant hold on the depot lock, then a
	// constant hold on one shard, picked by a seed-perturbed hash so the
	// determinism matrix exercises different placements.
	serializeExchange := func(w *worker, wi int, n uint64) {
		for ; n > 0; n-- {
			if now := w.clk.Now(); now < depotFreeAt {
				depotWait += depotFreeAt - now
				w.clk.AdvanceTo(depotFreeAt)
			}
			w.clk.Advance(smpDepotHold)
			depotFreeAt = w.clk.Now()
			s := int((w.mag.ExchangeCount() + uint64(wi) + uint64(seed)) % smpDepotShards)
			wait := simtime.Duration(0)
			if now := w.clk.Now(); now < shardFreeAt[s] {
				wait = shardFreeAt[s] - now
				w.clk.AdvanceTo(shardFreeAt[s])
			}
			w.clk.Advance(smpShardHold)
			shardFreeAt[s] = w.clk.Now()
			r.shardWaits[s] = append(r.shardWaits[s], wait)
			r.shardVisits[s]++
			r.exchanges++
		}
	}

	for finished := 0; finished < workers; {
		var w *worker
		wi := -1
		for i, cand := range ws {
			if cand.rnd >= smpBurstRounds {
				continue
			}
			if w == nil || cand.clk.Now() < w.clk.Now() {
				w, wi = cand, i
			}
		}
		sys.SetSink(vm.ClockSink{Clock: w.clk})
		if w.idx < smpBurst { // alloc half
			if w.mag == nil {
				f, err := path.Alloc()
				if err != nil {
					return nil, err
				}
				w.held = append(w.held, f)
				serializeLock(w, smpLockHold)
			} else {
				depthBefore, exchBefore := w.mag.Depth(), w.mag.ExchangeCount()
				f, err := w.mag.Alloc()
				if err != nil {
					return nil, err
				}
				w.held = append(w.held, f)
				if n := w.mag.ExchangeCount() - exchBefore; n > 0 {
					serializeExchange(w, wi, n)
				} else if depthBefore == 0 {
					if moved := w.mag.Depth() + 1; moved > 1 {
						serializeLock(w, smpItemHold*simtime.Duration(moved))
					} else {
						serializeLock(w, smpLockHold) // carve, or single-item refill
					}
				}
			}
			w.clk.Advance(smpBurstTouch)
		} else { // free half
			f := w.held[len(w.held)-1]
			w.held = w.held[:len(w.held)-1]
			if w.mag == nil {
				if err := mgr.Free(f, src); err != nil {
					return nil, err
				}
				serializeLock(w, smpLockHold)
			} else {
				depthBefore, exchBefore := w.mag.Depth(), w.mag.ExchangeCount()
				if err := w.mag.Free(f, src); err != nil {
					return nil, err
				}
				if n := w.mag.ExchangeCount() - exchBefore; n > 0 {
					serializeExchange(w, wi, n)
				} else if after := w.mag.Depth(); after < depthBefore+1 {
					serializeLock(w, smpItemHold*simtime.Duration(depthBefore+1-after))
				}
			}
		}
		w.idx++
		if w.idx >= 2*smpBurst {
			w.idx = 0
			w.rnd++
			if w.rnd >= smpBurstRounds {
				finished++
			}
		}
	}

	sys.SetSink(vm.ClockSink{Clock: buildClk})
	var makespan simtime.Time
	for _, w := range ws {
		if w.clk.Now() > makespan {
			makespan = w.clk.Now()
		}
		if w.mag != nil {
			w.mag.Drain()
		}
	}
	if makespan <= 0 {
		return nil, fmt.Errorf("bench: smp burst makespan = %d", makespan)
	}
	pairs := workers * smpBurstRounds * smpBurst
	r.opsPerSec = float64(pairs) / (float64(makespan) / 1e9)
	r.lockWaitUS = lockWait.Microseconds()
	r.depotWaitUS = depotWait.Microseconds()
	r.cont = mgr.ContentionSnapshot()
	if depot != nil {
		r.shardStats = depot.ShardStats()
	}
	return r, nil
}

// shardWaitP99 is the deterministic p99 of one shard's wait samples: the
// samples are a fixed schedule's outputs, so sorting and indexing needs no
// estimator. Returns 0 for an unvisited shard.
func shardWaitP99(samples []simtime.Duration) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := make([]simtime.Duration, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return float64(s[(len(s)*99)/100])
}

// smpBurstValues runs the burst sweep, merging report values and rendering
// the burst table plus the per-shard contention heatmap.
func smpBurstValues(seed int64, vals map[string]float64) ([]*Table, error) {
	t := &Table{
		Title:  "Burst alloc/free: depot vs magazine-only vs global lock (simulated cores)",
		Header: []string{"config", "workers", "kpairs/s", "speedup", "lock wait us", "depot wait us", "exchanges"},
		Note: fmt.Sprintf("burst of %d allocs then %d frees per round, %d rounds/worker, unit %d, %d shards, seed %d",
			smpBurst, smpBurst, smpBurstRounds, smpUnitCap, smpDepotShards, seed),
	}
	heat := &Table{
		Title:  "Depot shard contention heatmap (p99 modelled wait ns per shard)",
		Header: append([]string{"workers"}, func() []string {
			h := make([]string, smpDepotShards)
			for i := range h {
				h[i] = fmt.Sprintf("s%d", i)
			}
			return h
		}()...),
		Note: "each cell: p99 of the virtual-clock waits workers spent entering that loose-inventory shard during unit assembly/spill",
	}
	for _, cfg := range smpBurstConfigs {
		var base float64
		for _, w := range smpBurstWorkerCounts {
			r, err := runSMPBurst(w, cfg, seed)
			if err != nil {
				return nil, err
			}
			if w == smpBurstWorkerCounts[0] {
				base = r.opsPerSec
			}
			speedup := r.opsPerSec / base
			vals[fmt.Sprintf("burst %s %dw pairs/s", cfg, w)] = r.opsPerSec
			vals[fmt.Sprintf("speedup burst %s %dw", cfg, w)] = speedup
			t.Rows = append(t.Rows, []string{
				cfg,
				fmt.Sprintf("%d", w),
				fmt.Sprintf("%.0f", r.opsPerSec/1e3),
				fmt.Sprintf("%.2f", speedup),
				fmt.Sprintf("%.1f", r.lockWaitUS),
				fmt.Sprintf("%.1f", r.depotWaitUS),
				fmt.Sprintf("%d", r.exchanges),
			})
			if cfg == "depot" {
				vals[fmt.Sprintf("burst depot %dw exchanges", w)] = float64(r.cont.DepotExchanges)
				vals[fmt.Sprintf("burst depot %dw assemblies", w)] = float64(r.cont.DepotAssemblies)
				vals[fmt.Sprintf("burst depot %dw spills", w)] = float64(r.cont.DepotSpills)
				vals[fmt.Sprintf("burst depot %dw depot_wait_us", w)] = r.depotWaitUS
				row := []string{fmt.Sprintf("%d", w)}
				for s := 0; s < smpDepotShards; s++ {
					p99 := shardWaitP99(r.shardWaits[s])
					vals[fmt.Sprintf("burst depot %dw shard %d wait p99_ns", w, s)] = p99
					vals[fmt.Sprintf("burst depot %dw shard %d visits", w, s)] = float64(r.shardVisits[s])
					row = append(row, fmt.Sprintf("%.0f", p99))
				}
				heat.Rows = append(heat.Rows, row)
			}
		}
	}
	return []*Table{t, heat}, nil
}

// SMPScaling renders the smp_scaling experiment — the cycle sweep, the
// burst sweep, and the shard heatmap — as text tables (fbufbench -exp smp).
func SMPScaling(seed int64) ([]*Table, error) {
	_, tables, err := smpAllValues(seed)
	return tables, err
}

// smpAllValues merges the cycle sweep and the burst sweep into one value
// map — the smp_scaling experiment of BENCH_report.json.
func smpAllValues(seed int64) (map[string]float64, []*Table, error) {
	vals, cycle, err := smpScalingValues()
	if err != nil {
		return nil, nil, err
	}
	burst, err := smpBurstValues(seed, vals)
	if err != nil {
		return nil, nil, err
	}
	return vals, append([]*Table{cycle}, burst...), nil
}

// SMPReport builds a report holding only the smp_scaling experiment — what
// `fbufbench -exp smp -json` writes and the CI smp-depot job gates on. It
// always uses the pinned SMPSeed so baselines compare across machines.
// Headline: the burst depot speedup at 8 workers, the PR's >=6x claim.
func SMPReport() (*Report, error) {
	vals, _, err := smpAllValues(SMPSeed)
	if err != nil {
		return nil, err
	}
	rep := NewReport()
	rep.Experiments["smp_scaling"] = Experiment{
		Unit:     "ops/s (speedups and counters unitless)",
		Headline: vals["speedup burst depot 8w"],
		Values:   vals,
	}
	return rep, nil
}

// CompareSMP gates the shard-contention heatmap p99s the same way the
// audit, overload, and rings gates do (`fbufbench -exp smp -baseline ...`).
func CompareSMP(baseline, current *Report) error {
	return compareP99(baseline, current, "smp_scaling")
}
