package bench

import "testing"

// TestOverloadDeterministic runs the same seed twice and requires
// identical latency percentiles and counters — the scenario is a pure
// function of the seed.
func TestOverloadDeterministic(t *testing.T) {
	a, err := runOverload(1, "mru16")
	if err != nil {
		t.Fatal(err)
	}
	b, err := runOverload(1, "mru16")
	if err != nil {
		t.Fatal(err)
	}
	if a.stats != b.stats {
		t.Fatalf("stats diverged:\n  %+v\n  %+v", a.stats, b.stats)
	}
	if a.ad != b.ad {
		t.Fatalf("adaptive stats diverged:\n  %+v\n  %+v", a.ad, b.ad)
	}
	for name, ca := range a.classes {
		cb := b.classes[name]
		if *ca != *cb {
			t.Fatalf("class %s diverged:\n  %+v\n  %+v", name, *ca, *cb)
		}
	}
}

// TestOverloadSweep runs the full eviction-policy sweep on one seed; the
// sweep itself enforces convergence, zero leaks, exercised degradation,
// and that LRU beats MRU-16 on path-cache thrash.
func TestOverloadSweep(t *testing.T) {
	runs, err := overloadSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	main := runs["mru16"]
	for _, spec := range overloadTenants {
		cl := main.classes[spec.name]
		if cl.requests == 0 {
			t.Errorf("class %s received no traffic", spec.name)
		}
		if cl.p99 < cl.p50 {
			t.Errorf("class %s p99 %d < p50 %d", spec.name, cl.p99, cl.p50)
		}
	}
	// The starved class degrades; the heavyweight class must not.
	if d := classDuty(main.classes["quick"]); d == 0 {
		t.Error("quick class never rode the copy path")
	}
	if d := classDuty(main.classes["video"]); d != 0 {
		t.Errorf("video class copy duty %.2f, want 0 (ample share)", d)
	}
	if main.classes["video"].rejects != 0 {
		t.Errorf("video class rejected %d times, want 0", main.classes["video"].rejects)
	}
	if main.classes["quick"].rejects == 0 {
		t.Error("quick class was never rejected")
	}
}
