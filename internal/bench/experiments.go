package bench

import (
	"fmt"

	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/netsim"
	"fbufs/internal/obs"
	"fbufs/internal/protocols"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
	"fbufs/internal/xfer"
	"fbufs/internal/xkernel"
)

// observer, when set, is attached to every rig and netsim run the
// experiments build, so cmd/fbufbench can export traces and metrics for a
// whole benchmark run. Histograms accumulate across all rigs; counter
// publication (PublishObserved) reflects the most recently built rig.
var observer *obs.Observer

// lastRig is the most recent single-host rig built while observing.
var lastRig *rig

// SetObserver installs (or, with nil, removes) the benchmark observer.
func SetObserver(o *obs.Observer) {
	observer = o
	lastRig = nil
}

// PublishObserved publishes the most recent rig's counters into the
// observer's metrics registry (called before exporting a snapshot).
func PublishObserved() {
	if observer == nil || lastRig == nil {
		return
	}
	lastRig.mgr.PublishMetrics(observer.Metrics)
	lastRig.sys.PublishMetrics(observer.Metrics)
	observer.PublishSelfMetrics()
}

// rig is one fresh simulated host for the single-host experiments.
type rig struct {
	clk *simtime.Clock
	sys *vm.System
	reg *domain.Registry
	mgr *core.Manager
	env *xkernel.Env
	src *domain.Domain
	dst *domain.Domain
}

func newRig() *rig { return newRigCost(machine.DecStation5000()) }

// newRigCost builds a rig over an explicit machine profile (the CPU/memory
// gap ablation swaps in machine.FutureCPU).
func newRigCost(cost *machine.CostTable) *rig {
	clk := &simtime.Clock{}
	sys := vm.NewSystem(cost, 1<<15, vm.ClockSink{Clock: clk})
	reg := domain.NewRegistry(sys)
	// Larger chunks than the default so the Table 1 sweep can build
	// single fbufs of 128 pages (the incremental measurement compares 64
	// and 128 pages, keeping both runs past the TLB's reach).
	mgr := core.NewManagerGeometry(sys, reg, 256, 128)
	env := xkernel.NewEnv(sys, mgr, reg)
	r := &rig{clk: clk, sys: sys, reg: reg, mgr: mgr, env: env}
	if observer != nil {
		sys.Obs = observer
		observer.SetNow(clk.Now)
		mgr.RegisterTraceNames("")
		lastRig = r
	}
	r.src = reg.New("src")
	r.dst = reg.New("dst")
	return r
}

// facilityFor constructs a transfer facility on a fresh rig.
func facilityFor(name string, r *rig, bytes int) (xfer.Facility, error) {
	noClear := func(o core.Options) core.Options { o.NoClear = true; return o }
	switch name {
	case "fbufs, cached/volatile":
		return xfer.NewFbuf(r.mgr, r.src, r.dst, core.CachedVolatile(), bytes)
	case "fbufs, volatile":
		return xfer.NewFbuf(r.mgr, r.src, r.dst, noClear(core.Uncached()), bytes)
	case "fbufs, cached":
		return xfer.NewFbuf(r.mgr, r.src, r.dst, core.CachedNonVolatile(), bytes)
	case "fbufs":
		return xfer.NewFbuf(r.mgr, r.src, r.dst, noClear(core.UncachedNonVolatile()), bytes)
	case "Mach COW":
		return xfer.NewCOW(r.sys, r.src, r.dst, bytes)
	case "Copy":
		return xfer.NewCopier(r.sys, r.src, r.dst, bytes)
	case "Remap":
		return xfer.NewRemap(r.sys, r.src, r.dst, bytes), nil
	case "Mach native":
		return xfer.NewMachNative(r.sys, r.src, r.dst, bytes)
	}
	return nil, fmt.Errorf("bench: unknown facility %q", name)
}

// measurePerPage returns the steady-state incremental per-page cost in
// microseconds, using the paper's method: warm up, then compare runs at
// two sizes so fixed per-message costs cancel.
func measurePerPage(name string, pages int) (float64, error) {
	return measurePerPageOn(newRig(), name, pages)
}

func measurePerPageOn(r *rig, name string, pages int) (float64, error) {
	run := func(pg int) (simtime.Duration, error) {
		f, err := facilityFor(name, r, pg*machine.PageSize)
		if err != nil {
			return 0, err
		}
		for i := 0; i < 2; i++ { // warm up allocator caches and mappings
			if err := f.Hop(); err != nil {
				return 0, err
			}
		}
		const iters = 4
		start := r.clk.Now()
		for i := 0; i < iters; i++ {
			if err := f.Hop(); err != nil {
				return 0, err
			}
		}
		return (r.clk.Now() - start) / iters, nil
	}
	d1, err := run(pages)
	if err != nil {
		return 0, err
	}
	d2, err := run(2 * pages)
	if err != nil {
		return 0, err
	}
	return (d2 - d1).Microseconds() / float64(pages), nil
}

// Table1 reproduces the paper's Table 1: incremental per-page cost and
// calculated asymptotic throughput for each transfer mechanism, measured
// through the real mechanisms on the simulated DecStation.
func Table1() (*Table, error) {
	mechanisms := []string{
		"fbufs, cached/volatile",
		"fbufs, volatile",
		"fbufs, cached",
		"fbufs",
		"Mach COW",
		"Copy",
	}
	t := &Table{
		Title:  "Table 1: Incremental per-page costs (single domain crossing)",
		Header: []string{"mechanism", "us/page", "asymptotic Mb/s"},
		Note:   "fbuf rows exclude page clearing, as in the paper; see the clearing ablation",
	}
	for _, m := range mechanisms {
		us, err := measurePerPage(m, 64)
		if err != nil {
			return nil, err
		}
		mbps := float64(machine.PageSize) * 8 / us
		t.Rows = append(t.Rows, []string{m, fmt.Sprintf("%.1f", us), fmt.Sprintf("%.0f", mbps)})
	}
	// The remap comparison from section 2.2.1.
	r := newRig()
	rm := xfer.NewRemap(r.sys, r.src, r.dst, machine.PageSize)
	if err := rm.PingPong(); err != nil {
		return nil, err
	}
	start := r.clk.Now()
	for i := 0; i < 8; i++ {
		if err := rm.PingPong(); err != nil {
			return nil, err
		}
	}
	pp := (r.clk.Now() - start).Microseconds() / 16
	t.Rows = append(t.Rows, []string{"Remap (ping-pong)", fmt.Sprintf("%.1f", pp),
		fmt.Sprintf("%.0f", float64(machine.PageSize)*8/pp)})
	oneWay, err := measurePerPage("Remap", 32)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"Remap (one-way, no clear)", fmt.Sprintf("%.1f", oneWay),
		fmt.Sprintf("%.0f", float64(machine.PageSize)*8/oneWay)})
	return t, nil
}

// Figure3Sizes is the message-size sweep of Figure 3.
var Figure3Sizes = []int{64, 256, 1024, 4096, 16384, 65536, 262144}

// Figure3 reproduces throughput across a single domain boundary crossing
// as a function of message size, IPC latency included ("the throughput
// rates shown for small messages in these graphs are strongly influenced
// by the control transfer latency of the IPC mechanism").
func Figure3() (*Figure, error) {
	series := []string{
		"Mach native",
		"fbufs, cached/volatile",
		"fbufs, volatile",
		"fbufs, cached",
		"fbufs",
	}
	fig := &Figure{
		Title:  "Figure 3: Throughput of a single domain boundary crossing",
		XLabel: "message bytes",
		YLabel: "throughput Mb/s",
		X:      Figure3Sizes,
	}
	for _, name := range series {
		var ys []float64
		for _, size := range Figure3Sizes {
			r := newRig()
			f, err := facilityFor(name, r, size)
			if err != nil {
				return nil, err
			}
			hop := func() error {
				// One cross-domain invocation carries the message.
				r.sys.Sink().Charge(r.sys.Cost.IPCLatency)
				return f.Hop()
			}
			for i := 0; i < 2; i++ {
				if err := hop(); err != nil {
					return nil, err
				}
			}
			const iters = 4
			start := r.clk.Now()
			for i := 0; i < iters; i++ {
				if err := hop(); err != nil {
					return nil, err
				}
			}
			per := (r.clk.Now() - start) / iters
			ys = append(ys, simtime.Mbps(int64(size), per))
		}
		fig.Series = append(fig.Series, Series{Name: name, Y: ys})
	}
	return fig, nil
}

// Figure4Sizes is the message-size sweep of Figure 4.
var Figure4Sizes = []int{1024, 4096, 8192, 16384, 65536, 262144, 1048576}

// figure4Run measures loopback throughput for one configuration and size.
func figure4Run(single bool, opts core.Options, size int) (float64, error) {
	return figure4RunConfig(single, opts, size, 0)
}

// figure4RunFbufPages is figure4Run with an explicit data-fbuf size (the
// integrated-transfer ablation shrinks it to maximize fragmentation).
func figure4RunFbufPages(opts core.Options, size, fbufPages int) (float64, error) {
	return figure4RunFull(false, opts, size, fbufPages, false)
}

// figure4RunChecksum is figure4Run with UDP checksumming enabled.
func figure4RunChecksum(opts core.Options, size int, checksum bool) (float64, error) {
	return figure4RunFull(false, opts, size, 0, checksum)
}

func figure4RunConfig(single bool, opts core.Options, size, fbufPages int) (float64, error) {
	return figure4RunFull(single, opts, size, fbufPages, false)
}

func figure4RunFull(single bool, opts core.Options, size, fbufPages int, checksum bool) (float64, error) {
	r := newRig()
	var src, net, sink *domain.Domain
	if single {
		d := r.reg.New("monolith")
		src, net, sink = d, d, d
	} else {
		src, net, sink = r.reg.New("app"), r.reg.New("netserver"), r.reg.New("receiver")
	}
	s, err := protocols.NewLoopbackStack(r.env, protocols.StackConfig{
		Src: src, Net: net, Sink: sink,
		Opts: opts,
		// 4 KB PDUs, aligned so a 4096-byte message plus the UDP header
		// fits exactly one PDU — the paper's plot peaks exactly at 4 KB.
		PDUBytes:      4096 + protocols.UDPHeaderBytes,
		DataFbufPages: fbufPages,
		Checksum:      checksum,
	})
	if err != nil {
		return 0, err
	}
	if err := s.Send(size); err != nil { // warm up
		return 0, err
	}
	const iters = 4
	start := r.clk.Now()
	for i := 0; i < iters; i++ {
		if err := s.Send(size); err != nil {
			return 0, err
		}
	}
	return simtime.Mbps(int64(size)*iters, r.clk.Now()-start), nil
}

// Figure4 reproduces the UDP/IP local loopback throughput experiment:
// the whole stack in one domain versus three domains with cached and
// uncached fbufs, 4 KB IP PDUs, infinitely fast simulated network.
func Figure4() (*Figure, error) {
	uncached := core.Uncached()
	uncached.Integrated = true // the system stays integrated; only caching is off
	configs := []struct {
		name   string
		single bool
		opts   core.Options
	}{
		{"single domain", true, core.CachedVolatile()},
		{"3 domains, cached fbufs", false, core.CachedVolatile()},
		{"3 domains, uncached fbufs", false, uncached},
	}
	fig := &Figure{
		Title:  "Figure 4: Throughput of a UDP/IP local loopback test",
		XLabel: "message bytes",
		YLabel: "throughput Mb/s",
		X:      Figure4Sizes,
		Note:   "4KB IP PDUs; loopback below IP simulates an infinitely fast network",
	}
	for _, cfg := range configs {
		var ys []float64
		for _, size := range Figure4Sizes {
			v, err := figure4Run(cfg.single, cfg.opts, size)
			if err != nil {
				return nil, err
			}
			ys = append(ys, v)
		}
		fig.Series = append(fig.Series, Series{Name: cfg.name, Y: ys})
	}
	return fig, nil
}

// Figure56Sizes is the message-size sweep of Figures 5 and 6.
var Figure56Sizes = []int{4096, 8192, 16384, 65536, 262144, 1048576}

var placements = []netsim.Placement{
	netsim.KernelKernel, netsim.UserUser, netsim.UserNetserverUser,
}

// figure56 runs the end-to-end sweep for one fbuf configuration.
func figure56(title string, opts core.Options, note string) (*Figure, error) {
	fig := &Figure{
		Title:  title,
		XLabel: "message bytes",
		YLabel: "throughput Mb/s",
		X:      Figure56Sizes,
		Note:   note,
	}
	for _, p := range placements {
		var ys []float64
		for _, size := range Figure56Sizes {
			res, err := netsim.Run(netsim.Config{
				Placement: p,
				Opts:      opts,
				PDUBytes:  16*1024 + protocols.UDPHeaderBytes,
				MsgBytes:  size,
				Count:     6,
				Obs:       observer,
			})
			if err != nil {
				return nil, err
			}
			ys = append(ys, res.ThroughputMbps)
		}
		fig.Series = append(fig.Series, Series{Name: p.String(), Y: ys})
	}
	return fig, nil
}

// Figure5 reproduces UDP/IP end-to-end throughput between the two
// simulated DecStations using cached, volatile fbufs (16 KB IP PDUs,
// sliding-window test protocol, Osiris boards over a null modem).
func Figure5() (*Figure, error) {
	return figure56(
		"Figure 5: UDP/IP end-to-end throughput using cached, volatile fbufs",
		core.CachedVolatile(),
		"I/O ceiling: 285 Mb/s (TurboChannel DMA-startup + memory contention)")
}

// Figure6 reproduces the same experiment with uncached, non-volatile
// fbufs — the page-remapping-comparable configuration.
func Figure6() (*Figure, error) {
	opts := core.UncachedNonVolatile()
	opts.Integrated = true
	return figure56(
		"Figure 6: UDP/IP end-to-end throughput using uncached, non-volatile fbufs",
		opts,
		"uncached costs land on the receiving host; non-volatile costs on the transmitter")
}

// CPULoad reproduces the section 4 CPU-load observations: receive-side
// CPU utilization during 1 MB-message reception, cached vs uncached, at
// 16 KB and 32 KB IP PDU sizes.
func CPULoad() (*Table, error) {
	t := &Table{
		Title:  "CPU load: receive-side utilization, 1MB messages, user-user",
		Header: []string{"configuration", "PDU KB", "throughput Mb/s", "rx CPU %", "tx CPU %"},
		Note:   "paper: cached 88% vs saturated (16KB PDU); 55% vs saturated (32KB PDU)",
	}
	uncached := core.UncachedNonVolatile()
	uncached.Integrated = true
	for _, cfg := range []struct {
		name string
		opts core.Options
		pdu  int
	}{
		{"cached/volatile", core.CachedVolatile(), 16},
		{"uncached/non-volatile", uncached, 16},
		{"cached/volatile", core.CachedVolatile(), 32},
		{"uncached/non-volatile", uncached, 32},
	} {
		res, err := netsim.Run(netsim.Config{
			Placement: netsim.UserUser,
			Opts:      cfg.opts,
			PDUBytes:  cfg.pdu*1024 + protocols.UDPHeaderBytes,
			MsgBytes:  1 << 20,
			Count:     6,
			Window:    4,
			Obs:       observer,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			cfg.name, fmt.Sprintf("%d", cfg.pdu),
			fmt.Sprintf("%.0f", res.ThroughputMbps),
			fmt.Sprintf("%.0f", res.RxCPU*100),
			fmt.Sprintf("%.0f", res.TxCPU*100),
		})
	}
	return t, nil
}
