package bench

import (
	"fmt"

	"fbufs/internal/core"
	"fbufs/internal/machine"
	"fbufs/internal/obs"
	"fbufs/internal/simtime"
	"fbufs/internal/xfer"
)

// The overload scenario drives the facility the way a production box dies:
// thousands of clients zipf-routed onto a few dozen connections, three
// tenant classes with very different message sizes and connection churn,
// more live data paths than the path cache has slots, and an admission
// budget deliberately too small for the most aggressive class. The run
// measures what the robustness machinery buys — per-class p50/p99 latency,
// path-cache thrash under each eviction policy, admission rejections, and
// the copy-fallback duty cycle — and ends with the chaos-style convergence
// check: everything closed, notices drained, zero leaked fbufs or frames.
//
// Everything is a pure function of the seed: arrivals, routing, churn, and
// payload sampling come from a private splitmix64 stream, and time is the
// rig's simulated clock, so the table and the JSON experiment are
// byte-identical across runs and machines.

// overloadSeeds is the seed matrix the text table sweeps; CI fans the same
// seeds out as separate jobs. The JSON experiment pins overloadSeeds[0] so
// the regression gate compares like with like.
var overloadSeeds = []int64{1, 2, 3}

const (
	// overloadRequests is the per-run request count after warmup.
	overloadRequests = 4000
	// overloadClients is the simulated client population; requests pick a
	// client by a squared-zipf draw, so a small hot set dominates.
	overloadClients = 2000
	// overloadBudget is the admission budget in chunks. With weights
	// 1/4/2 the quickstart class's share (7) is far below its 24
	// connections, forcing rejections and copy-path degradation; the
	// video class (28) never rejects.
	overloadBudget = 49
	// overloadSendEvery samples payload integrity: every Nth request is a
	// full Send with a seeded payload verified on the receive side.
	overloadSendEvery = 64
)

// overloadPolicies are the eviction policies the sweep compares on the
// identical seeded schedule.
var overloadPolicies = []string{"mru16", "lru", "size", "pinned-lru"}

// overloadTenant is one tenant class's shape.
type overloadTenant struct {
	name       string
	weight     int // admission weight
	conns      int // concurrently open connections (data paths)
	pages      int // fbuf size in pages
	churnEvery int // close+reopen one connection every N class requests
	pinned     bool
}

// overloadTenants is the production-shaped mix: many small quickstart
// connections with high churn, a few fat pinned video streams, and a
// middling netserver tier. 48 paths over a 16-entry cache guarantees
// capacity pressure.
var overloadTenants = []overloadTenant{
	{name: "quick", weight: 1, conns: 24, pages: 1, churnEvery: 48},
	{name: "video", weight: 4, conns: 8, pages: 8, churnEvery: 512, pinned: true},
	{name: "net", weight: 2, conns: 16, pages: 4, churnEvery: 160},
}

// overloadMix maps client-id mod 10 to a tenant index: 50% quickstart,
// 30% netserver, 20% video.
var overloadMix = [10]int{0, 0, 0, 0, 0, 2, 2, 2, 1, 1}

// overloadRng is a private splitmix64 stream (same generator as the fault
// plane) so the schedule is a pure function of the seed.
type overloadRng struct{ s uint64 }

func (r *overloadRng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *overloadRng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// overloadClassRun is one tenant class's measured outcome.
type overloadClassRun struct {
	requests uint64
	p50, p99 int64 // latency, simulated ns
	rejects  uint64
	fast     uint64 // adaptive fast hops, aggregated over churned conns too
	copies   uint64 // adaptive copy hops
}

// overloadRun is one (seed, policy) run's outcome.
type overloadRun struct {
	seed    int64
	policy  string
	classes map[string]*overloadClassRun
	stats   core.Stats
	ad      xfer.AdaptiveStats // aggregate across every connection opened
	thrash  float64            // CacheMisses / Allocs
}

// copyDuty is the fraction of successful hops that rode the copy path.
func (o *overloadRun) copyDuty() float64 {
	total := o.ad.FastHops + o.ad.CopyHops
	if total == 0 {
		return 0
	}
	return float64(o.ad.CopyHops) / float64(total)
}

// overloadConn is one live connection.
type overloadConn struct {
	ad   *xfer.Adaptive
	spec overloadTenant
}

// runOverload executes the seeded schedule on a fresh rig under the named
// eviction policy and verifies convergence before returning.
func runOverload(seed int64, policyName string) (*overloadRun, error) {
	pol, ok := core.PolicyByName(policyName)
	if !ok {
		return nil, fmt.Errorf("bench: unknown eviction policy %q", policyName)
	}
	r := newRig()
	r.mgr.SetPathCache(core.DefaultCacheEntries, pol)
	adm := core.NewAdmission(overloadBudget)
	tenants := make(map[string]*core.TenantClass, len(overloadTenants))
	for _, t := range overloadTenants {
		tenants[t.name] = adm.Class(t.name, t.weight)
	}
	r.mgr.SetAdmission(adm)

	// Latency histograms live in a run-local observer (percentiles come
	// from the obs layer's log2 histograms); samples are mirrored into
	// the fbufbench observer when one is attached. The nil-safe obs API
	// makes the mirror free when it is not.
	lo := obs.New(8)
	lo.SetNow(r.clk.Now)

	baseline := r.sys.Mem.Allocated()

	run := &overloadRun{seed: seed, policy: policyName,
		classes: make(map[string]*overloadClassRun, len(overloadTenants))}
	for _, t := range overloadTenants {
		run.classes[t.name] = &overloadClassRun{}
	}
	retire := func(c *overloadConn) {
		st := c.ad.Stats
		run.ad.FastHops += st.FastHops
		run.ad.CopyHops += st.CopyHops
		run.ad.Episodes += st.Episodes
		run.ad.Recoveries += st.Recoveries
		run.ad.ProbeFailures += st.ProbeFailures
		cl := run.classes[c.spec.name]
		cl.fast += st.FastHops
		cl.copies += st.CopyHops
		c.ad.Close()
	}

	open := func(spec overloadTenant) (*overloadConn, error) {
		ad, err := xfer.NewAdaptive(r.mgr, r.src, r.dst,
			core.CachedVolatile(), spec.pages*machine.PageSize)
		if err != nil {
			return nil, err
		}
		ad.RetryEvery = 2 // probe aggressively: recoveries are under test
		p := ad.Path()
		p.SetTenant(tenants[spec.name])
		p.SetPinned(spec.pinned)
		return &overloadConn{ad: ad, spec: spec}, nil
	}

	conns := make(map[string][]*overloadConn, len(overloadTenants))
	for _, t := range overloadTenants {
		for i := 0; i < t.conns; i++ {
			c, err := open(t)
			if err != nil {
				return nil, fmt.Errorf("bench: overload open %s conn: %w", t.name, err)
			}
			conns[t.name] = append(conns[t.name], c)
		}
	}

	// Warmup and service-time calibration: one cold round to build
	// mappings, one measured round whose mean hop cost scales the
	// arrival process and the accept-queue bound.
	var warmHops int
	var warmStart simtime.Time
	for round := 0; round < 2; round++ {
		if round == 1 {
			warmStart = r.clk.Now()
		}
		for _, t := range overloadTenants {
			for _, c := range conns[t.name] {
				if err := c.ad.Hop(); err != nil {
					return nil, fmt.Errorf("bench: overload warmup hop (%s): %w", t.name, err)
				}
				if round == 1 {
					warmHops++
				}
			}
		}
	}
	meanService := int64(r.clk.Now()-warmStart) / int64(warmHops)
	if meanService <= 0 {
		meanService = 1
	}
	// Mean interarrival ≈ 1.7× the mean service time, but 85% of gaps
	// are 0.75× — sustained bursts push utilization past 1 and build
	// queue, and the heavy tail (32×) drains it. The accept queue is
	// bounded at 16 services: past that, arrivals are held at the door
	// (the timeline is clamped), modelling a finite listen backlog.
	interBase := meanService * 3 / 4
	backlogCap := meanService * 16

	rng := overloadRng{s: uint64(seed)}
	churns := make(map[string]int, len(overloadTenants))
	arrival := r.clk.Now()
	payload := make([]byte, 32)

	for req := 0; req < overloadRequests; req++ {
		// Heavy-tailed open-loop arrivals.
		gap := interBase
		switch v := rng.intn(100); {
		case v >= 97:
			gap *= 32
		case v >= 85:
			gap *= 4
		}
		arrival += simtime.Duration(gap)
		now := r.clk.Now()
		if arrival > now {
			arrival = now // server idle: next request arrives "now"
		} else if now-arrival > simtime.Duration(backlogCap) {
			arrival = now - simtime.Duration(backlogCap)
		}
		wait := now - arrival

		// Squared-zipf client draw: a small hot set dominates.
		client := rng.intn(overloadClients)
		client = client * client / overloadClients
		spec := overloadTenants[overloadMix[client%10]]
		cl := run.classes[spec.name]
		conn := conns[spec.name][(client/10)%spec.conns]

		start := r.clk.Now()
		var err error
		if req%overloadSendEvery == 0 {
			for i := range payload {
				payload[i] = byte(uint64(req) + uint64(i)*0x9e)
			}
			var echo []byte
			echo, err = conn.ad.Send(payload)
			if err == nil {
				for i := range payload {
					if echo[i] != payload[i] {
						return nil, fmt.Errorf("bench: overload payload corrupt at req %d byte %d", req, i)
					}
				}
			}
		} else {
			err = conn.ad.Hop()
		}
		if err != nil {
			// Alloc exhaustion is absorbed by the adaptive facility;
			// anything surfacing here is a real bug.
			return nil, fmt.Errorf("bench: overload req %d (%s): %w", req, spec.name, err)
		}
		latency := int64(wait + (r.clk.Now() - start))
		cl.requests++
		name := "overload." + spec.name + ".latency_ns"
		lo.Observe(name, latency)
		if observer != nil {
			observer.Observe(name, latency)
		}

		// Connection churn: close and reopen one of the class's
		// connections on a rotating index.
		churnCount := int(cl.requests)
		if churnCount%spec.churnEvery == 0 {
			idx := churns[spec.name] % spec.conns
			churns[spec.name]++
			retire(conns[spec.name][idx])
			c, err := open(spec)
			if err != nil {
				return nil, fmt.Errorf("bench: overload churn reopen %s: %w", spec.name, err)
			}
			conns[spec.name][idx] = c
		}
	}

	for _, t := range overloadTenants {
		for _, c := range conns[t.name] {
			retire(c)
		}
	}
	// Chaos-style convergence: notices drained both ways, caches
	// reclaimed, nothing live, queued, or leaked.
	r.mgr.DeliverNotices(r.src, r.dst)
	r.mgr.DeliverNotices(r.dst, r.src)
	for r.mgr.ReclaimIdle(1024) > 0 {
	}
	if err := r.mgr.CheckConverged(); err != nil {
		return nil, fmt.Errorf("bench: overload seed %d policy %s: %w", seed, policyName, err)
	}
	want := baseline + r.mgr.EmptyLeafFrames()
	if got := r.sys.Mem.Allocated(); got != want {
		return nil, fmt.Errorf("bench: overload seed %d policy %s: frame leak: %d allocated, want %d",
			seed, policyName, got, want)
	}
	st := r.mgr.Snapshot()
	if err := st.Check(); err != nil {
		return nil, fmt.Errorf("bench: overload seed %d policy %s: %w", seed, policyName, err)
	}
	run.stats = st
	if st.Allocs > 0 {
		run.thrash = float64(st.CacheMisses) / float64(st.Allocs)
	}
	for _, t := range overloadTenants {
		cl := run.classes[t.name]
		h := lo.Metrics.Histogram("overload." + t.name + ".latency_ns")
		cl.p50 = h.Percentile(50)
		cl.p99 = h.Percentile(99)
		cl.rejects = tenants[t.name].Rejects()
	}

	// The scenario must actually have exercised the machinery it claims
	// to measure; a quiet run is a configuration bug, not a result.
	if st.PathEvictions == 0 {
		return nil, fmt.Errorf("bench: overload seed %d policy %s: no path evictions", seed, policyName)
	}
	if st.AdmissionRejects == 0 {
		return nil, fmt.Errorf("bench: overload seed %d policy %s: no admission rejects", seed, policyName)
	}
	if run.ad.Episodes == 0 || run.ad.Recoveries == 0 {
		return nil, fmt.Errorf("bench: overload seed %d policy %s: degradation not exercised (episodes=%d recoveries=%d)",
			seed, policyName, run.ad.Episodes, run.ad.Recoveries)
	}
	return run, nil
}

// overloadSweep runs every eviction policy on the same seeded schedule
// and checks that LRU beats the paper's MRU-16 on cache thrash (zipf-hot
// paths evict each other under MRU; LRU keeps the hot set resident).
func overloadSweep(seed int64) (map[string]*overloadRun, error) {
	runs := make(map[string]*overloadRun, len(overloadPolicies))
	for _, pol := range overloadPolicies {
		run, err := runOverload(seed, pol)
		if err != nil {
			return nil, err
		}
		runs[pol] = run
	}
	if runs["lru"].thrash >= runs["mru16"].thrash {
		return nil, fmt.Errorf("bench: overload seed %d: lru thrash %.4f did not beat mru16 %.4f",
			seed, runs["lru"].thrash, runs["mru16"].thrash)
	}
	return runs, nil
}

// Overload runs the production-shaped overload scenario over the seed
// matrix (or a single seed when seeds is non-empty) and tabulates
// per-class latency plus the eviction-policy sweep. Any robustness
// violation — corruption, leak, failed convergence, a policy sweep where
// LRU fails to beat MRU-16 — comes back as an error.
func Overload(seeds ...int64) (*Table, error) {
	if len(seeds) == 0 {
		seeds = overloadSeeds
	}
	t := &Table{
		Title: "Overload: production-shaped multi-tenant saturation",
		Note: "2000 zipf-routed clients over 48 churning connections in three tenant\n" +
			"classes (quick=1pg w1, video=8pg w4 pinned, net=4pg w2), a 16-entry\n" +
			"path cache, and an admission budget of 49 chunks. Latency is simulated\n" +
			"queueing wait plus service. Per-policy rows compare cache thrash\n" +
			"(misses/allocs) on the identical schedule; every run must converge\n" +
			"with zero leaked fbufs or frames.",
		Header: []string{"seed", "policy", "class", "reqs", "p50 us", "p99 us",
			"rejects", "evictions", "thrash", "copy duty"},
	}
	for _, seed := range seeds {
		runs, err := overloadSweep(seed)
		if err != nil {
			return nil, err
		}
		main := runs["mru16"]
		for _, spec := range overloadTenants {
			cl := main.classes[spec.name]
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(seed), "mru16", spec.name,
				fmt.Sprint(cl.requests),
				fmt.Sprintf("%.1f", float64(cl.p50)/1000),
				fmt.Sprintf("%.1f", float64(cl.p99)/1000),
				fmt.Sprint(cl.rejects),
				fmt.Sprint(main.stats.PathEvictions),
				fmt.Sprintf("%.3f", main.thrash),
				fmt.Sprintf("%.2f", classDuty(cl)),
			})
		}
		for _, pol := range overloadPolicies {
			if pol == "mru16" {
				continue
			}
			run := runs[pol]
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(seed), pol, "(all)",
				fmt.Sprint(overloadRequests), "-", "-",
				fmt.Sprint(run.stats.AdmissionRejects),
				fmt.Sprint(run.stats.PathEvictions),
				fmt.Sprintf("%.3f", run.thrash),
				fmt.Sprintf("%.2f", run.copyDuty()),
			})
		}
	}
	return t, nil
}

// classDuty is the per-class copy duty cycle.
func classDuty(cl *overloadClassRun) float64 {
	total := cl.fast + cl.copies
	if total == 0 {
		return 0
	}
	return float64(cl.copies) / float64(total)
}

// OverloadExperiment runs the policy sweep on the pinned report seed and
// flattens it into the report experiment the CI p99 gate compares.
func OverloadExperiment() (Experiment, error) {
	runs, err := overloadSweep(overloadSeeds[0])
	if err != nil {
		return Experiment{}, err
	}
	main := runs["mru16"]
	vals := map[string]float64{
		"evictions":         float64(main.stats.PathEvictions),
		"admission_rejects": float64(main.stats.AdmissionRejects),
		"fast_hops":         float64(main.ad.FastHops),
		"copy_hops":         float64(main.ad.CopyHops),
		"episodes":          float64(main.ad.Episodes),
		"recoveries":        float64(main.ad.Recoveries),
		"probe_failures":    float64(main.ad.ProbeFailures),
		"copy_duty_pct":     100 * main.copyDuty(),
	}
	for _, spec := range overloadTenants {
		cl := main.classes[spec.name]
		vals[spec.name+" p50_ns"] = float64(cl.p50)
		vals[spec.name+" p99_ns"] = float64(cl.p99)
		vals[spec.name+" rejects"] = float64(cl.rejects)
	}
	for _, pol := range overloadPolicies {
		vals["thrash "+pol] = runs[pol].thrash
	}
	return Experiment{
		Unit:     "ns (counts and ratios unitless)",
		Headline: float64(main.classes["quick"].p99),
		Values:   vals,
	}, nil
}

// OverloadReport builds a report holding only the overload experiment —
// what `fbufbench -exp overload -json` writes and the CI overload job
// gates against its checked-in baseline.
func OverloadReport() (*Report, error) {
	exp, err := OverloadExperiment()
	if err != nil {
		return nil, err
	}
	rep := NewReport()
	rep.Experiments["overload"] = exp
	return rep, nil
}
