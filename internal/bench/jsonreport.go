package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"fbufs/internal/core"
	"fbufs/internal/protocols"
)

// Experiment is one experiment's machine-readable result: a headline
// number plus the per-row/per-series values it was drawn from.
type Experiment struct {
	// Unit of every value ("us/page", "Mb/s", "count").
	Unit string `json:"unit"`
	// Headline is the experiment's single comparison number (the paper's
	// quoted result for the fully optimized configuration).
	Headline float64 `json:"headline"`
	// Values maps row/series name to its headline value.
	Values map[string]float64 `json:"values"`
}

// ReportSchema is the BENCH_report.json schema version. Bump it when the
// report's structure or the meaning of existing keys changes; LoadReport
// rejects files written under any other version so stale baselines fail
// loudly instead of comparing garbage.
const ReportSchema = 2

// BenchSeed is the deterministic seed baked into the benchmark workloads
// (the SWP jitter stream's default); stamped into the report so a baseline
// records the run configuration it was produced under.
const BenchSeed = 0x5bd1e995

// Report is the BENCH_report.json payload: every experiment's headline
// simulated metric, trackable across PRs. All metrics are simulated-time
// results, independent of the machine running the benchmarks, so the file
// only changes when the modelled system changes.
type Report struct {
	// Schema is the report format version (ReportSchema at write time).
	Schema int `json:"schema"`
	// Seed records the deterministic seed the workloads ran under.
	Seed uint64 `json:"seed"`
	// Flags records the flag set the producing command ran with.
	Flags []string `json:"flags,omitempty"`

	Experiments map[string]Experiment `json:"experiments"`
}

// NewReport returns an empty report stamped with the current schema
// version and bench seed.
func NewReport() *Report {
	return &Report{
		Schema:      ReportSchema,
		Seed:        BenchSeed,
		Experiments: make(map[string]Experiment),
	}
}

// LoadReport parses a report and rejects unknown schema versions (a report
// written before versioning decodes as schema 0 and is rejected too — it
// predates the keys current comparisons expect).
func LoadReport(rd io.Reader) (*Report, error) {
	var rep Report
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench: parsing report: %w", err)
	}
	if rep.Schema != ReportSchema {
		return nil, fmt.Errorf("bench: report schema %d not supported (want %d); regenerate with fbufbench -json",
			rep.Schema, ReportSchema)
	}
	if rep.Experiments == nil {
		rep.Experiments = make(map[string]Experiment)
	}
	return &rep, nil
}

// tableValues extracts column col of a Table keyed by the row-name column.
func tableValues(t *Table, col int) map[string]float64 {
	vals := make(map[string]float64)
	for _, row := range t.Rows {
		if col >= len(row) {
			continue
		}
		if v, err := strconv.ParseFloat(row[col], 64); err == nil {
			vals[row[0]] = v
		}
	}
	return vals
}

// figureValues extracts each series' value at the largest message size.
func figureValues(f *Figure) map[string]float64 {
	vals := make(map[string]float64)
	for _, s := range f.Series {
		if len(s.Y) > 0 {
			vals[s.Name] = s.Y[len(s.Y)-1]
		}
	}
	return vals
}

// BuildReport runs the paper experiments and collects their headline
// simulated metrics plus the fbuf facility's key counters from a
// steady-state loopback run.
func BuildReport() (*Report, error) {
	rep := NewReport()

	t1, err := Table1()
	if err != nil {
		return nil, err
	}
	t1v := tableValues(t1, 1)
	rep.Experiments["table1_per_page_cost"] = Experiment{
		Unit:     "us/page",
		Headline: t1v["fbufs, cached/volatile"],
		Values:   t1v,
	}

	for _, fig := range []struct {
		name     string
		run      func() (*Figure, error)
		headline string
	}{
		{"fig3_single_crossing", Figure3, "fbufs, cached/volatile"},
		{"fig4_udp_loopback", Figure4, "3 domains, cached fbufs"},
		{"fig5_end_to_end_cached", Figure5, "user-user"},
		{"fig6_end_to_end_uncached", Figure6, "user-user"},
	} {
		f, err := fig.run()
		if err != nil {
			return nil, err
		}
		vals := figureValues(f)
		rep.Experiments[fig.name] = Experiment{
			Unit:     "Mb/s",
			Headline: vals[fig.headline],
			Values:   vals,
		}
	}

	cl, err := CPULoad()
	if err != nil {
		return nil, err
	}
	clVals := make(map[string]float64)
	for _, row := range cl.Rows {
		if len(row) >= 4 {
			if v, err := strconv.ParseFloat(row[3], 64); err == nil {
				clVals[row[0]+" "+row[1]+"KB rx_cpu_pct"] = v
			}
		}
	}
	var clHeadline float64
	if len(cl.Rows) > 0 && len(cl.Rows[0]) >= 4 {
		clHeadline, _ = strconv.ParseFloat(cl.Rows[0][3], 64)
	}
	rep.Experiments["cpuload_rx_utilization"] = Experiment{
		Unit:     "percent",
		Headline: clHeadline,
		Values:   clVals,
	}

	counters, err := steadyStateCounters()
	if err != nil {
		return nil, err
	}
	rep.Experiments["loopback_steady_state_counters"] = Experiment{
		Unit:     "count",
		Headline: counters["cache_hits"],
		Values:   counters,
	}

	smp, _, err := smpAllValues(SMPSeed)
	if err != nil {
		return nil, err
	}
	rep.Experiments["smp_scaling"] = Experiment{
		Unit:     "ops/s (speedups and counters unitless)",
		Headline: smp["speedup burst depot 8w"],
		Values:   smp,
	}

	audit, err := Audit()
	if err != nil {
		return nil, err
	}
	auditExp, err := audit.AuditExperiment()
	if err != nil {
		return nil, err
	}
	rep.Experiments["audit_latency_attribution"] = auditExp

	ov, err := OverloadExperiment()
	if err != nil {
		return nil, err
	}
	rep.Experiments["overload"] = ov

	rg, err := Rings(RingsSeed)
	if err != nil {
		return nil, err
	}
	rep.Experiments["rings"] = rg.RingsExperiment()
	return rep, nil
}

// steadyStateCounters runs a fixed cached/volatile loopback workload and
// returns the facility counters — the "key counters" entry of the report.
func steadyStateCounters() (map[string]float64, error) {
	r := newRig()
	src, net, sink := r.reg.New("app"), r.reg.New("netserver"), r.reg.New("receiver")
	s, err := protocols.NewLoopbackStack(r.env, protocols.StackConfig{
		Src: src, Net: net, Sink: sink,
		Opts:     core.CachedVolatile(),
		PDUBytes: 4096 + protocols.UDPHeaderBytes,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 8; i++ {
		if err := s.Send(65536); err != nil {
			return nil, err
		}
	}
	st := r.mgr.Snapshot()
	if err := st.Check(); err != nil {
		return nil, err
	}
	return map[string]float64{
		"allocs":         float64(st.Allocs),
		"cache_hits":     float64(st.CacheHits),
		"cache_misses":   float64(st.CacheMisses),
		"transfers":      float64(st.Transfers),
		"mappings_built": float64(st.MappingsBuilt),
		"secures":        float64(st.Secures),
		"frees":          float64(st.Frees),
		"recycles":       float64(st.Recycles),
		"notices_queued": float64(st.NoticesQueued),
	}, nil
}

// WriteJSON writes the report as indented JSON (map keys sorted by
// encoding/json, so identical runs are byte-identical).
func (r *Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Summary returns a one-line digest (cmd/fbufbench prints it after
// writing the file).
func (r *Report) Summary() string {
	t1 := r.Experiments["table1_per_page_cost"].Headline
	f5 := r.Experiments["fig5_end_to_end_cached"].Headline
	return fmt.Sprintf("cached/volatile: %.1f us/page, %.0f Mb/s end-to-end (user-user, 1MB)", t1, f5)
}
