package bench

import (
	"fmt"

	"fbufs/internal/chaos"
)

// chaosSeeds is the seed matrix the chaos scenario sweeps. Kept small so
// `fbufbench -exp chaos` stays fast; CI sweeps a wider matrix via fbufsim.
var chaosSeeds = []int64{1, 2, 3}

// Chaos runs the seeded fault-injection schedules (single-host allocation/
// crash soup plus the two-host lossy-link run) over the seed matrix and
// tabulates the headline robustness counters. Any violation — corrupted
// payload, leaked frame, stranded fbuf, failed convergence, or a schedule
// that never exercised the degraded copy path — is returned as an error so
// the bench run fails loudly rather than printing a rosy table.
func Chaos() (*Table, error) {
	t := &Table{
		Title: "Chaos: seeded fault injection with convergence checks",
		Note: "Local: allocation faults, mapping faults, and domain crashes with\n" +
			"fallback to the copy path and recovery. Net: lossy/partitioned links\n" +
			"ridden out by SWP with exponential backoff. Every cell is deterministic\n" +
			"for its seed; the run errors out on any robustness violation.",
		Header: []string{"seed", "sends", "crashes", "fallbacks", "recoveries",
			"delivered", "retransmits", "crc drops", "verdict"},
	}
	for _, seed := range chaosSeeds {
		local, err := chaos.RunLocal(seed)
		if err != nil {
			return nil, fmt.Errorf("chaos local seed %d: %w", seed, err)
		}
		net, err := chaos.RunNet(seed)
		if err != nil {
			return nil, fmt.Errorf("chaos net seed %d: %w", seed, err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(seed),
			fmt.Sprint(local.Sends),
			fmt.Sprint(local.Crashes),
			fmt.Sprint(local.Episodes),
			fmt.Sprint(local.Recoveries),
			fmt.Sprint(net.Delivered),
			fmt.Sprint(net.Retransmits),
			fmt.Sprint(net.CRCDrops),
			"converged",
		})
	}
	return t, nil
}
