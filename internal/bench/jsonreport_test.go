package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestSteadyStateCounters(t *testing.T) {
	c, err := steadyStateCounters()
	if err != nil {
		t.Fatal(err)
	}
	if c["allocs"] == 0 {
		t.Error("steady-state run recorded no allocs")
	}
	if c["cache_hits"] == 0 {
		t.Error("cached/volatile loopback recorded no cache hits")
	}
	if c["allocs"] != c["cache_hits"]+c["cache_misses"] {
		t.Errorf("allocs %v != hits %v + misses %v",
			c["allocs"], c["cache_hits"], c["cache_misses"])
	}
}

func TestReportJSONDeterministic(t *testing.T) {
	rep := &Report{Experiments: map[string]Experiment{
		"b": {Unit: "Mb/s", Headline: 2, Values: map[string]float64{"y": 2, "x": 1}},
		"a": {Unit: "us/page", Headline: 1, Values: map[string]float64{"z": 3}},
	}}
	var buf1, buf2 bytes.Buffer
	if err := rep.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Error("two serializations differ")
	}
	var round Report
	if err := json.Unmarshal(buf1.Bytes(), &round); err != nil {
		t.Fatal(err)
	}
	if round.Experiments["b"].Headline != 2 {
		t.Error("round trip lost data")
	}
}

func TestBuildReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every paper experiment")
	}
	rep, err := BuildReport()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"table1_per_page_cost", "fig3_single_crossing", "fig4_udp_loopback",
		"fig5_end_to_end_cached", "fig6_end_to_end_uncached",
		"cpuload_rx_utilization", "loopback_steady_state_counters",
	} {
		e, ok := rep.Experiments[name]
		if !ok {
			t.Errorf("report missing experiment %q", name)
			continue
		}
		if e.Headline == 0 {
			t.Errorf("%s headline is zero", name)
		}
	}
	// The headline cached/volatile per-page cost is the paper's Table 1
	// centrepiece; pin it so report regressions are loud.
	if got := rep.Experiments["table1_per_page_cost"].Headline; got != 3.0 {
		t.Errorf("table1 cached/volatile headline = %v us/page, want 3.0", got)
	}
}
