package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"fbufs/internal/core"
	"fbufs/internal/netsim"
	"fbufs/internal/obs"
	"fbufs/internal/obs/profile"
	"fbufs/internal/obs/span"
	"fbufs/internal/protocols"
	"fbufs/internal/rings"
	"fbufs/internal/simtime"
)

// Audit run parameters: the Figure 5 cached path (user-user placement,
// cached/volatile fbufs, 16 KB PDUs) at one representative message size,
// window 1 so every transfer's latency is measured unpipelined.
const (
	auditMsgBytes = 65536
	auditCount    = 32
	// auditLatencyThreshold trips the flight recorder when a data transfer
	// exceeds it — far above the clean-run latency (~1 ms for 64 KB), so
	// only a genuine anomaly produces a dump.
	auditLatencyThreshold = simtime.Time(50 * 1e6) // 50 ms
)

// AuditResult is one latency-attribution run: the critical-path profile,
// the per-path lock-contention heatmap, the flight recorder (for Perfetto
// export), and the run's throughput result.
type AuditResult struct {
	Profile    *profile.Report
	Contention []profile.ContentionCell
	Recorder   *profile.FlightRecorder
	Result     netsim.Result
	// RingStats sums both hosts' ring-plane counters. Doorbells show up as
	// charged ring-doorbell stage time in the profile; spin hits and drains
	// consume zero simulated time (that is the point of the ring plane), so
	// the attribution carries them as counters rather than stage rows.
	RingStats rings.Stats
}

// Audit runs the end-to-end cached path with the span layer attached and
// folds every transfer into a per-stage latency attribution.
func Audit() (*AuditResult, error) {
	o := obs.New(1 << 16)
	o.Spans = span.NewRecorder(auditCount + 8)
	prof := profile.NewProfiler()
	fr := profile.NewFlightRecorder(o, 16)
	fr.SetLatencyThreshold("data", int64(auditLatencyThreshold))
	profile.Attach(o, prof, fr)

	// UseRings: the audited path is the syscall-free data plane, so the
	// attribution splits control transfer into ring-doorbell, ring-spin,
	// and ring-drain stages (plus the residual legacy ipc on fallbacks).
	e, err := netsim.NewE2E(netsim.Config{
		Placement: netsim.UserUser,
		Opts:      core.CachedVolatile(),
		PDUBytes:  16*1024 + protocols.UDPHeaderBytes,
		MsgBytes:  auditMsgBytes,
		Count:     auditCount,
		Window:    1,
		UseRings:  true,
		Obs:       o,
	})
	if err != nil {
		return nil, err
	}
	res, err := e.Run()
	if err != nil {
		return nil, err
	}
	fr.ScanEvents()

	var rstats rings.Stats
	var cells []profile.ContentionCell
	for _, h := range []*netsim.Host{e.A, e.B} {
		rstats.Add(h.Env.Router.RingStats())
		for _, pc := range h.Mgr.ContentionByPath() {
			cells = append(cells, profile.ContentionCell{
				Name:      h.Name + "." + pc.Name,
				Acquires:  pc.Acquires,
				Contended: pc.Contended,
				WaitNs:    pc.WaitNs,
			})
		}
	}
	profile.FillRates(cells)

	return &AuditResult{
		Profile:    prof.Report(),
		Contention: cells,
		Recorder:   fr,
		Result:     res,
		RingStats:  rstats,
	}, nil
}

// WriteTo renders the audit run as text: the attribution tables, the lock
// heatmap, and any anomalies the flight recorder caught.
func (a *AuditResult) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	sb.WriteString("Latency attribution: fig5 cached path (user-user, 64KB messages, window 1, ring data plane)\n")
	if err := a.Profile.WriteText(&sb); err != nil {
		return 0, err
	}
	rs := a.RingStats
	fmt.Fprintf(&sb, "ring plane: %d submits, %d doorbells (charged), %d spin hits (free), %d drains moved %d entries, %d legacy fallbacks\n",
		rs.Submits, rs.Doorbells, rs.SpinHits, rs.Drains+rs.CompletionDrains,
		rs.Drained+rs.CompletionsDrained, rs.SubmitFallbacks+rs.CompleteFallback)
	sb.WriteString("lock contention by path\n")
	if err := profile.WriteContentionTable(&sb, a.Contention); err != nil {
		return 0, err
	}
	if an := a.Recorder.Anomalies(); len(an) > 0 {
		sb.WriteString("anomalies\n")
		for _, x := range an {
			fmt.Fprintf(&sb, "  %s %s %s\n", x.At, x.Kind, x.Detail)
		}
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// AuditExperiment flattens the data path's attribution into a report
// Experiment: headline is the end-to-end p99; values carry the per-stage
// totals and p99s the CI regression gate compares.
func (a *AuditResult) AuditExperiment() (Experiment, error) {
	pr := a.Profile.Path("data")
	if pr == nil {
		return Experiment{}, fmt.Errorf("bench: audit run produced no data-path traces")
	}
	vals := map[string]float64{
		"e2e p99_ns":    float64(pr.E2E.P99Ns),
		"e2e p50_ns":    float64(pr.E2E.P50Ns),
		"e2e max_ns":    float64(pr.E2E.MaxNs),
		"e2e_total_ns":  float64(pr.E2ETotalNs),
		"attributed_ns": float64(pr.AttributedNs),
		"traces":        float64(pr.Traces),
	}
	for _, row := range pr.Stages {
		k := row.Layer + "/" + row.Stage
		vals[k+" total_ns"] = float64(row.TotalNs)
		vals[k+" p99_ns"] = float64(row.Dist.P99Ns)
	}
	// Ring-plane counters: spin hits and drains are charged nothing, so
	// they appear here rather than as (zero-width) stage rows.
	vals["ring doorbells"] = float64(a.RingStats.Doorbells)
	vals["ring spin_hits"] = float64(a.RingStats.SpinHits)
	vals["ring drained_entries"] = float64(a.RingStats.Drained + a.RingStats.CompletionsDrained)
	vals["ring fallbacks"] = float64(a.RingStats.SubmitFallbacks + a.RingStats.CompleteFallback)
	return Experiment{Unit: "ns", Headline: float64(pr.E2E.P99Ns), Values: vals}, nil
}

// AuditReport builds a report holding only the audit experiment — what
// `fbufbench -exp audit -json` writes and the CI bench-audit job gates on.
func AuditReport() (*Report, *AuditResult, error) {
	a, err := Audit()
	if err != nil {
		return nil, nil, err
	}
	exp, err := a.AuditExperiment()
	if err != nil {
		return nil, nil, err
	}
	rep := NewReport()
	rep.Experiments["audit_latency_attribution"] = exp
	return rep, a, nil
}

// auditRegressionTolerance is the CI gate: a p99 attribution value may grow
// by at most 10% over the checked-in baseline.
const auditRegressionTolerance = 0.10

// CompareAudit checks the current audit experiment against a baseline
// report and returns an error describing every p99 value that regressed
// more than the tolerance. Stages present only on one side are reported
// too: a vanished stage means the attribution itself changed shape.
func CompareAudit(baseline, current *Report) error {
	return compareP99(baseline, current, "audit_latency_attribution")
}

// CompareOverload gates the overload experiment's per-tenant-class p99
// latencies the same way (`fbufbench -exp overload -baseline ...`).
func CompareOverload(baseline, current *Report) error {
	return compareP99(baseline, current, "overload")
}

// compareP99 compares every "p99_ns"-suffixed value of the named
// experiment between two reports under the shared tolerance.
func compareP99(baseline, current *Report, name string) error {
	base, ok := baseline.Experiments[name]
	if !ok {
		return fmt.Errorf("bench: baseline has no %s experiment", name)
	}
	cur, ok := current.Experiments[name]
	if !ok {
		return fmt.Errorf("bench: current report has no %s experiment", name)
	}
	keys := make([]string, 0, len(base.Values))
	for k := range base.Values {
		if strings.HasSuffix(k, "p99_ns") {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var bad []string
	for _, k := range keys {
		b := base.Values[k]
		c, ok := cur.Values[k]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: missing from current report (baseline %.0f)", k, b))
			continue
		}
		if b > 0 && c > b*(1+auditRegressionTolerance) {
			bad = append(bad, fmt.Sprintf("%s: %.0f -> %.0f (+%.1f%%)", k, b, c, 100*(c/b-1)))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("bench: %s p99 regression beyond %.0f%%:\n  %s",
			name, 100*auditRegressionTolerance, strings.Join(bad, "\n  "))
	}
	return nil
}
