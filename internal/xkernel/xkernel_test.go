package xkernel

import (
	"bytes"
	"fmt"
	"testing"

	"fbufs/internal/aggregate"
	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

type rig struct {
	clk *simtime.Clock
	sys *vm.System
	reg *domain.Registry
	mgr *core.Manager
	env *Env
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), 8192, vm.ClockSink{Clock: clk})
	reg := domain.NewRegistry(sys)
	mgr := core.NewManager(sys, reg)
	mgr.EmptyLeafInit = aggregate.EmptyLeafImage
	env := NewEnv(sys, mgr, reg)
	return &rig{clk: clk, sys: sys, reg: reg, mgr: mgr, env: env}
}

// capture is a bottom layer recording pushed messages.
type capture struct {
	Base
	dom  *domain.Domain
	data [][]byte
}

func newCapture(name string, d *domain.Domain) *capture {
	return &capture{Base: NewBase(name, d), dom: d}
}

func (c *capture) Push(m *aggregate.Msg) error {
	b, err := m.ReadAll(c.dom)
	if err != nil {
		return err
	}
	c.data = append(c.data, b)
	return m.Free(c.dom)
}

func (c *capture) Deliver(m *aggregate.Msg) error { return fmt.Errorf("capture is a bottom layer") }

// source is a top layer recording delivered messages.
type source struct {
	Base
	dom  *domain.Domain
	data [][]byte
}

func newSource(name string, d *domain.Domain) *source {
	return &source{Base: NewBase(name, d), dom: d}
}

func (s *source) Push(m *aggregate.Msg) error { return fmt.Errorf("source is a top layer") }
func (s *source) Deliver(m *aggregate.Msg) error {
	b, err := m.ReadAll(s.dom)
	if err != nil {
		return err
	}
	s.data = append(s.data, b)
	return m.Free(s.dom)
}

func (r *rig) ctxFor(t *testing.T, doms ...*domain.Domain) *aggregate.Ctx {
	t.Helper()
	p, err := r.mgr.NewPath("t", core.CachedVolatile(), 2, doms...)
	if err != nil {
		t.Fatal(err)
	}
	c, err := aggregate.NewCtx(r.mgr, p, true)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConnectSameDomainIsDirect(t *testing.T) {
	r := newRig(t)
	d := r.reg.New("mono")
	r.mgr.AttachDomain(d)
	top := newSource("top", d)
	bot := newCapture("bot", d)
	Connect(r.env, top, bot)
	if top.Below() != Layer(bot) || bot.Above() != Layer(top) {
		t.Fatal("direct wiring expected")
	}
	ctx := r.ctxFor(t, d)
	m, _ := ctx.NewData([]byte("direct"))
	start := r.clk.Now()
	if err := top.PushBelow(m); err != nil {
		t.Fatal(err)
	}
	if r.env.Router.Calls != 0 {
		t.Fatal("same-domain push used IPC")
	}
	if len(bot.data) != 1 || string(bot.data[0]) != "direct" {
		t.Fatalf("captured %q", bot.data)
	}
	_ = start
}

func TestConnectCrossDomainProxies(t *testing.T) {
	r := newRig(t)
	up := r.reg.New("upper")
	lo := r.reg.New("lower")
	for _, d := range []*domain.Domain{up, lo} {
		r.mgr.AttachDomain(d)
	}
	top := newSource("top", up)
	bot := newCapture("bot", lo)
	Connect(r.env, top, bot)

	payload := make([]byte, 10000)
	for i := range payload {
		payload[i] = byte(i * 5)
	}
	ctx := r.ctxFor(t, up, lo)
	m, err := ctx.NewData(payload)
	if err != nil {
		t.Fatal(err)
	}
	start := r.clk.Now()
	if err := top.PushBelow(m); err != nil {
		t.Fatal(err)
	}
	if r.env.Router.Calls != 1 {
		t.Fatalf("IPC calls %d", r.env.Router.Calls)
	}
	if elapsed := r.clk.Now() - start; elapsed < r.sys.Cost.IPCLatency {
		t.Fatalf("crossing charged %v", elapsed)
	}
	if len(bot.data) != 1 || !bytes.Equal(bot.data[0], payload) {
		t.Fatal("payload corrupted crossing domains")
	}
	// Both sides freed their references.
	if err := r.mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeliverCrossesUpward(t *testing.T) {
	r := newRig(t)
	up := r.reg.New("upper")
	lo := r.reg.New("lower")
	top := newSource("top", up)
	bot := newCapture("bot", lo)
	Connect(r.env, top, bot)
	ctx := r.ctxFor(t, lo, up)
	m, _ := ctx.NewData([]byte("incoming pdu"))
	if err := bot.DeliverAbove(m); err != nil {
		t.Fatal(err)
	}
	if len(top.data) != 1 || string(top.data[0]) != "incoming pdu" {
		t.Fatalf("delivered %q", top.data)
	}
}

func TestAttachBuildsUpwardProxy(t *testing.T) {
	r := newRig(t)
	up := r.reg.New("upper")
	lo := r.reg.New("lower")
	r.mgr.AttachDomain(lo)
	top := newSource("top", up)
	handle := Attach(r.env, top, lo)
	if handle == Layer(top) {
		t.Fatal("cross-domain Attach returned the layer itself")
	}
	ctx := r.ctxFor(t, lo, up)
	m, _ := ctx.NewData([]byte("demuxed"))
	if err := handle.Deliver(m); err != nil {
		t.Fatal(err)
	}
	if len(top.data) != 1 || string(top.data[0]) != "demuxed" {
		t.Fatalf("delivered %q", top.data)
	}
	// Same-domain Attach is the identity.
	if Attach(r.env, top, up) != Layer(top) {
		t.Fatal("same-domain Attach should return the layer")
	}
}

func TestIntegratedCrossingSendsSingleDescriptor(t *testing.T) {
	r := newRig(t)
	up := r.reg.New("upper")
	lo := r.reg.New("lower")
	top := newSource("top", up)
	bot := newCapture("bot", lo)
	Connect(r.env, top, bot)
	ctx := r.ctxFor(t, up, lo) // integrated
	// Multi-fbuf message (2-page fbufs, 20KB data = 3 data fbufs).
	m, err := ctx.NewData(make([]byte, 20000))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFbufs() != 1 {
		t.Fatalf("integrated descriptor count %d", m.NumFbufs())
	}
	if err := top.PushBelow(m); err != nil {
		t.Fatal(err)
	}
}

func TestBaseUnwired(t *testing.T) {
	b := NewBase("lonely", nil)
	if err := b.PushBelow(nil); err == nil {
		t.Fatal("push with no below")
	}
	if err := b.DeliverAbove(nil); err == nil {
		t.Fatal("deliver with no above")
	}
	if b.Name() != "lonely" {
		t.Fatal("name")
	}
}

func TestProbeExclusiveAccounting(t *testing.T) {
	r := newRig(t)
	d := r.reg.New("mono")
	r.mgr.AttachDomain(d)

	// A three-layer chain where each layer burns a known cost before
	// forwarding: exclusive attribution must recover exactly those costs.
	burn := func(us int64) { r.sys.Sink().Charge(simtime.US(us)) }
	top := &costLayer{Base: NewBase("top", d), burnPush: func() { burn(10) }}
	mid := &costLayer{Base: NewBase("mid", d), burnPush: func() { burn(20) }}
	bot := &costLayer{Base: NewBase("bot", d), burnPush: func() { burn(40) }}

	ps := NewProbeSet(func() simtime.Time { return r.clk.Now() })
	pt, pm, pb := ps.Wrap(top), ps.Wrap(mid), ps.Wrap(bot)
	Connect(r.env, pt, pm)
	Connect(r.env, pm, pb)

	ctx := r.ctxFor(t, d)
	m, _ := ctx.NewData([]byte("x"))
	if err := pt.Push(m); err != nil {
		t.Fatal(err)
	}
	if pt.PushTime != simtime.US(10) || pm.PushTime != simtime.US(20) || pb.PushTime != simtime.US(40) {
		t.Fatalf("exclusive push times %v/%v/%v, want 10/20/40us",
			pt.PushTime, pm.PushTime, pb.PushTime)
	}
	if pt.Pushes != 1 || pm.Pushes != 1 || pb.Pushes != 1 {
		t.Fatal("push counts wrong")
	}

	var buf bytes.Buffer
	if err := ps.Report(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"top@mono", "mid@mono", "bot@mono", "40.000us"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("report missing %q:\n%s", want, buf.String())
		}
	}
	ps.Reset()
	if pt.PushTime != 0 || pt.Pushes != 0 {
		t.Fatal("reset did not clear")
	}
}

// costLayer burns simulated time then forwards (or frees at the bottom).
type costLayer struct {
	Base
	burnPush func()
}

func (c *costLayer) Push(m *aggregate.Msg) error {
	c.burnPush()
	if c.Below() == nil {
		return m.Free(c.Dom())
	}
	return c.PushBelow(m)
}

func (c *costLayer) Deliver(m *aggregate.Msg) error {
	if c.Above() == nil {
		return m.Free(c.Dom())
	}
	return c.DeliverAbove(m)
}

func TestProbeDirectionChange(t *testing.T) {
	// A bottom layer whose Push turns the message around (loopback
	// style): the child's Deliver time must be subtracted from the
	// parent's *Push* figure, never producing negatives.
	r := newRig(t)
	d := r.reg.New("mono")
	r.mgr.AttachDomain(d)
	sinkCost := func() { r.sys.Sink().Charge(simtime.US(30)) }
	sink := &costLayer{Base: NewBase("sink", d), burnPush: nil}
	turn := &turnLayer{Base: NewBase("turn", d), cost: func() { r.sys.Sink().Charge(simtime.US(5)) }}
	_ = sinkCost

	ps := NewProbeSet(func() simtime.Time { return r.clk.Now() })
	psink, pturn := ps.Wrap(sink), ps.Wrap(turn)
	Connect(r.env, psink, pturn)

	ctx := r.ctxFor(t, d)
	m, _ := ctx.NewData([]byte("y"))
	if err := pturn.Push(m); err != nil {
		t.Fatal(err)
	}
	if pturn.PushTime != simtime.US(5) {
		t.Fatalf("turn push %v, want 5us", pturn.PushTime)
	}
	if pturn.DeliverTime < 0 || psink.DeliverTime < 0 {
		t.Fatalf("negative exclusive time: turn=%v sink=%v",
			pturn.DeliverTime, psink.DeliverTime)
	}
}

// turnLayer charges then bounces the message back up, like the loopback.
type turnLayer struct {
	Base
	cost func()
}

func (l *turnLayer) Push(m *aggregate.Msg) error {
	l.cost()
	return l.DeliverAbove(m)
}
func (l *turnLayer) Deliver(m *aggregate.Msg) error { return m.Free(l.Dom()) }
