// Package xkernel implements a simplified x-kernel protocol graph — the
// framework the paper's evaluation platform used to compose device drivers,
// network protocols, and application code into a stack that may span
// multiple protection domains.
//
// Layers expose a bidirectional interface: Push sends a message down toward
// the device, Deliver hands an incoming message up toward the application.
// Connect links two layers; when they live in different protection domains
// it transparently inserts a proxy pair ("proxy objects are used in the
// x-kernel to forward cross-domain invocations using Mach IPC"). The proxy
// transfers the message's fbufs to the peer domain and performs an IPC
// call; with integrated buffer management only a single DAG-root reference
// crosses the boundary.
package xkernel

import (
	"fmt"

	"fbufs/internal/aggregate"
	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/ipc"
	"fbufs/internal/vm"
)

// Layer is one protocol, driver, or application endpoint in the graph.
type Layer interface {
	// Name identifies the layer in diagnostics.
	Name() string
	// Dom is the protection domain the layer's code runs in.
	Dom() *domain.Domain
	// Push sends a message downward. The callee takes responsibility for
	// the message (the caller must not use it afterwards).
	Push(m *aggregate.Msg) error
	// Deliver hands an incoming message upward; same ownership rule.
	Deliver(m *aggregate.Msg) error
	// SetAbove / SetBelow wire the graph; Connect calls them.
	SetAbove(Layer)
	SetBelow(Layer)
}

// Env bundles the per-host facilities layers need.
type Env struct {
	Sys    *vm.System
	Mgr    *core.Manager
	Reg    *domain.Registry
	Router *ipc.Router
}

// NewEnv wires an Env and registers the fbuf manager's deallocation-notice
// hook on the IPC router (notices ride on RPC replies, section 3.3) plus
// the ring-mode notice source/sink (notices ride coalesced completion
// entries when a domain pair is ring-attached).
func NewEnv(sys *vm.System, mgr *core.Manager, reg *domain.Registry) *Env {
	e := &Env{Sys: sys, Mgr: mgr, Reg: reg, Router: ipc.NewRouter(sys)}
	e.Router.OnReply(mgr.DeliverNotices)
	e.Router.SetNoticeHooks(
		func(holder, owner *domain.Domain) (interface{}, int) {
			b := mgr.CollectNotices(holder, owner)
			if len(b) == 0 {
				return nil, 0
			}
			return b, len(b)
		},
		func(batch interface{}) {
			if fs, ok := batch.([]*core.Fbuf); ok {
				mgr.RetireNotices(fs)
			}
		},
	)
	return e
}

// RingCapable is implemented by layers that opt their cross-domain
// invocations into the shared-memory ring data plane. Connect and Attach
// consult it: when either endpoint of a cross-domain link is eligible (and
// the router has rings enabled), the domain pair is ring-attached in both
// directions and every call between those domains rides the rings.
type RingCapable interface {
	RingEligible() bool
}

func ringEligible(l Layer) bool {
	rc, ok := l.(RingCapable)
	return ok && rc.RingEligible()
}

// attachRings maps the ring pair for both directions of a cross-domain
// link. No-op when the router is not in ring mode.
func attachRings(env *Env, a, b *domain.Domain) {
	env.Router.AttachRing(a, b)
	env.Router.AttachRing(b, a)
}

// Base provides the linking boilerplate layers embed.
type Base struct {
	name  string
	dom   *domain.Domain
	above Layer
	below Layer
}

// NewBase constructs the embeddable core of a layer.
func NewBase(name string, dom *domain.Domain) Base { return Base{name: name, dom: dom} }

// Name returns the layer name.
func (b *Base) Name() string { return b.name }

// Dom returns the layer's domain.
func (b *Base) Dom() *domain.Domain { return b.dom }

// SetAbove records the upstream neighbour.
func (b *Base) SetAbove(l Layer) { b.above = l }

// SetBelow records the downstream neighbour.
func (b *Base) SetBelow(l Layer) { b.below = l }

// Above returns the upstream neighbour.
func (b *Base) Above() Layer { return b.above }

// Below returns the downstream neighbour.
func (b *Base) Below() Layer { return b.below }

// PushBelow forwards a message to the layer below.
func (b *Base) PushBelow(m *aggregate.Msg) error {
	if b.below == nil {
		return fmt.Errorf("xkernel: %s has no layer below", b.name)
	}
	return b.below.Push(m)
}

// DeliverAbove forwards a message to the layer above.
func (b *Base) DeliverAbove(m *aggregate.Msg) error {
	if b.above == nil {
		return fmt.Errorf("xkernel: %s has no layer above", b.name)
	}
	return b.above.Deliver(m)
}

// Connect links upper above lower, inserting a cross-domain proxy pair when
// their domains differ.
func Connect(env *Env, upper, lower Layer) {
	if upper.Dom() == lower.Dom() {
		upper.SetBelow(lower)
		lower.SetAbove(upper)
		return
	}
	p := newProxy(env, upper, lower, lower.Dom())
	upper.SetBelow(p.upperStub)
	lower.SetAbove(p.lowerStub)
	if ringEligible(upper) || ringEligible(lower) {
		attachRings(env, upper.Dom(), lower.Dom())
	}
}

// Attach returns a delivery handle for upper usable from code running in
// lowerDom, inserting an upward-only proxy when the domains differ. It is
// how demultiplexing layers (UDP's port table, the driver's VCI table)
// route to multiple upper layers without re-wiring their default
// neighbours.
func Attach(env *Env, upper Layer, lowerDom *domain.Domain) Layer {
	if upper.Dom() == lowerDom {
		return upper
	}
	p := newProxy(env, upper, nil, lowerDom)
	if ringEligible(upper) {
		attachRings(env, upper.Dom(), lowerDom)
	}
	return p.lowerStub
}

// proxy forwards invocations between two domains, moving message buffers
// with the fbuf facility and control with IPC.
type proxy struct {
	env          *Env
	upper, lower Layer
	downPort     ipc.PortID // owned by lower's domain; upper calls it
	upPort       ipc.PortID // owned by upper's domain; lower calls it
	upperStub    *stub      // lives in upper's domain, acts as its "below"
	lowerStub    *stub      // lives in lower's domain, acts as its "above"
}

func newProxy(env *Env, upper, lower Layer, lowerDom *domain.Domain) *proxy {
	p := &proxy{env: env, upper: upper, lower: lower}
	if lower != nil {
		p.downPort = env.Router.Register(lowerDom, func(from *domain.Domain, msg *ipc.Message) (*ipc.Message, error) {
			m, err := p.receive(msg, lowerDom)
			if err != nil {
				return nil, err
			}
			return nil, lower.Push(m)
		})
		p.upperStub = &stub{p: p, dom: upper.Dom(), peerDom: lowerDom, port: p.downPort, name: lower.Name() + "-proxy"}
	}
	p.upPort = env.Router.Register(upper.Dom(), func(from *domain.Domain, msg *ipc.Message) (*ipc.Message, error) {
		m, err := p.receive(msg, upper.Dom())
		if err != nil {
			return nil, err
		}
		return nil, upper.Deliver(m)
	})
	p.lowerStub = &stub{p: p, dom: lowerDom, peerDom: upper.Dom(), port: p.upPort, name: upper.Name() + "-proxy"}
	return p
}

// wire is the Go-level representation of what crosses the boundary: the
// DAG root for integrated messages, or the message view for private ones
// (whose fbuf list was marshalled as IPC descriptors).
type wire struct {
	integrated bool
	rootVA     vm.VA
	m          *aggregate.Msg
}

// send transfers the message's buffers to the peer domain, performs the
// IPC, and releases the sender's references.
func (p *proxy) send(m *aggregate.Msg, from, to *domain.Domain, port ipc.PortID, op string) error {
	if err := m.Transfer(from, to); err != nil {
		return fmt.Errorf("xkernel: proxy transfer: %w", err)
	}
	im := &ipc.Message{
		Op:          op,
		Descriptors: m.NumFbufs(),
		Body:        wire{integrated: m.Integrated(), rootVA: m.RootVA(), m: m},
	}
	if _, err := p.env.Router.Call(from, port, im); err != nil {
		return err
	}
	return m.Free(from)
}

// receive materializes the peer's view of the message. Integrated messages
// are reconstructed from the root reference with full validation; private
// messages are rebuilt from the marshalled fbuf list (step 3c of the
// baseline transfer).
func (p *proxy) receive(im *ipc.Message, at *domain.Domain) (*aggregate.Msg, error) {
	w, ok := im.Body.(wire)
	if !ok {
		return nil, fmt.Errorf("xkernel: malformed proxy message %q", im.Op)
	}
	if w.integrated {
		return aggregate.Open(p.env.Mgr, at, w.rootVA)
	}
	return w.m.ViewFor(at)
}

// stub is the Layer a proxy presents inside one domain.
type stub struct {
	p       *proxy
	dom     *domain.Domain
	peerDom *domain.Domain
	port    ipc.PortID
	name    string
}

func (s *stub) Name() string        { return s.name }
func (s *stub) Dom() *domain.Domain { return s.dom }
func (s *stub) SetAbove(Layer)      {}
func (s *stub) SetBelow(Layer)      {}

// Push crosses downward into the peer domain.
func (s *stub) Push(m *aggregate.Msg) error {
	return s.p.send(m, s.dom, s.peerDom, s.port, "push")
}

// Deliver crosses upward into the peer domain.
func (s *stub) Deliver(m *aggregate.Msg) error {
	return s.p.send(m, s.dom, s.peerDom, s.port, "deliver")
}
