package xkernel

import (
	"fmt"
	"io"
	"sort"

	"fbufs/internal/aggregate"
	"fbufs/internal/domain"
	"fbufs/internal/simtime"
)

// Probe wraps a Layer and records the simulated time spent beneath each
// invocation — the instrumentation cmd/fbufsim uses to print per-layer
// cost breakdowns. Because a layer's Push typically calls the next layer
// down synchronously, a probe's time is *inclusive* of everything below
// it; Report subtracts nested probe time to show exclusive costs.
//
// Probes are transparent to Connect: wiring a probe wires the wrapped
// layer, so graphs can be built from probes exactly as from bare layers.
type Probe struct {
	inner Layer
	now   func() simtime.Time

	// Inclusive accounting.
	PushTime, DeliverTime simtime.Duration
	Pushes, Delivers      uint64

	registry *ProbeSet
}

// ProbeSet instruments a whole graph and renders breakdowns.
type ProbeSet struct {
	now    func() simtime.Time
	probes []*Probe
	// stack tracks the probe call frames (probe + direction) so nested
	// time can be attributed exclusively (single-threaded simulation).
	stack []probeFrame
}

type probeFrame struct {
	p    *Probe
	push bool
}

// NewProbeSet creates an instrumentation context over a simulated clock.
func NewProbeSet(now func() simtime.Time) *ProbeSet {
	return &ProbeSet{now: now}
}

// Wrap instruments a layer. Use the returned Probe wherever the layer
// would be used (Connect, Bind, SetAbove/SetBelow).
func (ps *ProbeSet) Wrap(l Layer) *Probe {
	p := &Probe{inner: l, now: ps.now, registry: ps}
	ps.probes = append(ps.probes, p)
	return p
}

// Name returns the wrapped layer's name.
func (p *Probe) Name() string { return p.inner.Name() }

// Dom returns the wrapped layer's domain.
func (p *Probe) Dom() *domain.Domain { return p.inner.Dom() }

// SetAbove wires the wrapped layer.
func (p *Probe) SetAbove(l Layer) { p.inner.SetAbove(l) }

// SetBelow wires the wrapped layer.
func (p *Probe) SetBelow(l Layer) { p.inner.SetBelow(l) }

// enter/exit add elapsed time to this probe and *remove* it from the
// enclosing probe's accumulator (for the direction of the *parent's* own
// call), so every probe ends up with exclusive time.
func (p *Probe) enter(push bool) {
	p.registry.stack = append(p.registry.stack, probeFrame{p: p, push: push})
}

func (p *Probe) exit(elapsed simtime.Duration, push bool) {
	st := p.registry.stack
	p.registry.stack = st[:len(st)-1]
	if push {
		p.PushTime += elapsed
	} else {
		p.DeliverTime += elapsed
	}
	// Subtract from the parent so its figure becomes exclusive. The
	// parent's accumulator is chosen by the direction of the parent's own
	// in-progress call (a loopback Push invokes IP's Deliver; the
	// subtraction must land in the loopback's Push figure).
	if len(p.registry.stack) > 0 {
		parent := p.registry.stack[len(p.registry.stack)-1]
		if parent.push {
			parent.p.PushTime -= elapsed
		} else {
			parent.p.DeliverTime -= elapsed
		}
	}
}

// Push forwards downward, timing the wrapped layer.
func (p *Probe) Push(m *aggregate.Msg) error {
	p.Pushes++
	p.enter(true)
	t0 := p.now()
	err := p.inner.Push(m)
	p.exit(p.now()-t0, true)
	return err
}

// Deliver forwards upward, timing the wrapped layer.
func (p *Probe) Deliver(m *aggregate.Msg) error {
	p.Delivers++
	p.enter(false)
	t0 := p.now()
	err := p.inner.Deliver(m)
	p.exit(p.now()-t0, false)
	return err
}

// Reset clears accumulated figures (e.g. after warm-up traffic).
func (ps *ProbeSet) Reset() {
	for _, p := range ps.probes {
		p.PushTime, p.DeliverTime = 0, 0
		p.Pushes, p.Delivers = 0, 0
	}
}

// Report writes the per-layer exclusive cost table, most expensive first.
func (ps *ProbeSet) Report(w io.Writer) error {
	type row struct {
		name  string
		total simtime.Duration
		p     *Probe
	}
	rows := make([]row, 0, len(ps.probes))
	for _, p := range ps.probes {
		rows = append(rows, row{p.Name() + "@" + p.Dom().Name, p.PushTime + p.DeliverTime, p})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].total > rows[j].total })
	if _, err := fmt.Fprintf(w, "  %-24s %12s %12s %8s %8s\n",
		"layer", "push", "deliver", "pushes", "delivers"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "  %-24s %12v %12v %8d %8d\n",
			r.name, r.p.PushTime, r.p.DeliverTime, r.p.Pushes, r.p.Delivers); err != nil {
			return err
		}
	}
	return nil
}
