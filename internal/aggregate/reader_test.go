package aggregate

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// readerMsg builds a multi-fragment message: three data chunks joined, so
// fragment boundaries land at 5000 and 11000.
func readerMsg(t *testing.T, r *rig, c *Ctx) (*Msg, []byte) {
	t.Helper()
	a, err := c.NewData(pattern(5000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.NewData(pattern(6000))
	if err != nil {
		t.Fatal(err)
	}
	ab, err := c.Join(a, b)
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.NewData(pattern(3000))
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Join(ab, d)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append(append([]byte(nil), pattern(5000)...), pattern(6000)...), pattern(3000)...)
	return m, want
}

func TestReaderSequentialUnits(t *testing.T) {
	bothModes(t, func(t *testing.T, r *rig, c *Ctx) {
		m, want := readerMsg(t, r, c)
		rd := m.NewReader(r.src)
		var got []byte
		const unit = 700
		for rd.Remaining() >= unit {
			b, err := rd.Next(unit)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, b...)
		}
		tail, err := rd.Next(rd.Remaining())
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tail...)
		if !bytes.Equal(got, want) {
			t.Fatal("reader content mismatch")
		}
		if rd.Remaining() != 0 {
			t.Fatalf("remaining %d", rd.Remaining())
		}
		m.Free(r.src)
	})
}

func TestReaderCopiesOnlyAtBoundaries(t *testing.T) {
	r := newRig(t)
	c := r.ctx(t, false, 2)
	m, _ := readerMsg(t, r, c) // fragments: 5000 | 6000 | 3000 bytes
	rd := m.NewReader(r.src)
	// 1000-byte units: boundaries at 5000 and 11000 are unit-aligned, so
	// no unit crosses a fragment -> zero copies.
	for rd.Remaining() > 0 {
		if _, err := rd.Next(1000); err != nil {
			t.Fatal(err)
		}
	}
	if rd.Copies != 0 {
		t.Fatalf("aligned units copied %d times", rd.Copies)
	}

	// 1500-byte units: crossings at the 5000 and 11000 boundaries.
	rd2 := m.NewReader(r.src)
	crossings := 0
	pos := 0
	for rd2.Remaining() >= 1500 {
		if _, err := rd2.Next(1500); err != nil {
			t.Fatal(err)
		}
		if (pos < 5000 && pos+1500 > 5000) || (pos < 11000 && pos+1500 > 11000) {
			crossings++
		}
		pos += 1500
	}
	if rd2.Copies != uint64(crossings) {
		t.Fatalf("copies %d, want %d boundary crossings", rd2.Copies, crossings)
	}
	if rd2.CopiedBytes != uint64(crossings*1500) {
		t.Fatalf("copied bytes %d", rd2.CopiedBytes)
	}
}

func TestReaderChargesCopyCostOnlyWhenGathering(t *testing.T) {
	r := newRig(t)
	c := r.ctx(t, false, 2)
	m, _ := readerMsg(t, r, c)

	// Warm all pages so only copy costs differ.
	if err := m.Touch(r.src); err != nil {
		t.Fatal(err)
	}
	rd := m.NewReader(r.src)
	start := r.clk.Now()
	for rd.Remaining() >= 1000 {
		if _, err := rd.Next(1000); err != nil {
			t.Fatal(err)
		}
	}
	aligned := r.clk.Now() - start

	rd2 := m.NewReader(r.src)
	start = r.clk.Now()
	for rd2.Remaining() >= 1500 {
		if _, err := rd2.Next(1500); err != nil {
			t.Fatal(err)
		}
	}
	crossing := r.clk.Now() - start
	if crossing <= aligned {
		t.Fatalf("boundary-crossing read (%v) not dearer than aligned read (%v)", crossing, aligned)
	}
}

func TestReaderEOF(t *testing.T) {
	r := newRig(t)
	c := r.ctx(t, false, 2)
	m, _ := c.NewData(pattern(100))
	rd := m.NewReader(r.src)
	if _, err := rd.Next(101); !errors.Is(err, io.EOF) {
		t.Fatalf("oversized unit: %v", err)
	}
	if _, err := rd.Next(-1); !errors.Is(err, ErrRange) {
		t.Fatalf("negative unit: %v", err)
	}
	if b, err := rd.Next(0); err != nil || b != nil {
		t.Fatalf("zero unit: %v %v", b, err)
	}
	if _, err := rd.Next(100); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(1); !errors.Is(err, io.EOF) {
		t.Fatalf("after drain: %v", err)
	}
}

func TestReaderRespectsProtection(t *testing.T) {
	// A reader in a domain without rights reads absence-of-data (volatile)
	// rather than leaking bytes.
	r := newRig(t)
	c := r.ctx(t, true, 2)
	m, _ := c.NewData([]byte("secret bytes here"))
	// dst never received the message.
	rd := m.NewReader(r.dst)
	b, err := rd.Next(6)
	if err != nil {
		t.Fatalf("volatile read should complete: %v", err)
	}
	for _, bb := range b {
		if bb != 0 {
			t.Fatalf("leaked %q", b)
		}
	}
}

func TestReaderAfterConsume(t *testing.T) {
	r := newRig(t)
	c := r.ctx(t, false, 2)
	m, _ := c.NewData(pattern(100))
	rd := m.NewReader(r.src)
	m.Free(r.src)
	if _, err := rd.Next(10); !errors.Is(err, ErrConsumed) {
		t.Fatalf("read after free: %v", err)
	}
}

func TestReaderLineOrientedUse(t *testing.T) {
	// The paper's motivating example: retrieving "a line of text" at a
	// time from non-contiguous storage.
	r := newRig(t)
	c := r.ctx(t, false, 1) // 1-page fbufs: many fragments
	one := []byte("the quick brown fox jumps over the lazy dog\n")
	unit := len(one)
	text := bytes.Repeat(one, 400)
	m, err := c.NewData(text)
	if err != nil {
		t.Fatal(err)
	}
	rd := m.NewReader(r.src)
	var lines int
	for rd.Remaining() >= unit {
		line, err := rd.Next(unit)
		if err != nil {
			t.Fatal(err)
		}
		if line[unit-1] != '\n' {
			t.Fatalf("line %d misaligned: %q", lines, line)
		}
		lines++
	}
	if lines != 400 {
		t.Fatalf("%d lines", lines)
	}
	// Lines not crossing 4096-byte fragment boundaries were zero-copy.
	if rd.Copies >= uint64(lines)/2 {
		t.Fatalf("too many copies: %d of %d lines", rd.Copies, lines)
	}
}
