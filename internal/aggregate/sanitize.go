package aggregate

import (
	"encoding/binary"
	"fmt"

	"fbufs/internal/core"
	"fbufs/internal/machine"
	"fbufs/internal/vm"
)

// fbsan hook: when the core sanitizer is enabled, every Msg build
// re-validates the aggregate invariants — segment ranges inside their
// fbufs, and (integrated mode) the just-written DAG's range, alignment,
// cycle, and node-count rules. Validation reads node bytes straight from
// physical frames, charging zero simulated time, so enabling fbsan never
// perturbs the run it watches.

// validateMsg checks a freshly built message. Returned errors are
// reported through the sanitizer's violation handler by the caller.
func (c *Ctx) validateMsg(m *Msg) error {
	total := 0
	for i, s := range m.segs {
		if s.N < 0 {
			return fmt.Errorf("seg %d has negative length %d", i, s.N)
		}
		total += s.N
		if s.F == nil {
			continue // volatile absence-of-data: legitimately unreachable
		}
		if s.F.State() != core.StateLive {
			return fmt.Errorf("seg %d references %s fbuf %#x", i, s.F.State(), uint64(s.F.Base))
		}
		if s.N > 0 && (!s.F.Contains(s.VA) || !s.F.Contains(s.VA+vm.VA(s.N-1))) {
			return fmt.Errorf("seg %d [%#x,+%d) outside fbuf %#x of %d bytes",
				i, uint64(s.VA), s.N, uint64(s.F.Base), s.F.Size())
		}
	}
	if total != m.length {
		return fmt.Errorf("segment lengths sum to %d but message length is %d", total, m.length)
	}
	if m.integrated {
		v := &rawWalker{mgr: c.Mgr, onPath: map[vm.VA]bool{}}
		if err := v.walk(m.rootVA); err != nil {
			return fmt.Errorf("built DAG invalid: %w", err)
		}
	}
	return nil
}

// rawWalker mirrors the receiver-side walker's range/alignment/cycle/
// count checks but reads node bytes from physical frames directly —
// no address-space access, no simulated cost, no permission dependence.
type rawWalker struct {
	mgr    *core.Manager
	onPath map[vm.VA]bool
	count  int
}

func (w *rawWalker) walk(va vm.VA) error {
	if !w.mgr.InRegion(va) {
		return fmt.Errorf("%w: node %#x", ErrBadPointer, uint64(va))
	}
	if va%nodeSize != 0 {
		return fmt.Errorf("%w: unaligned node %#x", ErrBadNode, uint64(va))
	}
	if w.onPath[va] {
		return fmt.Errorf("%w via node %#x", ErrCycle, uint64(va))
	}
	w.count++
	if w.count > maxNodes {
		return ErrTooLarge
	}
	w.onPath[va] = true
	defer delete(w.onPath, va)

	enc, ok := w.readNode(va)
	if !ok {
		return nil // unbacked page: reads as the empty leaf
	}
	kind := enc[0]
	n := int(binary.LittleEndian.Uint32(enc[4:]))
	a := vm.VA(binary.LittleEndian.Uint64(enc[8:]))
	b := vm.VA(binary.LittleEndian.Uint64(enc[16:]))
	switch kind {
	case kindEmpty:
		return nil
	case kindLeaf:
		if n == 0 {
			return nil
		}
		if n < 0 || n > machine.PageSize*core.DefaultChunkPages {
			return fmt.Errorf("%w: leaf length %d", ErrBadNode, n)
		}
		if !w.mgr.InRegion(a) || !w.mgr.InRegion(a+vm.VA(n-1)) {
			return fmt.Errorf("%w: leaf data [%#x,+%d)", ErrBadPointer, uint64(a), n)
		}
		return nil
	case kindPair:
		if err := w.walk(a); err != nil {
			return err
		}
		return w.walk(b)
	default:
		return fmt.Errorf("%w: kind %d at %#x", ErrBadNode, kind, uint64(va))
	}
}

// readNode fetches one 32-byte node from the frame backing va (nodes are
// 32-aligned and never cross a page boundary). Missing fbuf or
// unpopulated page reads as absent.
func (w *rawWalker) readNode(va vm.VA) ([nodeSize]byte, bool) {
	var enc [nodeSize]byte
	f := w.mgr.FbufAt(va)
	if f == nil {
		return enc, false
	}
	page := int(va-f.Base) / machine.PageSize
	fn := f.FrameAt(page)
	if fn < 0 {
		return enc, false
	}
	w.mgr.Sys.Mem.Read(fn, int(va-f.Base)%machine.PageSize, enc[:])
	return enc, true
}
