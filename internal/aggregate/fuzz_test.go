package aggregate

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

// newFuzzRig builds the same environment as newRig but without a
// *testing.T, so FuzzOpen's seed construction (which runs under
// *testing.F) can share it with the fuzz body.
func newFuzzRig() *rig {
	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), 8192, vm.ClockSink{Clock: clk})
	reg := domain.NewRegistry(sys)
	mgr := core.NewManager(sys, reg)
	mgr.EmptyLeafInit = EmptyLeafImage
	r := &rig{clk: clk, sys: sys, reg: reg, mgr: mgr}
	r.src = reg.New("src")
	r.dst = reg.New("dst")
	mgr.AttachDomain(r.src)
	mgr.AttachDomain(r.dst)
	return r
}

// fuzzFbuf allocates a populated two-page fbuf on a volatile cached path,
// stamps the raw image into it (device-style, bypassing the MMU exactly
// as a hostile or buggy sender could), and transfers it to the receiver.
func fuzzFbuf(r *rig, image []byte) (*core.Fbuf, error) {
	opts := core.CachedVolatile()
	opts.Populate = true
	p, err := r.mgr.NewPath("fuzz", opts, 2, r.src, r.dst)
	if err != nil {
		return nil, err
	}
	f, err := p.Alloc()
	if err != nil {
		return nil, err
	}
	n := len(image)
	if n > f.Size() {
		n = f.Size()
	}
	if n > 0 {
		if err := f.DMAWrite(0, image[:n]); err != nil {
			return nil, err
		}
	}
	if err := r.mgr.Transfer(f, r.src, r.dst); err != nil {
		return nil, err
	}
	return f, nil
}

// fuzzSeed is one (root selector, node image) seed input.
type fuzzSeed struct {
	name    string
	rootSel uint32
	image   []byte
}

// fuzzSeeds builds the canonical FuzzOpen seed corpus — one representative
// per walker verdict. The same inputs are checked into
// testdata/fuzz/FuzzOpen (regenerate with
// WRITE_FUZZ_CORPUS=1 go test -run TestWriteSeedCorpus ./internal/aggregate)
// so other fuzz drivers share them without re-deriving the encoding.
func fuzzSeeds() ([]fuzzSeed, error) {
	base, err := func() (vm.VA, error) {
		r := newFuzzRig()
		fb, err := fuzzFbuf(r, nil)
		if err != nil {
			return 0, err
		}
		return fb.Base, nil
	}()
	if err != nil {
		return nil, err
	}

	leaf := func(img []byte, off int, dataVA vm.VA, n int) {
		encodeLeaf(img[off:off+nodeSize], dataVA, n)
	}
	pair := func(img []byte, off int, left, right vm.VA, total int) {
		encodePair(img[off:off+nodeSize], left, right, total)
	}

	empty := make([]byte, nodeSize) // all zeros decodes as the empty leaf

	valid := make([]byte, 256) // pair(leaf, pair(leaf, leaf)) chain
	leaf(valid, 32, base+512, 64)
	leaf(valid, 96, base+1024, 128)
	leaf(valid, 128, base+2048, 32)
	pair(valid, 64, base+96, base+128, 160)
	pair(valid, 0, base+32, base+64, 224)

	cyclic := make([]byte, 64) // root points back at itself
	pair(cyclic, 0, base, base+32, 0)

	wild := make([]byte, 64) // leaf data outside the fbuf region
	leaf(wild, 0, vm.VA(0x10), 64)

	unaligned := make([]byte, 64) // child pointer not 32-byte aligned
	pair(unaligned, 0, base+5, base+32, 0)

	badkind := []byte{7, 0, 0, 0}

	hugeleaf := make([]byte, 64) // length far past any chunk
	leaf(hugeleaf, 0, base, 1<<30)

	return []fuzzSeed{
		{"empty", 0, empty},
		{"valid", 0, valid},
		{"cyclic", 0, cyclic},
		{"wild-pointer", 0, wild},
		{"unaligned-child", 0, unaligned},
		{"bad-kind", 0, badkind},
		{"huge-leaf", 0, hugeleaf},
		{"unaligned-root", 5, valid},
		{"second-page-root", machine.PageSize + 32, empty},
	}, nil
}

// FuzzOpen throws arbitrary node images at the receiver-side DAG walker.
// The section 3.2.4 contract under test: traversal of any byte pattern
// must terminate (range checks, cycle detection, node-count bound) and
// either reject the DAG with an error or yield a message whose segments
// are internally consistent and fully readable by the receiver.
func FuzzOpen(f *testing.F) {
	seeds, err := fuzzSeeds()
	if err != nil {
		f.Fatal(err)
	}
	for _, s := range seeds {
		f.Add(s.rootSel, s.image)
	}

	f.Fuzz(func(t *testing.T, rootSel uint32, image []byte) {
		r := newFuzzRig()
		fb, err := fuzzFbuf(r, image)
		if err != nil {
			t.Fatal(err)
		}
		rootVA := fb.Base + vm.VA(rootSel%uint32(fb.Size()))
		m, err := Open(r.mgr, r.dst, rootVA)
		if err != nil {
			return // rejected adversarial DAG: the defended outcome
		}
		// Accepted: the resulting message must be internally consistent.
		total := 0
		for i, s := range m.Segs() {
			if s.N < 0 {
				t.Fatalf("seg %d has negative length %d", i, s.N)
			}
			total += s.N
			if s.F != nil && s.N > 0 &&
				(!s.F.Contains(s.VA) || !s.F.Contains(s.VA+vm.VA(s.N-1))) {
				t.Fatalf("seg %d [%#x,+%d) escapes its fbuf", i, uint64(s.VA), s.N)
			}
		}
		if total != m.Len() {
			t.Fatalf("segment lengths sum to %d, Len() = %d", total, m.Len())
		}
		// Every accepted byte must be readable by the receiver — dangling
		// references appear as absence of data, never as a fault.
		data, err := m.ReadAll(r.dst)
		if err != nil {
			t.Fatalf("accepted DAG unreadable: %v", err)
		}
		if len(data) != m.Len() {
			t.Fatalf("ReadAll returned %d bytes, Len() = %d", len(data), m.Len())
		}
		if err := r.mgr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestWriteSeedCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/FuzzOpen in the Go fuzzing corpus-file format. It only
// writes when WRITE_FUZZ_CORPUS=1 is set; otherwise it verifies the
// checked-in files are present and in sync with fuzzSeeds().
func TestWriteSeedCorpus(t *testing.T) {
	seeds, err := fuzzSeeds()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzOpen")
	if os.Getenv("WRITE_FUZZ_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, s := range seeds {
			body := fmt.Sprintf("go test fuzz v1\nuint32(%d)\n[]byte(%q)\n", s.rootSel, s.image)
			if err := os.WriteFile(filepath.Join(dir, s.name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	for _, s := range seeds {
		data, err := os.ReadFile(filepath.Join(dir, s.name))
		if err != nil {
			t.Fatalf("seed corpus file missing (regenerate with WRITE_FUZZ_CORPUS=1): %v", err)
		}
		want := fmt.Sprintf("go test fuzz v1\nuint32(%d)\n[]byte(%q)\n", s.rootSel, s.image)
		if string(data) != want {
			t.Errorf("corpus file %s out of sync with fuzzSeeds(); regenerate with WRITE_FUZZ_CORPUS=1", s.name)
		}
	}
}
