package aggregate

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

type rig struct {
	clk *simtime.Clock
	sys *vm.System
	reg *domain.Registry
	mgr *core.Manager
	src *domain.Domain
	dst *domain.Domain
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), 8192, vm.ClockSink{Clock: clk})
	reg := domain.NewRegistry(sys)
	mgr := core.NewManager(sys, reg)
	mgr.EmptyLeafInit = EmptyLeafImage
	r := &rig{clk: clk, sys: sys, reg: reg, mgr: mgr}
	r.src = reg.New("src")
	r.dst = reg.New("dst")
	mgr.AttachDomain(r.src)
	mgr.AttachDomain(r.dst)
	return r
}

func (r *rig) ctx(t *testing.T, integrated bool, fbufPages int) *Ctx {
	t.Helper()
	p, err := r.mgr.NewPath("t", core.CachedVolatile(), fbufPages, r.src, r.dst)
	if err != nil {
		t.Fatal(err)
	}
	p.SetQuota(64)
	c, err := NewCtx(r.mgr, p, integrated)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + 7)
	}
	return b
}

func bothModes(t *testing.T, fn func(t *testing.T, r *rig, c *Ctx)) {
	for _, mode := range []struct {
		name       string
		integrated bool
	}{{"private", false}, {"integrated", true}} {
		t.Run(mode.name, func(t *testing.T) {
			r := newRig(t)
			fn(t, r, r.ctx(t, mode.integrated, 2))
		})
	}
}

func TestNewDataRoundTrip(t *testing.T) {
	bothModes(t, func(t *testing.T, r *rig, c *Ctx) {
		for _, n := range []int{0, 1, 100, 8192, 8192*3 + 17} {
			data := pattern(n)
			m, err := c.NewData(data)
			if err != nil {
				t.Fatal(err)
			}
			if m.Len() != n {
				t.Fatalf("len %d, want %d", m.Len(), n)
			}
			got, err := m.ReadAll(r.src)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("n=%d content mismatch", n)
			}
			if err := m.Free(r.src); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.mgr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestJoinSplitClip(t *testing.T) {
	bothModes(t, func(t *testing.T, r *rig, c *Ctx) {
		a, _ := c.NewData(pattern(5000))
		b, _ := c.NewData([]byte("tail-data"))
		joined, err := c.Join(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := append(pattern(5000), []byte("tail-data")...)
		got, _ := joined.ReadAll(r.src)
		if !bytes.Equal(got, want) {
			t.Fatal("join content mismatch")
		}
		// Consumed operands reject further use.
		if _, err := a.ReadAll(r.src); !errors.Is(err, ErrConsumed) {
			t.Fatalf("consumed read: %v", err)
		}

		left, right, err := c.Split(joined, 4097)
		if err != nil {
			t.Fatal(err)
		}
		gl, _ := left.ReadAll(r.src)
		gr, _ := right.ReadAll(r.src)
		if !bytes.Equal(gl, want[:4097]) || !bytes.Equal(gr, want[4097:]) {
			t.Fatal("split content mismatch")
		}

		clipped, err := c.ClipHead(right, 10)
		if err != nil {
			t.Fatal(err)
		}
		gc, _ := clipped.ReadAll(r.src)
		if !bytes.Equal(gc, want[4107:]) {
			t.Fatal("cliphead mismatch")
		}
		clipped, err = c.ClipTail(clipped, 9)
		if err != nil {
			t.Fatal(err)
		}
		gc, _ = clipped.ReadAll(r.src)
		if !bytes.Equal(gc, want[4107:len(want)-9]) {
			t.Fatal("cliptail mismatch")
		}

		left.Free(r.src)
		clipped.Free(r.src)
		if err := r.mgr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPushPopHeader(t *testing.T) {
	bothModes(t, func(t *testing.T, r *rig, c *Ctx) {
		body, _ := c.NewData(pattern(3000))
		hdr := []byte{0x45, 0x00, 0x0B, 0xB8}
		m, err := c.Push(body, hdr)
		if err != nil {
			t.Fatal(err)
		}
		if m.Len() != 3004 {
			t.Fatalf("len %d", m.Len())
		}
		got, rest, err := c.Pop(m, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, hdr) {
			t.Fatalf("popped header %x", got)
		}
		all, _ := rest.ReadAll(r.src)
		if !bytes.Equal(all, pattern(3000)) {
			t.Fatal("body corrupted by header ops")
		}
		rest.Free(r.src)
	})
}

func TestSplitSharesDataWithoutCopying(t *testing.T) {
	// Fragmentation must not copy: both halves reference the original
	// fbuf ("each fragment can be represented by an offset/length into
	// the original buffer").
	bothModes(t, func(t *testing.T, r *rig, c *Ctx) {
		m, _ := c.NewData(pattern(8000))
		first := m.Segs()[0].F
		last := m.Segs()[len(m.Segs())-1].F
		a, b, err := c.Split(m, 4000)
		if err != nil {
			t.Fatal(err)
		}
		if a.Segs()[0].F != first {
			t.Fatal("left half does not reference original fbuf")
		}
		if b.Segs()[len(b.Segs())-1].F != last {
			t.Fatal("right half does not reference original fbuf")
		}
		a.Free(r.src)
		b.Free(r.src)
		if err := r.mgr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestTransferAndReceive(t *testing.T) {
	bothModes(t, func(t *testing.T, r *rig, c *Ctx) {
		data := pattern(9000)
		m, _ := c.NewData(data)
		if err := m.Transfer(r.src, r.dst); err != nil {
			t.Fatal(err)
		}
		var rm *Msg
		if c.Integrated() {
			// The receiver reconstructs from the root reference alone.
			var err error
			rm, err = Open(r.mgr, r.dst, m.RootVA())
			if err != nil {
				t.Fatal(err)
			}
			if m.NumFbufs() != 1 {
				t.Fatalf("integrated descriptor count %d", m.NumFbufs())
			}
		} else {
			rm = m // simulator plumbing: same view, receiver-side refs exist
			if m.NumFbufs() < 2 {
				t.Fatalf("private descriptor count %d", m.NumFbufs())
			}
		}
		got, err := rm.ReadAll(r.dst)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("receiver content mismatch")
		}
		if err := rm.Free(r.dst); err != nil {
			t.Fatal(err)
		}
		if err := m.Free(r.src); err != nil && !errors.Is(err, ErrConsumed) {
			t.Fatal(err)
		}
	})
}

func TestOpenLengthMatches(t *testing.T) {
	r := newRig(t)
	c := r.ctx(t, true, 2)
	m, _ := c.NewData(pattern(12345))
	m.Transfer(r.src, r.dst)
	rm, err := Open(r.mgr, r.dst, m.RootVA())
	if err != nil {
		t.Fatal(err)
	}
	if rm.Len() != 12345 {
		t.Fatalf("opened len %d", rm.Len())
	}
	if len(rm.Fbufs()) != len(m.Fbufs()) {
		t.Fatalf("opened %d fbufs, sender had %d", len(rm.Fbufs()), len(m.Fbufs()))
	}
}

func TestCloneForRetransmission(t *testing.T) {
	bothModes(t, func(t *testing.T, r *rig, c *Ctx) {
		m, _ := c.NewData(pattern(5000))
		cl, err := m.Clone(r.src)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Free(r.src); err != nil {
			t.Fatal(err)
		}
		// Clone still readable after original freed.
		got, err := cl.ReadAll(r.src)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pattern(5000)) {
			t.Fatal("clone corrupted")
		}
		cl.Free(r.src)
		if err := r.mgr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestNoLeaksAfterOpChains(t *testing.T) {
	bothModes(t, func(t *testing.T, r *rig, c *Ctx) {
		for i := 0; i < 20; i++ {
			a, _ := c.NewData(pattern(6000))
			b, _ := c.NewData(pattern(100))
			j, err := c.Join(b, a)
			if err != nil {
				t.Fatal(err)
			}
			l, rr, err := c.Split(j, 3000)
			if err != nil {
				t.Fatal(err)
			}
			l.Free(r.src)
			x, err := c.ClipHead(rr, 50)
			if err != nil {
				t.Fatal(err)
			}
			x.Free(r.src)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		if err := r.mgr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		// Everything cached should be back on free lists: no fbuf should
		// hold a live reference.
		// (Frames may stay attached — that is the cache working.)
	})
}

// TestModelConformance drives random operation sequences against a plain
// []byte reference model, in both storage modes.
func TestModelConformance(t *testing.T) {
	bothModes(t, func(t *testing.T, r *rig, c *Ctx) {
		rng := rand.New(rand.NewSource(42))
		type pair struct {
			m     *Msg
			model []byte
		}
		var live []pair
		check := func(p pair) {
			got, err := p.m.ReadAll(r.src)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, p.model) {
				t.Fatalf("model divergence: %d bytes vs %d", len(got), len(p.model))
			}
		}
		for step := 0; step < 120; step++ {
			switch op := rng.Intn(5); {
			case op == 0 || len(live) == 0:
				n := rng.Intn(10000)
				data := pattern(n)
				m, err := c.NewData(data)
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, pair{m, data})
			case op == 1 && len(live) >= 2:
				i := rng.Intn(len(live) - 1)
				a, b := live[i], live[i+1]
				j, err := c.Join(a.m, b.m)
				if err != nil {
					t.Fatal(err)
				}
				live = append(live[:i], live[i+2:]...)
				live = append(live, pair{j, append(append([]byte(nil), a.model...), b.model...)})
			case op == 2:
				i := rng.Intn(len(live))
				p := live[i]
				if p.m.Len() == 0 {
					continue
				}
				at := rng.Intn(p.m.Len() + 1)
				a, b, err := c.Split(p.m, at)
				if err != nil {
					t.Fatal(err)
				}
				live = append(live[:i], live[i+1:]...)
				live = append(live, pair{a, p.model[:at]}, pair{b, p.model[at:]})
			case op == 3:
				i := rng.Intn(len(live))
				p := live[i]
				n := 0
				if p.m.Len() > 0 {
					n = rng.Intn(p.m.Len())
				}
				m2, err := c.ClipHead(p.m, n)
				if err != nil {
					t.Fatal(err)
				}
				live[i] = pair{m2, p.model[n:]}
			case op == 4:
				i := rng.Intn(len(live))
				check(live[i])
				if err := live[i].m.Free(r.src); err != nil {
					t.Fatal(err)
				}
				live = append(live[:i], live[i+1:]...)
			}
			if step%20 == 19 {
				if err := r.mgr.CheckInvariants(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
		}
		for _, p := range live {
			check(p)
			p.m.Free(r.src)
		}
		if err := r.mgr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

// --- Adversarial DAG tests (section 3.2.4 safeguards) ---

// adversarialRig returns a rig plus a raw fbuf the untrusted src domain can
// scribble DAG nodes into, already transferred to dst.
func adversarialSetup(t *testing.T) (*rig, *Ctx, *core.Fbuf) {
	r := newRig(t)
	c := r.ctx(t, true, 2)
	m, err := c.NewData(pattern(100))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Transfer(r.src, r.dst); err != nil {
		t.Fatal(err)
	}
	// The data fbuf is writable by src (volatile): the attacker forges
	// node records inside it.
	return r, c, m.Fbufs()[0]
}

func writeNodeRaw(t *testing.T, r *rig, f *core.Fbuf, off int, enc []byte) vm.VA {
	t.Helper()
	if err := f.Write(r.src, off, enc); err != nil {
		t.Fatal(err)
	}
	return f.Base + vm.VA(off)
}

func TestAdversarialCycleDetected(t *testing.T) {
	r, _, f := adversarialSetup(t)
	var enc [nodeSize]byte
	// pair at offset 512 pointing to itself on the left.
	self := f.Base + vm.VA(512)
	encodePair(enc[:], self, self, 1)
	va := writeNodeRaw(t, r, f, 512, enc[:])
	if _, err := Open(r.mgr, r.dst, va); !errors.Is(err, ErrCycle) {
		t.Fatalf("want ErrCycle, got %v", err)
	}
}

func TestAdversarialMutualCycle(t *testing.T) {
	r, _, f := adversarialSetup(t)
	var enc [nodeSize]byte
	n1 := f.Base + vm.VA(512)
	n2 := f.Base + vm.VA(544)
	encodePair(enc[:], n2, n2, 1)
	writeNodeRaw(t, r, f, 512, enc[:])
	encodePair(enc[:], n1, n1, 1)
	writeNodeRaw(t, r, f, 544, enc[:])
	if _, err := Open(r.mgr, r.dst, n1); !errors.Is(err, ErrCycle) {
		t.Fatalf("want ErrCycle, got %v", err)
	}
}

func TestAdversarialOutOfRegionPointer(t *testing.T) {
	r, _, f := adversarialSetup(t)
	var enc [nodeSize]byte
	encodePair(enc[:], vm.VA(0x1000), vm.VA(0x2000), 1) // private addresses
	va := writeNodeRaw(t, r, f, 512, enc[:])
	if _, err := Open(r.mgr, r.dst, va); !errors.Is(err, ErrBadPointer) {
		t.Fatalf("want ErrBadPointer, got %v", err)
	}
	// Root itself out of region.
	if _, err := Open(r.mgr, r.dst, vm.VA(0x1000)); !errors.Is(err, ErrBadPointer) {
		t.Fatalf("root check: %v", err)
	}
}

func TestAdversarialLeafEscape(t *testing.T) {
	r, _, f := adversarialSetup(t)
	var enc [nodeSize]byte
	// Leaf whose data range runs past the end of the region.
	end := core.RegionBase + vm.VA(r.mgr.RegionPages()*machine.PageSize)
	encodeLeaf(enc[:], end-16, 64)
	va := writeNodeRaw(t, r, f, 512, enc[:])
	if _, err := Open(r.mgr, r.dst, va); !errors.Is(err, ErrBadPointer) {
		t.Fatalf("want ErrBadPointer, got %v", err)
	}
}

func TestAdversarialUnalignedNode(t *testing.T) {
	r, _, f := adversarialSetup(t)
	var enc [nodeSize]byte
	encodeLeaf(enc[:], f.Base, 4)
	va := writeNodeRaw(t, r, f, 515, enc[:]) // misaligned
	if _, err := Open(r.mgr, r.dst, va); !errors.Is(err, ErrBadNode) {
		t.Fatalf("want ErrBadNode, got %v", err)
	}
}

func TestAdversarialBadKind(t *testing.T) {
	r, _, f := adversarialSetup(t)
	var enc [nodeSize]byte
	enc[0] = 77
	va := writeNodeRaw(t, r, f, 512, enc[:])
	if _, err := Open(r.mgr, r.dst, va); !errors.Is(err, ErrBadNode) {
		t.Fatalf("want ErrBadNode, got %v", err)
	}
}

func TestAdversarialExponentialDAGBounded(t *testing.T) {
	// A chain of pairs each referencing the next node twice makes 2^k
	// traversal paths; the node budget must stop it.
	r, _, f := adversarialSetup(t)
	var enc [nodeSize]byte
	// 40 nodes, each pair(next, next); last is a tiny leaf.
	base := 512
	for i := 0; i < 40; i++ {
		next := f.Base + vm.VA(base+(i+1)*nodeSize)
		encodePair(enc[:], next, next, 1)
		writeNodeRaw(t, r, f, base+i*nodeSize, enc[:])
	}
	encodeLeaf(enc[:], f.Base, 1)
	writeNodeRaw(t, r, f, base+40*nodeSize, enc[:])
	_, err := Open(r.mgr, r.dst, f.Base+vm.VA(base))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestDanglingReferenceReadsAsAbsence(t *testing.T) {
	// A leaf pointing into fbuf-region space the receiver has no rights
	// to completes as zeros (the empty-leaf page), not a crash.
	r, _, f := adversarialSetup(t)

	// A second path src-only: dst has no rights to its fbufs.
	p2, err := r.mgr.NewPath("private", core.CachedVolatile(), 1, r.src)
	if err != nil {
		t.Fatal(err)
	}
	secret, err := p2.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := secret.Write(r.src, 0, []byte("topsecret")); err != nil {
		t.Fatal(err)
	}

	var enc [nodeSize]byte
	encodeLeaf(enc[:], secret.Base, 9)
	va := writeNodeRaw(t, r, f, 512, enc[:])
	m, err := Open(r.mgr, r.dst, va)
	if err != nil {
		t.Fatalf("volatile open should succeed: %v", err)
	}
	got, err := m.ReadAll(r.dst)
	if err != nil {
		t.Fatalf("volatile read should complete: %v", err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatalf("secret data leaked: %q", got)
		}
	}
}

func TestZeroPageDecodesAsEmptyLeaf(t *testing.T) {
	var enc [nodeSize]byte
	if enc[0] != kindEmpty {
		t.Fatal("zero bytes must decode as the empty node kind")
	}
	page := make([]byte, machine.PageSize)
	EmptyLeafImage(page)
	if page[0] != kindEmpty || binary.LittleEndian.Uint32(page[4:]) != 0 {
		t.Fatal("EmptyLeafImage is not an empty node")
	}
}

func TestWrapFbuf(t *testing.T) {
	r := newRig(t)
	c := r.ctx(t, true, 2)
	p, _ := r.mgr.NewPath("drv", core.CachedVolatile(), 2, r.src, r.dst)
	f, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	f.Write(r.src, 0, pattern(5000))
	m, err := c.WrapFbuf(f, 100, 2000)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadAll(r.src)
	if !bytes.Equal(got, pattern(5000)[100:2100]) {
		t.Fatal("wrap content mismatch")
	}
	if _, err := c.WrapFbuf(f, 0, f.Size()+1); err == nil {
		t.Fatal("oversized wrap accepted")
	}
	m.Free(r.src)
}

func TestUncachedCtx(t *testing.T) {
	r := newRig(t)
	opts := core.Uncached()
	opts.NoClear = true
	c := NewUncachedCtx(r.mgr, r.src, opts, 2, true)
	m, err := c.NewData(pattern(10000))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Transfer(r.src, r.dst); err != nil {
		t.Fatal(err)
	}
	rm, err := Open(r.mgr, r.dst, m.RootVA())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := rm.ReadAll(r.dst)
	if !bytes.Equal(got, pattern(10000)) {
		t.Fatal("uncached content mismatch")
	}
	rm.Free(r.dst)
	m.Free(r.src)
	c.Close()
	if err := r.mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if r.sys.Mem.Allocated() != 0 {
		t.Fatalf("%d frames leaked in uncached mode", r.sys.Mem.Allocated())
	}
}

func TestTouchReadsEveryPage(t *testing.T) {
	r := newRig(t)
	c := r.ctx(t, false, 4)
	m, _ := c.NewData(pattern(3 * 4096))
	start := r.clk.Now()
	if err := m.Touch(r.dst); err == nil {
		// dst has no refs yet; volatile mode maps the empty leaf, so
		// this may succeed with absence-of-data. Transfer and retouch.
		_ = start
	}
	m.Transfer(r.src, r.dst)
	if err := m.Touch(r.dst); err != nil {
		t.Fatal(err)
	}
	m.Free(r.dst)
	m.Free(r.src)
}

func TestReadRangeValidation(t *testing.T) {
	r := newRig(t)
	c := r.ctx(t, false, 2)
	m, _ := c.NewData(pattern(100))
	if err := m.Read(r.src, 90, make([]byte, 20)); !errors.Is(err, ErrRange) {
		t.Fatalf("oob read: %v", err)
	}
	if err := m.Read(r.src, -1, make([]byte, 2)); !errors.Is(err, ErrRange) {
		t.Fatalf("negative read: %v", err)
	}
}

func TestSplitRangeValidation(t *testing.T) {
	r := newRig(t)
	c := r.ctx(t, false, 2)
	m, _ := c.NewData(pattern(100))
	if _, _, err := c.Split(m, 101); !errors.Is(err, ErrRange) {
		t.Fatalf("oob split: %v", err)
	}
	if _, _, err := c.Split(m, -1); !errors.Is(err, ErrRange) {
		t.Fatalf("negative split: %v", err)
	}
	// m not consumed by failed splits.
	if _, err := m.ReadAll(r.src); err != nil {
		t.Fatal(err)
	}
}

func TestMsgSecure(t *testing.T) {
	r := newRig(t)
	c := r.ctx(t, true, 2)
	m, _ := c.NewData(pattern(9000))
	if err := m.Transfer(r.src, r.dst); err != nil {
		t.Fatal(err)
	}
	if err := m.Secure(r.dst); err != nil {
		t.Fatal(err)
	}
	// Every fbuf of the message is now immutable to the originator.
	for _, f := range m.Fbufs() {
		if !f.Secured() {
			t.Fatalf("fbuf %#x not secured", uint64(f.Base))
		}
	}
	// The originator can no longer scribble on the payload.
	if err := m.Fbufs()[0].Write(r.src, 0, []byte{1}); err == nil {
		t.Fatal("originator wrote after Secure")
	}
	rm, err := Open(r.mgr, r.dst, m.RootVA())
	if err != nil {
		t.Fatal(err)
	}
	got, err := rm.ReadAll(r.dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern(9000)) {
		t.Fatal("secured content mismatch")
	}
	if err := m.Free(r.src); err != nil {
		t.Fatal(err)
	}
	if err := m.Secure(r.dst); !errors.Is(err, ErrConsumed) {
		t.Fatalf("secure after free: %v", err)
	}
}

func TestViewForRequiresTransfer(t *testing.T) {
	r := newRig(t)
	c := r.ctx(t, false, 2)
	m, _ := c.NewData(pattern(100))
	if _, err := m.ViewFor(r.dst); err == nil {
		t.Fatal("view without transfer accepted")
	}
	m.Transfer(r.src, r.dst)
	v, err := m.ViewFor(r.dst)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 100 {
		t.Fatalf("view len %d", v.Len())
	}
	m.Free(r.src)
	if _, err := m.ViewFor(r.dst); !errors.Is(err, ErrConsumed) {
		t.Fatalf("view of consumed: %v", err)
	}
	v.Free(r.dst)
}

func TestCtxCloseReleasesArena(t *testing.T) {
	r := newRig(t)
	c := r.ctx(t, true, 2)
	m, _ := c.NewData(pattern(100)) // forces a node fbuf into the arena
	if err := m.Free(r.src); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Closing twice is harmless.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDataFbufBytes(t *testing.T) {
	r := newRig(t)
	c := r.ctx(t, false, 3)
	if got := c.DataFbufBytes(); got != 3*4096 {
		t.Fatalf("path ctx capacity %d", got)
	}
	opts := core.Uncached()
	opts.NoClear = true
	u := NewUncachedCtx(r.mgr, r.src, opts, 2, false)
	if got := u.DataFbufBytes(); got != 2*4096 {
		t.Fatalf("uncached ctx capacity %d", got)
	}
	if u.Integrated() {
		t.Fatal("uncached ctx claims integrated")
	}
}

func TestDeepJoinChainTraversal(t *testing.T) {
	// Hundreds of successive joins build a deeply right-leaning DAG; Open
	// must traverse it within the node budget and without corruption.
	r := newRig(t)
	c := r.ctx(t, true, 2)
	m, err := c.NewData(pattern(64))
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	want = append(want, pattern(64)...)
	for i := 0; i < 500; i++ {
		piece, err := c.NewData([]byte{byte(i), byte(i >> 8)})
		if err != nil {
			t.Fatal(err)
		}
		m, err = c.Join(m, piece)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, byte(i), byte(i>>8))
	}
	if err := m.Transfer(r.src, r.dst); err != nil {
		t.Fatal(err)
	}
	rm, err := Open(r.mgr, r.dst, m.RootVA())
	if err != nil {
		t.Fatal(err)
	}
	got, err := rm.ReadAll(r.dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("deep chain corrupted")
	}
	if err := rm.Free(r.dst); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(r.src); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
