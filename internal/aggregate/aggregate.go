// Package aggregate implements the buffer-aggregation abstraction layered
// on fbufs: the x-kernel-style immutable message, represented as a directed
// acyclic graph over buffer segments (paper Figure 2). It provides the
// standard editing operations — join, split, clip, push/pop header — all of
// which allocate new nodes rather than mutating data, preserving
// immutability.
//
// Two storage modes are supported, matching the paper's design progression:
//
//   - Private (section 3.1 baseline): interior structure lives in memory
//     private to each domain. Transferring a message means generating the
//     list of fbufs, passing per-fbuf descriptors through the kernel, and
//     rebuilding the aggregate on the receiving side.
//   - Integrated (section 3.2.3): the entire aggregate object, interior
//     nodes included, is stored *inside* fbufs. Because the fbuf region is
//     mapped at the same virtual address everywhere, no pointer translation
//     is needed: a transfer passes a single reference to the DAG root.
//
// Integrated mode composes with volatile fbufs via the section 3.2.4
// safeguards, implemented in Open: range checks on every DAG pointer, cycle
// detection during traversal, and tolerance of unpermitted reads (which the
// VM satisfies with an empty-leaf page, making invalid references appear as
// the absence of data).
package aggregate

import (
	"errors"
	"fmt"

	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/vm"
)

// Seg is one contiguous run of message bytes inside an fbuf.
type Seg struct {
	F  *core.Fbuf // nil when the bytes are unreachable (volatile absence)
	VA vm.VA      // absolute virtual address of the first byte
	N  int
}

// Msg is an immutable message: a sequence of segments plus, in integrated
// mode, the encoded DAG root that represents it in shared fbuf memory.
// A Msg is a *view held by one domain at a time*; editing operations consume
// their operands (use-after-consume is reported as an error).
type Msg struct {
	mgr        *core.Manager
	integrated bool
	rootVA     vm.VA // 0 in private mode
	segs       []Seg
	fbufs      []*core.Fbuf // unique fbufs this message holds references to
	length     int
	consumed   bool
}

// Errors.
var (
	ErrConsumed = errors.New("aggregate: message already consumed")
	ErrRange    = errors.New("aggregate: offset out of range")
)

// Len returns the message length in bytes.
func (m *Msg) Len() int { return m.length }

// RootVA returns the DAG root address (integrated mode; 0 otherwise).
func (m *Msg) RootVA() vm.VA { return m.rootVA }

// Integrated reports the storage mode.
func (m *Msg) Integrated() bool { return m.integrated }

// Segs returns the message's segment list (read-only use).
func (m *Msg) Segs() []Seg { return m.segs }

// Fbufs returns the unique fbufs the message references — the list a
// non-integrated transfer must marshal ("generate a list of fbufs from the
// aggregate object", step 2a).
func (m *Msg) Fbufs() []*core.Fbuf { return m.fbufs }

// NumFbufs returns the descriptor count an IPC transfer of this message
// carries: the fbuf list in private mode, a single root reference in
// integrated mode.
func (m *Msg) NumFbufs() int {
	if m.integrated {
		return 1
	}
	return len(m.fbufs)
}

// Read copies n=len(buf) bytes starting at off into buf, acting as domain
// d. Unreachable segments (volatile absence-of-data) read as zeros.
func (m *Msg) Read(d *domain.Domain, off int, buf []byte) error {
	if m.consumed {
		return ErrConsumed
	}
	if off < 0 || off+len(buf) > m.length {
		return fmt.Errorf("%w: read [%d,%d) of %d", ErrRange, off, off+len(buf), m.length)
	}
	for _, s := range m.segs {
		if len(buf) == 0 {
			break
		}
		if off >= s.N {
			off -= s.N
			continue
		}
		n := s.N - off
		if n > len(buf) {
			n = len(buf)
		}
		if err := d.AS.Read(s.VA+vm.VA(off), buf[:n]); err != nil {
			return err
		}
		buf = buf[n:]
		off = 0
	}
	return nil
}

// ReadAll returns the full message contents.
func (m *Msg) ReadAll(d *domain.Domain) ([]byte, error) {
	buf := make([]byte, m.length)
	if err := m.Read(d, 0, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Touch reads one word in each page the message occupies — the dummy-
// protocol consumption pattern from the paper's experiments.
func (m *Msg) Touch(d *domain.Domain) error {
	if m.consumed {
		return ErrConsumed
	}
	var w [4]byte
	for _, s := range m.segs {
		for o := 0; o < s.N; o += 4096 {
			n := 4
			if s.N-o < 4 {
				n = s.N - o
			}
			if err := d.AS.Read(s.VA+vm.VA(o), w[:n]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Transfer passes every fbuf of the message from one domain to another with
// copy semantics (the sender keeps its references; Free them explicitly).
// In the cached steady state this performs no mapping work.
func (m *Msg) Transfer(from, to *domain.Domain) error {
	if m.consumed {
		return ErrConsumed
	}
	for _, f := range m.fbufs {
		if err := m.mgr.Transfer(f, from, to); err != nil {
			return err
		}
	}
	return nil
}

// Secure raises protection on all the message's fbufs at a receiver's
// request (no-ops for trusted originators).
func (m *Msg) Secure(d *domain.Domain) error {
	if m.consumed {
		return ErrConsumed
	}
	for _, f := range m.fbufs {
		if err := m.mgr.Secure(f, d); err != nil {
			return err
		}
	}
	return nil
}

// Free releases domain d's references to all the message's fbufs and
// consumes the message view.
func (m *Msg) Free(d *domain.Domain) error {
	if m.consumed {
		return ErrConsumed
	}
	m.consumed = true
	for _, f := range m.fbufs {
		if err := m.mgr.Free(f, d); err != nil {
			return err
		}
	}
	return nil
}

// ViewFor returns the receiving domain's own view of a message whose fbufs
// have just been transferred to it — the "rebuild the aggregate object on
// the receiving side" step (3c) of a non-integrated transfer. The view
// covers the same segments and owns the references the transfer granted;
// the sender's view is untouched and must still be freed by the sender.
func (m *Msg) ViewFor(d *domain.Domain) (*Msg, error) {
	if m.consumed {
		return nil, ErrConsumed
	}
	v := &Msg{
		mgr:        m.mgr,
		integrated: m.integrated,
		rootVA:     m.rootVA,
		segs:       append([]Seg(nil), m.segs...),
		length:     m.length,
	}
	for _, f := range m.fbufs {
		if !f.HeldBy(d) {
			return nil, fmt.Errorf("aggregate: %w: fbuf %#x not transferred to %s",
				core.ErrNotHolder, uint64(f.Base), d)
		}
		v.fbufs = append(v.fbufs, f)
	}
	return v, nil
}

// Clone returns an independent view of the same bytes for the same holder,
// duplicating the fbuf references (used by retransmission buffers).
func (m *Msg) Clone(d *domain.Domain) (*Msg, error) {
	if m.consumed {
		return nil, ErrConsumed
	}
	for _, f := range m.fbufs {
		if err := m.mgr.DupRef(f, d); err != nil {
			return nil, err
		}
	}
	c := *m
	c.segs = append([]Seg(nil), m.segs...)
	c.fbufs = append([]*core.Fbuf(nil), m.fbufs...)
	return &c, nil
}

// uniqueFbufs deduplicates the fbufs behind a segment list.
func uniqueFbufs(segs []Seg) []*core.Fbuf {
	var out []*core.Fbuf
	seen := map[*core.Fbuf]bool{}
	for _, s := range segs {
		if s.F != nil && !seen[s.F] {
			seen[s.F] = true
			out = append(out, s.F)
		}
	}
	return out
}

func totalLen(segs []Seg) int {
	n := 0
	for _, s := range segs {
		n += s.N
	}
	return n
}

// sliceSegs returns the sub-segment-list covering [off, off+n).
func sliceSegs(segs []Seg, off, n int) []Seg {
	var out []Seg
	for _, s := range segs {
		if n == 0 {
			break
		}
		if off >= s.N {
			off -= s.N
			continue
		}
		take := s.N - off
		if take > n {
			take = n
		}
		out = append(out, Seg{F: s.F, VA: s.VA + vm.VA(off), N: take})
		n -= take
		off = 0
	}
	return out
}
