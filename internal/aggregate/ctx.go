package aggregate

import (
	"fmt"
	"sort"

	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/obs/span"
	"fbufs/internal/vm"
)

// Ctx is an allocation context: the identity (domain) performing message
// operations, the data-path allocator its buffers come from, and — in
// integrated mode — the arena of node fbufs its DAG nodes are written to.
// Each software layer that edits messages (a protocol attaching headers, a
// driver wrapping received PDUs) owns a Ctx in its domain.
type Ctx struct {
	Mgr *core.Manager
	Dom *domain.Domain

	data *core.DataPath // nil: use the default (uncached) allocator
	// uncachedOpts/uncachedPages configure default-allocator requests.
	uncachedOpts  core.Options
	uncachedPages int

	nodes      *core.DataPath // 1-page node fbufs (integrated mode)
	integrated bool

	cur     *core.Fbuf
	curOff  int
	retired []*core.Fbuf

	// Deterministic per-Ctx scratch state, reused across operations so the
	// steady-state editing path stays allocation-free (a Ctx belongs to one
	// layer in one domain; nothing here is shared). Not sync.Pool: pool
	// behavior must not depend on goroutine identity or GC timing.
	have, need map[*core.Fbuf]int
	sortBuf    []*core.Fbuf
	batchBuf   []*core.Fbuf
	preBuf     map[*core.Fbuf]int
	seenBuf    map[*core.Fbuf]bool

	// Msg recycling (SetPooling): consumed message views return to this
	// freelist and back fresh views, keeping slice capacity.
	pooling bool
	msgPool []*Msg
}

// SetPooling enables (or disables) recycling of consumed Msg views through
// a per-Ctx freelist, eliminating the per-operation Msg/slice allocations
// of the editing path. Off by default because recycling makes retaining a
// pointer to a consumed view an aliasing hazard: the struct may be reborn
// as a different message by a later operation. Enable it only for layers
// that never touch a message after an editing operation consumed it — the
// discipline the aggregate API already demands, now load-bearing.
func (c *Ctx) SetPooling(on bool) { c.pooling = on }

// newMsg returns a zeroed message, recycled from the freelist when pooling
// is enabled.
func (c *Ctx) newMsg() *Msg {
	if n := len(c.msgPool); c.pooling && n > 0 {
		m := c.msgPool[n-1]
		c.msgPool[n-1] = nil
		c.msgPool = c.msgPool[:n-1]
		segs, fbufs := m.segs[:0], m.fbufs[:0]
		*m = Msg{segs: segs, fbufs: fbufs}
		return m
	}
	return &Msg{}
}

// recycleMsg returns a consumed view to the freelist.
func (c *Ctx) recycleMsg(m *Msg) {
	if c.pooling && m.consumed {
		c.msgPool = append(c.msgPool, m)
	}
}

// NewCtx builds a context over a data path. In integrated mode a companion
// one-page node path with the same domains and options is created.
func NewCtx(mgr *core.Manager, data *core.DataPath, integrated bool) (*Ctx, error) {
	c := &Ctx{
		Mgr:        mgr,
		Dom:        data.Originator(),
		data:       data,
		integrated: integrated,
	}
	if integrated {
		np, err := mgr.NewPath(data.Name+".nodes", data.Options(), 1, data.Domains...)
		if err != nil {
			return nil, err
		}
		c.nodes = np
	}
	return c, nil
}

// NewUncachedCtx builds a context over the default allocator: every data
// fbuf is uncached, sized pages, with the given options.
func NewUncachedCtx(mgr *core.Manager, dom *domain.Domain, opts core.Options, pages int, integrated bool) *Ctx {
	mgr.AttachDomain(dom)
	return &Ctx{
		Mgr:           mgr,
		Dom:           dom,
		uncachedOpts:  opts,
		uncachedPages: pages,
		integrated:    integrated,
	}
}

// DataFbufBytes returns the byte capacity of one data fbuf from this
// context's allocator.
func (c *Ctx) DataFbufBytes() int {
	if c.data != nil {
		return c.data.FbufPages() * machine.PageSize
	}
	return c.uncachedPages * machine.PageSize
}

// Integrated reports the context's storage mode.
func (c *Ctx) Integrated() bool { return c.integrated }

func (c *Ctx) allocData() (*core.Fbuf, error) {
	if c.data != nil {
		return c.data.Alloc()
	}
	return c.Mgr.AllocUncached(c.Dom, c.uncachedPages, c.uncachedOpts)
}

// allocDataBatch allocates k data fbufs into the Ctx's scratch buffer —
// valid until the next batch — paying one allocator lock acquisition for
// the whole batch on a cached path. Error semantics match k individual
// allocations failing at buffer len(result): already-allocated buffers
// keep their references (the caller's rebalance or teardown drops them).
func (c *Ctx) allocDataBatch(k int) ([]*core.Fbuf, error) {
	if cap(c.batchBuf) < k {
		c.batchBuf = make([]*core.Fbuf, k)
	}
	bufs := c.batchBuf[:k]
	if c.data != nil {
		n, err := c.data.AllocBatch(bufs)
		if err != nil {
			return bufs[:n], err
		}
		return bufs, nil
	}
	for i := range bufs {
		f, err := c.Mgr.AllocUncached(c.Dom, c.uncachedPages, c.uncachedOpts)
		if err != nil {
			return bufs[:i], err
		}
		bufs[i] = f
	}
	return bufs, nil
}

// takePre returns the Ctx's scratch pre-reference map (cleared), used by
// the message constructors to seed rebalance with allocator references.
func (c *Ctx) takePre() map[*core.Fbuf]int {
	if c.preBuf == nil {
		c.preBuf = map[*core.Fbuf]int{}
	} else {
		clear(c.preBuf)
	}
	return c.preBuf
}

// Close releases the arena's reference on the current node fbuf. Call when
// the context's layer shuts down.
func (c *Ctx) Close() error {
	c.endOp()
	if c.cur != nil {
		if err := c.Mgr.Free(c.cur, c.Dom); err != nil {
			return err
		}
		c.cur = nil
	}
	return nil
}

// endOp drops the arena's references on node fbufs retired during the
// completed operation (messages built by the operation hold their own), in
// one batched free that pays the allocator lock once.
func (c *Ctx) endOp() {
	if len(c.retired) == 0 {
		return
	}
	// The arena's refs must exist unless the ctx is being torn down
	// concurrently, which the control-plane contract excludes.
	if err := c.Mgr.FreeBatch(c.retired, c.Dom); err != nil {
		panic("aggregate: arena ref accounting: " + err.Error())
	}
	c.retired = c.retired[:0]
}

// rebalance moves fbuf references from consumed input messages to output
// messages: for every unique fbuf, the outputs must end up holding exactly
// one reference each. preHave seeds references the caller already owns
// (freshly allocated data fbufs carry their allocator reference).
func (c *Ctx) rebalance(preHave map[*core.Fbuf]int, inputs, outputs []*Msg) error {
	if c.have == nil {
		c.have = map[*core.Fbuf]int{}
		c.need = map[*core.Fbuf]int{}
	}
	have, need := c.have, c.need
	defer func() {
		clear(have)
		clear(need)
	}()
	for f, n := range preHave {
		have[f] += n
	}
	for _, in := range inputs {
		if in.consumed {
			return ErrConsumed
		}
		for _, f := range in.fbufs {
			have[f]++
		}
	}
	for _, out := range outputs {
		for _, f := range out.fbufs {
			need[f]++
		}
	}
	// Take new references first (every fbuf needing extras has >=1 live
	// reference: an input's, the preHave allocator's, or the arena's).
	// Iterate in VA order: ref-count ops emit trace events and charge the
	// simulated clock, and map order over *Fbuf keys would leak Go's map
	// randomization into otherwise deterministic runs.
	for _, f := range c.sortedFbufs(need) {
		for i := have[f]; i < need[f]; i++ {
			if err := c.Mgr.DupRef(f, c.Dom); err != nil {
				return fmt.Errorf("aggregate: rebalance dupref: %w", err)
			}
		}
	}
	for _, in := range inputs {
		in.consumed = true
	}
	for _, f := range c.sortedFbufs(have) {
		for i := need[f]; i < have[f]; i++ {
			if err := c.Mgr.Free(f, c.Dom); err != nil {
				return fmt.Errorf("aggregate: rebalance free: %w", err)
			}
		}
	}
	c.endOp()
	for _, in := range inputs {
		c.recycleMsg(in)
	}
	return nil
}

// sortedFbufs returns the map's keys ordered by region VA, the stable
// identity of an fbuf within one manager. The returned slice is the Ctx's
// scratch buffer: valid until the next call.
func (c *Ctx) sortedFbufs(m map[*core.Fbuf]int) []*core.Fbuf {
	fs := c.sortBuf[:0]
	for f := range m {
		fs = append(fs, f)
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].Base < fs[j].Base })
	c.sortBuf = fs
	return fs
}

// NewData allocates fbufs for data, writes it, and returns the message.
// Multi-fbuf messages allocate their buffers as one batch.
func (c *Ctx) NewData(data []byte) (*Msg, error) {
	if o := c.Mgr.Sys.Obs; o != nil {
		o.SpanBegin(span.StageAlloc, "aggregate", int(c.Dom.ID)+c.Mgr.Sys.TraceBase, int64(len(data)))
		defer o.SpanEnd()
	}
	cap := c.DataFbufBytes()
	k := (len(data) + cap - 1) / cap
	bufs, err := c.allocDataBatch(k)
	if err != nil {
		return nil, err
	}
	var segs []Seg
	pre := c.takePre()
	for i, f := range bufs {
		pre[f] = 1
		off := i * cap
		n := len(data) - off
		if n > cap {
			n = cap
		}
		if err := f.Write(c.Dom, 0, data[off:off+n]); err != nil {
			return nil, err
		}
		segs = append(segs, Seg{F: f, VA: f.Base, N: n})
	}
	return c.finish(pre, nil, segs)
}

// NewTouched allocates an n-byte message writing only one word in each
// page — the paper's throughput-test source pattern, which isolates
// transfer costs from data-generation costs. The data fbufs are allocated
// as one batch.
func (c *Ctx) NewTouched(n int) (*Msg, error) {
	if o := c.Mgr.Sys.Obs; o != nil {
		o.SpanBegin(span.StageAlloc, "aggregate", int(c.Dom.ID)+c.Mgr.Sys.TraceBase, int64(n))
		defer o.SpanEnd()
	}
	cap := c.DataFbufBytes()
	k := (n + cap - 1) / cap
	bufs, err := c.allocDataBatch(k)
	if err != nil {
		return nil, err
	}
	var segs []Seg
	pre := c.takePre()
	for i, f := range bufs {
		pre[f] = 1
		off := i * cap
		take := n - off
		if take > cap {
			take = cap
		}
		for o := 0; o < take; o += machine.PageSize {
			if err := f.Write(c.Dom, o, []byte{1, 2, 3, 4}); err != nil {
				return nil, err
			}
		}
		segs = append(segs, Seg{F: f, VA: f.Base, N: take})
	}
	return c.finish(pre, nil, segs)
}

// WrapFbuf builds a message over bytes already present in an fbuf the
// context's domain holds (a driver wrapping a DMA-filled reassembly
// buffer). The message takes over one of the caller's references.
func (c *Ctx) WrapFbuf(f *core.Fbuf, off, n int) (*Msg, error) {
	if off < 0 || n < 0 || off+n > f.Size() {
		return nil, fmt.Errorf("%w: wrap [%d,%d) of %d-byte fbuf", ErrRange, off, off+n, f.Size())
	}
	if !f.HeldBy(c.Dom) {
		return nil, core.ErrNotHolder
	}
	pre := c.takePre()
	pre[f] = 1
	var segs []Seg
	if n > 0 {
		segs = []Seg{{F: f, VA: f.Base + vm.VA(off), N: n}}
	}
	return c.finish(pre, nil, segs)
}

// Join concatenates a then b, consuming both. In integrated mode this
// writes a single pair node referencing the two existing DAG roots.
func (c *Ctx) Join(a, b *Msg) (*Msg, error) {
	if a.consumed || b.consumed {
		return nil, ErrConsumed
	}
	m := c.newMsg()
	m.mgr = c.Mgr
	m.integrated = c.integrated
	m.segs = append(append(m.segs, a.segs...), b.segs...)
	m.length = a.length + b.length
	m.fbufs = c.uniqueFbufsInto(m.fbufs, m.segs)
	if c.integrated {
		// Keep referencing the operands' node fbufs: their DAGs are
		// now our subtrees.
		root, nodeFbufs, err := c.joinRoot(a.rootVA, b.rootVA, m.length)
		if err != nil {
			return nil, err
		}
		m.rootVA = root
		m.fbufs = mergeFbufSets(m.fbufs, nodeFbufsOf(a), nodeFbufsOf(b), nodeFbufs)
	}
	if err := c.rebalance(nil, []*Msg{a, b}, []*Msg{m}); err != nil {
		return nil, err
	}
	return m, nil
}

// Split divides the message at byte offset off, consuming it and returning
// the two halves. Data is never copied: boundary-crossing leaves are
// re-described by offset/length, exactly as the paper prescribes for IP
// fragmentation.
func (c *Ctx) Split(m *Msg, off int) (*Msg, *Msg, error) {
	if m.consumed {
		return nil, nil, ErrConsumed
	}
	if off < 0 || off > m.length {
		return nil, nil, fmt.Errorf("%w: split at %d of %d", ErrRange, off, m.length)
	}
	s1 := sliceSegs(m.segs, 0, off)
	s2 := sliceSegs(m.segs, off, m.length-off)
	a, err := c.fromSegs(s1)
	if err != nil {
		return nil, nil, err
	}
	b, err := c.fromSegs(s2)
	if err != nil {
		return nil, nil, err
	}
	if err := c.rebalance(nil, []*Msg{m}, []*Msg{a, b}); err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// ClipHead drops the first n bytes (popping a protocol header), consuming m.
func (c *Ctx) ClipHead(m *Msg, n int) (*Msg, error) {
	if m.consumed {
		return nil, ErrConsumed
	}
	if n < 0 || n > m.length {
		return nil, fmt.Errorf("%w: clip %d of %d", ErrRange, n, m.length)
	}
	out, err := c.fromSegs(sliceSegs(m.segs, n, m.length-n))
	if err != nil {
		return nil, err
	}
	if err := c.rebalance(nil, []*Msg{m}, []*Msg{out}); err != nil {
		return nil, err
	}
	return out, nil
}

// ClipTail drops the last n bytes, consuming m.
func (c *Ctx) ClipTail(m *Msg, n int) (*Msg, error) {
	if m.consumed {
		return nil, ErrConsumed
	}
	if n < 0 || n > m.length {
		return nil, fmt.Errorf("%w: clip %d of %d", ErrRange, n, m.length)
	}
	out, err := c.fromSegs(sliceSegs(m.segs, 0, m.length-n))
	if err != nil {
		return nil, err
	}
	if err := c.rebalance(nil, []*Msg{m}, []*Msg{out}); err != nil {
		return nil, err
	}
	return out, nil
}

// Push prepends header bytes (allocated from this context, typically a
// protocol's own small fbufs) to m, consuming m.
func (c *Ctx) Push(m *Msg, hdr []byte) (*Msg, error) {
	h, err := c.NewData(hdr)
	if err != nil {
		return nil, err
	}
	return c.Join(h, m)
}

// Pop reads and strips an n-byte header, consuming m.
func (c *Ctx) Pop(m *Msg, n int) ([]byte, *Msg, error) {
	if m.consumed {
		return nil, nil, ErrConsumed
	}
	hdr := make([]byte, n)
	if err := m.Read(c.Dom, 0, hdr); err != nil {
		return nil, nil, err
	}
	rest, err := c.ClipHead(m, n)
	if err != nil {
		return nil, nil, err
	}
	return hdr, rest, nil
}

// uniqueFbufsInto appends the deduplicated fbufs behind a segment list to
// dst, using the Ctx's scratch seen-set instead of allocating one per call.
func (c *Ctx) uniqueFbufsInto(dst []*core.Fbuf, segs []Seg) []*core.Fbuf {
	if c.seenBuf == nil {
		c.seenBuf = map[*core.Fbuf]bool{}
	} else {
		clear(c.seenBuf)
	}
	for _, s := range segs {
		if s.F != nil && !c.seenBuf[s.F] {
			c.seenBuf[s.F] = true
			dst = append(dst, s.F)
		}
	}
	return dst
}

// fromSegs builds a message over a segment list, writing a fresh DAG chain
// in integrated mode. Reference accounting is the caller's job (rebalance).
func (c *Ctx) fromSegs(segs []Seg) (*Msg, error) {
	m := c.newMsg()
	m.mgr = c.Mgr
	m.integrated = c.integrated
	m.segs = segs
	m.length = totalLen(segs)
	m.fbufs = c.uniqueFbufsInto(m.fbufs, segs)
	if c.integrated {
		root, nodeFbufs, err := c.buildRoot(segs, m.length)
		if err != nil {
			return nil, err
		}
		m.rootVA = root
		m.fbufs = mergeFbufSets(m.fbufs, nodeFbufs)
	}
	if s := c.Mgr.Sanitizer(); s != nil {
		if err := c.validateMsg(m); err != nil {
			s.Violation("aggregate msg build: %v", err)
		}
	}
	return m, nil
}

// finish completes message construction from freshly allocated fbufs.
func (c *Ctx) finish(pre map[*core.Fbuf]int, inputs []*Msg, segs []Seg) (*Msg, error) {
	m, err := c.fromSegs(segs)
	if err != nil {
		return nil, err
	}
	if err := c.rebalance(pre, inputs, []*Msg{m}); err != nil {
		return nil, err
	}
	return m, nil
}

// nodeFbufsOf extracts the fbufs in m's set that are not data fbufs — i.e.
// node-only fbufs that must stay referenced when roots are reused.
func nodeFbufsOf(m *Msg) []*core.Fbuf {
	data := map[*core.Fbuf]bool{}
	for _, s := range m.segs {
		if s.F != nil {
			data[s.F] = true
		}
	}
	var out []*core.Fbuf
	for _, f := range m.fbufs {
		if !data[f] {
			out = append(out, f)
		}
	}
	return out
}

// mergeFbufSets unions fbuf lists preserving order and uniqueness.
func mergeFbufSets(sets ...[]*core.Fbuf) []*core.Fbuf {
	var out []*core.Fbuf
	seen := map[*core.Fbuf]bool{}
	for _, set := range sets {
		for _, f := range set {
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	return out
}
