package aggregate

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/obs/span"
	"fbufs/internal/vm"
)

// Integrated-mode DAG node encoding. Nodes are 32-byte records written into
// fbuf memory; because the fbuf region is mapped at the same virtual
// address in every domain, node "pointers" are plain virtual addresses
// valid everywhere, with no translation at transfer time (section 3.2.3).
//
//	offset 0: kind  (0 = empty leaf, 1 = leaf, 2 = pair)
//	offset 4: u32   length (leaf: data bytes; pair: advisory total)
//	offset 8: u64   A (leaf: data VA; pair: left child VA)
//	offset 16: u64  B (pair: right child VA)
//
// Nodes are 32-byte aligned and never cross a page boundary. A page of
// zeros decodes as an empty leaf — this is what makes the section 3.2.4
// empty-leaf-page trick work: an unpermitted read is satisfied with zeroed
// memory and the reference "appears as the absence of data".
const (
	nodeSize  = 32
	kindEmpty = 0
	kindLeaf  = 1
	kindPair  = 2

	// maxNodes bounds a traversal; combined with on-path cycle detection
	// it guarantees termination against adversarial DAGs.
	maxNodes = 16384
)

// Traversal errors (receiver-side validation, section 3.2.4).
var (
	ErrBadPointer = errors.New("aggregate: DAG pointer outside fbuf region")
	ErrCycle      = errors.New("aggregate: cycle in DAG")
	ErrTooLarge   = errors.New("aggregate: DAG exceeds node limit")
	ErrBadNode    = errors.New("aggregate: malformed DAG node")
)

func encodeLeaf(buf []byte, dataVA vm.VA, n int) {
	buf[0] = kindLeaf
	binary.LittleEndian.PutUint32(buf[4:], uint32(n))
	binary.LittleEndian.PutUint64(buf[8:], uint64(dataVA))
	binary.LittleEndian.PutUint64(buf[16:], 0)
}

func encodePair(buf []byte, left, right vm.VA, total int) {
	buf[0] = kindPair
	binary.LittleEndian.PutUint32(buf[4:], uint32(total))
	binary.LittleEndian.PutUint64(buf[8:], uint64(left))
	binary.LittleEndian.PutUint64(buf[16:], uint64(right))
}

// EmptyLeafImage writes the canonical empty-leaf encoding; installed as
// core.Manager.EmptyLeafInit so synthesized pages decode cleanly. (All
// zeros already decodes as empty; this just makes the kind explicit.)
func EmptyLeafImage(page []byte) {
	page[0] = kindEmpty
}

// allocNode reserves a 32-byte node slot in the context's arena, rotating
// to a fresh node fbuf when the current one fills. The arena keeps its own
// reference on the current fbuf; operations take additional references for
// the messages they build.
func (c *Ctx) allocNode() (vm.VA, *core.Fbuf, error) {
	// Rotate when full — or when the current node fbuf became immutable
	// because a message using it was transferred under non-volatile (or
	// explicitly secured) rules; buffers are never modified once secured.
	if c.cur == nil || c.curOff+nodeSize > c.cur.Size() || c.cur.Secured() {
		var nf *core.Fbuf
		var err error
		if c.nodes != nil {
			nf, err = c.nodes.Alloc()
		} else {
			opts := c.uncachedOpts
			nf, err = c.Mgr.AllocUncached(c.Dom, 1, opts)
		}
		if err != nil {
			return 0, nil, err
		}
		if c.cur != nil {
			c.retired = append(c.retired, c.cur)
		}
		c.cur = nf
		c.curOff = 0
	}
	va := c.cur.Base + vm.VA(c.curOff)
	c.curOff += nodeSize
	return va, c.cur, nil
}

// writeNode encodes and stores one node, tracking the set of node fbufs the
// current construction has touched.
func (c *Ctx) writeNode(enc []byte, touched map[*core.Fbuf]bool) (vm.VA, error) {
	va, f, err := c.allocNode()
	if err != nil {
		return 0, err
	}
	if err := f.Write(c.Dom, int(va-f.Base), enc); err != nil {
		return 0, err
	}
	touched[f] = true
	return va, nil
}

// buildRoot writes a right-leaning leaf/pair chain describing segs and
// returns the root VA plus the node fbufs used.
func (c *Ctx) buildRoot(segs []Seg, total int) (vm.VA, []*core.Fbuf, error) {
	touched := map[*core.Fbuf]bool{}
	var enc [nodeSize]byte
	if len(segs) == 0 {
		enc[0] = kindEmpty
		root, err := c.writeNode(enc[:], touched)
		if err != nil {
			return 0, nil, err
		}
		return root, setToList(touched), nil
	}
	// Leaves, then chain pairs right to left.
	leaves := make([]vm.VA, len(segs))
	for i, s := range segs {
		encodeLeaf(enc[:], s.VA, s.N)
		va, err := c.writeNode(enc[:], touched)
		if err != nil {
			return 0, nil, err
		}
		leaves[i] = va
	}
	root := leaves[len(leaves)-1]
	rest := segs[len(segs)-1].N
	for i := len(leaves) - 2; i >= 0; i-- {
		rest += segs[i].N
		encodePair(enc[:], leaves[i], root, rest)
		va, err := c.writeNode(enc[:], touched)
		if err != nil {
			return 0, nil, err
		}
		root = va
	}
	return root, setToList(touched), nil
}

// joinRoot writes the single pair node a Join needs, reusing both operand
// DAGs as subtrees.
func (c *Ctx) joinRoot(left, right vm.VA, total int) (vm.VA, []*core.Fbuf, error) {
	touched := map[*core.Fbuf]bool{}
	var enc [nodeSize]byte
	encodePair(enc[:], left, right, total)
	root, err := c.writeNode(enc[:], touched)
	if err != nil {
		return 0, nil, err
	}
	return root, setToList(touched), nil
}

// setToList flattens a touched-node set ordered by region VA (the stable
// identity of an fbuf within one manager): callers transfer the returned
// list, so map-iteration order here would leak into the event stream and
// break byte-identical traces.
func setToList(set map[*core.Fbuf]bool) []*core.Fbuf {
	out := make([]*core.Fbuf, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// Open reconstructs a message view from a DAG root, as a receiving domain
// must after an integrated transfer. The traversal implements all three
// section 3.2.4 safeguards:
//
//  1. every DAG pointer is range-checked against the fbuf region;
//  2. cycles are detected (and total node count bounded), so traversal
//     always terminates even against an adversarial or corrupted DAG;
//  3. reads of addresses the receiver has no permission for complete
//     against the VM's empty-leaf page, so dangling references appear as
//     the absence of data rather than a crash.
func Open(mgr *core.Manager, d *domain.Domain, rootVA vm.VA) (*Msg, error) {
	if o := mgr.Sys.Obs; o != nil {
		o.SpanBegin(span.StageMap, "aggregate", int(d.ID)+mgr.Sys.TraceBase, int64(rootVA))
		defer o.SpanEnd()
	}
	w := &walker{mgr: mgr, d: d, onPath: map[vm.VA]bool{}}
	if err := w.walk(rootVA); err != nil {
		return nil, err
	}
	m := &Msg{
		mgr:        mgr,
		integrated: true,
		rootVA:     rootVA,
		segs:       w.segs,
		length:     totalLen(w.segs),
	}
	// The message's reference set is the fbufs the traversal discovered
	// that this domain actually holds (granted by the sender's transfer).
	var held []*core.Fbuf
	for _, f := range w.fbufList {
		if f.HeldBy(d) {
			held = append(held, f)
		}
	}
	m.fbufs = held
	return m, nil
}

type walker struct {
	mgr    *core.Manager
	d      *domain.Domain
	onPath map[vm.VA]bool
	count  int
	segs   []Seg

	fbufSeen map[*core.Fbuf]bool
	fbufList []*core.Fbuf
}

func (w *walker) note(f *core.Fbuf) {
	if f == nil {
		return
	}
	if w.fbufSeen == nil {
		w.fbufSeen = map[*core.Fbuf]bool{}
	}
	if !w.fbufSeen[f] {
		w.fbufSeen[f] = true
		w.fbufList = append(w.fbufList, f)
	}
}

func (w *walker) walk(va vm.VA) error {
	if !w.mgr.InRegion(va) {
		return fmt.Errorf("%w: node %#x", ErrBadPointer, uint64(va))
	}
	if va%nodeSize != 0 {
		return fmt.Errorf("%w: unaligned node %#x", ErrBadNode, uint64(va))
	}
	if w.onPath[va] {
		return fmt.Errorf("%w via node %#x", ErrCycle, uint64(va))
	}
	w.count++
	if w.count > maxNodes {
		return ErrTooLarge
	}
	w.onPath[va] = true
	defer delete(w.onPath, va)

	var enc [nodeSize]byte
	if err := w.d.AS.Read(va, enc[:]); err != nil {
		// A non-volatile configuration faults here instead of
		// synthesizing an empty leaf; surface the violation.
		return fmt.Errorf("aggregate: node read: %w", err)
	}
	w.note(w.mgr.FbufAt(va))
	kind := enc[0]
	n := int(binary.LittleEndian.Uint32(enc[4:]))
	a := vm.VA(binary.LittleEndian.Uint64(enc[8:]))
	b := vm.VA(binary.LittleEndian.Uint64(enc[16:]))
	switch kind {
	case kindEmpty:
		return nil
	case kindLeaf:
		if n == 0 {
			return nil
		}
		if n < 0 || n > machine.PageSize*core.DefaultChunkPages {
			return fmt.Errorf("%w: leaf length %d", ErrBadNode, n)
		}
		if !w.mgr.InRegion(a) || !w.mgr.InRegion(a+vm.VA(n-1)) {
			return fmt.Errorf("%w: leaf data [%#x,+%d)", ErrBadPointer, uint64(a), n)
		}
		f := w.mgr.FbufAt(a)
		if f != nil && !f.Contains(a+vm.VA(n-1)) {
			return fmt.Errorf("%w: leaf data crosses fbuf boundary", ErrBadNode)
		}
		w.note(f)
		w.segs = append(w.segs, Seg{F: f, VA: a, N: n})
		return nil
	case kindPair:
		if err := w.walk(a); err != nil {
			return err
		}
		return w.walk(b)
	default:
		return fmt.Errorf("%w: kind %d at %#x", ErrBadNode, kind, uint64(va))
	}
}
