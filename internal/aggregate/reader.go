package aggregate

import (
	"fmt"
	"io"

	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

// Reader is the generator-like retrieval operation of the paper's proposed
// high-bandwidth I/O interface (section 5.2): applications consume a
// buffer aggregate at the granularity of application-defined data units
// ("such as a structure or a line of text"), and "copying only occurs when
// a data unit crosses a buffer fragment boundary".
//
// Next(n) returns the next n bytes. When the unit lies entirely within one
// fragment the returned slice aliases the fbuf's frame storage directly —
// zero copies, with only the simulated access costs of touching the pages.
// When the unit straddles fragments, the bytes are gathered into a scratch
// buffer and the per-byte copy cost is charged, exactly the penalty the
// paper describes the interface minimizing.
type Reader struct {
	m   *Msg
	d   *domain.Domain
	seg int
	off int // offset within current segment

	// Copies counts boundary-crossing units (diagnostics and tests).
	Copies uint64
	// CopiedBytes totals the gathered bytes.
	CopiedBytes uint64

	scratch []byte
}

// NewReader positions a reader at the start of the message for domain d.
func (m *Msg) NewReader(d *domain.Domain) *Reader {
	return &Reader{m: m, d: d}
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int {
	n := 0
	for i := r.seg; i < len(r.m.segs); i++ {
		n += r.m.segs[i].N
	}
	return n - r.off
}

// Next returns the next n bytes of the message, or io.EOF when fewer than
// n remain (after which Remaining tells how many trailing bytes were left;
// use Next(r.Remaining()) to drain them). The returned slice is valid
// until the next call.
func (r *Reader) Next(n int) ([]byte, error) {
	if r.m.consumed {
		return nil, ErrConsumed
	}
	if n < 0 {
		return nil, fmt.Errorf("%w: negative unit", ErrRange)
	}
	if n == 0 {
		return nil, nil
	}
	if r.Remaining() < n {
		return nil, io.EOF
	}
	s := &r.m.segs[r.seg]
	// Fast path: the unit lies within the current fragment. Reading
	// through the address space charges TLB/fault costs; the returned
	// bytes alias the frame storage (no copy).
	if r.off+n <= s.N {
		out, err := r.view(s, r.off, n)
		if err != nil {
			return nil, err
		}
		r.advance(n)
		return out, nil
	}
	// Slow path: gather across fragments, charging a prorated copy cost.
	if cap(r.scratch) < n {
		r.scratch = make([]byte, n)
	}
	out := r.scratch[:n]
	sys := r.m.mgr.Sys
	sys.Sink().Charge(simtime.Duration(int64(sys.Cost.PageCopy) * int64(n) / machine.PageSize))
	if err := r.m.Read(r.d, r.pos(), out); err != nil {
		return nil, err
	}
	r.advance(n)
	r.Copies++
	r.CopiedBytes += uint64(n)
	return out, nil
}

// pos returns the reader's absolute byte offset in the message.
func (r *Reader) pos() int {
	n := 0
	for i := 0; i < r.seg; i++ {
		n += r.m.segs[i].N
	}
	return n + r.off
}

// advance moves the cursor n bytes forward.
func (r *Reader) advance(n int) {
	r.off += n
	for r.seg < len(r.m.segs) && r.off >= r.m.segs[r.seg].N {
		r.off -= r.m.segs[r.seg].N
		r.seg++
	}
}

// view returns bytes [off, off+n) of segment s, aliasing frame storage.
// The access is still protection-checked and cost-charged page by page via
// Translate; only the final byte extraction bypasses the copy.
func (r *Reader) view(s *Seg, off, n int) ([]byte, error) {
	if s.F == nil {
		// Absence of data (volatile dangling reference): zeros.
		if cap(r.scratch) < n {
			r.scratch = make([]byte, n)
		}
		out := r.scratch[:n]
		for i := range out {
			out[i] = 0
		}
		return out, nil
	}
	va := s.VA + vm.VA(off)
	if va.PageOffset()+n <= machine.PageSize {
		// Single page: translate (protection checks, TLB costs, fault
		// handling — including the volatile empty-leaf redirection) and
		// alias whatever frame the translation yielded.
		fn, err := r.d.AS.Translate(va, false)
		if err != nil {
			return nil, err
		}
		fr := r.m.mgr.Sys.Mem.Frame(fn)
		po := va.PageOffset()
		return fr.Data[po : po+n], nil
	}
	// A unit within one fragment may still span page boundaries; frames
	// are not virtually contiguous in Go memory, so gather through the
	// address space (which keeps every protection rule intact). This is
	// simulator plumbing: on the real machine the virtual addresses are
	// contiguous, so no simulated copy cost is charged beyond the page
	// touches AS.Read performs.
	if cap(r.scratch) < n {
		r.scratch = make([]byte, n)
	}
	out := r.scratch[:n]
	if err := r.d.AS.Read(va, out); err != nil {
		return nil, err
	}
	return out, nil
}
