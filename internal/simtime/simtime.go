// Package simtime provides the simulated-time substrate for the fbufs
// reproduction: a virtual clock, a discrete-event scheduler, and serially
// reusable resources (CPU, bus) that accumulate utilization statistics.
//
// The unit of simulated time is the nanosecond. All performance results in
// this repository are expressed in simulated time: code paths charge explicit
// costs (from package machine) to a Clock or a Resource, and throughput is
// derived as bits transferred per simulated second. This makes the
// experiments deterministic and independent of the wall-clock speed of the
// machine running the simulation.
package simtime

import (
	"container/heap"
	"fmt"
	"sync/atomic"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// experiment.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration = Time

// US constructs a Duration from microseconds; most calibrated costs are
// naturally expressed in microseconds.
func US(us int64) Duration { return Duration(us * 1000) }

// MS constructs a Duration from milliseconds.
func MS(ms int64) Duration { return Duration(ms * 1000 * 1000) }

// Microseconds returns t as a float64 microsecond count, for reporting.
func (t Time) Microseconds() float64 { return float64(t) / 1000 }

// Seconds returns t as a float64 second count, for throughput math.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats a Time in microseconds with nanosecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fus", float64(t)/1000) }

// Clock is a simulated clock. The zero value is a clock at time 0.
//
// Clock reads and advances are atomic, so concurrent workers (the SMP
// benchmark mode) may share one clock without tearing; deterministic runs
// remain single-threaded, where the atomics are uncontended and free of
// observable effect.
type Clock struct {
	now atomic.Int64
}

// Now returns the current simulated time.
func (c *Clock) Now() Time { return Time(c.now.Load()) }

// Advance moves the clock forward by d. It panics if d is negative; simulated
// time never runs backwards.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic("simtime: negative advance")
	}
	c.now.Add(int64(d))
}

// AdvanceTo moves the clock forward to t if t is in the future; a time in the
// past is ignored (the clock is monotonic).
func (c *Clock) AdvanceTo(t Time) {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// Reset rewinds the clock to zero. Only experiment harnesses call this,
// between runs.
func (c *Clock) Reset() { c.now.Store(0) }

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break so equal-time events run in schedule order
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler is a discrete-event scheduler driving a global virtual timeline.
// The two-host end-to-end experiments use a Scheduler; the single-host
// experiments charge costs to a Clock directly.
type Scheduler struct {
	clock Clock
	queue eventHeap
	seq   uint64
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the scheduler's current virtual time.
func (s *Scheduler) Now() Time { return s.clock.Now() }

// At schedules fn to run at absolute time t. Times in the past run at the
// current time (immediately on the next Run step), preserving order.
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.clock.Now() {
		t = s.clock.Now()
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (s *Scheduler) After(d Duration, fn func()) { s.At(s.clock.Now()+d, fn) }

// Step runs the earliest pending event, advancing virtual time to it.
// It reports whether an event was run.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.clock.AdvanceTo(e.at)
	e.fn()
	return true
}

// Run drains the event queue. It returns the number of events executed.
// maxEvents bounds runaway simulations; pass 0 for no bound.
func (s *Scheduler) Run(maxEvents int) int {
	n := 0
	for s.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}

// RunUntil drains events with timestamps <= deadline, then advances the
// clock to the deadline.
func (s *Scheduler) RunUntil(deadline Time) int {
	n := 0
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
		n++
	}
	s.clock.AdvanceTo(deadline)
	return n
}

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Resource models a serially reusable hardware resource (a CPU, an I/O bus)
// on the scheduler's timeline. Work submitted to a Resource executes in FIFO
// order; each unit occupies the resource for its stated duration. Busy time
// is accumulated for utilization reporting (the paper reports receive-side
// CPU load for the end-to-end experiments).
type Resource struct {
	Name      string
	sched     *Scheduler
	freeAt    Time // resource is idle from freeAt onward
	busy      Duration
	statStart Time
}

// NewResource creates a resource on the given scheduler.
func NewResource(sched *Scheduler, name string) *Resource {
	return &Resource{Name: name, sched: sched}
}

// Exec schedules work of the given duration as soon as the resource is free,
// then runs done (which may be nil) at its completion time. It returns the
// completion time.
func (r *Resource) Exec(d Duration, done func()) Time {
	return r.ExecAt(r.sched.Now(), d, done)
}

// ExecAt is like Exec but the work cannot start before t (e.g. a DMA that
// cannot begin before the cell arrives on the link).
func (r *Resource) ExecAt(t Time, d Duration, done func()) Time {
	if d < 0 {
		panic("simtime: negative resource work")
	}
	start := r.freeAt
	if start < t {
		start = t
	}
	if now := r.sched.Now(); start < now {
		start = now
	}
	end := start + d
	r.freeAt = end
	r.busy += d
	if done != nil {
		r.sched.At(end, done)
	}
	return end
}

// FreeAt returns the time at which the resource next becomes idle.
func (r *Resource) FreeAt() Time { return r.freeAt }

// ResetStats restarts utilization accounting from the current virtual time.
func (r *Resource) ResetStats() {
	r.busy = 0
	r.statStart = r.sched.Now()
}

// BusyTime returns accumulated busy time since the last ResetStats.
func (r *Resource) BusyTime() Duration { return r.busy }

// Utilization returns busy time divided by elapsed time since the last
// ResetStats, clamped to [0, 1]. It returns 0 if no time has elapsed.
func (r *Resource) Utilization() float64 {
	elapsed := r.sched.Now() - r.statStart
	if elapsed <= 0 {
		return 0
	}
	u := float64(r.busy) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// Mbps computes throughput in megabits per second for the given byte count
// over the given elapsed simulated time. It returns 0 for non-positive
// elapsed time.
func Mbps(bytes int64, elapsed Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) * 8 / 1e6 / elapsed.Seconds()
}
