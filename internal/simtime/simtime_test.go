package simtime

import (
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock at %v", c.Now())
	}
	c.Advance(US(5))
	if c.Now() != 5000 {
		t.Fatalf("after 5us, Now=%d", c.Now())
	}
	c.AdvanceTo(4000) // past: ignored
	if c.Now() != 5000 {
		t.Fatalf("AdvanceTo past moved clock to %d", c.Now())
	}
	c.AdvanceTo(9000)
	if c.Now() != 9000 {
		t.Fatalf("AdvanceTo future: %d", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset: %d", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.At(10, func() { got = append(got, 4) }) // same time: schedule order
	s.Run(0)
	want := []int{1, 4, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("final time %v", s.Now())
	}
}

func TestSchedulerPastEventRunsNow(t *testing.T) {
	s := NewScheduler()
	s.At(100, func() {
		s.At(50, func() {}) // in the past; must run at 100, not rewind
	})
	s.Run(0)
	if s.Now() != 100 {
		t.Fatalf("clock went backwards: %v", s.Now())
	}
}

func TestSchedulerCascade(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			s.After(5, tick)
		}
	}
	s.After(5, tick)
	n := s.Run(0)
	if n != 10 || count != 10 {
		t.Fatalf("ran %d events, count %d", n, count)
	}
	if s.Now() != 50 {
		t.Fatalf("time %v, want 50", s.Now())
	}
}

func TestSchedulerRunBound(t *testing.T) {
	s := NewScheduler()
	var tick func()
	tick = func() { s.After(1, tick) } // infinite
	s.After(1, tick)
	if n := s.Run(100); n != 100 {
		t.Fatalf("bounded run executed %d", n)
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	ran := 0
	for i := 1; i <= 5; i++ {
		s.At(Time(i*10), func() { ran++ })
	}
	s.RunUntil(30)
	if ran != 3 {
		t.Fatalf("RunUntil(30) ran %d", ran)
	}
	if s.Now() != 30 {
		t.Fatalf("clock at %v", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending %d", s.Pending())
	}
}

func TestResourceSerializes(t *testing.T) {
	s := NewScheduler()
	cpu := NewResource(s, "cpu")
	var done []Time
	record := func() { done = append(done, s.Now()) }
	cpu.Exec(10, record)
	cpu.Exec(10, record) // queues behind the first
	s.Run(0)
	if len(done) != 2 || done[0] != 10 || done[1] != 20 {
		t.Fatalf("completions %v, want [10 20]", done)
	}
}

func TestResourceExecAt(t *testing.T) {
	s := NewScheduler()
	bus := NewResource(s, "bus")
	end := bus.ExecAt(100, 7, nil)
	if end != 107 {
		t.Fatalf("ExecAt end %v", end)
	}
	// Second transfer queues behind the first even if its ready time is
	// earlier.
	end = bus.ExecAt(50, 7, nil)
	if end != 114 {
		t.Fatalf("queued ExecAt end %v", end)
	}
}

func TestResourceUtilization(t *testing.T) {
	s := NewScheduler()
	cpu := NewResource(s, "cpu")
	cpu.ResetStats()
	cpu.Exec(25, nil)
	s.At(100, func() {})
	s.Run(0)
	u := cpu.Utilization()
	if u < 0.24 || u > 0.26 {
		t.Fatalf("utilization %v, want 0.25", u)
	}
	if cpu.BusyTime() != 25 {
		t.Fatalf("busy %v", cpu.BusyTime())
	}
}

func TestMbps(t *testing.T) {
	// 4096 bytes in 3 us -> 10922.67 Mb/s (the paper's cached/volatile
	// asymptote).
	got := Mbps(4096, US(3))
	if got < 10922 || got > 10923 {
		t.Fatalf("Mbps = %v", got)
	}
	if Mbps(100, 0) != 0 {
		t.Fatal("zero elapsed should yield 0")
	}
}

func TestMbpsPaperAnchors(t *testing.T) {
	cases := []struct {
		us   int64
		want float64
	}{
		{21, 1560}, // volatile row of Table 1
		{29, 1130}, // cached row of Table 1
	}
	for _, c := range cases {
		got := Mbps(4096, US(c.us))
		if got < c.want-5 || got > c.want+5 {
			t.Errorf("4KB page over %dus = %.0f Mb/s, paper says %.0f", c.us, got, c.want)
		}
	}
}

func TestSchedulerMonotonicProperty(t *testing.T) {
	// Property: for any set of event times, execution order is sorted and
	// the clock never decreases.
	f := func(times []uint16) bool {
		s := NewScheduler()
		var seen []Time
		for _, tt := range times {
			at := Time(tt)
			s.At(at, func() { seen = append(seen, s.Now()) })
		}
		s.Run(0)
		prev := Time(-1)
		for _, at := range seen {
			if at < prev {
				return false
			}
			prev = at
		}
		return len(seen) == len(times)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
