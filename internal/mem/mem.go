// Package mem implements the simulated physical memory: a pool of page
// frames backed by real Go byte slices. Because frames hold actual bytes,
// "zero-copy" transfer in this repository is genuine — when two simulated
// protection domains map the same frame, they read and write the very same
// storage — and data-integrity tests can verify byte-for-byte delivery
// through arbitrary chains of mappings.
//
// Frame allocation, freeing, and zero-filling charge their calibrated costs
// to the host clock at the call sites in package vm; this package is pure
// mechanism.
package mem

import (
	"errors"
	"fmt"
	"sync"

	"fbufs/internal/machine"
)

// FrameNum identifies a physical page frame.
type FrameNum int32

// NoFrame is the sentinel for "no frame".
const NoFrame FrameNum = -1

// Frame is one physical page.
type Frame struct {
	// Data is the page's storage; always machine.PageSize bytes.
	Data []byte
	// RefCount is the number of address-space mappings referencing the
	// frame. A frame returns to the free list only when this drops to 0.
	RefCount int
	// Zeroed records that the frame is known to contain only zero bytes,
	// so a security clear can be skipped.
	Zeroed bool
	free   bool
}

// ErrOutOfMemory is returned when the frame pool is exhausted.
var ErrOutOfMemory = errors.New("mem: out of physical memory")

// PhysMem is a fixed-size pool of page frames.
//
// Concurrency contract: the pool bookkeeping (free list, refcounts, the
// allocated count) is guarded by an internal mutex, so Alloc/AddRef/DecRef
// may be called from concurrent workers. Frame *contents* (Data, Zeroed)
// are caller-synchronized: a frame's bytes are owned by whoever holds a
// mapping to it, exactly as on real hardware, and the simulator's upper
// layers serialize access per fbuf.
type PhysMem struct {
	mu     sync.Mutex
	frames []Frame
	// free is a LIFO stack of free frame numbers. LIFO maximizes the
	// chance a re-allocated frame is still cache- and zero-state-warm,
	// mirroring the paper's LIFO fbuf free lists.
	free []FrameNum

	allocated int
}

// New creates a physical memory of nframes page frames.
func New(nframes int) *PhysMem {
	pm := &PhysMem{
		frames: make([]Frame, nframes),
		free:   make([]FrameNum, 0, nframes),
	}
	// Push in reverse so frame 0 is allocated first; storage is allocated
	// lazily on first allocation of each frame. Frames start dirty: a
	// machine that has been running holds stale data in free frames, so
	// security clears are genuinely needed — experiments must not dodge
	// clearing costs by drawing from never-used memory.
	for i := nframes - 1; i >= 0; i-- {
		pm.frames[i].free = true
		pm.free = append(pm.free, FrameNum(i))
	}
	return pm
}

// NumFrames returns the pool size.
func (pm *PhysMem) NumFrames() int { return len(pm.frames) }

// FreeFrames returns the number of currently free frames.
func (pm *PhysMem) FreeFrames() int {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return len(pm.free)
}

// Allocated returns the number of frames currently in use.
func (pm *PhysMem) Allocated() int {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.allocated
}

// Alloc takes a frame from the free list with an initial reference count of
// one. The frame's previous contents are preserved (clearing is an explicit,
// costed operation — the paper charges 57 us to zero a page and fbuf caching
// exists to avoid exactly that).
func (pm *PhysMem) Alloc() (FrameNum, error) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if len(pm.free) == 0 {
		return NoFrame, ErrOutOfMemory
	}
	fn := pm.free[len(pm.free)-1]
	pm.free = pm.free[:len(pm.free)-1]
	f := &pm.frames[fn]
	if f.Data == nil {
		f.Data = make([]byte, machine.PageSize)
	}
	f.free = false
	f.RefCount = 1
	pm.allocated++
	return fn, nil
}

// Frame returns the frame structure for fn. It panics on an invalid frame
// number; callers hold frame numbers only through the VM layer, so an
// invalid number is a simulator bug, not a simulated-program error.
func (pm *PhysMem) Frame(fn FrameNum) *Frame {
	if fn < 0 || int(fn) >= len(pm.frames) {
		panic(fmt.Sprintf("mem: invalid frame %d", fn))
	}
	return &pm.frames[fn]
}

// RefCount returns the frame's current mapping reference count under the
// pool lock (the COW resolver's sharing test).
func (pm *PhysMem) RefCount(fn FrameNum) int {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.Frame(fn).RefCount
}

// AddRef increments a frame's reference count (a new mapping shares it).
func (pm *PhysMem) AddRef(fn FrameNum) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	f := pm.Frame(fn)
	if f.free {
		panic(fmt.Sprintf("mem: AddRef on free frame %d", fn))
	}
	f.RefCount++
}

// DecRef decrements a frame's reference count, returning it to the free
// list when the count reaches zero. It reports whether the frame was freed.
func (pm *PhysMem) DecRef(fn FrameNum) bool {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	f := pm.Frame(fn)
	if f.free {
		panic(fmt.Sprintf("mem: DecRef on free frame %d", fn))
	}
	if f.RefCount <= 0 {
		panic(fmt.Sprintf("mem: refcount underflow on frame %d", fn))
	}
	f.RefCount--
	if f.RefCount > 0 {
		return false
	}
	f.free = true
	pm.allocated--
	pm.free = append(pm.free, fn)
	return true
}

// Zero fills the frame with zero bytes and marks it Zeroed. The 57 us cost
// is charged by the caller.
func (pm *PhysMem) Zero(fn FrameNum) {
	f := pm.Frame(fn)
	for i := range f.Data {
		f.Data[i] = 0
	}
	f.Zeroed = true
}

// Copy copies the contents of frame src to frame dst (one page copy; cost
// charged by the caller). The destination is no longer known-zero.
func (pm *PhysMem) Copy(dst, src FrameNum) {
	d, s := pm.Frame(dst), pm.Frame(src)
	copy(d.Data, s.Data)
	d.Zeroed = s.Zeroed
}

// Write stores data into the frame at the given offset. The frame is no
// longer known-zero. It panics if the write overruns the page; the VM layer
// splits accesses at page boundaries.
func (pm *PhysMem) Write(fn FrameNum, offset int, data []byte) {
	f := pm.Frame(fn)
	if offset < 0 || offset+len(data) > len(f.Data) {
		panic("mem: write outside frame")
	}
	copy(f.Data[offset:], data)
	if len(data) > 0 {
		f.Zeroed = false
	}
}

// Read copies bytes out of the frame at the given offset into buf.
func (pm *PhysMem) Read(fn FrameNum, offset int, buf []byte) {
	f := pm.Frame(fn)
	if offset < 0 || offset+len(buf) > len(f.Data) {
		panic("mem: read outside frame")
	}
	copy(buf, f.Data[offset:])
}

// CheckInvariants validates internal consistency: every frame is either on
// the free list with refcount 0, or allocated with refcount > 0, and the
// free list has no duplicates. Tests call this after operation sequences,
// at quiescence (no concurrent pool mutation).
func (pm *PhysMem) CheckInvariants() error {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	onFree := make(map[FrameNum]bool, len(pm.free))
	for _, fn := range pm.free {
		if onFree[fn] {
			return fmt.Errorf("mem: frame %d appears twice on free list", fn)
		}
		onFree[fn] = true
	}
	allocated := 0
	for i := range pm.frames {
		fn := FrameNum(i)
		f := &pm.frames[i]
		switch {
		case f.free && !onFree[fn]:
			return fmt.Errorf("mem: free frame %d missing from free list", fn)
		case !f.free && onFree[fn]:
			return fmt.Errorf("mem: allocated frame %d on free list", fn)
		case f.free && f.RefCount != 0:
			return fmt.Errorf("mem: free frame %d has refcount %d", fn, f.RefCount)
		case !f.free && f.RefCount <= 0:
			return fmt.Errorf("mem: allocated frame %d has refcount %d", fn, f.RefCount)
		}
		if !f.free {
			allocated++
		}
	}
	if allocated != pm.allocated {
		return fmt.Errorf("mem: allocated count %d != actual %d", pm.allocated, allocated)
	}
	return nil
}
