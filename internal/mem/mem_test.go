package mem

import (
	"testing"
	"testing/quick"

	"fbufs/internal/machine"
)

func TestAllocFree(t *testing.T) {
	pm := New(4)
	if pm.NumFrames() != 4 || pm.FreeFrames() != 4 {
		t.Fatalf("fresh pool: %d/%d", pm.FreeFrames(), pm.NumFrames())
	}
	fn, err := pm.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	f := pm.Frame(fn)
	if f.RefCount != 1 || len(f.Data) != machine.PageSize {
		t.Fatalf("fresh frame refcount=%d len=%d", f.RefCount, len(f.Data))
	}
	if pm.Allocated() != 1 {
		t.Fatalf("allocated %d", pm.Allocated())
	}
	if !pm.DecRef(fn) {
		t.Fatal("DecRef to zero should free")
	}
	if pm.FreeFrames() != 4 {
		t.Fatalf("free count %d after free", pm.FreeFrames())
	}
}

func TestExhaustion(t *testing.T) {
	pm := New(2)
	if _, err := pm.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := pm.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := pm.Alloc(); err != ErrOutOfMemory {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
}

func TestSharing(t *testing.T) {
	pm := New(2)
	fn, _ := pm.Alloc()
	pm.AddRef(fn)
	if pm.Frame(fn).RefCount != 2 {
		t.Fatalf("refcount %d", pm.Frame(fn).RefCount)
	}
	if pm.DecRef(fn) {
		t.Fatal("first DecRef must not free a shared frame")
	}
	if !pm.DecRef(fn) {
		t.Fatal("last DecRef must free")
	}
}

func TestZeroAndDirtyTracking(t *testing.T) {
	pm := New(1)
	fn, _ := pm.Alloc()
	if pm.Frame(fn).Zeroed {
		t.Fatal("fresh frames must start dirty (stale machine memory)")
	}
	pm.Write(fn, 100, []byte{1, 2, 3})
	if pm.Frame(fn).Zeroed {
		t.Fatal("written frame still marked zero")
	}
	buf := make([]byte, 3)
	pm.Read(fn, 100, buf)
	if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
		t.Fatalf("read back %v", buf)
	}
	pm.Zero(fn)
	if !pm.Frame(fn).Zeroed {
		t.Fatal("zeroed frame not marked")
	}
	pm.Read(fn, 100, buf)
	if buf[0] != 0 {
		t.Fatal("zero fill did not stick")
	}
}

func TestDirtyFrameReuseKeepsContents(t *testing.T) {
	// Frames are not cleared on alloc: clearing is an explicit costed op.
	pm := New(1)
	fn, _ := pm.Alloc()
	pm.Write(fn, 0, []byte{0xAA})
	pm.DecRef(fn)
	fn2, _ := pm.Alloc()
	if fn2 != fn {
		t.Fatalf("LIFO reuse expected frame %d, got %d", fn, fn2)
	}
	b := make([]byte, 1)
	pm.Read(fn2, 0, b)
	if b[0] != 0xAA {
		t.Fatal("frame contents were implicitly cleared")
	}
	if pm.Frame(fn2).Zeroed {
		t.Fatal("dirty recycled frame marked zeroed")
	}
}

func TestCopy(t *testing.T) {
	pm := New(2)
	a, _ := pm.Alloc()
	b, _ := pm.Alloc()
	pm.Write(a, 0, []byte("fbuf"))
	pm.Copy(b, a)
	buf := make([]byte, 4)
	pm.Read(b, 0, buf)
	if string(buf) != "fbuf" {
		t.Fatalf("copy read back %q", buf)
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	cases := map[string]func(){
		"DecRef-free-frame": func() { pm := New(1); fn, _ := pm.Alloc(); pm.DecRef(fn); pm.DecRef(fn) },
		"AddRef-free-frame": func() { pm := New(1); fn, _ := pm.Alloc(); pm.DecRef(fn); pm.AddRef(fn) },
		"invalid-frame":     func() { New(1).Frame(999) },
		"oob-write": func() {
			pm := New(1)
			f, _ := pm.Alloc()
			pm.Write(f, machine.PageSize-1, []byte{1, 2})
		},
	}
	for name, run := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			run()
		}()
	}
}

func TestInvariantsUnderRandomOps(t *testing.T) {
	// Property: any sequence of alloc/addref/decref keeps the pool
	// consistent.
	f := func(ops []uint8) bool {
		pm := New(8)
		var live []FrameNum
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if fn, err := pm.Alloc(); err == nil {
					live = append(live, fn)
				}
			case 1:
				if len(live) > 0 {
					pm.AddRef(live[int(op)%len(live)])
					live = append(live, live[int(op)%len(live)])
				}
			case 2:
				if len(live) > 0 {
					i := int(op) % len(live)
					pm.DecRef(live[i])
					live = append(live[:i], live[i+1:]...)
				}
			}
			if err := pm.CheckInvariants(); err != nil {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
