package ipc

import (
	"errors"
	"testing"

	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

type rig struct {
	clk *simtime.Clock
	sys *vm.System
	reg *domain.Registry
	rt  *Router
}

func newRig() *rig {
	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), 64, vm.ClockSink{Clock: clk})
	reg := domain.NewRegistry(sys)
	return &rig{clk: clk, sys: sys, reg: reg, rt: NewRouter(sys)}
}

func TestCallRoundTrip(t *testing.T) {
	r := newRig()
	server := r.reg.New("server")
	client := r.reg.New("client")
	port := r.rt.Register(server, func(from *domain.Domain, msg *Message) (*Message, error) {
		if from != client {
			t.Errorf("handler saw caller %v", from)
		}
		if msg.Op != "ping" {
			t.Errorf("op %q", msg.Op)
		}
		return &Message{Op: "pong"}, nil
	})
	reply, err := r.rt.Call(client, port, &Message{Op: "ping"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Op != "pong" {
		t.Fatalf("reply %q", reply.Op)
	}
	if r.rt.Calls != 1 {
		t.Fatalf("calls %d", r.rt.Calls)
	}
}

func TestCrossDomainLatencyCharged(t *testing.T) {
	r := newRig()
	server := r.reg.New("server")
	client := r.reg.New("client")
	port := r.rt.Register(server, func(from *domain.Domain, msg *Message) (*Message, error) {
		return nil, nil
	})
	start := r.clk.Now()
	if _, err := r.rt.Call(client, port, nil); err != nil {
		t.Fatal(err)
	}
	if d := r.clk.Now() - start; d != r.sys.Cost.IPCLatency {
		t.Fatalf("charged %v, want %v", d, r.sys.Cost.IPCLatency)
	}
}

func TestDescriptorMarshallingCharged(t *testing.T) {
	r := newRig()
	server := r.reg.New("server")
	client := r.reg.New("client")
	port := r.rt.Register(server, func(from *domain.Domain, msg *Message) (*Message, error) {
		return nil, nil
	})
	start := r.clk.Now()
	r.rt.Call(client, port, &Message{Descriptors: 4})
	want := r.sys.Cost.IPCLatency + 4*r.sys.Cost.IPCPerFbuf
	if d := r.clk.Now() - start; d != want {
		t.Fatalf("charged %v, want %v", d, want)
	}
}

func TestSameDomainCallIsFree(t *testing.T) {
	// Within one protection domain an invocation is a procedure call —
	// the basis of the paper's "single domain" baseline configurations.
	r := newRig()
	d := r.reg.New("monolith")
	port := r.rt.Register(d, func(from *domain.Domain, msg *Message) (*Message, error) {
		return nil, nil
	})
	start := r.clk.Now()
	if _, err := r.rt.Call(d, port, &Message{Descriptors: 10}); err != nil {
		t.Fatal(err)
	}
	if d := r.clk.Now() - start; d != 0 {
		t.Fatalf("same-domain call charged %v", d)
	}
	if r.rt.Calls != 0 {
		t.Fatal("same-domain call counted as IPC")
	}
}

func TestReplyHookFiresOnCrossDomainOnly(t *testing.T) {
	r := newRig()
	server := r.reg.New("server")
	client := r.reg.New("client")
	var pairs [][2]*domain.Domain
	r.rt.OnReply(func(replier, caller *domain.Domain) {
		pairs = append(pairs, [2]*domain.Domain{replier, caller})
	})
	port := r.rt.Register(server, func(from *domain.Domain, msg *Message) (*Message, error) {
		return nil, nil
	})
	r.rt.Call(client, port, nil)
	if len(pairs) != 1 || pairs[0][0] != server || pairs[0][1] != client {
		t.Fatalf("hooks %v", pairs)
	}
	selfPort := r.rt.Register(client, func(from *domain.Domain, msg *Message) (*Message, error) {
		return nil, nil
	})
	r.rt.Call(client, selfPort, nil)
	if len(pairs) != 1 {
		t.Fatal("same-domain call fired reply hook")
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	r := newRig()
	server := r.reg.New("server")
	client := r.reg.New("client")
	boom := errors.New("boom")
	port := r.rt.Register(server, func(from *domain.Domain, msg *Message) (*Message, error) {
		return nil, boom
	})
	if _, err := r.rt.Call(client, port, nil); !errors.Is(err, boom) {
		t.Fatalf("err %v", err)
	}
}

func TestUnknownPort(t *testing.T) {
	r := newRig()
	client := r.reg.New("client")
	if _, err := r.rt.Call(client, 999, nil); err == nil {
		t.Fatal("unknown port accepted")
	}
}

func TestDeadOwnerRejected(t *testing.T) {
	r := newRig()
	server := r.reg.New("server")
	client := r.reg.New("client")
	port := r.rt.Register(server, func(from *domain.Domain, msg *Message) (*Message, error) {
		return nil, nil
	})
	r.reg.Terminate(server)
	if _, err := r.rt.Call(client, port, nil); err == nil {
		t.Fatal("call to dead domain accepted")
	}
}

func TestUnregister(t *testing.T) {
	r := newRig()
	server := r.reg.New("server")
	client := r.reg.New("client")
	port := r.rt.Register(server, func(from *domain.Domain, msg *Message) (*Message, error) {
		return nil, nil
	})
	if r.rt.Owner(port) != server {
		t.Fatal("owner lookup")
	}
	r.rt.Unregister(port)
	if r.rt.Owner(port) != nil {
		t.Fatal("owner after unregister")
	}
	if _, err := r.rt.Call(client, port, nil); err == nil {
		t.Fatal("call to unregistered port accepted")
	}
}
