// Package ipc implements the simulated cross-domain invocation facility
// (Mach IPC plus the x-kernel proxy layer, as used in the paper's
// evaluation platform). It provides synchronous port-based RPC between
// protection domains on one host, charging the calibrated control-transfer
// latency, and a piggyback hook through which the fbuf manager attaches
// deallocation notices to replies (paper section 3.3).
//
// The data-transfer cost of a call is NOT charged here: what a message
// *carries* (copied bytes, fbuf descriptors, an integrated-DAG root
// reference) is costed by the transfer facility that prepared it. ipc
// charges only control transfer and per-descriptor marshalling.
package ipc

import (
	"fmt"

	"fbufs/internal/domain"
	"fbufs/internal/obs/span"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

// PortID names a service endpoint within one host.
type PortID int

// Message is a cross-domain message. Exactly one payload style is typically
// used per call:
//
//   - Inline: small arguments copied by value (already costed by sender).
//   - Descriptors: the number of out-of-line fbuf descriptors carried, each
//     charged IPCPerFbuf (the integrated optimization reduces this to 1).
//   - Body: simulator-level payload handed to the receiver. This is Go
//     plumbing, not simulated data; anything the receiver reads through it
//     must be readable through its own address space or the access will
//     fault there.
type Message struct {
	Op          string
	Inline      []byte
	Descriptors int
	Body        interface{}
}

// Handler serves calls on a port, in the context of the port's domain.
type Handler func(from *domain.Domain, msg *Message) (*Message, error)

// ReplyHook is invoked after a handler returns and may attach piggybacked
// state to the reply path. The fbuf manager uses it to deliver pending
// deallocation notices destined for the caller ("the reply message is used
// to carry deallocation notices from this list").
type ReplyHook func(replier, caller *domain.Domain)

// Router connects domains on one host.
type Router struct {
	sys   *vm.System
	ports map[PortID]*port
	next  PortID

	replyHooks []ReplyHook

	// CrossingSurcharge is added to every cross-domain call. The
	// end-to-end experiments use it to model the instruction-cache and
	// TLB pressure of duplicated library text once a third domain joins
	// a data path (paper section 4: "we attribute this penalty to the
	// exhaustion of cache and TLB when a third domain is added").
	CrossingSurcharge simtime.Duration

	// Calls counts cross-domain calls (same-domain calls are free and
	// uncounted).
	Calls uint64
}

type port struct {
	id      PortID
	owner   *domain.Domain
	handler Handler
}

// NewRouter creates a router charging IPC costs to sys's cost sink.
func NewRouter(sys *vm.System) *Router {
	return &Router{sys: sys, ports: make(map[PortID]*port), next: 1}
}

// Register creates a port owned by d, served by handler.
func (r *Router) Register(d *domain.Domain, handler Handler) PortID {
	id := r.next
	r.next++
	r.ports[id] = &port{id: id, owner: d, handler: handler}
	return id
}

// Unregister removes a port (domain teardown).
func (r *Router) Unregister(id PortID) { delete(r.ports, id) }

// OnReply registers a reply hook.
func (r *Router) OnReply(h ReplyHook) { r.replyHooks = append(r.replyHooks, h) }

// Owner returns the domain owning the port, or nil.
func (r *Router) Owner(id PortID) *domain.Domain {
	if p, ok := r.ports[id]; ok {
		return p.owner
	}
	return nil
}

// Call performs a synchronous RPC from domain `from` to the port. The full
// round-trip control-transfer latency (IPCLatency) plus per-descriptor
// marshalling is charged; then the handler runs; then reply hooks fire.
//
// A call to a port within the caller's own domain is a plain procedure call
// and charges nothing — this is what makes the paper's "single domain"
// baseline configurations free of IPC cost.
func (r *Router) Call(from *domain.Domain, id PortID, msg *Message) (*Message, error) {
	p, ok := r.ports[id]
	if !ok {
		return nil, fmt.Errorf("ipc: no such port %d", id)
	}
	if p.owner.Dead() {
		return nil, fmt.Errorf("ipc: port %d owner %s is dead", id, p.owner)
	}
	if msg == nil {
		msg = &Message{}
	}
	crossing := p.owner != from
	if crossing {
		if o := r.sys.Obs; o != nil {
			o.SpanBegin(span.StageIPC, "ipc", int(p.owner.ID)+r.sys.TraceBase, int64(msg.Descriptors))
			defer o.SpanEnd()
		}
		r.Calls++
		cost := r.sys.Cost.IPCLatency + r.CrossingSurcharge
		if msg.Descriptors > 0 {
			cost += r.sys.Cost.IPCPerFbuf * simtime.Duration(msg.Descriptors)
		}
		r.sys.Sink().Charge(cost)
	}
	reply, err := p.handler(from, msg)
	if crossing {
		for _, h := range r.replyHooks {
			h(p.owner, from)
		}
	}
	return reply, err
}
