// Package ipc implements the simulated cross-domain invocation facility
// (Mach IPC plus the x-kernel proxy layer, as used in the paper's
// evaluation platform). It provides synchronous port-based RPC between
// protection domains on one host, charging the calibrated control-transfer
// latency, and a piggyback hook through which the fbuf manager attaches
// deallocation notices to replies (paper section 3.3).
//
// The data-transfer cost of a call is NOT charged here: what a message
// *carries* (copied bytes, fbuf descriptors, an integrated-DAG root
// reference) is costed by the transfer facility that prepared it. ipc
// charges only control transfer and per-descriptor marshalling.
package ipc

import (
	"fmt"

	"fbufs/internal/domain"
	"fbufs/internal/obs/span"
	"fbufs/internal/rings"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

// PortID names a service endpoint within one host.
type PortID int

// Message is a cross-domain message. Exactly one payload style is typically
// used per call:
//
//   - Inline: small arguments copied by value (already costed by sender).
//   - Descriptors: the number of out-of-line fbuf descriptors carried, each
//     charged IPCPerFbuf (the integrated optimization reduces this to 1).
//   - Body: simulator-level payload handed to the receiver. This is Go
//     plumbing, not simulated data; anything the receiver reads through it
//     must be readable through its own address space or the access will
//     fault there.
type Message struct {
	Op          string
	Inline      []byte
	Descriptors int
	Body        interface{}
}

// Handler serves calls on a port, in the context of the port's domain.
type Handler func(from *domain.Domain, msg *Message) (*Message, error)

// ReplyHook is invoked after a handler returns and may attach piggybacked
// state to the reply path. The fbuf manager uses it to deliver pending
// deallocation notices destined for the caller ("the reply message is used
// to carry deallocation notices from this list").
type ReplyHook func(replier, caller *domain.Domain)

// NoticeSource pops the pending deallocation-notice batch held at holder
// for fbufs owned by owner, returning the opaque batch and its size. On the
// ring path it replaces the ReplyHook piggyback: the batch rides one
// coalesced completion entry. Registered by xkernel.NewEnv (the router
// cannot import core).
type NoticeSource func(holder, owner *domain.Domain) (batch interface{}, n int)

// NoticeSink retires a batch previously popped by a NoticeSource (recycles
// the fbufs). Invoked when the caller drains its completion ring, or
// directly when the completion ring is full.
type NoticeSink func(batch interface{})

// Router connects domains on one host.
type Router struct {
	sys   *vm.System
	ports map[PortID]*port
	next  PortID

	replyHooks []ReplyHook

	// CrossingSurcharge is added to every cross-domain call. The
	// end-to-end experiments use it to model the instruction-cache and
	// TLB pressure of duplicated library text once a third domain joins
	// a data path (paper section 4: "we attribute this penalty to the
	// exhaustion of cache and TLB when a third domain is added").
	CrossingSurcharge simtime.Duration

	// Calls counts cross-domain calls charged the full control-transfer
	// cost (same-domain calls are free and uncounted; ring-routed calls
	// are counted by their pair's doorbell statistics instead).
	Calls uint64

	// Ring mode (the syscall-free data plane). ringNow is non-nil once
	// EnableRings ran; ringPairs holds one directional rings.Pair per
	// attached (from, to) domain pair, and ringList preserves creation
	// order for deterministic aggregation.
	ringNow      func() simtime.Time
	ringPairs    map[ringKey]*rings.Pair
	ringList     []*rings.Pair
	noticeSource NoticeSource
	noticeSink   NoticeSink
}

// ringKey identifies one direction of a domain pair's ring attachment.
type ringKey struct {
	from, to *domain.Domain
}

type port struct {
	id      PortID
	owner   *domain.Domain
	handler Handler
}

// NewRouter creates a router charging IPC costs to sys's cost sink.
func NewRouter(sys *vm.System) *Router {
	return &Router{sys: sys, ports: make(map[PortID]*port), next: 1}
}

// Register creates a port owned by d, served by handler.
func (r *Router) Register(d *domain.Domain, handler Handler) PortID {
	id := r.next
	r.next++
	r.ports[id] = &port{id: id, owner: d, handler: handler}
	return id
}

// Unregister removes a port (domain teardown).
func (r *Router) Unregister(id PortID) { delete(r.ports, id) }

// OnReply registers a reply hook.
func (r *Router) OnReply(h ReplyHook) { r.replyHooks = append(r.replyHooks, h) }

// EnableRings switches the router into ring mode: domain pairs attached
// with AttachRing route their calls through shared-memory rings, charging
// only doorbells. now supplies the virtual clock the spin-then-block
// policy runs on. Call before any AttachRing.
func (r *Router) EnableRings(now func() simtime.Time) {
	r.ringNow = now
	if r.ringPairs == nil {
		r.ringPairs = make(map[ringKey]*rings.Pair)
	}
}

// RingsEnabled reports whether EnableRings has run.
func (r *Router) RingsEnabled() bool { return r.ringNow != nil }

// SetNoticeHooks registers the deallocation-notice source and sink used by
// the ring path's coalesced completion entries.
func (r *Router) SetNoticeHooks(src NoticeSource, sink NoticeSink) {
	r.noticeSource = src
	r.noticeSink = sink
}

// AttachRing maps a ring pair for calls from→to (one direction; attach both
// for a bidirectional path). No-op unless ring mode is enabled, idempotent
// per pair. The doorbell cost is latched from the current IPC cost plus
// crossing surcharge, matching what a legacy call would have charged.
func (r *Router) AttachRing(from, to *domain.Domain) *rings.Pair {
	if r.ringNow == nil || from == nil || to == nil || from == to {
		return nil
	}
	k := ringKey{from: from, to: to}
	if pr, ok := r.ringPairs[k]; ok {
		return pr
	}
	pr, err := rings.NewPair(r.sys, from.Name+"->"+to.Name, 0, r.ringNow,
		int(from.ID)+r.sys.TraceBase, int(to.ID)+r.sys.TraceBase)
	if err != nil {
		return nil
	}
	pr.DoorbellCost = r.sys.Cost.IPCLatency + r.CrossingSurcharge
	r.ringPairs[k] = pr
	r.ringList = append(r.ringList, pr)
	return pr
}

// RingStats aggregates the counters of every attached ring pair in
// creation order. Charged crossings under ring mode are Calls (fallback
// path) plus RingStats().Doorbells.
func (r *Router) RingStats() rings.Stats {
	var s rings.Stats
	for _, pr := range r.ringList {
		s.Add(pr.Stats())
	}
	return s
}

// Owner returns the domain owning the port, or nil.
func (r *Router) Owner(id PortID) *domain.Domain {
	if p, ok := r.ports[id]; ok {
		return p.owner
	}
	return nil
}

// Call performs a synchronous RPC from domain `from` to the port. The full
// round-trip control-transfer latency (IPCLatency) plus per-descriptor
// marshalling is charged; then the handler runs; then reply hooks fire.
//
// A call to a port within the caller's own domain is a plain procedure call
// and charges nothing — this is what makes the paper's "single domain"
// baseline configurations free of IPC cost.
func (r *Router) Call(from *domain.Domain, id PortID, msg *Message) (*Message, error) {
	p, ok := r.ports[id]
	if !ok {
		return nil, fmt.Errorf("ipc: no such port %d", id)
	}
	if p.owner.Dead() {
		return nil, fmt.Errorf("ipc: port %d owner %s is dead", id, p.owner)
	}
	if msg == nil {
		msg = &Message{}
	}
	crossing := p.owner != from
	if crossing {
		if pr := r.ringPairs[ringKey{from: from, to: p.owner}]; pr != nil {
			if reply, err, ok := r.ringCall(pr, from, p, msg); ok {
				return reply, err
			}
			// Ring full: fall through to the always-available legacy
			// charged path.
		}
	}
	if crossing {
		if o := r.sys.Obs; o != nil {
			o.SpanBegin(span.StageIPC, "ipc", int(p.owner.ID)+r.sys.TraceBase, int64(msg.Descriptors))
			defer o.SpanEnd()
		}
		r.Calls++
		cost := r.sys.Cost.IPCLatency + r.CrossingSurcharge
		if msg.Descriptors > 0 {
			cost += r.sys.Cost.IPCPerFbuf * simtime.Duration(msg.Descriptors)
		}
		r.sys.Sink().Charge(cost)
	}
	reply, err := p.handler(from, msg)
	if crossing {
		for _, h := range r.replyHooks {
			h(p.owner, from)
		}
	}
	return reply, err
}

// ringCall routes one crossing through the pair's rings. The submission
// carries the descriptors through shared memory (no IPCPerFbuf
// marshalling); the drain runs the handler in the consumer's context; the
// acknowledgement rides back as one completion entry per drained
// submission, carrying that drain's coalesced deallocation notices.
// Returns ok=false (nothing charged, nothing submitted) when the
// submission ring is full and the caller must use the legacy path.
func (r *Router) ringCall(pr *rings.Pair, from *domain.Domain, p *port, msg *Message) (*Message, error, bool) {
	if err := pr.Submit(rings.Entry{Op: msg.Op, Descriptors: msg.Descriptors, Body: msg}); err != nil {
		return nil, nil, false
	}
	// The consumer drains its backlog in order; calls are synchronous, so
	// the entry just submitted is always included. Each drained entry is
	// served and acknowledged with one completion carrying the notices
	// that accumulated at the replier for this caller.
	var reply *Message
	var herr error
	pr.Drain(func(e rings.Entry) error {
		m := e.Body.(*Message)
		rep, err := p.handler(from, m)
		if m == msg {
			reply, herr = rep, err
		}
		var batch interface{}
		n := 0
		if r.noticeSource != nil {
			batch, n = r.noticeSource(p.owner, from)
		}
		if cerr := pr.Complete(rings.Completion{Op: m.Op, Notices: n, Payload: batch}); cerr != nil {
			// Completion ring full: retire the notices directly. The
			// legacy piggyback was free too, so nothing extra is charged.
			if n > 0 && r.noticeSink != nil {
				r.noticeSink(batch)
			}
		}
		// A handler error belongs to this entry's caller alone; keep
		// draining the backlog.
		return nil
	})
	// The caller reaps its acknowledgements and retires the coalesced
	// notice batches they carry.
	pr.DrainCompletions(func(c rings.Completion) {
		if c.Notices > 0 && r.noticeSink != nil {
			r.noticeSink(c.Payload)
		}
	})
	return reply, herr, true
}
