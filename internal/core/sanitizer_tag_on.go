//go:build fbsan

package core

// fbsanBuildTag enables the sanitizer for every Manager in builds made
// with -tags fbsan (the CI fbsan job); see also the FBSAN=1 env gate.
const fbsanBuildTag = true
