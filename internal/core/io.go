package core

import (
	"fmt"

	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/mem"
	"fbufs/internal/vm"
)

// Write stores data into the fbuf at the given byte offset, acting as
// domain d. All protection checking happens in the simulated VM: a receiver
// or a secured originator faults exactly as the paper specifies.
func (f *Fbuf) Write(d *domain.Domain, off int, data []byte) error {
	if off < 0 || off+len(data) > f.Size() {
		return fmt.Errorf("core: write [%d,%d) outside fbuf of %d bytes", off, off+len(data), f.Size())
	}
	return d.AS.Write(f.Base+vm.VA(off), data)
}

// Read copies bytes out of the fbuf at the given offset, acting as d.
func (f *Fbuf) Read(d *domain.Domain, off int, buf []byte) error {
	if off < 0 || off+len(buf) > f.Size() {
		return fmt.Errorf("core: read [%d,%d) outside fbuf of %d bytes", off, off+len(buf), f.Size())
	}
	return d.AS.Read(f.Base+vm.VA(off), buf)
}

// TouchWrite writes one word in each page of the fbuf — the originator-side
// access pattern of the paper's first experiment ("writes one word in each
// VM page of the associated fbuf").
func (f *Fbuf) TouchWrite(d *domain.Domain, word uint32) error {
	for i := 0; i < f.Pages; i++ {
		if err := d.AS.TouchWrite(f.Base+vm.VA(i*machine.PageSize), word); err != nil {
			return err
		}
	}
	return nil
}

// TouchRead reads one word in each page — the receiver-side pattern ("the
// dummy protocol touches (reads) one word in each page").
func (f *Fbuf) TouchRead(d *domain.Domain) error {
	for i := 0; i < f.Pages; i++ {
		if _, err := d.AS.TouchRead(f.Base + vm.VA(i*machine.PageSize)); err != nil {
			return err
		}
	}
	return nil
}

// DMAWrite stores data into the fbuf bypassing the MMU, as a bus-master
// device does (the Osiris board DMAs reassembled cells straight into main
// memory). No CPU cost is charged here — bus occupancy is modelled by the
// caller — and no protection applies; devices are configured by the trusted
// kernel. The target pages must be populated.
func (f *Fbuf) DMAWrite(off int, data []byte) error {
	if s := f.mgr.san; s != nil {
		s.checkDMA(f, true)
	}
	if off < 0 || off+len(data) > f.Size() {
		return fmt.Errorf("core: DMA write [%d,%d) outside fbuf of %d bytes", off, off+len(data), f.Size())
	}
	for len(data) > 0 {
		page := off / machine.PageSize
		po := off % machine.PageSize
		if f.frames[page] < 0 {
			return fmt.Errorf("core: DMA to unpopulated page %d of fbuf %#x", page, uint64(f.Base))
		}
		n := machine.PageSize - po
		if n > len(data) {
			n = len(data)
		}
		f.mgr.Sys.Mem.Write(f.frames[page], po, data[:n])
		data = data[n:]
		off += n
	}
	return nil
}

// DMARead copies data out of the fbuf bypassing the MMU (device transmit).
func (f *Fbuf) DMARead(off int, buf []byte) error {
	if s := f.mgr.san; s != nil {
		s.checkDMA(f, false)
	}
	if off < 0 || off+len(buf) > f.Size() {
		return fmt.Errorf("core: DMA read [%d,%d) outside fbuf of %d bytes", off, off+len(buf), f.Size())
	}
	for len(buf) > 0 {
		page := off / machine.PageSize
		po := off % machine.PageSize
		if f.frames[page] < 0 {
			return fmt.Errorf("core: DMA from unpopulated page %d of fbuf %#x", page, uint64(f.Base))
		}
		n := machine.PageSize - po
		if n > len(buf) {
			n = len(buf)
		}
		f.mgr.Sys.Mem.Read(f.frames[page], po, buf[:n])
		buf = buf[n:]
		off += n
	}
	return nil
}

// CheckInvariants validates facility-wide consistency; tests call it after
// operation sequences (including randomized ones). It is control-plane: the
// caller must guarantee quiescence (no in-flight data-plane operations, all
// magazines drained) — the walk reads chunk and free-list structure without
// holding every lock at once.
func (m *Manager) CheckInvariants() error {
	if err := m.Snapshot().Check(); err != nil {
		return err
	}
	seenChunk := make(map[int]bool)
	for _, idx := range m.freeChunks {
		if seenChunk[idx] {
			return fmt.Errorf("core: chunk %d twice on free list", idx)
		}
		seenChunk[idx] = true
		if m.chunks[idx] != nil {
			return fmt.Errorf("core: chunk %d both free and allocated", idx)
		}
	}
	for idx, c := range m.chunks {
		if c == nil {
			continue
		}
		if c.index != idx {
			return fmt.Errorf("core: chunk %d has index %d", idx, c.index)
		}
		used := 0
		for _, f := range c.fbufs {
			used += f.Pages
			if err := m.checkFbuf(f); err != nil {
				return err
			}
		}
		if used > c.used {
			return fmt.Errorf("core: chunk %d carved %d pages but used=%d", idx, used, c.used)
		}
	}
	for _, p := range m.paths {
		checkIdle := func(where string, f *Fbuf) error {
			if s := f.State(); s != StateFree {
				return fmt.Errorf("core: fbuf %#x on %s in state %s", uint64(f.Base), where, s)
			}
			if f.Refs() != 0 {
				return fmt.Errorf("core: %s fbuf %#x has %d refs", where, uint64(f.Base), f.Refs())
			}
			if f.Secured() {
				return fmt.Errorf("core: %s fbuf %#x still secured", where, uint64(f.Base))
			}
			return nil
		}
		for _, f := range p.free {
			if err := checkIdle("free list", f); err != nil {
				return err
			}
		}
		inventory := 0
		if d := p.depot; d != nil {
			inv := d.snapshotInventory()
			inventory = len(inv)
			for _, f := range inv {
				if err := checkIdle("depot", f); err != nil {
					return err
				}
				if f.Path != p {
					return fmt.Errorf("core: depot of path %d holds foreign fbuf %#x", p.ID, uint64(f.Base))
				}
			}
		}
		// Depot-inventory invariant: every StateFree fbuf carved for the
		// path is accounted for by exactly the free list plus the depot
		// (worker magazines must be drained at quiescence, the same
		// precondition the rest of this walk already assumes).
		stateFree := 0
		for _, c := range p.chunks {
			for _, f := range c.fbufs {
				if f.Path == p && f.State() == StateFree {
					stateFree++
				}
			}
		}
		if stateFree != len(p.free)+inventory {
			return fmt.Errorf("core: path %d inventory drift: %d StateFree fbufs in chunks but free list %d + depot %d",
				p.ID, stateFree, len(p.free), inventory)
		}
	}
	if m.san != nil {
		if err := m.san.audit(); err != nil {
			return err
		}
	}
	return m.Sys.Mem.CheckInvariants()
}

// CheckConverged is CheckInvariants plus quiescence: after a workload has
// finished — every transfer acknowledged, every notice delivered, every
// crashed domain's references drained — no fbuf may still be live or
// draining, no deallocation notice may still be queued, and no uncached
// fbuf may still be outstanding. The chaos harness calls this after each
// fault schedule: a violation means a fault leaked a buffer (a stranded
// reference, a notice that never travelled, a retained chunk that never
// drained) even though all the work completed.
func (m *Manager) CheckConverged() error {
	if err := m.CheckInvariants(); err != nil {
		return err
	}
	for _, c := range m.chunks {
		if c == nil {
			continue
		}
		for _, f := range c.fbufs {
			if s := f.State(); s != StateFree {
				return fmt.Errorf("core: not converged: fbuf %#x (path %v) still %s with %d refs",
					uint64(f.Base), f.Path, s, f.Refs())
			}
		}
	}
	for k, list := range m.notices {
		if len(list) > 0 {
			return fmt.Errorf("core: not converged: %d undelivered notices held at domain %d for domain %d",
				len(list), k.holder, k.owner)
		}
	}
	if n := len(m.uncached); n > 0 {
		return fmt.Errorf("core: not converged: %d uncached fbufs still outstanding", n)
	}
	// The crash/teardown rule of the epoch protocol: deferred frames may
	// only return to mem after the epoch drains, so a converged facility
	// has advanced past every park (call AdvanceEpoch after workers
	// quiesce; with no registered workers nothing ever parks).
	if n := m.EpochPending(); n > 0 {
		return fmt.Errorf("core: not converged: %d frames parked awaiting epoch retirement", n)
	}
	return nil
}

func (m *Manager) checkFbuf(f *Fbuf) error {
	for _, c := range f.refs {
		if c <= 0 {
			return fmt.Errorf("core: fbuf %#x has non-positive ref entry", uint64(f.Base))
		}
	}
	if f.State() == StateLive && len(f.refs) == 0 {
		return fmt.Errorf("core: live fbuf %#x has no refs", uint64(f.Base))
	}
	if f.State() == StateDrainingNotice && len(f.refs) != 0 {
		return fmt.Errorf("core: draining fbuf %#x still has refs", uint64(f.Base))
	}
	// Every attached frame must be referenced by at least the mappings we
	// believe exist.
	for i, fn := range f.frames {
		if fn < 0 {
			continue
		}
		fr := m.Sys.Mem.Frame(fn)
		if fr.RefCount <= 0 {
			return fmt.Errorf("core: fbuf %#x page %d frame %d unreferenced", uint64(f.Base), i, fn)
		}
	}
	return nil
}

// FrameAt returns the physical frame currently backing the given page of
// the fbuf (mem.NoFrame if reclaimed or unpopulated). Simulator plumbing
// for zero-copy views; simulated code reaches bytes only through domain
// address spaces or device DMA.
func (f *Fbuf) FrameAt(page int) mem.FrameNum {
	if page < 0 || page >= len(f.frames) {
		return mem.NoFrame
	}
	return f.frames[page]
}
