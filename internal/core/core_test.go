package core

import (
	"errors"
	"strings"
	"testing"

	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

// rig is a single simulated host for unit tests.
type rig struct {
	clk *simtime.Clock
	sys *vm.System
	reg *domain.Registry
	mgr *Manager
	src *domain.Domain
	net *domain.Domain
	dst *domain.Domain
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), 4096, vm.ClockSink{Clock: clk})
	reg := domain.NewRegistry(sys)
	mgr := NewManager(sys, reg)
	r := &rig{clk: clk, sys: sys, reg: reg, mgr: mgr}
	r.src = reg.New("src")
	r.net = reg.New("netserver")
	r.dst = reg.New("dst")
	for _, d := range []*domain.Domain{r.src, r.net, r.dst} {
		mgr.AttachDomain(d)
	}
	return r
}

func (r *rig) path(t *testing.T, opts Options, pages int, doms ...*domain.Domain) *DataPath {
	t.Helper()
	if len(doms) == 0 {
		doms = []*domain.Domain{r.src, r.dst}
	}
	p, err := r.mgr.NewPath("test", opts, pages, doms...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func (r *rig) check(t *testing.T) {
	t.Helper()
	if err := r.mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// oneHop runs the paper's first-experiment loop body once: allocate, write
// one word per page, transfer, receiver reads one word per page, receiver
// frees, originator frees.
func (r *rig) oneHop(t *testing.T, p *DataPath) {
	t.Helper()
	f, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.TouchWrite(r.src, 0xDEAD); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Transfer(f, r.src, r.dst); err != nil {
		t.Fatal(err)
	}
	if err := f.TouchRead(r.dst); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Free(f, r.dst); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Free(f, r.src); err != nil {
		t.Fatal(err)
	}
}

func TestDataIntegrityThroughTransfer(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 2)
	f, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, f.Size())
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	if err := f.Write(r.src, 0, payload); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Transfer(f, r.src, r.dst); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, f.Size())
	if err := f.Read(r.dst, 0, got); err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("byte %d: got %d want %d", i, got[i], payload[i])
		}
	}
	r.check(t)
}

func TestReceiverCannotWrite(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 1)
	f, _ := p.Alloc()
	if err := f.Write(r.src, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Transfer(f, r.src, r.dst); err != nil {
		t.Fatal(err)
	}
	err := f.Write(r.dst, 0, []byte("y"))
	var ae *vm.AccessError
	if !errors.As(err, &ae) {
		t.Fatalf("receiver write: %v", err)
	}
}

func TestVolatileOriginatorKeepsWriting(t *testing.T) {
	// Volatile fbufs: the receiver must assume contents may change
	// asynchronously until it secures the fbuf.
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 1)
	f, _ := p.Alloc()
	f.Write(r.src, 0, []byte("before"))
	r.mgr.Transfer(f, r.src, r.dst)
	if err := f.Write(r.src, 0, []byte("after!")); err != nil {
		t.Fatalf("volatile originator write blocked: %v", err)
	}
	got := make([]byte, 6)
	f.Read(r.dst, 0, got)
	if string(got) != "after!" {
		t.Fatalf("receiver sees %q", got)
	}
}

func TestSecureStopsOriginator(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 1)
	f, _ := p.Alloc()
	f.Write(r.src, 0, []byte("data"))
	r.mgr.Transfer(f, r.src, r.dst)
	if err := r.mgr.Secure(f, r.dst); err != nil {
		t.Fatal(err)
	}
	if !f.Secured() {
		t.Fatal("not marked secured")
	}
	if err := f.Write(r.src, 0, []byte("evil")); err == nil {
		t.Fatal("secured originator could write")
	}
	// Idempotent.
	if err := r.mgr.Secure(f, r.dst); err != nil {
		t.Fatal(err)
	}
	// Recycling restores write permission.
	r.mgr.Free(f, r.dst)
	r.mgr.Free(f, r.src)
	f2, _ := p.Alloc()
	if f2 != f {
		t.Fatal("LIFO should return the same fbuf")
	}
	if err := f2.Write(r.src, 0, []byte("new")); err != nil {
		t.Fatalf("write permission not restored: %v", err)
	}
	r.check(t)
}

func TestSecureByNonHolderRejected(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 1)
	f, _ := p.Alloc()
	if err := r.mgr.Secure(f, r.dst); err != ErrNotHolder {
		t.Fatalf("want ErrNotHolder, got %v", err)
	}
}

func TestSecureTrustedOriginatorNoOp(t *testing.T) {
	r := newRig(t)
	k := r.reg.Kernel()
	p := r.path(t, CachedVolatile(), 1, k, r.dst)
	f, _ := p.Alloc()
	f.Write(k, 0, []byte("pdu"))
	r.mgr.Transfer(f, k, r.dst)
	before := r.clk.Now()
	if err := r.mgr.Secure(f, r.dst); err != nil {
		t.Fatal(err)
	}
	if f.Secured() {
		t.Fatal("trusted originator was secured")
	}
	if r.clk.Now() != before {
		t.Fatal("no-op secure charged time")
	}
}

func TestNonVolatileEagerEnforcement(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedNonVolatile(), 1)
	f, _ := p.Alloc()
	f.Write(r.src, 0, []byte("x"))
	r.mgr.Transfer(f, r.src, r.dst)
	if !f.Secured() {
		t.Fatal("non-volatile transfer did not secure")
	}
	if err := f.Write(r.src, 0, []byte("y")); err == nil {
		t.Fatal("originator wrote after non-volatile transfer")
	}
}

func TestNonVolatileKernelOriginatorNotSecured(t *testing.T) {
	r := newRig(t)
	k := r.reg.Kernel()
	p := r.path(t, CachedNonVolatile(), 1, k, r.dst)
	f, _ := p.Alloc()
	r.mgr.Transfer(f, k, r.dst)
	if f.Secured() {
		t.Fatal("kernel-originated fbuf was secured")
	}
}

func TestCopySemantics(t *testing.T) {
	// The sender retains access after a transfer (copy semantics), and a
	// third domain can receive the same fbuf from the middle domain.
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 1, r.src, r.net, r.dst)
	f, _ := p.Alloc()
	f.Write(r.src, 0, []byte("chain"))
	if err := r.mgr.Transfer(f, r.src, r.net); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Transfer(f, r.net, r.dst); err != nil {
		t.Fatal(err)
	}
	for _, d := range []*domain.Domain{r.src, r.net, r.dst} {
		got := make([]byte, 5)
		if err := f.Read(d, 0, got); err != nil {
			t.Fatalf("%s read: %v", d, err)
		}
		if string(got) != "chain" {
			t.Fatalf("%s sees %q", d, got)
		}
	}
	if f.Refs() != 3 {
		t.Fatalf("refs %d", f.Refs())
	}
	r.mgr.Free(f, r.net)
	r.mgr.Free(f, r.dst)
	r.mgr.Free(f, r.src)
	if p.FreeListLen() != 1 {
		t.Fatalf("free list %d", p.FreeListLen())
	}
	r.check(t)
}

func TestTransferByNonHolder(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 1)
	f, _ := p.Alloc()
	if err := r.mgr.Transfer(f, r.dst, r.net); err != ErrNotHolder {
		t.Fatalf("want ErrNotHolder, got %v", err)
	}
}

func TestFreeByNonHolder(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 1)
	f, _ := p.Alloc()
	if err := r.mgr.Free(f, r.dst); err != ErrNotHolder {
		t.Fatalf("want ErrNotHolder, got %v", err)
	}
}

func TestDoubleFreeRejected(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 1)
	f, _ := p.Alloc()
	if err := r.mgr.Free(f, r.src); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Free(f, r.src); err == nil {
		t.Fatal("double free accepted")
	}
}

func TestCachedReuseIsLIFO(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 1)
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	r.mgr.Free(a, r.src)
	r.mgr.Free(b, r.src) // b freed last -> reused first
	c, _ := p.Alloc()
	if c != b {
		t.Fatal("free list is not LIFO")
	}
	d, _ := p.Alloc()
	if d != a {
		t.Fatal("second alloc should reuse a")
	}
}

// TestTable1CachedVolatileSteadyState is the calibration anchor: in the
// cached/volatile steady state a one-hop transfer costs exactly two TLB
// misses per page — 3 us, the paper's Table 1 headline.
func TestTable1CachedVolatileSteadyState(t *testing.T) {
	r := newRig(t)
	const pages = 64 // 2*pages > TLB capacity, so every touch misses
	p := r.path(t, CachedVolatile(), pages)
	r.oneHop(t, p) // warm-up builds mappings
	start := r.clk.Now()
	r.oneHop(t, p)
	perPage := (r.clk.Now() - start) / pages
	if want := simtime.US(3); perPage != want {
		t.Fatalf("cached/volatile steady state: %v per page, want %v", perPage, want)
	}
	if r.mgr.Snapshot().CacheHits == 0 {
		t.Fatal("no cache hits recorded")
	}
	r.check(t)
}

func TestTable1CachedNonVolatile(t *testing.T) {
	r := newRig(t)
	const pages = 64
	p := r.path(t, CachedNonVolatile(), pages)
	r.oneHop(t, p)
	start := r.clk.Now()
	r.oneHop(t, p)
	perPage := (r.clk.Now() - start) / pages
	if want := simtime.US(29); perPage != want {
		t.Fatalf("cached non-volatile: %v per page, want %v", perPage, want)
	}
}

func TestTable1UncachedVolatile(t *testing.T) {
	r := newRig(t)
	const pages = 32
	opts := Uncached()
	opts.NoClear = true // Table 1 excludes clearing cost (paper sec. 4)
	// Per-fbuf costs (VA alloc/free, chunk kernel calls) are constant per
	// message; measure the per-page incremental cost by comparing two
	// sizes, as the paper does.
	run := func(pg int) simtime.Duration {
		start := r.clk.Now()
		f, err := r.mgr.AllocUncached(r.src, pg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.TouchWrite(r.src, 1); err != nil {
			t.Fatal(err)
		}
		if err := r.mgr.Transfer(f, r.src, r.dst); err != nil {
			t.Fatal(err)
		}
		if err := f.TouchRead(r.dst); err != nil {
			t.Fatal(err)
		}
		r.mgr.Free(f, r.dst)
		r.mgr.Free(f, r.src)
		return r.clk.Now() - start
	}
	run(pages) // warm the TLB state machinery
	d1 := run(pages)
	d2 := run(2 * pages)
	perPage := (d2 - d1) / pages
	if want := simtime.US(21); perPage != want {
		t.Fatalf("uncached volatile incremental: %v per page, want %v", perPage, want)
	}
	r.check(t)
}

func TestTable1UncachedNonVolatile(t *testing.T) {
	r := newRig(t)
	const pages = 32
	opts := UncachedNonVolatile()
	opts.NoClear = true
	run := func(pg int) simtime.Duration {
		start := r.clk.Now()
		f, err := r.mgr.AllocUncached(r.src, pg, opts)
		if err != nil {
			t.Fatal(err)
		}
		f.TouchWrite(r.src, 1)
		r.mgr.Transfer(f, r.src, r.dst)
		f.TouchRead(r.dst)
		r.mgr.Free(f, r.dst)
		r.mgr.Free(f, r.src)
		return r.clk.Now() - start
	}
	run(pages)
	d1 := run(pages)
	d2 := run(2 * pages)
	perPage := (d2 - d1) / pages
	// 21us of uncached mapping work plus one protection change to secure
	// at transfer time. (No restore: an uncached fbuf is torn down at
	// free, not recycled, so the second ProtChange of the cached
	// non-volatile case never happens.)
	if want := simtime.US(34); perPage != want {
		t.Fatalf("uncached non-volatile incremental: %v per page, want %v", perPage, want)
	}
}

func TestUncachedClearingCost(t *testing.T) {
	// Without NoClear, recycled dirty frames are zero-filled at 57us per
	// page — the cost the caching optimization eliminates.
	r := newRig(t)
	opts := Uncached()
	f, _ := r.mgr.AllocUncached(r.src, 4, opts)
	f.TouchWrite(r.src, 0xBAD)
	r.mgr.Free(f, r.src)
	start := r.clk.Now()
	f2, _ := r.mgr.AllocUncached(r.src, 4, opts)
	alloc := r.clk.Now() - start
	min := 4 * r.sys.Cost.PageClear
	if alloc < min {
		t.Fatalf("dirty realloc charged %v, want at least %v for clearing", alloc, min)
	}
	// And the frames really are zero.
	buf := make([]byte, 8)
	f2.Read(r.src, 0, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("recycled frame not cleared")
		}
	}
}

func TestCachedSkipsClearing(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 4)
	f, _ := p.Alloc()
	f.Write(r.src, 0, []byte("old data"))
	r.mgr.Free(f, r.src)
	start := r.clk.Now()
	f2, _ := p.Alloc()
	if f2 != f {
		t.Fatal("expected reuse")
	}
	if d := r.clk.Now() - start; d != 0 {
		t.Fatalf("cached realloc charged %v", d)
	}
	// Old contents persist — safe because only this path's domains ever
	// see this fbuf.
	buf := make([]byte, 8)
	f2.Read(r.src, 0, buf)
	if string(buf) != "old data" {
		t.Fatalf("contents %q", buf)
	}
}

func TestNoticeFlow(t *testing.T) {
	// Receiver frees last -> fbuf drains until the deallocation notice is
	// piggybacked back to the owning domain.
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 1)
	f, _ := p.Alloc()
	r.mgr.Transfer(f, r.src, r.dst)
	r.mgr.Free(f, r.src) // originator done first
	if f.State() != StateLive {
		t.Fatalf("state %v", f.State())
	}
	r.mgr.Free(f, r.dst) // receiver is last
	if f.State() != StateDrainingNotice {
		t.Fatalf("state %v, want draining", f.State())
	}
	if p.FreeListLen() != 0 {
		t.Fatal("fbuf recycled before notice delivery")
	}
	// The next RPC reply from dst to src carries the notice.
	r.mgr.DeliverNotices(r.dst, r.src)
	if f.State() != StateFree || p.FreeListLen() != 1 {
		t.Fatalf("after delivery: state %v, free list %d", f.State(), p.FreeListLen())
	}
	if r.mgr.Snapshot().NoticesPiggy != 1 {
		t.Fatalf("piggy notices %d", r.mgr.Snapshot().NoticesPiggy)
	}
	r.check(t)
}

func TestNoticeOverflowForcesExplicitMessage(t *testing.T) {
	r := newRig(t)
	r.mgr.NoticeLimit = 4
	p := r.path(t, CachedVolatile(), 1)
	for i := 0; i < 4; i++ {
		f, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		r.mgr.Transfer(f, r.src, r.dst)
		r.mgr.Free(f, r.src)
		r.mgr.Free(f, r.dst)
	}
	if r.mgr.Snapshot().NoticesExplicit != 4 {
		t.Fatalf("explicit notices %d, want 4", r.mgr.Snapshot().NoticesExplicit)
	}
	if p.FreeListLen() != 4 {
		t.Fatalf("free list %d", p.FreeListLen())
	}
}

func TestQuotaLimitsChunks(t *testing.T) {
	// "An incorrect or malicious domain may fail to deallocate fbufs...
	// the kernel limits the number of chunks" (section 3.3).
	r := newRig(t)
	p := r.path(t, CachedVolatile(), DefaultChunkPages) // 1 fbuf per chunk
	p.SetQuota(2)
	if _, err := p.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(); err != ErrQuota {
		t.Fatalf("want ErrQuota, got %v", err)
	}
	r.check(t)
}

func TestRegionExhaustion(t *testing.T) {
	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), 64, vm.ClockSink{Clock: clk})
	reg := domain.NewRegistry(sys)
	mgr := NewManagerGeometry(sys, reg, 4, 2) // tiny region: 2 chunks
	src := reg.New("src")
	mgr.AttachDomain(src)
	p, err := mgr.NewPath("p", Options{Cached: true, Volatile: true}, 4, src)
	if err != nil {
		t.Fatal(err)
	}
	p.SetQuota(100)
	if _, err := p.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(); err != ErrRegionFull {
		t.Fatalf("want ErrRegionFull, got %v", err)
	}
}

func TestReclaimAndLazyRefill(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 4)
	f, _ := p.Alloc()
	f.Write(r.src, 0, []byte("will vanish"))
	r.mgr.Transfer(f, r.src, r.dst)
	r.mgr.Free(f, r.dst)
	r.mgr.Free(f, r.src)
	allocatedBefore := r.sys.Mem.Allocated()
	n := r.mgr.ReclaimIdle(4)
	if n != 4 {
		t.Fatalf("reclaimed %d frames", n)
	}
	if r.sys.Mem.Allocated() != allocatedBefore-4 {
		t.Fatalf("frames not returned: %d -> %d", allocatedBefore, r.sys.Mem.Allocated())
	}
	// Reuse: first touch faults, refills, clears (frame may be dirty).
	f2, _ := p.Alloc()
	if f2 != f {
		t.Fatal("expected reuse of reclaimed fbuf")
	}
	if err := f2.Write(r.src, 0, []byte("fresh")); err != nil {
		t.Fatalf("write after reclaim: %v", err)
	}
	if r.mgr.Snapshot().LazyRefills == 0 {
		t.Fatal("no lazy refill recorded")
	}
	// Receiver must also be able to fault its mapping back in.
	r.mgr.Transfer(f2, r.src, r.dst)
	buf := make([]byte, 5)
	if err := f2.Read(r.dst, 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "fresh" {
		t.Fatalf("receiver sees %q", buf)
	}
	r.check(t)
}

func TestVolatileBadReadGetsEmptyLeaf(t *testing.T) {
	// Section 3.2.4: a read to an fbuf-region address the domain has no
	// permission for completes against a synthesized empty-leaf page.
	r := newRig(t)
	marker := []byte{0xEE, 0x0F}
	r.mgr.EmptyLeafInit = func(b []byte) { copy(b, marker) }
	p := r.path(t, CachedVolatile(), 1, r.src, r.net)
	f, _ := p.Alloc()
	f.Write(r.src, 0, []byte("secret"))
	// dst never received the fbuf; its read completes with leaf content.
	buf := make([]byte, 2)
	if err := f.Read(r.dst, 0, buf); err != nil {
		t.Fatalf("volatile bad read should complete: %v", err)
	}
	if buf[0] != 0xEE || buf[1] != 0x0F {
		t.Fatalf("leaf content %v", buf)
	}
	// A write to the same address is still a violation.
	if err := f.Write(r.dst, 0, []byte{1}); err == nil {
		t.Fatal("bad write completed")
	}
	r.check(t)
}

func TestDomainTerminationReleasesRefs(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 2)
	f, _ := p.Alloc()
	r.mgr.Transfer(f, r.src, r.dst)
	r.mgr.Free(f, r.src)
	// dst dies abnormally while holding the last reference.
	r.reg.Terminate(r.dst)
	// Its endpoint destruction deallocates the fbuf; path is closed and
	// the fbuf fully torn down.
	if f.State() == StateLive {
		t.Fatalf("fbuf still live after holder death")
	}
	if err := r.sys.Mem.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOriginatorDeathRetainsChunksUntilDrained(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 2)
	f, _ := p.Alloc()
	f.Write(r.src, 0, []byte("survivor"))
	r.mgr.Transfer(f, r.src, r.dst)
	r.mgr.Free(f, r.src)
	r.reg.Terminate(r.src)
	// dst still holds a reference: the data must remain readable.
	buf := make([]byte, 8)
	if err := f.Read(r.dst, 0, buf); err != nil {
		t.Fatalf("read after originator death: %v", err)
	}
	if string(buf) != "survivor" {
		t.Fatalf("got %q", buf)
	}
	// When dst finally frees, everything drains.
	if err := r.mgr.Free(f, r.dst); err != nil {
		t.Fatal(err)
	}
	if r.sys.Mem.Allocated() != 0 {
		t.Fatalf("%d frames leaked after drain", r.sys.Mem.Allocated())
	}
}

func TestAllocAfterPathCloseFails(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 1)
	r.mgr.ClosePath(p)
	if _, err := p.Alloc(); err != ErrPathClosed {
		t.Fatalf("want ErrPathClosed, got %v", err)
	}
}

func TestTransferToUnattachedDomain(t *testing.T) {
	r := newRig(t)
	stranger := r.reg.New("stranger") // never attached
	p := r.path(t, CachedVolatile(), 1)
	f, _ := p.Alloc()
	if err := r.mgr.Transfer(f, r.src, stranger); err != ErrNotAttached {
		t.Fatalf("want ErrNotAttached, got %v", err)
	}
}

func TestUncachedMappingsTornDownAtFree(t *testing.T) {
	r := newRig(t)
	opts := Uncached()
	opts.NoClear = true
	f, _ := r.mgr.AllocUncached(r.src, 2, opts)
	f.TouchWrite(r.src, 1)
	r.mgr.Transfer(f, r.src, r.dst)
	f.TouchRead(r.dst)
	dstPages := r.dst.AS.MappedPages()
	if dstPages != 2 {
		t.Fatalf("dst has %d fbuf pages mapped", dstPages)
	}
	r.mgr.Free(f, r.dst)
	if r.dst.AS.MappedPages() != 0 {
		t.Fatal("uncached receiver mappings survived free")
	}
	r.mgr.Free(f, r.src)
	if r.src.AS.MappedPages() != 0 {
		t.Fatal("uncached originator mappings survived recycle")
	}
	if r.sys.Mem.Allocated() != 0 {
		t.Fatalf("%d frames leaked", r.sys.Mem.Allocated())
	}
	r.check(t)
}

func TestCachedMappingsPersistAcrossFree(t *testing.T) {
	r := newRig(t)
	const pages = 2
	p := r.path(t, CachedVolatile(), pages)
	f, _ := p.Alloc()
	f.TouchWrite(r.src, 1)
	r.mgr.Transfer(f, r.src, r.dst)
	f.TouchRead(r.dst)
	r.mgr.Free(f, r.dst)
	r.mgr.Free(f, r.src)
	if r.dst.AS.MappedPages() != pages || r.src.AS.MappedPages() != pages {
		t.Fatalf("cached mappings torn down: src=%d dst=%d",
			r.src.AS.MappedPages(), r.dst.AS.MappedPages())
	}
	// Second transfer builds no mappings.
	before := r.mgr.Snapshot().MappingsBuilt
	f2, _ := p.Alloc()
	r.mgr.Transfer(f2, r.src, r.dst)
	if r.mgr.Snapshot().MappingsBuilt != before {
		t.Fatal("cached re-transfer built mappings")
	}
}

func TestPathValidation(t *testing.T) {
	r := newRig(t)
	if _, err := r.mgr.NewPath("empty", CachedVolatile(), 1); err == nil {
		t.Fatal("empty path accepted")
	}
	if _, err := r.mgr.NewPath("huge", CachedVolatile(), DefaultChunkPages+1, r.src); err == nil {
		t.Fatal("oversized fbuf accepted")
	}
	if _, err := r.mgr.NewPath("zero", CachedVolatile(), 0, r.src); err == nil {
		t.Fatal("zero-page fbuf accepted")
	}
}

func TestAllocUncachedValidation(t *testing.T) {
	r := newRig(t)
	if _, err := r.mgr.AllocUncached(r.src, 0, Uncached()); err == nil {
		t.Fatal("zero-page uncached accepted")
	}
	stranger := r.reg.New("stranger")
	if _, err := r.mgr.AllocUncached(stranger, 1, Uncached()); err != ErrNotAttached {
		t.Fatalf("want ErrNotAttached, got %v", err)
	}
}

func TestStatsProgression(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 1)
	r.oneHop(t, p)
	r.oneHop(t, p)
	s := r.mgr.Snapshot()
	if s.Allocs != 2 || s.CacheHits != 1 || s.CacheMisses != 1 {
		t.Fatalf("alloc stats %+v", s)
	}
	if s.Transfers != 2 || s.Frees != 4 || s.Recycles != 2 {
		t.Fatalf("lifecycle stats %+v", s)
	}
}

func TestErrorMessagesMentionState(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 1)
	f, _ := p.Alloc()
	r.mgr.Free(f, r.src)
	err := r.mgr.Transfer(f, r.src, r.dst)
	if err == nil || !strings.Contains(err.Error(), "free") {
		t.Fatalf("stale transfer error: %v", err)
	}
}

func TestAccessors(t *testing.T) {
	r := newRig(t)
	opts := CachedVolatile()
	p := r.path(t, opts, 2)
	if p.Options() != opts || p.FbufPages() != 2 {
		t.Fatalf("path accessors: %+v %d", p.Options(), p.FbufPages())
	}
	f, _ := p.Alloc()
	if !f.Volatile() {
		t.Fatal("CachedVolatile fbuf not volatile")
	}
	gen := f.Generation()
	r.mgr.Free(f, r.src)
	f2, _ := p.Alloc()
	if f2 != f || f2.Generation() != gen+1 {
		t.Fatalf("generation %d after recycle (was %d)", f2.Generation(), gen)
	}
	if got := StateLive.String(); got != "live" {
		t.Fatalf("state string %q", got)
	}
	if got := StateDrainingNotice.String(); got != "draining" {
		t.Fatalf("state string %q", got)
	}
	if got := State(99).String(); got == "" {
		t.Fatal("unknown state string empty")
	}
}

func TestDMAAccess(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 2)
	f, _ := p.Alloc()
	data := make([]byte, 6000)
	for i := range data {
		data[i] = byte(i * 3)
	}
	before := r.clk.Now()
	if err := f.DMAWrite(100, data); err != nil {
		t.Fatal(err)
	}
	if r.clk.Now() != before {
		t.Fatal("DMA charged CPU time")
	}
	got := make([]byte, 6000)
	if err := f.DMARead(100, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d", i)
		}
	}
	// And the domain view agrees (same frames).
	cpu := make([]byte, 16)
	if err := f.Read(r.src, 100, cpu); err != nil {
		t.Fatal(err)
	}
	for i := range cpu {
		if cpu[i] != data[i] {
			t.Fatal("DMA and CPU views diverge")
		}
	}
	if err := f.DMAWrite(f.Size()-1, []byte{1, 2}); err == nil {
		t.Fatal("out-of-range DMA write accepted")
	}
	if err := f.DMARead(-1, cpu); err == nil {
		t.Fatal("negative DMA read accepted")
	}
	if fn := f.FrameAt(0); fn < 0 {
		t.Fatal("FrameAt populated page returned NoFrame")
	}
	if fn := f.FrameAt(99); fn >= 0 {
		t.Fatal("FrameAt out of range returned a frame")
	}
}

func TestDupRefAndFbufAt(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 2)
	f, _ := p.Alloc()
	if err := r.mgr.DupRef(f, r.src); err != nil {
		t.Fatal(err)
	}
	if f.Refs() != 2 {
		t.Fatalf("refs %d", f.Refs())
	}
	if err := r.mgr.DupRef(f, r.dst); err != ErrNotHolder {
		t.Fatalf("dupref by non-holder: %v", err)
	}
	if got := r.mgr.FbufAt(f.Base + 5000); got != f {
		t.Fatal("FbufAt missed")
	}
	if got := r.mgr.FbufAt(0x1000); got != nil {
		t.Fatal("FbufAt outside region")
	}
	r.mgr.Free(f, r.src)
	r.mgr.Free(f, r.src)
	if err := r.mgr.DupRef(f, r.src); err == nil {
		t.Fatal("dupref on free fbuf accepted")
	}
}

// --- Quota semantics: 0 = manager default, positive = explicit, negative
// = unlimited ---

func TestQuotaManagerDefault(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), DefaultChunkPages) // 1 fbuf per chunk
	if got := p.Quota(); got != DefaultPathQuota {
		t.Fatalf("fresh path Quota() = %d, want manager default %d", got, DefaultPathQuota)
	}
	// Lowering the manager default retroactively governs every path that
	// never called SetQuota.
	r.mgr.DefaultQuota = 2
	var bufs []*Fbuf
	for i := 0; i < 2; i++ {
		f, err := p.Alloc()
		if err != nil {
			t.Fatalf("alloc %d under default quota: %v", i, err)
		}
		bufs = append(bufs, f)
	}
	if _, err := p.Alloc(); err != ErrQuota {
		t.Fatalf("third chunk: want ErrQuota, got %v", err)
	}
	_ = bufs
	r.check(t)
}

func TestQuotaExplicitAndReset(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), DefaultChunkPages)
	p.SetQuota(1)
	if got := p.Quota(); got != 1 {
		t.Fatalf("explicit Quota() = %d, want 1", got)
	}
	if _, err := p.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(); err != ErrQuota {
		t.Fatalf("want ErrQuota at explicit limit, got %v", err)
	}
	// SetQuota(0) hands control back to the manager default (8): the
	// previously refused allocation now succeeds.
	p.SetQuota(0)
	if got := p.Quota(); got != DefaultPathQuota {
		t.Fatalf("reset Quota() = %d, want %d", got, DefaultPathQuota)
	}
	if _, err := p.Alloc(); err != nil {
		t.Fatalf("alloc after quota reset: %v", err)
	}
	r.check(t)
}

func TestQuotaUnlimited(t *testing.T) {
	r := newRig(t)
	r.mgr.DefaultQuota = 1
	p := r.path(t, CachedVolatile(), DefaultChunkPages)
	p.SetQuota(-1)
	if got := p.Quota(); got != 0 {
		t.Fatalf("unlimited Quota() = %d, want 0", got)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Alloc(); err != nil {
			t.Fatalf("unlimited alloc %d: %v", i, err)
		}
	}
	r.check(t)
}
