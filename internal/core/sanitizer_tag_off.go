//go:build !fbsan

package core

const fbsanBuildTag = false
