package core

import (
	"sync"
	"sync/atomic"

	"fbufs/internal/mem"
)

// Epoch-based frame reclamation: ReclaimIdle and the teardown paths
// (domainDied, ClosePath, EvictPath) no longer return physical frames to
// mem inline. Instead a frame whose last fbuf reference is dropped is
// *parked*, stamped with the current epoch, and only handed back to mem by
// AdvanceEpoch once every registered worker has passed the frame's retire
// epoch — a worker advertises its epoch on entry to a data-plane burst
// (Enter) and clears it on exit (Exit), so a reclaimer never waits on, and
// never races, an allocating worker.
//
// The scheme is deliberately conservative and deterministic:
//
//   - With no workers registered (every pre-existing workload), parking
//     never happens: deferFrameFree releases the frame immediately and the
//     facility is bit-identical to the eager design.
//   - Epochs only advance in AdvanceEpoch, and frames only retire there —
//     there is no background thread, so a given operation sequence parks
//     and retires identically on every run.
//   - Epoch numbers start at 1; a worker's advertised epoch of 0 means
//     quiescent. AdvanceEpoch retires a parked frame only when its stamp is
//     older than every advertised epoch (frames stamped in the epoch a
//     worker still occupies stay parked — the crash rule the conformance
//     model enforces: epoch-deferred frames reclaim only after the epoch
//     drains).
//
// epochState.mu is a leaf lock (DESIGN.md §10): parking happens under
// data-plane locks (the path lock, Fbuf.mu) and nothing is ever acquired
// while it is held — retirement pops the ready frames under it and returns
// them to mem after releasing it.
type epochState struct {
	mu     sync.Mutex
	parked []parkedFrame

	// current is the epoch counter, advanced only by AdvanceEpoch.
	current atomic.Uint64

	// workers is append-only (RegisterEpochWorker); reads take mu.
	workers []*EpochWorker

	// active flips on at the first RegisterEpochWorker and never off: the
	// single branch deferFrameFree pays on the eager path.
	active atomic.Bool
}

// parkedFrame is one frame awaiting its retire epoch.
type parkedFrame struct {
	frame mem.FrameNum
	epoch uint64
}

// EpochWorker is one registered data-plane worker's epoch advertisement.
type EpochWorker struct {
	m *Manager
	// pinned is the advertised epoch; 0 means quiescent.
	pinned atomic.Uint64
}

// RegisterEpochWorker registers a data-plane worker with the epoch reclaim
// protocol and returns its advertisement handle. Registering the first
// worker switches frame release from eager to epoch-deferred for the whole
// manager. Control-plane: register before the worker starts allocating.
func (m *Manager) RegisterEpochWorker() *EpochWorker {
	w := &EpochWorker{m: m}
	e := &m.epoch
	e.mu.Lock()
	if e.current.Load() == 0 {
		e.current.Store(1)
	}
	e.workers = append(e.workers, w)
	e.mu.Unlock()
	e.active.Store(true)
	return w
}

// Enter advertises the current epoch: frames parked from now on cannot
// retire until this worker Exits or advances past them. Re-entering while
// already entered just refreshes the advertisement.
func (w *EpochWorker) Enter() {
	e := &w.m.epoch
	for {
		cur := e.current.Load()
		w.pinned.Store(cur)
		// An AdvanceEpoch racing this store may have read the old
		// advertisement against the new epoch; re-check and re-pin so the
		// published epoch is never older than one the advancer has retired.
		if e.current.Load() == cur {
			return
		}
	}
}

// Exit clears the advertisement (the worker is quiescent).
func (w *EpochWorker) Exit() { w.pinned.Store(0) }

// Epoch returns the worker's advertised epoch (0 when quiescent).
func (w *EpochWorker) Epoch() uint64 { return w.pinned.Load() }

// EpochNow returns the current epoch (0 before any worker registers).
func (m *Manager) EpochNow() uint64 { return m.epoch.current.Load() }

// EpochPending returns the number of frames parked awaiting retirement.
func (m *Manager) EpochPending() int {
	m.epoch.mu.Lock()
	defer m.epoch.mu.Unlock()
	return len(m.epoch.parked)
}

// EpochWorkers returns how many workers are registered.
func (m *Manager) EpochWorkers() int {
	m.epoch.mu.Lock()
	defer m.epoch.mu.Unlock()
	return len(m.epoch.workers)
}

// deferFrameFree drops one fbuf ownership reference on a frame. With no
// epoch workers registered it releases the frame immediately (the eager
// pre-depot behavior, bit-identical); otherwise the frame parks until
// AdvanceEpoch proves every worker has passed its stamp. Callers may hold
// any data-plane lock: epochState.mu is a leaf.
func (m *Manager) deferFrameFree(fn mem.FrameNum) {
	if !m.epoch.active.Load() {
		if freed := m.Sys.Mem.DecRef(fn); freed {
			m.Sys.Sink().Charge(m.Sys.Cost.FrameFree)
		}
		return
	}
	e := &m.epoch
	e.mu.Lock()
	e.parked = append(e.parked, parkedFrame{frame: fn, epoch: e.current.Load()})
	e.mu.Unlock()
	atomic.AddUint64(&m.contention.EpochParks, 1)
}

// AdvanceEpoch moves the facility to the next epoch and retires every
// parked frame whose stamp every worker has passed (stamp < the minimum
// advertised epoch; a quiescent worker constrains nothing). It returns the
// number of frames retired. Retirement order is park order, so runs are
// deterministic. Call it from a maintenance tick, after ReclaimIdle, or at
// quiescence to drain the parked list.
func (m *Manager) AdvanceEpoch() int {
	e := &m.epoch
	e.mu.Lock()
	next := e.current.Add(1)
	minPinned := next
	for _, w := range e.workers {
		if p := w.pinned.Load(); p != 0 && p < minPinned {
			minPinned = p
		}
	}
	var ready []parkedFrame
	keep := e.parked[:0]
	for _, pf := range e.parked {
		if pf.epoch < minPinned {
			ready = append(ready, pf)
		} else {
			keep = append(keep, pf)
		}
	}
	e.parked = keep
	e.mu.Unlock()
	// Frames return to mem outside the epoch lock (it stays a leaf).
	for _, pf := range ready {
		if freed := m.Sys.Mem.DecRef(pf.frame); freed {
			m.Sys.Sink().Charge(m.Sys.Cost.FrameFree)
		}
	}
	if n := len(ready); n > 0 {
		atomic.AddUint64(&m.contention.EpochRetires, uint64(n))
	}
	return len(ready)
}
