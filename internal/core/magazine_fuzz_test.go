package core

import (
	"testing"

	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

// newMagFuzzRig mirrors newRig without a *testing.T so FuzzMagazine's seed
// registration (under *testing.F) can share it with the fuzz body.
func newMagFuzzRig() *rig {
	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), 4096, vm.ClockSink{Clock: clk})
	reg := domain.NewRegistry(sys)
	mgr := NewManager(sys, reg)
	r := &rig{clk: clk, sys: sys, reg: reg, mgr: mgr}
	r.src = reg.New("src")
	r.net = reg.New("netserver")
	r.dst = reg.New("dst")
	for _, d := range []*domain.Domain{r.src, r.net, r.dst} {
		mgr.AttachDomain(d)
	}
	return r
}

// FuzzMagazine drives byte-decoded op sequences over two magazines sharing
// one cached/volatile path, interleaved with direct path allocations, full
// facility frees, transfers (which force the magazine's slow free path),
// and mid-sequence drains. The PR 4 contract under test: the deferred
// per-magazine counters must merge so that at quiescence every magazine
// Alloc call is visible as exactly one hit or miss, the global counter
// invariants (Stats.Check) hold, and nothing leaks (CheckConverged) — no
// matter how the fast and slow paths interleave.
func FuzzMagazine(f *testing.F) {
	f.Add([]byte{0x00, 0x02, 0x00, 0x02})                   // alloc/free ping-pong
	f.Add([]byte{0x00, 0x00, 0x00, 0x01, 0x01, 0x06, 0x03}) // two mags, drain between
	f.Add([]byte{0x04, 0x07, 0x00, 0x05, 0x00})             // direct alloc, transfer, direct free
	f.Add([]byte{0x00, 0x01, 0x02, 0x00, 0x03, 0x01, 0x07, 0x00, 0x06, 0x06})
	f.Add([]byte{0x04, 0x04, 0x04, 0x04, 0x03, 0x00, 0x03, 0x01, 0x03, 0x02, 0x03, 0x03})

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 600 {
			ops = ops[:600]
		}
		r := newMagFuzzRig()
		san := r.mgr.EnableSanitizer()
		san.OnViolation = func(msg string) { t.Errorf("fbsan: %s", msg) }
		p, err := r.mgr.NewPath("mag-fuzz", CachedVolatile(), 1, r.src, r.dst)
		if err != nil {
			t.Fatal(err)
		}
		magA := p.NewMagazine(4)
		magB := p.NewMagazine(3)

		var live []*Fbuf // src-held live fbufs, in allocation order
		var magAllocCalls, allocs, frees uint64
		pick := func(sel byte) int { return int(sel) % len(live) }
		drop := func(i int) { live = append(live[:i], live[i+1:]...) }

		for i := 0; i < len(ops); i++ {
			op := ops[i] % 8
			var sel byte
			if i+1 < len(ops) {
				i++
				sel = ops[i]
			}
			switch op {
			case 0, 1: // magazine alloc
				mag := magA
				if op == 1 {
					mag = magB
				}
				magAllocCalls++
				fb, err := mag.Alloc()
				if err != nil {
					continue // quota/region exhaustion: legal, still a miss
				}
				allocs++
				if err := fb.TouchWrite(r.src, uint32(allocs)); err != nil {
					t.Fatal(err)
				}
				live = append(live, fb)
			case 2, 3: // magazine free (sole-holder fast path)
				if len(live) == 0 {
					continue
				}
				mag := magA
				if op == 3 {
					mag = magB
				}
				i := pick(sel)
				if err := mag.Free(live[i], r.src); err != nil {
					t.Fatalf("magazine free: %v", err)
				}
				frees++
				drop(i)
			case 4: // direct path alloc (full kernel-boundary path)
				fb, err := p.Alloc()
				if err != nil {
					continue
				}
				allocs++
				live = append(live, fb)
			case 5: // direct facility free
				if len(live) == 0 {
					continue
				}
				i := pick(sel)
				if err := r.mgr.Free(live[i], r.src); err != nil {
					t.Fatalf("facility free: %v", err)
				}
				frees++
				drop(i)
			case 6: // mid-sequence drain merges the deferred counters
				magA.Drain()
				magB.Drain()
			case 7: // transfer: receiver free + originator free, both off
				// the magazine fast path (refs outstanding / secured)
				if len(live) == 0 {
					continue
				}
				i := pick(sel)
				fb := live[i]
				if err := r.mgr.Transfer(fb, r.src, r.dst); err != nil {
					t.Fatal(err)
				}
				if err := fb.TouchRead(r.dst); err != nil {
					t.Fatal(err)
				}
				if err := r.mgr.Free(fb, r.dst); err != nil {
					t.Fatal(err)
				}
				if err := magA.Free(fb, r.src); err != nil {
					t.Fatalf("post-transfer originator free: %v", err)
				}
				frees += 2 // receiver's drop and the originator's both count
				drop(i)
			}
		}

		// Quiesce: free everything still held, drain both stashes, and
		// deliver any queued deallocation notices.
		for _, fb := range live {
			if err := magA.Free(fb, r.src); err != nil {
				t.Fatalf("final free: %v", err)
			}
			frees++
		}
		magA.Drain()
		magB.Drain()
		doms := []*domain.Domain{r.reg.Kernel(), r.src, r.net, r.dst}
		for _, h := range doms {
			for _, o := range doms {
				r.mgr.DeliverNotices(h, o)
			}
		}

		// Deferred-counter contract: a drained magazine holds nothing
		// locally, and every magazine Alloc call merged as one hit or miss.
		for name, mag := range map[string]*Magazine{"A": magA, "B": magB} {
			if d := mag.Depth(); d != 0 {
				t.Errorf("magazine %s depth %d after Drain", name, d)
			}
			h, m, rf, fl := mag.LocalStats()
			if h|m|rf|fl != 0 {
				t.Errorf("magazine %s local counters (%d,%d,%d,%d) not merged by Drain",
					name, h, m, rf, fl)
			}
		}
		cont := r.mgr.ContentionSnapshot()
		if got := cont.MagazineHits + cont.MagazineMisses; got != magAllocCalls {
			t.Errorf("hits+misses = %d, want %d (one per magazine Alloc call)",
				got, magAllocCalls)
		}
		stats := r.mgr.Snapshot()
		if stats.Allocs != allocs || stats.Frees != frees {
			t.Errorf("Allocs/Frees = %d/%d, want %d/%d",
				stats.Allocs, stats.Frees, allocs, frees)
		}
		if err := stats.Check(); err != nil {
			t.Errorf("stats invariants: %v", err)
		}
		if err := r.mgr.CheckInvariants(); err != nil {
			t.Error(err)
		}
		if err := r.mgr.CheckConverged(); err != nil {
			t.Errorf("leaked after quiescence: %v", err)
		}
	})
}
