package core

// Per-tenant admission control: weighted chunk-grant arbitration layered
// on top of the per-path quota.
//
// The per-path quota (DataPath.Quota) bounds how many chunks one endpoint
// can hold, but says nothing about aggregate pressure: a tenant opening
// many paths (a fan-out video server, a connection-churning web tier) can
// drain the shared region while staying inside every per-path limit. The
// Admission controller closes that gap. Paths are assigned to TenantClass
// groups (SetTenant); each class gets a weighted share of a global chunk
// budget, and a chunk grant that would push the class past its share is
// refused with ErrAdmission before the kernel is asked for the chunk.
//
// The refusal is the top rung of the overload ladder (DESIGN.md §14):
// ErrAdmission counts as an alloc failure, so xfer.Adaptive degrades the
// affected transfers to the pre-pinned copy path, while Pressured() gives
// the window protocol a backpressure bit to shrink senders' effective
// windows — load is shed smoothly at two layers instead of thrashing the
// allocator.
//
// Concurrency: class registration and SetAdmission are control-plane
// (before traffic starts, like NewPath); admit/release run on the data
// plane and are a single atomic add + compare, deterministic in the
// single-threaded simulator mode.

import "sync/atomic"

// pressureWindow is how many subsequently admitted grants it takes for
// the backpressure signal to decay after a rejection. Counting grants
// instead of reading a clock keeps the signal deterministic (detlint).
const pressureWindow = 16

// Admission arbitrates chunk grants between weighted tenant classes.
type Admission struct {
	budget  int
	classes []*TenantClass

	// pressure is the decaying backpressure signal: set to pressureWindow
	// on every rejection, decremented on every admitted grant, polled by
	// SWP via Pressured.
	pressure atomic.Int64
}

// TenantClass is one weighted admission class (e.g. "quick", "video",
// "net"). Its share of the global budget is budget*Weight/Σweights,
// recomputed as classes register.
type TenantClass struct {
	Name   string
	Weight int

	share   atomic.Int64  // chunks this class may hold
	inUse   atomic.Int64  // chunks currently held
	rejects atomic.Uint64 // grants refused
}

// NewAdmission creates a controller over a global budget of chunks.
func NewAdmission(budgetChunks int) *Admission {
	return &Admission{budget: budgetChunks}
}

// Budget returns the global chunk budget.
func (a *Admission) Budget() int { return a.budget }

// Classes returns the registered classes in registration order.
func (a *Admission) Classes() []*TenantClass { return a.classes }

// Class registers a weighted tenant class and rebalances every class's
// share: share_i = budget * w_i / Σw, floored at one chunk so no class
// starves outright. Control-plane: register before traffic starts.
func (a *Admission) Class(name string, weight int) *TenantClass {
	if weight < 1 {
		weight = 1
	}
	t := &TenantClass{Name: name, Weight: weight}
	a.classes = append(a.classes, t)
	total := 0
	for _, c := range a.classes {
		total += c.Weight
	}
	for _, c := range a.classes {
		s := a.budget * c.Weight / total
		if s < 1 {
			s = 1
		}
		c.share.Store(int64(s))
	}
	return t
}

// admit charges one chunk to the class; false means the class's share is
// exhausted (the caller surfaces ErrAdmission). The add-then-check shape
// is race-free: a loser that oversteps the share backs its charge out.
func (a *Admission) admit(t *TenantClass) bool {
	if t.inUse.Add(1) > t.share.Load() {
		t.inUse.Add(-1)
		t.rejects.Add(1)
		a.pressure.Store(pressureWindow)
		return false
	}
	// Admitted grants decay the pressure signal toward zero.
	for {
		p := a.pressure.Load()
		if p <= 0 {
			return true
		}
		if a.pressure.CompareAndSwap(p, p-1) {
			return true
		}
	}
}

// release refunds one chunk when a grant fails downstream or the chunk
// drains back to the kernel (releaseChunk).
func (a *Admission) release(t *TenantClass) { t.inUse.Add(-1) }

// Pressured reports whether an admission rejection happened within the
// last pressureWindow admitted grants — the backpressure bit the window
// protocol polls to shrink its effective send window.
func (a *Admission) Pressured() bool { return a.pressure.Load() > 0 }

// Share returns the class's current chunk share.
func (t *TenantClass) Share() int { return int(t.share.Load()) }

// InUse returns the chunks the class currently holds.
func (t *TenantClass) InUse() int { return int(t.inUse.Load()) }

// Rejects returns how many grants the class has been refused.
func (t *TenantClass) Rejects() uint64 { return t.rejects.Load() }

// SetAdmission installs (or, with nil, removes) the tenant admission
// controller. Control-plane: set before traffic starts.
func (m *Manager) SetAdmission(a *Admission) { m.admission = a }

// Admission returns the installed controller, nil if none.
func (m *Manager) Admission() *Admission { return m.admission }
