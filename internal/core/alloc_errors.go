package core

import (
	"errors"

	"fbufs/internal/mem"
)

// Allocation-failure taxonomy. Four distinct exhaustion errors can come
// out of the allocation machinery, and they mean different things to a
// caller deciding how to recover:
//
//   - ErrQuota — the *path's* kernel-imposed chunk quota is exhausted
//     (DataPath.carve: the path would need another chunk but already holds
//     Quota() of them, or the fault plane simulated the kernel refusing
//     one). Other paths can still allocate; recovery is freeing buffers on
//     this path or waiting for notices to drain its free list.
//
//   - ErrAdmission — the path's *tenant class* has exhausted its weighted
//     share of the admission budget (admission.go). The path itself may be
//     under quota; the class as a whole is over-subscribed. Paths in other
//     classes still allocate; recovery is the class draining chunks back
//     (frees, notices, eviction) or the operator re-weighting it.
//
//   - ErrRegionFull — the *global* fbuf VA region has no free chunks
//     (Manager.grantChunk). Every allocator on the host is affected;
//     recovery requires some path or uncached fbuf to fully tear down
//     (removeFromChunk → releaseChunk).
//
//   - mem.ErrOutOfMemory — VA space was available but the *physical frame
//     pool* is empty (vm.System.AllocFrame, reached from populate's
//     allocFrame or a lazy-refill fault). VA-level state is rolled back
//     (carve and AllocUncachedFill recycle the partially populated fbuf);
//     recovery is Manager.ReclaimIdle, which discards free-listed fbuf
//     contents to refill the pool — "when the kernel reclaims the physical
//     memory of an fbuf that is on a free list, it discards the fbuf's
//     contents" (section 3.1).
//
// Where each surfaces:
//
//	DataPath.Alloc          ErrQuota | ErrAdmission | ErrRegionFull |
//	                        mem.ErrOutOfMemory
//	                        (plus ErrPathClosed / ErrDeadDomain, which are
//	                        caller bugs or lifecycle races, not exhaustion)
//	Manager.AllocUncached*  ErrRegionFull | mem.ErrOutOfMemory
//	                        (plus ErrDeadDomain / ErrNotAttached)
//	lazy refill (fault)     mem.ErrOutOfMemory, surfacing as a vm.AccessError
//	                        on the touch that faulted
//
// All four are survivable: the paper's fallback is that "the system
// degrades gracefully to the performance of a system that copies data"
// (section 3.1). xfer.Adaptive implements exactly that — it treats any
// IsAllocFailure error as "take the copy path this hop" and probes its way
// back once reclamation frees resources.

// ErrAdmission is returned when a chunk grant is refused because the
// path's tenant class is at its admission share (see Admission).
var ErrAdmission = errors.New("core: tenant admission share exhausted")

// IsAllocFailure reports whether err is one of the resource-exhaustion
// errors that the degraded copy path recovers from. Lifecycle errors
// (ErrPathClosed, ErrDeadDomain, ErrNotAttached, ...) return false:
// copying cannot fix those, so they must propagate.
func IsAllocFailure(err error) bool {
	return errors.Is(err, ErrQuota) ||
		errors.Is(err, ErrAdmission) ||
		errors.Is(err, ErrRegionFull) ||
		errors.Is(err, mem.ErrOutOfMemory)
}
