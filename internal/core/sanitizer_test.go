package core

import (
	"strings"
	"testing"

	"fbufs/internal/vm"
)

// sanRig is a rig with the sanitizer enabled and violations captured
// instead of panicking.
type sanRig struct {
	*rig
	san        *Sanitizer
	violations []string
}

func newSanRig(t *testing.T) *sanRig {
	t.Helper()
	r := &sanRig{rig: newRig(t)}
	r.san = r.mgr.EnableSanitizer()
	r.san.OnViolation = func(msg string) { r.violations = append(r.violations, msg) }
	return r
}

func (r *sanRig) expectViolation(t *testing.T, substr string) {
	t.Helper()
	for _, v := range r.violations {
		if strings.Contains(v, substr) {
			return
		}
	}
	t.Fatalf("no sanitizer violation containing %q; got %v", substr, r.violations)
}

func (r *sanRig) expectClean(t *testing.T) {
	t.Helper()
	if len(r.violations) != 0 {
		t.Fatalf("unexpected sanitizer violations: %v", r.violations)
	}
}

// TestSanitizerCatchesUseAfterFree is the deliberately-injected
// use-after-free the acceptance criteria require: a write lands on a
// free-listed fbuf's frame behind the VM layer's back, and the canary
// trips at reuse.
func TestSanitizerCatchesUseAfterFree(t *testing.T) {
	r := newSanRig(t)
	p := r.path(t, CachedVolatile(), 2)
	f, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Free(f, r.src); err != nil {
		t.Fatal(err)
	}
	// The injected bug: a stale pointer (here: direct frame access,
	// standing in for a device or a domain with a leftover mapping)
	// scribbles on the freed buffer.
	r.sys.Mem.Write(f.FrameAt(0), 128, []byte("stale write"))
	if _, err := p.Alloc(); err != nil {
		t.Fatal(err)
	}
	r.expectViolation(t, "use-after-free write")
}

// TestSanitizerReuseCleanAndTransparent: without a stray write the reuse
// verifies clean, and poison/restore leaves the recycled contents exactly
// as the paper's cached semantics promise (data survives free/realloc).
func TestSanitizerReuseCleanAndTransparent(t *testing.T) {
	r := newSanRig(t)
	p := r.path(t, CachedVolatile(), 2)
	f, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("survives the free list")
	if err := f.Write(r.src, 64, payload); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Free(f, r.src); err != nil {
		t.Fatal(err)
	}
	f2, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if f2 != f {
		t.Fatal("LIFO free list did not return the same fbuf")
	}
	got := make([]byte, len(payload))
	if err := f2.Read(r.src, 64, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("contents after recycle = %q, want %q (sanitizer must restore)", got, payload)
	}
	r.expectClean(t)
	st := r.san.Stats()
	if st.PoisonedPages == 0 || st.VerifiedPages == 0 {
		t.Fatalf("sanitizer idle: %+v", st)
	}
}

// TestSanitizerDMAChecks: DMA to a free-listed fbuf and DMA writes to a
// secured fbuf are MMU-bypass bugs only the sanitizer can see.
func TestSanitizerDMAChecks(t *testing.T) {
	r := newSanRig(t)
	p := r.path(t, CachedVolatile(), 1)
	f, _ := p.Alloc()
	if err := r.mgr.Free(f, r.src); err != nil {
		t.Fatal(err)
	}
	_ = f.DMAWrite(0, []byte{1})
	r.expectViolation(t, "DMA write to free fbuf")

	r2 := newSanRig(t)
	p2 := r2.path(t, CachedVolatile(), 1)
	f2, _ := p2.Alloc()
	if err := r2.mgr.Transfer(f2, r2.src, r2.dst); err != nil {
		t.Fatal(err)
	}
	if err := r2.mgr.Secure(f2, r2.dst); err != nil {
		t.Fatal(err)
	}
	_ = f2.DMAWrite(0, []byte{1})
	r2.expectViolation(t, "DMA write to secured fbuf")
}

// TestSanitizerShadowAudit: a writable PTE smuggled into a receiver's
// address space violates the write-permission invariant and fails
// CheckInvariants.
func TestSanitizerShadowAudit(t *testing.T) {
	r := newSanRig(t)
	p := r.path(t, CachedNonVolatile(), 1)
	f, _ := p.Alloc()
	if err := r.mgr.Transfer(f, r.src, r.dst); err != nil {
		t.Fatal(err)
	}
	r.check(t) // clean before the injected leak
	// The injected bug: somebody maps the page writable in the receiver.
	r.dst.AS.Map(f.Base, f.FrameAt(0), vm.ReadWrite)
	err := r.mgr.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "shadow audit") {
		t.Fatalf("CheckInvariants = %v, want shadow audit failure", err)
	}
}

// TestSanitizerStatsAcrossOptLevels runs the paper's transfer loop under
// every optimization level with fbsan enabled and verifies the facility's
// own invariants (Stats.Check via CheckInvariants) still hold — the
// sanitizer must not perturb the accounting it guards.
func TestSanitizerStatsAcrossOptLevels(t *testing.T) {
	levels := []struct {
		name string
		opts Options
	}{
		{"Remap", UncachedNonVolatile()},
		{"Shared", Uncached()},
		{"Cached", CachedNonVolatile()},
		{"CachedVolatile", CachedVolatile()},
	}
	for _, lv := range levels {
		t.Run(lv.name, func(t *testing.T) {
			r := newSanRig(t)
			opts := lv.opts
			opts.Populate = true
			p := r.path(t, opts, 2)
			for i := 0; i < 5; i++ {
				r.oneHop(t, p)
				r.check(t)
			}
			if err := r.mgr.Snapshot().Check(); err != nil {
				t.Fatal(err)
			}
			r.expectClean(t)
			if got := r.san.Stats().ShadowAudits; got == 0 {
				t.Fatal("shadow audit never ran")
			}
		})
	}
}

// TestSanitizerReclaimNoFalsePositive: frames reclaimed from free-listed
// fbufs (contents legitimately discarded) must not read as
// use-after-free when the fbuf is reused and lazily refilled.
func TestSanitizerReclaimNoFalsePositive(t *testing.T) {
	r := newSanRig(t)
	p := r.path(t, CachedVolatile(), 2)
	f, _ := p.Alloc()
	if err := r.mgr.Free(f, r.src); err != nil {
		t.Fatal(err)
	}
	if n := r.mgr.ReclaimIdle(64); n == 0 {
		t.Fatal("nothing reclaimed")
	}
	f2, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.TouchWrite(r.src, 0xBEEF); err != nil { // lazy refill
		t.Fatal(err)
	}
	r.expectClean(t)
	r.check(t)
}

// TestSanitizerDisabledByDefault pins the zero-cost-when-off contract.
func TestSanitizerDisabledByDefault(t *testing.T) {
	if sanitizerDefault {
		t.Skip("fbsan forced on via build tag or FBSAN=1")
	}
	r := newRig(t)
	if r.mgr.SanitizerEnabled() {
		t.Fatal("sanitizer enabled without opt-in")
	}
	if r.mgr.Sanitizer() != nil {
		t.Fatal("Sanitizer() non-nil when disabled")
	}
}
