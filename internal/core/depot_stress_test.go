package core

import (
	"sync"
	"testing"
)

// TestParallelDepotStress is the many-core soak of the PR 10 allocator: 16
// goroutines churn one depot-enabled path through private magazines,
// pinning and unpinning their epoch advertisements around bursts, while a
// maintenance goroutine concurrently reclaims idle frames, advances the
// epoch, and periodically evicts the path. Runs under CI's
// `go test -race -run Parallel` with fbsan collecting, so both the Go race
// detector and the lifecycle sanitizer watch every interleaving of
// magazine exchange, shard spill, epoch park/retire, and eviction teardown.
func TestParallelDepotStress(t *testing.T) {
	r, checkSan := parallelRig(t)
	p := r.path(t, CachedVolatile(), 1)
	p.EnableDepot(4, 4)

	const workers, ops = 16, 1500
	epochWorkers := make([]*EpochWorker, workers)
	for i := range epochWorkers {
		// Control-plane rule: register before the worker starts allocating.
		epochWorkers[i] = r.mgr.RegisterEpochWorker()
	}

	stop := make(chan struct{})
	var maint sync.WaitGroup
	maint.Add(1)
	go func() {
		defer maint.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.mgr.ReclaimIdle(32)
			r.mgr.AdvanceEpoch()
			if i%16 == 15 {
				r.mgr.EvictPath(p)
			}
		}
	}()

	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			w := epochWorkers[slot]
			defer w.Exit()
			mag := p.NewMagazine(4)
			defer mag.Drain()
			for op := 0; op < ops; op++ {
				if op%64 == 0 {
					// Burst boundary: go quiescent, then re-pin at the
					// epoch current when the next burst starts.
					w.Exit()
					w.Enter()
				}
				f, err := mag.Alloc()
				if err != nil {
					errs[slot] = err
					return
				}
				if err := mag.Free(f, r.src); err != nil {
					errs[slot] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	maint.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	// Quiesce: every magazine already drained on worker exit and every
	// advertisement cleared; discharge the depot and advance until the
	// parked frames retire, then the full convergence check must hold.
	p.DepotDischarge()
	for i := 0; i < 4 && r.mgr.EpochPending() > 0; i++ {
		r.mgr.AdvanceEpoch()
	}
	checkSan()
	r.check(t)
	if err := r.mgr.CheckConverged(); err != nil {
		t.Errorf("leaked after quiescence: %v", err)
	}

	cont := r.mgr.ContentionSnapshot()
	if got := cont.MagazineHits + cont.MagazineMisses; got != workers*ops {
		t.Errorf("hits+misses = %d, want %d", got, workers*ops)
	}
	st := r.mgr.Snapshot()
	if st.Allocs != workers*ops || st.Frees != workers*ops {
		t.Errorf("Allocs/Frees = %d/%d, want %d each", st.Allocs, st.Frees, workers*ops)
	}
	if err := st.Check(); err != nil {
		t.Errorf("stats invariants: %v", err)
	}
}

// TestParallelExchangeStormSnapshot is the regression test for the PR 4
// latent merge bug fixed in this PR: mergeCounters runs on every depot
// exchange *without* the path lock, so DataPath.Allocated and the shared
// Stats group must be fully atomic. The storm forces continuous
// ExchangeEmpty/ExchangeFull traffic (magazine cap = depot unit, so every
// overflow and every dry stash exchanges) while a reader goroutine
// continuously snapshots the totals mid-merge. Under -race the old
// non-atomic read is a detector hit; single-threaded the test still pins
// the books: every snapshot is internally consistent and the final totals
// are exact.
func TestParallelExchangeStormSnapshot(t *testing.T) {
	r, checkSan := parallelRig(t)
	p := r.path(t, CachedVolatile(), 1)
	p.EnableDepot(2, 2)

	const workers, ops = 8, 600
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Mid-storm reads of the merged totals. Full Stats.Check only
			// holds at quiescence (each merge is several atomic adds), but
			// two one-sided invariants hold at every instant because every
			// writer bumps stats.Allocs before p.Allocated and before the
			// hit/miss split: the global count may never trail a per-path
			// count read before it, and hits+misses may never exceed it.
			pathAllocs := p.AllocatedCount()
			st := r.mgr.Snapshot()
			if st.Allocs < pathAllocs {
				t.Errorf("Snapshot.Allocs = %d < path Allocated = %d read before it",
					st.Allocs, pathAllocs)
				return
			}
			if st.CacheHits+st.CacheMisses > st.Allocs {
				t.Errorf("mid-storm CacheHits+CacheMisses = %d > Allocs = %d",
					st.CacheHits+st.CacheMisses, st.Allocs)
				return
			}
		}
	}()

	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			// Bursts of three stash capacities: the loaded and previous
			// magazines both fill mid-burst, so every free burst pushes a
			// unit into the depot and every alloc burst pulls one back —
			// each exchange merging the deferred counters lock-free.
			mag := p.NewMagazine(2)
			defer mag.Drain()
			hold := make([]*Fbuf, 0, 6)
			for op := 0; op < ops; op++ {
				for len(hold) < cap(hold) {
					f, err := mag.Alloc()
					if err != nil {
						errs[slot] = err
						return
					}
					hold = append(hold, f)
				}
				for len(hold) > 0 {
					f := hold[len(hold)-1]
					hold = hold[:len(hold)-1]
					if err := mag.Free(f, r.src); err != nil {
						errs[slot] = err
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	p.DepotDischarge()
	checkSan()
	r.check(t)

	const expect = workers * ops * 6 // each burst allocates and frees 6
	st := r.mgr.Snapshot()
	if st.Allocs != expect || st.Frees != expect {
		t.Errorf("Allocs/Frees = %d/%d, want %d each", st.Allocs, st.Frees, expect)
	}
	if got := p.AllocatedCount(); got != expect {
		t.Errorf("path Allocated = %d, want %d", got, expect)
	}
	cont := r.mgr.ContentionSnapshot()
	if got := cont.MagazineHits + cont.MagazineMisses; got != expect {
		t.Errorf("hits+misses = %d, want %d", got, expect)
	}
	if cont.DepotExchanges == 0 {
		t.Error("storm never exchanged with the depot — the merge race was not exercised")
	}
	if err := st.Check(); err != nil {
		t.Errorf("stats invariants: %v", err)
	}
	if err := r.mgr.CheckConverged(); err != nil {
		t.Errorf("leaked after quiescence: %v", err)
	}
}
