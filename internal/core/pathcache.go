package core

// Path cache: bounded residency for data-path allocators.
//
// The paper's ATM network interface keeps only the 16 most recently used
// VCI data paths cached (section 5.2); activating a 17th costs a full
// allocator setup. This file reproduces that pressure as a first-class
// Manager layer: every Alloc/AllocBatch "touches" its path, and when more
// paths are resident than the configured capacity, a pluggable policy
// picks a victim whose free-listed fbufs are torn down (EvictPath). Live
// fbufs are never revoked — eviction demotes idle capacity, it does not
// break outstanding references — so a victim path stays fully usable and
// simply pays cache-miss cost (chunk grant, frame population) on its next
// allocation.
//
// Concurrency: cacheMu is a leaf lock (DESIGN.md §10.2). touchPath takes
// it only to update the residency table and snapshot the candidate list;
// it is released before any candidate's path lock is taken and before the
// eviction itself runs. cacheCap and cachePolicy are control-plane fields
// (set before workers start, like DefaultQuota), so the disabled-cache
// fast path is a single plain read.

import (
	"sort"
	"sync/atomic"

	"fbufs/internal/obs"
)

// DefaultCacheEntries mirrors the paper's 16-entry VCI path cache.
const DefaultCacheEntries = 16

// cacheEntry is one resident path in the cache's recency table.
type cacheEntry struct {
	path      *DataPath
	lastTouch uint64 // cacheSeq at the most recent touch
}

// CacheCandidate is one eviction candidate presented to a policy.
// Candidates arrive sorted by path ID, so a policy that scans in order
// and breaks ties toward the first match is deterministic regardless of
// the residency map's iteration order.
type CacheCandidate struct {
	Path      *DataPath
	LastTouch uint64 // cache sequence of the last touch (higher = more recent)
	FreePages int    // pages parked on the free list (size-aware policies)
	Pinned    bool   // exempt under the pinned-aware policy
}

// EvictionPolicy selects a victim among over-capacity cache candidates.
// Victim returns an index into cands, or -1 to decline — the cache then
// runs over capacity rather than evict (the pinned policy's answer when
// every candidate is pinned).
type EvictionPolicy interface {
	Name() string
	Victim(cands []CacheCandidate) int
}

// SetPathCache installs a bounded path cache with the given capacity and
// eviction policy. Control-plane: call before workers start, like NewPath.
// capacity <= 0 disables the cache (the default — pre-existing workloads
// stay bit-identical); a nil policy selects PolicyMRU, matching the
// most-recent-16 shape of the paper's VCI cache.
func (m *Manager) SetPathCache(capacity int, policy EvictionPolicy) {
	if policy == nil {
		policy = PolicyMRU()
	}
	m.cacheMu.Lock()
	m.cacheCap = capacity
	m.cachePolicy = policy
	m.residents = make(map[int]*cacheEntry)
	m.cacheSeq = 0
	m.cacheMu.Unlock()
}

// CacheResidents returns how many paths are currently resident (0 when
// the cache is disabled). Over-capacity counts are possible when the
// policy declines to evict.
func (m *Manager) CacheResidents() int {
	m.cacheMu.Lock()
	defer m.cacheMu.Unlock()
	return len(m.residents)
}

// touchPath records a path activation and, when the residency table has
// grown past capacity, runs one eviction attempt. Called by Alloc and
// AllocBatch before the path lock is taken — touchPath must never run
// while any path or manager lock is held.
func (m *Manager) touchPath(p *DataPath) {
	if m.cacheCap <= 0 {
		return
	}
	m.cacheMu.Lock()
	m.cacheSeq++
	e := m.residents[p.ID]
	if e == nil {
		e = &cacheEntry{path: p}
		m.residents[p.ID] = e
	}
	e.lastTouch = m.cacheSeq
	if len(m.residents) <= m.cacheCap {
		m.cacheMu.Unlock()
		return
	}
	policy := m.cachePolicy
	cands := make([]CacheCandidate, 0, len(m.residents)-1)
	for id, ent := range m.residents {
		if id == p.ID {
			continue // the path being activated is never its own victim
		}
		cands = append(cands, CacheCandidate{
			Path:      ent.path,
			LastTouch: ent.lastTouch,
			Pinned:    ent.path.Pinned(),
		})
	}
	m.cacheMu.Unlock()
	// Deterministic candidate order regardless of map iteration.
	sort.Slice(cands, func(i, j int) bool { return cands[i].Path.ID < cands[j].Path.ID })
	// FreeListLen takes each candidate's path lock; cacheMu is released.
	for i := range cands {
		cands[i].FreePages = cands[i].Path.FreeListLen() * cands[i].Path.fbufPages
	}
	v := policy.Victim(cands)
	if v < 0 || v >= len(cands) {
		return // policy declined: cache overflows instead
	}
	victim := cands[v].Path
	m.cacheMu.Lock()
	if _, ok := m.residents[victim.ID]; !ok {
		m.cacheMu.Unlock()
		return // raced with ClosePath or a concurrent eviction
	}
	delete(m.residents, victim.ID)
	m.cacheMu.Unlock()
	m.EvictPath(victim)
}

// cacheForget drops a path's residency entry (ClosePath tears the
// allocator down itself; a stale entry must not become a future victim).
func (m *Manager) cacheForget(id int) {
	m.cacheMu.Lock()
	delete(m.residents, id)
	m.cacheMu.Unlock()
}

// EvictPath demotes a path: every free-listed fbuf — on the shared free
// list or parked in the path's depot — is fully torn down: receiver
// mappings shot down, frames returned (epoch-deferred once workers
// register), chunks released as they drain — exactly as recycling on a
// closed path would. The demotion goes through the depot, never around it:
// depot inventory is drained as whole units and torn down like free-listed
// buffers, and live fbufs (allocated, in transfer, or awaiting
// deallocation notices) are in neither place and are untouched — eviction
// never revokes an outstanding reference, an invariant the conformance
// model cross-checks. The path remains open (and its depot stays
// installed); its next Alloc re-primes the allocator at cache-miss cost.
// Returns the number of fbufs torn down.
func (m *Manager) EvictPath(p *DataPath) int {
	p.lock()
	if p.closed {
		p.unlock()
		return 0
	}
	freeList := p.free
	p.free = nil
	p.unlock()
	if d := p.depot; d != nil {
		freeList = append(freeList, d.drain()...)
	}
	for _, f := range freeList {
		atomic.AddUint64(&m.stats.Recycles, 1)
		m.emit(obs.EvRecycle, f.Originator, f, 0)
		if m.san != nil {
			// Same last-look canary check a closed-path recycle gets.
			m.san.verifyReuse(f)
		}
		m.teardown(f)
	}
	atomic.AddUint64(&m.stats.PathEvictions, 1)
	p.evictions.Add(1)
	m.emit(obs.EvPathEvict, p.Originator(), nil, int64(len(freeList)))
	if o := m.Sys.Obs; o != nil && len(freeList) > 0 {
		p.ensureMetrics(o)
		p.depthGauge.Set(0)
	}
	return len(freeList)
}

// --- Eviction policies ---

// PolicyMRU evicts the most recently touched candidate (the path being
// activated is excluded before the policy runs). This is the classic MRU
// replacement rule: optimal when recent use predicts no reuse (one-shot
// sequential scans), and the baseline the overload experiment measures
// the other policies against — under skewed production traffic it keeps
// churning the same hot victim slot while cold paths squat.
func PolicyMRU() EvictionPolicy { return mruPolicy{} }

type mruPolicy struct{}

func (mruPolicy) Name() string { return "mru16" }

func (mruPolicy) Victim(cands []CacheCandidate) int {
	best := -1
	for i, c := range cands {
		if best < 0 || c.LastTouch > cands[best].LastTouch {
			best = i
		}
	}
	return best
}

// PolicyLRU evicts the least recently touched candidate — the standard
// recency bet that a path idle longest stays idle longest.
func PolicyLRU() EvictionPolicy { return lruPolicy{} }

type lruPolicy struct{}

func (lruPolicy) Name() string { return "lru" }

func (lruPolicy) Victim(cands []CacheCandidate) int {
	best := -1
	for i, c := range cands {
		if best < 0 || c.LastTouch < cands[best].LastTouch {
			best = i
		}
	}
	return best
}

// PolicySize evicts the candidate parking the most free-list pages (the
// largest instant memory win), breaking ties toward least recently used.
func PolicySize() EvictionPolicy { return sizePolicy{} }

type sizePolicy struct{}

func (sizePolicy) Name() string { return "size" }

func (sizePolicy) Victim(cands []CacheCandidate) int {
	best := -1
	for i, c := range cands {
		if best < 0 || c.FreePages > cands[best].FreePages ||
			(c.FreePages == cands[best].FreePages && c.LastTouch < cands[best].LastTouch) {
			best = i
		}
	}
	return best
}

// PolicyPinnedLRU is LRU over unpinned candidates only; it declines when
// every candidate is pinned, letting the cache run over capacity rather
// than revoke a pin (SetPinned marks latency-critical paths).
func PolicyPinnedLRU() EvictionPolicy { return pinnedLRUPolicy{} }

type pinnedLRUPolicy struct{}

func (pinnedLRUPolicy) Name() string { return "pinned-lru" }

func (pinnedLRUPolicy) Victim(cands []CacheCandidate) int {
	best := -1
	for i, c := range cands {
		if c.Pinned {
			continue
		}
		if best < 0 || c.LastTouch < cands[best].LastTouch {
			best = i
		}
	}
	return best
}

// PolicyByName resolves an eviction policy from its bench/CLI name.
func PolicyByName(name string) (EvictionPolicy, bool) {
	switch name {
	case "mru16", "mru":
		return PolicyMRU(), true
	case "lru":
		return PolicyLRU(), true
	case "size":
		return PolicySize(), true
	case "pinned-lru", "pinned":
		return PolicyPinnedLRU(), true
	}
	return nil, false
}
