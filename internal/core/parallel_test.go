package core

import (
	"sync"
	"testing"
)

// Parallel stress tests: real goroutines over one shared manager, meant to
// run under -race (CI's smp job does `go test -race -run Parallel ./...`).
// They assert the data-plane concurrency contract of DESIGN.md section 10:
// Alloc/Free/Transfer/DupRef from many goroutines are safe once path setup
// is done, and the facility's invariants hold at quiescence. fbsan stays
// enabled throughout so the lifecycle checking itself is exercised under
// concurrency.

// parallelRig builds a rig with the sanitizer collecting (not panicking on)
// violations; any violation fails the test at the end.
func parallelRig(t *testing.T) (*rig, func()) {
	t.Helper()
	r := newRig(t)
	san := r.mgr.EnableSanitizer()
	var mu sync.Mutex
	var violations []string
	san.OnViolation = func(msg string) {
		mu.Lock()
		violations = append(violations, msg)
		mu.Unlock()
	}
	return r, func() {
		t.Helper()
		mu.Lock()
		defer mu.Unlock()
		for _, v := range violations {
			t.Errorf("fbsan: %s", v)
		}
	}
}

// TestParallelMagazineAllocFree hammers one cached/volatile path from many
// goroutines, each through a private magazine.
func TestParallelMagazineAllocFree(t *testing.T) {
	r, checkSan := parallelRig(t)
	p := r.path(t, CachedVolatile(), 1)

	const workers, ops = 8, 2000
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			mag := p.NewMagazine(0)
			defer mag.Drain()
			for op := 0; op < ops; op++ {
				f, err := mag.Alloc()
				if err != nil {
					errs[slot] = err
					return
				}
				if err := mag.Free(f, r.src); err != nil {
					errs[slot] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	checkSan()
	r.check(t)

	cont := r.mgr.ContentionSnapshot()
	if got := cont.MagazineHits + cont.MagazineMisses; got != workers*ops {
		t.Errorf("hits+misses = %d, want %d", got, workers*ops)
	}
	if cont.MagazineHits < workers*ops/2 {
		t.Errorf("MagazineHits = %d: steady state should be stash-served", cont.MagazineHits)
	}
	st := r.mgr.Snapshot()
	if st.Allocs != workers*ops || st.Frees != workers*ops {
		t.Errorf("Allocs/Frees = %d/%d, want %d each", st.Allocs, st.Frees, workers*ops)
	}
}

// TestParallelGlobalAllocFree is the same stress through the shared-lock
// path (no magazines): every op contends on the path free-list lock.
func TestParallelGlobalAllocFree(t *testing.T) {
	r, checkSan := parallelRig(t)
	p := r.path(t, CachedVolatile(), 1)

	const workers, ops = 8, 1000
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for op := 0; op < ops; op++ {
				f, err := p.Alloc()
				if err != nil {
					errs[slot] = err
					return
				}
				if err := r.mgr.Free(f, r.src); err != nil {
					errs[slot] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	checkSan()
	r.check(t)
}

// TestParallelTransfer runs the full reference flow — alloc, dup, transfer,
// free from both ends — concurrently, exercising the atomic refcount and
// write-permission transitions.
func TestParallelTransfer(t *testing.T) {
	r, checkSan := parallelRig(t)
	p := r.path(t, CachedVolatile(), 1)

	const workers, ops = 6, 500
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for op := 0; op < ops; op++ {
				f, err := p.Alloc()
				if err != nil {
					errs[slot] = err
					return
				}
				if err := r.mgr.DupRef(f, r.src); err != nil {
					errs[slot] = err
					return
				}
				if err := r.mgr.Transfer(f, r.src, r.dst); err != nil {
					errs[slot] = err
					return
				}
				if err := r.mgr.Free(f, r.dst); err != nil {
					errs[slot] = err
					return
				}
				if err := r.mgr.Free(f, r.src); err != nil {
					errs[slot] = err
					return
				}
				if err := r.mgr.Free(f, r.src); err != nil {
					errs[slot] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	checkSan()
	r.check(t)
}

// TestParallelCrossPath splits workers across two independent paths of one
// manager, exercising the sharded (per-chunk, per-region) manager state.
func TestParallelCrossPath(t *testing.T) {
	r, checkSan := parallelRig(t)
	p1, err := r.mgr.NewPath("p1", CachedVolatile(), 1, r.src, r.dst)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.mgr.NewPath("p2", CachedVolatile(), 2, r.net, r.dst)
	if err != nil {
		t.Fatal(err)
	}

	const workers, ops = 8, 1000
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			p, owner := p1, r.src
			if slot%2 == 1 {
				p, owner = p2, r.net
			}
			mag := p.NewMagazine(8)
			defer mag.Drain()
			for op := 0; op < ops; op++ {
				f, err := mag.Alloc()
				if err != nil {
					errs[slot] = err
					return
				}
				if err := mag.Free(f, owner); err != nil {
					errs[slot] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	checkSan()
	r.check(t)
}

// TestMagazineCounters pins the deferred-counter semantics single-threaded:
// hits are stash pops, misses are Alloc calls that found the stash empty
// (whether or not the refill found anything), refills and flushes count
// only operations that actually moved buffers, and locals merge into the
// shared Contention group on every miss, flush, and Drain.
func TestMagazineCounters(t *testing.T) {
	r := newRig(t)
	r.mgr.EnableSanitizer()
	p := r.path(t, CachedVolatile(), 1)
	mag := p.NewMagazine(4)

	// Empty stash, empty shared list: a miss that carves. The miss path
	// merges, so the shared group sees it at once — and no refill is
	// counted for a move of zero buffers.
	a, err := mag.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	cont := r.mgr.ContentionSnapshot()
	if cont.MagazineMisses != 1 || cont.MagazineHits != 0 || cont.MagazineRefills != 0 {
		t.Fatalf("after carve miss: %+v", cont)
	}

	// Free to the stash, realloc: a hit, deferred locally until a merge.
	if err := mag.Free(a, r.src); err != nil {
		t.Fatal(err)
	}
	if mag.Depth() != 1 {
		t.Fatalf("Depth = %d, want 1", mag.Depth())
	}
	a, err = mag.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	hits, misses, refills, flushes := mag.LocalStats()
	if hits != 1 || misses != 0 || refills != 0 || flushes != 0 {
		t.Fatalf("LocalStats = %d,%d,%d,%d, want 1,0,0,0 (hit deferred)", hits, misses, refills, flushes)
	}
	if cont = r.mgr.ContentionSnapshot(); cont.MagazineHits != 0 {
		t.Fatalf("MagazineHits = %d before any merge, want 0", cont.MagazineHits)
	}
	if err := mag.Free(a, r.src); err != nil {
		t.Fatal(err)
	}

	// Seed the shared free list with four buffers, empty the stash, and
	// miss again: one refill moves the whole hot tail (up to cap).
	seed := make([]*Fbuf, 4)
	for i := range seed {
		if seed[i], err = p.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range seed {
		if err := r.mgr.Free(f, r.src); err != nil {
			t.Fatal(err)
		}
	}
	if a, err = mag.Alloc(); err != nil { // pops the stashed one: hit
		t.Fatal(err)
	}
	b, err := mag.Alloc() // stash empty: miss, refill of 4, pop 1
	if err != nil {
		t.Fatal(err)
	}
	if mag.Depth() != 3 {
		t.Fatalf("Depth after refill+pop = %d, want 3", mag.Depth())
	}
	cont = r.mgr.ContentionSnapshot()
	if cont.MagazineRefills != 1 || cont.MagazineMisses != 2 || cont.MagazineHits != 2 {
		t.Fatalf("after refill: %+v", cont)
	}

	// Fill the stash to capacity: the push that reaches cap flushes half
	// (the oldest end) back to the shared list under one lock.
	if err := mag.Free(a, r.src); err != nil { // push to 4 == cap: flush 2
		t.Fatal(err)
	}
	if mag.Depth() != 2 {
		t.Fatalf("Depth after flush = %d, want 2", mag.Depth())
	}
	cont = r.mgr.ContentionSnapshot()
	if cont.MagazineFlushes != 1 {
		t.Fatalf("MagazineFlushes = %d, want 1", cont.MagazineFlushes)
	}
	if err := mag.Free(b, r.src); err != nil { // push to 3 < cap: no flush
		t.Fatal(err)
	}
	if mag.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", mag.Depth())
	}
	if cont = r.mgr.ContentionSnapshot(); cont.MagazineFlushes != 1 {
		t.Fatalf("MagazineFlushes = %d after non-flushing push, want 1", cont.MagazineFlushes)
	}

	// Drain returns everything and merges the remaining locals; the
	// facility's books must balance afterwards.
	mag.Drain()
	if mag.Depth() != 0 {
		t.Fatalf("Depth after Drain = %d, want 0", mag.Depth())
	}
	if hits, misses, refills, flushes = mag.LocalStats(); hits+misses+refills+flushes != 0 {
		t.Fatalf("LocalStats after Drain = %d,%d,%d,%d, want zeros", hits, misses, refills, flushes)
	}
	st := r.mgr.Snapshot()
	if st.Allocs != st.Frees {
		t.Fatalf("Allocs = %d, Frees = %d at quiescence", st.Allocs, st.Frees)
	}
	r.check(t)
}

// TestMagazineFallbacks pins the slow paths: foreign-path and partial-drop
// frees route through the manager, and a magazine over an uncached path
// never stashes.
func TestMagazineFallbacks(t *testing.T) {
	r := newRig(t)
	r.mgr.EnableSanitizer()
	p := r.path(t, CachedVolatile(), 1)
	mag := p.NewMagazine(4)

	// Transferred ref outstanding: not the sole holder, so Free takes the
	// full path (notices, no stash).
	f, err := mag.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Transfer(f, r.src, r.dst); err != nil {
		t.Fatal(err)
	}
	if err := mag.Free(f, r.src); err != nil {
		t.Fatal(err)
	}
	if mag.Depth() != 0 {
		t.Fatalf("partial drop stashed: Depth = %d, want 0", mag.Depth())
	}
	if err := r.mgr.Free(f, r.dst); err != nil {
		t.Fatal(err)
	}

	// Uncached path: Free tears the fbuf down instead of stashing.
	up, err := r.mgr.NewPath("uncached", Uncached(), 1, r.src, r.dst)
	if err != nil {
		t.Fatal(err)
	}
	umag := up.NewMagazine(4)
	uf, err := umag.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := umag.Free(uf, r.src); err != nil {
		t.Fatal(err)
	}
	if umag.Depth() != 0 {
		t.Fatalf("uncached free stashed: Depth = %d, want 0", umag.Depth())
	}

	mag.Drain()
	umag.Drain()
	r.check(t)
}
