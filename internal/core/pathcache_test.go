package core

import (
	"sync"
	"testing"
)

// TestEvictionPolicyVictims pins each policy's victim choice on a fixed
// candidate set.
func TestEvictionPolicyVictims(t *testing.T) {
	cands := []CacheCandidate{
		{LastTouch: 5, FreePages: 1},
		{LastTouch: 9, FreePages: 4},
		{LastTouch: 2, FreePages: 2, Pinned: true},
	}
	if got := PolicyMRU().Victim(cands); got != 1 {
		t.Errorf("mru victim %d, want 1 (most recently touched)", got)
	}
	if got := PolicyLRU().Victim(cands); got != 2 {
		t.Errorf("lru victim %d, want 2 (least recently touched)", got)
	}
	if got := PolicySize().Victim(cands); got != 1 {
		t.Errorf("size victim %d, want 1 (largest free list)", got)
	}
	if got := PolicyPinnedLRU().Victim(cands); got != 0 {
		t.Errorf("pinned-lru victim %d, want 0 (LRU among unpinned)", got)
	}
	allPinned := []CacheCandidate{{Pinned: true}, {LastTouch: 1, Pinned: true}}
	if got := PolicyPinnedLRU().Victim(allPinned); got != -1 {
		t.Errorf("pinned-lru victim %d over all-pinned set, want -1 (decline)", got)
	}
	if got := PolicyMRU().Victim(nil); got != -1 {
		t.Errorf("mru victim %d on empty set, want -1", got)
	}
}

func TestPolicyByName(t *testing.T) {
	for name, want := range map[string]string{
		"mru16":      "mru16",
		"mru":        "mru16",
		"lru":        "lru",
		"size":       "size",
		"pinned-lru": "pinned-lru",
		"pinned":     "pinned-lru",
	} {
		pol, ok := PolicyByName(name)
		if !ok || pol.Name() != want {
			t.Errorf("PolicyByName(%q) = %v/%v, want %s", name, pol, ok, want)
		}
	}
	if _, ok := PolicyByName("fifo"); ok {
		t.Error("PolicyByName accepted an unknown policy")
	}
}

// TestPathCacheEvicts runs three paths over a two-entry cache: activating
// the third must demote the LRU resident, tearing down its free list while
// the path itself stays open and usable.
func TestPathCacheEvicts(t *testing.T) {
	r := newRig(t)
	r.mgr.SetPathCache(2, PolicyLRU())
	pa := r.path(t, CachedVolatile(), 1)
	pb := r.path(t, CachedVolatile(), 1)
	pc := r.path(t, CachedVolatile(), 1)

	r.oneHop(t, pa)
	r.oneHop(t, pb)
	if got := r.mgr.CacheResidents(); got != 2 {
		t.Fatalf("residents = %d, want 2", got)
	}
	r.oneHop(t, pc) // third activation: LRU resident (pa) is demoted

	if pa.Evictions() != 1 {
		t.Fatalf("pa evictions = %d, want 1", pa.Evictions())
	}
	if pa.FreeListLen() != 0 {
		t.Fatalf("pa free list %d after eviction, want 0", pa.FreeListLen())
	}
	if pb.FreeListLen() != 1 || pc.FreeListLen() != 1 {
		t.Fatalf("survivor free lists %d/%d, want 1/1", pb.FreeListLen(), pc.FreeListLen())
	}
	if got := r.mgr.CacheResidents(); got != 2 {
		t.Fatalf("residents = %d after eviction, want 2", got)
	}
	st := r.mgr.Snapshot()
	if st.PathEvictions != 1 {
		t.Fatalf("PathEvictions = %d, want 1", st.PathEvictions)
	}

	// The evicted path is demoted, not revoked: it works again at
	// cache-miss cost (and its re-activation demotes the next LRU).
	misses := st.CacheMisses
	r.oneHop(t, pa)
	st = r.mgr.Snapshot()
	if st.CacheMisses != misses+1 {
		t.Fatalf("CacheMisses = %d after post-eviction hop, want %d", st.CacheMisses, misses+1)
	}
	r.check(t)
}

// TestEvictionSparesLiveFbufs pins the safety rule: eviction tears down
// only free-listed fbufs; live references survive and drain normally.
func TestEvictionSparesLiveFbufs(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 1)

	live, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := live.TouchWrite(r.src, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	idle, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Free(idle, r.src); err != nil {
		t.Fatal(err)
	}

	if n := r.mgr.EvictPath(p); n != 1 {
		t.Fatalf("EvictPath tore down %d fbufs, want 1 (the idle one)", n)
	}
	// The live fbuf still transfers end to end.
	if err := r.mgr.Transfer(live, r.src, r.dst); err != nil {
		t.Fatalf("live fbuf broken after eviction: %v", err)
	}
	if err := live.TouchRead(r.dst); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Free(live, r.dst); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Free(live, r.src); err != nil {
		t.Fatal(err)
	}
	r.check(t)
}

// TestClosePathForgetsResident checks ClosePath removes the path from the
// residency table so a stale entry can never be chosen as a victim.
func TestClosePathForgetsResident(t *testing.T) {
	r := newRig(t)
	r.mgr.SetPathCache(4, PolicyMRU())
	p := r.path(t, CachedVolatile(), 1)
	r.oneHop(t, p)
	if got := r.mgr.CacheResidents(); got != 1 {
		t.Fatalf("residents = %d, want 1", got)
	}
	r.mgr.ClosePath(p)
	if got := r.mgr.CacheResidents(); got != 0 {
		t.Fatalf("residents = %d after close, want 0", got)
	}
	r.check(t)
}

// TestPathCacheDisabledByDefault: without SetPathCache the cache layer is
// inert — no residency tracking, no evictions, identical schedules.
func TestPathCacheDisabledByDefault(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 1)
	for i := 0; i < 4; i++ {
		r.oneHop(t, p)
	}
	if got := r.mgr.CacheResidents(); got != 0 {
		t.Fatalf("residents = %d with cache disabled, want 0", got)
	}
	if st := r.mgr.Snapshot(); st.PathEvictions != 0 {
		t.Fatalf("PathEvictions = %d with cache disabled, want 0", st.PathEvictions)
	}
	r.check(t)
}

// TestPinnedPathSurvivesPressure: under the pinned-lru policy a pinned
// resident is never the victim while an unpinned candidate exists.
func TestPinnedPathSurvivesPressure(t *testing.T) {
	r := newRig(t)
	r.mgr.SetPathCache(2, PolicyPinnedLRU())
	hot := r.path(t, CachedVolatile(), 1)
	hot.SetPinned(true)
	r.oneHop(t, hot)
	for i := 0; i < 3; i++ {
		p := r.path(t, CachedVolatile(), 1)
		r.oneHop(t, p)
	}
	if hot.Evictions() != 0 {
		t.Fatalf("pinned path evicted %d times under pressure, want 0", hot.Evictions())
	}
	if hot.FreeListLen() != 1 {
		t.Fatalf("pinned path free list %d, want 1", hot.FreeListLen())
	}
	r.check(t)
}

// TestParallelEvictionUnderLoad hammers one path from allocator goroutines
// while the main goroutine repeatedly evicts it; run under -race with
// fbsan checking reuse poisoning. Eviction must never touch a live fbuf.
func TestParallelEvictionUnderLoad(t *testing.T) {
	r, checkSan := parallelRig(t)
	p := r.path(t, CachedVolatile(), 1)

	const workers, ops = 4, 400
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for op := 0; op < ops; op++ {
				f, err := p.Alloc()
				if err != nil {
					errs[slot] = err
					return
				}
				if err := f.TouchWrite(r.src, uint32(op)); err != nil {
					errs[slot] = err
					return
				}
				if err := r.mgr.Free(f, r.src); err != nil {
					errs[slot] = err
					return
				}
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			for i, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", i, err)
				}
			}
			checkSan()
			r.check(t)
			return
		default:
			r.mgr.EvictPath(p)
		}
	}
}
