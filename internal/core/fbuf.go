// Package core implements fast buffers (fbufs), the paper's primary
// contribution: an integrated buffer-management and cross-domain
// data-transfer facility that combines virtual page remapping with shared
// virtual memory and exploits locality in I/O traffic.
//
// The design follows section 3 of the paper:
//
//   - A globally shared *fbuf region* of virtual addresses; every fbuf is
//     mapped at the same VA in every domain (restricted dynamic read
//     sharing), so transfers never search for receiver VA space and virtual
//     address aliasing never arises.
//   - A two-level allocator: the kernel hands ownership of fixed-size
//     chunks of the region to per-domain, per-data-path allocators, which
//     then satisfy allocations without kernel involvement.
//   - Per-data-path caching: freed fbufs keep their mappings and return,
//     write permission restored to the originator, to a LIFO free list;
//     reuse requires zero mapping operations and no clearing.
//   - Volatile fbufs: by default the originator retains write permission;
//     a receiver that must trust the contents calls Secure, which is a
//     no-op for trusted (kernel) originators.
//   - Copy semantics only, over immutable buffers: a transfer shares pages
//     and bumps reference counts; nobody ever copies payload bytes.
//
// Costs are charged through the VM layer per the calibrated machine model;
// in the cached+volatile steady state a transfer touches no kernel state at
// all, exactly as the paper requires.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/mem"
	"fbufs/internal/vm"
)

// Region geometry. The fbuf region lives above all private per-domain
// ranges and is identical in every address space.
const (
	// RegionBase is the first virtual address of the fbuf region.
	RegionBase vm.VA = 0x1000_0000_0000
	// DefaultChunkPages is the size, in pages, of the chunks the kernel
	// hands to per-path allocators (256 KB).
	DefaultChunkPages = 64
	// DefaultRegionChunks bounds the region (64 MB with default chunks).
	DefaultRegionChunks = 256
)

// Options selects the optimization level of a data path's fbufs, matching
// the paper's four evaluated variants.
type Options struct {
	// Cached: freed fbufs return to the path's LIFO free list with
	// mappings intact (section 3.2.2). When false, every allocation
	// builds mappings and every free tears them down.
	Cached bool
	// Volatile: the originator keeps write permission across transfers;
	// receivers call Secure if they need immutability enforced
	// (section 3.2.4). When false, the first transfer out of the
	// originator eagerly removes its write permission, and recycling
	// restores it.
	Volatile bool
	// Integrated: aggregate-object nodes live inside fbufs so a transfer
	// passes only a DAG root reference (section 3.2.3). Consumed by
	// packages aggregate and xfer; core itself transfers fbufs either
	// way.
	Integrated bool
	// Populate: eagerly attach (and if necessary clear) physical frames
	// at allocation time. I/O buffers about to be filled by a device or
	// an application are populated eagerly; lazy population is used after
	// frame reclamation.
	Populate bool
	// NoClear skips the security clear of freshly allocated frames. Only
	// legitimate when the allocator knows the buffer will be fully
	// overwritten before any transfer (e.g. exact-size DMA reassembly
	// buffers). Table 1 in the paper likewise excludes clearing cost.
	NoClear bool
	// FIFO replaces the free list's LIFO discipline with FIFO — an
	// ablation knob. The paper argues for LIFO because "fbufs at the
	// front of the free list are most likely to have physical memory
	// mapped to them"; under memory pressure FIFO reuses the coldest
	// buffer and pays more lazy refills.
	FIFO bool
}

// CachedVolatile returns the full-optimization configuration.
func CachedVolatile() Options {
	return Options{Cached: true, Volatile: true, Integrated: true, Populate: true}
}

// Uncached returns the baseline fbuf configuration (still volatile).
func Uncached() Options { return Options{Volatile: true, Populate: true} }

// CachedNonVolatile returns caching with eager immutability enforcement.
func CachedNonVolatile() Options { return Options{Cached: true, Populate: true} }

// UncachedNonVolatile returns the plain-fbufs configuration: no caching,
// eager immutability.
func UncachedNonVolatile() Options { return Options{Populate: true} }

// State tracks an fbuf through its lifetime.
type State uint8

const (
	// StateFree: on a path free list (cached) or nonexistent (uncached).
	StateFree State = iota
	// StateLive: allocated, references outstanding.
	StateLive
	// StateDrainingNotice: all references dropped, waiting for the
	// deallocation notice to reach the owning allocator.
	StateDrainingNotice
)

func (s State) String() string {
	switch s {
	case StateFree:
		return "free"
	case StateLive:
		return "live"
	case StateDrainingNotice:
		return "draining"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Fbuf is one fast buffer: one or more contiguous virtual memory pages in
// the fbuf region, mapped at the same virtual address in every domain that
// can see it.
//
// Concurrency: the lifecycle state and the secured bit live in one atomic
// word (the DESIGN.md §10 state machine), the total reference count is an
// atomic counter, and the per-domain reference map, the mapped set, and the
// frame slots are guarded by mu. Transfer, DupRef, and Free are therefore
// atomic transitions safe under concurrent workers; in the single-threaded
// default mode the atomics and locks are uncontended and all observable
// behavior (costs, events, counters) is unchanged.
type Fbuf struct {
	// Base is the fbuf's virtual address, identical in all domains.
	Base vm.VA
	// Pages is the fbuf's length in pages.
	Pages int

	// Path is the data path whose allocator owns the fbuf; nil for
	// default-allocator (uncached, pathless) fbufs.
	Path *DataPath
	// Originator allocated the fbuf and is the only domain that ever had
	// write permission.
	Originator *domain.Domain

	mgr    *Manager
	opts   Options
	frames []mem.FrameNum // NoFrame where reclaimed / not yet populated

	// st packs the lifecycle State (low 8 bits) and the secured flag
	// (bit 8): one atomic word so a transfer observes a consistent
	// (state, write-permission) pair without taking mu.
	st atomic.Uint32

	// mu guards refs, mapped, and the frames slots during concurrent
	// operation. It ranks below the path lock and above the address-space
	// lock in the documented lock order.
	mu sync.Mutex
	// refs counts live references per domain. The originator's initial
	// reference is created by Alloc.
	refs map[domain.ID]int
	// total mirrors the sum of refs as an atomic, so Refs() and the
	// last-reference test need no lock.
	total atomic.Int64
	// mapped records which domains currently have page-table mappings
	// (cached fbufs keep these across free/reuse).
	mapped map[domain.ID]bool
	// gen increments on every recycle; stale references from a prior
	// life are a caller bug that tests can detect.
	gen atomic.Uint64
}

// securedBit is the secured flag inside the packed st word.
const securedBit uint32 = 1 << 8

// loadState reads the lifecycle state from the packed word.
func (f *Fbuf) loadState() State { return State(f.st.Load() & 0xff) }

// setState atomically replaces the lifecycle state, preserving the
// secured bit.
func (f *Fbuf) setState(s State) {
	for {
		old := f.st.Load()
		if f.st.CompareAndSwap(old, (old&^uint32(0xff))|uint32(s)) {
			return
		}
	}
}

// isSecured reads the secured bit.
func (f *Fbuf) isSecured() bool { return f.st.Load()&securedBit != 0 }

// setSecured atomically sets or clears the secured bit.
func (f *Fbuf) setSecured(v bool) {
	for {
		old := f.st.Load()
		nw := old &^ securedBit
		if v {
			nw = old | securedBit
		}
		if f.st.CompareAndSwap(old, nw) {
			return
		}
	}
}

// resetLive is the cached-reuse transition: Free → Live with a single
// originator reference and a bumped generation. The caller owns the fbuf
// exclusively (it was just popped from a free list or magazine).
func (f *Fbuf) resetLive(orig *domain.Domain) {
	f.setState(StateLive)
	f.mu.Lock()
	f.refs[orig.ID] = 1
	f.mu.Unlock()
	f.total.Store(1)
	f.gen.Add(1)
}

// Size returns the fbuf length in bytes.
func (f *Fbuf) Size() int { return f.Pages * machine.PageSize }

// State returns the fbuf's lifecycle state.
func (f *Fbuf) State() State { return f.loadState() }

// Secured reports whether the originator's write permission is removed.
func (f *Fbuf) Secured() bool { return f.isSecured() }

// Volatile reports whether the fbuf is volatile.
func (f *Fbuf) Volatile() bool { return f.opts.Volatile }

// Refs returns the total outstanding reference count.
func (f *Fbuf) Refs() int { return int(f.total.Load()) }

// HeldBy reports whether d holds at least one reference.
func (f *Fbuf) HeldBy(d *domain.Domain) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.refs[d.ID] > 0
}

// Contains reports whether va falls inside the fbuf.
func (f *Fbuf) Contains(va vm.VA) bool {
	return va >= f.Base && va < f.Base+vm.VA(f.Size())
}

// Generation returns the recycle generation (diagnostics).
func (f *Fbuf) Generation() uint64 { return f.gen.Load() }

// Errors returned by the fbuf facility.
var (
	// ErrQuota: the path allocator hit its kernel-imposed chunk limit
	// ("the kernel limits the number of chunks that can be allocated to
	// any data path-specific fbuf allocator", section 3.3).
	ErrQuota = errors.New("core: data path chunk quota exhausted")
	// ErrRegionFull: the global fbuf region has no free chunks.
	ErrRegionFull = errors.New("core: fbuf region exhausted")
	// ErrNotHolder: the acting domain holds no reference to the fbuf.
	ErrNotHolder = errors.New("core: domain holds no reference to fbuf")
	// ErrNotAttached: the domain was never attached to the fbuf manager.
	ErrNotAttached = errors.New("core: domain not attached to fbuf region")
	// ErrNotOriginator: only the originator may perform the operation.
	ErrNotOriginator = errors.New("core: not the fbuf's originator")
	// ErrDeadDomain: the domain has terminated.
	ErrDeadDomain = errors.New("core: domain is dead")
	// ErrPathClosed: the data path has been closed.
	ErrPathClosed = errors.New("core: data path closed")
)
