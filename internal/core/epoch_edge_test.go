package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fbufs/internal/rings"
	"fbufs/internal/simtime"
)

// Directed epoch edge-case tests. Each one replays a fixed scenario under
// seeds {1, 2, 3}, where the seed perturbs only choices the epoch protocol
// promises are unobservable — how a reclaim sweep is chopped into batches,
// how many times the maintenance plane advances the epoch against a pinned
// worker — and asserts the full observable trace is byte-identical across
// seeds. A divergence means a supposedly-neutral scheduling choice leaked
// into the protocol's visible behavior.

// edgeTrace accumulates one run's observable protocol state as text.
type edgeTrace struct{ b strings.Builder }

func (tr *edgeTrace) mark(label string, r *rig) {
	st := r.mgr.Snapshot()
	fmt.Fprintf(&tr.b, "%s pending=%d allocs=%d frees=%d recycles=%d reclaimed=%d rejects=%d\n",
		label, r.mgr.EpochPending(), st.Allocs, st.Frees, st.Recycles,
		st.FramesReclaimed, st.AdmissionRejects)
}

func (tr *edgeTrace) event(format string, args ...interface{}) {
	fmt.Fprintf(&tr.b, format+"\n", args...)
}

// chop splits total into 1..total seed-random positive batches.
func chop(rng *rand.Rand, total int) []int {
	var parts []int
	for total > 0 {
		n := 1 + rng.Intn(total)
		parts = append(parts, n)
		total -= n
	}
	return parts
}

// advancePinned advances the epoch a seed-random number of times while at
// least one worker stays pinned, asserting no frame retires (the crash
// rule: epoch-deferred frames reclaim only after the epoch drains), and
// records only the aggregate so the trace is chop-invariant.
func advancePinned(t *testing.T, r *rig, rng *rand.Rand, tr *edgeTrace) {
	t.Helper()
	retired := 0
	for i := 1 + rng.Intn(3); i > 0; i-- {
		retired += r.mgr.AdvanceEpoch()
	}
	if retired != 0 {
		t.Fatalf("AdvanceEpoch retired %d frames under a pinned worker", retired)
	}
	tr.event("advance-pinned retired=0")
}

// requireIdenticalTraces runs the scenario under seeds 1..3 and compares.
func requireIdenticalTraces(t *testing.T, run func(t *testing.T, seed int64) string) {
	t.Helper()
	want := run(t, 1)
	for seed := int64(2); seed <= 3; seed++ {
		if got := run(t, seed); got != want {
			t.Fatalf("trace diverged between seed 1 and seed %d:\n--- seed 1 ---\n%s--- seed %d ---\n%s",
				seed, want, seed, got)
		}
	}
}

// TestEpochEdgeSpinThenBlockPinnedWorker: a worker pins its epoch, then
// parks in a ring's spin-then-block wait (an empty drain re-arms its spin
// window). While it lingers, the maintenance plane reclaims the path's idle
// frames — parking them — and advances the epoch; nothing may retire until
// a submission wakes the worker and it unpins. The seed chops the reclaim
// sweep and varies the advance count; the trace must not move.
func TestEpochEdgeSpinThenBlockPinnedWorker(t *testing.T) {
	requireIdenticalTraces(t, func(t *testing.T, seed int64) string {
		rng := rand.New(rand.NewSource(seed))
		tr := &edgeTrace{}
		r := newRig(t)
		p := r.path(t, CachedVolatile(), 1)
		ring, err := rings.NewPair(r.sys, "edge", 8,
			func() simtime.Time { return r.clk.Now() }, int(r.src.ID), int(r.dst.ID))
		if err != nil {
			t.Fatal(err)
		}
		w := r.mgr.RegisterEpochWorker()

		// Populate the free list with four idle one-page fbufs.
		const idle = 4
		var fs []*Fbuf
		for i := 0; i < idle; i++ {
			f, err := p.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			fs = append(fs, f)
		}
		for _, f := range fs {
			if err := r.mgr.Free(f, r.src); err != nil {
				t.Fatal(err)
			}
		}
		tr.mark("idle", r)

		// The worker pins its epoch and polls its submission ring: the
		// empty drain re-arms the spin window, so it is now parked in
		// spin-then-block with its advertisement still published.
		w.Enter()
		if n, _ := ring.Drain(func(rings.Entry) error { return nil }); n != 0 {
			t.Fatalf("drained %d entries from an empty ring", n)
		}
		tr.event("worker parked spinning, pinned")

		// Maintenance: reclaim the idle frames in seed-chopped batches —
		// park order is path order regardless of the chop — then advance
		// against the pinned worker.
		total := 0
		for _, n := range chop(rng, idle) {
			total += r.mgr.ReclaimIdle(n)
		}
		if total != idle {
			t.Fatalf("reclaimed %d frames, want %d", total, idle)
		}
		tr.mark("reclaimed", r)
		advancePinned(t, r, rng, tr)
		tr.mark("still-parked", r)

		// A submission lands inside the worker's spin window (the clock
		// never advanced), wakes it for free, and the worker unpins.
		if err := ring.Submit(rings.Entry{Op: "wake", Descriptors: 1}); err != nil {
			t.Fatal(err)
		}
		woke, _ := ring.Drain(func(rings.Entry) error { return nil })
		rs := ring.Stats()
		tr.event("woke drained=%d spinhits=%d doorbells=%d", woke, rs.SpinHits, rs.Doorbells)
		w.Exit()

		// With the worker quiescent, one advance retires every park.
		tr.event("advance-unpinned retired=%d", r.mgr.AdvanceEpoch())
		tr.mark("drained", r)
		if err := r.mgr.CheckConverged(); err != nil {
			t.Fatal(err)
		}
		return tr.b.String()
	})
}

// TestEpochEdgeDomainDeathMidExchange: the receiving endpoint dies while a
// pinned worker holds a loaded and a previous magazine plus two live
// fbufs. The death closes the path and its depot; the unaware worker's
// next overflow pushes its previous magazine into the closed depot, whose
// ExchangeFull tears the stranded unit down (teardownStashed) — parking
// the frames, because the worker is still pinned. Everything the teardown
// parked retires only after the worker exits.
func TestEpochEdgeDomainDeathMidExchange(t *testing.T) {
	requireIdenticalTraces(t, func(t *testing.T, seed int64) string {
		rng := rand.New(rand.NewSource(seed))
		tr := &edgeTrace{}
		r := newRig(t)
		p := r.path(t, CachedVolatile(), 1)
		p.EnableDepot(2, 1)
		w := r.mgr.RegisterEpochWorker()
		mag := p.NewMagazine(2)

		// Six allocations; freeing the first four leaves prev=[f3,f4]
		// loaded locally and one full unit [f1,f2] in the depot.
		var fs []*Fbuf
		for i := 0; i < 6; i++ {
			f, err := mag.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			fs = append(fs, f)
		}
		for _, f := range fs[:4] {
			if err := mag.Free(f, r.src); err != nil {
				t.Fatal(err)
			}
		}
		if inv := p.Depot().Inventory(); inv != 2 {
			t.Fatalf("depot inventory = %d before death, want 2", inv)
		}
		tr.mark("staged", r)

		// The worker pins, then the receiver dies mid-burst: the path
		// closes, the depot closes, and its unit tears down — parked, not
		// freed, because the worker's advertisement is still out.
		w.Enter()
		r.reg.Terminate(r.dst)
		tr.mark("receiver-dead", r)
		if pend := r.mgr.EpochPending(); pend == 0 {
			t.Fatal("death teardown under a pinned worker parked nothing")
		}

		// The stranded worker never saw the death. Its next two frees push
		// the stash to capacity; the overflow hands the previous magazine
		// to the now-closed depot, which must tear it down in place.
		for _, f := range fs[4:] {
			if err := mag.Free(f, r.src); err != nil {
				t.Fatal(err)
			}
		}
		if inv := p.Depot().Inventory(); inv != 0 {
			t.Fatalf("closed depot accepted a unit: inventory = %d", inv)
		}
		tr.mark("stranded-exchange", r)

		advancePinned(t, r, rng, tr)

		// Draining the magazine tears the rest down through the closed
		// path; the worker then unpins and the backlog retires at once.
		mag.Drain()
		tr.mark("drained-magazine", r)
		w.Exit()
		tr.event("advance-unpinned retired=%d", r.mgr.AdvanceEpoch())
		tr.mark("converged", r)
		if err := r.mgr.CheckConverged(); err != nil {
			t.Fatal(err)
		}
		return tr.b.String()
	})
}

// TestEpochEdgeAdmissionRefundVsEpoch: tenant chunk refunds are VA-side
// accounting and must not wait for physical frame retirement. A rejection
// pressurizes the admission controller; evicting the tenant's path refunds
// its chunk immediately — while every frame of that chunk is still parked
// under a pinned worker — and the pressure signal decays only with
// subsequently admitted grants, one per grant, exactly pressureWindow of
// them, regardless of how the epoch plane interleaves.
func TestEpochEdgeAdmissionRefundVsEpoch(t *testing.T) {
	requireIdenticalTraces(t, func(t *testing.T, seed int64) string {
		rng := rand.New(rand.NewSource(seed))
		tr := &edgeTrace{}
		r := newRig(t)
		adm := NewAdmission(1)
		cl := adm.Class("tenant", 1)
		r.mgr.SetAdmission(adm)
		p := r.path(t, CachedVolatile(), DefaultChunkPages)
		p.SetTenant(cl)
		w := r.mgr.RegisterEpochWorker()
		w.Enter()

		// Exhaust the share, then take the rejection that pressurizes.
		f1, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Alloc(); err == nil {
			t.Fatal("second grant admitted past the share")
		}
		tr.event("rejected inuse=%d pressured=%v", cl.InUse(), adm.Pressured())

		// Free and evict: the chunk drains back and the tenant's charge is
		// refunded now — even though every frame of it is parked behind
		// the pinned worker's epoch.
		if err := r.mgr.Free(f1, r.src); err != nil {
			t.Fatal(err)
		}
		r.mgr.EvictPath(p)
		if cl.InUse() != 0 {
			t.Fatalf("InUse = %d after eviction, want 0 (refund must not wait for the epoch)", cl.InUse())
		}
		if r.mgr.EpochPending() == 0 {
			t.Fatal("eviction under a pinned worker parked nothing")
		}
		tr.mark("refunded-while-parked", r)
		advancePinned(t, r, rng, tr)

		// Pressure decays one step per admitted grant: each cycle carves a
		// fresh chunk (eviction emptied the free list), is admitted, and
		// drains right back. After exactly pressureWindow admitted grants
		// the signal is gone — no sooner, and the epoch backlog growing
		// underneath changes nothing.
		for i := 0; i < pressureWindow; i++ {
			if i == pressureWindow-1 && !adm.Pressured() {
				t.Fatalf("pressure cleared after %d admitted grants, want %d", i, pressureWindow)
			}
			f, err := p.Alloc()
			if err != nil {
				t.Fatalf("admitted grant %d: %v", i, err)
			}
			if err := r.mgr.Free(f, r.src); err != nil {
				t.Fatal(err)
			}
			r.mgr.EvictPath(p)
			if i%4 == 3 {
				tr.event("decay grants=%d pressured=%v pending=%d",
					i+1, adm.Pressured(), r.mgr.EpochPending())
			}
		}
		if adm.Pressured() {
			t.Fatal("pressure still set after a full decay window of admitted grants")
		}
		tr.mark("decayed", r)

		w.Exit()
		tr.event("advance-unpinned retired=%d", r.mgr.AdvanceEpoch())
		tr.mark("converged", r)
		if err := r.mgr.CheckConverged(); err != nil {
			t.Fatal(err)
		}
		return tr.b.String()
	})
}
