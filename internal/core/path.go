package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"fbufs/internal/domain"
	"fbufs/internal/faults"
	"fbufs/internal/machine"
	"fbufs/internal/mem"
	"fbufs/internal/obs"
	"fbufs/internal/obs/span"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

// DefaultPathQuota is the manager's default per-path chunk quota, applied
// to every path whose quota is left at 0 (Manager.DefaultQuota starts at
// this value and may be tuned per manager).
const DefaultPathQuota = 8

// DataPath is one I/O data path: the sequence of protection domains that
// buffers allocated for a particular communication endpoint will traverse
// (originator first). Each path has its own fbuf allocator with a LIFO free
// list and a kernel-imposed chunk quota.
type DataPath struct {
	ID      int
	Name    string
	Domains []*domain.Domain

	mgr       *Manager
	opts      Options
	fbufPages int

	// mu guards the shared allocator state: the free list, the chunk
	// list, the closed flag, and Allocated. It is the path's one shared
	// lock; per-worker magazines exist to keep steady-state alloc/free
	// off it entirely. Acquire through lock()/unlock() so contention is
	// counted.
	mu     sync.Mutex
	free   []*Fbuf // LIFO: most recently freed first (most likely resident)
	chunks []*chunk

	// depot, when non-nil, is the central magazine depot between this
	// path's free list and its workers' magazines (depot.go). Control-plane:
	// installed by EnableDepot before workers start; nil keeps the PR 4
	// item-at-a-time magazine behavior bit-identical.
	depot *Depot

	// quota is the chunk limit (0 = manager default, negative = unlimited).
	// Atomic because SetQuota is a kernel control knob callers may turn
	// while allocators are running: Alloc reads it under the path lock but
	// SetQuota writes it without.
	quota atomic.Int64

	// tenant, when non-nil, charges this path's chunk grants to an
	// admission-control class (see admission.go). Control-plane: set it
	// via SetTenant before traffic starts, like NewPath itself.
	tenant *TenantClass

	// pinned marks the path exempt from path-cache eviction under the
	// pinned-aware policy.
	pinned atomic.Bool

	// evictions counts path-cache demotions of this path.
	evictions atomic.Uint64

	closed bool

	// Stats. Allocated is read and written atomically: the magazines'
	// deferred-counter merge adds to it during a depot exchange without
	// holding the path lock, so a plain lock-guarded field would race with
	// Alloc's own increment (the PR 4 latent bug). Read it via
	// AllocatedCount.
	Allocated uint64

	// Cached per-path metric handles, resolved on first observed use.
	allocHist  *obs.Histogram
	hopHist    *obs.Histogram
	depthGauge *obs.Gauge

	// Per-path shared-lock contention counters (the heatmap's raw data),
	// alongside the manager-global Contention totals. lockWaitNs is wall
	// clock, sampled only on the contended slow path and only when the
	// manager's WallNow hook is installed, so the deterministic
	// single-threaded mode never reads the real clock.
	lockAcquires  uint64
	lockContended uint64
	lockWaitNs    int64
}

// NewPath creates a data path. fbufPages is the fixed fbuf size for the
// path's allocator (PDU- or ADU-sized, chosen by the endpoint). The first
// domain is the originator; all domains are attached to the fbuf region.
func (m *Manager) NewPath(name string, opts Options, fbufPages int, domains ...*domain.Domain) (*DataPath, error) {
	if len(domains) == 0 {
		return nil, fmt.Errorf("core: path %q needs at least one domain", name)
	}
	if fbufPages <= 0 || fbufPages > m.chunkPages {
		return nil, fmt.Errorf("core: path %q fbuf size %d pages outside (0,%d]", name, fbufPages, m.chunkPages)
	}
	for _, d := range domains {
		if d.Dead() {
			return nil, ErrDeadDomain
		}
		m.AttachDomain(d)
	}
	p := &DataPath{
		ID:        m.nextPath,
		Name:      name,
		Domains:   domains,
		mgr:       m,
		opts:      opts,
		fbufPages: fbufPages,
	}
	m.nextPath++
	m.paths[p.ID] = p
	if o := m.Sys.Obs; o != nil && o.Tracer != nil {
		o.Tracer.SetTrack(p.ID+m.Sys.TraceBase, m.TracePrefix+name)
	}
	return p, nil
}

// Options returns the path's fbuf options.
func (p *DataPath) Options() Options { return p.opts }

// FbufPages returns the allocator's fixed fbuf size in pages.
func (p *DataPath) FbufPages() int { return p.fbufPages }

// Originator returns the path's first domain.
func (p *DataPath) Originator() *domain.Domain { return p.Domains[0] }

// SetQuota adjusts the kernel-imposed chunk limit: a positive value is an
// explicit limit, 0 restores the manager default, negative disables the
// quota entirely. Safe to call while allocators are running.
func (p *DataPath) SetQuota(chunks int) { p.quota.Store(int64(chunks)) }

// Quota returns the effective chunk limit: the explicit per-path value
// when set, otherwise the manager default. A return of 0 means the quota
// is disabled (SetQuota was given a negative value, or the resolved
// default is non-positive). Note the asymmetry with SetQuota's input,
// where 0 means "use the manager default" — only negative disables.
func (p *DataPath) Quota() int {
	q := int(p.quota.Load())
	if q == 0 {
		q = p.mgr.DefaultQuota
	}
	if q < 0 {
		return 0
	}
	return q
}

// SetTenant assigns the path to an admission-control tenant class; chunk
// grants are charged against the class's weighted share once the manager
// has an Admission controller installed. Control-plane: call before
// traffic starts (grants made earlier are never charged).
func (p *DataPath) SetTenant(t *TenantClass) { p.tenant = t }

// Tenant returns the path's admission class (nil when unassigned).
func (p *DataPath) Tenant() *TenantClass { return p.tenant }

// SetPinned marks or unmarks the path as exempt from path-cache eviction
// under the pinned-aware policy.
func (p *DataPath) SetPinned(v bool) { p.pinned.Store(v) }

// Pinned reports the eviction-exemption mark.
func (p *DataPath) Pinned() bool { return p.pinned.Load() }

// Evictions returns how many times the path cache demoted this path.
func (p *DataPath) Evictions() uint64 { return p.evictions.Load() }

// lock acquires the path's shared allocator lock, counting traffic and
// contention (a failed TryLock means another worker held the lock).
func (p *DataPath) lock() {
	atomic.AddUint64(&p.mgr.contention.LockAcquires, 1)
	atomic.AddUint64(&p.lockAcquires, 1)
	if p.mu.TryLock() {
		return
	}
	atomic.AddUint64(&p.mgr.contention.LockContended, 1)
	atomic.AddUint64(&p.lockContended, 1)
	now := p.mgr.WallNow
	var t0 int64
	if now != nil {
		t0 = now()
	}
	p.mu.Lock()
	if now != nil {
		atomic.AddInt64(&p.lockWaitNs, now()-t0)
	}
}

// PathContention is one path's shared-lock traffic, the raw material for
// the profiler's contention heatmap. WaitNs is wall-clock waiting measured
// on contended acquires only, and only when Manager.WallNow is installed
// (zero in deterministic single-threaded runs).
type PathContention struct {
	Name      string
	Acquires  uint64
	Contended uint64
	WaitNs    int64
}

// ContentionByPath snapshots per-path lock contention for the open paths,
// in ascending path ID order.
func (m *Manager) ContentionByPath() []PathContention {
	paths := m.pathsByID()
	out := make([]PathContention, 0, len(paths))
	for _, p := range paths {
		out = append(out, PathContention{
			Name:      p.Name,
			Acquires:  atomic.LoadUint64(&p.lockAcquires),
			Contended: atomic.LoadUint64(&p.lockContended),
			WaitNs:    atomic.LoadInt64(&p.lockWaitNs),
		})
	}
	return out
}

func (p *DataPath) unlock() { p.mu.Unlock() }

// isClosed reads the closed flag under the path lock.
func (p *DataPath) isClosed() bool {
	p.lock()
	defer p.unlock()
	return p.closed
}

// FreeListLen returns the current free-list depth (tests, reclamation).
func (p *DataPath) FreeListLen() int {
	p.lock()
	defer p.unlock()
	return len(p.free)
}

// AllocatedCount returns the path's lifetime allocation count (atomic —
// the concurrency-safe read of the Allocated field).
func (p *DataPath) AllocatedCount() uint64 {
	return atomic.LoadUint64(&p.Allocated)
}

// metricPrefix names this path's metrics uniquely across hosts.
func (p *DataPath) metricPrefix() string {
	return fmt.Sprintf("path.%d.%s.", p.ID+p.mgr.Sys.TraceBase, p.Name)
}

// ensureMetrics resolves the per-path histogram/gauge handles once.
func (p *DataPath) ensureMetrics(o *obs.Observer) {
	if p.allocHist != nil || o == nil || o.Metrics == nil {
		return
	}
	prefix := p.metricPrefix()
	p.allocHist = o.Metrics.Histogram(prefix + "alloc_ns")
	p.hopHist = o.Metrics.Histogram(prefix + "hop_ns")
	p.depthGauge = o.Metrics.Gauge(prefix + "free_depth")
}

// Alloc allocates an fbuf from the path allocator on behalf of the
// originator. In the cached steady state this pops the LIFO free list and
// performs no mapping work at all; on a miss it carves a new fbuf from the
// path's current chunk, requesting a new chunk from the kernel when needed.
func (p *DataPath) Alloc() (*Fbuf, error) {
	m := p.mgr
	if p.isClosed() {
		return nil, ErrPathClosed
	}
	if p.Originator().Dead() {
		return nil, ErrDeadDomain
	}
	// An injected path-alloc fault models the kernel refusing this path a
	// buffer right now (e.g. a tightened quota or an administrative freeze)
	// — same error, same recovery obligation on the caller. It sits at the
	// Alloc boundary, ahead of the free list, so a drought can be injected
	// even while previously-carved buffers are circulating.
	if m.Sys.FaultPlane.Should(faults.PathAlloc) {
		atomic.AddUint64(&m.stats.AllocFailures, 1)
		m.emit(obs.EvAllocFailed, p.Originator(), nil, 0)
		return nil, ErrQuota
	}
	// Path-cache residency: an allocation is the path's "use". Touching
	// may demote another path; it never takes this path's lock.
	m.touchPath(p)
	o := m.Sys.Obs
	var t0 simtime.Time
	if o != nil {
		t0 = o.Now()
		o.SpanBegin(span.StageAlloc, "core", int(p.Originator().ID)+m.Sys.TraceBase, int64(p.fbufPages))
		defer o.SpanEnd()
	}
	p.lock()
	atomic.AddUint64(&m.stats.Allocs, 1)
	atomic.AddUint64(&p.Allocated, 1)
	if p.opts.Cached {
		if n := len(p.free); n > 0 {
			var f *Fbuf
			if p.opts.FIFO {
				f = p.free[0]
				p.free = p.free[1:]
			} else {
				f = p.free[n-1]
				p.free = p.free[:n-1]
			}
			depth := len(p.free)
			p.unlock()
			if m.san != nil {
				m.san.verifyReuse(f)
			}
			atomic.AddUint64(&m.stats.CacheHits, 1)
			f.resetLive(p.Originator())
			p.observeAlloc(o, f, t0, true, depth)
			return f, nil
		}
	}
	// Both the cached miss and the uncached path pay the full carve.
	atomic.AddUint64(&m.stats.CacheMisses, 1)
	depth := len(p.free)
	f, err := p.carveLocked()
	if err != nil {
		if IsAllocFailure(err) {
			atomic.AddUint64(&m.stats.AllocFailures, 1)
			m.emit(obs.EvAllocFailed, p.Originator(), nil, 0)
		}
		return nil, err
	}
	p.observeAlloc(o, f, t0, false, depth)
	return f, nil
}

// observeAlloc emits the allocation events and samples the path's
// alloc-latency histogram; o == nil (tracing disabled) costs one branch.
// depth is the free-list depth captured under the path lock.
func (p *DataPath) observeAlloc(o *obs.Observer, f *Fbuf, t0 simtime.Time, hit bool, depth int) {
	if o == nil {
		return
	}
	m := p.mgr
	m.emit(obs.EvAlloc, p.Originator(), f, int64(f.Pages))
	if hit {
		m.emit(obs.EvCacheHit, p.Originator(), f, int64(depth))
	} else {
		m.emit(obs.EvCacheMiss, p.Originator(), f, 0)
	}
	p.ensureMetrics(o)
	p.allocHist.Observe(int64(o.Now() - t0))
	p.depthGauge.Set(int64(depth))
}

// carveLocked builds a brand-new fbuf from chunk space. It is called with
// the path lock held and releases it before population work, whose failure
// rollback re-enters the recycle machinery (which takes the lock itself).
func (p *DataPath) carveLocked() (*Fbuf, error) {
	m := p.mgr
	var c *chunk
	for _, cc := range p.chunks {
		if cc.used+p.fbufPages <= m.chunkPages {
			c = cc
			break
		}
	}
	if c == nil {
		if q := p.Quota(); q > 0 && len(p.chunks) >= q {
			p.unlock()
			return nil, ErrQuota
		}
		// Per-tenant admission sits between the per-path quota and the
		// kernel grant: a path inside its own quota can still be refused
		// because its tenant class's weighted share of the region is spent.
		if t := p.tenant; t != nil && m.admission != nil {
			if !m.admission.admit(t) {
				p.unlock()
				atomic.AddUint64(&m.stats.AdmissionRejects, 1)
				m.emit(obs.EvAdmissionReject, p.Originator(), nil, int64(p.ID))
				return nil, ErrAdmission
			}
		}
		var err error
		c, err = m.grantChunk(p)
		if err != nil {
			if t := p.tenant; t != nil && m.admission != nil {
				m.admission.release(t) // grant failed: refund the charge
			}
			p.unlock()
			return nil, err
		}
		p.chunks = append(p.chunks, c)
	}
	f := &Fbuf{
		Base:       c.base + vm.VA(c.used*machine.PageSize),
		Pages:      p.fbufPages,
		Path:       p,
		Originator: p.Originator(),
		mgr:        m,
		opts:       p.opts,
		frames:     make([]mem.FrameNum, p.fbufPages),
		refs:       map[domain.ID]int{p.Originator().ID: 1},
		mapped:     map[domain.ID]bool{},
	}
	f.st.Store(uint32(StateLive))
	f.total.Store(1)
	for i := range f.frames {
		f.frames[i] = mem.NoFrame
	}
	c.used += p.fbufPages
	c.mu.Lock()
	c.fbufs = append(c.fbufs, f)
	c.mu.Unlock()
	p.unlock()
	m.emit(obs.EvCarve, p.Originator(), f, int64(p.fbufPages))
	if p.opts.Populate {
		if err := m.populate(f); err != nil {
			// Partial population (physical memory exhausted): release
			// what was attached rather than leaking a live fbuf.
			f.mu.Lock()
			f.refs = map[domain.ID]int{}
			f.mu.Unlock()
			f.total.Store(0)
			m.recycle(f)
			return nil, err
		}
	}
	return f, nil
}

// AllocBatch fills out with len(out) freshly allocated fbufs, amortizing
// one path-lock acquisition over all the cached free-list pops: per-fbuf
// events, stats, and fault-plane consultations are identical to calling
// Alloc in a loop, but k steady-state allocations cost one shared-lock
// round trip instead of k. Slots that cannot be served from the free list
// fall through to the normal carve path. It returns the number of slots
// filled; on error the first n slots remain allocated, exactly like a
// caller's Alloc loop that stops at the failure.
func (p *DataPath) AllocBatch(out []*Fbuf) (int, error) {
	m := p.mgr
	if len(out) == 0 {
		return 0, nil
	}
	if p.isClosed() {
		return 0, ErrPathClosed
	}
	if p.Originator().Dead() {
		return 0, ErrDeadDomain
	}
	// One residency touch covers the whole batch (same recency signal an
	// Alloc loop's first iteration would give the cache).
	m.touchPath(p)
	o := m.Sys.Obs
	var t0 simtime.Time
	if o != nil {
		t0 = o.Now()
	}
	filled := 0
	if p.opts.Cached {
		type popped struct {
			f     *Fbuf
			depth int
		}
		var pops []popped
		var ferr error
		p.lock()
		if p.closed {
			p.unlock()
			return 0, ErrPathClosed
		}
		for len(pops) < len(out) && len(p.free) > 0 {
			// Per-item fault consultation, same stream order as an
			// Alloc loop (the plane never observes events, so batching
			// cannot shift any fault schedule).
			if m.Sys.FaultPlane.Should(faults.PathAlloc) {
				ferr = ErrQuota
				break
			}
			atomic.AddUint64(&m.stats.Allocs, 1)
			atomic.AddUint64(&p.Allocated, 1)
			var f *Fbuf
			if p.opts.FIFO {
				f = p.free[0]
				p.free = p.free[1:]
			} else {
				f = p.free[len(p.free)-1]
				p.free = p.free[:len(p.free)-1]
			}
			pops = append(pops, popped{f, len(p.free)})
		}
		p.unlock()
		// Reuse verification, state reset, and events happen outside the
		// lock, in pop order.
		for _, pp := range pops {
			if m.san != nil {
				m.san.verifyReuse(pp.f)
			}
			atomic.AddUint64(&m.stats.CacheHits, 1)
			pp.f.resetLive(p.Originator())
			p.observeAlloc(o, pp.f, t0, true, pp.depth)
			out[filled] = pp.f
			filled++
		}
		if ferr != nil {
			atomic.AddUint64(&m.stats.AllocFailures, 1)
			m.emit(obs.EvAllocFailed, p.Originator(), nil, 0)
			return filled, ferr
		}
	}
	// Remaining slots pay the full carve (or are uncached).
	for filled < len(out) {
		f, err := p.Alloc()
		if err != nil {
			return filled, err
		}
		out[filled] = f
		filled++
	}
	return filled, nil
}

// AllocUncached allocates from the default allocator: an fbuf belonging to
// no data path, used when the I/O data path cannot be determined at
// allocation time ("this allocator returns uncached fbufs, and as a
// consequence, VM map manipulations are necessary for each domain
// transfer", section 5.2).
func (m *Manager) AllocUncached(orig *domain.Domain, pages int, opts Options) (*Fbuf, error) {
	return m.AllocUncachedFill(orig, pages, opts, 0)
}

// AllocUncachedFill is AllocUncached with a fill hint from a trusted
// caller: the first fill bytes are about to be completely overwritten
// (e.g. by device DMA), so pages wholly inside that prefix need no
// security clear — only the remainder is zeroed. This is the partial-page
// clearing the paper prices at "between 42 and 99 us/page ... depending on
// what percentage of each page needed to be cleared". Untrusted callers
// must not be offered the hint.
func (m *Manager) AllocUncachedFill(orig *domain.Domain, pages int, opts Options, fill int) (*Fbuf, error) {
	if orig.Dead() {
		return nil, ErrDeadDomain
	}
	if !m.Attached(orig) {
		return nil, ErrNotAttached
	}
	if pages <= 0 || pages > m.chunkPages {
		return nil, fmt.Errorf("core: uncached fbuf size %d pages outside (0,%d]", pages, m.chunkPages)
	}
	opts.Cached = false
	atomic.AddUint64(&m.stats.Allocs, 1)
	atomic.AddUint64(&m.stats.CacheMisses, 1)
	// The default allocator draws VA space chunk-at-a-time too, but each
	// uncached fbuf gets a fresh chunk slot lifecycle: we allocate a VA
	// range (charged) within a kernel-owned chunk. The whole selection and
	// carve runs under regionMu — the default allocator is the kernel's
	// own, so it is serialized like any kernel service.
	m.Sys.Sink().Charge(m.Sys.Cost.VAAlloc)
	m.regionMu.Lock()
	var c *chunk
	for _, cc := range m.chunks {
		if cc != nil && cc.owner == nil && cc.used+pages <= m.chunkPages {
			c = cc
			break
		}
	}
	if c == nil {
		var err error
		c, err = m.grantChunkLocked(nil)
		if err != nil {
			m.regionMu.Unlock()
			if IsAllocFailure(err) {
				atomic.AddUint64(&m.stats.AllocFailures, 1)
				m.emit(obs.EvAllocFailed, orig, nil, 0)
			}
			return nil, err
		}
	}
	f := &Fbuf{
		Base:       c.base + vm.VA(c.used*machine.PageSize),
		Pages:      pages,
		Originator: orig,
		mgr:        m,
		opts:       opts,
		frames:     make([]mem.FrameNum, pages),
		refs:       map[domain.ID]int{orig.ID: 1},
		mapped:     map[domain.ID]bool{},
	}
	f.st.Store(uint32(StateLive))
	f.total.Store(1)
	for i := range f.frames {
		f.frames[i] = mem.NoFrame
	}
	c.used += pages
	c.mu.Lock()
	c.fbufs = append(c.fbufs, f)
	c.mu.Unlock()
	m.uncached[f.Base] = f
	m.regionMu.Unlock()
	m.emit(obs.EvAlloc, orig, f, int64(pages))
	m.emit(obs.EvCacheMiss, orig, f, 0)
	if opts.Populate {
		if err := m.populateFill(f, fill); err != nil {
			f.mu.Lock()
			f.refs = map[domain.ID]int{}
			f.mu.Unlock()
			f.total.Store(0)
			m.recycle(f)
			if IsAllocFailure(err) {
				atomic.AddUint64(&m.stats.AllocFailures, 1)
				m.emit(obs.EvAllocFailed, orig, nil, 0)
			}
			return nil, err
		}
	}
	return f, nil
}

// populate eagerly attaches frames and maps them writable in the
// originator, clearing dirty frames unless the allocator opted out. The
// fbuf itself holds one reference per frame (so data survives even when no
// domain has a mapping yet — receivers of integrated transfers map
// lazily); each domain mapping holds its own additional reference.
func (m *Manager) populate(f *Fbuf) error { return m.populateFill(f, 0) }

// populateFill is populate with the trusted-fill hint: pages entirely
// within the first fill bytes will be fully overwritten and skip clearing.
func (m *Manager) populateFill(f *Fbuf, fill int) error {
	as := f.Originator.AS
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.frames {
		if f.frames[i] != mem.NoFrame {
			continue
		}
		skipClear := (i+1)*machine.PageSize <= fill
		fn, err := m.allocFrame(f, skipClear)
		if err != nil {
			return err
		}
		f.frames[i] = fn
		as.Map(f.Base+vm.VA(i*machine.PageSize), fn, vm.ReadWrite)
	}
	f.mapped[f.Originator.ID] = true
	return nil
}

// allocFrame takes a frame for the fbuf (the fbuf's ownership reference),
// clearing it per policy.
func (m *Manager) allocFrame(f *Fbuf, skipClear bool) (mem.FrameNum, error) {
	fn, err := m.Sys.AllocFrame()
	if err != nil {
		return mem.NoFrame, err
	}
	m.Sys.Sink().Charge(m.Sys.Cost.FrameAlloc)
	fr := m.Sys.Mem.Frame(fn)
	if !fr.Zeroed && !f.opts.NoClear && !skipClear {
		m.Sys.Sink().Charge(m.Sys.Cost.PageClear)
		m.Sys.Mem.Zero(fn)
	}
	return fn, nil
}

// releaseFrames drops the fbuf's ownership references (teardown or
// reclamation); mappings must already be gone for the frames to actually
// free. The release is epoch-deferred once workers register (epoch.go), so
// teardown from domainDied, ClosePath, or EvictPath never returns a frame
// to mem under an allocating worker's feet.
func (m *Manager) releaseFrames(f *Fbuf) {
	for i, fn := range f.frames {
		if fn == mem.NoFrame {
			continue
		}
		m.deferFrameFree(fn)
		f.frames[i] = mem.NoFrame
	}
}

// Transfer passes the fbuf from one domain to another with copy semantics:
// the sender keeps its reference (Free it explicitly when done), the
// receiver gains one. For non-volatile fbufs the first transfer out of the
// originator eagerly removes the originator's write permission. Mapping
// into the receiver happens only if the receiver has no (possibly cached)
// mapping already — the cached steady state transfers with zero VM work.
func (m *Manager) Transfer(f *Fbuf, from, to *domain.Domain) error {
	if s := f.loadState(); s != StateLive {
		return fmt.Errorf("core: transfer of %s fbuf %#x", s, uint64(f.Base))
	}
	if !f.HeldBy(from) {
		return ErrNotHolder
	}
	if to.Dead() {
		return ErrDeadDomain
	}
	if !m.Attached(to) {
		return ErrNotAttached
	}
	o := m.Sys.Obs
	var t0 simtime.Time
	if o != nil {
		t0 = o.Now()
		o.SpanBegin(span.StageMap, "core", int(to.ID)+m.Sys.TraceBase, int64(f.Pages))
		defer o.SpanEnd()
	}
	atomic.AddUint64(&m.stats.Transfers, 1)
	m.emit(obs.EvTransfer, from, f, int64(to.ID)+int64(m.Sys.TraceBase))
	// Eager immutability enforcement for non-volatile fbufs — a no-op
	// when the originator is trusted (the kernel), matching section 2.1.3.
	if !f.opts.Volatile && !f.isSecured() && from == f.Originator && !f.Originator.Trusted {
		m.secure(f)
	}
	// Receiver mapping policy: a non-integrated transfer passes the fbuf
	// list through the kernel, which maps the pages into the receiver
	// eagerly (the Table 1 measurement). An integrated transfer involves
	// no kernel at all — the receiver's mappings are established lazily
	// by page faults on first touch, which is why a domain that never
	// touches the message body (the paper's UDP-in-netserver case) pays
	// no mapping cost whatsoever.
	f.mu.Lock()
	if from != to && !f.mapped[to.ID] && !f.opts.Integrated {
		prot := vm.ProtRead
		for i := 0; i < f.Pages; i++ {
			if f.frames[i] == mem.NoFrame {
				continue // lazy: receiver faults will fill
			}
			to.AS.Map(f.Base+vm.VA(i*machine.PageSize), f.frames[i], prot)
			atomic.AddUint64(&m.stats.MappingsBuilt, 1)
			m.emit(obs.EvMappingBuilt, to, f, int64(i))
		}
		f.mapped[to.ID] = true
	}
	f.refs[to.ID]++
	f.mu.Unlock()
	f.total.Add(1)
	if o != nil && f.Path != nil {
		f.Path.ensureMetrics(o)
		f.Path.hopHist.Observe(int64(o.Now() - t0))
	}
	return nil
}

// DupRef adds another reference for a domain that already holds one —
// local bookkeeping used by the aggregate layer when a split leaves two
// messages referencing the same fbuf. It is free: reference counts are
// per-domain state, not VM state.
func (m *Manager) DupRef(f *Fbuf, d *domain.Domain) error {
	if s := f.loadState(); s != StateLive {
		return fmt.Errorf("core: dupref of %s fbuf", s)
	}
	f.mu.Lock()
	if f.refs[d.ID] == 0 {
		f.mu.Unlock()
		return ErrNotHolder
	}
	f.refs[d.ID]++
	f.mu.Unlock()
	f.total.Add(1)
	return nil
}

// FbufAt returns the live or cached fbuf containing va, or nil. The
// aggregate layer uses it for the section 3.2.4 pointer validation during
// integrated-DAG traversal.
func (m *Manager) FbufAt(va vm.VA) *Fbuf { return m.fbufAt(va) }

// Secure raises the protection on the fbuf in the originator domain at a
// receiver's request (the lazy alternative for volatile fbufs). It is a
// no-op when the originator is trusted or the fbuf is already secured.
func (m *Manager) Secure(f *Fbuf, requester *domain.Domain) error {
	if s := f.loadState(); s != StateLive {
		return fmt.Errorf("core: secure of %s fbuf", s)
	}
	if !f.HeldBy(requester) {
		return ErrNotHolder
	}
	if f.isSecured() || f.Originator.Trusted {
		return nil
	}
	m.Sys.Sink().Charge(m.Sys.Cost.KernelCall)
	m.secure(f)
	return nil
}

// secure removes the originator's write permission page by page. Two
// workers racing here both walk the pages (idempotent SetProt) and both
// set the secured bit; the protection state converges either way.
func (m *Manager) secure(f *Fbuf) {
	if o := m.Sys.Obs; o != nil {
		o.SpanBegin(span.StageSecure, "core", int(f.Originator.ID)+m.Sys.TraceBase, int64(f.Pages))
		defer o.SpanEnd()
	}
	as := f.Originator.AS
	f.mu.Lock()
	for i := 0; i < f.Pages; i++ {
		if f.frames[i] == mem.NoFrame {
			continue
		}
		as.SetProt(f.Base+vm.VA(i*machine.PageSize), vm.ProtRead)
	}
	f.mu.Unlock()
	f.setSecured(true)
	atomic.AddUint64(&m.stats.Secures, 1)
	m.emit(obs.EvSecure, f.Originator, f, int64(f.Pages))
}

// Free drops one of d's references to the fbuf. When the last reference
// anywhere is dropped the fbuf is recycled — immediately if the last freer
// is the originator (whose allocator owns the buffer), otherwise after the
// deallocation notice reaches the owning domain (piggybacked on the next
// RPC reply, or pushed explicitly when too many accumulate).
func (m *Manager) Free(f *Fbuf, d *domain.Domain) error {
	return m.freeOne(f, d, nil)
}

// FreeBatch drops one of d's references on each fbuf, amortizing shared-lock
// traffic over the batch: per-fbuf events, stats, notice behavior, and
// recycle order are identical to calling Free on each fbuf in sequence, but
// recycles landing on one cached path's free list are pushed together under
// a single path-lock acquisition. On the first error the batch stops (like a
// caller's Free loop would), with earlier fbufs already freed.
func (m *Manager) FreeBatch(fs []*Fbuf, d *domain.Domain) error {
	var batch recycleBatch
	for _, f := range fs {
		if err := m.freeOne(f, d, &batch); err != nil {
			m.flushRecycleBatch(&batch)
			return err
		}
	}
	m.flushRecycleBatch(&batch)
	return nil
}

// freeOne is Free with optional recycle batching (batch may be nil).
func (m *Manager) freeOne(f *Fbuf, d *domain.Domain, batch *recycleBatch) error {
	if s := f.loadState(); s != StateLive {
		return fmt.Errorf("core: free of %s fbuf %#x", s, uint64(f.Base))
	}
	if o := m.Sys.Obs; o != nil {
		o.SpanBegin(span.StageFree, "core", int(d.ID)+m.Sys.TraceBase, int64(f.Pages))
		defer o.SpanEnd()
	}
	f.mu.Lock()
	if f.refs[d.ID] == 0 {
		f.mu.Unlock()
		return ErrNotHolder
	}
	atomic.AddUint64(&m.stats.Frees, 1)
	m.emit(obs.EvFree, d, f, 0)
	f.refs[d.ID]--
	f.total.Add(-1)
	if f.refs[d.ID] == 0 {
		delete(f.refs, d.ID)
		// Uncached fbufs tear down the receiver mapping as soon as the
		// receiver is done (cached ones keep it for reuse).
		if !f.opts.Cached && d != f.Originator && f.mapped[d.ID] {
			m.unmapFromLocked(f, d)
		}
	}
	last := len(f.refs) == 0
	f.mu.Unlock()
	if !last {
		return nil
	}
	// Last reference anywhere. The notice indirection exists so the
	// owning domain's allocator learns about the free; when there is no
	// live owning allocator to inform (default-allocator fbufs, dead
	// originator, closed path) the kernel recycles directly.
	if d == f.Originator || f.Path == nil || f.Originator.Dead() || f.Path.isClosed() {
		m.recycleB(f, batch)
		return nil
	}
	f.setState(StateDrainingNotice)
	k := noticeKey{holder: d.ID, owner: f.Originator.ID}
	m.noticeMu.Lock()
	m.notices[k] = append(m.notices[k], f)
	n := len(m.notices[k])
	var overflow []*Fbuf
	if n >= m.NoticeLimit {
		overflow = m.notices[k]
		delete(m.notices, k)
	}
	m.noticeMu.Unlock()
	atomic.AddUint64(&m.stats.NoticesQueued, 1)
	m.emit(obs.EvNoticeQueued, d, f, int64(n))
	if overflow != nil {
		// Explicit notification message: costs a kernel call's worth
		// of work on this host (it is an intra-host message).
		m.Sys.Sink().Charge(m.Sys.Cost.KernelCall)
		atomic.AddUint64(&m.stats.NoticesExplicit, uint64(len(overflow)))
		m.emit(obs.EvNoticeExplicit, d, nil, int64(len(overflow)))
		m.observeNoticeBatch(len(overflow))
		for _, ff := range overflow {
			m.recycle(ff)
		}
	}
	return nil
}

// DeliverNotices is the ipc.ReplyHook glue: when a reply travels from
// `replier` back to `caller`, any deallocation notices held at the replier
// for fbufs owned by the caller ride along for free.
func (m *Manager) DeliverNotices(replier, caller *domain.Domain) {
	if o := m.Sys.Obs; o != nil {
		o.SpanBegin(span.StageNotice, "core", int(replier.ID)+m.Sys.TraceBase, 0)
		defer o.SpanEnd()
	}
	batch := m.popNotices(noticeKey{holder: replier.ID, owner: caller.ID})
	if n := len(batch); n > 0 {
		atomic.AddUint64(&m.stats.NoticesPiggy, uint64(n))
		m.emit(obs.EvNoticePiggy, replier, nil, int64(n))
		m.observeNoticeBatch(n)
		for _, f := range batch {
			m.recycle(f)
		}
	}
}

// CollectNotices pops the pending deallocation notices held at holder for
// fbufs owned by owner and counts them as ring-coalesced: the batch rides a
// single ring completion entry instead of a reply, so no per-descriptor
// marshalling is charged. The caller must hand the returned batch to
// RetireNotices on the owner's side of the ring (directly if the
// completion ring is full).
func (m *Manager) CollectNotices(holder, owner *domain.Domain) []*Fbuf {
	batch := m.popNotices(noticeKey{holder: holder.ID, owner: owner.ID})
	if n := len(batch); n > 0 {
		atomic.AddUint64(&m.stats.NoticesRing, uint64(n))
		m.emit(obs.EvNoticeRing, holder, nil, int64(n))
		m.observeNoticeBatch(n)
	}
	return batch
}

// RetireNotices recycles a batch previously popped by CollectNotices — the
// owner side draining a coalesced-notice completion entry. Recycling
// handles dead originators and closed paths the same way the piggyback
// path does, so crash interplay is unchanged.
func (m *Manager) RetireNotices(batch []*Fbuf) {
	if len(batch) == 0 {
		return
	}
	if o := m.Sys.Obs; o != nil {
		o.SpanBegin(span.StageNotice, "core", obs.NoActor, int64(len(batch)))
		defer o.SpanEnd()
	}
	for _, f := range batch {
		m.recycle(f)
	}
}

// observeNoticeBatch samples the notice batch-size histogram.
func (m *Manager) observeNoticeBatch(n int) {
	if o := m.Sys.Obs; o != nil {
		o.Observe("core.notice_batch", int64(n))
	}
}

// popNotices removes and returns the pending notice batch for k.
func (m *Manager) popNotices(k noticeKey) []*Fbuf {
	m.noticeMu.Lock()
	b := m.notices[k]
	delete(m.notices, k)
	m.noticeMu.Unlock()
	return b
}

// recycleBatch collects same-path cached recycles during FreeBatch so all
// free-list pushes land under one path-lock acquisition. The path is
// latched on the first eligible recycle; fbufs of other paths fall back to
// immediate per-fbuf pushes.
type recycleBatch struct {
	path  *DataPath
	fbufs []*Fbuf
}

// recycle returns an fbuf to its allocator. Cached fbufs go to the path's
// LIFO free list with mappings intact and the originator's write permission
// restored; uncached fbufs are fully torn down.
func (m *Manager) recycle(f *Fbuf) { m.recycleB(f, nil) }

// recycleB is recycle with optional free-list push batching (FreeBatch).
func (m *Manager) recycleB(f *Fbuf, batch *recycleBatch) {
	atomic.AddUint64(&m.stats.Recycles, 1)
	m.emit(obs.EvRecycle, f.Originator, f, 0)
	if m.san != nil {
		// A free-listed fbuf being torn down (ClosePath, dead originator)
		// gets its canaries verified one last time before the frames go.
		m.san.verifyReuse(f)
	}
	p := f.Path
	if p != nil && p.opts.Cached && !f.Originator.Dead() {
		if batch != nil {
			if batch.path == nil && !p.isClosed() {
				batch.path = p
			}
			if batch.path == p {
				m.resetForFreeList(f)
				if m.san != nil {
					m.san.poisonFree(f)
				}
				batch.fbufs = append(batch.fbufs, f)
				return
			}
		}
		p.lock()
		if !p.closed {
			m.resetForFreeList(f)
			p.free = append(p.free, f) // LIFO push
			depth := len(p.free)
			if m.san != nil {
				m.san.poisonFree(f)
			}
			p.unlock()
			if o := m.Sys.Obs; o != nil {
				p.ensureMetrics(o)
				p.depthGauge.Set(int64(depth))
			}
			return
		}
		p.unlock()
	}
	// Full teardown (uncached, or path closed / originator dead).
	m.teardown(f)
}

// teardown fully releases a recycled fbuf: receiver mappings are shot
// down, frames returned, VA space freed, and the chunk released when it
// drains. Shared by recycleB's uncached/closed branch and by path-cache
// eviction (EvictPath), which demotes free-listed fbufs without closing
// the path. The caller owns the fbuf exclusively.
func (m *Manager) teardown(f *Fbuf) {
	f.mu.Lock()
	for id := range f.mapped {
		if d := m.domainByID(id); d != nil && !d.Dead() {
			m.unmapFromLocked(f, d)
		}
	}
	m.releaseFrames(f)
	f.refs = map[domain.ID]int{}
	f.mu.Unlock()
	f.setState(StateFree)
	f.total.Store(0)
	f.setSecured(false)
	m.Sys.Sink().Charge(m.Sys.Cost.VAFree)
	m.removeFromChunk(f)
}

// resetForFreeList restores the originator's write permission and resets
// the fbuf to its free-list state. The caller owns the fbuf exclusively
// (its last reference was just dropped).
func (m *Manager) resetForFreeList(f *Fbuf) {
	if f.isSecured() {
		// "write permissions are returned to the originator"
		as := f.Originator.AS
		f.mu.Lock()
		for i := 0; i < f.Pages; i++ {
			if f.frames[i] == mem.NoFrame {
				continue
			}
			as.SetProt(f.Base+vm.VA(i*machine.PageSize), vm.ReadWrite)
		}
		f.mu.Unlock()
		f.setSecured(false)
	}
	f.setState(StateFree)
	f.mu.Lock()
	f.refs = map[domain.ID]int{}
	f.mu.Unlock()
	f.total.Store(0)
}

// flushRecycleBatch pushes all deferred recycles onto the latched path's
// free list under one lock acquisition.
func (m *Manager) flushRecycleBatch(b *recycleBatch) {
	if b.path == nil || len(b.fbufs) == 0 {
		return
	}
	p := b.path
	p.lock()
	p.free = append(p.free, b.fbufs...) // LIFO push, batch order preserved
	depth := len(p.free)
	p.unlock()
	b.fbufs = nil
	if o := m.Sys.Obs; o != nil {
		p.ensureMetrics(o)
		p.depthGauge.Set(int64(depth))
	}
}

// unmapFromLocked tears down all of the fbuf's PTEs in d. The fbuf's own
// frame references keep the frames alive. Called with f.mu held.
func (m *Manager) unmapFromLocked(f *Fbuf, d *domain.Domain) {
	for i := 0; i < f.Pages; i++ {
		if f.frames[i] == mem.NoFrame {
			continue
		}
		d.AS.Unmap(f.Base + vm.VA(i*machine.PageSize))
	}
	delete(f.mapped, d.ID)
}

// removeFromChunk retires a torn-down fbuf; when its chunk drains the chunk
// returns to the kernel. Locks are taken one at a time (region table, chunk
// directory, owning path), never nested, so the call participates in no
// lock-order cycle.
func (m *Manager) removeFromChunk(f *Fbuf) {
	idx := int((f.Base - RegionBase) / vm.VA(m.chunkPages*machine.PageSize))
	m.regionMu.Lock()
	delete(m.uncached, f.Base)
	c := m.chunks[idx]
	m.regionMu.Unlock()
	if c == nil {
		return
	}
	c.mu.Lock()
	for i, ff := range c.fbufs {
		if ff == f {
			c.fbufs = append(c.fbufs[:i], c.fbufs[i+1:]...)
			break
		}
	}
	drained := len(c.fbufs) == 0
	c.mu.Unlock()
	if !drained {
		return
	}
	if c.owner != nil {
		c.owner.lock()
		for i, cc := range c.owner.chunks {
			if cc == c {
				c.owner.chunks = append(c.owner.chunks[:i], c.owner.chunks[i+1:]...)
				break
			}
		}
		c.owner.unlock()
	}
	m.releaseChunk(c)
}

func (m *Manager) domainByID(id domain.ID) *domain.Domain { return m.Reg.Get(id) }

// pathsByID snapshots the open paths in ascending ID order, so that
// region-wide sweeps (reclamation, domain termination) visit paths in a
// deterministic order rather than Go map order.
func (m *Manager) pathsByID() []*DataPath {
	out := make([]*DataPath, 0, len(m.paths))
	for _, p := range m.paths {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// --- Reclamation: the fbuf region is pageable ---

// ReclaimIdle reclaims physical frames from fbufs sitting on free lists,
// oldest-freed first (the LIFO tail), discarding contents — "when the
// kernel reclaims the physical memory of an fbuf that is on a free list, it
// discards the fbuf's contents; it does not have to page it out". It
// returns the number of frames reclaimed.
func (m *Manager) ReclaimIdle(maxFrames int) int {
	reclaimed := 0
	for _, p := range m.pathsByID() {
		p.lock()
		for i := 0; i < len(p.free) && reclaimed < maxFrames; i++ {
			f := p.free[i] // front = least recently freed under LIFO push-to-back
			f.mu.Lock()
			for pg := 0; pg < f.Pages && reclaimed < maxFrames; pg++ {
				if f.frames[pg] == mem.NoFrame {
					continue
				}
				va := f.Base + vm.VA(pg*machine.PageSize)
				for id := range f.mapped {
					if d := m.domainByID(id); d != nil && !d.Dead() {
						d.AS.Unmap(va)
					}
				}
				if m.san != nil {
					m.san.frameReclaimed(f, pg)
				}
				m.deferFrameFree(f.frames[pg])
				f.frames[pg] = mem.NoFrame
				reclaimed++
				atomic.AddUint64(&m.stats.FramesReclaimed, 1)
				m.emit(obs.EvFrameReclaimed, nil, f, int64(pg))
			}
			f.mu.Unlock()
			if reclaimed >= maxFrames {
				break
			}
		}
		p.unlock()
	}
	return reclaimed
}

// --- Termination (section 3.3) ---

// domainDied is the death hook: release all references the domain holds
// (its endpoints are destroyed, deallocating associated fbufs), close paths
// it originates, and keep its chunks alive until external references drain.
func (m *Manager) domainDied(d *domain.Domain) {
	// Drop references held by the dying domain on every live fbuf.
	visit := func(f *Fbuf) {
		f.mu.Lock()
		held := f.loadState() == StateLive && f.refs[d.ID] > 0
		if held {
			// Collapse multiple refs to one; Free drops the last.
			f.total.Add(-int64(f.refs[d.ID] - 1))
			f.refs[d.ID] = 1
		}
		f.mu.Unlock()
		if held {
			if err := m.Free(f, d); err != nil {
				panic("core: termination free failed: " + err.Error())
			}
		}
		f.mu.Lock()
		delete(f.mapped, d.ID)
		f.mu.Unlock()
	}
	m.regionMu.Lock()
	chunks := append([]*chunk(nil), m.chunks...)
	m.regionMu.Unlock()
	for _, c := range chunks {
		if c == nil {
			continue
		}
		c.mu.Lock()
		fbufs := append([]*Fbuf(nil), c.fbufs...)
		c.mu.Unlock()
		for _, f := range fbufs {
			visit(f)
		}
	}
	// Deliver any notices stranded at the dying domain, and flush notices
	// destined for it (its allocators are gone; the kernel recycles).
	m.noticeMu.Lock()
	var stranded []noticeKey
	for k := range m.notices {
		if k.holder == d.ID || k.owner == d.ID {
			stranded = append(stranded, k)
		}
	}
	m.noticeMu.Unlock()
	sort.Slice(stranded, func(i, j int) bool {
		if stranded[i].holder != stranded[j].holder {
			return stranded[i].holder < stranded[j].holder
		}
		return stranded[i].owner < stranded[j].owner
	})
	for _, k := range stranded {
		for _, f := range m.popNotices(k) {
			m.recycle(f)
		}
	}
	// Close paths the domain participates in; free-listed fbufs of an
	// originator-dead path are torn down now, chunks retained only while
	// external references persist.
	for _, p := range m.pathsByID() {
		for _, pd := range p.Domains {
			if pd == d {
				m.ClosePath(p)
				break
			}
		}
	}
	delete(m.attached, d.AS.ASID)
}

// ClosePath closes a data path (its communication endpoint is destroyed):
// the free list is torn down; live fbufs drain through the normal
// free/notice flow and are then fully released because the path is closed.
func (m *Manager) ClosePath(p *DataPath) {
	p.lock()
	if p.closed {
		p.unlock()
		return
	}
	p.closed = true
	freeList := p.free
	p.free = nil
	p.unlock()
	for _, f := range freeList {
		m.recycle(f) // path closed: full teardown
	}
	// Depot inventory is free-listed state too: tear it down the same way.
	// Closing the depot makes a stranded in-flight magazine exchange tear
	// its unit down instead of parking it in a dead depot.
	if d := p.depot; d != nil {
		for _, f := range d.close() {
			m.recycle(f)
		}
	}
	m.cacheForget(p.ID)
	delete(m.paths, p.ID)
}
