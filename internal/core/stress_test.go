package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"fbufs/internal/domain"
	"fbufs/internal/faults"
	"fbufs/internal/machine"
	"fbufs/internal/mem"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

// TestRandomOperationSoup drives the full facility with random operation
// sequences — alloc, transfer, secure, free, notice delivery, reclamation,
// uncached allocation — checking facility-wide invariants continuously.
func TestRandomOperationSoup(t *testing.T) {
	seeds := []int64{1, 7, 42, 1993, 20260704}
	for _, seed := range seeds {
		t.Run("", func(t *testing.T) {
			runSoup(t, seed, false, false)
		})
	}
}

// TestRandomOperationSoupWithTermination adds random domain termination.
func TestRandomOperationSoupWithTermination(t *testing.T) {
	for _, seed := range []int64{3, 11, 4093} {
		t.Run("", func(t *testing.T) {
			runSoup(t, seed, true, false)
		})
	}
}

// TestRandomOperationSoupWithFaults turns the fault plane on underneath the
// soup: injected frame droughts, chunk-grant refusals, path-alloc refusals,
// and mapping retries must only ever surface as the documented alloc-
// failure errors, never corrupt facility invariants.
func TestRandomOperationSoupWithFaults(t *testing.T) {
	for _, seed := range []int64{5, 23, 977, 80317} {
		t.Run("", func(t *testing.T) {
			runSoup(t, seed, true, true)
		})
	}
}

func runSoup(t *testing.T, seed int64, terminate, faulted bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), 2048, vm.ClockSink{Clock: clk})
	if faulted {
		sys.FaultPlane = faults.NewPlane(seed)
		sys.FaultPlane.SetRate(faults.FrameAlloc, 30_000)
		sys.FaultPlane.SetRate(faults.MapBuild, 40_000)
		sys.FaultPlane.SetRate(faults.ChunkGrant, 25_000)
		sys.FaultPlane.SetRate(faults.PathAlloc, 50_000)
	}
	reg := domain.NewRegistry(sys)
	mgr := NewManager(sys, reg)

	doms := []*domain.Domain{reg.Kernel()}
	for i := 0; i < 4; i++ {
		d := reg.New("d")
		mgr.AttachDomain(d)
		doms = append(doms, d)
	}
	liveDom := func() *domain.Domain {
		for tries := 0; tries < 10; tries++ {
			d := doms[rng.Intn(len(doms))]
			if !d.Dead() {
				return d
			}
		}
		return reg.Kernel()
	}

	type variant struct {
		name string
		opts Options
	}
	variants := []variant{
		{"cv", CachedVolatile()},
		{"c", CachedNonVolatile()},
		{"v", Uncached()},
		{"p", UncachedNonVolatile()},
	}
	var paths []*DataPath
	for _, v := range variants {
		pdoms := []*domain.Domain{doms[rng.Intn(len(doms))]}
		for _, d := range doms {
			if d != pdoms[0] && rng.Intn(2) == 0 {
				pdoms = append(pdoms, d)
			}
		}
		p, err := mgr.NewPath(v.name, v.opts, 1+rng.Intn(4), pdoms...)
		if err != nil {
			t.Fatal(err)
		}
		p.SetQuota(4)
		paths = append(paths, p)
	}

	var live []*Fbuf
	expected := []error{ErrQuota, ErrRegionFull, ErrNotHolder, ErrDeadDomain,
		ErrPathClosed, ErrNotAttached, mem.ErrOutOfMemory}
	tolerate := func(err error) {
		if err == nil {
			return
		}
		for _, e := range expected {
			if errors.Is(err, e) {
				return
			}
		}
		t.Fatalf("seed %d: unexpected error: %v", seed, err)
	}

	for step := 0; step < 400; step++ {
		switch op := rng.Intn(20); {
		case op < 6: // path alloc
			p := paths[rng.Intn(len(paths))]
			f, err := p.Alloc()
			tolerate(err)
			if err == nil {
				live = append(live, f)
			}
		case op < 8: // uncached alloc
			d := liveDom()
			f, err := mgr.AllocUncached(d, 1+rng.Intn(3), Uncached())
			tolerate(err)
			if err == nil {
				live = append(live, f)
			}
		case op < 12 && len(live) > 0: // transfer
			f := live[rng.Intn(len(live))]
			if f.State() != StateLive {
				break
			}
			from, to := liveDom(), liveDom()
			err := mgr.Transfer(f, from, to)
			tolerate(err)
		case op < 15 && len(live) > 0: // free one holder's ref
			i := rng.Intn(len(live))
			f := live[i]
			if f.State() != StateLive {
				live = append(live[:i], live[i+1:]...)
				break
			}
			d := liveDom()
			err := mgr.Free(f, d)
			tolerate(err)
			if f.State() != StateLive {
				live = append(live[:i], live[i+1:]...)
			}
		case op < 16 && len(live) > 0: // secure
			f := live[rng.Intn(len(live))]
			if f.State() != StateLive {
				break
			}
			tolerate(mgr.Secure(f, liveDom()))
		case op < 17: // touch data
			if len(live) == 0 {
				break
			}
			f := live[rng.Intn(len(live))]
			if f.State() != StateLive {
				break
			}
			d := liveDom()
			if f.HeldBy(d) && !(d == f.Originator && f.Secured()) {
				// Reads by holders always legal.
				_ = f.TouchRead(d)
			}
		case op < 18: // deliver notices between a random pair
			a, b := liveDom(), liveDom()
			mgr.DeliverNotices(a, b)
		case op < 19: // reclaim
			mgr.ReclaimIdle(rng.Intn(8))
		default: // terminate a domain (rarely)
			if terminate && rng.Intn(10) == 0 {
				d := doms[1+rng.Intn(len(doms)-1)]
				if !d.Dead() {
					reg.Terminate(d)
					// Drop stale fbuf handles originated by paths that died.
					kept := live[:0]
					for _, f := range live {
						if f.State() == StateLive {
							kept = append(kept, f)
						}
					}
					live = kept
				}
			}
		}
		if step%25 == 24 {
			if err := mgr.CheckInvariants(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
		}
	}
	// Drain: free every remaining reference.
	for _, f := range live {
		if f.State() != StateLive {
			continue
		}
		for _, d := range doms {
			if d.Dead() {
				continue
			}
			for f.State() == StateLive && f.HeldBy(d) {
				if err := mgr.Free(f, d); err != nil {
					t.Fatalf("drain: %v", err)
				}
			}
		}
	}
	for _, a := range doms {
		for _, b := range doms {
			if !a.Dead() && !b.Dead() {
				mgr.DeliverNotices(a, b)
			}
		}
	}
	if err := mgr.CheckInvariants(); err != nil {
		t.Fatalf("seed %d final: %v", seed, err)
	}
}

// TestQuickAllocFreeNeverLeaks is a testing/quick property: any interleaving
// of allocations and frees on a cached path conserves frames.
func TestQuickAllocFreeNeverLeaks(t *testing.T) {
	f := func(ops []uint8) bool {
		clk := &simtime.Clock{}
		sys := vm.NewSystem(machine.DecStation5000(), 512, vm.ClockSink{Clock: clk})
		reg := domain.NewRegistry(sys)
		mgr := NewManager(sys, reg)
		src := reg.New("src")
		dst := reg.New("dst")
		mgr.AttachDomain(src)
		mgr.AttachDomain(dst)
		p, err := mgr.NewPath("q", CachedVolatile(), 2, src, dst)
		if err != nil {
			return false
		}
		p.SetQuota(8)
		var held []*Fbuf
		for _, op := range ops {
			switch op % 4 {
			case 0:
				if fb, err := p.Alloc(); err == nil {
					held = append(held, fb)
				}
			case 1:
				if len(held) > 0 {
					fb := held[int(op)%len(held)]
					_ = mgr.Transfer(fb, src, dst)
				}
			case 2, 3:
				if len(held) > 0 {
					i := int(op) % len(held)
					fb := held[i]
					for _, d := range []*domain.Domain{dst, src} {
						for fb.State() == StateLive && fb.HeldBy(d) {
							if mgr.Free(fb, d) != nil {
								return false
							}
						}
					}
					held = append(held[:i], held[i+1:]...)
				}
			}
			if mgr.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestOOMSurfacesCleanly exhausts physical memory mid-workload and checks
// that allocation fails with ErrOutOfMemory while existing state stays
// consistent and reclamation restores service.
func TestOOMSurfacesCleanly(t *testing.T) {
	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), 16, vm.ClockSink{Clock: clk}) // tiny: 64KB
	reg := domain.NewRegistry(sys)
	mgr := NewManager(sys, reg)
	src := reg.New("src")
	mgr.AttachDomain(src)
	p, err := mgr.NewPath("p", CachedVolatile(), 4, src)
	if err != nil {
		t.Fatal(err)
	}
	p.SetQuota(-1) // unlimited: let physical memory, not the quota, stop us

	var bufs []*Fbuf
	for {
		f, err := p.Alloc()
		if err != nil {
			if !errors.Is(err, mem.ErrOutOfMemory) {
				t.Fatalf("exhaustion error: %v", err)
			}
			break
		}
		bufs = append(bufs, f)
	}
	if len(bufs) == 0 {
		t.Fatal("no allocations before OOM")
	}
	if err := mgr.CheckInvariants(); err != nil {
		t.Fatalf("after OOM: %v", err)
	}
	// Free one buffer and reclaim its frames: allocation works again.
	if err := mgr.Free(bufs[0], src); err != nil {
		t.Fatal(err)
	}
	if n := mgr.ReclaimIdle(4); n == 0 {
		t.Fatal("nothing reclaimed")
	}
	if _, err := p.Alloc(); err != nil {
		t.Fatalf("allocation after reclaim: %v", err)
	}
	if err := mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
