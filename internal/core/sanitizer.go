package core

import (
	"fmt"
	"os"
	"sync"

	"fbufs/internal/machine"
	"fbufs/internal/mem"
	"fbufs/internal/vm"
)

// fbsan is the fbuf runtime sanitizer: an opt-in dynamic checker that
// catches protocol violations the simulated MMU cannot see.
//
//   - Use-after-free: pages of fbufs sitting on a path free list are
//     poisoned with a canary pattern; the canary is verified when the
//     fbuf is reused (and at every invariant audit). Because the page
//     contents are saved before poisoning and restored after
//     verification, simulated behavior is bit-identical with the
//     sanitizer on — cached reuse still observes its previous contents.
//   - MMU-bypass writes: DMA operations are checked against the fbuf
//     lifecycle (no DMA to non-live buffers, no DMA writes to secured
//     buffers); a DMA write to a free-listed buffer also trips the
//     canary at the next reuse.
//   - Write-permission shadow audit: every writable PTE over the fbuf
//     region must belong to the fbuf's originator while the fbuf is
//     unsecured — the invariant behind the paper's immutable-after-
//     transfer guarantee.
//   - Aggregate DAG validation: package aggregate re-validates
//     range/cycle/shape invariants on every Msg build when the
//     sanitizer is enabled (see aggregate/sanitize.go).
//
// Enable per manager with EnableSanitizer, for a whole process with the
// FBSAN=1 environment variable or the fbsan build tag, or per run with
// `fbufsim -fbsan`. Checks charge zero simulated time.

// sanitizerDefault turns the sanitizer on for every new Manager when the
// fbsan build tag or the FBSAN=1 environment variable is set.
var sanitizerDefault = fbsanBuildTag || os.Getenv("FBSAN") == "1"

// SanitizerStats counts sanitizer activity (tests assert on these).
type SanitizerStats struct {
	PoisonedPages uint64 // pages canary-filled on free
	VerifiedPages uint64 // pages canary-checked on reuse
	SkippedPages  uint64 // poisoned pages skipped (frame reclaimed meanwhile)
	DMAChecks     uint64
	ShadowAudits  uint64
	Violations    uint64
}

// Sanitizer is the per-manager fbsan state. mu guards the poison records
// and counters so the hooks stay sound under concurrent workers; it ranks
// below the path and fbuf locks (poisonFree runs under the path lock) and
// above the address-space lock (audit walks PTEs).
type Sanitizer struct {
	mgr *Manager
	// OnViolation, when set, receives each violation message instead of
	// the default panic — tests use it to assert a violation fired. Set
	// it before concurrent operation starts.
	OnViolation func(msg string)

	mu       sync.Mutex
	poisoned map[*Fbuf][]poisonPage
	stats    SanitizerStats
}

// poisonPage records one canary-filled page: which frame backed it at
// poison time (so reclamation is detected) and the bytes to restore.
type poisonPage struct {
	page  int
	frame mem.FrameNum
	saved []byte
}

// EnableSanitizer turns fbsan on for this manager (idempotent) and
// returns the sanitizer handle.
func (m *Manager) EnableSanitizer() *Sanitizer {
	if m.san == nil {
		m.san = &Sanitizer{mgr: m, poisoned: map[*Fbuf][]poisonPage{}}
	}
	return m.san
}

// Sanitizer returns the manager's sanitizer, or nil when disabled.
func (m *Manager) Sanitizer() *Sanitizer { return m.san }

// SanitizerEnabled reports whether fbsan is active on this manager.
func (m *Manager) SanitizerEnabled() bool { return m.san != nil }

// Stats returns a copy of the sanitizer counters.
func (s *Sanitizer) Stats() SanitizerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Violation reports a protocol violation: the OnViolation handler if
// set, otherwise panic — a sanitizer hit is a caller bug, not an error
// the protocol can recover from.
func (s *Sanitizer) Violation(format string, args ...interface{}) {
	s.mu.Lock()
	s.stats.Violations++
	s.mu.Unlock()
	s.dispatch(fmt.Sprintf(format, args...))
}

// dispatch delivers an already-counted violation message.
func (s *Sanitizer) dispatch(msg string) {
	if s.OnViolation != nil {
		s.OnViolation(msg)
		return
	}
	panic("fbsan: " + msg)
}

// canaryByte is the poison pattern: position-dependent so shifted or
// partially-overwritten data never verifies by accident.
func canaryByte(page, i int) byte {
	return 0xFB ^ byte(page*31) ^ byte(i*7)
}

// poisonFree canary-fills the populated pages of an fbuf entering a free
// list, saving the previous contents for restoration at reuse.
func (s *Sanitizer) poisonFree(f *Fbuf) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.poisoned[f]) > 0 {
		return // already poisoned (defensive; recycle verifies first)
	}
	var recs []poisonPage
	for page, fn := range f.frames {
		if fn == mem.NoFrame {
			continue
		}
		data := s.mgr.Sys.Mem.Frame(fn).Data
		saved := append([]byte(nil), data...)
		for i := range data {
			data[i] = canaryByte(page, i)
		}
		recs = append(recs, poisonPage{page: page, frame: fn, saved: saved})
		s.stats.PoisonedPages++
	}
	if len(recs) > 0 {
		s.poisoned[f] = recs
	}
}

// verifyReuse checks the canaries of a previously poisoned fbuf and
// restores the saved contents, keeping simulated behavior identical.
// Pages whose backing frame changed since poisoning (reclaimed, then
// possibly lazily refilled) are skipped: their contents were legitimately
// discarded.
func (s *Sanitizer) verifyReuse(f *Fbuf) {
	s.mu.Lock()
	recs, ok := s.poisoned[f]
	if !ok {
		s.mu.Unlock()
		return
	}
	delete(s.poisoned, f)
	var msgs []string
	for _, rec := range recs {
		if rec.page >= len(f.frames) || f.frames[rec.page] != rec.frame {
			s.stats.SkippedPages++
			continue
		}
		data := s.mgr.Sys.Mem.Frame(rec.frame).Data
		s.stats.VerifiedPages++
		for i := range data {
			if data[i] != canaryByte(rec.page, i) {
				s.stats.Violations++
				msgs = append(msgs, fmt.Sprintf("use-after-free write to fbuf %#x page %d offset %d (canary %#x, found %#x): the buffer was modified while on the free list",
					uint64(f.Base), rec.page, i, canaryByte(rec.page, i), data[i]))
				break
			}
		}
		copy(data, rec.saved)
	}
	s.mu.Unlock()
	// Dispatch after dropping mu: the handler may call back into the
	// sanitizer (Stats, another check) and must not deadlock.
	for _, msg := range msgs {
		s.dispatch(msg)
	}
}

// frameReclaimed drops the poison record of one page whose frame the
// reclaimer is discarding, so a later reuse of the same frame number
// cannot be mistaken for a use-after-free. The saved bytes are restored
// first: the frame is about to return to the allocator pool, and leaving
// canaries in it would let a frame whose Zeroed flag is still set hand
// poison to the next allocation — visibly diverging from a run without
// the sanitizer.
func (s *Sanitizer) frameReclaimed(f *Fbuf, page int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.poisoned[f]
	for i, rec := range recs {
		if rec.page == page {
			if page < len(f.frames) && f.frames[page] == rec.frame {
				copy(s.mgr.Sys.Mem.Frame(rec.frame).Data, rec.saved)
			}
			s.poisoned[f] = append(recs[:i], recs[i+1:]...)
			s.stats.SkippedPages++
			return
		}
	}
}

// checkDMA validates a DMA operation against the fbuf lifecycle. DMA
// bypasses the simulated MMU, so these are exactly the accesses no
// protection fault will ever catch.
func (s *Sanitizer) checkDMA(f *Fbuf, write bool) {
	s.mu.Lock()
	s.stats.DMAChecks++
	s.mu.Unlock()
	op := "read"
	if write {
		op = "write"
	}
	if st := f.loadState(); st != StateLive {
		s.Violation("DMA %s to %s fbuf %#x: devices must only touch live buffers", op, st, uint64(f.Base))
		return
	}
	if write && f.isSecured() {
		s.Violation("DMA write to secured fbuf %#x: the buffer is immutable; reprogramming the device after Secure is a driver bug", uint64(f.Base))
	}
}

// audit is the shadow write-permission check plus a canary sweep of every
// free-listed fbuf, run from Manager.CheckInvariants when fbsan is on.
// Like CheckInvariants itself it requires quiescence: no in-flight data-
// plane operations while the sweep walks chunks and PTEs.
func (s *Sanitizer) audit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.mgr
	s.stats.ShadowAudits++
	for _, c := range m.chunks {
		if c == nil {
			continue
		}
		for _, f := range c.fbufs {
			for pg := 0; pg < f.Pages; pg++ {
				va := f.Base + vm.VA(pg*machine.PageSize)
				for _, d := range m.attached {
					if d.Dead() {
						continue
					}
					pte, ok := d.AS.Lookup(va)
					if !ok || pte.Prot&vm.ProtWrite == 0 {
						continue
					}
					if d != f.Originator {
						return fmt.Errorf("fbsan: shadow audit: domain %s holds a writable PTE over fbuf %#x page %d it did not originate",
							d.Name, uint64(f.Base), pg)
					}
					if f.isSecured() {
						return fmt.Errorf("fbsan: shadow audit: originator %s still writable over secured fbuf %#x page %d",
							d.Name, uint64(f.Base), pg)
					}
				}
			}
		}
	}
	for f, recs := range s.poisoned {
		for _, rec := range recs {
			if rec.page >= len(f.frames) || f.frames[rec.page] != rec.frame {
				continue
			}
			data := m.Sys.Mem.Frame(rec.frame).Data
			for i := range data {
				if data[i] != canaryByte(rec.page, i) {
					return fmt.Errorf("fbsan: free fbuf %#x page %d modified on the free list (offset %d)",
						uint64(f.Base), rec.page, i)
				}
			}
		}
	}
	return nil
}
