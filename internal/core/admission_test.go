package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestAdmissionShares pins the weighted-share arithmetic, including the
// rebalance on class registration and the one-chunk floor.
func TestAdmissionShares(t *testing.T) {
	a := NewAdmission(10)
	gold := a.Class("gold", 3)
	silver := a.Class("silver", 1)
	if gold.Share() != 7 || silver.Share() != 2 {
		t.Fatalf("shares gold=%d silver=%d, want 7/2", gold.Share(), silver.Share())
	}
	bronze := a.Class("bronze", 1)
	if gold.Share() != 6 || silver.Share() != 2 || bronze.Share() != 2 {
		t.Fatalf("rebalanced shares %d/%d/%d, want 6/2/2",
			gold.Share(), silver.Share(), bronze.Share())
	}

	tiny := NewAdmission(1)
	big := tiny.Class("big", 100)
	small := tiny.Class("small", 1)
	if small.Share() != 1 {
		t.Fatalf("small share = %d, want the one-chunk floor", small.Share())
	}
	if big.Share() < 1 {
		t.Fatalf("big share = %d", big.Share())
	}
}

// TestAdmissionRejectsAlloc drives a path's tenant over its share: the
// carve must fail with ErrAdmission (an alloc failure, counted in both the
// manager stats and the class), while free-list hits — chunks already
// charged — stay exempt. Evicting the path releases the charge.
func TestAdmissionRejectsAlloc(t *testing.T) {
	r := newRig(t)
	adm := NewAdmission(1)
	cl := adm.Class("only", 1)
	r.mgr.SetAdmission(adm)
	// Fbufs the size of a chunk: every concurrently-live fbuf needs its
	// own chunk grant, so the share is exhausted by a single allocation.
	p := r.path(t, CachedVolatile(), DefaultChunkPages)
	p.SetTenant(cl)

	f1, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if cl.InUse() != 1 {
		t.Fatalf("InUse = %d, want 1", cl.InUse())
	}
	_, err = p.Alloc()
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("second alloc: %v, want ErrAdmission", err)
	}
	if !IsAllocFailure(err) {
		t.Fatal("ErrAdmission must be classified as an alloc failure")
	}
	if cl.Rejects() != 1 {
		t.Fatalf("class rejects = %d, want 1", cl.Rejects())
	}
	if !adm.Pressured() {
		t.Fatal("controller not pressured after a reject")
	}
	st := r.mgr.Snapshot()
	if st.AdmissionRejects != 1 {
		t.Fatalf("AdmissionRejects = %d, want 1", st.AdmissionRejects)
	}
	if st.AdmissionRejects > st.AllocFailures {
		t.Fatalf("invariant: AdmissionRejects %d > AllocFailures %d",
			st.AdmissionRejects, st.AllocFailures)
	}

	// Recycled fbufs come off the free list without a new grant — no
	// admission check, the chunk stays charged.
	if err := r.mgr.Free(f1, r.src); err != nil {
		t.Fatal(err)
	}
	f2, err := p.Alloc()
	if err != nil {
		t.Fatalf("free-list alloc after reject: %v", err)
	}
	if cl.InUse() != 1 {
		t.Fatalf("InUse = %d after free-list reuse, want 1", cl.InUse())
	}
	if err := r.mgr.Free(f2, r.src); err != nil {
		t.Fatal(err)
	}

	// Demoting the path tears down the free list, releasing the chunk
	// and with it the tenant's charge.
	r.mgr.EvictPath(p)
	if cl.InUse() != 0 {
		t.Fatalf("InUse = %d after eviction, want 0", cl.InUse())
	}
	if _, err := p.Alloc(); err != nil {
		t.Fatalf("alloc after release: %v", err)
	}
	r.check(t)
}

// TestAdmissionNilTenantUnlimited: paths without a tenant class bypass the
// controller entirely.
func TestAdmissionNilTenantUnlimited(t *testing.T) {
	r := newRig(t)
	adm := NewAdmission(1)
	adm.Class("starved", 1)
	r.mgr.SetAdmission(adm)
	p := r.path(t, CachedVolatile(), DefaultChunkPages)
	var held []*Fbuf
	for i := 0; i < 3; i++ {
		f, err := p.Alloc()
		if err != nil {
			t.Fatalf("untenanted alloc %d: %v", i, err)
		}
		held = append(held, f)
	}
	for _, f := range held {
		if err := r.mgr.Free(f, r.src); err != nil {
			t.Fatal(err)
		}
	}
	r.check(t)
}

// TestParallelQuotaAdmission has concurrent allocators from two paths of
// one tenant hammering both the per-path quota and the tenant share, under
// -race and fbsan. Every failure must be exactly ErrQuota or ErrAdmission,
// and at quiescence the counters must satisfy the stats invariants.
func TestParallelQuotaAdmission(t *testing.T) {
	r, checkSan := parallelRig(t)
	adm := NewAdmission(4)
	cl := adm.Class("tenant", 1)
	r.mgr.SetAdmission(adm)
	pa := r.path(t, CachedVolatile(), DefaultChunkPages)
	pb := r.path(t, CachedVolatile(), DefaultChunkPages)
	pa.SetTenant(cl)
	pb.SetTenant(cl)
	pa.SetQuota(3)
	pb.SetQuota(3)

	const workers, ops = 8, 300
	var rejected atomic.Uint64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			p := pa
			if slot%2 == 1 {
				p = pb
			}
			for op := 0; op < ops; op++ {
				f, err := p.Alloc()
				if err != nil {
					if errors.Is(err, ErrQuota) || errors.Is(err, ErrAdmission) {
						rejected.Add(1)
						continue
					}
					errs[slot] = err
					return
				}
				if err := r.mgr.Free(f, r.src); err != nil {
					errs[slot] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	st := r.mgr.Snapshot()
	if st.AdmissionRejects != cl.Rejects() {
		t.Fatalf("manager counted %d admission rejects, class %d",
			st.AdmissionRejects, cl.Rejects())
	}
	if st.AdmissionRejects > st.AllocFailures {
		t.Fatalf("AdmissionRejects %d > AllocFailures %d", st.AdmissionRejects, st.AllocFailures)
	}
	checkSan()
	r.check(t)
}

// TestParallelSetQuota is the satellite regression for the SetQuota/Quota
// data race: concurrent writers retuning the quota while allocators read
// it must be clean under -race (both sides are atomic now).
func TestParallelSetQuota(t *testing.T) {
	r, checkSan := parallelRig(t)
	p := r.path(t, CachedVolatile(), 1)

	const workers, ops = 4, 500
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for op := 0; op < ops; op++ {
				if slot == 0 {
					p.SetQuota(1 + op%4)
					_ = p.Quota()
					continue
				}
				f, err := p.Alloc()
				if err != nil {
					if errors.Is(err, ErrQuota) {
						continue
					}
					errs[slot] = err
					return
				}
				if err := r.mgr.Free(f, r.src); err != nil {
					errs[slot] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	checkSan()
	r.check(t)
}
