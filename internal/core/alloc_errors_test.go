package core

import (
	"errors"
	"fmt"
	"testing"

	"fbufs/internal/domain"
	"fbufs/internal/faults"
	"fbufs/internal/machine"
	"fbufs/internal/mem"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

// The allocation-failure taxonomy (see alloc_errors.go): each of the three
// exhaustion errors must surface from its documented site, and each must be
// recognized by IsAllocFailure so the degraded copy path can catch it.

// TestErrQuotaFromPathExhaustion drives a path past its kernel-imposed
// chunk quota the honest way: hold enough live fbufs that the allocator
// needs a chunk it is not allowed to have.
func TestErrQuotaFromPathExhaustion(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), DefaultChunkPages) // one fbuf per chunk
	p.SetQuota(2)

	var held []*Fbuf
	for i := 0; i < 2; i++ {
		f, err := p.Alloc()
		if err != nil {
			t.Fatalf("alloc %d within quota: %v", i, err)
		}
		held = append(held, f)
	}
	if _, err := p.Alloc(); !errors.Is(err, ErrQuota) {
		t.Fatalf("alloc past quota: got %v, want ErrQuota", err)
	} else if !IsAllocFailure(err) {
		t.Fatal("ErrQuota must be an alloc failure")
	}
	// Freeing a buffer restores the path: quota is per-chunk held, not a
	// lifetime allocation count.
	if err := r.mgr.Free(held[0], r.src); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(); err != nil {
		t.Fatalf("alloc after free should succeed: %v", err)
	}
	r.check(t)
}

// TestErrQuotaFromFaultPlane: an injected PathAlloc fault is reported as
// ErrQuota at the Alloc boundary (the kernel refused the request), and is
// counted in the manager's AllocFailures stat.
func TestErrQuotaFromFaultPlane(t *testing.T) {
	r := newRig(t)
	r.sys.FaultPlane = faults.NewPlane(7)
	p := r.path(t, CachedVolatile(), 2)

	r.sys.FaultPlane.SetRate(faults.PathAlloc, 1_000_000)
	if _, err := p.Alloc(); !errors.Is(err, ErrQuota) {
		t.Fatalf("got %v, want ErrQuota", err)
	}
	if got := r.mgr.Snapshot().AllocFailures; got != 1 {
		t.Fatalf("AllocFailures = %d, want 1", got)
	}
	r.sys.FaultPlane.SetRate(faults.PathAlloc, 0)
	if _, err := p.Alloc(); err != nil {
		t.Fatalf("alloc after fault cleared: %v", err)
	}
	r.check(t)
}

// TestErrRegionFullFromExhaustion shrinks the global region to two chunks
// and consumes them with uncached fbufs; both the uncached allocator and a
// path allocator must then report ErrRegionFull, and releasing a chunk
// recovers both.
func TestErrRegionFullFromExhaustion(t *testing.T) {
	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), 4096, vm.ClockSink{Clock: clk})
	reg := domain.NewRegistry(sys)
	mgr := NewManagerGeometry(sys, reg, 2, 2) // 2 chunks of 2 pages
	src, dst := reg.New("src"), reg.New("dst")
	mgr.AttachDomain(src)
	mgr.AttachDomain(dst)

	var held []*Fbuf
	for i := 0; i < 2; i++ {
		f, err := mgr.AllocUncached(src, 2, Uncached())
		if err != nil {
			t.Fatalf("alloc chunk %d: %v", i, err)
		}
		held = append(held, f)
	}
	if _, err := mgr.AllocUncached(src, 2, Uncached()); !errors.Is(err, ErrRegionFull) {
		t.Fatalf("uncached past region: got %v, want ErrRegionFull", err)
	} else if !IsAllocFailure(err) {
		t.Fatal("ErrRegionFull must be an alloc failure")
	}
	// A path allocator competing for the same region sees the same error.
	p, err := mgr.NewPath("starved", CachedVolatile(), 2, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(); !errors.Is(err, ErrRegionFull) {
		t.Fatalf("path alloc: got %v, want ErrRegionFull", err)
	}
	if err := mgr.Free(held[0], src); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(); err != nil {
		t.Fatalf("path alloc after chunk release: %v", err)
	}
}

// TestErrOutOfMemoryFromFramePool empties the physical frame pool via the
// FrameAlloc fault point: VA space is granted but populate cannot back it,
// the partial allocation is rolled back, and mem.ErrOutOfMemory surfaces
// through DataPath.Alloc.
func TestErrOutOfMemoryFromFramePool(t *testing.T) {
	r := newRig(t)
	r.sys.FaultPlane = faults.NewPlane(11)
	p := r.path(t, CachedVolatile(), 2)

	r.sys.FaultPlane.SetRate(faults.FrameAlloc, 1_000_000)
	if _, err := p.Alloc(); !errors.Is(err, mem.ErrOutOfMemory) {
		t.Fatalf("got %v, want mem.ErrOutOfMemory", err)
	} else if !IsAllocFailure(err) {
		t.Fatal("mem.ErrOutOfMemory must be an alloc failure")
	}
	r.sys.FaultPlane.SetRate(faults.FrameAlloc, 0)
	if _, err := p.Alloc(); err != nil {
		t.Fatalf("alloc after drought: %v", err)
	}
	r.check(t)
}

// TestIsAllocFailureTaxonomy pins the classifier itself: the three
// exhaustion errors qualify (bare or wrapped, including the lazy-refill
// shape where mem.ErrOutOfMemory rides inside a vm.AccessError), and
// lifecycle errors do not — copying cannot fix a dead domain.
func TestIsAllocFailureTaxonomy(t *testing.T) {
	yes := []error{
		ErrQuota,
		ErrRegionFull,
		mem.ErrOutOfMemory,
		fmt.Errorf("send: %w", ErrQuota),
		&vm.AccessError{ASID: 3, VA: 0x1000, Write: true, Cause: mem.ErrOutOfMemory},
	}
	for _, err := range yes {
		if !IsAllocFailure(err) {
			t.Errorf("IsAllocFailure(%v) = false, want true", err)
		}
	}
	no := []error{
		nil,
		ErrPathClosed,
		ErrDeadDomain,
		ErrNotAttached,
		&vm.AccessError{ASID: 3, VA: 0x1000, Cause: vm.ErrNoMapping},
		errors.New("core: unrelated"),
	}
	for _, err := range no {
		if IsAllocFailure(err) {
			t.Errorf("IsAllocFailure(%v) = true, want false", err)
		}
	}
}

// TestLifecycleErrorsAreNotAllocFailures exercises the real lifecycle
// sites: a closed path and a dead originator must produce errors that the
// degraded copy path refuses to swallow.
func TestLifecycleErrorsAreNotAllocFailures(t *testing.T) {
	r := newRig(t)
	p := r.path(t, CachedVolatile(), 2)
	r.mgr.ClosePath(p)
	if _, err := p.Alloc(); !errors.Is(err, ErrPathClosed) || IsAllocFailure(err) {
		t.Fatalf("closed path: got %v (allocFailure=%v)", err, IsAllocFailure(err))
	}

	p2 := r.path(t, CachedVolatile(), 2, r.net, r.dst)
	r.reg.Terminate(r.net)
	if _, err := p2.Alloc(); err == nil || IsAllocFailure(err) {
		t.Fatalf("dead originator: got %v (allocFailure=%v)", err, IsAllocFailure(err))
	}
}
