package core

import (
	"fmt"
	"sync/atomic"

	"fbufs/internal/domain"
)

// DefaultMagazineCap is the stash capacity used when NewMagazine is given a
// non-positive capacity.
const DefaultMagazineCap = 16

// Magazine is a per-worker LIFO cache of free fbufs layered over a path's
// shared free list, in the style of Bonwick's slab-magazine allocator. Each
// worker owns one magazine per path it allocates from; steady-state
// Alloc/Free cycles are served from the private stash and touch no shared
// lock at all. The stash refills from — and flushes back to — the path free
// list in batches of up to half the capacity, so the shared lock is paid
// once per batch instead of once per buffer.
//
// A magazine belongs to one worker: its methods are not safe for concurrent
// use on the same magazine (distinct magazines over one path are). It sits
// above the kernel boundary exactly like the paper's user-level per-path
// allocator, so a stash hit consults no fault plane and emits no events —
// the facility's counters and events see a hit-served buffer only through
// the deferred counter flush. Call Drain before the worker exits or the
// path closes, or the stashed fbufs stay invisible to the shared list.
type Magazine struct {
	path  *DataPath
	cap   int
	stash []*Fbuf

	// prev is the Bonwick second magazine, used only when the path has a
	// depot: a worker holds a loaded magazine (stash) and a previous one,
	// swapping them locally when one runs dry or full so a strict
	// alloc/free alternation at a magazine boundary never touches the
	// depot. Only when both are empty (or both full) does the worker
	// exchange a whole unit with the depot — one constant-time swap under
	// the depot's leaf lock instead of an item-at-a-time refill.
	prev []*Fbuf

	// Local counters, merged into the shared Stats/Contention groups on
	// refill, flush, exchange, and Drain — the deferral is what keeps the
	// hit path free of shared-cacheline traffic. Hit-served allocations
	// count as Allocs+CacheHits and stash frees as Frees+Recycles, so the
	// global invariants (Stats.Check) hold at quiescence once the magazine
	// is drained.
	hits, misses, refills, flushes uint64
	allocs, frees, recycles        uint64

	// exchTotal is the lifetime depot-exchange count (the shared-group
	// DepotExchanges counter is bumped by the depot itself at swap time,
	// so this one is never reset by a merge) — the bench harness reads it
	// to attribute exchange costs.
	exchTotal uint64
}

// NewMagazine creates a magazine over the path with the given stash
// capacity (DefaultMagazineCap if non-positive).
func (p *DataPath) NewMagazine(capacity int) *Magazine {
	if capacity <= 0 {
		capacity = DefaultMagazineCap
	}
	return &Magazine{path: p, cap: capacity, stash: make([]*Fbuf, 0, capacity)}
}

// Path returns the data path the magazine allocates from.
func (g *Magazine) Path() *DataPath { return g.path }

// Depth returns the number of fbufs held locally (loaded + previous).
func (g *Magazine) Depth() int { return len(g.stash) + len(g.prev) }

// ExchangeCount returns the lifetime number of depot unit exchanges this
// magazine performed (0 on a path without a depot).
func (g *Magazine) ExchangeCount() uint64 { return g.exchTotal }

// LocalStats returns the magazine's unflushed local counters
// (hits, misses, refills, flushes) — test and diagnostics visibility into
// the deferred accounting.
func (g *Magazine) LocalStats() (hits, misses, refills, flushes uint64) {
	return g.hits, g.misses, g.refills, g.flushes
}

// popStash pops the hot end of the loaded stash; the caller guarantees it
// is non-empty and accounts the hit/miss itself.
func (g *Magazine) popStash() *Fbuf {
	n := len(g.stash)
	f := g.stash[n-1]
	g.stash[n-1] = nil
	g.stash = g.stash[:n-1]
	return f
}

// Alloc allocates an fbuf for the path's originator. The fast path pops the
// private stash with zero shared-lock traffic (swapping in the previous
// magazine when the loaded one runs dry — still local). On a true miss a
// depot-backed path exchanges an empty magazine for a full unit under one
// leaf-lock swap; otherwise the stash refills item-at-a-time from the
// shared free list under one lock acquisition, and if the shared list is
// empty too the call falls through to the path's full Alloc (carve, fault
// plane, events — the kernel boundary).
func (g *Magazine) Alloc() (*Fbuf, error) {
	p := g.path
	if len(g.stash) == 0 && len(g.prev) > 0 {
		// Local magazine swap: the previous magazine becomes the loaded
		// one. No shared state is touched, so this is still a hit.
		g.stash, g.prev = g.prev, g.stash
	}
	if len(g.stash) > 0 {
		f := g.popStash()
		g.hits++
		g.allocs++
		if s := p.mgr.san; s != nil {
			s.verifyReuse(f)
		}
		f.resetLive(p.Originator())
		return f, nil
	}
	g.misses++
	if d := p.depot; d != nil {
		if unit, ok := d.ExchangeEmpty(); ok {
			g.stash = unit
			g.refills++
			g.exchTotal++
			g.mergeCounters()
			f := g.popStash()
			g.allocs++
			if s := p.mgr.san; s != nil {
				s.verifyReuse(f)
			}
			f.resetLive(p.Originator())
			return f, nil
		}
	}
	p.lock()
	if p.closed {
		p.unlock()
		g.mergeCounters()
		return nil, ErrPathClosed
	}
	take := g.cap
	if take > len(p.free) {
		take = len(p.free)
	}
	if take > 0 {
		// Move the hot (most recently freed) tail of the shared LIFO
		// list into the stash; stash pops then reuse hottest-first.
		g.stash = append(g.stash, p.free[len(p.free)-take:]...)
		p.free = p.free[:len(p.free)-take]
		g.refills++
	}
	p.unlock()
	g.mergeCounters()
	if len(g.stash) > 0 {
		f := g.popStash()
		g.allocs++
		if s := p.mgr.san; s != nil {
			s.verifyReuse(f)
		}
		f.resetLive(p.Originator())
		return f, nil
	}
	// Shared list dry: pay the full allocation path.
	return p.Alloc()
}

// Free returns an fbuf to the magazine. The fast path — the canonical
// magazine pattern: the originator dropping the sole reference of a cached,
// unsecured fbuf of this path — pushes the private stash with zero shared
// traffic; anything else (transferred refs outstanding, secured, foreign
// path, uncached) takes the facility's full Free path with its notice
// machinery. A full stash flushes half back to the shared list under one
// lock.
func (g *Magazine) Free(f *Fbuf, d *domain.Domain) error {
	p := g.path
	m := p.mgr
	if f.Path == p && p.opts.Cached && d == f.Originator && !f.isSecured() {
		if s := f.loadState(); s != StateLive {
			return fmt.Errorf("core: free of %s fbuf %#x", s, uint64(f.Base))
		}
		f.mu.Lock()
		if f.refs[d.ID] == 0 {
			f.mu.Unlock()
			return ErrNotHolder
		}
		if len(f.refs) == 1 && f.refs[d.ID] == 1 {
			f.refs = map[domain.ID]int{}
			f.mu.Unlock()
			f.total.Store(0)
			f.setState(StateFree)
			g.frees++
			g.recycles++
			if s := m.san; s != nil {
				s.poisonFree(f)
			}
			g.stash = append(g.stash, f)
			if len(g.stash) >= g.cap {
				g.overflow()
			}
			return nil
		}
		// Other references outstanding: not the sole holder — the full
		// path handles partial drops and the notice flow.
		f.mu.Unlock()
	}
	return m.Free(f, d)
}

// overflow handles a loaded magazine that just reached capacity. With a
// depot the full magazine rotates into the previous slot, and when both
// are full the older unit is exchanged into the depot whole — one
// constant-time leaf-lock swap. Without a depot, half the stash flushes
// back to the shared free list item-at-a-time (the PR 4 behavior).
func (g *Magazine) overflow() {
	d := g.path.depot
	if d == nil {
		g.flush(g.cap / 2)
		return
	}
	if len(g.prev) == 0 {
		g.stash, g.prev = g.prev, g.stash
		return
	}
	d.ExchangeFull(g.prev)
	g.prev = g.stash
	g.stash = nil
	g.flushes++
	g.exchTotal++
	g.mergeCounters()
}

// Drain flushes the entire local inventory (loaded + previous) and all
// deferred counters back to the shared path state. Call at worker exit and
// before ClosePath or CheckInvariants — the facility's invariants only see
// drained magazines.
func (g *Magazine) Drain() {
	if len(g.prev) > 0 {
		// Previous holds the older buffers: flush it first so the shared
		// list receives oldest-first, like a plain flush of one stash.
		g.stash = append(g.prev, g.stash...)
		g.prev = nil
	}
	g.flush(len(g.stash))
}

// flush returns the n oldest stashed fbufs to the shared free list (keeping
// the hot end local) and merges the deferred counters, all under one lock
// acquisition. On a closed path the stash is torn down through the normal
// recycle machinery instead.
func (g *Magazine) flush(n int) {
	p := g.path
	p.lock()
	if p.closed {
		// Path closed with fbufs stashed: tear them down like free-listed
		// buffers of a closed path. Recycles were already counted when
		// the buffers entered the stash, so hand the teardown machinery
		// raw buffers without re-counting.
		stash := g.stash
		g.stash = g.stash[:0]
		g.mergeCounters()
		p.unlock()
		for _, f := range stash {
			p.mgr.teardownStashed(f)
		}
		return
	}
	if n > len(g.stash) {
		n = len(g.stash)
	}
	if n > 0 {
		p.free = append(p.free, g.stash[:n]...)
		g.stash = append(g.stash[:0], g.stash[n:]...)
		g.flushes++
	}
	depth := len(p.free)
	g.mergeCounters()
	p.unlock()
	if o := p.mgr.Sys.Obs; o != nil && n > 0 {
		p.ensureMetrics(o)
		p.depthGauge.Set(int64(depth))
	}
}

// mergeCounters merges the deferred local counters into the shared Stats
// and Contention groups. Entirely atomic — a depot exchange merges without
// holding the path lock, which is why Allocated is an atomic field rather
// than lock-guarded (the PR 4 merge read Stats state non-atomically during
// an exchange). The zeroed locals make the merge idempotent.
func (g *Magazine) mergeCounters() {
	p := g.path
	m := p.mgr
	if g.allocs > 0 {
		atomic.AddUint64(&m.stats.Allocs, g.allocs)
		atomic.AddUint64(&m.stats.CacheHits, g.allocs)
		atomic.AddUint64(&p.Allocated, g.allocs)
	}
	if g.frees > 0 {
		atomic.AddUint64(&m.stats.Frees, g.frees)
	}
	if g.recycles > 0 {
		atomic.AddUint64(&m.stats.Recycles, g.recycles)
	}
	atomic.AddUint64(&m.contention.MagazineHits, g.hits)
	atomic.AddUint64(&m.contention.MagazineMisses, g.misses)
	atomic.AddUint64(&m.contention.MagazineRefills, g.refills)
	atomic.AddUint64(&m.contention.MagazineFlushes, g.flushes)
	g.hits, g.misses, g.refills, g.flushes = 0, 0, 0, 0
	g.allocs, g.frees, g.recycles = 0, 0, 0
}

// teardownStashed fully releases an fbuf that was sitting in a magazine
// stash when its path closed (its Recycles count was already taken).
func (m *Manager) teardownStashed(f *Fbuf) {
	if m.san != nil {
		m.san.verifyReuse(f)
	}
	f.mu.Lock()
	for id := range f.mapped {
		if d := m.domainByID(id); d != nil && !d.Dead() {
			m.unmapFromLocked(f, d)
		}
	}
	m.releaseFrames(f)
	f.refs = map[domain.ID]int{}
	f.mu.Unlock()
	f.setState(StateFree)
	f.total.Store(0)
	f.setSecured(false)
	m.Sys.Sink().Charge(m.Sys.Cost.VAFree)
	m.removeFromChunk(f)
}
