package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"fbufs/internal/domain"
	"fbufs/internal/faults"
	"fbufs/internal/machine"
	"fbufs/internal/mem"
	"fbufs/internal/obs"
	"fbufs/internal/vm"
)

// Manager is the per-host fbuf facility: it owns the fbuf region, grants
// chunks to path allocators, and implements transfer, secure, free, notice
// delivery, reclamation, and domain-termination cleanup.
//
// Concurrency model (DESIGN.md §10): the data-plane operations — Alloc,
// AllocBatch, Transfer, DupRef, Secure, Free, FreeBatch, fault handling —
// are safe under concurrent workers. State is sharded so they rarely meet on
// one lock: each DataPath guards its own free list and chunk list, each
// chunk guards its fbuf directory, each Fbuf guards its reference and
// mapping maps, and the Manager keeps only two narrow locks (regionMu for
// the chunk table and uncached directory, noticeMu for the pending-notice
// map) plus atomic counters for stats. ReclaimIdle is data-plane too: it
// walks free lists under the path and fbuf locks and defers the frame
// release through the epoch protocol (epoch.go), so it never stalls an
// allocating worker. Control-plane operations — NewPath, AttachDomain,
// ClosePath, domain creation and termination, CheckInvariants — mutate the
// path/domain directories without locks and are single-threaded by
// contract: run them before workers start or after they quiesce, exactly
// as a kernel runs them under its own coarse lock.
type Manager struct {
	Sys *vm.System
	Reg *domain.Registry

	chunkPages int
	numChunks  int

	// regionMu guards the chunk table (chunks slots, freeChunks), the
	// uncached directory, and the lazily allocated empty-leaf frame.
	regionMu   sync.Mutex
	chunks     []*chunk
	freeChunks []int

	paths    map[int]*DataPath
	nextPath int

	// uncached tracks live default-allocator fbufs by base VA (regionMu).
	uncached map[vm.VA]*Fbuf

	attached map[int]*domain.Domain // asid -> domain

	// noticeMu guards notices. Delivery pops a batch under the lock and
	// recycles after releasing it, so noticeMu is never held across the
	// recycle machinery (it is a leaf lock).
	noticeMu sync.Mutex
	// Pending deallocation notices, held at the freeing domain keyed by
	// the owning (originator) domain, delivered on the next RPC reply
	// that travels holder->owner, or explicitly when the list overflows.
	notices map[noticeKey][]*Fbuf
	// NoticeLimit is the "too many freed references have accumulated"
	// threshold beyond which an explicit notification message is sent.
	NoticeLimit int

	// emptyLeafFrame is the shared read-only page mapped on volatile
	// reads to unpermitted fbuf-region addresses ("initializes the page
	// with a leaf node that contains no data", section 3.2.4).
	emptyLeafFrame mem.FrameNum
	// EmptyLeafInit, if set, formats the empty-leaf page contents
	// (package aggregate installs its empty-node encoding).
	EmptyLeafInit func([]byte)

	// DefaultQuota is the chunk quota applied to paths that leave their
	// quota at 0 ("manager default").
	DefaultQuota int

	// TracePrefix is prepended to domain and path names registered with
	// the observer's tracer (netsim uses "A."/"B." per host).
	TracePrefix string

	// san is the fbsan runtime sanitizer, nil unless enabled (see
	// sanitizer.go). Every hook is behind this single nil check.
	san *Sanitizer

	// Path-cache residency tracking (pathcache.go). cacheMu is a leaf
	// lock (DESIGN.md §10.2): touchPath collects a candidate snapshot
	// under it and releases it before any eviction work, so it is never
	// held across another lock acquisition. cacheCap <= 0 disables the
	// cache entirely (the default), keeping every pre-existing workload
	// bit-identical.
	cacheMu     sync.Mutex
	cacheCap    int
	cachePolicy EvictionPolicy
	residents   map[int]*cacheEntry
	cacheSeq    uint64

	// admission, when non-nil, arbitrates chunk grants between tenant
	// classes (admission.go). Installed by SetAdmission before traffic
	// starts; paths opt in via SetTenant.
	admission *Admission

	// stats fields are updated with atomic adds and read through
	// Snapshot(); never read the struct directly during concurrent
	// operation.
	stats Stats

	// contention counts lock traffic and magazine cache behavior
	// (published as the smp.* metric group). All fields are atomic.
	contention Contention

	// epoch is the epoch-based frame-reclamation state (epoch.go). Inert —
	// frames release eagerly — until the first RegisterEpochWorker.
	epoch epochState

	// WallNow, when set, supplies real wall-clock nanoseconds for the
	// contended-lock wait measurement (PathContention.WaitNs). It is nil
	// in the deterministic single-threaded mode — only the opt-in
	// wall-clock parallel driver installs it, keeping simulator code free
	// of real-clock reads (the detlint contract). Set before spawning
	// workers; never mutate concurrently with them.
	WallNow func() int64
}

// Contention is the SMP diagnostics counter group: shared-lock traffic on
// the path allocators and the hit/refill behavior of per-worker magazines.
// In the single-threaded default mode LockContended is always zero and
// every counter is deterministic.
type Contention struct {
	// LockAcquires counts path free-list lock acquisitions.
	LockAcquires uint64
	// LockContended counts acquisitions that found the lock held
	// (TryLock failed and the caller had to wait).
	LockContended uint64
	// MagazineHits counts allocations served from a per-worker magazine
	// stash without touching any shared lock.
	MagazineHits uint64
	// MagazineMisses counts magazine allocations that found the stash
	// empty and fell back to the shared free list.
	MagazineMisses uint64
	// MagazineRefills counts refill operations that moved at least one
	// fbuf from a shared free list into a magazine.
	MagazineRefills uint64
	// MagazineFlushes counts flush operations that returned at least one
	// fbuf from a magazine to a shared free list.
	MagazineFlushes uint64
	// DepotExchanges counts whole-magazine unit swaps with a path depot
	// (full pushed or full popped), each one constant-time under the
	// depot's leaf-rank lock.
	DepotExchanges uint64
	// DepotAssemblies counts ExchangeEmpty calls that found the unit stack
	// dry and rebuilt a unit from the sharded loose-inventory lists.
	DepotAssemblies uint64
	// DepotSpills counts ExchangeFull calls that found the unit stack at
	// its bound and spilled the unit into a shard.
	DepotSpills uint64
	// EpochParks counts frames parked by the epoch reclaim protocol
	// instead of released inline.
	EpochParks uint64
	// EpochRetires counts parked frames returned to mem by AdvanceEpoch.
	EpochRetires uint64
}

// ContentionSnapshot returns an atomic copy of the contention counters.
func (m *Manager) ContentionSnapshot() Contention {
	return Contention{
		LockAcquires:    atomic.LoadUint64(&m.contention.LockAcquires),
		LockContended:   atomic.LoadUint64(&m.contention.LockContended),
		MagazineHits:    atomic.LoadUint64(&m.contention.MagazineHits),
		MagazineMisses:  atomic.LoadUint64(&m.contention.MagazineMisses),
		MagazineRefills: atomic.LoadUint64(&m.contention.MagazineRefills),
		MagazineFlushes: atomic.LoadUint64(&m.contention.MagazineFlushes),
		DepotExchanges:  atomic.LoadUint64(&m.contention.DepotExchanges),
		DepotAssemblies: atomic.LoadUint64(&m.contention.DepotAssemblies),
		DepotSpills:     atomic.LoadUint64(&m.contention.DepotSpills),
		EpochParks:      atomic.LoadUint64(&m.contention.EpochParks),
		EpochRetires:    atomic.LoadUint64(&m.contention.EpochRetires),
	}
}

type noticeKey struct {
	holder domain.ID
	owner  domain.ID
}

// chunk is one kernel-granted slice of the fbuf region. mu guards the fbuf
// directory (fbufs); used is guarded by the owning path's lock for
// path-owned chunks and by the manager's regionMu for kernel-owned ones.
type chunk struct {
	index int
	base  vm.VA
	owner *DataPath // nil when free or owned by the default allocator
	mu    sync.Mutex
	fbufs []*Fbuf // carved buffers (contiguous from base)
	used  int     // pages carved so far
}

// Stats counts facility activity for the experiment reports.
type Stats struct {
	Allocs          uint64
	CacheHits       uint64
	CacheMisses     uint64
	Transfers       uint64
	MappingsBuilt   uint64 // per-page mapping operations during transfer
	Secures         uint64
	Frees           uint64
	Recycles        uint64
	NoticesQueued   uint64
	NoticesPiggy    uint64
	NoticesExplicit uint64
	// NoticesRing counts deallocation notices collected into a ring
	// completion entry (one coalesced batch per drain) instead of riding a
	// reply or an explicit overflow message (rings.go in internal/rings,
	// wired via Manager.CollectNotices/RetireNotices).
	NoticesRing     uint64
	FramesReclaimed uint64
	LazyRefills     uint64
	// AllocFailures counts Alloc/AllocUncached calls that failed for lack
	// of a resource (quota, region, or physical memory — see
	// IsAllocFailure). The degraded copy path in package xfer watches this
	// backpressure signal.
	AllocFailures uint64
	// PathEvictions counts path-cache demotions: a resident path whose
	// free-listed fbufs were torn down to make room (pathcache.go).
	PathEvictions uint64
	// AdmissionRejects counts chunk grants refused because the path's
	// tenant class exhausted its weighted share (admission.go). Each is
	// also an AllocFailure.
	AdmissionRejects uint64
}

// Check validates the cross-counter invariants; Manager.CheckInvariants
// calls it so any counter drift fails existing tests at the source.
//
// Check is a value method on a snapshot copy, so it is safe to call from
// any goroutine. The invariants themselves only hold at quiescence: a
// worker caught between its Allocs increment and the matching
// CacheHits/CacheMisses increment would make a mid-flight snapshot drift,
// so take the Snapshot after workers stop (or join) before checking.
func (s Stats) Check() error {
	if s.Allocs != s.CacheHits+s.CacheMisses {
		return fmt.Errorf("core: stats drift: Allocs=%d != CacheHits=%d + CacheMisses=%d",
			s.Allocs, s.CacheHits, s.CacheMisses)
	}
	if s.NoticesQueued < s.NoticesPiggy+s.NoticesExplicit+s.NoticesRing {
		return fmt.Errorf("core: stats drift: NoticesQueued=%d < NoticesPiggy=%d + NoticesExplicit=%d + NoticesRing=%d",
			s.NoticesQueued, s.NoticesPiggy, s.NoticesExplicit, s.NoticesRing)
	}
	// Every recycle is triggered by a free or by allocator teardown of a
	// buffer that was allocated (ClosePath, failed populate rollback).
	if s.Recycles > s.Frees+s.Allocs {
		return fmt.Errorf("core: stats drift: Recycles=%d > Frees=%d + Allocs=%d",
			s.Recycles, s.Frees, s.Allocs)
	}
	// Every counted failure followed an attempt that bumped Allocs first.
	if s.AllocFailures > s.Allocs {
		return fmt.Errorf("core: stats drift: AllocFailures=%d > Allocs=%d",
			s.AllocFailures, s.Allocs)
	}
	// Every admission reject surfaces as ErrAdmission, which Alloc counts
	// as an alloc failure on the way out.
	if s.AdmissionRejects > s.AllocFailures {
		return fmt.Errorf("core: stats drift: AdmissionRejects=%d > AllocFailures=%d",
			s.AdmissionRejects, s.AllocFailures)
	}
	return nil
}

// Snapshot returns a copy of the facility counters — the typed read path
// for tests, benches, and tools (the live struct is unexported so no
// consumer can drift a duplicate count). Every field is read with an
// atomic load, so Snapshot is safe during concurrent operation; it is a
// per-field snapshot, not a globally consistent cut — cross-counter
// invariants (Stats.Check) are only meaningful at quiescence.
func (m *Manager) Snapshot() Stats {
	return Stats{
		Allocs:           atomic.LoadUint64(&m.stats.Allocs),
		CacheHits:        atomic.LoadUint64(&m.stats.CacheHits),
		CacheMisses:      atomic.LoadUint64(&m.stats.CacheMisses),
		Transfers:        atomic.LoadUint64(&m.stats.Transfers),
		MappingsBuilt:    atomic.LoadUint64(&m.stats.MappingsBuilt),
		Secures:          atomic.LoadUint64(&m.stats.Secures),
		Frees:            atomic.LoadUint64(&m.stats.Frees),
		Recycles:         atomic.LoadUint64(&m.stats.Recycles),
		NoticesQueued:    atomic.LoadUint64(&m.stats.NoticesQueued),
		NoticesPiggy:     atomic.LoadUint64(&m.stats.NoticesPiggy),
		NoticesExplicit:  atomic.LoadUint64(&m.stats.NoticesExplicit),
		NoticesRing:      atomic.LoadUint64(&m.stats.NoticesRing),
		FramesReclaimed:  atomic.LoadUint64(&m.stats.FramesReclaimed),
		LazyRefills:      atomic.LoadUint64(&m.stats.LazyRefills),
		AllocFailures:    atomic.LoadUint64(&m.stats.AllocFailures),
		PathEvictions:    atomic.LoadUint64(&m.stats.PathEvictions),
		AdmissionRejects: atomic.LoadUint64(&m.stats.AdmissionRejects),
	}
}

// PublishMetrics writes the facility counters and per-path gauges into the
// registry using Set, so the Stats struct stays the single source of truth.
func (m *Manager) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s := m.Snapshot()
	reg.Counter("core.allocs").Set(s.Allocs)
	reg.Counter("core.cache_hits").Set(s.CacheHits)
	reg.Counter("core.cache_misses").Set(s.CacheMisses)
	reg.Counter("core.transfers").Set(s.Transfers)
	reg.Counter("core.mappings_built").Set(s.MappingsBuilt)
	reg.Counter("core.secures").Set(s.Secures)
	reg.Counter("core.frees").Set(s.Frees)
	reg.Counter("core.recycles").Set(s.Recycles)
	reg.Counter("core.notices_queued").Set(s.NoticesQueued)
	reg.Counter("core.notices_piggy").Set(s.NoticesPiggy)
	reg.Counter("core.notices_explicit").Set(s.NoticesExplicit)
	reg.Counter("core.notices_ring").Set(s.NoticesRing)
	reg.Counter("core.frames_reclaimed").Set(s.FramesReclaimed)
	reg.Counter("core.lazy_refills").Set(s.LazyRefills)
	reg.Counter("core.alloc_failures").Set(s.AllocFailures)
	reg.Counter("core.path_evictions").Set(s.PathEvictions)
	reg.Counter("core.admission_rejects").Set(s.AdmissionRejects)
	c := m.ContentionSnapshot()
	reg.Counter("smp.lock_acquires").Set(c.LockAcquires)
	reg.Counter("smp.lock_contended").Set(c.LockContended)
	reg.Counter("smp.magazine_hits").Set(c.MagazineHits)
	reg.Counter("smp.magazine_misses").Set(c.MagazineMisses)
	reg.Counter("smp.magazine_refills").Set(c.MagazineRefills)
	reg.Counter("smp.magazine_flushes").Set(c.MagazineFlushes)
	reg.Counter("smp.depot_exchanges").Set(c.DepotExchanges)
	reg.Counter("smp.depot_assemblies").Set(c.DepotAssemblies)
	reg.Counter("smp.depot_spills").Set(c.DepotSpills)
	reg.Counter("smp.epoch_parks").Set(c.EpochParks)
	reg.Counter("smp.epoch_retires").Set(c.EpochRetires)
	for _, p := range m.paths {
		reg.Gauge(p.metricPrefix() + "free_depth").Set(int64(p.FreeListLen()))
		if d := p.depot; d != nil {
			reg.Gauge(p.metricPrefix() + "depot_inventory").Set(int64(d.Inventory()))
			for i, ss := range d.ShardStats() {
				pre := fmt.Sprintf("%sdepot_shard.%d.", p.metricPrefix(), i)
				reg.Counter(pre + "acquires").Set(ss.Acquires)
				reg.Counter(pre + "contended").Set(ss.Contended)
				reg.Gauge(pre + "depth").Set(int64(ss.Depth))
			}
		}
	}
}

// emit sends one event through the host observer, resolving the trace
// actor from the domain and the track plus generation from the fbuf. The
// single nil check is the entire disabled-path cost.
func (m *Manager) emit(kind obs.EventKind, d *domain.Domain, f *Fbuf, arg int64) {
	o := m.Sys.Obs
	if o == nil {
		return
	}
	actor, track := obs.NoActor, obs.NoTrack
	if d != nil {
		actor = int(d.ID) + m.Sys.TraceBase
	}
	var gen uint64
	if f != nil {
		gen = f.gen.Load()
		if f.Path != nil {
			track = f.Path.ID + m.Sys.TraceBase
		}
	}
	o.Emit(kind, actor, track, gen, arg)
}

// RegisterTraceNames labels every attached domain and path in the
// observer's tracer, prefixing names with prefix (kept for domains and
// paths created later). Call after attaching Sys.Obs.
func (m *Manager) RegisterTraceNames(prefix string) {
	m.TracePrefix = prefix
	o := m.Sys.Obs
	if o == nil || o.Tracer == nil {
		return
	}
	for _, d := range m.attached {
		o.Tracer.SetActor(int(d.ID)+m.Sys.TraceBase, prefix+d.Name)
	}
	for _, p := range m.paths {
		o.Tracer.SetTrack(p.ID+m.Sys.TraceBase, prefix+p.Name)
	}
}

// NewManager creates the fbuf facility with default region geometry.
func NewManager(sys *vm.System, reg *domain.Registry) *Manager {
	return NewManagerGeometry(sys, reg, DefaultChunkPages, DefaultRegionChunks)
}

// NewManagerGeometry creates the facility with explicit chunk geometry.
func NewManagerGeometry(sys *vm.System, reg *domain.Registry, chunkPages, numChunks int) *Manager {
	m := &Manager{
		Sys:            sys,
		Reg:            reg,
		chunkPages:     chunkPages,
		numChunks:      numChunks,
		chunks:         make([]*chunk, numChunks),
		paths:          make(map[int]*DataPath),
		uncached:       make(map[vm.VA]*Fbuf),
		attached:       make(map[int]*domain.Domain),
		notices:        make(map[noticeKey][]*Fbuf),
		NoticeLimit:    32,
		DefaultQuota:   DefaultPathQuota,
		emptyLeafFrame: mem.NoFrame,
	}
	for i := numChunks - 1; i >= 0; i-- {
		m.freeChunks = append(m.freeChunks, i)
	}
	if sanitizerDefault {
		m.EnableSanitizer()
	}
	m.AttachDomain(reg.Kernel())
	return m
}

// RegionPages returns the size of the fbuf region in pages.
func (m *Manager) RegionPages() int { return m.chunkPages * m.numChunks }

// EmptyLeafFrames reports how many physical frames the lazily allocated
// shared empty-leaf page holds (0 or 1) — the one allocation that
// legitimately outlives a converged workload, so frame-leak accounting
// (the chaos harness) can exclude it from its baseline comparison.
func (m *Manager) EmptyLeafFrames() int {
	m.regionMu.Lock()
	defer m.regionMu.Unlock()
	if m.emptyLeafFrame == mem.NoFrame {
		return 0
	}
	return 1
}

// regionEnd returns the first VA past the region.
func (m *Manager) regionEnd() vm.VA {
	return RegionBase + vm.VA(m.RegionPages()*machine.PageSize)
}

// InRegion reports whether va lies in the fbuf region (the receiver-side
// pointer range check of section 3.2.4).
func (m *Manager) InRegion(va vm.VA) bool { return va >= RegionBase && va < m.regionEnd() }

// AttachDomain reserves the fbuf region in the domain's address space and
// registers the fault handler and the death hook. Every domain that will
// originate or receive fbufs must be attached.
func (m *Manager) AttachDomain(d *domain.Domain) {
	if _, ok := m.attached[d.AS.ASID]; ok {
		return
	}
	r := &vm.Region{
		Start:   RegionBase,
		Pages:   m.RegionPages(),
		Name:    "fbuf-region",
		Handler: m.fault,
	}
	if err := d.AS.AddRegion(r); err != nil {
		panic("core: fbuf region overlap: " + err.Error())
	}
	m.attached[d.AS.ASID] = d
	d.OnDeath(m.domainDied)
	if o := m.Sys.Obs; o != nil && o.Tracer != nil {
		o.Tracer.SetActor(int(d.ID)+m.Sys.TraceBase, m.TracePrefix+d.Name)
	}
}

// Attached reports whether the domain is attached.
func (m *Manager) Attached(d *domain.Domain) bool {
	_, ok := m.attached[d.AS.ASID]
	return ok
}

// --- Chunk management (the kernel half of the two-level allocator) ---

// grantChunk hands a free chunk to a path allocator (or the default
// allocator when p is nil), charging the kernel-call cost.
func (m *Manager) grantChunk(p *DataPath) (*chunk, error) {
	m.regionMu.Lock()
	defer m.regionMu.Unlock()
	return m.grantChunkLocked(p)
}

// grantChunkLocked is grantChunk with regionMu already held (the uncached
// allocator holds it across chunk selection and carving).
func (m *Manager) grantChunkLocked(p *DataPath) (*chunk, error) {
	m.Sys.Sink().Charge(m.Sys.Cost.KernelCall)
	// An injected chunk-grant fault is indistinguishable from genuine
	// region exhaustion: the kernel call was paid, no chunk arrives.
	if m.Sys.FaultPlane.Should(faults.ChunkGrant) {
		return nil, ErrRegionFull
	}
	if len(m.freeChunks) == 0 {
		return nil, ErrRegionFull
	}
	idx := m.freeChunks[len(m.freeChunks)-1]
	m.freeChunks = m.freeChunks[:len(m.freeChunks)-1]
	c := &chunk{
		index: idx,
		base:  RegionBase + vm.VA(idx*m.chunkPages*machine.PageSize),
		owner: p,
	}
	m.chunks[idx] = c
	return c, nil
}

// releaseChunk returns a fully drained chunk to the kernel. The owning
// path's tenant (if any) gets its admission charge back: admission tracks
// chunks held, not chunks ever granted.
func (m *Manager) releaseChunk(c *chunk) {
	if p := c.owner; p != nil {
		if t := p.tenant; t != nil && m.admission != nil {
			m.admission.release(t)
		}
	}
	m.regionMu.Lock()
	m.chunks[c.index] = nil
	m.freeChunks = append(m.freeChunks, c.index)
	m.regionMu.Unlock()
}

// fbufAt finds the fbuf containing va, whether path-owned or uncached.
func (m *Manager) fbufAt(va vm.VA) *Fbuf {
	if !m.InRegion(va) {
		return nil
	}
	idx := int((va - RegionBase) / vm.VA(m.chunkPages*machine.PageSize))
	m.regionMu.Lock()
	c := m.chunks[idx]
	m.regionMu.Unlock()
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, f := range c.fbufs {
		if f.Contains(va) {
			return f
		}
	}
	return nil
}

// --- Fault handling: lazy refill and the volatile empty-leaf rule ---

func (m *Manager) fault(as *vm.AddrSpace, va vm.VA, write bool) error {
	d := m.attached[as.ASID]
	if d == nil {
		return fmt.Errorf("unattached address space")
	}
	f := m.fbufAt(va)
	if f == nil || f.loadState() == StateFree && !f.opts.Cached {
		return m.volatileLeafOrError(as, va, write, "no fbuf at address")
	}
	f.mu.Lock()
	// Does this domain have rights to the fbuf?
	hasRights := f.refs[d.ID] > 0 || d == f.Originator ||
		(f.opts.Cached && f.mapped[d.ID]) // cached mappings persist across free
	if !hasRights {
		f.mu.Unlock()
		return m.volatileLeafOrError(as, va, write, "no permission")
	}
	if write && (d != f.Originator || f.isSecured()) {
		f.mu.Unlock()
		return fmt.Errorf("fbuf is immutable to %s", d)
	}
	page := int((va - f.Base) / machine.PageSize)
	prot := vm.ProtRead
	if d == f.Originator && !f.isSecured() {
		prot = vm.ReadWrite
	}
	if f.frames[page] == mem.NoFrame {
		// Physical memory was reclaimed (or never populated): allocate
		// and, for security, clear the frame unless it is known-zero.
		fn, err := m.allocFrame(f, false)
		if err != nil {
			f.mu.Unlock()
			return err
		}
		f.frames[page] = fn
		as.Map(f.Base+vm.VA(page*machine.PageSize), fn, prot)
		atomic.AddUint64(&m.stats.LazyRefills, 1)
		m.emit(obs.EvMappingBuilt, d, f, int64(page))
		f.mapped[d.ID] = true
		f.mu.Unlock()
		return nil
	}
	// Frame exists but this domain's PTE is missing (e.g. mapping was
	// shot down during reclamation of a sibling page, or first touch by
	// a receiver of a cached fbuf): just map it.
	as.Map(f.Base+vm.VA(page*machine.PageSize), f.frames[page], prot)
	m.emit(obs.EvMappingBuilt, d, f, int64(page))
	f.mapped[d.ID] = true
	f.mu.Unlock()
	return nil
}

// volatileLeafOrError implements the section 3.2.4 rule: a *read* to an
// unpermitted fbuf-region address is satisfied by mapping a shared page
// holding an empty leaf node; a write is a protection violation.
func (m *Manager) volatileLeafOrError(as *vm.AddrSpace, va vm.VA, write bool, cause string) error {
	if write {
		return fmt.Errorf("fbuf region write: %s", cause)
	}
	m.regionMu.Lock()
	if m.emptyLeafFrame == mem.NoFrame {
		fn, err := m.Sys.Mem.Alloc()
		if err != nil {
			m.regionMu.Unlock()
			return err
		}
		m.Sys.Sink().Charge(m.Sys.Cost.FrameAlloc + m.Sys.Cost.PageClear)
		m.Sys.Mem.Zero(fn)
		if m.EmptyLeafInit != nil {
			m.EmptyLeafInit(m.Sys.Mem.Frame(fn).Data)
		}
		m.emptyLeafFrame = fn
	}
	leaf := m.emptyLeafFrame
	m.regionMu.Unlock()
	as.Map(va.PageBase(), leaf, vm.ProtRead)
	return nil
}
