package core

import (
	"testing"

	"fbufs/internal/domain"
)

// FuzzDepot extends FuzzMagazine's op language with the PR 10 many-core
// machinery: two magazines over one depot-enabled path (unit 3, 2 shards,
// maxFull 2 so spills and shard assemblies are reachable with tiny
// sequences), two registered epoch workers, and ops that charge/discharge
// the depot, reclaim idle frames, advance the epoch, pin/unpin workers, and
// evict the path mid-stream. The contract under test: no interleaving of
// magazine exchanges, depot traffic, epoch parking, and eviction breaks the
// deferred-counter books (one hit or miss per magazine Alloc call), the
// global counter invariants, or convergence once the epochs drain.
func FuzzDepot(f *testing.F) {
	// Charge the free list into the depot, discharge it back, realloc.
	f.Add([]byte{0x00, 0x00, 0x00, 0x01, 0x02, 0x00, 0x02, 0x00, 0x08, 0x00, 0x09, 0x00, 0x00, 0x00})
	// Pinned worker holds parked frames across an advance; exit releases.
	f.Add([]byte{0x0c, 0x00, 0x00, 0x00, 0x02, 0x00, 0x0a, 0x03, 0x0b, 0x00, 0x0c, 0x01, 0x0b, 0x00})
	// Enough churn to rotate prev, exchange with the depot, and spill.
	f.Add([]byte{
		0x00, 0x00, 0x00, 0x01, 0x00, 0x02, 0x00, 0x03, 0x00, 0x04, 0x00, 0x05, 0x00, 0x06, 0x00, 0x07,
		0x02, 0x00, 0x02, 0x00, 0x02, 0x00, 0x02, 0x00, 0x02, 0x00, 0x02, 0x00, 0x02, 0x00, 0x02, 0x00,
	})
	// Eviction between allocation bursts, then depot discharge.
	f.Add([]byte{0x00, 0x00, 0x00, 0x01, 0x02, 0x00, 0x0d, 0x00, 0x00, 0x00, 0x02, 0x00, 0x09, 0x00})
	// Transfers and direct allocs mixed with epoch advances and drains.
	f.Add([]byte{0x00, 0x00, 0x07, 0x00, 0x04, 0x00, 0x05, 0x00, 0x06, 0x00, 0x0b, 0x00, 0x0a, 0x07})

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 600 {
			ops = ops[:600]
		}
		r := newMagFuzzRig()
		san := r.mgr.EnableSanitizer()
		san.OnViolation = func(msg string) { t.Errorf("fbsan: %s", msg) }
		p, err := r.mgr.NewPath("depot-fuzz", CachedVolatile(), 1, r.src, r.dst)
		if err != nil {
			t.Fatal(err)
		}
		d := p.EnableDepot(3, 2)
		d.SetMaxFull(2)
		w1 := r.mgr.RegisterEpochWorker()
		w2 := r.mgr.RegisterEpochWorker()
		magA := p.NewMagazine(3)
		magB := p.NewMagazine(3)

		var live []*Fbuf // src-held live fbufs, in allocation order
		var magAllocCalls, allocs, frees uint64
		pick := func(sel byte) int { return int(sel) % len(live) }
		drop := func(i int) { live = append(live[:i], live[i+1:]...) }

		for i := 0; i < len(ops); i++ {
			op := ops[i] % 14
			var sel byte
			if i+1 < len(ops) {
				i++
				sel = ops[i]
			}
			switch op {
			case 0, 1: // magazine alloc
				mag := magA
				if op == 1 {
					mag = magB
				}
				magAllocCalls++
				fb, err := mag.Alloc()
				if err != nil {
					continue // quota/region exhaustion: legal, still a miss
				}
				allocs++
				if err := fb.TouchWrite(r.src, uint32(allocs)); err != nil {
					t.Fatal(err)
				}
				live = append(live, fb)
			case 2, 3: // magazine free (sole-holder fast path)
				if len(live) == 0 {
					continue
				}
				mag := magA
				if op == 3 {
					mag = magB
				}
				i := pick(sel)
				if err := mag.Free(live[i], r.src); err != nil {
					t.Fatalf("magazine free: %v", err)
				}
				frees++
				drop(i)
			case 4: // direct path alloc (full kernel-boundary path)
				fb, err := p.Alloc()
				if err != nil {
					continue
				}
				allocs++
				live = append(live, fb)
			case 5: // direct facility free
				if len(live) == 0 {
					continue
				}
				i := pick(sel)
				if err := r.mgr.Free(live[i], r.src); err != nil {
					t.Fatalf("facility free: %v", err)
				}
				frees++
				drop(i)
			case 6: // mid-sequence drain merges the deferred counters
				magA.Drain()
				magB.Drain()
			case 7: // transfer: receiver free + originator free, both slow path
				if len(live) == 0 {
					continue
				}
				i := pick(sel)
				fb := live[i]
				if err := r.mgr.Transfer(fb, r.src, r.dst); err != nil {
					t.Fatal(err)
				}
				if err := fb.TouchRead(r.dst); err != nil {
					t.Fatal(err)
				}
				if err := r.mgr.Free(fb, r.dst); err != nil {
					t.Fatal(err)
				}
				if err := magA.Free(fb, r.src); err != nil {
					t.Fatalf("post-transfer originator free: %v", err)
				}
				frees += 2 // receiver's drop and the originator's both count
				drop(i)
			case 8: // charge free-list tail into the depot as one unit
				p.DepotCharge(1 + int(sel)%4)
			case 9: // discharge the whole depot inventory back
				p.DepotDischarge()
			case 10: // reclaim idle frames (parks them, epoch workers exist)
				r.mgr.ReclaimIdle(int(sel)%8 + 1)
			case 11: // advance the epoch, retiring what every worker passed
				r.mgr.AdvanceEpoch()
			case 12: // pin/unpin the epoch workers
				switch sel % 4 {
				case 0:
					w1.Enter()
				case 1:
					w1.Exit()
				case 2:
					w2.Enter()
				case 3:
					w2.Exit()
				}
			case 13: // evict: demote every free-listed and depot-held fbuf
				r.mgr.EvictPath(p)
			}
		}

		// Quiesce: free everything still held, drain the local and depot
		// inventories, deliver queued notices, unpin the workers, and
		// advance until every parked frame has retired.
		for _, fb := range live {
			if err := magA.Free(fb, r.src); err != nil {
				t.Fatalf("final free: %v", err)
			}
			frees++
		}
		magA.Drain()
		magB.Drain()
		p.DepotDischarge()
		doms := []*domain.Domain{r.reg.Kernel(), r.src, r.net, r.dst}
		for _, h := range doms {
			for _, o := range doms {
				r.mgr.DeliverNotices(h, o)
			}
		}
		w1.Exit()
		w2.Exit()
		for i := 0; i < 4 && r.mgr.EpochPending() > 0; i++ {
			r.mgr.AdvanceEpoch()
		}
		if pend := r.mgr.EpochPending(); pend != 0 {
			t.Fatalf("EpochPending = %d after quiescent advances, want 0", pend)
		}

		// Same deferred-counter contract as FuzzMagazine: the depot refill
		// path counts as a miss, so one hit or miss per Alloc call survives.
		for name, mag := range map[string]*Magazine{"A": magA, "B": magB} {
			if d := mag.Depth(); d != 0 {
				t.Errorf("magazine %s depth %d after Drain", name, d)
			}
			h, m, rf, fl := mag.LocalStats()
			if h|m|rf|fl != 0 {
				t.Errorf("magazine %s local counters (%d,%d,%d,%d) not merged by Drain",
					name, h, m, rf, fl)
			}
		}
		cont := r.mgr.ContentionSnapshot()
		if got := cont.MagazineHits + cont.MagazineMisses; got != magAllocCalls {
			t.Errorf("hits+misses = %d, want %d (one per magazine Alloc call)",
				got, magAllocCalls)
		}
		stats := r.mgr.Snapshot()
		if stats.Allocs != allocs || stats.Frees != frees {
			t.Errorf("Allocs/Frees = %d/%d, want %d/%d",
				stats.Allocs, stats.Frees, allocs, frees)
		}
		if err := stats.Check(); err != nil {
			t.Errorf("stats invariants: %v", err)
		}
		if err := r.mgr.CheckInvariants(); err != nil {
			t.Error(err)
		}
		if err := r.mgr.CheckConverged(); err != nil {
			t.Errorf("leaked after quiescence: %v", err)
		}
	})
}
