package core

import (
	"sync"
	"sync/atomic"
)

// Depot is the central magazine depot of the Bonwick three-level allocator
// (worker magazine → per-path depot → path free list / chunk carve). Workers
// exchange whole magazines with the depot — a full stash for an empty one or
// vice versa — so the shared cost of a refill or a drain is one constant-time
// unit swap under a single leaf-rank lock, not an item-at-a-time walk of the
// path free list. Loose inventory lives on sharded free lists that feed the
// unit stack: ExchangeFull spills surplus units into shards round-robin, and
// ExchangeEmpty reassembles units from the shards when the stack runs dry,
// so a burst imbalance between producers and consumers degrades to sharded
// (not global) contention.
//
// A depot is optional per-path state: paths without one (the default) keep
// the PR 4 item-at-a-time magazine behavior bit-identical. Install one with
// EnableDepot before workers start; magazines created afterwards exchange
// with it automatically.
//
// Lock ranks (DESIGN.md §10): Depot.mu orders after every data-plane lock
// and before the shard leaves — a unit swap may assemble or spill through
// depotShard.mu while holding it, and nothing else is ever acquired under
// either.
type Depot struct {
	path *DataPath
	unit int // fbufs per magazine unit

	// mu guards the unit stack, the closed flag, and the spill cursor.
	mu        sync.Mutex
	closed    bool
	full      [][]*Fbuf // LIFO stack of full magazine units
	maxFull   int
	spillNext int

	shards []*depotShard
}

// depotShard is one sharded loose-inventory free list feeding the depot.
type depotShard struct {
	mu   sync.Mutex
	free []*Fbuf

	// Contention counters (atomic), the raw data of the per-shard heatmap.
	acquires  uint64
	contended uint64
}

// DefaultDepotShards is the shard count used when EnableDepot is given a
// non-positive one.
const DefaultDepotShards = 8

// defaultDepotMaxFull bounds the unit stack; surplus full units spill into
// the shards instead of growing the stack without limit.
const defaultDepotMaxFull = 16

// EnableDepot installs a magazine depot on the path with the given unit size
// (fbufs per magazine, DefaultMagazineCap if non-positive) and shard count
// (DefaultDepotShards if non-positive). Control-plane: call before workers
// start, like NewPath. Idempotent — a second call returns the existing depot.
func (p *DataPath) EnableDepot(unit, shards int) *Depot {
	if p.depot != nil {
		return p.depot
	}
	if unit <= 0 {
		unit = DefaultMagazineCap
	}
	if shards <= 0 {
		shards = DefaultDepotShards
	}
	d := &Depot{path: p, unit: unit, maxFull: defaultDepotMaxFull}
	for i := 0; i < shards; i++ {
		d.shards = append(d.shards, &depotShard{})
	}
	p.depot = d
	return d
}

// Depot returns the path's magazine depot, nil when none is installed.
func (p *DataPath) Depot() *Depot { return p.depot }

// SetMaxFull overrides the unit-stack bound (defaultDepotMaxFull). Control-
// plane: call right after EnableDepot, before workers start. The conformance
// rig shrinks it to 1 so spills and assemblies are reachable inside its small
// geometry; values below 1 are clamped to 1.
func (d *Depot) SetMaxFull(n int) {
	if n < 1 {
		n = 1
	}
	d.mu.Lock()
	d.maxFull = n
	d.mu.Unlock()
}

// Unit returns the depot's magazine unit size.
func (d *Depot) Unit() int { return d.unit }

// Shards returns the shard count.
func (d *Depot) Shards() int { return len(d.shards) }

// lock acquires a shard's lock, counting traffic and contention.
func (s *depotShard) lock() {
	atomic.AddUint64(&s.acquires, 1)
	if s.mu.TryLock() {
		return
	}
	atomic.AddUint64(&s.contended, 1)
	s.mu.Lock()
}

func (s *depotShard) unlock() { s.mu.Unlock() }

// ExchangeEmpty swaps an empty worker magazine for a full unit: the unit
// stack is popped when possible, otherwise a unit is assembled from the
// shards (hottest shard order, taking each shard lock once). It returns
// (nil, false) when the depot holds no inventory or the path has closed —
// the caller then falls back to the path free list.
func (d *Depot) ExchangeEmpty() ([]*Fbuf, bool) {
	m := d.path.mgr
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, false
	}
	if n := len(d.full); n > 0 {
		unit := d.full[n-1]
		d.full[n-1] = nil
		d.full = d.full[:n-1]
		d.mu.Unlock()
		atomic.AddUint64(&m.contention.DepotExchanges, 1)
		return unit, true
	}
	// Stack dry: assemble a unit from the shard free lists. Shard order is
	// fixed (0..n-1) so single-threaded runs are deterministic.
	unit := make([]*Fbuf, 0, d.unit)
	for i := 0; i < len(d.shards) && len(unit) < d.unit; i++ {
		s := d.shards[i]
		s.lock()
		take := d.unit - len(unit)
		if take > len(s.free) {
			take = len(s.free)
		}
		if take > 0 {
			unit = append(unit, s.free[len(s.free)-take:]...)
			for j := len(s.free) - take; j < len(s.free); j++ {
				s.free[j] = nil
			}
			s.free = s.free[:len(s.free)-take]
		}
		s.unlock()
	}
	d.mu.Unlock()
	if len(unit) == 0 {
		return nil, false
	}
	atomic.AddUint64(&m.contention.DepotExchanges, 1)
	atomic.AddUint64(&m.contention.DepotAssemblies, 1)
	return unit, true
}

// ExchangeFull swaps a full worker magazine into the depot for an (implicit)
// empty one. The unit lands on the stack, or spills into a shard round-robin
// when the stack is at its bound. If the path closed while the worker held
// the magazine, the stranded unit is torn down through the closed-path
// machinery instead — exactly as a Drain on the closed path would.
func (d *Depot) ExchangeFull(unit []*Fbuf) {
	if len(unit) == 0 {
		return
	}
	m := d.path.mgr
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		for _, f := range unit {
			m.teardownStashed(f)
		}
		return
	}
	if len(d.full) < d.maxFull {
		d.full = append(d.full, unit)
		d.mu.Unlock()
		atomic.AddUint64(&m.contention.DepotExchanges, 1)
		return
	}
	s := d.shards[d.spillNext%len(d.shards)]
	d.spillNext++
	s.lock()
	s.free = append(s.free, unit...)
	s.unlock()
	d.mu.Unlock()
	atomic.AddUint64(&m.contention.DepotExchanges, 1)
	atomic.AddUint64(&m.contention.DepotSpills, 1)
}

// Inventory counts the fbufs currently held by the depot (units + shards).
func (d *Depot) Inventory() int {
	n := 0
	d.mu.Lock()
	for _, u := range d.full {
		n += len(u)
	}
	for _, s := range d.shards {
		s.lock()
		n += len(s.free)
		s.unlock()
	}
	d.mu.Unlock()
	return n
}

// snapshotInventory returns the depot's inventory in drain order (unit stack
// top-down, then shards 0..n-1) without removing it. Control-plane: the
// invariant walk calls it at quiescence.
func (d *Depot) snapshotInventory() []*Fbuf {
	var out []*Fbuf
	d.mu.Lock()
	for i := len(d.full) - 1; i >= 0; i-- {
		out = append(out, d.full[i]...)
	}
	for _, s := range d.shards {
		s.lock()
		out = append(out, s.free...)
		s.unlock()
	}
	d.mu.Unlock()
	return out
}

// drain removes and returns the entire inventory in deterministic order:
// unit-stack top-down (most recently exchanged first), each unit in slice
// order, then shards 0..n-1 in list order. The depot stays open — EvictPath
// demotes through here and the path keeps allocating afterwards.
func (d *Depot) drain() []*Fbuf {
	var out []*Fbuf
	d.mu.Lock()
	for i := len(d.full) - 1; i >= 0; i-- {
		out = append(out, d.full[i]...)
		d.full[i] = nil
	}
	d.full = d.full[:0]
	for _, s := range d.shards {
		s.lock()
		out = append(out, s.free...)
		s.free = nil
		s.unlock()
	}
	d.mu.Unlock()
	return out
}

// close drains the depot and marks it closed: subsequent ExchangeEmpty
// calls fail and ExchangeFull tears stranded units down. ClosePath calls it.
func (d *Depot) close() []*Fbuf {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	return d.drain()
}

// DepotCharge moves up to n fbufs from the hot end of the path's free list
// into the depot as one unit (the conformance model drives the depot through
// this and DepotDischarge). It returns the number moved.
func (p *DataPath) DepotCharge(n int) int {
	d := p.depot
	if d == nil || n <= 0 {
		return 0
	}
	p.lock()
	if p.closed {
		p.unlock()
		return 0
	}
	if n > len(p.free) {
		n = len(p.free)
	}
	unit := make([]*Fbuf, n)
	copy(unit, p.free[len(p.free)-n:])
	for j := len(p.free) - n; j < len(p.free); j++ {
		p.free[j] = nil
	}
	p.free = p.free[:len(p.free)-n]
	p.unlock()
	d.ExchangeFull(unit)
	return n
}

// DepotDischarge moves the depot's entire inventory back onto the path's
// free list in drain order, returning the number moved. On a closed path the
// inventory is torn down instead (the depot is already closed then, so drain
// returns nothing and the count is 0).
func (p *DataPath) DepotDischarge() int {
	d := p.depot
	if d == nil {
		return 0
	}
	inv := d.drain()
	if len(inv) == 0 {
		return 0
	}
	p.lock()
	if p.closed {
		p.unlock()
		for _, f := range inv {
			p.mgr.teardownStashed(f)
		}
		return 0
	}
	p.free = append(p.free, inv...)
	p.unlock()
	return len(inv)
}

// DepotShardStat is one shard's contention and depth snapshot, the raw rows
// of the per-shard contention heatmap.
type DepotShardStat struct {
	Acquires  uint64
	Contended uint64
	Depth     int
}

// ShardStats snapshots every shard's lock traffic and current depth.
func (d *Depot) ShardStats() []DepotShardStat {
	out := make([]DepotShardStat, len(d.shards))
	for i, s := range d.shards {
		out[i].Acquires = atomic.LoadUint64(&s.acquires)
		out[i].Contended = atomic.LoadUint64(&s.contended)
		s.lock()
		out[i].Depth = len(s.free)
		s.unlock()
	}
	return out
}
